package stabl

import (
	"reflect"
	"sort"
	"testing"
	"time"
)

// TestFlowMatchesPerClientWorkload pins the flow-aggregation equivalence
// contract: one flow modeling n clients produces the same transaction ids at
// the same instants to the same endpoints as n individual clients, so the
// chain-side commit stream and the client-observed latency multiset must be
// identical. Scheduler event counts are NOT compared — one ticker replaces n
// tickers, which is exactly the point.
func TestFlowMatchesPerClientWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("flow equivalence skipped in -short mode")
	}
	base := Config{
		System:        NewRedbelly(),
		Seed:          42,
		Validators:    10,
		Clients:       5,
		RatePerClient: 20,
		RetryAfter:    5 * time.Second,
		Duration:      60 * time.Second,
	}
	classic, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	flowCfg := base
	flowCfg.Flows = 1
	flow, err := Run(flowCfg)
	if err != nil {
		t.Fatal(err)
	}

	if flow.Submitted != classic.Submitted {
		t.Errorf("submitted = %d, classic %d", flow.Submitted, classic.Submitted)
	}
	if flow.UniqueCommits != classic.UniqueCommits {
		t.Errorf("commits = %d, classic %d", flow.UniqueCommits, classic.UniqueCommits)
	}
	if flow.Pending != classic.Pending {
		t.Errorf("pending = %d, classic %d", flow.Pending, classic.Pending)
	}
	if flow.LastCommitAt != classic.LastCommitAt {
		t.Errorf("last commit = %v, classic %v", flow.LastCommitAt, classic.LastCommitAt)
	}
	if !reflect.DeepEqual(flow.Throughput, classic.Throughput) {
		t.Errorf("chain-side throughput series diverged")
	}
	// Latency collection order differs (per-client concatenation vs one
	// completion-ordered list); the multiset must match exactly.
	fl := append([]float64(nil), flow.Latencies...)
	cl := append([]float64(nil), classic.Latencies...)
	sort.Float64s(fl)
	sort.Float64s(cl)
	if !reflect.DeepEqual(fl, cl) {
		t.Errorf("latency multisets diverged: %d vs %d samples", len(fl), len(cl))
	}
}

// TestFlowEquivalenceAcrossSystems repeats the equivalence check on every
// chain model with a shorter horizon: the contract is workload-side and must
// hold regardless of the consensus protocol behind the endpoints.
func TestFlowEquivalenceAcrossSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-system flow equivalence skipped in -short mode")
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			base := Config{
				System:        sys,
				Seed:          7,
				Validators:    10,
				Clients:       4,
				RatePerClient: 10,
				Duration:      30 * time.Second,
			}
			classic, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			flowCfg := base
			flowCfg.Flows = 1
			flow, err := Run(flowCfg)
			if err != nil {
				t.Fatal(err)
			}
			if flow.Submitted != classic.Submitted || flow.UniqueCommits != classic.UniqueCommits {
				t.Fatalf("flow run = %d submitted / %d commits, classic %d / %d",
					flow.Submitted, flow.UniqueCommits, classic.Submitted, classic.UniqueCommits)
			}
			if !reflect.DeepEqual(flow.Throughput, classic.Throughput) {
				t.Fatalf("chain-side throughput series diverged")
			}
		})
	}
}

// TestFlowTenThousandClients runs 10k modeled clients through 20 flow
// generators — a deployment the per-client loop would spend most of its time
// scheduling. The aggregated workload must stay live and commit what it
// submits.
func TestFlowTenThousandClients(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-client flow run skipped in -short mode")
	}
	res, err := Run(Config{
		System:        NewRedbelly(),
		Seed:          42,
		Validators:    20,
		Clients:       10_000,
		Flows:         20,
		FlowAccounts:  128,
		RatePerClient: 0.2,
		Duration:      30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted < 10_000 {
		t.Fatalf("submitted only %d txs from 10k clients", res.Submitted)
	}
	if res.UniqueCommits < res.Submitted*9/10 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
}

// TestMillionClientsIsAConfigValue demonstrates the scale axis headline:
// one million modeled clients deploy as eight flow nodes, so construction
// and the idle event loop cost O(flows), not O(clients). The run is sized so
// no tick fires inside the horizon — the assertion is that building and
// simulating the deployment is cheap, not that a million-transaction burst
// clears.
func TestMillionClientsIsAConfigValue(t *testing.T) {
	if testing.Short() {
		t.Skip("million-client construction skipped in -short mode")
	}
	start := time.Now()
	res, err := Run(Config{
		System:           NewRedbelly(),
		Seed:             7,
		Validators:       20,
		Clients:          1_000_000,
		Flows:            8,
		FlowAccounts:     64,
		RatePerClient:    0.001, // tick interval 1000s: no burst inside the horizon
		Duration:         15 * time.Second,
		DisableConnLayer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 0 {
		t.Fatalf("expected an idle horizon, got %d submissions", res.Submitted)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("million-client deployment took %v to build and run", elapsed)
	}
}
