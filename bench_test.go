package stabl

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Figs 1 and 3-7) at the paper's deployment scale: 10
// validators, 5 clients at 40 tx/s (200 TPS total), 400 virtual seconds,
// faults injected at 133 s on the nodes without clients and recovered at
// 266 s. Each benchmark reports the figure's headline numbers as metrics:
// sensitivity scores ("score_<system>", with -1 standing for an infinite
// score), recovery delays, and the simulator's event throughput.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Absolute metric values are compared against the paper in EXPERIMENTS.md.

import (
	"testing"
	"time"

	"stabl/internal/algorand"
	"stabl/internal/avalanche"
	"stabl/internal/core"
	"stabl/internal/redbelly"
)

// paperCfg is the deployment every figure benchmark uses. Under -short
// (the `make bench-smoke` race-enabled job) runs shrink to 120 virtual
// seconds — long enough to cross the fault injection, short enough that one
// iteration of every figure fits in a smoke budget.
func paperCfg(seed int64) Config {
	d := 400 * time.Second
	if testing.Short() {
		d = 120 * time.Second
	}
	return Config{Seed: seed, Duration: d}
}

// reportScores publishes one metric per system for a Fig 3 panel.
func reportScores(b *testing.B, cmps []*Comparison) {
	b.Helper()
	for _, cmp := range cmps {
		v := cmp.Score.Value
		if cmp.Score.Infinite {
			v = -1
		}
		b.ReportMetric(v, "score_"+cmp.System)
	}
}

// BenchmarkFig1AptosECDF regenerates Fig 1: the baseline and altered latency
// eCDFs of Aptos under f = t crashes, whose area difference is the
// sensitivity score.
func BenchmarkFig1AptosECDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := Fig1(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Score.Value, "score_Aptos")
		b.ReportMetric(float64(len(fig.Baseline)), "curve_points")
	}
}

// BenchmarkFig3aCrashSensitivity regenerates Fig 3a: sensitivity of the five
// chains to f = t permanent crashes.
func BenchmarkFig3aCrashSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := Fig3a(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		reportScores(b, cmps)
	}
}

// BenchmarkFig3bTransientSensitivity regenerates Fig 3b: sensitivity to
// f = t+1 transient node failures (Avalanche and Solana score infinite,
// reported as -1).
func BenchmarkFig3bTransientSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := Fig3b(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		reportScores(b, cmps)
	}
}

// BenchmarkFig3cPartitionSensitivity regenerates Fig 3c: sensitivity to a
// transient partition of f = t+1 nodes.
func BenchmarkFig3cPartitionSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := Fig3c(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		reportScores(b, cmps)
	}
}

// BenchmarkFig3dByzantineSensitivity regenerates Fig 3d: sensitivity to the
// secure client that submits to t+1 validators (redundancy benefits are
// reported with their magnitude; see the figure runners for the sign).
func BenchmarkFig3dByzantineSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := Fig3d(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		reportScores(b, cmps)
	}
}

// BenchmarkFig4CrashThroughput regenerates Fig 4: throughput over time as
// f = t nodes crash at 133 s. It reports each chain's post-crash steady
// throughput as a fraction of its pre-crash throughput.
func BenchmarkFig4CrashThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := Fig4(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		for _, cmp := range cmps {
			before := cmp.Altered.Throughput.MeanRate(60*time.Second, 133*time.Second)
			after := cmp.Altered.Throughput.MeanRate(200*time.Second, 395*time.Second)
			ratio := 0.0
			if before > 0 {
				ratio = after / before
			}
			b.ReportMetric(ratio, "postcrash_ratio_"+cmp.System)
		}
	}
}

// BenchmarkFig5TransientThroughput regenerates Fig 5: throughput over time
// as f = t+1 nodes stop at 133 s and restart at 266 s. It reports each
// chain's recovery delay in seconds (-1 when it never recovers).
func BenchmarkFig5TransientThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := Fig5(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range RecoveryTimes(cmps) {
			v := -1.0
			if r.Recovered {
				v = r.Delay.Seconds()
			}
			b.ReportMetric(v, "recovery_s_"+r.System)
		}
	}
}

// BenchmarkFig6PartitionThroughput regenerates Fig 6: throughput over time
// under a partition from 133 s to 266 s, reporting recovery delays.
func BenchmarkFig6PartitionThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := Fig6(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range RecoveryTimes(cmps) {
			v := -1.0
			if r.Recovered {
				v = r.Delay.Seconds()
			}
			b.ReportMetric(v, "recovery_s_"+r.System)
		}
	}
}

// BenchmarkFig7Radar regenerates the full Fig 7 matrix (20 comparisons, 40
// runs) and reports the number of infinite cells — the paper's headline:
// exactly four (Avalanche and Solana under transient failures and
// partitions).
func BenchmarkFig7Radar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		radar, err := Fig7(paperCfg(42))
		if err != nil {
			b.Fatal(err)
		}
		infinite := 0
		for _, row := range radar.Cells {
			for _, cmp := range row {
				if cmp.Score.Infinite {
					infinite++
				}
			}
		}
		b.ReportMetric(float64(infinite), "infinite_cells")
	}
}

// Ablation benches isolate the design choices DESIGN.md calls out.

// BenchmarkAblationAvalancheThrottling compares Avalanche's recoverability
// from a transient failure with and without the inbound message throttler —
// the paper's root cause for its lack of liveness (§5). The metric is 1 when
// the chain recovered, 0 when it lost liveness.
func BenchmarkAblationAvalancheThrottling(b *testing.B) {
	for _, mode := range []struct {
		name       string
		throttling bool
	}{{"Throttled", true}, {"Unthrottled", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := avalanche.DefaultConfig()
			cfg.Throttling = mode.throttling
			for i := 0; i < b.N; i++ {
				run := paperCfg(42)
				run.System = avalanche.NewSystem(cfg)
				run.Fault = FaultPlan{Kind: FaultTransient}
				res, err := Run(run)
				if err != nil {
					b.Fatal(err)
				}
				recovered := 1.0
				if res.LivenessLost {
					recovered = 0
				}
				b.ReportMetric(recovered, "recovered")
				b.ReportMetric(float64(res.UniqueCommits), "commits")
			}
		})
	}
}

// BenchmarkAblationRedbellySuperblock compares Redbelly's baseline
// throughput and latency with the superblock union enabled (every
// validator's proposal commits) versus a single proposal per round.
func BenchmarkAblationRedbellySuperblock(b *testing.B) {
	for _, mode := range []struct {
		name       string
		superblock bool
	}{{"Superblock", true}, {"SingleProposal", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := redbelly.DefaultConfig()
			cfg.Superblock = mode.superblock
			for i := 0; i < b.N; i++ {
				run := Config{Seed: 42, Duration: 120 * time.Second}
				run.System = redbelly.NewSystem(cfg)
				res, err := Run(run)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.UniqueCommits), "commits")
				b.ReportMetric(res.Throughput.MeanRate(30*time.Second, 115*time.Second), "tps")
			}
		})
	}
}

// BenchmarkAblationAlgorandDynamicRound compares Algorand's dynamic round
// time against fixed conservative timeouts: the adaptation is what produces
// the baseline ramp-up and the crash-induced resets (§4).
func BenchmarkAblationAlgorandDynamicRound(b *testing.B) {
	for _, mode := range []struct {
		name    string
		dynamic bool
	}{{"Dynamic", true}, {"Fixed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := algorand.DefaultConfig()
			if !mode.dynamic {
				cfg.Shrink = 1 // never adapt: stay at the default timeout
				cfg.MinFilterTimeout = cfg.DefaultFilterTimeout
			}
			for i := 0; i < b.N; i++ {
				run := Config{Seed: 42, Duration: 300 * time.Second}
				run.System = algorand.NewSystem(cfg)
				res, err := Run(run)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				for _, l := range res.Latencies {
					sum += l
				}
				mean := 0.0
				if len(res.Latencies) > 0 {
					mean = sum / float64(len(res.Latencies))
				}
				b.ReportMetric(mean, "mean_latency_s")
			}
		})
	}
}

// BenchmarkSimulatorEventRate measures the raw discrete-event engine
// throughput on a full Redbelly baseline, in simulated events per second of
// wall-clock time.
func BenchmarkSimulatorEventRate(b *testing.B) {
	var events uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		run := Config{Seed: int64(i), Duration: 120 * time.Second, System: NewRedbelly()}
		res, err := Run(run)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed, "events/s")
	}
}

// BenchmarkCoreSensitivity measures the cost of one full baseline+altered
// comparison, the unit of work behind every figure.
func BenchmarkCoreSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.Compare(core.Config{
			System:   NewRedbelly(),
			Seed:     42,
			Duration: 120 * time.Second,
			Fault:    core.FaultPlan{Kind: core.FaultCrash, InjectAt: 40 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
