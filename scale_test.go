package stabl

import (
	"testing"
	"time"
)

// TestScaleLargerNetwork addresses the paper's future work: "measure the
// sensitivity of blockchains in larger networks, especially for
// probabilistic consensus protocols that rely on the law of large numbers."
// Every chain model must stay live and commit the workload on a 20-validator
// deployment with 10 clients.
func TestScaleLargerNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			res, err := Run(Config{
				System:        sys,
				Seed:          42,
				Validators:    20,
				Clients:       10,
				RatePerClient: 20, // 200 TPS total, as in the paper
				Duration:      120 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.LivenessLost {
				t.Fatalf("baseline lost liveness at n=20; last commit %v", res.LastCommitAt)
			}
			if res.UniqueCommits < res.Submitted*80/100 {
				t.Fatalf("commits = %d of %d at n=20", res.UniqueCommits, res.Submitted)
			}
		})
	}
}

// TestScaleCrashToleranceGrowsWithN: at n = 20 the tolerated crash counts
// double (t = 3 for the n/5 chains, 6 for the n/3 chains) and an f = t crash
// still leaves every chain live.
func TestScaleCrashToleranceGrowsWithN(t *testing.T) {
	if testing.Short() {
		t.Skip("scale crash test skipped in -short mode")
	}
	for _, sys := range []System{NewRedbelly(), NewAvalanche()} {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			if n20, n10 := sys.Tolerance(20), sys.Tolerance(10); n20 <= n10 {
				t.Fatalf("tolerance did not grow: t(20)=%d t(10)=%d", n20, n10)
			}
			res, err := Run(Config{
				System:        sys,
				Seed:          42,
				Validators:    20,
				Clients:       10,
				RatePerClient: 20,
				Duration:      180 * time.Second,
				Fault:         FaultPlan{Kind: FaultCrash, InjectAt: 60 * time.Second},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.LivenessLost {
				t.Fatalf("f=t crash killed %s at n=20; last commit %v", sys.Name(), res.LastCommitAt)
			}
		})
	}
}
