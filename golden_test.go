package stabl

import (
	"testing"
	"time"
)

// TestGoldenSeed42Scores pins the exact sensitivity scores (and, as a
// stronger determinism witness, the commit and scheduler-event counts) of all
// five systems under an f=t crash at seed 42. The values were captured from
// the seed kernel; any kernel change — event queue, send path, RNG derivation
// — must reproduce them byte-for-byte. A drift here means the optimization
// changed the simulation, not just its speed.
//
// Regenerated deliberately with the parallel-kernel PR: the network now draws
// latency/loss/jitter from per-sender-node RNG streams (so draw order is
// partition-schedule-invariant) instead of three shared streams, which moves
// every trajectory. The parallel goldens (golden_parallel_test.go) pin the
// new trajectories to be worker-count-invariant.
func TestGoldenSeed42Scores(t *testing.T) {
	if testing.Short() {
		t.Skip("golden score pin skipped in -short mode")
	}
	golden := []struct {
		system   string
		score    float64
		baseline int
		altered  int
		events   uint64
	}{
		{"Algorand", 0.6583754091741838, 23598, 23540, 287242},
		{"Aptos", 10.098321156995958, 23888, 23800, 251322},
		{"Avalanche", 6.5752913521527745, 23286, 23180, 724998},
		{"Redbelly", 0.44121630216242469, 23922, 23853, 174732},
		{"Solana", 5.2657835871997776, 23912, 23913, 132108},
	}
	cfg := Config{
		Seed:     42,
		Duration: 120 * time.Second,
		Fault:    FaultPlan{Kind: FaultCrash, InjectAt: 40 * time.Second, RecoverAt: 80 * time.Second},
	}
	for i, sys := range Systems() {
		want := golden[i]
		if got := sys.Name(); got != want.system {
			t.Fatalf("system %d = %s, want %s (registry order changed; regenerate goldens deliberately)", i, got, want.system)
		}
		c := cfg
		c.System = sys
		cmp, err := Compare(c)
		if err != nil {
			t.Fatalf("%s: %v", want.system, err)
		}
		if cmp.Score.Infinite {
			t.Errorf("%s: score became infinite, want %v", want.system, want.score)
			continue
		}
		if cmp.Score.Value != want.score {
			t.Errorf("%s: score = %.17g, want %.17g", want.system, cmp.Score.Value, want.score)
		}
		if cmp.Baseline.UniqueCommits != want.baseline || cmp.Altered.UniqueCommits != want.altered {
			t.Errorf("%s: commits = %d/%d, want %d/%d", want.system,
				cmp.Baseline.UniqueCommits, cmp.Altered.UniqueCommits, want.baseline, want.altered)
		}
		if cmp.Altered.Events != want.events {
			t.Errorf("%s: altered run fired %d events, want %d", want.system, cmp.Altered.Events, want.events)
		}
	}
}
