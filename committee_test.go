package stabl

import (
	"reflect"
	"testing"
	"time"
)

// committeeGoldenConfig is the pinned committee-mode deployment: 50
// validators, sortition committees of 20, f=t crash at seed 42. Large enough
// that committees are a strict subset of the validator set, small enough to
// run in CI.
func committeeGoldenConfig() Config {
	return Config{
		System:        NewAlgorand(),
		Seed:          42,
		Validators:    50,
		Clients:       40,
		CommitteeSize: 20,
		Duration:      120 * time.Second,
		Fault:         FaultPlan{Kind: FaultCrash, InjectAt: 40 * time.Second, RecoverAt: 80 * time.Second},
	}
}

// TestGoldenCommitteeSeed42 pins the exact score, commit counts and
// scheduler-event count of committee-mode Algorand at seed 42. Committee
// extraction is a pure function of (seed, stakes, round, step), so the values
// must reproduce byte-for-byte on every run; a drift means sortition consumed
// scheduler RNG or ordering it must not touch.
func TestGoldenCommitteeSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("committee golden skipped in -short mode")
	}
	const (
		wantScore    = 3.0385571681782935
		wantBaseline = 188619
		wantAltered  = 189250
		wantEvents   = 9032194
	)
	cmp, err := Compare(committeeGoldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Score.Infinite {
		t.Fatalf("score became infinite, want %v", wantScore)
	}
	if cmp.Score.Value != wantScore {
		t.Errorf("score = %.17g, want %.17g", cmp.Score.Value, wantScore)
	}
	if cmp.Baseline.UniqueCommits != wantBaseline || cmp.Altered.UniqueCommits != wantAltered {
		t.Errorf("commits = %d/%d, want %d/%d",
			cmp.Baseline.UniqueCommits, cmp.Altered.UniqueCommits, wantBaseline, wantAltered)
	}
	if cmp.Altered.Events != wantEvents {
		t.Errorf("altered run fired %d events, want %d", cmp.Altered.Events, wantEvents)
	}
}

// TestCommitteeSuiteWorkerInvariance runs a committee-mode suite at one and
// at four workers and requires identical aggregates: the memoized committee
// schedule is shared across concurrently running experiments, so cache-hit
// races must never leak into results.
func TestCommitteeSuiteWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("committee suite invariance skipped in -short mode")
	}
	base := committeeGoldenConfig()
	base.Duration = 60 * time.Second
	base.Fault = FaultPlan{}
	run := func(workers int) *SuiteResult {
		res, err := RunSuite(SuiteConfig{
			Base:    base,
			Systems: []System{NewAlgorand()},
			Faults:  []FaultKind{FaultCrash, FaultTransient},
			Seeds:   []int64{1, 2},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("suite results differ across worker counts:\n 1 worker: %+v\n 4 workers: %+v", serial, parallel)
	}
}

// TestCommitteeShrinksProtocolWork is the scale claim itself: with the
// deployment fixed, per-round protocol traffic must track committee size,
// not validator count. A 60-validator run with 16-seat committees has to
// send far fewer messages than the same run voting with all 60. The
// workload stays light so consensus votes — not the O(n)-per-tx mempool
// gossip both modes share — dominate the message count.
func TestCommitteeShrinksProtocolWork(t *testing.T) {
	if testing.Short() {
		t.Skip("committee traffic comparison skipped in -short mode")
	}
	run := func(size int) *RunResult {
		res, err := Run(Config{
			System:        NewAlgorand(),
			Seed:          42,
			Validators:    60,
			Clients:       4,
			RatePerClient: 2,
			CommitteeSize: size,
			Duration:      60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.LivenessLost {
			t.Fatalf("committee size %d lost liveness; last commit %v", size, res.LastCommitAt)
		}
		return res
	}
	full, small := run(0), run(16)
	if small.UniqueCommits < small.Submitted*9/10 {
		t.Fatalf("committee mode committed %d of %d", small.UniqueCommits, small.Submitted)
	}
	if small.NetStats.Sent*2 > full.NetStats.Sent {
		t.Fatalf("16-seat committees sent %d messages vs %d at full membership; expected under half",
			small.NetStats.Sent, full.NetStats.Sent)
	}
}
