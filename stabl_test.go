package stabl

import (
	"strings"
	"testing"
	"time"
)

func TestSystemsRegistry(t *testing.T) {
	systems := Systems()
	if len(systems) != 5 {
		t.Fatalf("Systems() = %d entries", len(systems))
	}
	want := []string{"Algorand", "Aptos", "Avalanche", "Redbelly", "Solana"}
	for i, sys := range systems {
		if sys.Name() != want[i] {
			t.Fatalf("Systems()[%d] = %s, want %s", i, sys.Name(), want[i])
		}
	}
	for _, name := range want {
		sys, err := SystemByName(name)
		if err != nil || sys.Name() != name {
			t.Fatalf("SystemByName(%s) = %v, %v", name, sys, err)
		}
	}
	if _, err := SystemByName("Bitcoin"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestTolerancesMatchPaper(t *testing.T) {
	// Paper §2: t = ceil(n/5)-1 for Algorand and Avalanche, ceil(n/3)-1
	// for Aptos, Redbelly, Solana; with n = 10 the secure client uses
	// max(t)+1 = 4 endpoints.
	want := map[string]int{
		"Algorand": 1, "Avalanche": 1,
		"Aptos": 3, "Redbelly": 3, "Solana": 3,
	}
	for _, sys := range Systems() {
		if got := sys.Tolerance(10); got != want[sys.Name()] {
			t.Fatalf("%s Tolerance(10) = %d, want %d", sys.Name(), got, want[sys.Name()])
		}
	}
}

func TestSensitivityHelper(t *testing.T) {
	s := Sensitivity([]float64{1, 1, 1}, []float64{3, 3, 3})
	if s.Infinite || s.Value <= 0 {
		t.Fatalf("Sensitivity = %+v", s)
	}
}

// TestPaperShape reproduces the paper's qualitative findings end to end. It
// runs the full Fig 7 matrix (40 experiment runs at the paper's scale) and
// checks each claim of the DESIGN.md per-experiment index.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix shape test skipped in -short mode")
	}
	radar, err := Fig7(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(sys string, kind FaultKind) *Comparison {
		cmp := radar.Cells[sys][kind]
		if cmp == nil {
			t.Fatalf("missing cell %s/%v", sys, kind)
		}
		return cmp
	}

	t.Run("Fig3a_crash", func(t *testing.T) {
		// (i) All blockchains except Redbelly are significantly
		// impacted by isolated failures; Redbelly's score is the
		// lowest by a clear margin.
		redbelly := cell("Redbelly", FaultCrash)
		if redbelly.Score.Infinite {
			t.Fatal("Redbelly crash score infinite")
		}
		for _, sys := range []string{"Algorand", "Aptos", "Avalanche", "Solana"} {
			cmp := cell(sys, FaultCrash)
			if cmp.Score.Infinite {
				t.Fatalf("%s lost liveness under f=t crashes", sys)
			}
			if cmp.Score.Value < 2*redbelly.Score.Value {
				t.Errorf("%s crash score %.2f not clearly above Redbelly's %.2f",
					sys, cmp.Score.Value, redbelly.Score.Value)
			}
		}
	})

	t.Run("Fig3b_transient", func(t *testing.T) {
		// (iii) Avalanche and Solana cannot recover from transient
		// failures; Algorand, Aptos and Redbelly can.
		for _, sys := range []string{"Avalanche", "Solana"} {
			if !cell(sys, FaultTransient).Score.Infinite {
				t.Errorf("%s recovered from transient failures; paper says it cannot", sys)
			}
		}
		for _, sys := range []string{"Algorand", "Aptos", "Redbelly"} {
			cmp := cell(sys, FaultTransient)
			if cmp.Score.Infinite {
				t.Errorf("%s lost liveness under transient failures", sys)
			}
		}
		// Aptos is the most impacted of the recovering chains: it
		// cannot clear the backlog.
		aptos := cell("Aptos", FaultTransient)
		for _, sys := range []string{"Algorand", "Redbelly"} {
			if cell(sys, FaultTransient).Score.Value >= aptos.Score.Value {
				t.Errorf("%s transient score >= Aptos's; Aptos should be the slowest to recover", sys)
			}
		}
	})

	t.Run("Fig3c_partition", func(t *testing.T) {
		// Chains that cannot survive transient failures cannot survive
		// partitions either.
		for _, sys := range []string{"Avalanche", "Solana"} {
			if !cell(sys, FaultPartition).Score.Infinite {
				t.Errorf("%s recovered from the partition", sys)
			}
		}
		for _, sys := range []string{"Algorand", "Aptos", "Redbelly"} {
			if cell(sys, FaultPartition).Score.Infinite {
				t.Errorf("%s lost liveness under the partition", sys)
			}
		}
		// Algorand and Redbelly recover passively (timer-bound):
		// slower than after transient failures. Aptos reconnects fast.
		for _, sys := range []string{"Algorand", "Redbelly"} {
			tr, pa := cell(sys, FaultTransient), cell(sys, FaultPartition)
			if !tr.Recovered || !pa.Recovered {
				t.Fatalf("%s recovery not detected (transient %v, partition %v)",
					sys, tr.Recovered, pa.Recovered)
			}
			if pa.RecoveryTime <= tr.RecoveryTime+10*time.Second {
				t.Errorf("%s partition recovery (%v) not clearly slower than transient (%v)",
					sys, pa.RecoveryTime, tr.RecoveryTime)
			}
		}
		aptos := cell("Aptos", FaultPartition)
		if aptos.Recovered && aptos.RecoveryTime > 40*time.Second {
			t.Errorf("Aptos partition recovery %v; paper: fast (5s probes, 30s cap)", aptos.RecoveryTime)
		}
	})

	t.Run("Fig3d_secure_client", func(t *testing.T) {
		// (ii) Avalanche and Redbelly benefit from the redundancy;
		// Algorand and Solana barely change; Aptos is hampered by
		// speculative re-execution; Avalanche has the largest score.
		av := cell("Avalanche", FaultSecureClient)
		rb := cell("Redbelly", FaultSecureClient)
		if !av.Score.Benefit {
			t.Error("Avalanche does not benefit from the secure client")
		}
		if !rb.Score.Benefit {
			t.Error("Redbelly does not benefit from the secure client")
		}
		ap := cell("Aptos", FaultSecureClient)
		if ap.Score.Benefit {
			t.Error("Aptos benefits from the secure client; paper: degraded by Block-STM re-execution")
		}
		if ap.Score.Value <= 0.5 {
			t.Errorf("Aptos secure-client score %.2f; paper: visible degradation", ap.Score.Value)
		}
		// Algorand and Solana "remain unchanged": their secure-client
		// score is far below their own crash sensitivity (the exact
		// value carries run-to-run ramp noise for Algorand).
		for _, sys := range []string{"Algorand", "Solana"} {
			sc := cell(sys, FaultSecureClient).Score.Value
			crash := cell(sys, FaultCrash).Score.Value
			if sc > crash/2 {
				t.Errorf("%s secure-client score %.2f not well below its crash score %.2f",
					sys, sc, crash)
			}
		}
		for _, sys := range []string{"Algorand", "Redbelly", "Solana"} {
			if cell(sys, FaultSecureClient).Score.Value >= av.Score.Value {
				t.Errorf("%s secure-client score exceeds Avalanche's; paper: Avalanche largest", sys)
			}
		}
	})

	t.Run("Fig7_general_observations", func(t *testing.T) {
		// §8: blockchains are generally more sensitive to transient
		// failures than to permanent ones.
		for _, sys := range radar.Order {
			crash := cell(sys, FaultCrash)
			transient := cell(sys, FaultTransient)
			if transient.Score.Infinite {
				continue // infinitely worse, trivially satisfied
			}
			if crash.Score.Value > transient.Score.Value {
				t.Errorf("%s crash score %.2f exceeds transient score %.2f",
					sys, crash.Score.Value, transient.Score.Value)
			}
		}
		// Rendering smoke checks on the real matrix.
		out := RenderRadar(radar)
		for _, sys := range radar.Order {
			if !strings.Contains(out, sys) {
				t.Fatalf("radar rendering misses %s:\n%s", sys, out)
			}
		}
	})
}

// TestTransientRunIsReproducible re-runs a real-model experiment that
// exercises the retransmission and connection-recovery paths and demands
// identical results. Both paths consume the shared network RNG, so any
// map-order iteration between draws makes scores drift run to run
// (regression: client retries and connection keep-alives did exactly that).
func TestTransientRunIsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("reproducibility check skipped in -short mode")
	}
	cfg := Config{
		Seed:     7,
		Duration: 60 * time.Second,
		Fault: FaultPlan{
			Kind:      FaultTransient,
			InjectAt:  20 * time.Second,
			RecoverAt: 40 * time.Second,
		},
	}
	run := func() *Comparison {
		sys, err := SystemByName("Algorand")
		if err != nil {
			t.Fatal(err)
		}
		cfg.System = sys
		cmp, err := Compare(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	first, second := run(), run()
	if first.Score != second.Score {
		t.Fatalf("score not reproducible: %v vs %v", first.Score, second.Score)
	}
	if first.Altered.UniqueCommits != second.Altered.UniqueCommits {
		t.Fatalf("commits not reproducible: %d vs %d",
			first.Altered.UniqueCommits, second.Altered.UniqueCommits)
	}
}

func TestFig1ProducesCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 skipped in -short mode")
	}
	fig, err := Fig1(Config{Seed: 42, Duration: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if fig.System != "Aptos" {
		t.Fatalf("Fig1 system = %s", fig.System)
	}
	if len(fig.Baseline) == 0 || len(fig.Altered) == 0 {
		t.Fatal("empty eCDF curves")
	}
	last := fig.Baseline[len(fig.Baseline)-1]
	if last.Y != 1 {
		t.Fatalf("eCDF does not reach 1: %v", last)
	}
	out := RenderECDF(fig, 10)
	if !strings.Contains(out, "Aptos") {
		t.Fatalf("render = %q", out)
	}
}

func TestRecoveryTimesExtraction(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery extraction skipped in -short mode")
	}
	cmps, err := Fig5(Config{Seed: 42, Duration: 200 * time.Second,
		Fault: FaultPlan{InjectAt: 60 * time.Second, RecoverAt: 120 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	reports := RecoveryTimes(cmps)
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	out := RenderRecovery(reports)
	if !strings.Contains(out, "Redbelly") {
		t.Fatalf("render = %q", out)
	}
}

// TestSlowFaultShape checks the transient-communication-delay findings the
// paper reports alongside its main matrix: delays of tens of seconds crash
// all Solana nodes (§2) and wedge Avalanche behind its throttlers ("stops
// working when some messages arrive 2 minutes late", §5), while Redbelly
// rides them out.
func TestSlowFaultShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-fault shape test skipped in -short mode")
	}
	run := func(sys System) *RunResult {
		t.Helper()
		res, err := Run(Config{
			System:   sys,
			Seed:     42,
			Duration: 400 * time.Second,
			Fault: FaultPlan{
				Kind:      FaultSlow,
				InjectAt:  133 * time.Second,
				RecoverAt: 266 * time.Second,
				SlowBy:    120 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(NewSolana()); !res.LivenessLost {
		t.Errorf("Solana survived transient communication delays; last commit %v", res.LastCommitAt)
	}
	if res := run(NewAvalanche()); !res.LivenessLost {
		t.Errorf("Avalanche kept working with messages arriving 2 minutes late; last commit %v", res.LastCommitAt)
	}
	if res := run(NewRedbelly()); res.LivenessLost {
		t.Errorf("Redbelly lost liveness under transient delays; last commit %v", res.LastCommitAt)
	}
}

// TestChainIntegrity verifies that every chain model produces a valid hash
// chain: each committed block's parent link matches the previous block's
// content address, across the whole run.
func TestChainIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("integrity sweep skipped in -short mode")
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			res, err := Run(Config{
				System:   sys,
				Seed:     42,
				Duration: 120 * time.Second,
				Fault:    FaultPlan{Kind: FaultCrash, InjectAt: 40 * time.Second},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.IntegrityErrors) != 0 {
				t.Fatalf("hash-chain violations: %v", res.IntegrityErrors)
			}
			if res.LivenessLost {
				t.Fatalf("%s lost liveness under f=t crash", sys.Name())
			}
		})
	}
}

// TestAptosOscillationDamps quantifies §4's "the throughput instability
// reduces in about 82 seconds": after f = t crashes, Aptos's throughput
// oscillates through view changes until leader reputation excludes the dead
// validators, then restabilizes. The baseline shows no such phase.
func TestAptosOscillationDamps(t *testing.T) {
	if testing.Short() {
		t.Skip("damping test skipped in -short mode")
	}
	cmp, err := Compare(Config{
		System:   NewAptos(),
		Seed:     42,
		Duration: 400 * time.Second,
		Fault:    FaultPlan{Kind: FaultCrash, InjectAt: 133 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	const window, maxCV = 15, 0.3
	altered, ok := cmp.Altered.Throughput.StabilizationTime(133*time.Second, window, maxCV)
	if !ok {
		t.Fatal("altered run never restabilized")
	}
	baseline, ok := cmp.Baseline.Throughput.StabilizationTime(133*time.Second, window, maxCV)
	if !ok {
		t.Fatal("baseline unstable")
	}
	if baseline != 0 {
		t.Fatalf("baseline stabilization = %v, want immediate", baseline)
	}
	if altered < 20*time.Second || altered > 150*time.Second {
		t.Fatalf("oscillation damped after %v; paper reports ~82s", altered)
	}
}
