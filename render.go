package stabl

import (
	"fmt"
	"strings"
	"time"
)

// Rendering helpers turn figure results into the textual equivalents of the
// paper's plots: score rows for the bar charts, downsampled series for the
// throughput-over-time figures, and a score table for the radar chart.

// RenderFig3 renders one Fig 3 panel as score rows. Benefit scores (striped
// bars in the paper) are marked, infinite scores print as "inf".
func RenderFig3(title string, cmps []*Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, cmp := range cmps {
		bar := scoreBar(cmp)
		fmt.Fprintf(&b, "  %-10s %-12s %s\n", cmp.System, cmp.Score, bar)
	}
	return b.String()
}

func scoreBar(cmp *Comparison) string {
	if cmp.Score.Infinite {
		return "############ inf (liveness lost)"
	}
	n := int(cmp.Score.Value)
	if n > 60 {
		n = 60
	}
	ch := "#"
	if cmp.Score.Benefit {
		ch = "/" // striped: the altered environment helped
	}
	return strings.Repeat(ch, n)
}

// RenderThroughput renders one system's baseline and altered throughput
// series side by side, downsampled to the given bucket (e.g. 10 s), with
// markers at the injection and recovery instants — the textual equivalent of
// one panel of Figs 4-6.
func RenderThroughput(cmp *Comparison, bucket time.Duration) string {
	var b strings.Builder
	if cmp.Scenario != "" {
		fmt.Fprintf(&b, "%s (scenario: %s)\n", cmp.System, cmp.Scenario)
	} else {
		fmt.Fprintf(&b, "%s (%s: inject %s, recover %s)\n",
			cmp.System, cmp.Fault.Kind,
			fmtSecs(cmp.Fault.InjectAt), fmtSecs(cmp.Fault.RecoverAt))
	}
	fmt.Fprintf(&b, "  %8s %10s %10s\n", "t", "baseline", "altered")
	total := time.Duration(len(cmp.Baseline.Throughput.Counts)) * cmp.Baseline.Throughput.Bucket
	for t := time.Duration(0); t < total; t += bucket {
		mark := " "
		if cmp.Fault.Kind != FaultNone && cmp.Fault.Kind != FaultSecureClient {
			if t <= cmp.Fault.InjectAt && cmp.Fault.InjectAt < t+bucket {
				mark = "x" // failure injected
			}
			if cmp.Fault.Kind != FaultCrash && t <= cmp.Fault.RecoverAt && cmp.Fault.RecoverAt < t+bucket {
				mark = "o" // recovery
			}
		}
		fmt.Fprintf(&b, "  %7s%s %10.1f %10.1f\n", fmtSecs(t), mark,
			cmp.Baseline.Throughput.MeanRate(t, t+bucket),
			cmp.Altered.Throughput.MeanRate(t, t+bucket))
	}
	return b.String()
}

// RenderRadar renders Fig 7 as a score table.
func RenderRadar(r *Radar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, kind := range r.Kinds {
		fmt.Fprintf(&b, " %13s", kind)
	}
	b.WriteString("\n")
	for _, sys := range r.Order {
		fmt.Fprintf(&b, "%-10s", sys)
		for _, kind := range r.Kinds {
			cmp := r.Cells[sys][kind]
			if cmp == nil {
				fmt.Fprintf(&b, " %13s", "-")
				continue
			}
			fmt.Fprintf(&b, " %13s", cmp.Score)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderECDF renders Fig 1's two latency eCDFs as aligned columns.
func RenderECDF(fig *ECDFFigure, points int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s latency eCDFs (sensitivity %s)\n", fig.System, fig.Score)
	fmt.Fprintf(&b, "  %12s %10s | %12s %10s\n", "baseline x", "F(x)", "altered x", "F(x)")
	n := points
	if len(fig.Baseline) < n {
		n = len(fig.Baseline)
	}
	for i := 0; i < n; i++ {
		bi := fig.Baseline[len(fig.Baseline)*i/n]
		var ax, ay float64
		if len(fig.Altered) > 0 {
			ap := fig.Altered[len(fig.Altered)*i/n]
			ax, ay = ap.X, ap.Y
		}
		fmt.Fprintf(&b, "  %11.2fs %10.3f | %11.2fs %10.3f\n", bi.X, bi.Y, ax, ay)
	}
	return b.String()
}

// RenderRecovery renders the recovery-time observations of §5/§6.
func RenderRecovery(reports []RecoveryReport) string {
	var b strings.Builder
	for _, r := range reports {
		state := "never (liveness lost)"
		if r.Recovered {
			state = fmt.Sprintf("%.0fs after recovery event", r.Delay.Seconds())
		}
		fmt.Fprintf(&b, "  %-10s %-12s %s\n", r.System, r.Fault, state)
	}
	return b.String()
}

func fmtSecs(d time.Duration) string {
	return fmt.Sprintf("%.0fs", d.Seconds())
}
