# STABL reproduction — stdlib-only Go module; no tools beyond the go toolchain.

GO ?= go

.PHONY: all build vet test race verify specs bench bench-smoke figures clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The root package's cross-chain shape tests run ~2 min without the race
# detector and several times that with it — past go test's default 10 m
# per-package timeout — so the race targets raise it.
race:
	$(GO) test -race -timeout 45m ./...

# specs lints every shipped experiment, scenario and campaign spec through
# the same parser/validator the CLI uses at run time.
specs:
	$(GO) run ./cmd/stabl spec -validate 'specs/*.json' 'specs/scenarios/*.json'

# verify is the one gate to run before committing: compile everything,
# static checks, spec linting, then the full suite under the race detector
# (the parallel suite/campaign sweeps are the only concurrent code paths).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) specs
	$(GO) test -race -timeout 45m ./...

# bench regenerates the committed kernel benchmark report (figures at the
# paper's 400 virtual seconds plus the scheduler/simnet microbenchmarks).
bench:
	$(GO) run ./cmd/stabl -bench-out BENCH_kernel.json bench

# bench-smoke is the fast race-enabled benchmark gate: one short iteration
# of every figure benchmark (120 virtual seconds via -short) and of each
# kernel microbenchmark. It proves the benchmark paths are race-free and
# still wired up without measuring anything.
bench-smoke:
	$(GO) test -race -short -run='^$$' -bench=. -benchtime=1x -timeout 20m \
		. ./internal/sim ./internal/simnet

# figures regenerates every SVG artifact of the paper into ./out.
figures:
	$(GO) run ./cmd/stabl -svg out fig1
	$(GO) run ./cmd/stabl -svg out fig3a
	$(GO) run ./cmd/stabl -svg out fig3b
	$(GO) run ./cmd/stabl -svg out fig3c
	$(GO) run ./cmd/stabl -svg out fig3d
	$(GO) run ./cmd/stabl -svg out fig4
	$(GO) run ./cmd/stabl -svg out fig5
	$(GO) run ./cmd/stabl -svg out fig6

clean:
	rm -rf out
