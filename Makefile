# STABL reproduction — stdlib-only Go module; no tools beyond the go toolchain.

GO ?= go

.PHONY: all build vet test race verify verify-race ci specs lint bench bench-smoke bench-scale bench-parallel bench-gossip figures clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The root package's cross-chain shape tests run ~2 min without the race
# detector and several times that with it — past go test's default 10 m
# per-package timeout — so the race targets raise it.
race:
	$(GO) test -race -timeout 45m ./...

# specs lints every shipped experiment, scenario and campaign spec through
# the same parser/validator the CLI uses at run time.
specs:
	$(GO) run ./cmd/stabl spec -validate 'specs/*.json' 'specs/scenarios/*.json'

# lint runs the whole-program determinism analysis (internal/lint) over the
# module: the engine loads every package once, builds a cross-package call
# graph, and runs nine analyzers — map ranges that draw RNG/send/schedule
# (resolved through helpers and interface dispatch in other packages),
# wall-clock reads in simulated packages, global math/rand use, unsorted key
# broadcasts, snapshot map-order capture, cross-partition writes, Forkable
# structs with mutable fields their Snapshot/Restore never touch, goroutines
# and locks in handler-path code outside the parsim seam, and unbounded
# loops/recursion in handlers. Any unsuppressed diagnostic fails the build;
# //stabl:nodet <analyzer> -- <justification> suppresses one finding (see
# DESIGN.md "Determinism invariants"); `stabl lint -json` emits the findings,
# suppressed ones included and flagged, for tooling.
lint:
	$(GO) run ./cmd/stabl lint ./...

# verify is the everyday gate: compile everything, static checks, spec and
# determinism linting, then the full suite. Run verify-race instead when
# touching the parallel suite/campaign paths or internal/pool — the race
# detector is required there and slow everywhere else.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) specs
	$(MAKE) lint
	$(GO) test ./...

# verify-race is verify with the suite under the race detector. Required
# before committing changes to the concurrent code paths (RunSuite,
# internal/campaign workers, internal/pool, the parallel kernel); optional
# but slower elsewhere.
verify-race:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) specs
	$(MAKE) lint
	$(GO) test -race -timeout 45m ./...

# ci is the full merge gate: verify, verify-race, then the race-enabled
# benchmark smoke pass. This is what .github/workflows/ci.yml runs.
ci: verify verify-race bench-smoke

# bench regenerates the committed kernel benchmark report (figures at the
# paper's 400 virtual seconds plus the scheduler/simnet microbenchmarks).
bench:
	$(GO) run ./cmd/stabl -bench-out BENCH_kernel.json bench

# bench-smoke is the fast race-enabled benchmark gate: one short iteration
# of every figure benchmark (120 virtual seconds via -short) and of each
# kernel microbenchmark. It proves the benchmark paths are race-free and
# still wired up without measuring anything.
bench-smoke:
	$(GO) test -race -short -run='^$$' -bench=. -benchtime=1x -timeout 20m \
		. ./internal/sim ./internal/simnet

# bench-scale regenerates the committed scale-suite report: committee-mode
# Algorand at 512, 2048 and 10240 validators driven by flow-aggregated
# workloads, plus a committee-size sweep at fixed size (see
# internal/kernelbench/scale.go). SCALE_FLAGS=-scale-short caps the suite
# at 512 validators for smoke runs; the committed report uses the default.
bench-scale:
	$(GO) run ./cmd/stabl bench -scale-out BENCH_scale.json $(SCALE_FLAGS)

# bench-parallel regenerates the committed parallel-kernel report: the scale
# suite's k=1024 cells rerun sequentially and at SimWorkers 1/2/4/8, with
# byte-identity checked against the sequential reference and both wall-clock
# and modeled (critical-path) speedups reported (see
# internal/kernelbench/parallel.go). SCALE_FLAGS=-scale-short caps it at 512
# validators for smoke runs; the committed report uses the default.
bench-parallel:
	$(GO) run ./cmd/stabl bench -parallel-out BENCH_parallel.json $(SCALE_FLAGS)

# bench-gossip regenerates the committed gossip-overlay report: the scale
# deployments rerun over the legacy full mesh and the kadcast broadcast
# overlay, reporting sends per broadcast origin — the mesh pays n-1, kadcast
# must stay near O(fanout * log n) at 10240 validators (see
# internal/kernelbench/gossip.go). SCALE_FLAGS=-scale-short caps it at 512
# validators for smoke runs; the committed report uses the default.
bench-gossip:
	$(GO) run ./cmd/stabl bench -gossip-out BENCH_gossip.json $(SCALE_FLAGS)

# figures regenerates every SVG artifact of the paper into ./out.
figures:
	$(GO) run ./cmd/stabl -svg out fig1
	$(GO) run ./cmd/stabl -svg out fig3a
	$(GO) run ./cmd/stabl -svg out fig3b
	$(GO) run ./cmd/stabl -svg out fig3c
	$(GO) run ./cmd/stabl -svg out fig3d
	$(GO) run ./cmd/stabl -svg out fig4
	$(GO) run ./cmd/stabl -svg out fig5
	$(GO) run ./cmd/stabl -svg out fig6

clean:
	rm -rf out
