package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunCleanPackage lints a dependency-light clean package: no output,
// nil error.
func TestRunCleanPackage(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, "", false, []string{"stabl/internal/stats"}); err != nil {
		t.Fatalf("clean package failed: %v\n%s", err, buf.String())
	}
	if strings.TrimSpace(buf.String()) != "" {
		t.Fatalf("clean package printed diagnostics:\n%s", buf.String())
	}
}

// TestRunJSON pins the -json contract end to end: a clean package yields an
// empty JSON array (not "null"), and a package carrying a justified
// //stabl:nodet suppression yields an array whose findings are flagged
// suppressed — with nil error either way, since suppressed findings do not
// fail the run.
func TestRunJSON(t *testing.T) {
	var clean strings.Builder
	if err := run(&clean, "", true, []string{"stabl/internal/stats"}); err != nil {
		t.Fatalf("clean package failed: %v\n%s", err, clean.String())
	}
	if got := strings.TrimSpace(clean.String()); got != "[]" {
		t.Fatalf("clean package JSON = %q, want []", got)
	}

	// internal/committee carries justified goroutine-purity suppressions on
	// its memoization lock. Its methods are handler-path only because
	// algorand's handler-shaped validator calls them, so both packages load
	// as targets — cross-package reachability is the point.
	var buf strings.Builder
	if err := run(&buf, "goroutine-purity", true, []string{"stabl/internal/committee", "stabl/internal/algorand"}); err != nil {
		t.Fatalf("suppressed-only package failed: %v\n%s", err, buf.String())
	}
	var findings []struct {
		Analyzer   string `json:"analyzer"`
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(findings) == 0 {
		t.Fatal("expected the suppressed committee findings in -json output, got none")
	}
	for _, f := range findings {
		if !f.Suppressed {
			t.Errorf("unsuppressed finding leaked into a clean tree: %+v", f)
		}
		if f.Analyzer != "goroutine-purity" || f.File == "" || f.Line == 0 {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

// TestRunJSONDeterministic renders the same analysis twice and requires
// byte-identical JSON, the property CI diffing relies on.
func TestRunJSONDeterministic(t *testing.T) {
	render := func() string {
		var buf strings.Builder
		if err := run(&buf, "goroutine-purity", true, []string{"stabl/internal/committee", "stabl/internal/algorand"}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("-json output differs between two identical runs:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestRunUnknownAnalyzer mirrors the stabl CLI: a typo fails with an error
// enumerating the valid names, including the whole-program analyzers.
func TestRunUnknownAnalyzer(t *testing.T) {
	var buf strings.Builder
	err := run(&buf, "bogus", false, nil)
	if err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	for _, want := range []string{`unknown analyzer "bogus"`, "snapshot-fields", "goroutine-purity", "effort-bound"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}
