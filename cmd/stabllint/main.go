// Command stabllint is the standalone, vettool-style entry point for the
// determinism lint pass in internal/lint. It exists so the analyzers can
// run without the rest of the stabl CLI (editors, CI steps, other repos'
// scripts); `stabl lint` is the same engine behind the main binary.
//
// Usage:
//
//	stabllint [-analyzers a,b] [-json] [packages]
//
// Packages default to ./... and accept any `go list` pattern. The exit
// status follows the `stabl spec -validate` convention: 0 when clean,
// non-zero with a summary on stderr when any unsuppressed diagnostic (or a
// load error) remains. Diagnostics print one per line as
// path:line:col: [analyzer] message; -json prints a stable JSON array with
// one object per finding (suppressed findings included and flagged), the
// same format as `stabl lint -json`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stabl/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("stabllint", flag.ExitOnError)
	analyzers := fs.String("analyzers", "", "comma-separated analyzer names (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array (suppressed findings included, flagged)")
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(os.Stdout, *analyzers, *jsonOut, fs.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "stabllint:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, analyzers string, jsonOut bool, patterns []string) error {
	selected, err := lint.Select(analyzers)
	if err != nil {
		return err
	}
	prog, err := lint.Load(patterns)
	if err != nil {
		return err
	}
	var diags []lint.Diagnostic
	if jsonOut {
		diags = lint.RunAll(prog, selected)
		if err := lint.WriteJSON(out, diags); err != nil {
			return err
		}
	} else {
		diags = lint.Run(prog, selected)
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if n := lint.Exitable(diags); n > 0 {
		return fmt.Errorf("%d issue(s) in %d package(s)", n, len(prog.Pkgs))
	}
	return nil
}
