// Command stabllint is the standalone, vettool-style entry point for the
// determinism lint pass in internal/lint. It exists so the analyzers can
// run without the rest of the stabl CLI (editors, CI steps, other repos'
// scripts); `stabl lint` is the same engine behind the main binary.
//
// Usage:
//
//	stabllint [-analyzers a,b] [packages]
//
// Packages default to ./... and accept any `go list` pattern. The exit
// status follows the `stabl spec -validate` convention: 0 when clean,
// non-zero with a summary on stderr when any unsuppressed diagnostic (or a
// load error) remains. Diagnostics print one per line as
// path:line:col: [analyzer] message.
package main

import (
	"flag"
	"fmt"
	"os"

	"stabl/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("stabllint", flag.ExitOnError)
	analyzers := fs.String("analyzers", "", "comma-separated analyzer names (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(*analyzers, fs.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "stabllint:", err)
		os.Exit(1)
	}
}

func run(analyzers string, patterns []string) error {
	selected, err := lint.Select(analyzers)
	if err != nil {
		return err
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		return err
	}
	diags := lint.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return fmt.Errorf("%d issue(s) in %d package(s)", len(diags), len(pkgs))
	}
	return nil
}
