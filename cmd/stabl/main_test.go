package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastArgs shrink the experiment so CLI tests stay quick.
var fastArgs = []string{"-duration", "90s", "-inject", "30s", "-recover", "60s"}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf strings.Builder
	if err := run(append(append([]string{}, fastArgs...), args...), &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput: %s", args, err, buf.String())
	}
	return buf.String()
}

func TestCLIRunCommand(t *testing.T) {
	out := runCLI(t, "-system", "Redbelly", "-fault", "crash", "run")
	if !strings.Contains(out, "Redbelly") || !strings.Contains(out, "score=") {
		t.Fatalf("output = %q", out)
	}
}

func TestCLIRunJSON(t *testing.T) {
	out := runCLI(t, "-system", "Redbelly", "-fault", "crash", "-json", "run")
	var report struct {
		System string  `json:"system"`
		Score  float64 `json:"score"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if report.System != "Redbelly" {
		t.Fatalf("report = %+v", report)
	}
}

func TestCLIFig3aWritesSVG(t *testing.T) {
	dir := t.TempDir()
	out := runCLI(t, "-svg", dir, "fig3a")
	if !strings.Contains(out, "Fig 3a") {
		t.Fatalf("output = %q", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3a.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("not an SVG document")
	}
}

func TestCLIUnknownCommand(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestCLIUnknownSystem(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-system", "Bitcoin", "run"}, &buf); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestCLIUnknownFault(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-fault", "meteor", "run"}, &buf); err == nil {
		t.Fatal("unknown fault accepted")
	}
}

func TestCLINoCommand(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing command accepted")
	}
}

func TestParseFaultRoundTrip(t *testing.T) {
	for _, name := range []string{"none", "crash", "transient", "partition", "secure-client", "slow"} {
		kind, err := parseFault(name)
		if err != nil {
			t.Fatalf("parseFault(%s): %v", name, err)
		}
		if kind.String() != name {
			t.Fatalf("round trip %s -> %s", name, kind)
		}
	}
}

func TestCLIRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp.json")
	spec := `{
		"system": "Redbelly",
		"seed": 5,
		"durationSec": 60,
		"fault": {"kind": "crash", "injectSec": 20}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-config", path, "run"}, &buf); err != nil {
		t.Fatalf("run -config: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "Redbelly") || !strings.Contains(buf.String(), "crash") {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestCLIRunWithMissingConfigFile(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-config", "/nonexistent.json", "run"}, &buf); err == nil {
		t.Fatal("missing config accepted")
	}
}
