package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stabl"
)

// fastArgs shrink the experiment so CLI tests stay quick.
var fastArgs = []string{"-duration", "90s", "-inject", "30s", "-recover", "60s"}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf strings.Builder
	if err := run(append(append([]string{}, fastArgs...), args...), &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput: %s", args, err, buf.String())
	}
	return buf.String()
}

func TestCLIRunCommand(t *testing.T) {
	out := runCLI(t, "-system", "Redbelly", "-fault", "crash", "run")
	if !strings.Contains(out, "Redbelly") || !strings.Contains(out, "score=") {
		t.Fatalf("output = %q", out)
	}
}

func TestCLIRunJSON(t *testing.T) {
	out := runCLI(t, "-system", "Redbelly", "-fault", "crash", "-json", "run")
	var report struct {
		System string  `json:"system"`
		Score  float64 `json:"score"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if report.System != "Redbelly" {
		t.Fatalf("report = %+v", report)
	}
}

func TestCLIFig3aWritesSVG(t *testing.T) {
	dir := t.TempDir()
	out := runCLI(t, "-svg", dir, "fig3a")
	if !strings.Contains(out, "Fig 3a") {
		t.Fatalf("output = %q", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3a.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("not an SVG document")
	}
}

func TestCLIUnknownCommand(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestCLIUnknownSystem(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-system", "Bitcoin", "run"}, &buf); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestCLIUnknownFault(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-fault", "meteor", "run"}, &buf); err == nil {
		t.Fatal("unknown fault accepted")
	}
}

func TestCLINoCommand(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing command accepted")
	}
}

func TestParseFaultRoundTrip(t *testing.T) {
	for _, name := range []string{"none", "crash", "transient", "partition", "secure-client", "slow"} {
		kind, err := stabl.ParseFaultKind(name)
		if err != nil {
			t.Fatalf("ParseFaultKind(%s): %v", name, err)
		}
		if kind.String() != name {
			t.Fatalf("round trip %s -> %s", name, kind)
		}
	}
}

func TestCLIRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp.json")
	spec := `{
		"system": "Redbelly",
		"seed": 5,
		"durationSec": 60,
		"fault": {"kind": "crash", "injectSec": 20}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-config", path, "run"}, &buf); err != nil {
		t.Fatalf("run -config: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "Redbelly") || !strings.Contains(buf.String(), "crash") {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestCLIRunWithMissingConfigFile(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-config", "/nonexistent.json", "run"}, &buf); err == nil {
		t.Fatal("missing config accepted")
	}
}

// campaignSpec is a small two-system fault-space grid that the campaign CLI
// tests share: 2x (2 counts x 1 inject) crash cells x 2 seeds = 8+ cells.
const campaignSpec = `{
	"systems": ["Redbelly", "Algorand"],
	"faults": ["crash"],
	"countDeltas": [0, 1],
	"injectSecs": [20],
	"seeds": [1, 2],
	"base": {"durationSec": 60}
}`

func writeCampaignSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := os.WriteFile(path, []byte(campaignSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLICampaignJSONStableAcrossWorkers(t *testing.T) {
	path := writeCampaignSpec(t)
	encode := func(workers string) string {
		var buf strings.Builder
		if err := run([]string{"-config", path, "-workers", workers, "-json", "campaign"}, &buf); err != nil {
			t.Fatalf("campaign -workers %s: %v", workers, err)
		}
		return buf.String()
	}
	sequential := encode("1")
	parallel := encode("4")
	if sequential != parallel {
		t.Fatalf("campaign output depends on worker count:\n%s\nvs\n%s", parallel, sequential)
	}
	var res struct {
		TotalCells  int `json:"totalCells"`
		FailedCells int `json:"failedCells"`
		Systems     []struct {
			System string `json:"system"`
		} `json:"systems"`
	}
	if err := json.Unmarshal([]byte(sequential), &res); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if res.TotalCells != 8 || res.FailedCells != 0 {
		t.Fatalf("campaign = %+v", res)
	}
	if len(res.Systems) != 2 || res.Systems[0].System != "Redbelly" {
		t.Fatalf("systems = %+v", res.Systems)
	}
}

func TestCLICampaignTextAndHeatmaps(t *testing.T) {
	path := writeCampaignSpec(t)
	dir := t.TempDir()
	var buf strings.Builder
	if err := run([]string{"-config", path, "-workers", "2", "-svg", dir, "campaign"}, &buf); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "campaign: 8 cells") || !strings.Contains(out, "most sensitive:") {
		t.Fatalf("output = %q", out)
	}
	for _, name := range []string{"campaign-Redbelly.svg", "campaign-Algorand.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "fault-space sensitivity") {
			t.Fatalf("%s is not a campaign heatmap", name)
		}
	}
}

func TestCLIFlagsAfterCommand(t *testing.T) {
	path := writeCampaignSpec(t)
	var buf strings.Builder
	if err := run([]string{"campaign", "-config", path, "-workers", "2", "-json"}, &buf); err != nil {
		t.Fatalf("flags after command rejected: %v", err)
	}
	var res struct {
		TotalCells int `json:"totalCells"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &res); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if res.TotalCells != 8 {
		t.Fatalf("totalCells = %d", res.TotalCells)
	}
}

func TestCLITwoCommandsRejected(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"fig3a", "fig3b"}, &buf); err == nil {
		t.Fatal("two commands accepted")
	}
}

func TestCLICampaignRequiresConfig(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"campaign"}, &buf); err == nil {
		t.Fatal("campaign without -config accepted")
	}
}

func TestCLIScenarioList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"scenario", "-list"}, &buf); err != nil {
		t.Fatalf("scenario -list: %v", err)
	}
	out := buf.String()
	for _, name := range []string{"cascade", "flap", "lossy-wan", "rolling-restart"} {
		if !strings.Contains(out, name) {
			t.Fatalf("scenario -list output %q is missing scenario %s", out, name)
		}
	}
	// Same two-column layout as lint -list: names padded to 20 columns,
	// descriptions aligned at column 22.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) < 22 {
			t.Fatalf("scenario -list line %q has no description column", line)
		}
		if line[20] != ' ' || line[21] == ' ' {
			t.Fatalf("scenario -list line %q is not aligned at column 22", line)
		}
	}
}

func TestCLISearchCount(t *testing.T) {
	out := runCLI(t, "-system", "Redbelly", "-fault", "crash", "-lo", "1", "-hi", "2", "search")
	if !strings.Contains(out, "search: Redbelly") || !strings.Contains(out, "probe count=") {
		t.Fatalf("output = %q", out)
	}
	if !strings.Contains(out, "boundary:") {
		t.Fatalf("output reports no boundary: %q", out)
	}
}

func TestCLISearchJSON(t *testing.T) {
	out := runCLI(t, "-system", "Redbelly", "-fault", "crash", "-lo", "1", "-hi", "2", "-json", "search")
	var res struct {
		System string `json:"system"`
		Axis   string `json:"axis"`
		Probes []struct {
			X    float64 `json:"x"`
			Fail bool    `json:"fail"`
		} `json:"probes"`
		Runs int `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if res.System != "Redbelly" || res.Axis != "count" || len(res.Probes) == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Runs != len(res.Probes)+1 {
		t.Fatalf("runs = %d, want probes+baseline = %d", res.Runs, len(res.Probes)+1)
	}
}

func TestCLISearchValidation(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-axis", "voltage", "search"}, &buf); err == nil {
		t.Fatal("unknown axis accepted")
	}
	if err := run([]string{"-axis", "intensity", "search"}, &buf); err == nil {
		t.Fatal("intensity without -scenario accepted")
	}
	if err := run([]string{"-axis", "count", "-fault", "secure-client", "search"}, &buf); err == nil {
		t.Fatal("count axis over a nodeless fault accepted")
	}
}

func TestCLILintList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"lint", "-list"}, &buf); err != nil {
		t.Fatalf("lint -list: %v", err)
	}
	for _, name := range []string{"globalrand", "maprange-rng", "snapshot-maporder", "unsorted-broadcast", "wallclock", "snapshot-fields", "goroutine-purity", "effort-bound"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("lint -list output %q is missing analyzer %s", buf.String(), name)
		}
	}
}

// TestCLILintUnknownAnalyzer mirrors TestCLIUnknownFault: a typo fails with
// an error that enumerates the valid names.
func TestCLILintUnknownAnalyzer(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"lint", "-analyzers", "bogus"}, &buf)
	if err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	for _, want := range []string{`unknown analyzer "bogus"`, "globalrand", "maprange-rng", "snapshot-maporder", "unsorted-broadcast", "wallclock", "snapshot-fields", "goroutine-purity", "effort-bound"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestCLILintCleanPackage(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"lint", "stabl/internal/stats"}, &buf); err != nil {
		t.Fatalf("lint on a clean package failed: %v\n%s", err, buf.String())
	}
	if strings.TrimSpace(buf.String()) != "" {
		t.Fatalf("lint on a clean package printed diagnostics:\n%s", buf.String())
	}
}

// TestCLILintJSON pins the machine-readable mode: a clean package renders
// an empty JSON array (never "null") and still exits zero.
func TestCLILintJSON(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"lint", "-json", "stabl/internal/stats"}, &buf); err != nil {
		t.Fatalf("lint -json on a clean package failed: %v\n%s", err, buf.String())
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("lint -json on a clean package = %q, want []", got)
	}
}
