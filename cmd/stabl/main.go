// Command stabl runs STABL experiments from the command line and prints the
// paper's tables and figures as text.
//
// Usage:
//
//	stabl [flags] <command>
//
// Commands:
//
//	fig1            Aptos latency eCDFs, baseline vs f=t crashes (Fig 1)
//	fig3a           sensitivity to f=t crashes, all chains (Fig 3a)
//	fig3b           sensitivity to f=t+1 transient failures (Fig 3b)
//	fig3c           sensitivity to an f=t+1 partition (Fig 3c)
//	fig3d           sensitivity to the secure client (Fig 3d)
//	fig4|fig5|fig6  throughput over time under the respective fault
//	fig7            the full sensitivity matrix (Fig 7)
//	recovery        recovery times after transient failures and partitions
//	suite           multi-seed sweep over all systems and faults
//	run             one experiment for -system and -fault
//	scenario        one composed multi-phase fault scenario for -system:
//	                a canned one (-scenario cascade, see -list) or a spec
//	                file with a "scenario" block (-config)
//	spec            validate spec files: stabl spec -validate <glob>...
//	campaign        chaos campaign over a fault-space grid (-config spec);
//	                spec mode "adaptive" forks shared checkpoints at the
//	                fault-injection instant instead of replaying each cell
//	search          bisect one fault axis (-axis count|slowby|intensity,
//	                -lo, -hi) to the pass/fail tolerance boundary of
//	                -system; -shrink minimizes the failing scenario
//	bench           kernel benchmark suite, written to BENCH_kernel.json,
//	                plus the fork-vs-replay suite in BENCH_fork.json;
//	                -scale-out runs the committee scale suite instead,
//	                -parallel-out the parallel-kernel speedup suite,
//	                -gossip-out the mesh-vs-kadcast gossip overlay suite
//	lint            determinism static analysis: stabl lint [packages]
//
// Flags select the system, fault, seed and deployment size, and may come
// before or after the command (`stabl campaign -config spec.json`); see
// -help. With -metrics-out (run, scenario) or -metrics-dir (campaign), each
// run also dumps its virtual-time instrumentation — JSONL and CSV interval
// metrics plus an SVG timeline of latency, commit rate, fault and scenario
// phase markers and consensus events. -cpuprofile and -memprofile write
// pprof profiles of any command (most useful around run, campaign and
// bench).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"stabl"
	"stabl/internal/kernelbench"
	"stabl/internal/lint"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stabl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stabl", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 42, "simulation seed")
		duration   = fs.Duration("duration", 400*time.Second, "virtual experiment duration")
		validators = fs.Int("validators", 10, "number of blockchain nodes")
		clients    = fs.Int("clients", 5, "number of load clients")
		rate       = fs.Float64("rate", 40, "per-client send rate (tx/s)")
		committee  = fs.Int("committee", 0, "sortition committee size on systems that support it (Algorand); 0 = classic full-quorum mode")
		flows      = fs.Int("flows", 0, "aggregate the client population into this many flow generators (0 = one event loop per client)")
		flowAccts  = fs.Int("flow-accounts", 0, "modeled accounts per flow generator (0 = library default; only with -flows)")
		noConn     = fs.Bool("no-conn", false, "skip the O(clients*validators) managed connection layer (recommended for runs past ~100 validators)")
		overlayTop = fs.String("overlay", "", "route validator gossip over a structured overlay: kadcast|regular|ring (empty = legacy full mesh)")
		system     = fs.String("system", "Redbelly", "system for the run command")
		fault      = fs.String("fault", "none", "fault for the run command: none|crash|transient|partition|secure-client|slow")
		scenName   = fs.String("scenario", "", "canned scenario name for the scenario command (see `stabl scenario -list`)")
		scenList   = fs.Bool("list", false, "scenario and lint commands: list the canned scenarios / analyzers and exit")
		analyzers  = fs.String("analyzers", "", "lint command: comma-separated analyzer names (default: all)")
		validate   = fs.Bool("validate", false, "spec command: validate the spec files matching the given globs")
		inject     = fs.Duration("inject", 133*time.Second, "fault injection time")
		recover    = fs.Duration("recover", 266*time.Second, "fault recovery time")
		bucket     = fs.Duration("bucket", 20*time.Second, "throughput rendering bucket")
		svgDir     = fs.String("svg", "", "also write figures as SVG files into this directory")
		configPath = fs.String("config", "", "JSON experiment spec for the run command, campaign spec for the campaign command (overrides other flags)")
		jsonOut    = fs.Bool("json", false, "print machine-readable JSON instead of text (run, suite and campaign commands)")
		workers    = fs.Int("workers", 0, "concurrent runs for the suite and campaign commands (0 = GOMAXPROCS)")

		metricsOut      = fs.String("metrics-out", "", "write the altered run's metrics (JSONL, CSV, SVG timeline) into this directory (run command)")
		metricsDir      = fs.String("metrics-dir", "", "write per-cell metrics dumps and timelines into this directory (campaign command)")
		metricsInterval = fs.Duration("metrics-interval", 5*time.Second, "aggregation interval for -metrics-out and -metrics-dir")

		axisName  = fs.String("axis", "count", "search command: swept axis: count|slowby|intensity")
		axisLo    = fs.Float64("lo", 1, "search command: low end of the searched range (expected to pass)")
		axisHi    = fs.Float64("hi", 5, "search command: high end of the searched range")
		axisRes   = fs.Float64("resolution", 0, "search command: bracket resolution for non-integer axes (0 = range/64)")
		threshold = fs.Float64("threshold", 0, "search command: a finite score at or above this also fails (0 = only liveness loss)")
		shrink    = fs.Bool("shrink", false, "search command: delta-debug the failing scenario at the boundary to a minimal spec (intensity axis)")

		benchOut   = fs.String("bench-out", "BENCH_kernel.json", "report file for the bench command")
		forkOut    = fs.String("fork-out", "BENCH_fork.json", "fork-vs-replay report file for the bench command")
		benchFull  = fs.Bool("bench-full", false, "bench command: also replay the Fig 7 matrix (40 runs; slow)")
		scaleOut   = fs.String("scale-out", "", "bench command: run only the scale suite (committee-mode Algorand at 512-10240 validators with flow workloads) and write its report to this file")
		gossipOut  = fs.String("gossip-out", "", "bench command: run only the gossip suite (mesh vs kadcast overlay at 512-10240 validators) and write its report to this file")
		scaleShort = fs.Bool("scale-short", false, "bench command: cap the scale, parallel and gossip suites at 512 validators (smoke runs)")
		parOut     = fs.String("parallel-out", "", "bench command: run only the parallel-kernel suite (sequential vs SimWorkers 1/2/4/8 on the scale cells) and write its report to this file")
		simWorkers = fs.Int("sim-workers", 0, "run the simulation on the conservative parallel kernel with this many partition queues (0 = sequential; outputs are byte-identical either way)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the command to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile to this file when the command finishes")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("expected a command")
	}
	// Flags may also follow the command (`stabl campaign -config spec.json`).
	command := fs.Arg(0)
	if err := fs.Parse(fs.Args()[1:]); err != nil {
		return err
	}
	// Only the spec and lint commands take positional operands (glob or
	// package patterns).
	operands := fs.Args()
	if command != "spec" && command != "lint" && len(operands) != 0 {
		fs.Usage()
		return fmt.Errorf("expected exactly one command, got %q and %q", command, fs.Arg(0))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "stabl: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "stabl: memprofile:", err)
			}
		}()
	}

	cfg := stabl.Config{
		Seed:             *seed,
		Duration:         *duration,
		Validators:       *validators,
		Clients:          *clients,
		RatePerClient:    *rate,
		CommitteeSize:    *committee,
		Flows:            *flows,
		FlowAccounts:     *flowAccts,
		DisableConnLayer: *noConn,
		SimWorkers:       *simWorkers,
		Fault:            stabl.FaultPlan{InjectAt: *inject, RecoverAt: *recover},
	}
	if *overlayTop != "" {
		kind, err := stabl.ParseOverlayKind(*overlayTop)
		if err != nil {
			return err
		}
		cfg.Overlay = stabl.OverlayConfig{Topology: kind}
	}

	switch cmd := command; cmd {
	case "fig1":
		fig, err := stabl.Fig1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, stabl.RenderECDF(fig, 25))
		return writeSVG(*svgDir, "fig1.svg", fig.SVG())
	case "fig3a", "fig3b", "fig3c", "fig3d":
		runner := map[string]func(stabl.Config) ([]*stabl.Comparison, error){
			"fig3a": stabl.Fig3a, "fig3b": stabl.Fig3b,
			"fig3c": stabl.Fig3c, "fig3d": stabl.Fig3d,
		}[cmd]
		title := map[string]string{
			"fig3a": "Fig 3a: sensitivity to f=t crashes",
			"fig3b": "Fig 3b: sensitivity to f=t+1 transient failures",
			"fig3c": "Fig 3c: sensitivity to an f=t+1 partition",
			"fig3d": "Fig 3d: sensitivity to the secure client (t+1 endpoints)",
		}[cmd]
		cmps, err := runner(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, stabl.RenderFig3(title, cmps))
		return writeSVG(*svgDir, cmd+".svg", stabl.Fig3SVG(title, cmps))
	case "fig4", "fig5", "fig6":
		runner := map[string]func(stabl.Config) ([]*stabl.Comparison, error){
			"fig4": stabl.Fig4, "fig5": stabl.Fig5, "fig6": stabl.Fig6,
		}[cmd]
		cmps, err := runner(cfg)
		if err != nil {
			return err
		}
		for _, cmp := range cmps {
			fmt.Fprint(out, stabl.RenderThroughput(cmp, *bucket))
			fmt.Fprintln(out)
			if err := writeSVG(*svgDir, fmt.Sprintf("%s-%s.svg", cmd, cmp.System), stabl.ThroughputSVG(cmp, 5*time.Second)); err != nil {
				return err
			}
		}
		return nil
	case "fig7":
		radar, err := stabl.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig 7: sensitivity matrix")
		fmt.Fprint(out, stabl.RenderRadar(radar))
		return nil
	case "recovery":
		for _, f := range []func(stabl.Config) ([]*stabl.Comparison, error){stabl.Fig5, stabl.Fig6} {
			cmps, err := f(cfg)
			if err != nil {
				return err
			}
			fmt.Fprint(out, stabl.RenderRecovery(stabl.RecoveryTimes(cmps)))
		}
		return nil
	case "suite":
		res, err := stabl.RunSuite(stabl.SuiteConfig{
			Base:    cfg,
			Systems: stabl.Systems(),
			Seeds:   []int64{*seed, *seed + 1, *seed + 2},
			Workers: *workers,
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			return res.WriteJSON(out)
		}
		for _, cell := range res.Cells {
			fmt.Fprintln(out, cell)
		}
		return nil
	case "campaign":
		if *configPath == "" {
			return fmt.Errorf("campaign needs -config <campaign-spec.json>, e.g. specs/campaign-crash-sweep.json")
		}
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		spec, err := stabl.ParseCampaignSpec(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
		opts := stabl.CampaignOptions{Workers: *workers}
		if !*jsonOut {
			// Live progress goes to stderr so stdout stays a clean,
			// deterministic artifact.
			opts.Progress = func(done, total int, cell *stabl.CampaignCell) {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, cell)
			}
		}
		var metricsMu sync.Mutex
		var metricsErr error
		if *metricsDir != "" {
			opts.MetricsInterval = *metricsInterval
			opts.Metrics = func(cell stabl.CampaignCoord, rec *stabl.MetricsRecorder) {
				title := fmt.Sprintf("%s %s f=%d seed=%d", cell.System, cell.Fault, cell.Count, cell.Seed)
				err := writeMetrics(*metricsDir, cell.Slug(), rec, title)
				metricsMu.Lock()
				if metricsErr == nil && err != nil {
					metricsErr = err
				}
				metricsMu.Unlock()
			}
		}
		res, err := stabl.RunCampaign(context.Background(), spec, opts)
		if err != nil {
			return err
		}
		if metricsErr != nil {
			return metricsErr
		}
		if cp := res.Checkpoint; cp != nil {
			// Wall time is a property of this machine, not of the
			// measurement, so it goes to stderr with the progress log.
			fmt.Fprintf(os.Stderr, "checkpoint reuse: %d of %d cells served from %d family checkpoint(s), %d full replay(s); ~%s of replay wall time saved\n",
				cp.ForkServed, res.TotalCells, cp.Families, cp.FullReplays,
				cp.WallSaved.Round(time.Millisecond))
		}
		for _, sys := range res.Systems {
			svg := stabl.CampaignHeatmapSVG(res, sys.System)
			if err := writeSVG(*svgDir, "campaign-"+sys.System+".svg", svg); err != nil {
				return err
			}
		}
		if *jsonOut {
			return res.WriteJSON(out)
		}
		return res.WriteText(out)
	case "search":
		sys, err := stabl.SystemByName(*system)
		if err != nil {
			return err
		}
		cfg.System = sys
		opts := stabl.SearchOptions{
			Axis: stabl.SearchAxis{
				Name: *axisName, Lo: *axisLo, Hi: *axisHi, Resolution: *axisRes,
			},
			Threshold: *threshold,
			Shrink:    *shrink,
		}
		if *axisName == stabl.SearchAxisIntensity {
			if *scenName == "" {
				return fmt.Errorf("search -axis intensity needs -scenario <name> (see `stabl scenario -list`)")
			}
			spec, err := stabl.BuiltinScenario(*scenName, *duration)
			if err != nil {
				return err
			}
			opts.Scenario = &spec
			cfg.Fault.Kind = stabl.FaultNone
		} else {
			kind, err := stabl.ParseFaultKind(*fault)
			if err != nil {
				return err
			}
			cfg.Fault.Kind = kind
		}
		opts.Base = cfg
		if !*jsonOut {
			opts.Progress = func(x float64, fail bool, cmp *stabl.Comparison) {
				verdict := "pass"
				if fail {
					verdict = "FAIL"
				}
				fmt.Fprintf(os.Stderr, "probe %s=%g: %s (%s)\n", *axisName, x, verdict, cmp.Score)
			}
		}
		res, err := stabl.RunSearch(opts)
		if err != nil {
			return err
		}
		if *jsonOut {
			return res.WriteJSON(out)
		}
		return res.WriteText(out)
	case "bench":
		if *parOut != "" {
			// The parallel suite, like the scale suite, replaces the
			// figure/micro/fork suites: it reruns the scale cells under
			// every worker count and checks byte-identity against the
			// sequential reference.
			pf, err := os.Create(*parOut)
			if err != nil {
				return err
			}
			parRep, err := kernelbench.RunParallel(kernelbench.Options{
				Short:    *scaleShort,
				Progress: func(name string) { fmt.Fprintln(os.Stderr, "bench:", name) },
			})
			if err != nil {
				pf.Close()
				return err
			}
			if err := parRep.WriteJSON(pf); err != nil {
				pf.Close()
				return err
			}
			if err := pf.Close(); err != nil {
				return err
			}
			if *jsonOut {
				return parRep.WriteJSON(out)
			}
			return parRep.WriteText(out)
		}
		if *gossipOut != "" {
			// The gossip suite replaces the figure/micro/fork suites: it
			// reruns the scale deployments once over the mesh and once over
			// the kadcast overlay and reports sends per broadcast origin.
			gf, err := os.Create(*gossipOut)
			if err != nil {
				return err
			}
			gossipRep, err := kernelbench.RunGossip(kernelbench.Options{
				Short:    *scaleShort,
				Progress: func(name string) { fmt.Fprintln(os.Stderr, "bench:", name) },
			})
			if err != nil {
				gf.Close()
				return err
			}
			if err := gossipRep.WriteJSON(gf); err != nil {
				gf.Close()
				return err
			}
			if err := gf.Close(); err != nil {
				return err
			}
			if *jsonOut {
				return gossipRep.WriteJSON(out)
			}
			return gossipRep.WriteText(out)
		}
		if *scaleOut != "" {
			// The scale suite replaces the figure/micro/fork suites: its
			// 10k-validator cells are a different cost regime and get
			// their own committed report.
			sf, err := os.Create(*scaleOut)
			if err != nil {
				return err
			}
			scaleRep, err := kernelbench.RunScale(kernelbench.Options{
				Short:    *scaleShort,
				Progress: func(name string) { fmt.Fprintln(os.Stderr, "bench:", name) },
			})
			if err != nil {
				sf.Close()
				return err
			}
			if err := scaleRep.WriteJSON(sf); err != nil {
				sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
			if *jsonOut {
				return scaleRep.WriteJSON(out)
			}
			return scaleRep.WriteText(out)
		}
		// Create the report file first so a bad path fails in
		// milliseconds, not after minutes of benchmarking.
		f, err := os.Create(*benchOut)
		if err != nil {
			return err
		}
		rep, err := kernelbench.Run(kernelbench.Options{
			Duration: *duration,
			Full:     *benchFull,
			Progress: func(name string) { fmt.Fprintln(os.Stderr, "bench:", name) },
		})
		if err != nil {
			f.Close()
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// The fork suite measures checkpoint reuse against from-scratch
		// replays; it is small, so bench always includes it.
		ff, err := os.Create(*forkOut)
		if err != nil {
			return err
		}
		forkRep, err := kernelbench.RunFork(kernelbench.Options{
			Duration: *duration,
			Progress: func(name string) { fmt.Fprintln(os.Stderr, "bench:", name) },
		})
		if err != nil {
			ff.Close()
			return err
		}
		if err := forkRep.WriteJSON(ff); err != nil {
			ff.Close()
			return err
		}
		if err := ff.Close(); err != nil {
			return err
		}
		if *jsonOut {
			if err := rep.WriteJSON(out); err != nil {
				return err
			}
			return forkRep.WriteJSON(out)
		}
		if err := rep.WriteText(out); err != nil {
			return err
		}
		return forkRep.WriteText(out)
	case "run":
		if *configPath != "" {
			f, err := os.Open(*configPath)
			if err != nil {
				return err
			}
			loaded, err := stabl.LoadExperiment(f)
			closeErr := f.Close()
			if err != nil {
				return err
			}
			if closeErr != nil {
				return closeErr
			}
			cfg = loaded
		} else {
			sys, err := stabl.SystemByName(*system)
			if err != nil {
				return err
			}
			kind, err := stabl.ParseFaultKind(*fault)
			if err != nil {
				return err
			}
			cfg.System = sys
			cfg.Fault.Kind = kind
		}
		var rec *stabl.MetricsRecorder
		if *metricsOut != "" {
			rec = stabl.NewMetricsRecorder(*metricsInterval)
			cfg.Metrics = rec
		}
		cmp, err := stabl.Compare(cfg)
		if err != nil {
			return err
		}
		if rec != nil {
			base := fmt.Sprintf("run-%s-%s", cmp.System, cmp.Fault.Kind)
			title := fmt.Sprintf("%s under %s", cmp.System, cmp.Fault.Kind)
			if err := writeMetrics(*metricsOut, base, rec, title); err != nil {
				return err
			}
		}
		if *jsonOut {
			return stabl.NewReport(cmp).WriteJSON(out)
		}
		fmt.Fprintln(out, cmp)
		fmt.Fprint(out, stabl.RenderThroughput(cmp, *bucket))
		return writeSVG(*svgDir, fmt.Sprintf("run-%s-%s.svg", cmp.System, cmp.Fault.Kind), stabl.ThroughputSVG(cmp, 5*time.Second))
	case "scenario":
		if *scenList {
			for _, name := range stabl.BuiltinScenarios() {
				sc, err := stabl.BuiltinScenario(name, 0)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%-20s %s\n", name, sc.Description)
			}
			return nil
		}
		if *configPath != "" {
			f, err := os.Open(*configPath)
			if err != nil {
				return err
			}
			loaded, err := stabl.LoadExperiment(f)
			closeErr := f.Close()
			if err != nil {
				return err
			}
			if closeErr != nil {
				return closeErr
			}
			if loaded.Scenario == nil {
				return fmt.Errorf("scenario: %s has no \"scenario\" block (use the run command for single-fault specs)", *configPath)
			}
			cfg = loaded
		} else {
			if *scenName == "" {
				return fmt.Errorf("scenario needs -scenario <name> (see `stabl scenario -list`) or -config <spec.json>")
			}
			sys, err := stabl.SystemByName(*system)
			if err != nil {
				return err
			}
			spec, err := stabl.BuiltinScenario(*scenName, *duration)
			if err != nil {
				return err
			}
			sc, err := spec.Build()
			if err != nil {
				return err
			}
			cfg.System = sys
			cfg.Fault = stabl.FaultPlan{}
			cfg.Scenario = sc
		}
		var rec *stabl.MetricsRecorder
		if *metricsOut != "" {
			rec = stabl.NewMetricsRecorder(*metricsInterval)
			cfg.Metrics = rec
		}
		cmp, err := stabl.Compare(cfg)
		if err != nil {
			return err
		}
		base := fmt.Sprintf("scenario-%s-%s", cmp.System, cmp.Scenario)
		if rec != nil {
			title := fmt.Sprintf("%s under scenario %s", cmp.System, cmp.Scenario)
			if err := writeMetrics(*metricsOut, base, rec, title); err != nil {
				return err
			}
		}
		if *jsonOut {
			return stabl.NewReport(cmp).WriteJSON(out)
		}
		fmt.Fprintln(out, cmp)
		fmt.Fprint(out, stabl.RenderThroughput(cmp, *bucket))
		return writeSVG(*svgDir, base+".svg", stabl.ThroughputSVG(cmp, 5*time.Second))
	case "lint":
		if *scenList {
			for _, a := range lint.All() {
				fmt.Fprintf(out, "%-20s %s\n", a.Name, a.Doc)
			}
			return nil
		}
		selected, err := lint.Select(*analyzers)
		if err != nil {
			return err
		}
		prog, err := lint.Load(operands)
		if err != nil {
			return err
		}
		// -json prints every finding (suppressed ones flagged) as a stable
		// JSON array; text mode prints only the unsuppressed ones. Exit
		// status counts unsuppressed findings either way.
		var diags []lint.Diagnostic
		if *jsonOut {
			diags = lint.RunAll(prog, selected)
			if err := lint.WriteJSON(out, diags); err != nil {
				return err
			}
		} else {
			diags = lint.Run(prog, selected)
			for _, d := range diags {
				fmt.Fprintln(out, d)
			}
		}
		// Same non-zero-exit convention as `stabl spec -validate`: clean
		// trees exit 0, anything unsuppressed fails the command (and with
		// it, make verify).
		if n := lint.Exitable(diags); n > 0 {
			return fmt.Errorf("lint: %d issue(s) in %d package(s)", n, len(prog.Pkgs))
		}
		return nil
	case "spec":
		if !*validate {
			return fmt.Errorf("spec needs -validate, e.g. `stabl spec -validate 'specs/*.json'`")
		}
		patterns := operands
		if len(patterns) == 0 {
			patterns = []string{"specs/*.json", "specs/scenarios/*.json"}
		}
		var paths []string
		for _, pat := range patterns {
			matches, err := filepath.Glob(pat)
			if err != nil {
				return fmt.Errorf("spec: bad glob %q: %w", pat, err)
			}
			paths = append(paths, matches...)
		}
		if len(paths) == 0 {
			return fmt.Errorf("spec: no files match %q", patterns)
		}
		failed := 0
		for _, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			kind, err := stabl.ValidateSpec(f)
			f.Close()
			if err != nil {
				failed++
				fmt.Fprintf(out, "%-44s INVALID: %v\n", path, err)
				continue
			}
			fmt.Fprintf(out, "%-44s ok (%s)\n", path, kind)
		}
		if failed > 0 {
			return fmt.Errorf("spec: %d of %d files invalid", failed, len(paths))
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// writeMetrics dumps one recorded run into dir as <base>.metrics.jsonl,
// <base>.metrics.csv and <base>.timeline.svg.
func writeMetrics(dir, base string, rec *stabl.MetricsRecorder, title string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var jsonl, csv bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		return err
	}
	if err := rec.WriteCSV(&csv); err != nil {
		return err
	}
	files := []struct {
		name string
		data []byte
	}{
		{base + ".metrics.jsonl", jsonl.Bytes()},
		{base + ".metrics.csv", csv.Bytes()},
		{base + ".timeline.svg", []byte(stabl.TimelineSVG(rec, title))},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeSVG writes an SVG document into dir (no-op when dir is empty).
func writeSVG(dir, name, svg string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(svg), 0o644)
}
