package stabl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"
)

// resultFingerprint digests every *measured* output of a run — latencies in
// collection order, the throughput series, commit/submit counters, network
// stats, integrity findings. The parallel-kernel wall-clock measurements
// (SimWorkers/SimWindows/SimBusyWall/SimCriticalWall) are deliberately
// excluded: they describe how the host executed the run, not what the run
// measured, and are the only RunResult fields allowed to differ between
// kernels.
func resultFingerprint(r *RunResult) string {
	h := sha256.New()
	fmt.Fprintf(h, "commits=%d submitted=%d pending=%d last=%d height=%d liveness=%t events=%d\n",
		r.UniqueCommits, r.Submitted, r.Pending, r.LastCommitAt, r.MaxHeight, r.LivenessLost, r.Events)
	fmt.Fprintf(h, "net=%+v\n", r.NetStats)
	fmt.Fprintf(h, "faulty=%v integrity=%v\n", r.FaultyNodes, r.IntegrityErrors)
	fmt.Fprintf(h, "reads=%d mism=%d div=%d\n", r.Reads, r.ReadMismatches, r.ReadDivergences)
	for _, v := range r.Latencies {
		fmt.Fprintf(h, "l %b\n", v)
	}
	for _, v := range r.ReadLatencies {
		fmt.Fprintf(h, "r %b\n", v)
	}
	fmt.Fprintf(h, "bucket=%d\n", r.Throughput.Bucket)
	for _, c := range r.Throughput.Counts {
		fmt.Fprintf(h, "t %d\n", c)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenParallelMatchesSequential is the parallel kernel's core
// guarantee: for every system, the seed-42 crash comparison run on the
// parallel kernel at P in {1, 2, 4} is byte-identical — scores to the last
// bit, every latency sample, every network counter, every event count — to
// the sequential kernel's run of the same config.
func TestGoldenParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel golden skipped in -short mode")
	}
	cfg := Config{
		Seed:     42,
		Duration: 120 * time.Second,
		Fault:    FaultPlan{Kind: FaultCrash, InjectAt: 40 * time.Second, RecoverAt: 80 * time.Second},
	}
	for _, sys := range Systems() {
		c := cfg
		c.System = sys
		seq, err := Compare(c)
		if err != nil {
			t.Fatalf("%s sequential: %v", sys.Name(), err)
		}
		seqBase := resultFingerprint(seq.Baseline)
		seqAlt := resultFingerprint(seq.Altered)
		for _, workers := range []int{1, 2, 4} {
			cp := c
			cp.SimWorkers = workers
			par, err := Compare(cp)
			if err != nil {
				t.Fatalf("%s P=%d: %v", sys.Name(), workers, err)
			}
			if par.Score.Infinite != seq.Score.Infinite || par.Score.Value != seq.Score.Value {
				t.Errorf("%s P=%d: score %.17g (inf=%t), sequential %.17g (inf=%t)",
					sys.Name(), workers, par.Score.Value, par.Score.Infinite,
					seq.Score.Value, seq.Score.Infinite)
			}
			if got := resultFingerprint(par.Baseline); got != seqBase {
				t.Errorf("%s P=%d: baseline diverged from sequential\nseq commits=%d events=%d\npar commits=%d events=%d",
					sys.Name(), workers, seq.Baseline.UniqueCommits, seq.Baseline.Events,
					par.Baseline.UniqueCommits, par.Baseline.Events)
			}
			if got := resultFingerprint(par.Altered); got != seqAlt {
				t.Errorf("%s P=%d: altered run diverged from sequential\nseq commits=%d events=%d\npar commits=%d events=%d",
					sys.Name(), workers, seq.Altered.UniqueCommits, seq.Altered.Events,
					par.Altered.UniqueCommits, par.Altered.Events)
			}
			if par.Altered.SimWorkers != workers {
				t.Errorf("%s P=%d: run reported SimWorkers=%d (parallel kernel not engaged)",
					sys.Name(), workers, par.Altered.SimWorkers)
			}
		}
	}
}

// TestGoldenParallelCommittee repeats the byte-identity check on the other
// deployment regime the kernel must cover: committee-mode Algorand (c=64)
// with a flow-aggregated workload and the managed connection layer off — the
// scale suite's configuration, where sortition keeps per-round traffic flat
// and most nodes are silent in any given round.
func TestGoldenParallelCommittee(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel committee golden skipped in -short mode")
	}
	cfg := Config{
		System:           NewAlgorand(),
		Seed:             42,
		Validators:       128,
		Clients:          256,
		Flows:            8,
		FlowAccounts:     256,
		RatePerClient:    0.05,
		CommitteeSize:    64,
		Duration:         60 * time.Second,
		DisableConnLayer: true,
	}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	want := resultFingerprint(seq)
	for _, workers := range []int{1, 2, 4} {
		cp := cfg
		cp.System = NewAlgorand()
		cp.SimWorkers = workers
		par, err := Run(cp)
		if err != nil {
			t.Fatalf("P=%d: %v", workers, err)
		}
		if par.SimWorkers != workers {
			t.Errorf("P=%d: run reported SimWorkers=%d (parallel kernel not engaged)", workers, par.SimWorkers)
		}
		if got := resultFingerprint(par); got != want {
			t.Errorf("P=%d: committee run diverged from sequential\nseq commits=%d events=%d height=%d\npar commits=%d events=%d height=%d",
				workers, seq.UniqueCommits, seq.Events, seq.MaxHeight,
				par.UniqueCommits, par.Events, par.MaxHeight)
		}
	}
}
