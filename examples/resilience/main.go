// Resilience comparison: how do all five blockchains react to f = t
// permanent crashes?
//
// This is a compact version of the paper's §4 (Fig 3a + Fig 4): each chain
// runs a fault-free baseline and a run in which its tolerance-many
// validators crash mid-experiment. The example prints the score ranking and
// each chain's throughput around the crash, showing Redbelly's leaderless
// insensitivity against the leader-coupled designs.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"stabl"
)

func main() {
	cfg := stabl.Config{
		Seed:     11,
		Duration: 240 * time.Second,
		Fault: stabl.FaultPlan{
			Kind:     stabl.FaultCrash,
			InjectAt: 80 * time.Second,
		},
	}

	var cmps []*stabl.Comparison
	for _, sys := range stabl.Systems() {
		c := cfg
		c.System = sys
		cmp, err := stabl.Compare(c)
		if err != nil {
			log.Fatal(err)
		}
		cmps = append(cmps, cmp)
	}

	sort.Slice(cmps, func(i, j int) bool {
		return cmps[i].Score.Value < cmps[j].Score.Value
	})
	fmt.Println("Resilience ranking (lower sensitivity = more resilient):")
	for rank, cmp := range cmps {
		t := cmp.Baseline
		fmt.Printf("%d. %-10s score=%-10s baseline=%d commits, altered=%d commits\n",
			rank+1, cmp.System, cmp.Score, t.UniqueCommits, cmp.Altered.UniqueCommits)
	}

	fmt.Println("\nThroughput around the crash (tx/s, 40 s buckets):")
	for _, cmp := range cmps {
		fmt.Print(stabl.RenderThroughput(cmp, 40*time.Second))
		fmt.Println()
	}
}
