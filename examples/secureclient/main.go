// Secure client: what does Byzantine node tolerance cost an application?
//
// Trusting a single RPC node reduces the tolerated Byzantine faults to
// zero. The defence — submitting every transaction to t+1 validators and
// cross-checking all their answers — is free on some chains and expensive on
// others (§7): mempool-less Solana and fully-gossiped Algorand barely
// notice, Redbelly's superblocks and Avalanche's partial gossip actually get
// *faster*, while Aptos pays for Block-STM speculatively re-executing every
// redundant copy.
package main

import (
	"fmt"
	"log"
	"time"

	"stabl"
)

func main() {
	cfg := stabl.Config{
		Seed:     31,
		Duration: 300 * time.Second,
		Fault:    stabl.FaultPlan{Kind: stabl.FaultSecureClient},
	}

	fmt.Println("Secure client (submit to t+1 validators, wait for all):")
	for _, sys := range stabl.Systems() {
		c := cfg
		c.System = sys
		cmp, err := stabl.Compare(c)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "slower"
		switch {
		case cmp.Score.Value < 0.2:
			verdict = "unchanged"
		case cmp.Score.Benefit:
			verdict = "FASTER"
		}
		fmt.Printf("  %-10s endpoints=%d sensitivity=%-8.2f -> %s\n",
			cmp.System, sys.Tolerance(10)+1, cmp.Score.Value, verdict)
		fmt.Printf("             mean latency %.2fs baseline vs %.2fs with redundancy\n",
			mean(cmp.Baseline.Latencies), mean(cmp.Altered.Latencies))
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
