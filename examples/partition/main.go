// Partition tolerance: how long does each chain need to resume after a
// network partition heals?
//
// This reproduces the §6 observation that partition recovery is governed by
// connection-management timers: the partition physically heals at a known
// instant, but a chain only resumes once its peers' reconnection backoff
// fires. Aptos (5-second probes) comes back almost immediately; Algorand
// and Redbelly take tens of seconds; Avalanche and Solana never come back.
package main

import (
	"fmt"
	"log"
	"time"

	"stabl"
)

func main() {
	cfg := stabl.Config{
		Seed:     23,
		Duration: 400 * time.Second,
		Fault: stabl.FaultPlan{
			Kind:      stabl.FaultPartition,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	}

	fmt.Println("Partition of f = t+1 nodes from 133s to 266s:")
	for _, sys := range stabl.Systems() {
		c := cfg
		c.System = sys
		cmp, err := stabl.Compare(c)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case cmp.Score.Infinite:
			fmt.Printf("  %-10s never recovers (sensitivity = inf; last commit %.0fs)\n",
				cmp.System, cmp.Altered.LastCommitAt.Seconds())
		case cmp.Recovered:
			fmt.Printf("  %-10s resumes %.0fs after the heal (sensitivity %.2f)\n",
				cmp.System, cmp.RecoveryTime.Seconds(), cmp.Score.Value)
		default:
			fmt.Printf("  %-10s commits but below baseline for the rest of the run (sensitivity %.2f)\n",
				cmp.System, cmp.Score.Value)
		}
	}
}
