// Credence: Byzantine-safe reads with the credence.js-style library the
// paper's future work calls for.
//
// A client that trusts a single validator's answers tolerates zero
// Byzantine faults: the node can forge any balance. The verified reader
// asks t+1 validators and returns a value only when every response agrees —
// one honest node among them is enough to expose a forgery. This example
// runs verified reads against each chain alongside the regular workload and
// reports the read latency and how often replicas transiently disagreed.
package main

import (
	"fmt"
	"log"
	"time"

	"stabl"
	"stabl/internal/stats"
)

func main() {
	fmt.Println("Verified reads (t+1 endpoints, unanimity required), 2 reads/s per client:")
	for _, sys := range stabl.Systems() {
		res, err := stabl.Run(stabl.Config{
			System:   sys,
			Seed:     13,
			Duration: 120 * time.Second,
			ReadRate: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := stats.Summarize(res.ReadLatencies)
		fmt.Printf("  %-10s %d reads, %s\n", sys.Name(), res.Reads, sum)
		fmt.Printf("             transient disagreements: %d, unresolved divergences: %d\n",
			res.ReadMismatches, res.ReadDivergences)
	}
}
