// Quickstart: measure the sensitivity of one blockchain to one failure.
//
// This deploys a 10-validator Redbelly network with 5 clients at 40 tx/s,
// runs a fault-free baseline and an altered run in which f = t+1 = 4 nodes
// crash at 60 s and reboot at 120 s, and prints the sensitivity score and
// the recovery time. Everything runs in virtual time; the two 200-second
// experiments complete in a moment.
package main

import (
	"fmt"
	"log"
	"time"

	"stabl"
)

func main() {
	cmp, err := stabl.Compare(stabl.Config{
		System:   stabl.NewRedbelly(),
		Seed:     1,
		Duration: 200 * time.Second,
		Fault: stabl.FaultPlan{
			Kind:      stabl.FaultTransient,
			InjectAt:  60 * time.Second,
			RecoverAt: 120 * time.Second,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system:            %s\n", cmp.System)
	fmt.Printf("fault:             %s (f > t, inject 60s, recover 120s)\n", cmp.Fault.Kind)
	fmt.Printf("sensitivity score: %s\n", cmp.Score)
	if cmp.Recovered {
		fmt.Printf("recovery time:     %.0fs after the nodes rebooted\n", cmp.RecoveryTime.Seconds())
	} else {
		fmt.Println("recovery time:     never (liveness lost)")
	}
	fmt.Printf("baseline commits:  %d of %d submitted\n",
		cmp.Baseline.UniqueCommits, cmp.Baseline.Submitted)
	fmt.Printf("altered commits:   %d of %d submitted\n",
		cmp.Altered.UniqueCommits, cmp.Altered.Submitted)
	fmt.Println()
	fmt.Print(stabl.RenderThroughput(cmp, 20*time.Second))
}
