// CI gate: the paper pitches STABL as "pluggable in continuous integration
// pipelines to measure a blockchain's sensitivity". This example is that
// pipeline stage: it sweeps one system across all four fault kinds and
// three seeds, prints the aggregated cells, emits a JSON artifact, and
// exits non-zero when a regression gate trips (liveness flakiness or a
// crash-sensitivity budget violation).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"stabl"
)

func main() {
	res, err := stabl.RunSuite(stabl.SuiteConfig{
		Base: stabl.Config{
			Duration: 200 * time.Second,
			Fault:    stabl.FaultPlan{InjectAt: 70 * time.Second, RecoverAt: 130 * time.Second},
		},
		Systems: []stabl.System{stabl.NewRedbelly()},
		Seeds:   []int64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, cell := range res.Cells {
		fmt.Println(cell)
	}
	if err := writeArtifact(res); err != nil {
		log.Fatal(err)
	}

	// Gates: fail the build when dependability regresses.
	failures := 0
	for _, cell := range res.Cells {
		if !cell.Stable() {
			fmt.Printf("GATE: %s/%s liveness is flaky (%d/%d runs lost it)\n",
				cell.System, cell.Fault, cell.InfiniteRuns, cell.Runs)
			failures++
		}
	}
	crash := res.Cell("Redbelly", stabl.FaultCrash)
	const crashBudget = 5.0
	if crash != nil && crash.MeanScore > crashBudget {
		fmt.Printf("GATE: crash sensitivity %.2f exceeds budget %.1f\n", crash.MeanScore, crashBudget)
		failures++
	}
	if failures > 0 {
		os.Exit(1)
	}
	fmt.Println("all dependability gates passed")
}

func writeArtifact(res *stabl.SuiteResult) error {
	f, err := os.CreateTemp("", "stabl-suite-*.json")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("suite artifact: %s\n", f.Name())
	return nil
}
