// Chaos campaign: instead of probing the paper's hand-picked fault points,
// sweep a grid over the fault space — fault kind x fault count around the
// tolerance boundary x inject time x seed — on all CPU cores at once, then
// rank where each chain is most sensitive. This is the systematic
// exploration the chaos-engineering literature argues for, compressed into
// a few wall-clock seconds of virtual time.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"stabl"
)

func main() {
	spec := stabl.CampaignSpec{
		Systems:     []string{"Redbelly", "Algorand"},
		Faults:      []string{"crash", "transient"},
		CountDeltas: []int{0, 1}, // f = t and f = t+1: either side of the claimed tolerance
		InjectSecs:  []float64{30, 60},
		OutageSecs:  []float64{30},
		Seeds:       []int64{1, 2},
		Base:        stabl.Spec{Validators: 10, Clients: 5, DurationSec: 120},
	}

	res, err := stabl.RunCampaign(context.Background(), spec, stabl.CampaignOptions{
		Progress: func(done, total int, cell *stabl.CampaignCell) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, cell)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := res.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The per-system heatmaps make the surfaces visual: fault kind rows,
	// inject-time columns, liveness losses in dark red.
	for _, sys := range res.Systems {
		name := "campaign-" + sys.System + ".svg"
		if err := os.WriteFile(name, []byte(stabl.CampaignHeatmapSVG(res, sys.System)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
