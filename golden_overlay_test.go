package stabl

import (
	"testing"
	"time"
)

// TestGoldenOverlaySeed42 pins the exact scores, commit counts, scheduler
// event counts and overlay routing counters of the seed-42 crash comparison
// for all five chains routed over the kadcast broadcast overlay. Like
// TestGoldenSeed42Scores this is a determinism witness, but for the overlay
// path specifically: topology derivation, duplicate suppression, delegate
// rotation and the tightened per-pair lookahead must all replay
// byte-for-byte across processes and machines. The overlay counters also pin
// the routing efficiency — OriginSends/Origins is the per-broadcast cost the
// structured overlay claims over the mesh's n-1.
func TestGoldenOverlaySeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("overlay golden pin skipped in -short mode")
	}
	golden := []struct {
		system      string
		score       float64
		baseline    int
		altered     int
		events      uint64
		origins     uint64
		originSends uint64
		relayed     uint64
		duplicates  uint64
	}{
		{"Algorand", 0.87286778786296537, 23730, 23446, 648475, 25085, 210306, 418101, 361195},
		{"Aptos", 10.191567569384517, 23898, 23822, 538600, 24975, 209724, 364721, 282605},
		{"Avalanche", 8.692699551527113, 23288, 23217, 725772, 58, 447, 1045, 879},
		{"Redbelly", 0.43627692854750633, 23947, 23865, 283369, 9259, 77397, 134205, 108512},
		{"Solana", 2.9413722128703768, 23909, 23833, 775372, 86891, 482357, 389916, 299770},
	}
	for _, want := range golden {
		sys, err := SystemByName(want.system)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			System:   sys,
			Seed:     42,
			Duration: 120 * time.Second,
			Overlay:  OverlayConfig{Topology: "kadcast"},
			Fault:    FaultPlan{Kind: FaultCrash, InjectAt: 40 * time.Second, RecoverAt: 80 * time.Second},
		}
		cmp, err := Compare(cfg)
		if err != nil {
			t.Fatalf("%s: %v", want.system, err)
		}
		if cmp.Score.Infinite {
			t.Errorf("%s: score became infinite, want %v", want.system, want.score)
			continue
		}
		if cmp.Score.Value != want.score {
			t.Errorf("%s: score = %.17g, want %.17g", want.system, cmp.Score.Value, want.score)
		}
		if cmp.Baseline.UniqueCommits != want.baseline || cmp.Altered.UniqueCommits != want.altered {
			t.Errorf("%s: commits = %d/%d, want %d/%d", want.system,
				cmp.Baseline.UniqueCommits, cmp.Altered.UniqueCommits, want.baseline, want.altered)
		}
		if cmp.Altered.Events != want.events {
			t.Errorf("%s: altered run fired %d events, want %d", want.system, cmp.Altered.Events, want.events)
		}
		ov := cmp.Altered.Overlay
		if ov.Origins != want.origins || ov.OriginSends != want.originSends ||
			ov.Relayed != want.relayed || ov.Duplicates != want.duplicates {
			t.Errorf("%s: overlay counters = {origins=%d sends=%d relayed=%d dups=%d}, want {%d %d %d %d}",
				want.system, ov.Origins, ov.OriginSends, ov.Relayed, ov.Duplicates,
				want.origins, want.originSends, want.relayed, want.duplicates)
		}
		// The structural claim behind the counters: per-origin cost well
		// below the mesh's n-1 = 9 sends at this deployment size would be
		// meaningless, but the delegate fan-out must at least never exceed
		// the full peer set.
		if ov.Origins > 0 && ov.SendsPerBroadcast() > 9 {
			t.Errorf("%s: %f sends/broadcast exceeds the n-1 mesh cost", want.system, ov.SendsPerBroadcast())
		}
	}
}

// TestGoldenOverlayParallelInvariance is the overlay acceptance check for the
// parallel kernel: with the kadcast overlay configured (and with it the
// tightened per-pair lookahead horizon), every chain's seed-42 run is
// byte-identical at SimWorkers 1, 2 and 4 to the sequential run.
func TestGoldenOverlayParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("overlay parallel invariance skipped in -short mode")
	}
	for _, sys := range Systems() {
		cfg := Config{
			System:   sys,
			Seed:     42,
			Duration: 60 * time.Second,
			Overlay:  OverlayConfig{Topology: "kadcast"},
		}
		seq, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", sys.Name(), err)
		}
		want := resultFingerprint(seq)
		for _, workers := range []int{1, 2, 4} {
			cp := cfg
			s, err := SystemByName(sys.Name())
			if err != nil {
				t.Fatal(err)
			}
			cp.System = s
			cp.SimWorkers = workers
			par, err := Run(cp)
			if err != nil {
				t.Fatalf("%s P=%d: %v", sys.Name(), workers, err)
			}
			if par.SimWorkers != workers {
				t.Errorf("%s P=%d: run reported SimWorkers=%d (parallel kernel not engaged)",
					sys.Name(), workers, par.SimWorkers)
			}
			if got := resultFingerprint(par); got != want {
				t.Errorf("%s P=%d: overlay run diverged from sequential\nseq commits=%d events=%d\npar commits=%d events=%d",
					sys.Name(), workers, seq.UniqueCommits, seq.Events, par.UniqueCommits, par.Events)
			}
			if par.Overlay != seq.Overlay {
				t.Errorf("%s P=%d: overlay counters %+v, sequential %+v",
					sys.Name(), workers, par.Overlay, seq.Overlay)
			}
		}
	}
}

// TestGoldenEclipseSeed42 pins the eclipse scenario — victims severed from
// exactly their overlay neighborhoods — on the two chains whose gossip
// dependence differs most: Redbelly's reliable-broadcast consensus shrugs it
// off while Algorand's pull-gossip committee pipeline degrades hard. The pin
// covers the whole eclipse path: Env.Neighbors lowering, per-victim
// partition expansion and the single group heal.
func TestGoldenEclipseSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("eclipse golden pin skipped in -short mode")
	}
	golden := []struct {
		system   string
		score    float64
		baseline int
		altered  int
		events   uint64
	}{
		{"Redbelly", 0.26601424083552416, 23947, 23931, 326501},
		{"Algorand", 310.13081646367505, 23730, 21057, 610261},
	}
	for _, want := range golden {
		sys, err := SystemByName(want.system)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := BuiltinScenario("eclipse", 120*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			System:   sys,
			Seed:     42,
			Duration: 120 * time.Second,
			Overlay:  OverlayConfig{Topology: "kadcast"},
			Scenario: sc,
		}
		cmp, err := Compare(cfg)
		if err != nil {
			t.Fatalf("%s: %v", want.system, err)
		}
		if cmp.Score.Infinite {
			t.Errorf("%s: score became infinite, want %v", want.system, want.score)
			continue
		}
		if cmp.Score.Value != want.score {
			t.Errorf("%s: score = %.17g, want %.17g", want.system, cmp.Score.Value, want.score)
		}
		if cmp.Baseline.UniqueCommits != want.baseline || cmp.Altered.UniqueCommits != want.altered {
			t.Errorf("%s: commits = %d/%d, want %d/%d", want.system,
				cmp.Baseline.UniqueCommits, cmp.Altered.UniqueCommits, want.baseline, want.altered)
		}
		if cmp.Altered.Events != want.events {
			t.Errorf("%s: altered run fired %d events, want %d", want.system, cmp.Altered.Events, want.events)
		}
	}
}
