package stabl

import (
	"testing"
	"time"
)

// TestGoldenScenarioSeed42 pins the exact scores, commit counts and
// scheduler-event counts of three shipped scenarios on two systems at seed 42.
// Like TestGoldenSeed42Scores this is a determinism witness, but for the
// scenario path specifically: scenario compilation (node-set resolution,
// flap expansion), the loss/jitter degradation primitives, and the phase-
// annotated run must all replay byte-for-byte across processes and machines.
// A drift here means a change to the scenario engine or the degradation
// send path altered the simulation, not just its shape.
func TestGoldenScenarioSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario golden pin skipped in -short mode")
	}
	golden := []struct {
		scenario string
		system   string
		score    float64
		baseline int
		altered  int
		events   uint64
	}{
		{"cascade", "Redbelly", 46.478181554729247, 23890, 23902, 183029},
		{"cascade", "Algorand", 144.9111227285656, 23593, 22854, 277024},
		{"flap", "Redbelly", 11.731280873284817, 23890, 23895, 196596},
		{"flap", "Algorand", 66.463353693062572, 23593, 23557, 285800},
		{"lossy-wan", "Redbelly", 64.452424525005426, 23890, 23932, 167905},
		{"lossy-wan", "Algorand", 204.75828807292032, 23593, 23192, 309473},
	}
	systems := map[string]func() System{
		"Redbelly": NewRedbelly,
		"Algorand": NewAlgorand,
	}
	for _, want := range golden {
		spec, err := BuiltinScenario(want.scenario, 120*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", want.scenario, err)
		}
		sc, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", want.scenario, err)
		}
		cfg := Config{
			Seed:     42,
			Duration: 120 * time.Second,
			System:   systems[want.system](),
			Scenario: sc,
		}
		cmp, err := Compare(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", want.scenario, want.system, err)
		}
		if cmp.Score.Infinite {
			t.Errorf("%s/%s: score became infinite, want %v", want.scenario, want.system, want.score)
			continue
		}
		if cmp.Score.Value != want.score {
			t.Errorf("%s/%s: score = %.17g, want %.17g", want.scenario, want.system, cmp.Score.Value, want.score)
		}
		if cmp.Baseline.UniqueCommits != want.baseline || cmp.Altered.UniqueCommits != want.altered {
			t.Errorf("%s/%s: commits = %d/%d, want %d/%d", want.scenario, want.system,
				cmp.Baseline.UniqueCommits, cmp.Altered.UniqueCommits, want.baseline, want.altered)
		}
		if cmp.Altered.Events != want.events {
			t.Errorf("%s/%s: altered run fired %d events, want %d", want.scenario, want.system,
				cmp.Altered.Events, want.events)
		}
	}
}
