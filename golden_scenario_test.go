package stabl

import (
	"testing"
	"time"
)

// TestGoldenScenarioSeed42 pins the exact scores, commit counts and
// scheduler-event counts of three shipped scenarios on two systems at seed 42.
// Like TestGoldenSeed42Scores this is a determinism witness, but for the
// scenario path specifically: scenario compilation (node-set resolution,
// flap expansion), the loss/jitter degradation primitives, and the phase-
// annotated run must all replay byte-for-byte across processes and machines.
// A drift here means a change to the scenario engine or the degradation
// send path altered the simulation, not just its shape.
func TestGoldenScenarioSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario golden pin skipped in -short mode")
	}
	golden := []struct {
		scenario string
		system   string
		score    float64
		baseline int
		altered  int
		events   uint64
	}{
		{"cascade", "Redbelly", 0.14263661818738038, 23922, 23913, 212748},
		{"cascade", "Algorand", 153.46728509622864, 23598, 22860, 290976},
		{"flap", "Redbelly", 11.874701065847219, 23922, 23939, 196226},
		{"flap", "Algorand", 66.422564035116636, 23598, 23558, 285787},
		{"lossy-wan", "Redbelly", 61.071133766103458, 23922, 23820, 164466},
		{"lossy-wan", "Algorand", 207.77541369909034, 23598, 23382, 312796},
	}
	systems := map[string]func() System{
		"Redbelly": NewRedbelly,
		"Algorand": NewAlgorand,
	}
	for _, want := range golden {
		spec, err := BuiltinScenario(want.scenario, 120*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", want.scenario, err)
		}
		sc, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", want.scenario, err)
		}
		cfg := Config{
			Seed:     42,
			Duration: 120 * time.Second,
			System:   systems[want.system](),
			Scenario: sc,
		}
		cmp, err := Compare(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", want.scenario, want.system, err)
		}
		if cmp.Score.Infinite {
			t.Errorf("%s/%s: score became infinite, want %v", want.scenario, want.system, want.score)
			continue
		}
		if cmp.Score.Value != want.score {
			t.Errorf("%s/%s: score = %.17g, want %.17g", want.scenario, want.system, cmp.Score.Value, want.score)
		}
		if cmp.Baseline.UniqueCommits != want.baseline || cmp.Altered.UniqueCommits != want.altered {
			t.Errorf("%s/%s: commits = %d/%d, want %d/%d", want.scenario, want.system,
				cmp.Baseline.UniqueCommits, cmp.Altered.UniqueCommits, want.baseline, want.altered)
		}
		if cmp.Altered.Events != want.events {
			t.Errorf("%s/%s: altered run fired %d events, want %d", want.scenario, want.system,
				cmp.Altered.Events, want.events)
		}
	}
}
