package stabl

import (
	"fmt"
	"time"

	"stabl/internal/core"
	"stabl/internal/stats"
)

// The figure runners regenerate the paper's evaluation artifacts. Each takes
// a Config whose System field is ignored (the runner supplies the systems)
// and whose zero value reproduces the paper's deployment: 10 validators,
// 5 clients at 40 tx/s, 400 virtual seconds, faults at 133 s, recovery at
// 266 s.

// ECDFFigure is the paper's Fig 1: the latency eCDFs of a baseline and an
// altered run of one system, whose area difference is the sensitivity.
type ECDFFigure struct {
	System   string
	Baseline []Point
	Altered  []Point
	Score    Score
}

// Fig1 reproduces Fig 1: Aptos latency distributions with and without f = t
// crashes.
func Fig1(cfg Config) (*ECDFFigure, error) {
	cfg.System = NewAptos()
	cfg.Fault.Kind = FaultCrash
	cmp, err := core.Compare(cfg)
	if err != nil {
		return nil, err
	}
	return &ECDFFigure{
		System:   cmp.System,
		Baseline: stats.NewDist(cmp.Baseline.Latencies).Curve(),
		Altered:  stats.NewDist(cmp.Altered.Latencies).Curve(),
		Score:    cmp.Score,
	}, nil
}

// Fig3 reproduces one panel of Fig 3: the sensitivity of all five
// blockchains to the given fault kind (crash for 3a, transient for 3b,
// partition for 3c, secure client for 3d).
func Fig3(cfg Config, kind FaultKind) ([]*Comparison, error) {
	out := make([]*Comparison, 0, 5)
	for _, sys := range Systems() {
		c := cfg
		c.System = sys
		c.Fault.Kind = kind
		cmp, err := core.Compare(c)
		if err != nil {
			return nil, fmt.Errorf("%s/%v: %w", sys.Name(), kind, err)
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Fig3a reproduces Fig 3a: sensitivity to f = t permanent crashes.
func Fig3a(cfg Config) ([]*Comparison, error) { return Fig3(cfg, FaultCrash) }

// Fig3b reproduces Fig 3b: sensitivity to f = t+1 transient node failures.
func Fig3b(cfg Config) ([]*Comparison, error) { return Fig3(cfg, FaultTransient) }

// Fig3c reproduces Fig 3c: sensitivity to a transient partition of f = t+1
// nodes.
func Fig3c(cfg Config) ([]*Comparison, error) { return Fig3(cfg, FaultPartition) }

// Fig3d reproduces Fig 3d: sensitivity to the secure client submitting every
// transaction to t+1 validators.
func Fig3d(cfg Config) ([]*Comparison, error) { return Fig3(cfg, FaultSecureClient) }

// Fig4 reproduces Fig 4: throughput over time of the five blockchains as
// f = t nodes crash at the injection time. The returned comparisons carry
// the baseline and altered series in Baseline.Throughput and
// Altered.Throughput.
func Fig4(cfg Config) ([]*Comparison, error) { return Fig3(cfg, FaultCrash) }

// Fig5 reproduces Fig 5: throughput over time as f = t+1 nodes stop and are
// later restarted.
func Fig5(cfg Config) ([]*Comparison, error) { return Fig3(cfg, FaultTransient) }

// Fig6 reproduces Fig 6: throughput over time as f = t+1 nodes are
// partitioned and later healed.
func Fig6(cfg Config) ([]*Comparison, error) { return Fig3(cfg, FaultPartition) }

// Radar is the paper's Fig 7: every sensitivity score measured, by system
// and fault kind.
type Radar struct {
	Order []string
	Kinds []FaultKind
	Cells map[string]map[FaultKind]*Comparison
}

// Fig7 reproduces Fig 7 by running the full fault matrix (20 comparisons, 40
// runs). This is the most expensive runner.
func Fig7(cfg Config) (*Radar, error) {
	r := &Radar{
		Kinds: []FaultKind{FaultCrash, FaultTransient, FaultPartition, FaultSecureClient},
		Cells: make(map[string]map[FaultKind]*Comparison),
	}
	for _, kind := range r.Kinds {
		cmps, err := Fig3(cfg, kind)
		if err != nil {
			return nil, err
		}
		for _, cmp := range cmps {
			if _, ok := r.Cells[cmp.System]; !ok {
				r.Order = append(r.Order, cmp.System)
				r.Cells[cmp.System] = make(map[FaultKind]*Comparison)
			}
			r.Cells[cmp.System][kind] = cmp
		}
	}
	return r, nil
}

// RecoveryReport summarizes the §5/§6 recovery-time observations for one
// system: how long after the recovery event throughput returned to a
// sustained fraction of baseline.
type RecoveryReport struct {
	System    string
	Fault     FaultKind
	Recovered bool
	Delay     time.Duration
}

// RecoveryTimes extracts the recovery observations from a set of
// transient/partition comparisons.
func RecoveryTimes(cmps []*Comparison) []RecoveryReport {
	out := make([]RecoveryReport, 0, len(cmps))
	for _, cmp := range cmps {
		out = append(out, RecoveryReport{
			System:    cmp.System,
			Fault:     cmp.Fault.Kind,
			Recovered: cmp.Recovered,
			Delay:     cmp.RecoveryTime,
		})
	}
	return out
}
