package stabl

import (
	"testing"
	"time"
)

// TestBurstWorkloadLiveness exercises the paper's stated workload
// limitation: the evaluation uses a constant 200 TPS because "some
// blockchains would lose transactions if the sending rate is too high",
// and "Avalanche capacity is limited to about 357 TPS" (§3). Under 2x
// bursts (400 TPS for 10 s out of every 60 s) the four chains with headroom
// must stay live, while Avalanche's bursts exceed its gas-derived block
// capacity and tip it into the metastable throttling collapse.
func TestBurstWorkloadLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("burst workload test skipped in -short mode")
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			res, err := Run(Config{
				System:   sys,
				Seed:     42,
				Duration: 180 * time.Second,
				Profile:  BurstProfile(60*time.Second, 10*time.Second, 2),
			})
			if err != nil {
				t.Fatal(err)
			}
			if sys.Name() == "Avalanche" {
				if !res.LivenessLost {
					t.Fatalf("Avalanche survived 400 TPS bursts beyond its ~357 TPS capacity; last commit %v",
						res.LastCommitAt)
				}
				return
			}
			if res.LivenessLost {
				t.Fatalf("%s lost liveness under 2x bursts; last commit %v",
					sys.Name(), res.LastCommitAt)
			}
			// The average offered load is ~233 TPS; the surviving
			// chains must commit the bulk of it.
			if res.UniqueCommits < res.Submitted*7/10 {
				t.Fatalf("commits = %d of %d under bursts", res.UniqueCommits, res.Submitted)
			}
		})
	}
}

// TestRampWorkloadFindsCapacity drives Redbelly with a rate ramp from 1x to
// 6x over the run: the commit rate must keep following the offered load well
// past the paper's 200 TPS operating point.
func TestRampWorkloadFindsCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("ramp workload test skipped in -short mode")
	}
	res, err := Run(Config{
		System:   NewRedbelly(),
		Seed:     42,
		Duration: 120 * time.Second,
		Profile:  RampProfile(1, 6, 120*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("Redbelly lost liveness on the ramp; last commit %v", res.LastCommitAt)
	}
	early := res.Throughput.MeanRate(10*time.Second, 30*time.Second)
	late := res.Throughput.MeanRate(90*time.Second, 115*time.Second)
	if late < 2*early {
		t.Fatalf("throughput did not follow the ramp: early %.0f late %.0f", early, late)
	}
}
