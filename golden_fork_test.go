package stabl

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"stabl/internal/core"
	"stabl/internal/metrics"
)

// forkGoldenConfig is the deployment every fork golden uses: seed 42, a
// transient f=t+1 outage injected at 40 s — the checkpoint instant — and
// recovered at 80 s.
func forkGoldenConfig(sys System) core.Config {
	return core.Config{
		System:   sys,
		Seed:     42,
		Duration: 120 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultTransient,
			InjectAt:  40 * time.Second,
			RecoverAt: 80 * time.Second,
		},
	}
}

// runForked builds cfg, checkpoints just before the first disruptive action
// and runs the continuation to the end.
func runForked(t *testing.T, cfg core.Config) (*core.Experiment, *core.ForkPoint, *core.RunResult) {
	t.Helper()
	e, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := core.RunToCheckpoint(e)
	if err != nil {
		t.Fatal(err)
	}
	if fp == nil {
		t.Fatal("RunToCheckpoint declined to fork")
	}
	e.RunUntil(e.Config().Duration)
	return e, fp, e.Collect()
}

func recorderLines(t *testing.T, rec *metrics.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenForkMatchesReplay pins the tentpole determinism guarantee on all
// five systems: a run checkpointed at its fault-injection instant and
// continued from the fork is byte-identical — scores, event counts, network
// stats, metrics timelines — to the same run executed from t=0, and rewinding
// the fork reproduces the continuation again.
func TestGoldenForkMatchesReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("fork golden skipped in -short mode")
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := forkGoldenConfig(sys)
			recA := metrics.NewRecorder(0)
			cfgA := cfg
			cfgA.Metrics = recA
			want, err := core.Run(cfgA)
			if err != nil {
				t.Fatal(err)
			}

			recB := metrics.NewRecorder(0)
			cfgB := cfg
			cfgB.Metrics = recB
			e, fp, got := runForked(t, cfgB)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("forked continuation diverged from replay:\nreplay: %+v\nforked: %+v", want, got)
			}
			wantLines := recorderLines(t, recA)
			if gotLines := recorderLines(t, recB); !bytes.Equal(wantLines, gotLines) {
				t.Errorf("forked metrics timeline diverged from replay (%d vs %d bytes)",
					len(wantLines), len(gotLines))
			}

			// Rewind and run the identical continuation again: the first
			// continuation must not leak into the second.
			fp.Rewind()
			e.RunUntil(e.Config().Duration)
			again := e.Collect()
			if !reflect.DeepEqual(got, again) {
				t.Errorf("second continuation diverged from first:\nfirst:  %+v\nsecond: %+v", got, again)
			}
			if gotLines := recorderLines(t, recB); !bytes.Equal(wantLines, gotLines) {
				t.Errorf("second continuation's metrics timeline diverged")
			}
		})
	}
}

// TestGoldenForkParallelFallback pins the parallel kernel's fork semantics:
// checkpoints snapshot the sequential layout, so forking a parallel-configured
// experiment before Start deterministically falls back to the sequential
// kernel and the forked continuation stays byte-identical to a plain
// sequential replay. Forking after Start is a hard error, not silent drift.
func TestGoldenForkParallelFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("fork parallel-fallback golden skipped in -short mode")
	}
	sys, err := SystemByName("Redbelly")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(forkGoldenConfig(sys))
	if err != nil {
		t.Fatal(err)
	}

	cfg := forkGoldenConfig(sys)
	cfg.SimWorkers = 2
	_, _, got := runForked(t, cfg)
	if got.SimWorkers != 0 {
		t.Errorf("forked run reported SimWorkers=%d, want 0 (fork must sequentialize)", got.SimWorkers)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("forked parallel-configured run diverged from sequential replay:\nreplay: %+v\nforked: %+v", want, got)
	}

	// Once a parallel run has started, its queues hold partition events and
	// the sequential fallback is closed: Fork must refuse.
	running, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	running.Start()
	running.RunUntil(10 * time.Second)
	if _, err := running.Fork(); err == nil {
		t.Error("Fork on a started parallel experiment succeeded, want error")
	}
}

// TestForkDivergeIndependence steers a forked continuation onto a sibling
// fault schedule (a larger kill set), checks it matches a from-scratch run of
// the sibling config, then rewinds and re-runs the original schedule to prove
// the steered continuation leaked nothing back.
func TestForkDivergeIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("fork divergence golden skipped in -short mode")
	}
	sys, err := SystemByName("Redbelly")
	if err != nil {
		t.Fatal(err)
	}
	cfg := forkGoldenConfig(sys)
	cfg.Fault.Count = 2
	sibling := cfg
	sibling.Fault.Count = 4

	e, fp, origA := runForked(t, cfg)

	// Continuation 2: the sibling schedule, steered via SetScript.
	sibFaulty, sibScript, _, err := sibling.FaultOutline()
	if err != nil {
		t.Fatal(err)
	}
	fp.Rewind()
	e.Primary().SetScript(sibScript)
	e.SetFaultTargets(sibFaulty)
	e.RunUntil(e.Config().Duration)
	steered := e.Collect()
	wantSibling, err := core.Run(sibling)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantSibling, steered) {
		t.Errorf("steered continuation diverged from from-scratch sibling run:\nscratch: %+v\nsteered: %+v", wantSibling, steered)
	}

	// Continuation 3: rewind restores the original script contents.
	fp.Rewind()
	e.SetFaultTargets(origA.FaultyNodes)
	e.RunUntil(e.Config().Duration)
	origB := e.Collect()
	if !reflect.DeepEqual(origA, origB) {
		t.Errorf("original schedule no longer reproducible after steered continuation:\nfirst: %+v\nafter: %+v", origA, origB)
	}
}
