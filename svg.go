package stabl

import (
	"fmt"
	"time"

	"stabl/internal/plot"
)

// SVG rendering of the paper's figures. Each function returns a standalone
// SVG document string; cmd/stabl writes them to files with -svg.

// SVG renders Fig 1's two eCDF curves.
func (fig *ECDFFigure) SVG() string {
	toPlot := func(points []Point) []plot.Point {
		out := make([]plot.Point, len(points))
		for i, p := range points {
			out[i] = plot.Point{X: p.X, Y: p.Y}
		}
		return out
	}
	return plot.Chart{
		Title:  fig.System + " latency eCDFs (sensitivity " + fig.Score.String() + ")",
		XLabel: "latency (s)",
		YLabel: "F(x)",
		Series: []plot.Series{
			{Name: "baseline", Points: toPlot(fig.Baseline)},
			{Name: "altered", Points: toPlot(fig.Altered), Dashed: true},
		},
	}.SVG()
}

// Fig3SVG renders one Fig 3 panel as a bar chart: one bar per system,
// striped for benefits, full-height red for infinite scores.
func Fig3SVG(title string, cmps []*Comparison) string {
	bars := make([]plot.Bar, 0, len(cmps))
	for _, cmp := range cmps {
		bars = append(bars, plot.Bar{
			Label:    cmp.System,
			Value:    cmp.Score.Value,
			Infinite: cmp.Score.Infinite,
			Striped:  cmp.Score.Benefit,
		})
	}
	return plot.BarChart{Title: title, YLabel: "sensitivity", Bars: bars}.SVG()
}

// ThroughputSVG renders one system's baseline and altered throughput series
// with fault markers, one panel of Figs 4-6.
func ThroughputSVG(cmp *Comparison, bucket time.Duration) string {
	if bucket <= 0 {
		bucket = 5 * time.Second
	}
	series := func(ts TimeSeries, name string, dashed bool) plot.Series {
		total := time.Duration(len(ts.Counts)) * ts.Bucket
		var pts []plot.Point
		for t := time.Duration(0); t < total; t += bucket {
			pts = append(pts, plot.Point{
				X: t.Seconds(),
				Y: ts.MeanRate(t, t+bucket),
			})
		}
		return plot.Series{Name: name, Points: pts, Dashed: dashed}
	}
	chart := plot.Chart{
		Title:  cmp.System + " throughput (" + cmp.Fault.Kind.String() + ")",
		XLabel: "time (s)",
		YLabel: "tx/s",
		Series: []plot.Series{
			series(cmp.Baseline.Throughput, "baseline", false),
			series(cmp.Altered.Throughput, "altered", true),
		},
	}
	if cmp.Fault.Kind != FaultNone && cmp.Fault.Kind != FaultSecureClient {
		chart.VLines = append(chart.VLines, plot.VLine{X: cmp.Fault.InjectAt.Seconds(), Label: "inject"})
		if cmp.Fault.Kind != FaultCrash {
			chart.VLines = append(chart.VLines, plot.VLine{
				X: cmp.Fault.RecoverAt.Seconds(), Label: "recover", Color: "#2ca02c",
			})
		}
	}
	return chart.SVG()
}

// CampaignHeatmapSVG renders one system's campaign outcomes as an
// inject-time x fault-kind sensitivity heatmap: finite cells shade by mean
// score, cells that lost liveness or crashed the model render as "inf",
// unexplored cells stay gray.
func CampaignHeatmapSVG(res *CampaignResult, system string) string {
	faults, injects, values := res.HeatmapGrid(system)
	cols := make([]string, len(injects))
	for i, sec := range injects {
		cols[i] = fmt.Sprintf("%gs", sec)
	}
	return plot.Heatmap{
		Title:   system + " fault-space sensitivity",
		XLabel:  "inject time",
		YLabel:  "fault",
		XLabels: cols,
		YLabels: faults,
		Values:  values,
	}.SVG()
}
