// Package stabl is a Go reproduction of STABL (Sensitivity Testing and
// Analysis for BLockchains, Middleware '25): a benchmark suite that measures
// how sensitive blockchain systems are to failures.
//
// The package deploys simulated-but-faithful models of five Byzantine
// fault-tolerant blockchains — Algorand, Aptos, Avalanche, Redbelly and
// Solana — on a deterministic discrete-event network, drives a constant
// DIABLO-style workload against them, injects crashes, transient failures
// and partitions through observer processes, and scores each system by the
// sensitivity metric of the paper: the difference between the areas under
// the latency eCDFs of a baseline and an altered run. A system that stops
// committing transactions after a failure receives an infinite score.
//
// Quick start:
//
//	cmp, err := stabl.Compare(stabl.Config{
//		System: stabl.NewRedbelly(),
//		Fault:  stabl.FaultPlan{Kind: stabl.FaultTransient},
//	})
//	// cmp.Score, cmp.RecoveryTime, cmp.Altered.Throughput ...
//
// Every experiment runs in virtual time: the paper's 400-second deployments
// complete in a few wall-clock seconds and are reproducible bit-for-bit
// from their seed.
package stabl

import (
	"context"
	"fmt"
	"io"
	"time"

	"stabl/internal/algorand"
	"stabl/internal/aptos"
	"stabl/internal/avalanche"
	"stabl/internal/campaign"
	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/metrics"
	"stabl/internal/redbelly"
	"stabl/internal/solana"
	"stabl/internal/stats"
	"stabl/internal/workload"
)

// Re-exported harness types. See the internal/core package for field
// documentation.
type (
	// Config describes one experiment deployment.
	Config = core.Config
	// FaultPlan describes the injected adversarial environment.
	FaultPlan = core.FaultPlan
	// FaultKind selects the adversarial environment.
	FaultKind = core.FaultKind
	// RunResult is the measurement of a single run.
	RunResult = core.RunResult
	// Comparison is a baseline-vs-altered sensitivity measurement.
	Comparison = core.Comparison
	// System is one blockchain model.
	System = chain.System
	// Score is a sensitivity score (possibly infinite).
	Score = stats.Score
	// TimeSeries is a per-second throughput series.
	TimeSeries = stats.TimeSeries
	// Point is one point of an eCDF curve.
	Point = stats.Point
	// Profile shapes a client's send rate over time.
	Profile = workload.Profile
)

// Workload rate profiles (the paper's future-work fluctuating workloads).
var (
	// ConstantProfile is the paper's constant-rate workload.
	ConstantProfile = workload.Constant
	// BurstProfile alternates base rate and rate*factor bursts.
	BurstProfile = workload.Burst
	// RampProfile grows the rate linearly.
	RampProfile = workload.Ramp
	// SineProfile oscillates the rate smoothly.
	SineProfile = workload.Sine
)

// Fault kinds (paper §4-§7).
const (
	FaultNone         = core.FaultNone
	FaultCrash        = core.FaultCrash
	FaultTransient    = core.FaultTransient
	FaultPartition    = core.FaultPartition
	FaultSecureClient = core.FaultSecureClient
	FaultSlow         = core.FaultSlow
)

// Suite types for CI-style multi-seed sweeps.
type (
	// SuiteConfig describes a multi-seed sensitivity sweep.
	SuiteConfig = core.SuiteConfig
	// SuiteResult aggregates a sweep.
	SuiteResult = core.SuiteResult
	// Cell is one (system, fault) aggregation of a sweep.
	Cell = core.Cell
	// Report is the JSON digest of one comparison.
	Report = core.Report
)

// Run executes a single experiment run.
func Run(cfg Config) (*RunResult, error) { return core.Run(cfg) }

// RunSuite executes a multi-seed sensitivity sweep, fanning the independent
// runs out over SuiteConfig.Workers goroutines.
func RunSuite(cfg SuiteConfig) (*SuiteResult, error) { return core.RunSuite(cfg) }

// Chaos-campaign types for systematic fault-space exploration. See the
// internal/campaign package for field documentation.
type (
	// CampaignSpec declares a fault-space sweep: grid dimensions, seeds,
	// optional random sampling and the shared deployment template.
	CampaignSpec = campaign.Spec
	// CampaignOptions configure campaign execution (workers, progress).
	CampaignOptions = campaign.Options
	// CampaignResult aggregates a campaign: per-cell outcomes,
	// cross-seed points, sensitivity surfaces and per-system rankings.
	CampaignResult = campaign.Result
	// CampaignCell is the outcome of one executed campaign cell.
	CampaignCell = campaign.CellResult
	// CampaignPoint aggregates one fault-space coordinate across seeds.
	CampaignPoint = campaign.Point
)

// RunCampaign expands the spec into its fault-space grid and executes every
// cell on a bounded worker pool against the built-in system registry
// (opts.Resolve overrides the registry when set). A panicking model run
// fails its cell, never the campaign.
func RunCampaign(ctx context.Context, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	if opts.Resolve == nil {
		opts.Resolve = SystemByName
	}
	return campaign.Run(ctx, spec, opts)
}

// ParseCampaignSpec reads a JSON campaign spec (see specs/campaign-*.json).
func ParseCampaignSpec(r io.Reader) (CampaignSpec, error) { return campaign.ParseSpec(r) }

// Virtual-time instrumentation types. See the internal/metrics package for
// the determinism and single-run guarantees.
type (
	// MetricsRecorder collects one run's counters, gauges, latency
	// observations and consensus events keyed by the simulated clock;
	// attach via Config.Metrics or CampaignOptions.Metrics.
	MetricsRecorder = metrics.Recorder
	// MetricsEvent is one protocol-level consensus event.
	MetricsEvent = metrics.Event
	// MetricsRunInfo identifies the run a recorder instrumented.
	MetricsRunInfo = metrics.RunInfo
	// CampaignCoord identifies one fault-space coordinate of a campaign.
	CampaignCoord = campaign.Cell
)

// NewMetricsRecorder creates a recorder aggregating at the given interval
// (metrics.DefaultInterval when zero). One recorder instruments exactly one
// run and is not safe for concurrent use.
func NewMetricsRecorder(interval time.Duration) *MetricsRecorder {
	return metrics.NewRecorder(interval)
}

// TimelineSVG renders a recorded run as an SVG timeline: latency and commit
// rate per interval, fault inject/recover markers, and event lanes for
// leader changes, timeouts and node lifecycle transitions.
func TimelineSVG(rec *MetricsRecorder, title string) string {
	return metrics.TimelineSVG(rec, title)
}

// ParseFaultKind is the inverse of FaultKind.String, the canonical fault
// name mapping shared by the CLI and all spec formats.
func ParseFaultKind(name string) (FaultKind, error) { return core.ParseFaultKind(name) }

// NewReport digests a comparison for machine consumption.
func NewReport(cmp *Comparison) Report { return core.NewReport(cmp) }

// Spec is the JSON experiment description (see internal/core.Spec).
type Spec = core.Spec

// LoadExperiment reads a JSON experiment spec and materializes it against
// the built-in system registry.
func LoadExperiment(r io.Reader) (Config, error) {
	spec, err := core.ParseSpec(r)
	if err != nil {
		return Config{}, err
	}
	return spec.Config(SystemByName)
}

// Compare runs the baseline and altered environments and computes the
// sensitivity score.
func Compare(cfg Config) (*Comparison, error) { return core.Compare(cfg) }

// Sensitivity computes the paper's sensitivity score between two latency
// sample sets (seconds), on the harness's default grid.
func Sensitivity(baseline, altered []float64) Score {
	return stats.Sensitivity(baseline, altered, core.SensitivityGridStep)
}

// Constructors for the five evaluated blockchains, with the
// production-like default parameters used by the experiments.
func NewAlgorand() System  { return algorand.Default() }
func NewAptos() System     { return aptos.Default() }
func NewAvalanche() System { return avalanche.Default() }
func NewRedbelly() System  { return redbelly.Default() }
func NewSolana() System    { return solana.Default() }

// Systems returns fresh instances of all five evaluated blockchains, in the
// paper's order.
func Systems() []System {
	return []System{NewAlgorand(), NewAptos(), NewAvalanche(), NewRedbelly(), NewSolana()}
}

// SystemByName returns a fresh instance of the named blockchain
// (case-sensitive, as printed by System.Name).
func SystemByName(name string) (System, error) {
	for _, sys := range Systems() {
		if sys.Name() == name {
			return sys, nil
		}
	}
	return nil, fmt.Errorf("stabl: unknown system %q (have Algorand, Aptos, Avalanche, Redbelly, Solana)", name)
}
