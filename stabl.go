// Package stabl is a Go reproduction of STABL (Sensitivity Testing and
// Analysis for BLockchains, Middleware '25): a benchmark suite that measures
// how sensitive blockchain systems are to failures.
//
// The package deploys simulated-but-faithful models of five Byzantine
// fault-tolerant blockchains — Algorand, Aptos, Avalanche, Redbelly and
// Solana — on a deterministic discrete-event network, drives a constant
// DIABLO-style workload against them, injects crashes, transient failures
// and partitions through observer processes, and scores each system by the
// sensitivity metric of the paper: the difference between the areas under
// the latency eCDFs of a baseline and an altered run. A system that stops
// committing transactions after a failure receives an infinite score.
//
// Quick start:
//
//	cmp, err := stabl.Compare(stabl.Config{
//		System: stabl.NewRedbelly(),
//		Fault:  stabl.FaultPlan{Kind: stabl.FaultTransient},
//	})
//	// cmp.Score, cmp.RecoveryTime, cmp.Altered.Throughput ...
//
// Every experiment runs in virtual time: the paper's 400-second deployments
// complete in a few wall-clock seconds and are reproducible bit-for-bit
// from their seed.
package stabl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"stabl/internal/algorand"
	"stabl/internal/aptos"
	"stabl/internal/avalanche"
	"stabl/internal/campaign"
	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/metrics"
	"stabl/internal/overlay"
	"stabl/internal/redbelly"
	"stabl/internal/scenario"
	"stabl/internal/search"
	"stabl/internal/solana"
	"stabl/internal/stats"
	"stabl/internal/workload"
)

// Re-exported harness types. See the internal/core package for field
// documentation.
type (
	// Config describes one experiment deployment.
	Config = core.Config
	// FaultPlan describes the injected adversarial environment.
	FaultPlan = core.FaultPlan
	// FaultKind selects the adversarial environment.
	FaultKind = core.FaultKind
	// RunResult is the measurement of a single run.
	RunResult = core.RunResult
	// Comparison is a baseline-vs-altered sensitivity measurement.
	Comparison = core.Comparison
	// System is one blockchain model.
	System = chain.System
	// Score is a sensitivity score (possibly infinite).
	Score = stats.Score
	// TimeSeries is a per-second throughput series.
	TimeSeries = stats.TimeSeries
	// Point is one point of an eCDF curve.
	Point = stats.Point
	// Profile shapes a client's send rate over time.
	Profile = workload.Profile
)

// Workload rate profiles (the paper's future-work fluctuating workloads).
var (
	// ConstantProfile is the paper's constant-rate workload.
	ConstantProfile = workload.Constant
	// BurstProfile alternates base rate and rate*factor bursts.
	BurstProfile = workload.Burst
	// RampProfile grows the rate linearly.
	RampProfile = workload.Ramp
	// SineProfile oscillates the rate smoothly.
	SineProfile = workload.Sine
)

// Fault kinds (paper §4-§7).
const (
	FaultNone         = core.FaultNone
	FaultCrash        = core.FaultCrash
	FaultTransient    = core.FaultTransient
	FaultPartition    = core.FaultPartition
	FaultSecureClient = core.FaultSecureClient
	FaultSlow         = core.FaultSlow
)

// Suite types for CI-style multi-seed sweeps.
type (
	// SuiteConfig describes a multi-seed sensitivity sweep.
	SuiteConfig = core.SuiteConfig
	// SuiteResult aggregates a sweep.
	SuiteResult = core.SuiteResult
	// Cell is one (system, fault) aggregation of a sweep.
	Cell = core.Cell
	// Report is the JSON digest of one comparison.
	Report = core.Report
)

// Run executes a single experiment run.
func Run(cfg Config) (*RunResult, error) { return core.Run(cfg) }

// RunSuite executes a multi-seed sensitivity sweep, fanning the independent
// runs out over SuiteConfig.Workers goroutines.
func RunSuite(cfg SuiteConfig) (*SuiteResult, error) { return core.RunSuite(cfg) }

// Chaos-campaign types for systematic fault-space exploration. See the
// internal/campaign package for field documentation.
type (
	// CampaignSpec declares a fault-space sweep: grid dimensions, seeds,
	// optional random sampling and the shared deployment template.
	CampaignSpec = campaign.Spec
	// CampaignOptions configure campaign execution (workers, progress).
	CampaignOptions = campaign.Options
	// CampaignResult aggregates a campaign: per-cell outcomes,
	// cross-seed points, sensitivity surfaces and per-system rankings.
	CampaignResult = campaign.Result
	// CampaignCell is the outcome of one executed campaign cell.
	CampaignCell = campaign.CellResult
	// CampaignPoint aggregates one fault-space coordinate across seeds.
	CampaignPoint = campaign.Point
	// CampaignCheckpointStats reports how many cells an adaptive campaign
	// (spec mode "adaptive") served from forked checkpoints instead of
	// full replays.
	CampaignCheckpointStats = campaign.CheckpointStats
)

// RunCampaign expands the spec into its fault-space grid and executes every
// cell on a bounded worker pool against the built-in system registry
// (opts.Resolve overrides the registry when set). A panicking model run
// fails its cell, never the campaign.
func RunCampaign(ctx context.Context, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	if opts.Resolve == nil {
		opts.Resolve = SystemByName
	}
	return campaign.Run(ctx, spec, opts)
}

// ParseCampaignSpec reads a JSON campaign spec (see specs/campaign-*.json).
func ParseCampaignSpec(r io.Reader) (CampaignSpec, error) { return campaign.ParseSpec(r) }

// Tolerance-boundary search types. See the internal/search package for the
// bisection invariants and the scenario-shrinking (delta debugging) rules.
type (
	// SearchOptions configure a boundary search: the experiment template,
	// the swept axis and the failure criterion.
	SearchOptions = search.Options
	// SearchAxis is the swept scalar dimension (count, slowby seconds or
	// scenario intensity) with its range and resolution.
	SearchAxis = search.Axis
	// SearchResult is the outcome: the pass/fail bracket, every probe and
	// optionally the shrunken minimal failing scenario.
	SearchResult = search.Result
	// ShrinkResult is a minimal failing scenario with shrink statistics.
	ShrinkResult = search.ShrinkResult
)

// Search axis names for SearchOptions.Axis.Name.
const (
	SearchAxisCount     = search.AxisCount
	SearchAxisSlowBy    = search.AxisSlowBy
	SearchAxisIntensity = search.AxisIntensity
)

// RunSearch bisects the axis to the tolerance boundary of one system: the
// largest value that still passes and the smallest that fails (liveness loss,
// or a sensitivity score at or above SearchOptions.Threshold). With
// SearchOptions.Shrink it additionally delta-debugs the failing scenario down
// to a minimal spec that still fails.
func RunSearch(opts SearchOptions) (*SearchResult, error) { return search.Run(opts) }

// Virtual-time instrumentation types. See the internal/metrics package for
// the determinism and single-run guarantees.
type (
	// MetricsRecorder collects one run's counters, gauges, latency
	// observations and consensus events keyed by the simulated clock;
	// attach via Config.Metrics or CampaignOptions.Metrics.
	MetricsRecorder = metrics.Recorder
	// MetricsEvent is one protocol-level consensus event.
	MetricsEvent = metrics.Event
	// MetricsRunInfo identifies the run a recorder instrumented.
	MetricsRunInfo = metrics.RunInfo
	// CampaignCoord identifies one fault-space coordinate of a campaign.
	CampaignCoord = campaign.Cell
)

// NewMetricsRecorder creates a recorder aggregating at the given interval
// (metrics.DefaultInterval when zero). One recorder instruments exactly one
// run and is not safe for concurrent use.
func NewMetricsRecorder(interval time.Duration) *MetricsRecorder {
	return metrics.NewRecorder(interval)
}

// TimelineSVG renders a recorded run as an SVG timeline: latency and commit
// rate per interval, fault inject/recover markers, and event lanes for
// leader changes, timeouts and node lifecycle transitions.
func TimelineSVG(rec *MetricsRecorder, title string) string {
	return metrics.TimelineSVG(rec, title)
}

// ParseFaultKind is the inverse of FaultKind.String, the canonical fault
// name mapping shared by the CLI and all spec formats. Composite faults
// (crash waves, flapping links, loss/jitter) are expressed as scenarios
// instead — see ParseScenario and BuiltinScenario.
func ParseFaultKind(name string) (FaultKind, error) { return core.ParseFaultKind(name) }

// Scenario types: composable multi-phase fault timelines. See the
// internal/scenario package for the action grammar and compilation rules.
type (
	// Scenario is a validated multi-phase fault timeline; set it on
	// Config.Scenario (mutually exclusive with a non-none Fault.Kind).
	Scenario = scenario.Scenario
	// ScenarioSpec is the JSON form of a scenario.
	ScenarioSpec = scenario.Spec
	// ScenarioAction is the JSON form of one scenario timeline action.
	ScenarioAction = scenario.ActionSpec
)

// Gossip-overlay types: structured broadcast overlays replacing the legacy
// full mesh. See the internal/overlay package for the topology derivation
// and routing rules.
type (
	// OverlayConfig selects and tunes a gossip overlay; set it on
	// Config.Overlay (the zero value keeps the full mesh).
	OverlayConfig = overlay.Config
	// OverlayStats aggregates a run's overlay routing counters (origins,
	// relays, duplicates, stall skips); see RunResult.Overlay.
	OverlayStats = overlay.Stats
)

// OverlayKinds lists the overlay topology names (kadcast, regular, ring).
func OverlayKinds() []string { return overlay.Kinds() }

// ParseOverlayKind validates an overlay topology name, enumerating the valid
// names on failure.
func ParseOverlayKind(name string) (string, error) { return overlay.ParseKind(name) }

// ParseScenario reads and validates a JSON scenario spec (the scenario
// action grammar: crash, restart, partition, heal, slow, loss, jitter, flap
// over node-set selectors).
func ParseScenario(r io.Reader) (*Scenario, error) { return scenario.Parse(r) }

// BuiltinScenarios lists the canned scenario names (cascade, flap,
// lossy-wan, rolling-restart, ...).
func BuiltinScenarios() []string { return scenario.Builtins() }

// BuiltinScenario returns a canned scenario spec laid out over a run of the
// given duration (the default 400 s when zero).
func BuiltinScenario(name string, duration time.Duration) (ScenarioSpec, error) {
	return scenario.Builtin(name, duration)
}

// NewReport digests a comparison for machine consumption.
func NewReport(cmp *Comparison) Report { return core.NewReport(cmp) }

// Spec is the JSON experiment description (see internal/core.Spec).
type Spec = core.Spec

// LoadExperiment reads a JSON experiment spec and materializes it against
// the built-in system registry.
func LoadExperiment(r io.Reader) (Config, error) {
	spec, err := core.ParseSpec(r)
	if err != nil {
		return Config{}, err
	}
	return spec.Config(SystemByName)
}

// ValidateSpec lints one spec document without running anything. It accepts
// both formats the CLI consumes — experiment specs (a single "system") and
// campaign specs (a "systems" list, detected by that key) — and returns
// which kind it saw. Unknown fields, unknown system/fault names, malformed
// scenarios and undeployable configurations all fail.
func ValidateSpec(r io.Reader) (kind string, err error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return "", err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", fmt.Errorf("stabl: spec is not a JSON object: %w", err)
	}
	if _, ok := probe["systems"]; ok {
		spec, err := campaign.ParseSpec(bytes.NewReader(raw))
		if err != nil {
			return "campaign", err
		}
		// Expanding against the registry checks system names, fault
		// kinds and scenario timelines without running any cell.
		_, err = campaign.Validate(spec, SystemByName)
		return "campaign", err
	}
	cfg, err := LoadExperiment(bytes.NewReader(raw))
	if err != nil {
		return "experiment", err
	}
	return "experiment", cfg.Validate()
}

// Compare runs the baseline and altered environments and computes the
// sensitivity score.
func Compare(cfg Config) (*Comparison, error) { return core.Compare(cfg) }

// Sensitivity computes the paper's sensitivity score between two latency
// sample sets (seconds), on the harness's default grid.
func Sensitivity(baseline, altered []float64) Score {
	return stats.Sensitivity(baseline, altered, core.SensitivityGridStep)
}

// Constructors for the five evaluated blockchains, with the
// production-like default parameters used by the experiments.
func NewAlgorand() System  { return algorand.Default() }
func NewAptos() System     { return aptos.Default() }
func NewAvalanche() System { return avalanche.Default() }
func NewRedbelly() System  { return redbelly.Default() }
func NewSolana() System    { return solana.Default() }

// Systems returns fresh instances of all five evaluated blockchains, in the
// paper's order.
func Systems() []System {
	return []System{NewAlgorand(), NewAptos(), NewAvalanche(), NewRedbelly(), NewSolana()}
}

// SystemByName returns a fresh instance of the named blockchain
// (case-sensitive, as printed by System.Name).
func SystemByName(name string) (System, error) {
	for _, sys := range Systems() {
		if sys.Name() == name {
			return sys, nil
		}
	}
	return nil, fmt.Errorf("stabl: unknown system %q (have Algorand, Aptos, Avalanche, Redbelly, Solana)", name)
}
