// Package avalanche models the Avalanche C-Chain (STABL §2): Snowball
// repeated-sampling consensus over proposer-rotated blocks, transaction
// gossip drawn from an unordered map, and — crucially for STABL's findings —
// the InboundMsgThrottler with its CPU-quota throttler and message-buffer
// throttler.
//
// The model reproduces the behaviours STABL measures:
//
//   - With f = t crashes, samples keep including dead peers; those query
//     rounds stretch to the query timeout and occasionally break the
//     confidence streak, destabilizing block production (§4).
//   - With f = t+1 transient failures or a partition, consensus stalls, the
//     client backlog and its 30-second retries inflate gossip and regossip
//     traffic beyond the CPU quota, and after the nodes return the
//     throttlers keep queueing consensus messages behind the flood: blocks
//     are never accepted again (§5, §6 — "Avalanche lack of liveness").
//   - The secure client helps: transactions submitted to t+1 nodes are
//     directly available to more proposers, skipping the unordered gossip
//     delay, and the paper's resource bump absorbs the redundant load (§7).
package avalanche

import (
	"math"
	"sort"
	"time"

	"stabl/internal/chain"
	"stabl/internal/committee"
	"stabl/internal/metrics"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// Config parameterizes the Avalanche model.
type Config struct {
	// K is the sample size, Alpha the quorum within a sample, Beta the
	// consecutive-success threshold (Snowball parameters).
	K, Alpha, Beta int
	// QueryInterval paces sampling rounds; QueryTimeout bounds one round.
	QueryInterval time.Duration
	QueryTimeout  time.Duration
	// BlockInterval is the proposer rotation period (2 s blocks).
	BlockInterval time.Duration
	// MaxBlockTxs is the gas-derived block capacity (15M gas / 21k per
	// transfer = 714).
	MaxBlockTxs int
	// GossipInterval and GossipBatch shape the txpool announce loop; the
	// batch is drawn in map-iteration (shuffled) order, so nonces can be
	// gossiped out of order.
	GossipInterval time.Duration
	GossipBatch    int
	// GossipFanout is how many random peers receive each announcement.
	// Partial coverage means a transaction is often absent from the slot
	// proposer's pool until a relay or regossip wave fills the gap — the
	// delay the secure client's redundant submissions short-circuit (§7).
	GossipFanout int
	// RelayFanout is how many random peers a first-time recipient
	// forwards an announcement to (one relay hop).
	RelayFanout int
	// RegossipInterval and RegossipBatch re-announce old pool entries.
	RegossipInterval time.Duration
	RegossipBatch    int
	// Throttling enables the inbound message throttler (ablation knob).
	Throttling bool
	// CPURate and CPUBurst are the CPU-quota throttler's token bucket in
	// message-cost units per second.
	CPURate  float64
	CPUBurst float64
	// MaxBuffered is the buffer throttler: inbound messages beyond this
	// queue depth are dropped.
	MaxBuffered int
	// Message costs in CPU units.
	CostTxGossip float64
	CostSubmit   float64
	CostQuery    float64
	CostResponse float64
	CostProposal float64
	// ProposerSeed perturbs proposer rotation.
	ProposerSeed uint64
	// StakeWeights gives each validator's share of stake by validator
	// index (empty = equal). Snowball samples validators proportionally
	// to stake, the paper's "80% of stake must be online" premise.
	StakeWeights []float64
	// Base configures the shared validator core.
	Base chain.BaseConfig
	// Conn configures the peer connection layer.
	Conn simnet.ConnParams
}

// DefaultConfig returns the production-like parameters used by the STABL
// experiments.
func DefaultConfig() Config {
	return Config{
		K:                6,
		Alpha:            5,
		Beta:             6,
		QueryInterval:    200 * time.Millisecond,
		QueryTimeout:     500 * time.Millisecond,
		BlockInterval:    2 * time.Second,
		MaxBlockTxs:      714,
		GossipInterval:   500 * time.Millisecond,
		GossipBatch:      400,
		GossipFanout:     4,
		RelayFanout:      2,
		RegossipInterval: 5 * time.Second,
		RegossipBatch:    250,
		Throttling:       true,
		CPURate:          140,
		CPUBurst:         280,
		MaxBuffered:      3000,
		CostTxGossip:     0.12,
		CostSubmit:       1,
		CostQuery:        0.3,
		CostResponse:     0.3,
		CostProposal:     2,
		Base: chain.BaseConfig{
			ExecRate: 2000,
		},
		Conn: simnet.ConnParams{
			HeartbeatInterval: 2 * time.Second,
			IdleTimeout:       15 * time.Second,
			ReconnectBase:     10 * time.Second,
			ReconnectCap:      30 * time.Second,
			Multiplier:        2,
			HandshakeTimeout:  2 * time.Second,
		},
	}
}

// System implements chain.System for Avalanche.
type System struct {
	cfg Config
}

var _ chain.System = (*System)(nil)

// NewSystem creates an Avalanche system with the given configuration.
func NewSystem(cfg Config) *System { return &System{cfg: cfg} }

// Default creates an Avalanche system with DefaultConfig.
func Default() *System { return NewSystem(DefaultConfig()) }

// Name implements chain.System.
func (s *System) Name() string { return "Avalanche" }

// Tolerance implements chain.System: t = ceil(n/5) - 1 (80% of stake must be
// online, §2).
func (s *System) Tolerance(n int) int { return chain.ToleranceFifth(n) }

// ConnParams implements chain.System.
func (s *System) ConnParams() simnet.ConnParams { return s.cfg.Conn }

// WithResources implements the harness resource bump used by the
// secure-client experiment: bigger VMs mean a larger CPU quota.
func (s *System) WithResources(scale float64) chain.System {
	cfg := s.cfg
	cfg.CPURate *= scale
	cfg.CPUBurst *= scale
	cfg.Base.ExecRate *= scale
	return NewSystem(cfg)
}

// announcement is a queued txpool announcement with its relay hop count.
type announcement struct {
	tx  chain.Tx
	hop int
}

// Wire messages.
type (
	// txGossip announces a pool transaction. Hop counts relay stages.
	txGossip struct {
		Tx  chain.Tx
		Hop int
	}
	// proposalMsg is the slot proposer's block.
	proposalMsg struct {
		Slot     int
		Height   int
		Parent   chain.Hash
		Proposer simnet.NodeID
		Txs      []chain.Tx
	}
	// queryMsg samples a peer's preference for a height.
	queryMsg struct {
		Height int
		Slot   int // querier's preferred block
		Seq    uint64
	}
	// responseMsg answers a query. Decided carries the committed block
	// when the responder's chain has already passed that height.
	responseMsg struct {
		Height   int
		PrefSlot int
		Seq      uint64
		Decided  *chain.Block
	}
)

// instance is the Snowball state for one height.
type instance struct {
	height     int
	pref       *proposalMsg
	confidence int
	roundSeq   uint64
	roundOpen  bool
	positives  int
	flips      map[int]int // competing slot -> count in current round
	responses  int
	accepted   bool
}

type validator struct {
	cfg    Config
	base   *chain.BaseNode
	n      int
	t      int
	quorum int

	ctx       *simnet.Context
	slotTick  *sim.Ticker
	queryTick *sim.Ticker
	gossTick  *sim.Ticker
	regosTick *sim.Ticker

	cpu      *simnet.TokenBucket
	buffered int
	dropped  uint64

	inst      *instance
	proposals map[int]*proposalMsg // height -> buffered proposal
	announceQ []announcement
	rng       interface {
		Intn(int) int
		Shuffle(int, func(int, int))
	}
	resets uint64
}

var _ simnet.Handler = (*validator)(nil)

// NewValidator implements chain.System.
func (s *System) NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *chain.Monitor, genesis []chain.GenesisAccount) simnet.Handler {
	v := &validator{
		cfg:  s.cfg,
		base: chain.NewBaseNode(id, peers, mon, s.cfg.Base),
		n:    len(peers),
		t:    chain.ToleranceFifth(len(peers)),
	}
	v.quorum = committee.Quorum(v.n, v.t)
	for _, g := range genesis {
		v.base.Ledger.Mint(g.Addr, g.Balance)
	}
	return v
}

// Start implements simnet.Handler.
func (v *validator) Start(ctx *simnet.Context) {
	v.ctx = ctx
	v.base.Reset(ctx)
	v.inst = nil
	v.proposals = make(map[int]*proposalMsg)
	v.announceQ = nil
	v.buffered = 0
	v.cpu = simnet.NewTokenBucket(v.cfg.CPURate, v.cfg.CPUBurst)
	v.rng = ctx.RNG("avalanche")
	v.base.OnLocalSubmit = func(tx chain.Tx) {
		v.announceQ = append(v.announceQ, announcement{tx: tx})
	}
	v.slotTick = ctx.Every(v.cfg.BlockInterval, v.onSlot)
	v.queryTick = ctx.Every(v.cfg.QueryInterval, v.onQueryTick)
	v.gossTick = ctx.Every(v.cfg.GossipInterval, v.onGossip)
	v.regosTick = ctx.Every(v.cfg.RegossipInterval, v.onRegossip)
	if v.base.Ledger.Height() > 0 {
		v.base.StartCatchUp()
	}
}

// Stop implements simnet.Handler.
func (v *validator) Stop() {
	for _, tk := range []*sim.Ticker{v.slotTick, v.queryTick, v.gossTick, v.regosTick} {
		if tk != nil {
			tk.Stop()
		}
	}
}

// Base exposes the validator core.
func (v *validator) Base() *chain.BaseNode { return v.base }

// DroppedInbound reports how many messages the buffer throttler rejected.
func (v *validator) DroppedInbound() uint64 { return v.dropped }

// ConfidenceResets reports how often the Snowball streak was broken.
func (v *validator) ConfidenceResets() uint64 { return v.resets }

// Deliver implements simnet.Handler. Protocol and client traffic runs
// through the inbound throttler; block-sync replies bypass it like the
// dedicated handler threads they use in AvalancheGo.
func (v *validator) Deliver(from simnet.NodeID, payload any) {
	payload, ok := v.base.Unwrap(from, payload)
	if !ok {
		return
	}
	if v.base.HandleSync(from, payload) {
		return
	}
	switch msg := payload.(type) {
	case chain.SubmitTx:
		v.inbound(v.cfg.CostSubmit, func() {
			retried := v.base.Pool.Contains(msg.Tx.ID)
			v.base.HandleClient(from, msg)
			if retried {
				// A client retry: the SDK re-broadcasts into the
				// txpool, which re-triggers gossip — the load
				// feedback loop behind the metastable collapse.
				v.announceQ = append(v.announceQ, announcement{tx: msg.Tx})
			}
		})
	case txGossip:
		v.inbound(v.cfg.CostTxGossip, func() { v.onTxGossip(msg) })
	case proposalMsg:
		v.inbound(v.cfg.CostProposal, func() { v.onProposal(msg) })
	case queryMsg:
		v.inbound(v.cfg.CostQuery, func() { v.onQuery(from, msg) })
	case responseMsg:
		v.inbound(v.cfg.CostResponse, func() { v.onResponse(msg) })
	default:
		v.inbound(v.cfg.CostSubmit, func() { v.base.HandleClient(from, msg) })
	}
}

// inbound runs fn through the CPU-quota and buffer throttlers.
func (v *validator) inbound(cost float64, fn func()) {
	if !v.cfg.Throttling {
		fn()
		return
	}
	now := v.ctx.Now()
	readyAt := v.cpu.Reserve(now, cost)
	if readyAt == now {
		fn()
		return
	}
	if v.buffered >= v.cfg.MaxBuffered {
		v.dropped++
		return
	}
	v.buffered++
	v.ctx.After(readyAt-now, func() {
		v.buffered--
		fn()
	})
}

// Gossip ------------------------------------------------------------------

func (v *validator) onTxGossip(msg txGossip) {
	if v.base.Pool.Add(msg.Tx) && msg.Hop < 2 {
		// First sight: relay once so coverage approaches the full
		// validator set within a couple of gossip ticks.
		v.announceQ = append(v.announceQ, announcement{tx: msg.Tx, hop: msg.Hop + 1})
	}
}

// onGossip drains the announce queue in shuffled (map-iteration) order; the
// shuffle is what delays low nonces behind high ones.
func (v *validator) onGossip() {
	if len(v.announceQ) == 0 {
		return
	}
	v.rng.Shuffle(len(v.announceQ), func(i, j int) {
		v.announceQ[i], v.announceQ[j] = v.announceQ[j], v.announceQ[i]
	})
	n := v.cfg.GossipBatch
	if n > len(v.announceQ) {
		n = len(v.announceQ)
	}
	batch := v.announceQ[:n]
	v.announceQ = v.announceQ[n:]
	for _, a := range batch {
		if _, committed := v.base.Ledger.Committed(a.tx.ID); committed {
			continue
		}
		v.gossipTo(a.tx, a.hop)
	}
}

// gossipTo announces one transaction to a random subset of peers: the
// origin uses GossipFanout, relays use the narrower RelayFanout.
func (v *validator) gossipTo(tx chain.Tx, hop int) {
	fanout := v.cfg.GossipFanout
	if hop > 0 {
		fanout = v.cfg.RelayFanout
	}
	for _, p := range v.samplePeersN(fanout) {
		v.ctx.Send(p, txGossip{Tx: tx, Hop: hop})
	}
}

// onRegossip re-announces a random sample of old pool entries; under a large
// backlog this is a major inbound load on every peer.
func (v *validator) onRegossip() {
	pool := v.base.Pool.Peek(0)
	if len(pool) == 0 {
		return
	}
	n := v.cfg.RegossipBatch
	if n > len(pool) {
		n = len(pool)
	}
	for i := 0; i < n; i++ {
		tx := pool[v.rng.Intn(len(pool))]
		if v.base.InPipeline(tx.ID) {
			continue
		}
		v.gossipTo(tx, 0)
	}
}

// Block production ---------------------------------------------------------

func (v *validator) slot() int { return int(v.ctx.Now() / v.cfg.BlockInterval) }

// Proposer returns the rotation winner for a slot.
func (v *validator) Proposer(slot int) simnet.NodeID {
	x := uint64(slot)*0x9E3779B97F4A7C15 + v.cfg.ProposerSeed
	x ^= x >> 29
	return v.base.Peers[x%uint64(v.n)]
}

func (v *validator) onSlot() {
	slot := v.slot()
	if v.Proposer(slot) != v.base.ID {
		return
	}
	// Propose only on a clean tip: the previous block must be accepted
	// locally, otherwise conflicting same-height proposals would race.
	if v.inst != nil && !v.inst.accepted {
		return
	}
	txs := v.nonceOrderedTxs(v.cfg.MaxBlockTxs)
	msg := proposalMsg{
		Slot:     slot,
		Height:   v.base.ChainTip(),
		Parent:   v.base.TipHash(),
		Proposer: v.base.ID,
		Txs:      txs,
	}
	v.base.Broadcast(msg)
	v.onProposal(msg)
}

// nonceOrderedTxs builds a block respecting per-account nonce order: a
// transaction enters only if every lower nonce of its account is committed,
// in the pipeline, or included earlier in this block.
func (v *validator) nonceOrderedTxs(max int) []chain.Tx {
	pool := v.base.Pool.Peek(0)
	byAcct := make(map[chain.Address][]chain.Tx)
	for _, tx := range pool {
		byAcct[tx.From] = append(byAcct[tx.From], tx)
	}
	accts := make([]chain.Address, 0, len(byAcct))
	for a := range byAcct {
		accts = append(accts, a)
		sort.Slice(byAcct[a], func(i, j int) bool { return byAcct[a][i].Nonce < byAcct[a][j].Nonce })
	}
	sort.Slice(accts, func(i, j int) bool { return accts[i] < accts[j] })
	out := make([]chain.Tx, 0, max)
	for _, a := range accts {
		expected := v.base.Ledger.NextNonce(a)
		for _, tx := range byAcct[a] {
			if len(out) >= max {
				return out
			}
			if tx.Nonce < expected {
				continue
			}
			if tx.Nonce > expected {
				break // nonce gap: the lower nonce has not arrived yet
			}
			expected++
			if v.base.InPipeline(tx.ID) {
				continue
			}
			out = append(out, tx)
		}
	}
	return out
}

func (v *validator) onProposal(msg proposalMsg) {
	tip := v.base.ChainTip()
	if msg.Height < tip {
		return
	}
	if cur, dup := v.proposals[msg.Height]; dup && cur.Slot <= msg.Slot {
		return
	}
	m := msg
	v.proposals[msg.Height] = &m
	if msg.Height == tip {
		v.startInstance(&m)
	}
}

func (v *validator) startInstance(prop *proposalMsg) {
	if v.inst != nil && v.inst.height == prop.Height && !v.inst.accepted {
		return // already running on some preference for this height
	}
	v.inst = &instance{height: prop.Height, pref: prop}
	v.base.Consensus(metrics.EventRoundStart, prop.Height, prop.Proposer, "")
}

// Snowball sampling --------------------------------------------------------

func (v *validator) onQueryTick() {
	inst := v.inst
	if inst == nil || inst.accepted || inst.roundOpen {
		return
	}
	inst.roundSeq++
	inst.roundOpen = true
	inst.positives = 0
	inst.responses = 0
	inst.flips = make(map[int]int)
	peers := v.samplePeers()
	for _, p := range peers {
		v.ctx.Send(p, queryMsg{Height: inst.height, Slot: inst.pref.Slot, Seq: inst.roundSeq})
	}
	seq := inst.roundSeq
	v.ctx.After(v.cfg.QueryTimeout, func() { v.closeRound(inst, seq) })
}

func (v *validator) samplePeers() []simnet.NodeID {
	return v.samplePeersN(v.cfg.K)
}

func (v *validator) samplePeersN(k int) []simnet.NodeID {
	// Overlay mode confines sampling (queries and tx gossip alike) to the
	// node's overlay neighborhood, so all validator traffic stays on
	// overlay edges. Validator ids double as stake indices (the deployment
	// assigns ids 0..n-1 matching Peers positions).
	candidates := v.base.Peers
	if v.base.Gossips() {
		candidates = v.base.Neighbors()
	}
	type keyed struct {
		id  simnet.NodeID
		key float64
	}
	others := make([]keyed, 0, len(candidates))
	for _, p := range candidates {
		if p == v.base.ID {
			continue
		}
		// Weighted sampling without replacement via exponential keys:
		// key = -ln(u)/stake; the k smallest keys form the sample with
		// inclusion probability proportional to stake.
		u := 1 - v.rngF()
		others = append(others, keyed{id: p, key: -math.Log(u) / v.stake(int(p))})
	}
	sort.Slice(others, func(a, b int) bool { return others[a].key < others[b].key })
	if len(others) > k {
		others = others[:k]
	}
	out := make([]simnet.NodeID, len(others))
	for i, o := range others {
		out[i] = o.id
	}
	return out
}

// stake returns validator index i's stake weight (1 by default).
func (v *validator) stake(i int) float64 {
	if i < len(v.cfg.StakeWeights) && v.cfg.StakeWeights[i] > 0 {
		return v.cfg.StakeWeights[i]
	}
	return 1
}

// rngF draws a uniform float in [0,1) from the validator's stream.
func (v *validator) rngF() float64 {
	return float64(v.rng.Intn(1<<30)) / float64(1<<30)
}

func (v *validator) onQuery(from simnet.NodeID, msg queryMsg) {
	resp := responseMsg{Height: msg.Height, Seq: msg.Seq, PrefSlot: -1}
	if msg.Height < v.base.Ledger.Height() {
		if b, err := v.base.Ledger.Block(msg.Height); err == nil {
			resp.Decided = &b
		}
	} else if v.inst != nil && v.inst.height == msg.Height {
		resp.PrefSlot = v.inst.pref.Slot
	} else if p, ok := v.proposals[msg.Height]; ok {
		resp.PrefSlot = p.Slot
	}
	v.ctx.Send(from, resp)
}

func (v *validator) onResponse(msg responseMsg) {
	inst := v.inst
	if inst == nil || inst.accepted || !inst.roundOpen {
		return
	}
	if msg.Height != inst.height || msg.Seq != inst.roundSeq {
		return
	}
	if msg.Decided != nil {
		// The network already finalized this height; adopt directly.
		inst.accepted = true
		inst.roundOpen = false
		v.accept(*msg.Decided)
		return
	}
	inst.responses++
	switch {
	case msg.PrefSlot == inst.pref.Slot:
		inst.positives++
	case msg.PrefSlot >= 0:
		inst.flips[msg.PrefSlot]++
	}
	// A poll terminates as soon as its outcome is determined: alpha
	// positive chits already decide success, and a full sample decides
	// either way. Only polls that hit unresponsive peers run to the
	// timeout.
	if inst.positives >= v.cfg.Alpha || inst.responses >= v.cfg.K {
		v.closeRound(inst, inst.roundSeq)
	}
}

func (v *validator) closeRound(inst *instance, seq uint64) {
	if inst != v.inst || inst.accepted || !inst.roundOpen || inst.roundSeq != seq {
		return
	}
	inst.roundOpen = false
	if inst.positives < v.cfg.Alpha {
		v.base.Consensus(metrics.EventTimeout, inst.height, inst.pref.Proposer, "inconclusive poll")
	}
	if inst.positives >= v.cfg.Alpha {
		inst.confidence++
		if inst.confidence >= v.cfg.Beta {
			inst.accepted = true
			v.accept(chain.Block{
				Height:    inst.pref.Height,
				Proposer:  inst.pref.Proposer,
				Parent:    inst.pref.Parent,
				Txs:       inst.pref.Txs,
				DecidedAt: v.ctx.Now(),
			})
		}
		return
	}
	// Flip to a competing proposal that reached alpha (Snowflake rule).
	// Candidate slots are visited in ascending order: map iteration here
	// would make the flip choice (and therefore the whole run) depend on
	// Go's per-process map ordering when two competitors reach alpha in
	// the same poll.
	slots := make([]int, 0, len(inst.flips))
	for slot := range inst.flips {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	for _, slot := range slots {
		if count := inst.flips[slot]; count >= v.cfg.Alpha {
			if p, ok := v.proposals[inst.height]; ok && p.Slot == slot {
				if p.Proposer != inst.pref.Proposer {
					v.base.Consensus(metrics.EventLeaderChange, inst.height, p.Proposer, "preference flip")
				}
				inst.pref = p
			}
			break
		}
	}
	if inst.confidence > 0 {
		v.resets++
	}
	inst.confidence = 0
}

func (v *validator) accept(b chain.Block) {
	v.base.Consensus(metrics.EventCommit, b.Height, b.Proposer, "")
	v.base.SubmitBlock(b)
	delete(v.proposals, b.Height)
	tip := v.base.ChainTip()
	if p, ok := v.proposals[tip]; ok {
		v.startInstance(p)
		return
	}
	if v.inst != nil && v.inst.accepted {
		v.inst = nil
	}
	if v.base.HeadPending() > v.base.Ledger.Height() {
		v.base.StartCatchUp()
	}
}
