package avalanche

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/simnet"
)

func TestTolerance(t *testing.T) {
	if got := Default().Tolerance(10); got != 1 {
		t.Fatalf("Tolerance(10) = %d, want 1", got)
	}
}

func TestProposerDeterministic(t *testing.T) {
	peers := []simnet.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	mk := func(id simnet.NodeID) *validator {
		v, ok := Default().NewValidator(id, peers, chain.NewMonitor(), nil).(*validator)
		if !ok {
			t.Fatal("unexpected type")
		}
		return v
	}
	a, b := mk(0), mk(9)
	spread := make(map[simnet.NodeID]int)
	for s := 0; s < 500; s++ {
		if a.Proposer(s) != b.Proposer(s) {
			t.Fatalf("slot %d: proposer diverges", s)
		}
		spread[a.Proposer(s)]++
	}
	for _, id := range peers {
		if spread[id] < 20 {
			t.Fatalf("node %v proposes %d/500", id, spread[id])
		}
	}
}

func TestNonceOrderedBlockBuilding(t *testing.T) {
	peers := []simnet.NodeID{0, 1, 2, 3}
	v, ok := Default().NewValidator(0, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected type")
	}
	// Pool receives nonces 1 and 2 of account 7, but nonce 0 is missing.
	v.base = chain.NewBaseNode(0, peers, nil, chain.BaseConfig{})
	mkTx := func(seq uint32, nonce uint64) chain.Tx {
		return chain.Tx{ID: chain.MakeTxID(0, seq), From: 7, To: 8, Amount: 0, Nonce: nonce}
	}
	v.base.Pool.Add(mkTx(2, 2))
	v.base.Pool.Add(mkTx(1, 1))
	if got := v.nonceOrderedTxs(10); len(got) != 0 {
		t.Fatalf("block includes txs despite nonce gap: %v", got)
	}
	v.base.Pool.Add(mkTx(0, 0))
	got := v.nonceOrderedTxs(10)
	if len(got) != 3 {
		t.Fatalf("block = %d txs, want 3", len(got))
	}
	for i, tx := range got {
		if tx.Nonce != uint64(i) {
			t.Fatalf("block nonce order broken: %v", got)
		}
	}
}

func TestThrottlerQueuesAndDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPURate = 10
	cfg.CPUBurst = 10
	cfg.MaxBuffered = 5
	// Harness-free check of the throttle maths via TokenBucket semantics
	// is covered in simnet; here verify the drop counter path through a
	// real run with a tiny quota.
	sys := NewSystem(cfg)
	res, err := core.Run(core.Config{
		System:   sys,
		Seed:     6,
		Duration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With a 10-unit CPU quota the 200 TPS workload must overwhelm the
	// nodes: nearly nothing commits.
	if res.UniqueCommits > res.Submitted/2 {
		t.Fatalf("tiny quota still committed %d of %d", res.UniqueCommits, res.Submitted)
	}
}

func TestBaselineCommitsWorkload(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     6,
		Duration: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("baseline lost liveness; last commit %v", res.LastCommitAt)
	}
	if res.UniqueCommits < res.Submitted*85/100 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
}

func TestCrashDegradesButSurvives(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     6,
		Duration: 300 * time.Second,
		Fault: core.FaultPlan{
			Kind:     core.FaultCrash,
			InjectAt: 100 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("f=t crash must not kill Avalanche; last commit %v", res.LastCommitAt)
	}
}

func TestTransientCausesPermanentLivenessLoss(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     6,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultTransient,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LivenessLost {
		t.Fatalf("Avalanche recovered from transient failure; last commit %v (throttling should prevent this)",
			res.LastCommitAt)
	}
}

func TestPartitionCausesPermanentLivenessLoss(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     6,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultPartition,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LivenessLost {
		t.Fatalf("Avalanche recovered from partition; last commit %v", res.LastCommitAt)
	}
}

func TestThrottlingAblationRecoversWithoutThrottlers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throttling = false
	res, err := core.Run(core.Config{
		System:   NewSystem(cfg),
		Seed:     6,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultTransient,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without throttling the consensus messages are processed as they
	// arrive and the network recovers — the ablation isolating the
	// paper's root cause.
	if res.LivenessLost {
		t.Fatalf("throttling disabled but still no recovery; last commit %v", res.LastCommitAt)
	}
}
