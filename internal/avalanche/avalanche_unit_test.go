package avalanche

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

func unitValidator(t *testing.T, n int, cfg Config) (*sim.Scheduler, *validator) {
	t.Helper()
	sched := sim.New(5)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(time.Millisecond)})
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	v, ok := NewSystem(cfg).NewValidator(0, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected validator type")
	}
	net.AddNode(0, v)
	for _, p := range peers[1:] {
		net.AddNode(p, nopPeer{})
	}
	net.StartAll()
	return sched, v
}

type nopPeer struct{}

func (nopPeer) Start(*simnet.Context)      {}
func (nopPeer) Stop()                      {}
func (nopPeer) Deliver(simnet.NodeID, any) {}

func TestSamplePeersExcludesSelfAndRespectsK(t *testing.T) {
	_, v := unitValidator(t, 10, DefaultConfig())
	for i := 0; i < 50; i++ {
		sample := v.samplePeers()
		if len(sample) != v.cfg.K {
			t.Fatalf("sample size = %d", len(sample))
		}
		seen := make(map[simnet.NodeID]bool)
		for _, p := range sample {
			if p == v.base.ID {
				t.Fatal("sampled self")
			}
			if seen[p] {
				t.Fatal("duplicate in sample")
			}
			seen[p] = true
		}
	}
}

func TestSnowballConfidenceAndAcceptance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throttling = false
	sched, v := unitValidator(t, 10, cfg)
	prop := proposalMsg{Slot: 1, Height: 0, Proposer: v.Proposer(1)}
	v.onProposal(prop)
	if v.inst == nil || v.inst.pref.Slot != 1 {
		t.Fatal("instance not started for tip proposal")
	}
	// Drive beta successful rounds by answering each poll directly.
	for round := 0; round < v.cfg.Beta; round++ {
		v.onQueryTick()
		if !v.inst.roundOpen {
			t.Fatalf("round %d not open", round)
		}
		seq := v.inst.roundSeq
		for i := 0; i < v.cfg.Alpha; i++ {
			v.onResponse(responseMsg{Height: 0, PrefSlot: 1, Seq: seq})
		}
	}
	if v.base.ChainTip() != 1 {
		t.Fatalf("tip = %d after beta confident rounds", v.base.ChainTip())
	}
	sched.RunUntil(time.Second)
	if v.base.Ledger.Height() != 1 {
		t.Fatalf("height = %d", v.base.Ledger.Height())
	}
}

func TestSnowballResetOnFailedPoll(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throttling = false
	_, v := unitValidator(t, 10, cfg)
	v.onProposal(proposalMsg{Slot: 1, Height: 0, Proposer: v.Proposer(1)})
	v.onQueryTick()
	seq := v.inst.roundSeq
	for i := 0; i < v.cfg.Alpha; i++ {
		v.onResponse(responseMsg{Height: 0, PrefSlot: 1, Seq: seq})
	}
	if v.inst.confidence != 1 {
		t.Fatalf("confidence = %d", v.inst.confidence)
	}
	// Next poll: only negative chits until the sample completes.
	v.onQueryTick()
	seq = v.inst.roundSeq
	for i := 0; i < v.cfg.K; i++ {
		v.onResponse(responseMsg{Height: 0, PrefSlot: -1, Seq: seq})
	}
	if v.inst.confidence != 0 {
		t.Fatalf("confidence = %d after failed poll, want reset", v.inst.confidence)
	}
	if v.ConfidenceResets() == 0 {
		t.Fatal("reset not counted")
	}
}

func TestDecidedResponseShortCircuitsInstance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throttling = false
	sched, v := unitValidator(t, 10, cfg)
	v.onProposal(proposalMsg{Slot: 1, Height: 0, Proposer: v.Proposer(1)})
	v.onQueryTick()
	seq := v.inst.roundSeq
	decided := chain.Block{Height: 0, DecidedAt: time.Second}
	v.onResponse(responseMsg{Height: 0, Seq: seq, Decided: &decided})
	sched.RunUntil(time.Second)
	if v.base.Ledger.Height() != 1 {
		t.Fatal("decided response did not finalize the height")
	}
}

func TestInboundThrottlerDropsBeyondBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPURate = 1
	cfg.CPUBurst = 1
	cfg.MaxBuffered = 3
	_, v := unitValidator(t, 4, cfg)
	tx := chain.Tx{ID: chain.MakeTxID(0, 1)}
	for i := 0; i < 50; i++ {
		v.Deliver(1, txGossip{Tx: tx, Hop: 2})
	}
	if v.DroppedInbound() == 0 {
		t.Fatal("buffer throttler dropped nothing under a message flood")
	}
	if v.buffered > cfg.MaxBuffered {
		t.Fatalf("buffered = %d exceeds cap %d", v.buffered, cfg.MaxBuffered)
	}
}

func TestThrottlingDisabledProcessesInline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throttling = false
	_, v := unitValidator(t, 4, cfg)
	tx := chain.Tx{ID: chain.MakeTxID(0, 1)}
	v.Deliver(1, txGossip{Tx: tx, Hop: 2})
	if !v.base.Pool.Contains(tx.ID) {
		t.Fatal("message not processed inline without throttling")
	}
	if v.DroppedInbound() != 0 {
		t.Fatal("drops counted with throttling disabled")
	}
}

func TestRelayHopLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throttling = false
	_, v := unitValidator(t, 10, cfg)
	fresh := chain.Tx{ID: chain.MakeTxID(0, 1)}
	v.onTxGossip(txGossip{Tx: fresh, Hop: 0})
	if len(v.announceQ) != 1 {
		t.Fatalf("hop-0 receipt queued %d announcements, want 1 relay", len(v.announceQ))
	}
	deep := chain.Tx{ID: chain.MakeTxID(0, 2)}
	v.onTxGossip(txGossip{Tx: deep, Hop: 2})
	if len(v.announceQ) != 1 {
		t.Fatal("hop-2 receipt must not relay further")
	}
}

func TestGossipSkipsCommittedTxs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Throttling = false
	sched, v := unitValidator(t, 4, cfg)
	tx := chain.Tx{ID: chain.MakeTxID(0, 1)}
	v.base.SubmitBlock(chain.Block{Height: 0, Txs: []chain.Tx{tx}})
	sched.RunUntil(100 * time.Millisecond)
	v.announceQ = append(v.announceQ, announcement{tx: tx})
	before := v.base.Ctx() // keep ctx alive
	_ = before
	sent := sentCounter(t, sched, v)
	v.onGossip()
	if sent() != 0 {
		t.Fatal("committed tx was gossiped")
	}
}

// sentCounter snapshots the network send counter.
func sentCounter(t *testing.T, sched *sim.Scheduler, v *validator) func() uint64 {
	t.Helper()
	// The validator context has no direct net handle; approximate by
	// counting scheduler events produced by the call.
	before := sched.Pending()
	return func() uint64 { return uint64(sched.Pending() - before) }
}

func TestStakeWeightedSamplingBias(t *testing.T) {
	cfg := DefaultConfig()
	// Peer 1 holds 10x the stake of the other peers.
	cfg.StakeWeights = []float64{1, 10, 1, 1, 1, 1, 1, 1, 1, 1}
	_, v := unitValidator(t, 10, cfg)
	hits := make(map[simnet.NodeID]int)
	const draws = 2000
	for i := 0; i < draws; i++ {
		for _, p := range v.samplePeersN(3) {
			hits[p]++
		}
	}
	// Peer 1 must appear in nearly every sample; an equal-stake peer in
	// roughly (3-1)/8 of them.
	whale := float64(hits[1]) / draws
	small := float64(hits[2]) / draws
	if whale < 2*small {
		t.Fatalf("whale sampled %.2f vs small %.2f; stake weighting not applied", whale, small)
	}
}

func TestEqualStakeSamplingUniform(t *testing.T) {
	_, v := unitValidator(t, 10, DefaultConfig())
	hits := make(map[simnet.NodeID]int)
	const draws = 3000
	for i := 0; i < draws; i++ {
		for _, p := range v.samplePeersN(3) {
			hits[p]++
		}
	}
	for id, c := range hits {
		frac := float64(c) / draws
		if frac < 0.22 || frac > 0.45 { // expect ~3/9 = 0.33
			t.Fatalf("peer %v sampled %.2f with equal stake", id, frac)
		}
	}
}
