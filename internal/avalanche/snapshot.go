package avalanche

import (
	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// instCheck captures the Snowball instance. The instance object is
// identity-preserved — the query-timeout closure compares its captured
// pointer against v.inst — so Restore writes through it. Proposal messages
// are immutable once buffered and are shared by pointer.
type instCheck struct {
	inst       *instance
	height     int
	pref       *proposalMsg
	confidence int
	roundSeq   uint64
	roundOpen  bool
	positives  int
	flips      map[int]int
	responses  int
	accepted   bool
}

type validatorState struct {
	base      chain.BaseState
	ctx       *simnet.Context
	slotTick  *sim.Ticker
	queryTick *sim.Ticker
	gossTick  *sim.Ticker
	regosTick *sim.Ticker
	cpu       *simnet.TokenBucket
	cpuState  simnet.BucketState
	buffered  int
	dropped   uint64
	inst      *instCheck
	proposals map[int]*proposalMsg
	announceQ []announcement
	rng       interface {
		Intn(int) int
		Shuffle(int, func(int, int))
	}
	resets uint64
}

var _ snapshot.Forkable = (*validator)(nil)

// Snapshot captures the validator: its BaseNode core, the throttler state,
// the Snowball instance, buffered proposals and the announce queue.
func (v *validator) Snapshot() snapshot.State {
	st := &validatorState{
		base:      v.base.SnapshotBase(),
		ctx:       v.ctx,
		slotTick:  v.slotTick,
		queryTick: v.queryTick,
		gossTick:  v.gossTick,
		regosTick: v.regosTick,
		cpu:       v.cpu,
		buffered:  v.buffered,
		dropped:   v.dropped,
		proposals: make(map[int]*proposalMsg, len(v.proposals)),
		announceQ: append([]announcement(nil), v.announceQ...),
		rng:       v.rng,
		resets:    v.resets,
	}
	if v.cpu != nil {
		st.cpuState = v.cpu.SnapshotState()
	}
	if v.inst != nil {
		ic := &instCheck{
			inst:       v.inst,
			height:     v.inst.height,
			pref:       v.inst.pref,
			confidence: v.inst.confidence,
			roundSeq:   v.inst.roundSeq,
			roundOpen:  v.inst.roundOpen,
			positives:  v.inst.positives,
			responses:  v.inst.responses,
			accepted:   v.inst.accepted,
		}
		if v.inst.flips != nil {
			ic.flips = make(map[int]int, len(v.inst.flips))
			for slot, c := range v.inst.flips {
				ic.flips[slot] = c
			}
		}
		st.inst = ic
	}
	for h, p := range v.proposals {
		st.proposals[h] = p
	}
	return st
}

// Restore rewinds the validator to a state captured by Snapshot.
func (v *validator) Restore(state snapshot.State) {
	st, ok := state.(*validatorState)
	if !ok {
		panic("avalanche: validator.Restore on foreign state")
	}
	v.base.RestoreBase(st.base)
	v.ctx = st.ctx
	v.slotTick = st.slotTick
	v.queryTick = st.queryTick
	v.gossTick = st.gossTick
	v.regosTick = st.regosTick
	v.cpu = st.cpu
	if v.cpu != nil {
		v.cpu.RestoreState(st.cpuState)
	}
	v.buffered = st.buffered
	v.dropped = st.dropped
	if ic := st.inst; ic != nil {
		inst := ic.inst
		inst.height = ic.height
		inst.pref = ic.pref
		inst.confidence = ic.confidence
		inst.roundSeq = ic.roundSeq
		inst.roundOpen = ic.roundOpen
		inst.positives = ic.positives
		inst.responses = ic.responses
		inst.accepted = ic.accepted
		inst.flips = nil
		if ic.flips != nil {
			inst.flips = make(map[int]int, len(ic.flips))
			for slot, c := range ic.flips {
				inst.flips[slot] = c
			}
		}
		v.inst = inst
	} else {
		v.inst = nil
	}
	v.proposals = make(map[int]*proposalMsg, len(st.proposals))
	for h, p := range st.proposals {
		v.proposals[h] = p
	}
	v.announceQ = append(v.announceQ[:0], st.announceQ...)
	v.rng = st.rng
	v.resets = st.resets
}
