package solana

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/simnet"
)

func mkValidator(t *testing.T, id simnet.NodeID, n int) *validator {
	t.Helper()
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	v, ok := Default().NewValidator(id, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected validator type")
	}
	return v
}

func TestTolerance(t *testing.T) {
	if got := Default().Tolerance(10); got != 3 {
		t.Fatalf("Tolerance(10) = %d, want 3", got)
	}
}

func TestEpochWarmupProgression(t *testing.T) {
	v := mkValidator(t, 0, 10)
	cases := []struct {
		slot         int
		epoch, start int
		length       int
	}{
		{0, 0, 0, 32},
		{31, 0, 0, 32},
		{32, 1, 32, 64},
		{95, 1, 32, 64},
		{96, 2, 96, 128},
		{224, 3, 224, 256},
		{479, 3, 224, 256},
		{480, 4, 480, 512},
	}
	for _, c := range cases {
		e, s, l := v.epochOfSlot(c.slot)
		if e != c.epoch || s != c.start || l != c.length {
			t.Fatalf("epochOfSlot(%d) = (%d,%d,%d), want (%d,%d,%d)",
				c.slot, e, s, l, c.epoch, c.start, c.length)
		}
	}
}

func TestEpochLengthCapsAtSteadyState(t *testing.T) {
	v := mkValidator(t, 0, 10)
	// Far in the future every epoch is EpochSlots long.
	_, _, l := v.epochOfSlot(1 << 20)
	if l != v.cfg.EpochSlots {
		t.Fatalf("steady-state epoch length = %d, want %d", l, v.cfg.EpochSlots)
	}
}

func TestLeaderScheduleDeterministicAndSpread(t *testing.T) {
	a := mkValidator(t, 0, 10)
	b := mkValidator(t, 7, 10)
	spread := make(map[simnet.NodeID]int)
	for s := 0; s < 1000; s++ {
		la, lb := a.Leader(s), b.Leader(s)
		if la != lb {
			t.Fatalf("slot %d: leaders diverge", s)
		}
		spread[la]++
	}
	for id, n := range spread {
		if n < 50 {
			t.Fatalf("node %v leads only %d/1000 slots", id, n)
		}
	}
}

func TestEAHBrokenPredicate(t *testing.T) {
	v := mkValidator(t, 0, 10)
	// Need a ctx for currentSlot; build via a harness-free check of the
	// pure parts: epoch 3 = [224,480), len 256 < 360, 3/4 mark = 416.
	_, start, length := v.epochOfSlot(332)
	if start != 224 || length != 256 {
		t.Fatalf("epoch(332) = start %d len %d", start, length)
	}
	mark := start + 3*length/4
	if mark != 416 {
		t.Fatalf("3/4 mark = %d, want 416", mark)
	}
	if length >= v.cfg.MinEpochSlotsForEAH {
		t.Fatal("epoch 3 should be below the EAH minimum")
	}
}

func TestBaselineFastCommits(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     5,
		Duration: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("baseline lost liveness; last commit %v", res.LastCommitAt)
	}
	if res.UniqueCommits < res.Submitted*90/100 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
	// Solana's no-mempool fast path delivers sub-second-ish latency, the
	// best baseline of the five chains.
	var sum float64
	for _, l := range res.Latencies {
		sum += l
	}
	if mean := sum / float64(len(res.Latencies)); mean > 1.5 {
		t.Fatalf("mean latency = %.2fs, want Solana-fast", mean)
	}
}

func TestCrashLeaderGapsButNoPanic(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     5,
		Duration: 300 * time.Second,
		Fault: core.FaultPlan{
			Kind:     core.FaultCrash,
			InjectAt: 133 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatal("f=t crashes must not trigger the EAH panic")
	}
	// 30% of slots are led by dead nodes: bursty throughput but all the
	// workload eventually commits via forwarding retries.
	if res.UniqueCommits < res.Submitted*85/100 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
}

func TestTransientTriggersGeneralizedEAHPanic(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     5,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultTransient,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LivenessLost {
		t.Fatalf("Solana recovered from a warm-up-epoch disruption; last commit %v", res.LastCommitAt)
	}
	// The whole cluster dies around the ¾ mark of epoch 3 (slot 416 =
	// 166.4 s), not merely during the outage.
	if res.LastCommitAt > 170*time.Second {
		t.Fatalf("commits continued to %v; want generalized failure", res.LastCommitAt)
	}
}

func TestPartitionAlsoTriggersPanic(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     5,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultPartition,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LivenessLost {
		t.Fatal("Solana must not recover from a partition during warm-up epochs")
	}
}
