// Package solana models the Solana blockchain (STABL §2): a pre-determined
// leader schedule assigns each validator specific slots inside epochs; there
// is no mempool — nodes forward transactions directly to the scheduled
// leaders; per-slot banks freeze into the chain once a supermajority votes;
// and an Epoch Accounts Hash (EAH) must be computed between ¼ and ¾ of every
// epoch.
//
// The model reproduces the behaviours STABL measures:
//
//   - Crashed leaders leave their slots empty while the workload keeps
//     arriving, so throughput oscillates between gaps and catch-up peaks,
//     and Solana's excellent baseline makes the sensitivity score large
//     (§4 "Solana leader impacts performance").
//   - Cluster genesis uses warm-up epochs (32 slots doubling towards 8192).
//     A disruption that halts rooting inside an epoch shorter than 360
//     slots leaves the EAH uncomputed when the bank reaches the ¾-epoch
//     integration point; the precondition check panics and every validator
//     crashes — Solana cannot recover from transient failures or partitions
//     (§5 "Solana generalized failure", §6).
//   - The secure client changes little: all routes forward to the same
//     deterministic leader schedule (§7).
package solana

import (
	"hash/fnv"
	"time"

	"stabl/internal/chain"
	"stabl/internal/committee"
	"stabl/internal/metrics"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// Config parameterizes the Solana model.
type Config struct {
	// SlotDuration is the PoH slot length (400 ms on mainnet).
	SlotDuration time.Duration
	// WarmupStartSlots is the length of epoch 0; warm-up epochs double
	// until EpochSlots.
	WarmupStartSlots int
	// EpochSlots is the steady-state epoch length (8192 in the dev
	// cluster the paper deploys).
	EpochSlots int
	// MinEpochSlotsForEAH is the minimum epoch length for which the EAH
	// start/stop schedule is feasible (~360 slots per the Solana devs).
	MinEpochSlotsForEAH int
	// MaxRootLagSlots is how far rooting may trail the slot clock at the
	// EAH integration point before the precondition fails.
	MaxRootLagSlots int
	// ConsecutiveSlots is how many consecutive slots each scheduled
	// leader holds (NUM_CONSECUTIVE_LEADER_SLOTS = 4 on mainnet); a
	// crashed leader therefore blanks a whole multi-slot window.
	ConsecutiveSlots int
	// UpcomingLeaders is how many future leader windows receive
	// forwarded transactions in addition to the current one.
	UpcomingLeaders int
	// ForwardBatch caps the transactions a node forwards per retry tick.
	ForwardBatch int
	// RetryInterval is the cadence at which an RPC node re-forwards
	// unconfirmed transactions (the client-side retry loop of the
	// "Retrying Transactions" docs).
	RetryInterval time.Duration
	// MaxBlockTxs caps a leader's per-slot block.
	MaxBlockTxs int
	// ScheduleSeed perturbs the leader schedule.
	ScheduleSeed uint64
	// Base configures the shared validator core.
	Base chain.BaseConfig
	// Conn configures the peer connection layer.
	Conn simnet.ConnParams
}

// DefaultConfig returns the production-like parameters used by the STABL
// experiments.
func DefaultConfig() Config {
	return Config{
		SlotDuration:        400 * time.Millisecond,
		WarmupStartSlots:    32,
		EpochSlots:          8192,
		MinEpochSlotsForEAH: 360,
		MaxRootLagSlots:     32,
		ConsecutiveSlots:    4,
		UpcomingLeaders:     1,
		ForwardBatch:        400,
		RetryInterval:       2 * time.Second,
		MaxBlockTxs:         300,
		Base: chain.BaseConfig{
			ExecRate: 5000,
		},
		Conn: simnet.ConnParams{
			HeartbeatInterval: 2 * time.Second,
			IdleTimeout:       15 * time.Second,
			ReconnectBase:     10 * time.Second,
			ReconnectCap:      30 * time.Second,
			Multiplier:        2,
			HandshakeTimeout:  2 * time.Second,
		},
	}
}

// System implements chain.System for Solana.
type System struct {
	cfg Config
}

var _ chain.System = (*System)(nil)

// NewSystem creates a Solana system with the given configuration.
func NewSystem(cfg Config) *System { return &System{cfg: cfg} }

// Default creates a Solana system with DefaultConfig.
func Default() *System { return NewSystem(DefaultConfig()) }

// Name implements chain.System.
func (s *System) Name() string { return "Solana" }

// Tolerance implements chain.System: t = ceil(n/3) - 1.
func (s *System) Tolerance(n int) int { return chain.ToleranceThird(n) }

// ConnParams implements chain.System.
func (s *System) ConnParams() simnet.ConnParams { return s.cfg.Conn }

// NewValidator implements chain.System.
func (s *System) NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *chain.Monitor, genesis []chain.GenesisAccount) simnet.Handler {
	v := &validator{
		cfg:  s.cfg,
		base: chain.NewBaseNode(id, peers, mon, s.cfg.Base),
		n:    len(peers),
		t:    chain.ToleranceThird(len(peers)),
	}
	v.quorum = committee.Quorum(v.n, v.t)
	v.lastRootedSlot = -1
	for _, g := range genesis {
		v.base.Ledger.Mint(g.Addr, g.Balance)
	}
	return v
}

// Wire messages.
type (
	// txForward sends a transaction straight to a scheduled leader
	// (Solana has no mempool).
	txForward struct {
		Tx chain.Tx
	}
	// blockMsg is a leader's frozen bank for its slot.
	blockMsg struct {
		Slot   int
		Height int
		Parent chain.Hash
		Leader simnet.NodeID
		Txs    []chain.Tx
	}
	// voteMsg is a tower-vote on a slot's bank.
	voteMsg struct {
		Slot  int
		Voter simnet.NodeID
	}
)

type validator struct {
	cfg    Config
	base   *chain.BaseNode
	n      int
	t      int
	quorum int

	ctx    *simnet.Context
	ticker *sim.Ticker
	retry  *sim.Ticker
	blocks map[int]*blockMsg
	// eahByEpoch holds the Epoch Accounts Hash computed for each epoch
	// (between its ¼ and ¾ marks); integration at the ¾ mark panics when
	// the hash is missing in a too-short epoch.
	eahByEpoch map[int]chain.Hash
	votes      map[int]map[simnet.NodeID]bool
	rooted     map[int]bool

	// lastRootedSlot persists across restarts (it is derived from the
	// ledger, which survives).
	lastRootedSlot int
	// panicked persists: a validator that hit the EAH panic crashes
	// again on restart until the operator intervenes.
	panicked   bool
	panickedAt time.Duration
}

var _ simnet.Handler = (*validator)(nil)

// Start implements simnet.Handler.
func (v *validator) Start(ctx *simnet.Context) {
	v.ctx = ctx
	v.base.Reset(ctx)
	v.blocks = make(map[int]*blockMsg)
	v.votes = make(map[int]map[simnet.NodeID]bool)
	v.rooted = make(map[int]bool)
	v.eahByEpoch = make(map[int]chain.Hash)
	v.base.OnCommit = v.onBlockApplied
	v.base.OnLocalSubmit = v.forwardOne
	if v.panicked {
		return
	}
	if v.base.Ledger.Height() > 0 {
		// Restarting validator: before resuming it validates the EAH
		// state of the epoch it left off in. If rooting stopped before
		// that epoch's ¾ mark and the epoch was too short for the EAH
		// schedule, wait_get_epoch_accounts_hash panics.
		if v.eahBrokenForSlot(v.lastRootedSlot) {
			v.panic()
			return
		}
		v.base.StartCatchUp()
	}
	v.ticker = ctx.Every(v.cfg.SlotDuration, v.onSlot)
	v.retry = ctx.Every(v.cfg.RetryInterval, v.forward)
}

// Stop implements simnet.Handler.
func (v *validator) Stop() {
	if v.ticker != nil {
		v.ticker.Stop()
	}
	if v.retry != nil {
		v.retry.Stop()
	}
}

// Base exposes the validator core.
func (v *validator) Base() *chain.BaseNode { return v.base }

// Panicked reports whether (and when) the validator hit the EAH panic.
func (v *validator) Panicked() (bool, time.Duration) { return v.panicked, v.panickedAt }

// panic wedges the validator permanently, modelling the process abort.
func (v *validator) panic() {
	if v.panicked {
		return
	}
	v.panicked = true
	v.panickedAt = v.ctx.Now()
	if v.ticker != nil {
		v.ticker.Stop()
	}
	if v.retry != nil {
		v.retry.Stop()
	}
}

// Deliver implements simnet.Handler.
func (v *validator) Deliver(from simnet.NodeID, payload any) {
	if v.panicked {
		return
	}
	payload, ok := v.base.Unwrap(from, payload)
	if !ok {
		return
	}
	if v.base.HandleClient(from, payload) {
		return
	}
	if v.base.HandleSync(from, payload) {
		return
	}
	switch msg := payload.(type) {
	case txForward:
		v.base.Pool.Add(msg.Tx)
	case blockMsg:
		v.onBlock(msg)
	case voteMsg:
		v.onVote(msg)
	}
}

// Slot schedule ----------------------------------------------------------

// currentSlot derives the slot index from the PoH clock.
func (v *validator) currentSlot() int {
	return int(v.ctx.Now() / v.cfg.SlotDuration)
}

// epochOfSlot returns (epoch index, first slot, length) for a slot,
// accounting for the geometric warm-up progression.
func (v *validator) epochOfSlot(slot int) (int, int, int) {
	start := 0
	length := v.cfg.WarmupStartSlots
	epoch := 0
	for {
		if length >= v.cfg.EpochSlots {
			length = v.cfg.EpochSlots
		}
		if slot < start+length {
			return epoch, start, length
		}
		start += length
		epoch++
		if length < v.cfg.EpochSlots {
			length *= 2
		}
	}
}

// Leader returns the scheduled leader of a slot: a deterministic
// pseudo-random schedule computed identically by every validator, assigning
// ConsecutiveSlots-long windows per leader.
func (v *validator) Leader(slot int) simnet.NodeID {
	window := slot
	if v.cfg.ConsecutiveSlots > 1 {
		window = slot / v.cfg.ConsecutiveSlots
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(window >> (8 * i))
		buf[8+i] = byte(v.cfg.ScheduleSeed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return v.base.Peers[h.Sum64()%uint64(v.n)]
}

// onSlot drives the per-slot work: EAH bookkeeping, transaction forwarding,
// and block production when this validator leads the slot.
func (v *validator) onSlot() {
	if v.panicked {
		return
	}
	slot := v.currentSlot()
	if slot > 0 && v.Leader(slot) != v.Leader(slot-1) {
		v.base.Consensus(metrics.EventLeaderChange, slot, v.Leader(slot), "leader window rotation")
	}
	// A leader broadcasts a block every slot, even an empty one, so a slot
	// still blockless two slots later means its leader was down or cut off.
	if miss := slot - 2; miss >= 0 && v.blocks[miss] == nil && !v.rooted[miss] {
		v.base.Consensus(metrics.EventTimeout, miss, v.Leader(miss), "leader window produced no block")
	}
	v.checkEAH(slot)
	if v.panicked {
		return
	}
	if v.Leader(slot) == v.base.ID {
		v.produce(slot)
	}
}

// checkEAH drives the Epoch Accounts Hash lifecycle. The calculation runs
// between the ¼ and ¾ marks of each epoch and needs a recently rooted bank
// to snapshot; the integration at the ¾ mark requires the calculation to
// have completed. In an epoch too short for this schedule a disruption
// leaves the hash missing and the integration precondition
// (wait_get_epoch_accounts_hash) panics.
func (v *validator) checkEAH(slot int) {
	epoch, start, length := v.epochOfSlot(slot)
	calcMark := start + length/4
	integrateMark := start + (3*length)/4
	if slot >= calcMark && slot < integrateMark {
		v.tryComputeEAH(epoch, slot)
	}
	if slot != integrateMark {
		return
	}
	if length >= v.cfg.MinEpochSlotsForEAH {
		// A long epoch leaves enough slack to complete the hash and
		// root the carrying bank late.
		v.tryComputeEAH(epoch, slot)
		return
	}
	// Integration in a short epoch: the hash must exist AND a bank close
	// to the mark must be rootable to carry it (freeze-to-rooting needs
	// at least 32 slots of buffer).
	_, calcDone := v.eahByEpoch[epoch]
	rootingLive := v.lastRootedSlot >= slot-v.cfg.MaxRootLagSlots
	if !calcDone || !rootingLive {
		v.panic()
	}
}

// tryComputeEAH snapshots the accounts hash once per epoch, provided a
// recently rooted bank exists to snapshot from.
func (v *validator) tryComputeEAH(epoch, slot int) {
	if _, done := v.eahByEpoch[epoch]; done {
		return
	}
	if v.lastRootedSlot < slot-v.cfg.MaxRootLagSlots {
		return // no rooted bank near the snapshot point
	}
	v.eahByEpoch[epoch] = v.base.Ledger.StateHash()
}

// EAH returns the computed Epoch Accounts Hash for an epoch, if any.
func (v *validator) EAH(epoch int) (chain.Hash, bool) {
	h, ok := v.eahByEpoch[epoch]
	return h, ok
}

// eahBrokenForSlot is the restart-time precondition check: the epoch that
// contains the validator's last rooted slot must have completed its EAH.
func (v *validator) eahBrokenForSlot(lastRooted int) bool {
	if lastRooted < 0 {
		return false
	}
	_, start, length := v.epochOfSlot(lastRooted)
	if length >= v.cfg.MinEpochSlotsForEAH {
		return false
	}
	mark := start + (3*length)/4
	return lastRooted < mark-v.cfg.MaxRootLagSlots && v.currentSlot() > mark
}

// forwardOne pushes a freshly submitted transaction straight to the current
// and upcoming leaders; with a known leader schedule there is nothing to
// wait for, which is why submitting to extra validators barely helps (§7).
func (v *validator) forwardOne(tx chain.Tx) {
	if v.base.Gossips() {
		// Overlay mode: the scheduled leader may not be an overlay
		// neighbor, so the transaction rides the broadcast tree; every
		// validator pools it (txForward handling is an unconditional
		// pool add either way).
		v.base.Broadcast(txForward{Tx: tx})
		return
	}
	for _, leader := range v.upcomingLeaders() {
		v.ctx.Send(leader, txForward{Tx: tx})
	}
}

// upcomingLeaders lists the owners of the current and next UpcomingLeaders
// slots, excluding this node. With consecutive leader slots the "upcoming
// leader" is usually the same validator as the current one, which is why a
// crashed leader blanks its whole window despite the forwarding (§4).
func (v *validator) upcomingLeaders() []simnet.NodeID {
	slot := v.currentSlot()
	seen := make(map[simnet.NodeID]bool, v.cfg.UpcomingLeaders+1)
	out := make([]simnet.NodeID, 0, v.cfg.UpcomingLeaders+1)
	for i := 0; i <= v.cfg.UpcomingLeaders; i++ {
		leader := v.Leader(slot + i)
		if leader == v.base.ID || seen[leader] {
			continue
		}
		seen[leader] = true
		out = append(out, leader)
	}
	return out
}

// forward retries unconfirmed transactions on the RPC retry cadence: if a
// leader could not process a transaction, responsibility passes to the next
// leaders.
func (v *validator) forward() {
	batch := make([]chain.Tx, 0, v.cfg.ForwardBatch)
	for _, tx := range v.base.Pool.Peek(0) {
		if v.base.InPipeline(tx.ID) {
			continue
		}
		batch = append(batch, tx)
		if len(batch) >= v.cfg.ForwardBatch {
			break
		}
	}
	if len(batch) == 0 {
		return
	}
	if v.base.Gossips() {
		for _, tx := range batch {
			v.base.Broadcast(txForward{Tx: tx})
		}
		return
	}
	for _, leader := range v.upcomingLeaders() {
		for _, tx := range batch {
			v.ctx.Send(leader, txForward{Tx: tx})
		}
	}
}

// produce freezes this slot's bank and broadcasts it.
func (v *validator) produce(slot int) {
	v.base.Consensus(metrics.EventRoundStart, slot, v.base.ID, "")
	txs := v.base.ProposalTxs(v.cfg.MaxBlockTxs)
	msg := blockMsg{
		Slot:   slot,
		Height: v.base.ChainTip(),
		Parent: v.base.TipHash(),
		Leader: v.base.ID,
		Txs:    txs,
	}
	v.base.Broadcast(msg)
	v.onBlock(msg)
}

func (v *validator) onBlock(msg blockMsg) {
	if v.Leader(msg.Slot) != msg.Leader {
		return
	}
	if _, dup := v.blocks[msg.Slot]; dup {
		return
	}
	m := msg
	v.blocks[msg.Slot] = &m
	vote := voteMsg{Slot: msg.Slot, Voter: v.base.ID}
	v.base.Broadcast(vote)
	v.onVote(vote)
}

func (v *validator) onVote(msg voteMsg) {
	if v.rooted[msg.Slot] {
		return
	}
	voters, ok := v.votes[msg.Slot]
	if !ok {
		voters = make(map[simnet.NodeID]bool)
		v.votes[msg.Slot] = voters
	}
	voters[msg.Voter] = true
	block := v.blocks[msg.Slot]
	if block == nil || len(voters) < v.quorum {
		return
	}
	v.rooted[msg.Slot] = true
	v.base.Consensus(metrics.EventCommit, msg.Slot, block.Leader, "")
	v.base.SubmitBlock(chain.Block{
		Height:    block.Height,
		Proposer:  block.Leader,
		Parent:    block.Parent,
		Txs:       block.Txs,
		DecidedAt: v.ctx.Now(),
	})
	if msg.Slot > v.lastRootedSlot {
		v.lastRootedSlot = msg.Slot
	}
	v.gc(msg.Slot)
	if v.base.HeadPending() > v.base.Ledger.Height() {
		v.base.StartCatchUp()
	}
}

// onBlockApplied keeps the root clock in sync when blocks arrive via
// catch-up rather than live votes.
func (v *validator) onBlockApplied(b chain.Block, _ []chain.Tx) {
	slot := int(b.DecidedAt / v.cfg.SlotDuration)
	if slot > v.lastRootedSlot {
		v.lastRootedSlot = slot
	}
}

func (v *validator) gc(upto int) {
	for s := range v.blocks {
		if s < upto-64 {
			delete(v.blocks, s)
			delete(v.votes, s)
			delete(v.rooted, s)
		}
	}
}
