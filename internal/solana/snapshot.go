package solana

import (
	"time"

	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// validatorState is a Solana validator checkpoint. Frozen bank messages are
// immutable once buffered and are shared by pointer.
type validatorState struct {
	base           chain.BaseState
	ctx            *simnet.Context
	ticker         *sim.Ticker
	retry          *sim.Ticker
	blocks         map[int]*blockMsg
	eahByEpoch     map[int]chain.Hash
	votes          map[int]map[simnet.NodeID]bool
	rooted         map[int]bool
	lastRootedSlot int
	panicked       bool
	panickedAt     time.Duration
}

var _ snapshot.Forkable = (*validator)(nil)

// Snapshot captures the validator: its BaseNode core, per-slot banks and
// votes, the EAH ledger and the panic latch.
func (v *validator) Snapshot() snapshot.State {
	st := &validatorState{
		base:           v.base.SnapshotBase(),
		ctx:            v.ctx,
		ticker:         v.ticker,
		retry:          v.retry,
		blocks:         make(map[int]*blockMsg, len(v.blocks)),
		eahByEpoch:     make(map[int]chain.Hash, len(v.eahByEpoch)),
		votes:          make(map[int]map[simnet.NodeID]bool, len(v.votes)),
		rooted:         make(map[int]bool, len(v.rooted)),
		lastRootedSlot: v.lastRootedSlot,
		panicked:       v.panicked,
		panickedAt:     v.panickedAt,
	}
	for s, b := range v.blocks {
		st.blocks[s] = b
	}
	for e, h := range v.eahByEpoch {
		st.eahByEpoch[e] = h
	}
	for s, voters := range v.votes {
		m := make(map[simnet.NodeID]bool, len(voters))
		for id := range voters {
			m[id] = true
		}
		st.votes[s] = m
	}
	for s, r := range v.rooted {
		st.rooted[s] = r
	}
	return st
}

// Restore rewinds the validator to a state captured by Snapshot.
func (v *validator) Restore(state snapshot.State) {
	st, ok := state.(*validatorState)
	if !ok {
		panic("solana: validator.Restore on foreign state")
	}
	v.base.RestoreBase(st.base)
	v.ctx = st.ctx
	v.ticker = st.ticker
	v.retry = st.retry
	v.lastRootedSlot = st.lastRootedSlot
	v.panicked = st.panicked
	v.panickedAt = st.panickedAt
	v.blocks = make(map[int]*blockMsg, len(st.blocks))
	for s, b := range st.blocks {
		v.blocks[s] = b
	}
	v.eahByEpoch = make(map[int]chain.Hash, len(st.eahByEpoch))
	for e, h := range st.eahByEpoch {
		v.eahByEpoch[e] = h
	}
	v.votes = make(map[int]map[simnet.NodeID]bool, len(st.votes))
	for s, voters := range st.votes {
		m := make(map[simnet.NodeID]bool, len(voters))
		for id := range voters {
			m[id] = true
		}
		v.votes[s] = m
	}
	v.rooted = make(map[int]bool, len(st.rooted))
	for s, r := range st.rooted {
		v.rooted[s] = r
	}
}
