package solana

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

func unitValidator(t *testing.T, n int) (*sim.Scheduler, *validator) {
	t.Helper()
	sched := sim.New(5)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(time.Millisecond)})
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	v, ok := Default().NewValidator(0, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected validator type")
	}
	net.AddNode(0, v)
	for _, p := range peers[1:] {
		net.AddNode(p, nopPeer{})
	}
	net.StartAll()
	return sched, v
}

type nopPeer struct{}

func (nopPeer) Start(*simnet.Context)      {}
func (nopPeer) Stop()                      {}
func (nopPeer) Deliver(simnet.NodeID, any) {}

func TestConsecutiveLeaderSlots(t *testing.T) {
	_, v := unitValidator(t, 10)
	w := v.cfg.ConsecutiveSlots
	for window := 0; window < 50; window++ {
		leader := v.Leader(window * w)
		for s := 1; s < w; s++ {
			if v.Leader(window*w+s) != leader {
				t.Fatalf("slot %d leader differs within the window", window*w+s)
			}
		}
	}
}

func TestUpcomingLeadersExcludeSelfAndDedup(t *testing.T) {
	_, v := unitValidator(t, 10)
	leaders := v.upcomingLeaders()
	if len(leaders) > v.cfg.UpcomingLeaders+1 {
		t.Fatalf("too many targets: %v", leaders)
	}
	seen := make(map[simnet.NodeID]bool)
	for _, l := range leaders {
		if l == v.base.ID {
			t.Fatal("forwarding to self")
		}
		if seen[l] {
			t.Fatal("duplicate forward target")
		}
		seen[l] = true
	}
}

func TestVoteQuorumRootsBlock(t *testing.T) {
	sched, v := unitValidator(t, 10)
	block := blockMsg{Slot: 3, Height: 0, Leader: v.Leader(3)}
	v.onBlock(block)
	for voter := simnet.NodeID(1); int(voter) < v.quorum; voter++ {
		v.onVote(voteMsg{Slot: 3, Voter: voter})
	}
	sched.RunUntil(time.Second)
	if v.base.Ledger.Height() != 1 {
		t.Fatalf("height = %d after vote quorum", v.base.Ledger.Height())
	}
	if v.lastRootedSlot != 3 {
		t.Fatalf("lastRootedSlot = %d", v.lastRootedSlot)
	}
}

func TestBlockFromWrongLeaderRejected(t *testing.T) {
	_, v := unitValidator(t, 10)
	leader := v.Leader(3)
	imposter := simnet.NodeID((int(leader) + 1) % 10)
	v.onBlock(blockMsg{Slot: 3, Height: 0, Leader: imposter})
	if _, ok := v.blocks[3]; ok {
		t.Fatal("imposter block stored")
	}
}

func TestEAHPanicConditions(t *testing.T) {
	_, v := unitValidator(t, 10)
	// Epoch 3 = [224,480), len 256 < 360, 3/4 mark 416, max lag 32:
	// rooting stalled at slot 350 < 384 when the clock reaches the mark.
	v.lastRootedSlot = 350
	v.checkEAH(416)
	if p, _ := v.Panicked(); !p {
		t.Fatal("no panic with stalled rooting at the 3/4 mark")
	}

	_, v2 := unitValidator(t, 10)
	v2.lastRootedSlot = 290 // rooted near the calc mark (288)
	v2.checkEAH(300)        // the EAH snapshot is taken in the window
	if _, ok := v2.EAH(3); !ok {
		t.Fatal("EAH not computed in the calc window")
	}
	v2.lastRootedSlot = 410 // within MaxRootLagSlots (32) of the mark
	v2.checkEAH(416)
	if p, _ := v2.Panicked(); p {
		t.Fatal("panicked despite healthy rooting and a computed EAH")
	}

	// A computed hash alone is not enough: rooting must also be live at
	// the integration point.
	_, v5 := unitValidator(t, 10)
	v5.lastRootedSlot = 290
	v5.checkEAH(300)
	v5.lastRootedSlot = 340 // stalled before the mark
	v5.checkEAH(416)
	if p, _ := v5.Panicked(); !p {
		t.Fatal("no panic when the integrating bank cannot be rooted")
	}

	// Long epochs never panic: epoch 4 = [480,992) has 512 >= 360 slots.
	_, v3 := unitValidator(t, 10)
	v3.lastRootedSlot = 0
	v3.checkEAH(480 + 3*512/4)
	if p, _ := v3.Panicked(); p {
		t.Fatal("panicked in an epoch long enough for the EAH schedule")
	}

	// Off the mark, no check fires.
	_, v4 := unitValidator(t, 10)
	v4.lastRootedSlot = -1
	v4.checkEAH(415)
	if p, _ := v4.Panicked(); p {
		t.Fatal("panicked away from the 3/4 mark")
	}
}

func TestPanickedValidatorIgnoresTraffic(t *testing.T) {
	sched, v := unitValidator(t, 10)
	v.panic()
	v.Deliver(1, txForward{Tx: chain.Tx{ID: chain.MakeTxID(0, 1)}})
	if v.base.Pool.Len() != 0 {
		t.Fatal("panicked node processed a message")
	}
	sched.RunUntil(5 * time.Second)
	if v.base.Ledger.Height() != 0 {
		t.Fatal("panicked node made progress")
	}
}

func TestSlowFaultTriggersEAHPanic(t *testing.T) {
	// The §2 observation: transient communication delays alone crash all
	// Solana nodes (rooting stalls across the 3/4 mark of a warm-up
	// epoch).
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     8,
		Duration: 300 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultSlow,
			InjectAt:  133 * time.Second,
			RecoverAt: 200 * time.Second,
			SlowBy:    60 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LivenessLost {
		t.Fatalf("Solana survived transient delays; last commit %v", res.LastCommitAt)
	}
}
