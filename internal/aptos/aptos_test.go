package aptos

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/simnet"
)

func TestTolerance(t *testing.T) {
	if got := Default().Tolerance(10); got != 3 {
		t.Fatalf("Tolerance(10) = %d, want 3", got)
	}
}

func TestWithResourcesScalesExecBudget(t *testing.T) {
	s := Default()
	scaled, ok := s.WithResources(2).(*System)
	if !ok {
		t.Fatal("WithResources returned unexpected type")
	}
	if scaled.cfg.Base.ExecRate != 2*s.cfg.Base.ExecRate {
		t.Fatalf("ExecRate = %v, want doubled", scaled.cfg.Base.ExecRate)
	}
}

func TestBaselineCommitsWorkload(t *testing.T) {
	res, err := core.Run(core.Config{
		System:   Default(),
		Seed:     2,
		Duration: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("baseline lost liveness; last commit %v", res.LastCommitAt)
	}
	if res.UniqueCommits < res.Submitted*90/100 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
}

func TestCrashCausesViewChangesButSurvives(t *testing.T) {
	cfg := core.Config{
		System:   Default(),
		Seed:     2,
		Duration: 240 * time.Second,
		Fault: core.FaultPlan{
			Kind:     core.FaultCrash,
			InjectAt: 60 * time.Second,
		},
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatal("f=t crashes must not kill Aptos")
	}
	// Right after the crash rounds with dead leaders time out; later,
	// leader reputation has excluded them and throughput restabilizes
	// (paper: oscillations damp in ~82 s).
	early := res.Throughput.MeanRate(62*time.Second, 90*time.Second)
	late := res.Throughput.MeanRate(180*time.Second, 235*time.Second)
	baseline := res.Throughput.MeanRate(20*time.Second, 58*time.Second)
	if late < 0.85*baseline {
		t.Fatalf("no restabilization: baseline=%.1f early=%.1f late=%.1f", baseline, early, late)
	}
}

func TestTransientBacklogNotCleared(t *testing.T) {
	cfg := core.Config{
		System:   Default(),
		Seed:     2,
		Duration: 400 * time.Second,
		Fault: core.FaultPlan{
			Kind:      core.FaultTransient,
			InjectAt:  133 * time.Second,
			RecoverAt: 266 * time.Second,
		},
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stalled during the outage (f = t+1 > quorum margin).
	during := res.Throughput.MeanRate(150*time.Second, 260*time.Second)
	if during > 30 {
		t.Fatalf("during outage rate = %.1f, want near-stall", during)
	}
	if res.LivenessLost {
		t.Fatal("Aptos must resume committing after reboot")
	}
	// The execution budget bounds post-recovery drain: far below the
	// Algorand/Redbelly-style sharp backlog peak, and the client backlog
	// is still visibly unprocessed at the end of the run.
	post := res.Throughput.MeanRate(280*time.Second, 395*time.Second)
	if post > 340 {
		t.Fatalf("post-recovery rate %.1f exceeds exec budget", post)
	}
	if res.Pending == 0 {
		t.Fatal("expected a residual uncommitted backlog at end of run")
	}
}

func TestLeaderExclusionAfterFailures(t *testing.T) {
	peers := []simnet.NodeID{0, 1, 2, 3}
	v := &validator{
		cfg:        DefaultConfig(),
		base:       chain.NewBaseNode(0, peers, nil, chain.BaseConfig{}),
		n:          4,
		failCount:  map[simnet.NodeID]int{2: 3},
		excludedAt: map[simnet.NodeID]int{2: 10},
	}
	if !v.excluded(2, 12) {
		t.Fatal("leader with FailThreshold failures not excluded")
	}
	if got := v.leader(10); got != 3 {
		t.Fatalf("leader(10) = %v, want rotation to skip excluded node 2", got)
	}
	// Exclusion expires with a second chance: one more failure re-excludes.
	expiry := 10 + v.cfg.ExcludeRounds + 1
	if v.excluded(2, expiry) {
		t.Fatal("exclusion did not expire")
	}
	if v.failCount[2] != v.cfg.FailThreshold-1 {
		t.Fatalf("failCount after expiry = %d, want %d", v.failCount[2], v.cfg.FailThreshold-1)
	}
}
