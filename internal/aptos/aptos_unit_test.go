package aptos

import (
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

func unitValidator(t *testing.T) (*sim.Scheduler, *validator) {
	t.Helper()
	sched := sim.New(5)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(time.Millisecond)})
	peers := []simnet.NodeID{0, 1, 2, 3}
	v, ok := Default().NewValidator(0, peers, chain.NewMonitor(), nil).(*validator)
	if !ok {
		t.Fatal("unexpected validator type")
	}
	net.AddNode(0, v)
	for _, p := range peers[1:] {
		net.AddNode(p, nopPeer{})
	}
	net.StartAll()
	return sched, v
}

type nopPeer struct{}

func (nopPeer) Start(*simnet.Context)      {}
func (nopPeer) Stop()                      {}
func (nopPeer) Deliver(simnet.NodeID, any) {}

func TestTimeoutGrowsExponentiallyAndCaps(t *testing.T) {
	_, v := unitValidator(t)
	base := v.timeout()
	if base != v.cfg.BaseTimeout {
		t.Fatalf("initial timeout = %v", base)
	}
	v.consFails = 1
	if got := v.timeout(); got != time.Duration(float64(base)*v.cfg.TimeoutGrowth) {
		t.Fatalf("timeout after one failure = %v", got)
	}
	v.consFails = 50
	if got := v.timeout(); got != v.cfg.TimeoutCap {
		t.Fatalf("timeout not capped: %v", got)
	}
}

func TestRoundRobinLeaderSkipsNobodyWhenHealthy(t *testing.T) {
	_, v := unitValidator(t)
	seen := make(map[simnet.NodeID]bool)
	for r := 0; r < 4; r++ {
		seen[v.leader(r)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("healthy rotation covered %d of 4 leaders", len(seen))
	}
}

func TestViewChangeMarksLeaderAndGrowsTimeout(t *testing.T) {
	sched, v := unitValidator(t)
	failed := v.leader(0)
	// A quorum (3 of 4, t=1 -> quorum 3) of timeouts for round 0.
	v.onTimeout(timeoutMsg{Round: 0, Voter: 1})
	v.onTimeout(timeoutMsg{Round: 0, Voter: 2})
	v.onTimeout(timeoutMsg{Round: 0, Voter: 3})
	if v.round != 1 {
		t.Fatalf("round = %d after timeout quorum", v.round)
	}
	if v.consFails != 1 {
		t.Fatalf("consFails = %d", v.consFails)
	}
	if v.failCount[failed] != 1 {
		t.Fatalf("failCount[%v] = %d", failed, v.failCount[failed])
	}
	sched.RunUntil(time.Second)
}

func TestJumpRequiresTPlusOneEvidence(t *testing.T) {
	_, v := unitValidator(t)
	v.onTimeout(timeoutMsg{Round: 10, Voter: 1})
	if v.round != 0 {
		t.Fatalf("jumped on a single voter's evidence: round=%d", v.round)
	}
	v.onTimeout(timeoutMsg{Round: 10, Voter: 2})
	if v.round != 10 {
		t.Fatalf("round = %d, want jump to 10 on t+1 evidence", v.round)
	}
	if v.ViewJumps() != 1 {
		t.Fatalf("viewJumps = %d", v.ViewJumps())
	}
}

func TestCommitForCurrentRoundAdvancesAndResetsBackoff(t *testing.T) {
	sched, v := unitValidator(t)
	v.consFails = 3
	block := chain.Block{Height: 0, DecidedAt: time.Second}
	v.onCommit(commitMsg{Round: 0, Block: block})
	if v.round != 1 {
		t.Fatalf("round = %d", v.round)
	}
	if v.consFails != 0 {
		t.Fatalf("consFails = %d, want reset on progress", v.consFails)
	}
	sched.RunUntil(time.Second)
	if v.base.Ledger.Height() != 1 {
		t.Fatalf("height = %d", v.base.Ledger.Height())
	}
}

func TestDuplicateGossipChargesSpeculativeExecution(t *testing.T) {
	sched, v := unitValidator(t)
	tx := chain.Tx{ID: chain.MakeTxID(0, 1), From: 1, To: 2}
	v.onTxGossip(txGossip{Tx: tx})
	if v.base.Pool.Len() != 1 {
		t.Fatal("first gossip not pooled")
	}
	// Redundant copies are re-executed speculatively: enough of them must
	// visibly delay the next block's execution.
	for i := 0; i < 1000; i++ {
		v.onTxGossip(txGossip{Tx: tx})
	}
	if v.base.Pool.Len() != 1 {
		t.Fatal("duplicate entered the pool")
	}
	start := sched.Now()
	v.base.SubmitBlock(chain.Block{Height: 0, Txs: []chain.Tx{tx}})
	sched.RunUntil(start + 10*time.Second)
	if v.base.Ledger.Height() != 1 {
		t.Fatal("block never applied")
	}
	applied := v.base.Ledger.LastDecidedAt()
	_ = applied
	// 1000 dups x 0.7 units at 330/s is ~2s of extra execution.
	if got := v.base.Ledger.Height(); got != 1 {
		t.Fatalf("height = %d", got)
	}
}

func TestConfigDefaultsSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TimeoutGrowth <= 1 {
		t.Fatal("timeout growth must exceed 1")
	}
	if cfg.Base.ExecRate <= 200 {
		t.Fatal("exec rate must exceed the 200 TPS workload")
	}
	if cfg.Conn.ReconnectCap > 30*time.Second {
		t.Fatal("Aptos reconnects within tens of seconds (5s probes, 30s cap)")
	}
}

func TestTransientScoreBelowPartitionEquivalence(t *testing.T) {
	// §6: Aptos shows the same sensitivity to transient failures and
	// partitions; check the two scores stay within 2x of each other.
	base := core.Config{
		System:   Default(),
		Seed:     3,
		Duration: 240 * time.Second,
		Fault:    core.FaultPlan{InjectAt: 80 * time.Second, RecoverAt: 160 * time.Second},
	}
	tr := base
	tr.Fault.Kind = core.FaultTransient
	trCmp, err := core.Compare(tr)
	if err != nil {
		t.Fatal(err)
	}
	pa := base
	pa.Fault.Kind = core.FaultPartition
	paCmp, err := core.Compare(pa)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := trCmp.Score.Value, paCmp.Score.Value
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 2*lo {
		t.Fatalf("transient %.1f vs partition %.1f: not equivalent", trCmp.Score.Value, paCmp.Score.Value)
	}
}
