package aptos

import (
	"stabl/internal/chain"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// validatorState is an Aptos validator checkpoint. Queued pacemaker closures
// capture only round numbers and the validator pointer, so plain deep copies
// of the vote books suffice; proposed transaction slices are immutable once
// stored and are shared.
type validatorState struct {
	base       chain.BaseState
	ctx        *simnet.Context
	round      int
	consFails  int
	roundTimer sim.Timer
	votes      map[int]map[simnet.NodeID]bool
	timeouts   map[int]map[simnet.NodeID]bool
	proposed   map[int][]chain.Tx
	committed  map[int]bool
	failCount  map[simnet.NodeID]int
	excludedAt map[simnet.NodeID]int
	viewJumps  uint64
}

var _ snapshot.Forkable = (*validator)(nil)

// Snapshot captures the validator: its BaseNode core, pacemaker position and
// timeout growth, the vote and timeout books, and leader reputation.
func (v *validator) Snapshot() snapshot.State {
	st := &validatorState{
		base:       v.base.SnapshotBase(),
		ctx:        v.ctx,
		round:      v.round,
		consFails:  v.consFails,
		roundTimer: v.roundTimer,
		votes:      make(map[int]map[simnet.NodeID]bool, len(v.votes)),
		timeouts:   make(map[int]map[simnet.NodeID]bool, len(v.timeouts)),
		proposed:   make(map[int][]chain.Tx, len(v.proposed)),
		committed:  make(map[int]bool, len(v.committed)),
		failCount:  make(map[simnet.NodeID]int, len(v.failCount)),
		excludedAt: make(map[simnet.NodeID]int, len(v.excludedAt)),
		viewJumps:  v.viewJumps,
	}
	for r, voters := range v.votes {
		st.votes[r] = copyVoters(voters)
	}
	for r, voters := range v.timeouts {
		st.timeouts[r] = copyVoters(voters)
	}
	for r, txs := range v.proposed {
		st.proposed[r] = txs
	}
	for r, done := range v.committed {
		st.committed[r] = done
	}
	for id, c := range v.failCount {
		st.failCount[id] = c
	}
	for id, r := range v.excludedAt {
		st.excludedAt[id] = r
	}
	return st
}

// Restore rewinds the validator to a state captured by Snapshot.
func (v *validator) Restore(state snapshot.State) {
	st, ok := state.(*validatorState)
	if !ok {
		panic("aptos: validator.Restore on foreign state")
	}
	v.base.RestoreBase(st.base)
	v.ctx = st.ctx
	v.round = st.round
	v.consFails = st.consFails
	v.roundTimer = st.roundTimer
	v.viewJumps = st.viewJumps
	v.votes = make(map[int]map[simnet.NodeID]bool, len(st.votes))
	for r, voters := range st.votes {
		v.votes[r] = copyVoters(voters)
	}
	v.timeouts = make(map[int]map[simnet.NodeID]bool, len(st.timeouts))
	for r, voters := range st.timeouts {
		v.timeouts[r] = copyVoters(voters)
	}
	v.proposed = make(map[int][]chain.Tx, len(st.proposed))
	for r, txs := range st.proposed {
		v.proposed[r] = txs
	}
	v.committed = make(map[int]bool, len(st.committed))
	for r, done := range st.committed {
		v.committed[r] = done
	}
	v.failCount = make(map[simnet.NodeID]int, len(st.failCount))
	for id, c := range st.failCount {
		v.failCount[id] = c
	}
	v.excludedAt = make(map[simnet.NodeID]int, len(st.excludedAt))
	for id, r := range st.excludedAt {
		v.excludedAt[id] = r
	}
}

func copyVoters(m map[simnet.NodeID]bool) map[simnet.NodeID]bool {
	out := make(map[simnet.NodeID]bool, len(m))
	for id := range m {
		out[id] = true
	}
	return out
}
