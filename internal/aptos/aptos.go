// Package aptos models the Aptos blockchain (STABL §2): the leader-based
// DiemBFT (AptosBFT) consensus derived from HotStuff, with a quadratic
// view-change mechanism, a gossiped mempool, and Block-STM speculative
// execution.
//
// The model reproduces the behaviours STABL measures:
//
//   - Crashed leaders force view changes with exponential timeouts; the
//     throughput oscillates and damps out as leader reputation excludes the
//     crashed validators from rotation (§4, "the throughput instability
//     reduces in about 82 seconds").
//   - With f = t+1 transient failures the quorum disappears; after the
//     reboot the chain resumes but its bounded execution budget cannot drain
//     the accumulated backlog, leaving throughput degraded for the rest of
//     the run (§5).
//   - Partition recovery is fast because peer connectivity is re-probed
//     every few seconds with a small backoff cap (§6).
//   - Redundant submissions from the secure client trigger speculative
//     re-execution (SEQUENCE_NUMBER_TOO_OLD), burning execution budget and
//     degrading latency (§7).
package aptos

import (
	"time"

	"stabl/internal/chain"
	"stabl/internal/committee"
	"stabl/internal/metrics"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// Config parameterizes the Aptos model.
type Config struct {
	// BaseTimeout is the initial round (view) timeout.
	BaseTimeout time.Duration
	// TimeoutGrowth multiplies the timeout after consecutive failures.
	TimeoutGrowth float64
	// TimeoutCap bounds the exponential growth.
	TimeoutCap time.Duration
	// ViewChangeDelay models the quadratic communication cost of a view
	// change: extra processing time added before entering the new round.
	ViewChangeDelay time.Duration
	// MinRoundInterval paces successful rounds.
	MinRoundInterval time.Duration
	// MaxBlockTxs caps a proposal.
	MaxBlockTxs int
	// FailThreshold is how many timeout-quorums a leader suffers before
	// reputation excludes it from rotation.
	FailThreshold int
	// ExcludeRounds is how long (in rounds) an excluded leader stays out.
	ExcludeRounds int
	// DuplicateGossipCost is the execution-budget charge for receiving a
	// gossiped transaction that is already committed (speculative
	// re-execution of a stale sequence number).
	DuplicateGossipCost float64
	// Base configures the shared validator core. Base.ExecRate is the
	// binding drain constraint after an outage.
	Base chain.BaseConfig
	// Conn configures the peer connection layer.
	Conn simnet.ConnParams
}

// DefaultConfig returns the production-like parameters used by the STABL
// experiments.
func DefaultConfig() Config {
	return Config{
		BaseTimeout:         time.Second,
		TimeoutGrowth:       1.5,
		TimeoutCap:          10 * time.Second,
		ViewChangeDelay:     200 * time.Millisecond,
		MinRoundInterval:    time.Second,
		MaxBlockTxs:         350,
		FailThreshold:       3,
		ExcludeRounds:       600,
		DuplicateGossipCost: 0.7,
		Base: chain.BaseConfig{
			// ~330 tx/s execution: comfortable for the 200 TPS
			// workload, far too little spare capacity to clear a
			// 133-second backlog (STABL §5).
			ExecRate:          330,
			ExecBurst:         100,
			DuplicateExecCost: 1,
		},
		Conn: simnet.ConnParams{
			HeartbeatInterval: time.Second,
			IdleTimeout:       10 * time.Second,
			ReconnectBase:     2 * time.Second, // exponential backoff base 2 s
			ReconnectCap:      5 * time.Second, // connectivity re-checked every 5 s
			Multiplier:        2,
			HandshakeTimeout:  2 * time.Second,
		},
	}
}

// System implements chain.System for Aptos.
type System struct {
	cfg Config
}

var _ chain.System = (*System)(nil)

// NewSystem creates an Aptos system with the given configuration.
func NewSystem(cfg Config) *System { return &System{cfg: cfg} }

// Default creates an Aptos system with DefaultConfig.
func Default() *System { return NewSystem(DefaultConfig()) }

// Name implements chain.System.
func (s *System) Name() string { return "Aptos" }

// Tolerance implements chain.System: t = ceil(n/3) - 1.
func (s *System) Tolerance(n int) int { return chain.ToleranceThird(n) }

// ConnParams implements chain.System.
func (s *System) ConnParams() simnet.ConnParams { return s.cfg.Conn }

// WithResources implements the harness resource bump used by the
// secure-client experiment: a bigger VM means a larger execution budget.
func (s *System) WithResources(scale float64) chain.System {
	cfg := s.cfg
	cfg.Base.ExecRate *= scale
	return NewSystem(cfg)
}

// NewValidator implements chain.System.
func (s *System) NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *chain.Monitor, genesis []chain.GenesisAccount) simnet.Handler {
	v := &validator{
		cfg:  s.cfg,
		base: chain.NewBaseNode(id, peers, mon, s.cfg.Base),
		n:    len(peers),
		t:    chain.ToleranceThird(len(peers)),
	}
	v.quorum = committee.Quorum(v.n, v.t)
	for _, g := range genesis {
		v.base.Ledger.Mint(g.Addr, g.Balance)
	}
	return v
}

// Wire messages.
type (
	// txGossip shares a mempool transaction with all validators.
	txGossip struct {
		Tx chain.Tx
	}
	// proposalMsg is the round leader's block.
	proposalMsg struct {
		Round  int
		Height int
		Leader simnet.NodeID
		Txs    []chain.Tx
	}
	// voteMsg is a replica's vote, sent to the leader.
	voteMsg struct {
		Round  int
		Height int
		Voter  simnet.NodeID
	}
	// commitMsg is the leader's quorum-certified block.
	commitMsg struct {
		Round int
		Block chain.Block
	}
	// timeoutMsg signals a view change; the all-to-all exchange is the
	// quadratic cost inherited from PBFT.
	timeoutMsg struct {
		Round int
		Voter simnet.NodeID
	}
)

type validator struct {
	cfg    Config
	base   *chain.BaseNode
	n      int
	t      int
	quorum int

	ctx        *simnet.Context
	round      int
	consFails  int
	roundTimer sim.Timer
	votes      map[int]map[simnet.NodeID]bool
	timeouts   map[int]map[simnet.NodeID]bool
	proposed   map[int][]chain.Tx
	committed  map[int]bool
	// Leader reputation (volatile, converges via timeout quorums).
	failCount  map[simnet.NodeID]int
	excludedAt map[simnet.NodeID]int
	viewJumps  uint64
}

var _ simnet.Handler = (*validator)(nil)

// Start implements simnet.Handler.
func (v *validator) Start(ctx *simnet.Context) {
	v.ctx = ctx
	v.base.Reset(ctx)
	v.round = 0
	v.consFails = 0
	v.votes = make(map[int]map[simnet.NodeID]bool)
	v.timeouts = make(map[int]map[simnet.NodeID]bool)
	v.proposed = make(map[int][]chain.Tx)
	v.committed = make(map[int]bool)
	v.failCount = make(map[simnet.NodeID]int)
	v.excludedAt = make(map[simnet.NodeID]int)
	v.base.OnLocalSubmit = v.gossipTx
	v.base.OnCaughtUp = func() {}
	if v.base.Ledger.Height() > 0 {
		// Restart: fetch missed blocks; round position is learned from
		// live traffic.
		v.base.StartCatchUp()
	}
	v.enterRound(v.round, 0)
}

// Stop implements simnet.Handler.
func (v *validator) Stop() {
	v.roundTimer.Stop()
}

// Base exposes the validator core.
func (v *validator) Base() *chain.BaseNode { return v.base }

// ViewJumps counts how many rounds were skipped via timeout quorums.
func (v *validator) ViewJumps() uint64 { return v.viewJumps }

// Deliver implements simnet.Handler.
func (v *validator) Deliver(from simnet.NodeID, payload any) {
	payload, ok := v.base.Unwrap(from, payload)
	if !ok {
		return
	}
	if v.base.HandleClient(from, payload) {
		return
	}
	if v.base.HandleSync(from, payload) {
		return
	}
	switch msg := payload.(type) {
	case txGossip:
		v.onTxGossip(msg)
	case proposalMsg:
		v.onProposal(msg)
	case voteMsg:
		v.onVote(msg)
	case commitMsg:
		v.onCommit(msg)
	case timeoutMsg:
		v.onTimeout(msg)
	}
}

// gossipTx broadcasts a locally submitted transaction to every validator so
// any leader can include it (Aptos' shared mempool).
func (v *validator) gossipTx(tx chain.Tx) {
	v.base.Broadcast(txGossip{Tx: tx})
}

func (v *validator) onTxGossip(msg txGossip) {
	if _, committed := v.base.Ledger.Committed(msg.Tx.ID); committed {
		// Stale sequence number: Block-STM speculatively re-executes
		// and aborts (SEQUENCE_NUMBER_TOO_OLD).
		v.base.ChargeExec(v.cfg.DuplicateGossipCost)
		return
	}
	if !v.base.Pool.Add(msg.Tx) {
		// Redundant copy of a pending transaction (the secure client
		// fed it to several validators): Block-STM still executes it
		// speculatively before aborting, stealing CPU from the next
		// block's execution.
		v.base.AddExecCost(v.cfg.DuplicateGossipCost)
	}
}

// leader returns the expected leader of a round under this node's local
// reputation view.
func (v *validator) leader(round int) simnet.NodeID {
	for i := 0; i < v.n; i++ {
		c := v.base.Peers[(round+i)%v.n]
		if !v.excluded(c, round) {
			return c
		}
	}
	return v.base.Peers[round%v.n]
}

func (v *validator) excluded(c simnet.NodeID, round int) bool {
	if v.failCount[c] < v.cfg.FailThreshold {
		return false
	}
	if round-v.excludedAt[c] > v.cfg.ExcludeRounds {
		// Second chance: one more failure re-excludes immediately.
		v.failCount[c] = v.cfg.FailThreshold - 1
		return false
	}
	return true
}

// enterRound arms the pacemaker for a round; the leader proposes after
// delay (used to pace successful rounds and model view-change cost).
func (v *validator) enterRound(round int, delay time.Duration) {
	v.round = round
	v.roundTimer.Stop()
	v.base.Consensus(metrics.EventRoundStart, round, v.leader(round), "")
	v.roundTimer = v.ctx.After(delay+v.timeout(), func() { v.onLocalTimeout(round) })
	if v.leader(round) == v.base.ID {
		v.ctx.After(delay, func() { v.propose(round) })
	}
}

func (v *validator) timeout() time.Duration {
	d := v.cfg.BaseTimeout
	for i := 0; i < v.consFails; i++ {
		d = time.Duration(float64(d) * v.cfg.TimeoutGrowth)
		if d >= v.cfg.TimeoutCap {
			return v.cfg.TimeoutCap
		}
	}
	return d
}

func (v *validator) propose(round int) {
	if round != v.round {
		return
	}
	if _, done := v.proposed[round]; done {
		return
	}
	height := v.base.ChainTip()
	txs := v.base.ProposalTxs(v.cfg.MaxBlockTxs)
	v.proposed[round] = txs
	msg := proposalMsg{Round: round, Height: height, Leader: v.base.ID, Txs: txs}
	v.base.Broadcast(msg)
	v.onProposal(msg) // count self
}

func (v *validator) onProposal(msg proposalMsg) {
	if msg.Round < v.round {
		return
	}
	if msg.Round > v.round {
		// A proposal for a later round is evidence the network moved
		// on; adopt it (the QC chain in real DiemBFT).
		v.jumpTo(msg.Round)
	}
	if v.leader(msg.Round) != msg.Leader {
		return
	}
	vote := voteMsg{Round: msg.Round, Height: msg.Height, Voter: v.base.ID}
	switch {
	case msg.Leader == v.base.ID:
		v.onVote(vote)
	case v.base.Gossips():
		// Overlay mode: the leader may not be an overlay neighbor, so the
		// vote travels the broadcast tree instead of a direct send.
		v.base.Broadcast(vote)
	default:
		v.ctx.Send(msg.Leader, vote)
	}
}

func (v *validator) onVote(msg voteMsg) {
	if msg.Round != v.round || v.committed[msg.Round] {
		return
	}
	if v.base.Gossips() {
		// Votes are broadcast over the overlay, so every validator sees
		// them; only the round's proposer tallies — it alone holds the
		// proposal content a certificate would certify.
		if _, mine := v.proposed[msg.Round]; !mine {
			return
		}
	}
	votes, ok := v.votes[msg.Round]
	if !ok {
		votes = make(map[simnet.NodeID]bool)
		v.votes[msg.Round] = votes
	}
	votes[msg.Voter] = true
	if len(votes) < v.quorum {
		return
	}
	v.committed[msg.Round] = true
	block := chain.Block{
		Height:    v.base.ChainTip(),
		Proposer:  v.base.ID,
		Parent:    v.base.TipHash(),
		Txs:       v.proposed[msg.Round],
		DecidedAt: v.ctx.Now(),
	}
	msgOut := commitMsg{Round: msg.Round, Block: block}
	v.base.Broadcast(msgOut)
	v.handleCommit(msgOut)
}

func (v *validator) onCommit(msg commitMsg) {
	v.handleCommit(msg)
}

func (v *validator) handleCommit(msg commitMsg) {
	v.base.Consensus(metrics.EventCommit, msg.Round, msg.Block.Proposer, "")
	v.base.SubmitBlock(msg.Block)
	if msg.Round < v.round {
		return
	}
	v.consFails = 0
	v.advance(msg.Round+1, v.cfg.MinRoundInterval)
}

func (v *validator) onLocalTimeout(round int) {
	if round != v.round {
		return
	}
	v.base.Consensus(metrics.EventTimeout, round, v.leader(round), "pacemaker timeout")
	msg := timeoutMsg{Round: round, Voter: v.base.ID}
	v.base.Broadcast(msg)
	// Keep the pacemaker alive: re-arm so the timeout is re-broadcast
	// until the round advances. Without this a network that temporarily
	// lost its quorum would never re-assemble one.
	v.roundTimer = v.ctx.After(v.timeout(), func() { v.onLocalTimeout(round) })
	v.onTimeout(msg)
}

func (v *validator) onTimeout(msg timeoutMsg) {
	if msg.Round < v.round {
		return
	}
	touts, ok := v.timeouts[msg.Round]
	if !ok {
		touts = make(map[simnet.NodeID]bool)
		v.timeouts[msg.Round] = touts
	}
	touts[msg.Voter] = true
	// t+1 timeouts prove at least one correct node gave up on the round:
	// join the view change. A full quorum completes it.
	if len(touts) >= v.t+1 && msg.Round > v.round {
		v.jumpTo(msg.Round)
	}
	if msg.Round == v.round && len(touts) >= v.quorum {
		v.viewChange(msg.Round)
	}
}

// viewChange marks the failed leader and enters the next round with grown
// timeout and the quadratic view-change processing delay.
func (v *validator) viewChange(round int) {
	failed := v.leader(round)
	v.base.Consensus(metrics.EventLeaderChange, round, failed, "view change away from failed leader")
	v.failCount[failed]++
	if v.failCount[failed] >= v.cfg.FailThreshold {
		v.excludedAt[failed] = round
	}
	v.consFails++
	v.advance(round+1, v.cfg.ViewChangeDelay)
}

// jumpTo abandons rounds the network has left behind.
func (v *validator) jumpTo(round int) {
	if round <= v.round {
		return
	}
	v.viewJumps++
	v.advance(round, 0)
}

func (v *validator) advance(round int, delay time.Duration) {
	if round <= v.round {
		return
	}
	for r := range v.votes {
		if r < round {
			delete(v.votes, r)
		}
	}
	for r := range v.timeouts {
		if r < round-1 {
			delete(v.timeouts, r)
		}
	}
	for r := range v.proposed {
		if r < round {
			delete(v.proposed, r)
			delete(v.committed, r)
		}
	}
	v.enterRound(round, delay)
	// A node whose chain is behind its pipeline has missed commits.
	if v.base.HeadPending() > v.base.Ledger.Height() {
		v.base.StartCatchUp()
	}
}
