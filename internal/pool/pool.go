// Package pool provides the bounded worker pool shared by the chaos-campaign
// engine and the suite runner. Every STABL experiment is an independent
// deterministic simulation, so fault-space exploration parallelizes
// trivially: ForEach fans a fixed set of jobs out over a bounded number of
// goroutines, recovers per-job panics into errors, and honours context
// cancellation, while callers keep deterministic output by writing results
// into index-addressed slots.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError reports a panic recovered from one job. The job's failure is
// isolated: the remaining jobs keep running.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// ForEach invokes job(i) for every i in [0, n) on at most workers concurrent
// goroutines (GOMAXPROCS when workers <= 0) and returns one error slot per
// job, in index order. A panic inside a job is recovered into a *PanicError
// at that job's slot; jobs not yet started when ctx is cancelled are skipped
// and report ctx.Err(). ForEach always waits for in-flight jobs before
// returning.
func ForEach(ctx context.Context, n, workers int, job func(int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = protect(job, i)
			}
		}()
	}
	wg.Wait()
	return errs
}

// protect runs job(i), converting a panic into a *PanicError.
func protect(job func(int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return job(i)
}
