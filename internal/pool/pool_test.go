package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var ran atomic.Int64
		out := make([]int, 50)
		errs := ForEach(context.Background(), len(out), workers, func(i int) error {
			ran.Add(1)
			out[i] = i * i
			return nil
		})
		if got := ran.Load(); got != 50 {
			t.Fatalf("workers=%d ran %d jobs, want 50", workers, got)
		}
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, err)
			}
			if out[i] != i*i {
				t.Fatalf("workers=%d out[%d] = %d", workers, i, out[i])
			}
		}
	}
}

func TestForEachKeepsErrorsInIndexOrder(t *testing.T) {
	errs := ForEach(context.Background(), 10, 4, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	for i, err := range errs {
		if i%3 == 0 && (err == nil || !strings.Contains(err.Error(), fmt.Sprintf("job %d", i))) {
			t.Fatalf("errs[%d] = %v", i, err)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
}

func TestForEachIsolatesPanics(t *testing.T) {
	errs := ForEach(context.Background(), 8, 4, func(i int) error {
		if i == 5 {
			panic("EAH mismatch")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(errs[5], &pe) {
		t.Fatalf("errs[5] = %v, want *PanicError", errs[5])
	}
	if pe.Value != "EAH mismatch" || len(pe.Stack) == 0 {
		t.Fatalf("panic error = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "EAH mismatch") {
		t.Fatalf("Error() = %q", pe.Error())
	}
	for i, err := range errs {
		if i != 5 && err != nil {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
}

func TestForEachHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	errs := ForEach(ctx, 20, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran after cancellation", ran.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if errs := ForEach(context.Background(), 0, 4, nil); len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
}
