// Package observer implements STABL's fault-injection architecture (paper
// Fig 2): a primary coordinator broadcasts signals over the network to
// observer processes co-located with every blockchain node; the observers
// kill or reboot the local blockchain process and install or remove the
// local packet-drop rules that create partitions.
package observer

import (
	"time"

	"stabl/internal/simnet"
)

// Signals sent from the primary to observers. They travel over the
// simulated network like any other message.
type (
	// KillSignal tells the observer to kill its blockchain process.
	KillSignal struct{}
	// RebootSignal tells the observer to restart its blockchain process.
	RebootSignal struct{}
	// PartitionSignal tells the observer to drop packets between its
	// node and Other (netfilter rules in the paper).
	PartitionSignal struct {
		Other []simnet.NodeID
	}
	// HealSignal removes the observer's packet-drop rules.
	HealSignal struct{}
	// SlowSignal installs a tc-netem delay rule on the node's interface.
	SlowSignal struct {
		Delay time.Duration
	}
	// FastSignal removes the delay rule.
	FastSignal struct{}
	// LossSignal installs a tc-netem probabilistic-loss rule on the
	// node's interface (rate 0 removes it).
	LossSignal struct {
		Rate float64
	}
	// JitterSignal installs a tc-netem delay-variation rule on the node's
	// interface (bound 0 removes it).
	JitterSignal struct {
		Bound time.Duration
	}
	// AckSignal reports an executed action back to the primary.
	AckSignal struct {
		Action string
	}
)

// Observer runs beside one blockchain node. It never crashes itself: fault
// injection must keep working while the observed process is down.
type Observer struct {
	target simnet.NodeID
	net    *simnet.Network
	ctx    *simnet.Context
	rule   int
	hasRul bool
	log    []string
}

var _ simnet.Handler = (*Observer)(nil)

// New creates an observer controlling the given blockchain node.
func New(target simnet.NodeID, net *simnet.Network) *Observer {
	return &Observer{target: target, net: net}
}

// Start implements simnet.Handler.
func (o *Observer) Start(ctx *simnet.Context) { o.ctx = ctx }

// Stop implements simnet.Handler.
func (o *Observer) Stop() {}

// Deliver implements simnet.Handler.
func (o *Observer) Deliver(from simnet.NodeID, payload any) {
	switch sig := payload.(type) {
	case KillSignal:
		o.net.Halt(o.target)
		o.log = append(o.log, "kill")
		o.ctx.Send(from, AckSignal{Action: "kill"})
	case RebootSignal:
		o.net.Restart(o.target)
		o.log = append(o.log, "reboot")
		o.ctx.Send(from, AckSignal{Action: "reboot"})
	case PartitionSignal:
		if o.hasRul {
			o.net.Heal(o.rule)
		}
		o.rule = o.net.Partition([]simnet.NodeID{o.target}, sig.Other)
		o.hasRul = true
		o.log = append(o.log, "partition")
		o.ctx.Send(from, AckSignal{Action: "partition"})
	case HealSignal:
		if o.hasRul {
			o.net.Heal(o.rule)
			o.hasRul = false
		}
		o.log = append(o.log, "heal")
		o.ctx.Send(from, AckSignal{Action: "heal"})
	case SlowSignal:
		o.net.SetExtraDelay(o.target, sig.Delay)
		o.log = append(o.log, "slow")
		o.ctx.Send(from, AckSignal{Action: "slow"})
	case FastSignal:
		o.net.SetExtraDelay(o.target, 0)
		o.log = append(o.log, "fast")
		o.ctx.Send(from, AckSignal{Action: "fast"})
	case LossSignal:
		o.net.SetLoss(o.target, sig.Rate)
		o.log = append(o.log, "loss")
		o.ctx.Send(from, AckSignal{Action: "loss"})
	case JitterSignal:
		o.net.SetJitter(o.target, sig.Bound)
		o.log = append(o.log, "jitter")
		o.ctx.Send(from, AckSignal{Action: "jitter"})
	}
}

// Log returns the actions the observer executed, in order.
func (o *Observer) Log() []string { return append([]string(nil), o.log...) }

// Action is one step of a fault script, executed by the primary at a given
// virtual time.
type Action struct {
	// At is when the primary emits the signals.
	At time.Duration
	// Kill and Reboot list blockchain nodes whose observers receive the
	// corresponding signal.
	Kill   []simnet.NodeID
	Reboot []simnet.NodeID
	// PartitionA/PartitionB isolate two groups from each other: every
	// observer of a node in PartitionA receives a PartitionSignal
	// against PartitionB.
	PartitionA []simnet.NodeID
	PartitionB []simnet.NodeID
	// Heal lists nodes whose observers must drop their packet rules.
	Heal []simnet.NodeID
	// Slow lists nodes whose observers install a SlowBy delay rule;
	// Fast lists nodes whose delay rules are removed.
	Slow   []simnet.NodeID
	SlowBy time.Duration
	Fast   []simnet.NodeID
	// Loss lists nodes whose observers install a LossRate packet-loss
	// rule (LossRate 0 removes it); Jitter lists nodes whose observers
	// install a JitterBy delay-variation rule (JitterBy 0 removes it).
	Loss     []simnet.NodeID
	LossRate float64
	Jitter   []simnet.NodeID
	JitterBy time.Duration
}

// Primary is the coordinator machine: it owns the fault script and signals
// observers at the scheduled instants.
type Primary struct {
	script    []Action
	observers map[simnet.NodeID]simnet.NodeID // blockchain node -> observer id
	ctx       *simnet.Context
	acks      int
	executed  int
}

var _ simnet.Handler = (*Primary)(nil)

// NewPrimary creates the coordinator. observers maps each blockchain node to
// the network id of its observer process.
func NewPrimary(script []Action, observers map[simnet.NodeID]simnet.NodeID) *Primary {
	return &Primary{script: script, observers: observers}
}

// Start implements simnet.Handler; it schedules every scripted action. Each
// scheduled event captures its index and reads the script at fire time, so a
// forked continuation steered onto a sibling schedule via SetScript executes
// the replacement actions.
func (p *Primary) Start(ctx *simnet.Context) {
	p.ctx = ctx
	for i := range p.script {
		i := i
		delay := p.script[i].At - ctx.Now()
		ctx.After(delay, func() { p.execute(p.script[i]) })
	}
}

// Stop implements simnet.Handler.
func (p *Primary) Stop() {}

// Deliver implements simnet.Handler.
func (p *Primary) Deliver(_ simnet.NodeID, payload any) {
	if _, ok := payload.(AckSignal); ok {
		p.acks++
	}
}

// Acks returns how many observer acknowledgements arrived.
func (p *Primary) Acks() int { return p.acks }

// Executed returns how many script actions have fired.
func (p *Primary) Executed() int { return p.executed }

func (p *Primary) execute(act Action) {
	p.executed++
	for _, node := range act.Kill {
		p.signal(node, KillSignal{})
	}
	for _, node := range act.Reboot {
		p.signal(node, RebootSignal{})
	}
	for _, node := range act.PartitionA {
		p.signal(node, PartitionSignal{Other: act.PartitionB})
	}
	for _, node := range act.Heal {
		p.signal(node, HealSignal{})
	}
	for _, node := range act.Slow {
		p.signal(node, SlowSignal{Delay: act.SlowBy})
	}
	for _, node := range act.Fast {
		p.signal(node, FastSignal{})
	}
	for _, node := range act.Loss {
		p.signal(node, LossSignal{Rate: act.LossRate})
	}
	for _, node := range act.Jitter {
		p.signal(node, JitterSignal{Bound: act.JitterBy})
	}
}

func (p *Primary) signal(node simnet.NodeID, sig any) {
	obs, ok := p.observers[node]
	if !ok {
		return
	}
	p.ctx.Send(obs, sig)
}
