package observer

import (
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// observerState is an Observer checkpoint.
type observerState struct {
	ctx    *simnet.Context
	rule   int
	hasRul bool
	log    []string
}

var _ snapshot.Forkable = (*Observer)(nil)

// Snapshot captures the observer's installed-rule handle and action log.
func (o *Observer) Snapshot() snapshot.State {
	return &observerState{
		ctx:    o.ctx,
		rule:   o.rule,
		hasRul: o.hasRul,
		log:    append([]string(nil), o.log...),
	}
}

// Restore rewinds the observer to a state captured by Snapshot.
func (o *Observer) Restore(state snapshot.State) {
	st, ok := state.(*observerState)
	if !ok {
		panic("observer: Observer.Restore on foreign state")
	}
	o.ctx = st.ctx
	o.rule = st.rule
	o.hasRul = st.hasRul
	o.log = append(o.log[:0], st.log...)
}

// primaryState is a Primary checkpoint. The script itself is captured so a
// restored run can be re-pointed at a sibling script (see SetScript) without
// the previous continuation's mutations leaking through.
type primaryState struct {
	ctx      *simnet.Context
	script   []Action
	acks     int
	executed int
}

var _ snapshot.Forkable = (*Primary)(nil)

// Snapshot captures the primary: its script contents and progress counters.
func (p *Primary) Snapshot() snapshot.State {
	return &primaryState{
		ctx:      p.ctx,
		script:   append([]Action(nil), p.script...),
		acks:     p.acks,
		executed: p.executed,
	}
}

// Restore rewinds the primary to a state captured by Snapshot.
func (p *Primary) Restore(state snapshot.State) {
	st, ok := state.(*primaryState)
	if !ok {
		panic("observer: Primary.Restore on foreign state")
	}
	if len(st.script) != len(p.script) {
		panic("observer: Primary.Restore script length mismatch")
	}
	p.ctx = st.ctx
	copy(p.script, st.script)
	p.acks = st.acks
	p.executed = st.executed
}

// SetScript replaces the primary's script contents in place. The scheduled
// signal events read the script at fire time, so actions not yet executed
// take the new contents — this is how a forked continuation is steered onto
// a sibling fault schedule. The replacement must be shape-compatible with
// the original: same number of actions at the same instants (only
// magnitudes and node sets may differ), so a forked run schedules exactly
// the events a from-scratch run of the new script would.
func (p *Primary) SetScript(script []Action) {
	if len(script) != len(p.script) {
		panic("observer: SetScript with different action count")
	}
	for i := range script {
		if script[i].At != p.script[i].At {
			panic("observer: SetScript with shifted action instants")
		}
	}
	copy(p.script, script)
}

// Script returns a copy of the primary's current script.
func (p *Primary) Script() []Action {
	return append([]Action(nil), p.script...)
}
