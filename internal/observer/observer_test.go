package observer

import (
	"testing"
	"time"

	"stabl/internal/sim"
	"stabl/internal/simnet"
)

type nopHandler struct {
	ctx    *simnet.Context
	starts int
	stops  int
	got    []any
}

func (h *nopHandler) Start(ctx *simnet.Context) { h.ctx = ctx; h.starts++ }
func (h *nopHandler) Stop()                     { h.stops++ }
func (h *nopHandler) Deliver(_ simnet.NodeID, payload any) {
	h.got = append(h.got, payload)
}

func observerSetup(t *testing.T, script []Action) (*sim.Scheduler, *simnet.Network, []*nopHandler, *Primary, []*Observer) {
	t.Helper()
	sched := sim.New(3)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(5 * time.Millisecond)})
	const nodes = 4
	hs := make([]*nopHandler, nodes)
	obs := make([]*Observer, nodes)
	mapping := make(map[simnet.NodeID]simnet.NodeID, nodes)
	for i := 0; i < nodes; i++ {
		hs[i] = &nopHandler{}
		net.AddNode(simnet.NodeID(i), hs[i])
		obs[i] = New(simnet.NodeID(i), net)
		obsID := simnet.NodeID(200 + i)
		net.AddNode(obsID, obs[i])
		mapping[simnet.NodeID(i)] = obsID
	}
	primary := NewPrimary(script, mapping)
	net.AddNode(299, primary)
	net.StartAll()
	return sched, net, hs, primary, obs
}

func TestPrimaryKillAndRebootViaObservers(t *testing.T) {
	script := []Action{
		{At: 10 * time.Second, Kill: []simnet.NodeID{1, 2}},
		{At: 20 * time.Second, Reboot: []simnet.NodeID{1, 2}},
	}
	sched, net, hs, primary, _ := observerSetup(t, script)
	sched.RunUntil(15 * time.Second)
	if net.IsUp(1) || net.IsUp(2) {
		t.Fatal("kill signal not executed")
	}
	if net.IsUp(0) != true {
		t.Fatal("untargeted node killed")
	}
	if hs[1].stops != 1 {
		t.Fatal("handler Stop not invoked")
	}
	sched.RunUntil(25 * time.Second)
	if !net.IsUp(1) || !net.IsUp(2) {
		t.Fatal("reboot signal not executed")
	}
	if hs[1].starts != 2 {
		t.Fatalf("starts = %d, want 2", hs[1].starts)
	}
	if primary.Executed() != 2 {
		t.Fatalf("executed = %d", primary.Executed())
	}
	if primary.Acks() != 4 {
		t.Fatalf("acks = %d, want 4", primary.Acks())
	}
}

func TestObserverPartitionAndHeal(t *testing.T) {
	script := []Action{
		{At: time.Second, PartitionA: []simnet.NodeID{0, 1}, PartitionB: []simnet.NodeID{2, 3}},
		{At: 10 * time.Second, Heal: []simnet.NodeID{0, 1}},
	}
	sched, net, hs, _, obs := observerSetup(t, script)
	sched.RunUntil(5 * time.Second)
	if !net.Blocked(0, 2) || !net.Blocked(3, 1) {
		t.Fatal("partition not installed")
	}
	if net.Blocked(0, 1) || net.Blocked(2, 3) {
		t.Fatal("intra-group traffic blocked")
	}
	// Cross-partition message is lost.
	hs[0].ctx.Send(2, "x")
	sched.RunUntil(6 * time.Second)
	if len(hs[2].got) != 0 {
		t.Fatal("message crossed partition")
	}
	sched.RunUntil(11 * time.Second)
	if net.Blocked(0, 2) {
		t.Fatal("heal not executed")
	}
	hs[0].ctx.Send(2, "y")
	sched.RunUntil(12 * time.Second)
	if len(hs[2].got) != 1 {
		t.Fatal("post-heal message lost")
	}
	if log := obs[0].Log(); len(log) != 2 || log[0] != "partition" || log[1] != "heal" {
		t.Fatalf("observer log = %v", log)
	}
}

func TestObserverSurvivesTargetCrash(t *testing.T) {
	script := []Action{
		{At: time.Second, Kill: []simnet.NodeID{1}},
		{At: 2 * time.Second, Kill: []simnet.NodeID{1}}, // idempotent on downed node
		{At: 3 * time.Second, Reboot: []simnet.NodeID{1}},
	}
	sched, net, _, _, _ := observerSetup(t, script)
	sched.RunUntil(10 * time.Second)
	if !net.IsUp(1) {
		t.Fatal("node not rebooted")
	}
}

func TestPrimaryIgnoresUnknownNodes(t *testing.T) {
	script := []Action{{At: time.Second, Kill: []simnet.NodeID{42}}}
	sched, _, _, primary, _ := observerSetup(t, script)
	sched.RunUntil(2 * time.Second)
	if primary.Executed() != 1 {
		t.Fatal("action with unknown target not executed")
	}
	if primary.Acks() != 0 {
		t.Fatal("phantom ack")
	}
}
