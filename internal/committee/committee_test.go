package committee

import (
	"math/rand"
	"testing"
)

func TestExtractDeterministic(t *testing.T) {
	tab := Uniform(100)
	a := tab.Extract(42, 7, 1, 16)
	b := tab.Extract(42, 7, 1, 16)
	if a.Size() != 16 || b.Size() != 16 {
		t.Fatalf("committee sizes = %d, %d; want 16", a.Size(), b.Size())
	}
	am, bm := a.Members(), b.Members()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("member %d differs: %d vs %d", i, am[i], bm[i])
		}
	}
	c := tab.Extract(42, 7, 2, 16)
	same := true
	for i, m := range c.Members() {
		if m != am[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("step 1 and step 2 committees are identical; extraction ignores the step")
	}
}

func TestExtractDistinctMembers(t *testing.T) {
	tab := Uniform(64)
	c := tab.Extract(1, 3, 0, 20)
	seen := make(map[int]bool)
	for _, m := range c.Members() {
		if seen[m] {
			t.Fatalf("member %d extracted twice", m)
		}
		seen[m] = true
		if !c.IsMember(m) {
			t.Fatalf("IsMember(%d) = false for an extracted member", m)
		}
	}
	if len(seen) != 20 {
		t.Fatalf("got %d distinct members, want 20", len(seen))
	}
	if c.IsMember(-1) || c.IsMember(64) || c.IsMember(1<<20) {
		t.Fatal("IsMember accepts out-of-range indices")
	}
}

func TestExtractFullCommittee(t *testing.T) {
	tab := Uniform(10)
	for _, size := range []int{0, 10, 50} {
		c := tab.Extract(9, 1, 1, size)
		if c.Size() != 10 {
			t.Fatalf("size %d: committee has %d members, want all 10", size, c.Size())
		}
	}
}

func TestZeroStakeNeverExtracted(t *testing.T) {
	stakes := make([]uint64, 30)
	for i := range stakes {
		if i%3 != 0 {
			stakes[i] = 5
		}
	}
	tab, err := NewTable(stakes)
	if err != nil {
		t.Fatal(err)
	}
	for round := uint64(0); round < 50; round++ {
		c := tab.Extract(7, round, 1, 10)
		for _, m := range c.Members() {
			if stakes[m] == 0 {
				t.Fatalf("round %d: zero-stake member %d extracted", round, m)
			}
		}
	}
	full := tab.Extract(7, 0, 1, 0)
	if full.Size() != 20 {
		t.Fatalf("full committee has %d members, want the 20 staked ones", full.Size())
	}
}

func TestStakeWeighting(t *testing.T) {
	// One whale with half the stake should be seated in nearly every
	// committee; a 1-unit member only occasionally.
	stakes := make([]uint64, 101)
	for i := range stakes {
		stakes[i] = 1
	}
	stakes[0] = 100
	tab, err := NewTable(stakes)
	if err != nil {
		t.Fatal(err)
	}
	whale, minnow := 0, 0
	const rounds = 400
	for round := uint64(0); round < rounds; round++ {
		c := tab.Extract(11, round, 1, 8)
		if c.IsMember(0) {
			whale++
		}
		if c.IsMember(1) {
			minnow++
		}
	}
	if whale < rounds*3/4 {
		t.Fatalf("whale seated %d/%d times; want > 3/4", whale, rounds)
	}
	if minnow >= whale/2 {
		t.Fatalf("minnow seated %d times vs whale %d; weighting looks broken", minnow, whale)
	}
}

func TestFenwickMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		stakes := make([]uint64, n)
		var total uint64
		for i := range stakes {
			stakes[i] = uint64(rng.Intn(10))
			total += stakes[i]
		}
		if total == 0 {
			stakes[0], total = 1, 1
		}
		fen := newFenwick(stakes)
		for probe := 0; probe < 50; probe++ {
			target := uint64(rng.Int63n(int64(total)))
			got := fen.find(target)
			want, cum := -1, uint64(0)
			for i, s := range stakes {
				cum += s
				if target < cum {
					want = i
					break
				}
			}
			if got != want {
				t.Fatalf("trial %d: find(%d) = %d, want %d (stakes %v)", trial, target, got, want, stakes)
			}
		}
	}
}

func TestQuorumThresholds(t *testing.T) {
	if got := Quorum(10, 2); got != 8 {
		t.Fatalf("Quorum(10,2) = %d, want 8", got)
	}
	c := Uniform(100).Extract(1, 1, 1, 30)
	if got := c.Quorum(); got != 21 {
		t.Fatalf("committee quorum = %d, want 21", got)
	}
	if got := c.Evidence(); got != 11 {
		t.Fatalf("committee evidence threshold = %d, want 11", got)
	}
}

func TestScheduleMemoizes(t *testing.T) {
	sched := NewSchedule(Uniform(50), 42, 12)
	a := sched.Committee(3, 1)
	if b := sched.Committee(3, 1); a != b {
		t.Fatal("second ask for the same (round, step) missed the cache")
	}
	// Push the entry out of the window; the recomputed committee must be
	// equal even though the pointer changes.
	for r := uint64(100); r < 100+scheduleWindow+8; r++ {
		sched.Committee(r, 1)
	}
	c := sched.Committee(3, 1)
	am, cm := a.Members(), c.Members()
	if len(am) != len(cm) {
		t.Fatalf("recomputed committee size %d != %d", len(cm), len(am))
	}
	for i := range am {
		if am[i] != cm[i] {
			t.Fatalf("recomputed committee differs at seat %d", i)
		}
	}
}

func TestNewTableRejectsBadStakes(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Fatal("nil stake table accepted")
	}
	if _, err := NewTable([]uint64{0, 0}); err == nil {
		t.Fatal("all-zero stake table accepted")
	}
	if _, err := NewTable([]uint64{1 << 63, 1}); err == nil {
		t.Fatal("overflowing stake accepted")
	}
}
