// Package committee implements stake-weighted deterministic sortition: the
// reduction step that makes Algorand-style rounds O(committee) instead of
// O(n). A Table holds the provisioner stake distribution; Extract draws a
// per-(round, step) committee by recursively hashing a public seed with the
// round/step/seat coordinates and mapping each hash onto the cumulative
// stake line (the dusk-blockchain committee/extractor design, SNIPPETS.md).
//
// Extraction is a pure function of (seed, stakes, round, step, size): no
// scheduler RNG stream is consumed, so committee membership is identical
// across runs, worker counts, and fork/replay — the determinism invariant
// the seed-42 goldens pin. A Schedule memoizes extractions so the n
// validators of one run share a single committee computation per step.
package committee

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// Table is an immutable stake distribution over members 0..n-1. Member i
// owns Stakes[i] units of the cumulative stake line; members with zero
// stake are never extracted.
type Table struct {
	stakes []uint64
	total  uint64
}

// NewTable builds a stake table. A nil or empty stakes slice of length n is
// invalid; use Uniform for the common equal-stake case.
func NewTable(stakes []uint64) (*Table, error) {
	if len(stakes) == 0 {
		return nil, fmt.Errorf("committee: empty stake table")
	}
	t := &Table{stakes: append([]uint64(nil), stakes...)}
	for i, s := range stakes {
		if s > (1<<62)/uint64(len(stakes)) {
			return nil, fmt.Errorf("committee: stake %d of member %d overflows the stake line", s, i)
		}
		t.total += s
	}
	if t.total == 0 {
		return nil, fmt.Errorf("committee: all stakes are zero")
	}
	return t, nil
}

// Uniform builds the equal-stake table over n members: every member owns
// one unit, so sortition reduces to uniform sampling without replacement.
func Uniform(n int) *Table {
	stakes := make([]uint64, n)
	for i := range stakes {
		stakes[i] = 1
	}
	t, err := NewTable(stakes)
	if err != nil {
		panic(err) // n <= 0 is a caller bug
	}
	return t
}

// Size returns the number of members in the table.
func (t *Table) Size() int { return len(t.stakes) }

// TotalStake returns the summed stake of all members.
func (t *Table) TotalStake() uint64 { return t.total }

// Committee is one extracted committee: an immutable membership set over
// the table's members. Membership checks are O(1); Members returns the
// sorted member list so iteration order is deterministic.
type Committee struct {
	members []int // sorted ascending
	order   []int // extraction (seat/priority) order
	bits    []uint64
}

// IsMember reports whether table member i sits on this committee.
func (c *Committee) IsMember(i int) bool {
	if i < 0 || i>>6 >= len(c.bits) {
		return false
	}
	return c.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Members returns the committee's members in ascending order. The slice is
// shared; callers must not mutate it.
func (c *Committee) Members() []int { return c.members }

// Order returns the members in extraction order: seat 0 holds the highest
// sortition priority. Proposer selection ranks candidates by seat. The
// slice is shared; callers must not mutate it.
func (c *Committee) Order() []int { return c.order }

// Rank returns member i's seat in the extraction order, or -1 when i is
// not on the committee.
func (c *Committee) Rank(i int) int {
	if !c.IsMember(i) {
		return -1
	}
	for seat, m := range c.order {
		if m == i {
			return seat
		}
	}
	return -1
}

// Size returns the number of committee members.
func (c *Committee) Size() int { return len(c.members) }

// Quorum returns the vote threshold for this committee: floor(2s/3)+1 of
// its s seats. With up to one fifth of total stake crashed (the paper's
// fault envelope) an extracted committee still clears this bar, while two
// disjoint quorums always intersect in at least one honest member.
func (c *Committee) Quorum() int { return 2*len(c.members)/3 + 1 }

// Evidence returns the smaller threshold at which observing committee
// members ahead of the local step is proof the local node fell behind:
// floor(s/3)+1 seats cannot all be faulty under the tolerance envelope.
func (c *Committee) Evidence() int { return len(c.members)/3 + 1 }

// Quorum is the full-membership vote threshold used when sortition is off:
// n members tolerating t failures need n-t matching votes. Routing the
// chains' quorum arithmetic through this helper keeps the committee and
// full-mesh code paths comparable side by side.
func Quorum(n, t int) int { return n - t }

// Extract draws the (round, step) committee of the given size from the
// table. Seats are extracted one at a time: seat k's hash is mapped onto
// the cumulative stake line with already-seated members removed, so the
// committee holds `size` distinct members (or every staked member, when
// size reaches the table). Extraction is pure — same inputs, same
// committee — and costs O(size * log n) via a Fenwick tree over stakes.
func (t *Table) Extract(seed uint64, round uint64, step uint8, size int) *Committee {
	n := len(t.stakes)
	if size <= 0 || size >= n {
		return t.everyone()
	}
	fen := newFenwick(t.stakes)
	remaining := t.total
	members := make([]int, 0, size)
	var buf [21]byte
	binary.BigEndian.PutUint64(buf[0:8], seed)
	binary.BigEndian.PutUint64(buf[8:16], round)
	buf[16] = step
	for seat := 0; seat < size && remaining > 0; seat++ {
		binary.BigEndian.PutUint32(buf[17:21], uint32(seat))
		sum := sha256.Sum256(buf[:])
		target := binary.BigEndian.Uint64(sum[:8]) % remaining
		member := fen.find(target)
		stake := t.stakes[member]
		fen.add(member, -int64(stake))
		remaining -= stake
		members = append(members, member)
	}
	return newCommittee(n, members)
}

func (t *Table) everyone() *Committee {
	members := make([]int, 0, len(t.stakes))
	for i, s := range t.stakes {
		if s > 0 {
			members = append(members, i)
		}
	}
	return newCommittee(len(t.stakes), members)
}

func newCommittee(n int, members []int) *Committee {
	c := &Committee{order: members, bits: make([]uint64, (n+63)/64)}
	for _, m := range members {
		c.bits[m>>6] |= 1 << (uint(m) & 63)
	}
	// Recover ascending order from the bitset instead of sorting: the
	// extraction order is part of the hash stream, not the public API.
	c.members = make([]int, 0, len(members))
	for w, word := range c.bits {
		for word != 0 {
			c.members = append(c.members, w<<6+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return c
}

// fenwick is a binary indexed tree over member stakes supporting point
// updates and "find the member owning stake unit k" in O(log n).
type fenwick struct {
	tree []int64 // 1-indexed
}

func newFenwick(stakes []uint64) *fenwick {
	f := &fenwick{tree: make([]int64, len(stakes)+1)}
	for i, s := range stakes {
		f.tree[i+1] += int64(s)
		if j := i + 1 + ((i + 1) & -(i + 1)); j < len(f.tree) {
			f.tree[j] += f.tree[i+1]
		}
	}
	return f
}

func (f *fenwick) add(i int, delta int64) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += delta
	}
}

// find returns the smallest member index whose cumulative stake prefix
// exceeds target (i.e. the owner of stake unit `target` on the remaining
// stake line).
func (f *fenwick) find(target uint64) int {
	idx := 0
	rem := int64(target)
	half := 1
	for half<<1 < len(f.tree) {
		half <<= 1
	}
	for ; half > 0; half >>= 1 {
		if next := idx + half; next < len(f.tree) && f.tree[next] <= rem {
			idx = next
			rem -= f.tree[next]
		}
	}
	return idx // 0-indexed member
}

// Schedule memoizes committee extraction for one run: all validators share
// the same (round, step) committees, so the first asker pays the O(size
// log n) extraction and the rest hit the cache. The mutex makes the cache
// safe to share across campaign workers running separate experiments off
// one system instance; extraction itself is pure, so cache hits and misses
// return identical committees regardless of interleaving.
type Schedule struct {
	table *Table
	seed  uint64
	size  int

	mu    sync.Mutex
	cache map[scheduleKey]*Committee
	order []scheduleKey // FIFO eviction so long runs stay bounded
}

type scheduleKey struct {
	round uint64
	step  uint8
}

// scheduleWindow bounds the memo: a round needs at most a handful of live
// steps, and rounds older than the slowest straggler are never re-asked.
const scheduleWindow = 256

// NewSchedule builds the shared extraction cache for one deployment.
func NewSchedule(table *Table, seed uint64, size int) *Schedule {
	return &Schedule{table: table, seed: seed, size: size, cache: make(map[scheduleKey]*Committee)}
}

// Size returns the configured committee size.
func (s *Schedule) Size() int { return s.size }

// Committee returns the memoized (round, step) committee.
func (s *Schedule) Committee(round uint64, step uint8) *Committee {
	key := scheduleKey{round: round, step: step}
	s.mu.Lock()         //stabl:nodet goroutine-purity -- cross-run memoization: the schedule is shared by suite workers, never by nodes of one run
	defer s.mu.Unlock() //stabl:nodet goroutine-purity -- see above; extraction is pure, cache hits and misses yield identical committees
	if c, ok := s.cache[key]; ok {
		return c
	}
	c := s.table.Extract(s.seed, round, step, s.size)
	s.cache[key] = c
	s.order = append(s.order, key)
	if len(s.order) > scheduleWindow {
		delete(s.cache, s.order[0])
		s.order = s.order[1:]
	}
	return c
}
