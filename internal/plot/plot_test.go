package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func mustParse(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
		}
	}
}

func TestChartSVGWellFormed(t *testing.T) {
	c := Chart{
		Title:  "throughput <baseline> & \"altered\"",
		XLabel: "time (s)",
		YLabel: "tx/s",
		Series: []Series{
			{Name: "baseline", Points: []Point{{0, 100}, {10, 200}, {20, 150}}},
			{Name: "altered", Points: []Point{{0, 100}, {10, 0}, {20, 50}}, Dashed: true},
		},
		VLines: []VLine{{X: 10, Label: "crash"}},
	}
	svg := c.SVG()
	mustParse(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Fatal("no polylines rendered")
	}
	if strings.Count(svg, "polyline") != 2 {
		t.Fatalf("polyline count = %d", strings.Count(svg, "polyline"))
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Fatal("dashed series not dashed")
	}
	if !strings.Contains(svg, "&lt;baseline&gt;") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "crash") {
		t.Fatal("vline label missing")
	}
}

func TestChartEmptySeries(t *testing.T) {
	mustParse(t, Chart{Title: "empty"}.SVG())
}

func TestChartYMaxClampsPoints(t *testing.T) {
	c := Chart{
		YMax:   10,
		Series: []Series{{Name: "spike", Points: []Point{{0, 5}, {1, 1000}}}},
	}
	svg := c.SVG()
	mustParse(t, svg)
	// The spike must be clamped to the plot area: the y coordinate of the
	// clamped point equals the top margin.
	if !strings.Contains(svg, "34.0") {
		t.Fatalf("clamped point not at plot top:\n%s", svg)
	}
}

func TestBarChartSVGWellFormed(t *testing.T) {
	c := BarChart{
		Title:  "Fig 3a",
		YLabel: "sensitivity",
		Bars: []Bar{
			{Label: "Algorand", Value: 6.2},
			{Label: "Avalanche", Value: 8.3, Striped: true},
			{Label: "Solana", Infinite: true},
		},
	}
	svg := c.SVG()
	mustParse(t, svg)
	if strings.Count(svg, "<rect") != 5 { // background + stripe pattern + 3 bars
		t.Fatalf("rect count = %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "url(#stripes)") {
		t.Fatal("striped bar not striped")
	}
	if !strings.Contains(svg, ">inf<") {
		t.Fatal("infinite bar not annotated")
	}
}

func TestBarChartEmpty(t *testing.T) {
	mustParse(t, BarChart{Title: "none"}.SVG())
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		1234:  "1234",
		56:    "56",
		3.25:  "3.2",
		0.125: "0.12",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Fatalf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
