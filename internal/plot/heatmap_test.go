package plot

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapSVGRendersCells(t *testing.T) {
	svg := Heatmap{
		Title:   "Redbelly fault surface",
		XLabel:  "inject time",
		YLabel:  "fault",
		XLabels: []string{"40s", "80s"},
		YLabels: []string{"crash", "slow"},
		Values: [][]float64{
			{1.5, 3.0},
			{math.Inf(1), math.NaN()},
		},
	}.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("not an svg: %q", svg)
	}
	for _, want := range []string{"Redbelly fault surface", "crash", "slow", "40s", "80s", ">inf<", heatInfinite, heatMissing} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// 4 value cells drawn.
	if got := strings.Count(svg, `<rect`) - 1; got != 4 { // minus background
		t.Fatalf("cells = %d, want 4", got)
	}
	// The max finite value saturates to the full ramp color.
	if !strings.Contains(svg, "#d62728") {
		t.Fatal("max cell not saturated")
	}
}

func TestHeatmapSVGEmpty(t *testing.T) {
	svg := Heatmap{Title: "empty"}.SVG()
	if !strings.Contains(svg, "empty") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("svg = %q", svg)
	}
}

func TestHeatCellColorRamp(t *testing.T) {
	fill, label, text := heatCell(0, 10)
	if fill != "#ffffff" || label != "0.00" || text != "black" {
		t.Fatalf("zero cell = %s %s %s", fill, label, text)
	}
	fill, _, text = heatCell(10, 10)
	if fill != "#d62728" || text != "white" {
		t.Fatalf("max cell = %s %s", fill, text)
	}
}
