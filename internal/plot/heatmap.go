package plot

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap is a labelled grid chart, used for campaign sensitivity surfaces
// (fault kind × inject time, one panel per system). Finite values shade
// from white to the ramp color by magnitude; +Inf cells (liveness lost or
// the model run crashed) render dark red with an "inf" label; NaN cells
// (coordinate never explored) render light gray.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// XLabels name the columns, YLabels the rows.
	XLabels []string
	YLabels []string
	// Values[row][col] aligns with YLabels x XLabels.
	Values [][]float64
	Width  int
	Height int
}

const (
	heatRampR, heatRampG, heatRampB = 0xd6, 0x27, 0x28 // #d62728, the palette red
	heatInfinite                    = "#67000d"
	heatMissing                     = "#eeeeee"
)

// SVG renders the heatmap.
func (h Heatmap) SVG() string {
	w, hgt := h.Width, h.Height
	if w <= 0 {
		w = 640
	}
	if hgt <= 0 {
		hgt = 80 + 40*len(h.YLabels)
	}
	cols, rows := len(h.XLabels), len(h.YLabels)
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(hgt - marginTop - marginBottom)

	max := 0.0
	for _, row := range h.Values {
		for _, v := range row {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, hgt, w, hgt)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`,
		marginLeft, escape(h.Title))
	if cols == 0 || rows == 0 {
		b.WriteString(`</svg>`)
		return b.String()
	}

	cellW := plotW / float64(cols)
	cellH := plotH / float64(rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := math.NaN()
			if i < len(h.Values) && j < len(h.Values[i]) {
				v = h.Values[i][j]
			}
			x := float64(marginLeft) + cellW*float64(j)
			y := float64(marginTop) + cellH*float64(i)
			fill, label, text := heatCell(v, max)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="white" stroke-width="1"/>`,
				x, y, cellW, cellH, fill)
			if label != "" {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle" fill="%s">%s</text>`,
					x+cellW/2, y+cellH/2+3, text, label)
			}
		}
	}
	// Row and column labels.
	for i, label := range h.YLabels {
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			marginLeft-6, float64(marginTop)+cellH*(float64(i)+0.5)+3, escape(label))
	}
	for j, label := range h.XLabels {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			float64(marginLeft)+cellW*(float64(j)+0.5), hgt-marginBottom+14, escape(label))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`,
		float64(marginLeft)+plotW/2, hgt-8, escape(h.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(h.YLabel))
	b.WriteString(`</svg>`)
	return b.String()
}

// heatCell maps one value to its fill color, annotation and text color.
func heatCell(v, max float64) (fill, label, text string) {
	switch {
	case math.IsNaN(v):
		return heatMissing, "", ""
	case math.IsInf(v, 1):
		return heatInfinite, "inf", "white"
	default:
		frac := v / max
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		r := 0xff + int(frac*float64(heatRampR-0xff))
		g := 0xff + int(frac*float64(heatRampG-0xff))
		bl := 0xff + int(frac*float64(heatRampB-0xff))
		text = "black"
		if frac > 0.6 {
			text = "white"
		}
		return fmt.Sprintf("#%02x%02x%02x", r, g, bl), formatTick(v), text
	}
}
