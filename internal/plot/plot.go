// Package plot renders STABL figures as standalone SVG documents using only
// the standard library: step/line charts for eCDFs and throughput series,
// bar charts for sensitivity scores, and event-marker lanes for run
// timelines. The output is deliberately plain — axes, ticks, a legend —
// matching what the paper's figures need.
//
// Rendering is a pure function of the chart value: no randomness, no map
// iteration, no clock reads, so the same chart always yields the same
// bytes. Chart values are plain data and safe to build concurrently; a
// single Chart must not be mutated while SVG runs.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named line on a chart.
type Series struct {
	Name   string
	Points []Point
	// Color is a CSS color; chosen from a default palette when empty.
	Color string
	// Dashed draws the line dashed (used for altered runs).
	Dashed bool
}

// Chart is a line/step chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
	// VLines draws vertical markers (fault injection/recovery instants).
	VLines []VLine
	// Lanes draws rows of instant event markers above the plot area
	// (timeline annotations: leader changes, timeouts, crashes). Lanes
	// share the x-axis with the series.
	Lanes []Lane
	// YMax forces the y-axis ceiling; zero auto-scales.
	YMax float64
}

// Lane is one row of instant markers on a timeline chart.
type Lane struct {
	Name  string
	Color string
	// Xs are the marker positions in x-axis units.
	Xs []float64
}

// VLine is a labelled vertical marker.
type VLine struct {
	X     float64
	Label string
	Color string
}

var defaultPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

const (
	marginLeft   = 60
	marginRight  = 20
	marginTop    = 34
	marginBottom = 46
)

// SVG renders the chart.
func (c Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 360
	}
	const laneHeight = 14
	top := marginTop + laneHeight*len(c.Lanes)
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - top - marginBottom)

	xMin, xMax, yMax := c.bounds()
	if c.YMax > 0 {
		yMax = c.YMax
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= 0 {
		yMax = 1
	}
	px := func(x float64) float64 { return float64(marginLeft) + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return float64(top) + (1-y/yMax)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`,
		marginLeft, escape(c.Title))

	// Event lanes between the title and the plot area.
	for i, lane := range c.Lanes {
		color := lane.Color
		if color == "" {
			color = defaultPalette[i%len(defaultPalette)]
		}
		cy := marginTop + laneHeight*i + laneHeight/2
		fmt.Fprintf(&b, `<text x="2" y="%d" font-family="sans-serif" font-size="9" fill="%s">%s</text>`,
			cy+3, color, escape(lane.Name))
		for _, x := range lane.Xs {
			if x < xMin || x > xMax {
				continue
			}
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1.2"/>`,
				px(x), cy-5, px(x), cy+5, color)
		}
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginLeft, top, marginLeft, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	// Ticks.
	for i := 0; i <= 4; i++ {
		xv := xMin + (xMax-xMin)*float64(i)/4
		yv := yMax * float64(i) / 4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			px(xv), h-marginBottom+14, formatTick(xv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`,
			marginLeft-6, py(yv)+3, formatTick(yv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			marginLeft, py(yv), w-marginRight, py(yv))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`,
		float64(marginLeft)+plotW/2, h-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
		float64(top)+plotH/2, float64(top)+plotH/2, escape(c.YLabel))

	// Vertical markers.
	for _, vl := range c.VLines {
		color := vl.Color
		if color == "" {
			color = "#d62728"
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-dasharray="4 3"/>`,
			px(vl.X), top, px(vl.X), h-marginBottom, color)
		if vl.Label != "" {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" fill="%s">%s</text>`,
				px(vl.X)+3, top+10, color, escape(vl.Label))
		}
	}

	// Series.
	for i, s := range c.Series {
		color := s.Color
		if color == "" {
			color = defaultPalette[i%len(defaultPalette)]
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6 3"`
		}
		var pts strings.Builder
		for _, p := range s.Points {
			y := p.Y
			if y > yMax {
				y = yMax
			}
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(p.X), py(y))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5"%s points="%s"/>`,
			color, dash, strings.TrimSpace(pts.String()))
		// Legend entry.
		lx := w - marginRight - 150
		ly := top + 14*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`,
			lx, ly, lx+18, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`,
			lx+24, ly+3, escape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func (c Chart) bounds() (xMin, xMax, yMax float64) {
	xMin = math.Inf(1)
	xMax = math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			if p.X < xMin {
				xMin = p.X
			}
			if p.X > xMax {
				xMax = p.X
			}
			if p.Y > yMax {
				yMax = p.Y
			}
		}
	}
	for _, vl := range c.VLines {
		if vl.X < xMin {
			xMin = vl.X
		}
		if vl.X > xMax {
			xMax = vl.X
		}
	}
	for _, lane := range c.Lanes {
		for _, x := range lane.Xs {
			if x < xMin {
				xMin = x
			}
			if x > xMax {
				xMax = x
			}
		}
	}
	if math.IsInf(xMin, 1) {
		xMin, xMax = 0, 1
	}
	return xMin, xMax, yMax
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
	// Infinite renders the bar at full height with an "inf" cap.
	Infinite bool
	// Striped marks benefit bars (the altered environment helped).
	Striped bool
}

// BarChart is a vertical bar chart, used for the Fig 3 sensitivity panels.
type BarChart struct {
	Title  string
	YLabel string
	Width  int
	Height int
	Bars   []Bar
}

// SVG renders the bar chart.
func (c BarChart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 480
	}
	if h <= 0 {
		h = 320
	}
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	yMax := 1.0
	for _, bar := range c.Bars {
		if !bar.Infinite && bar.Value > yMax {
			yMax = bar.Value
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	b.WriteString(`<defs><pattern id="stripes" width="6" height="6" patternUnits="userSpaceOnUse" patternTransform="rotate(45)"><rect width="6" height="6" fill="#2ca02c"/><line x1="0" y1="0" x2="0" y2="6" stroke="white" stroke-width="3"/></pattern></defs>`)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`,
		marginLeft, escape(c.Title))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(c.YLabel))

	n := len(c.Bars)
	if n == 0 {
		b.WriteString(`</svg>`)
		return b.String()
	}
	slot := plotW / float64(n)
	barW := slot * 0.6
	for i, bar := range c.Bars {
		x := float64(marginLeft) + slot*float64(i) + (slot-barW)/2
		value := bar.Value
		capped := ""
		if bar.Infinite {
			value = yMax
			capped = "inf"
		}
		barH := value / yMax * plotH
		fill := "#1f77b4"
		if bar.Striped {
			fill = "url(#stripes)"
		}
		if bar.Infinite {
			fill = "#d62728"
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="black" stroke-width="0.5"/>`,
			x, float64(h-marginBottom)-barH, barW, barH, fill)
		label := bar.Label
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			x+barW/2, h-marginBottom+14, escape(label))
		annot := formatTick(bar.Value)
		if capped != "" {
			annot = capped
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			x+barW/2, float64(h-marginBottom)-barH-4, annot)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
