package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Builtins returns the names of the canned scenarios, sorted.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Builtin returns a canned scenario spec laid out over a run of the given
// total duration: the timeline instants are fixed fractions of the run, so
// the same scenario shape works for the paper's 400 s experiments and for
// short CI runs alike.
func Builtin(name string, duration time.Duration) (Spec, error) {
	build, ok := builtins[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown builtin %q (have %v)", name, Builtins())
	}
	if duration <= 0 {
		duration = 400 * time.Second
	}
	return build(duration.Seconds()), nil
}

var builtins = map[string]func(d float64) Spec{
	// cascade models a cascading outage: one node dies, then two more,
	// then another, and operators only bring the fleet back much later.
	// Fault mass accumulates instead of arriving in the single step the
	// paper's transient fault injects.
	"cascade": func(d float64) Spec {
		return Spec{
			Name:        "cascade",
			Description: "cascading crashes: 1, then 2, then 1 more node die in waves and all reboot together",
			Actions: []ActionSpec{
				{Op: "crash", AtSec: frac(d, 0.25), Nodes: "random(1)", UntilSec: frac(d, 0.70)},
				{Op: "crash", AtSec: frac(d, 0.35), Nodes: "random(2)", UntilSec: frac(d, 0.70)},
				{Op: "crash", AtSec: frac(d, 0.45), Nodes: "random(1)", UntilSec: frac(d, 0.70)},
			},
		}
	},
	// flap models a flapping trunk link: a partition that repeatedly
	// installs and heals, the pattern BGP route flapping or a failing
	// switch port produces. Sustained-outage recovery logic (reconnect
	// backoff, view changes) is re-triggered on every cycle.
	"flap": func(d float64) Spec {
		return Spec{
			Name:        "flap",
			Description: "flapping partition: 4 nodes repeatedly cut off and reconnected",
			Actions: []ActionSpec{
				{Op: "flap", AtSec: frac(d, 0.30), Nodes: "random(4)", UntilSec: frac(d, 0.70), PeriodSec: frac(d, 0.10)},
			},
		}
	},
	// lossy-wan models a degraded wide-area network: every interface
	// drops a few percent of packets and adds seconds of jitter, without
	// any node ever failing. The paper's fault model cannot express this
	// at all — no process dies and no link is fully cut.
	"lossy-wan": func(d float64) Spec {
		return Spec{
			Name:        "lossy-wan",
			Description: "lossy, jittery WAN: 3% loss and ±2s jitter on every interface for half the run",
			Actions: []ActionSpec{
				{Op: "loss", AtSec: frac(d, 0.25), Nodes: "all", Rate: 0.03, UntilSec: frac(d, 0.75)},
				{Op: "jitter", AtSec: frac(d, 0.25), Nodes: "all", JitterSec: 2, UntilSec: frac(d, 0.75)},
			},
		}
	},
	// eclipse models an eclipse attack on the gossip overlay: victims stay
	// up and nominally connected, but every overlay path they relay on is
	// severed mid-run. On mesh deployments it degrades to full isolation.
	"eclipse": func(d float64) Spec {
		return Spec{
			Name:        "eclipse",
			Description: "overlay eclipse: 2 nodes severed from their gossip neighbors for half the run",
			Actions: []ActionSpec{
				{Op: "eclipse", AtSec: frac(d, 0.30), Nodes: "random(2)", UntilSec: frac(d, 0.70)},
			},
		}
	},
	// rolling-restart models a maintenance rollout: the client-free
	// validators reboot in pairs, each pair down for one stagger window.
	"rolling-restart": func(d float64) Spec {
		return Spec{
			Name:        "rolling-restart",
			Description: "maintenance rollout: client-free validators restart in pairs, one pair per window",
			Actions: []ActionSpec{
				{Op: "crash", AtSec: frac(d, 0.30), Nodes: fmt.Sprintf("rolling(2, %g)", frac(d, 0.10))},
			},
		}
	},
}

// frac returns f·d, rounded to a whole second on experiment-scale runs to
// keep generated spec files and phase labels readable. Short smoke runs
// keep the exact fraction — rounding there would collapse distinct
// timeline instants onto each other.
func frac(d, f float64) float64 {
	v := d * f
	if d < 60 {
		return v
	}
	return float64(int(v + 0.5))
}
