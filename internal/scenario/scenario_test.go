package scenario

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// testEnv is a 10-validator deployment with 5 client-serving validators, the
// shape of the paper's default runs. The RNG derivation mirrors core.Run's:
// named streams off a throwaway scheduler.
func testEnv(seed int64) Env {
	sched := sim.New(seed)
	return Env{
		Validators: 10,
		Clients:    5,
		RNG:        func(name string) *rand.Rand { return sched.RNG("scenario/" + name) },
	}
}

func TestParseNodeSetRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // String() form ("" = same as in)
	}{
		{"all", ""},
		{"3", ""},
		{"7,8,9", ""},
		{" 9 , 7 ", "7,9"}, // ids are sorted and trimmed
		{"random(4)", ""},
		{"rolling(2, 30)", ""},
		{"rolling(2, 30s)", "rolling(2, 30)"},
	}
	for _, c := range cases {
		ns, err := ParseNodeSet(c.in)
		if err != nil {
			t.Errorf("ParseNodeSet(%q): %v", c.in, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.in
		}
		if got := ns.String(); got != want {
			t.Errorf("ParseNodeSet(%q).String() = %q, want %q", c.in, got, want)
		}
		// The rendered form must parse back to an identical selector.
		back, err := ParseNodeSet(ns.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", ns.String(), err)
		} else if !reflect.DeepEqual(ns, back) {
			t.Errorf("round-trip of %q changed the selector: %#v vs %#v", c.in, ns, back)
		}
	}
}

func TestParseNodeSetErrors(t *testing.T) {
	for _, in := range []string{
		"", "none", "random(0)", "random(x)", "rolling(2)", "rolling(0, 30)",
		"rolling(2, -5)", "1,2,2", "-3", "1,x",
	} {
		if _, err := ParseNodeSet(in); err == nil {
			t.Errorf("ParseNodeSet(%q): want error, got none", in)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	valid := func() Spec {
		return Spec{Name: "t", Actions: []ActionSpec{
			{Op: "crash", AtSec: 10, Nodes: "5", UntilSec: 20},
		}}
	}
	if _, err := valid().Build(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*Spec)
		errPart string
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"no actions", func(s *Spec) { s.Actions = nil }, "at least one action"},
		{"unknown op", func(s *Spec) { s.Actions[0].Op = "melt" }, "unknown op"},
		{"negative at", func(s *Spec) { s.Actions[0].AtSec = -1 }, "non-negative"},
		{"until before at", func(s *Spec) { s.Actions[0].UntilSec = 5 }, "must exceed"},
		{"rate on crash", func(s *Spec) { s.Actions[0].Rate = 0.1 }, "only applies to op loss"},
		{"delay on crash", func(s *Spec) { s.Actions[0].DelaySec = 1 }, "only applies to op slow"},
		{"jitter on crash", func(s *Spec) { s.Actions[0].JitterSec = 1 }, "only applies to op jitter"},
		{"period on crash", func(s *Spec) { s.Actions[0].PeriodSec = 4 }, "only apply to op flap"},
		{"loss rate over 1", func(s *Spec) {
			s.Actions[0] = ActionSpec{Op: "loss", AtSec: 10, Nodes: "all", Rate: 1.5}
		}, "rate must be in (0, 1]"},
		{"slow without delay", func(s *Spec) {
			s.Actions[0] = ActionSpec{Op: "slow", AtSec: 10, Nodes: "all"}
		}, "positive delaySec"},
		{"jitter without bound", func(s *Spec) {
			s.Actions[0] = ActionSpec{Op: "jitter", AtSec: 10, Nodes: "all"}
		}, "positive jitterSec"},
		{"restart with until", func(s *Spec) {
			s.Actions[0] = ActionSpec{Op: "restart", AtSec: 10, Nodes: "5", UntilSec: 20}
		}, "untilSec does not apply"},
		{"heal on rolling set", func(s *Spec) {
			s.Actions[0] = ActionSpec{Op: "heal", AtSec: 10, Nodes: "rolling(2, 10)"}
		}, "rolling node sets do not apply"},
		{"flap without until", func(s *Spec) {
			s.Actions[0] = ActionSpec{Op: "flap", AtSec: 10, Nodes: "5", PeriodSec: 4}
		}, "untilSec"},
		{"flap without duty cycle", func(s *Spec) {
			s.Actions[0] = ActionSpec{Op: "flap", AtSec: 10, Nodes: "5", UntilSec: 30}
		}, "periodSec"},
	}
	for _, c := range cases {
		spec := valid()
		c.mutate(&spec)
		_, err := spec.Build()
		if err == nil {
			t.Errorf("%s: want error, got none", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errPart)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(
		`{"name": "x", "actions": [{"op": "crash", "atSec": 1, "nodes": "2", "untliSec": 9}]}`))
	if err == nil {
		t.Fatal("typo'd field accepted")
	}
	if !strings.Contains(err.Error(), "untliSec") {
		t.Fatalf("error %q does not name the unknown field", err)
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec := Spec{Name: "d", Actions: []ActionSpec{
		{Op: "crash", AtSec: 30, Nodes: "random(2)", UntilSec: 60},
		{Op: "loss", AtSec: 40, Nodes: "random(3)", Rate: 0.1, UntilSec: 70},
	}}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Compile(testEnv(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Compile(testEnv(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed compiled differently:\n%#v\n%#v", a, b)
	}
	c, err := sc.Compile(testEnv(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Affected, c.Affected) {
		t.Logf("note: seeds 7 and 8 picked the same nodes %v (possible but unlikely)", a.Affected)
	}
	// random(k) draws only from the client-free pool [Clients, Validators).
	for _, id := range a.Affected {
		if int(id) < 5 || int(id) >= 10 {
			t.Errorf("random selector picked node %v outside the client-free pool", id)
		}
	}
}

func TestCompileCrashRevertAndInstants(t *testing.T) {
	spec := Spec{Name: "c", Actions: []ActionSpec{
		{Op: "crash", AtSec: 30, Nodes: "6,7", UntilSec: 80},
	}}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sc.Compile(testEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Script) != 2 {
		t.Fatalf("script has %d actions, want crash+restart", len(cp.Script))
	}
	if got := cp.Script[0].Kill; !reflect.DeepEqual(got, []simnet.NodeID{6, 7}) {
		t.Errorf("kill set = %v", got)
	}
	if got := cp.Script[1].Reboot; !reflect.DeepEqual(got, []simnet.NodeID{6, 7}) {
		t.Errorf("reboot set = %v", got)
	}
	if cp.FirstDisrupt != 30*time.Second || cp.LastRevert != 80*time.Second {
		t.Errorf("instants = %v/%v, want 30s/80s", cp.FirstDisrupt, cp.LastRevert)
	}
	if !reflect.DeepEqual(cp.Affected, []simnet.NodeID{6, 7}) {
		t.Errorf("affected = %v", cp.Affected)
	}
	if cp.Phases[0].Label != "crash n6,n7" {
		t.Errorf("phase label = %q", cp.Phases[0].Label)
	}
}

func TestCompileFlapExpansion(t *testing.T) {
	spec := Spec{Name: "f", Actions: []ActionSpec{
		{Op: "flap", AtSec: 10, Nodes: "5", UntilSec: 30, PeriodSec: 10},
	}}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sc.Compile(testEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	// Period 10 over [10s, 30s): cycles at 10 and 20, each a partition at t
	// and a heal at t+5.
	wantAt := []time.Duration{10 * time.Second, 15 * time.Second, 20 * time.Second, 25 * time.Second}
	if len(cp.Script) != len(wantAt) {
		t.Fatalf("flap expanded to %d steps, want %d: %v", len(cp.Script), len(wantAt), cp.Phases)
	}
	for i, act := range cp.Script {
		if act.At != wantAt[i] {
			t.Errorf("step %d at %v, want %v", i, act.At, wantAt[i])
		}
		if i%2 == 0 {
			if len(act.PartitionA) != 1 || len(act.PartitionB) != 9 {
				t.Errorf("step %d: partition %v vs %v", i, act.PartitionA, act.PartitionB)
			}
		} else if len(act.Heal) != 1 {
			t.Errorf("step %d: heal = %v", i, act.Heal)
		}
	}
	if cp.LastRevert != 25*time.Second {
		t.Errorf("last revert = %v, want 25s", cp.LastRevert)
	}
}

func TestCompileRollingExpansion(t *testing.T) {
	spec := Spec{Name: "r", Actions: []ActionSpec{
		{Op: "crash", AtSec: 20, Nodes: "rolling(2, 10)"},
	}}
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sc.Compile(testEnv(1))
	if err != nil {
		t.Fatal(err)
	}
	// Pool is nodes 5..9: groups {5,6}, {7,8}, {9}, staggered 10 s apart,
	// each down for one stagger interval (untilSec unset).
	type window struct {
		kill   time.Duration
		reboot time.Duration
		nodes  []simnet.NodeID
	}
	want := []window{
		{20 * time.Second, 30 * time.Second, []simnet.NodeID{5, 6}},
		{30 * time.Second, 40 * time.Second, []simnet.NodeID{7, 8}},
		{40 * time.Second, 50 * time.Second, []simnet.NodeID{9}},
	}
	var kills, reboots int
	for _, act := range cp.Script {
		if len(act.Kill) > 0 {
			if kills >= len(want) || act.At != want[kills].kill || !reflect.DeepEqual(act.Kill, want[kills].nodes) {
				t.Errorf("kill %d: %v at %v", kills, act.Kill, act.At)
			}
			kills++
		}
		if len(act.Reboot) > 0 {
			if reboots >= len(want) || act.At != want[reboots].reboot || !reflect.DeepEqual(act.Reboot, want[reboots].nodes) {
				t.Errorf("reboot %d: %v at %v", reboots, act.Reboot, act.At)
			}
			reboots++
		}
	}
	if kills != 3 || reboots != 3 {
		t.Fatalf("kills/reboots = %d/%d, want 3/3", kills, reboots)
	}
}

func TestCompileRangeErrors(t *testing.T) {
	cases := []ActionSpec{
		{Op: "crash", AtSec: 10, Nodes: "12"},        // beyond validators
		{Op: "crash", AtSec: 10, Nodes: "random(6)"}, // pool has only 5
	}
	for _, as := range cases {
		sc, err := (Spec{Name: "x", Actions: []ActionSpec{as}}).Build()
		if err != nil {
			t.Fatalf("%v: build: %v", as, err)
		}
		if _, err := sc.Compile(testEnv(1)); err == nil {
			t.Errorf("%v: compile accepted an out-of-range selector", as)
		}
	}
}

func TestScaled(t *testing.T) {
	spec := Spec{Name: "s", Actions: []ActionSpec{
		{Op: "loss", AtSec: 10, Nodes: "all", Rate: 0.4, UntilSec: 20},
		{Op: "slow", AtSec: 10, Nodes: "all", DelaySec: 2, UntilSec: 20},
		{Op: "jitter", AtSec: 10, Nodes: "all", JitterSec: 1, UntilSec: 20},
	}}
	up := spec.Scaled(3)
	if got := up.Actions[0].Rate; got != 1 {
		t.Errorf("rate scaled to %g, want capped at 1", got)
	}
	if got := up.Actions[1].DelaySec; got != 6 {
		t.Errorf("delay scaled to %g, want 6", got)
	}
	if got := up.Actions[2].JitterSec; got != 3 {
		t.Errorf("jitter scaled to %g, want 3", got)
	}
	// Scaling must not mutate the original or touch the timeline.
	if spec.Actions[0].Rate != 0.4 {
		t.Error("Scaled mutated the receiver")
	}
	if up.Actions[0].AtSec != 10 || up.Actions[0].UntilSec != 20 {
		t.Error("Scaled moved timeline instants")
	}
	down := spec.Scaled(0.5)
	if got := down.Actions[0].Rate; got != 0.2 {
		t.Errorf("down-scaled rate = %g, want 0.2", got)
	}
}

func TestBuiltinsCompile(t *testing.T) {
	for _, d := range []time.Duration{2 * time.Second, 120 * time.Second, 400 * time.Second} {
		for _, name := range Builtins() {
			spec, err := Builtin(name, d)
			if err != nil {
				t.Fatalf("%s@%v: %v", name, d, err)
			}
			sc, err := spec.Build()
			if err != nil {
				t.Fatalf("%s@%v: build: %v", name, d, err)
			}
			cp, err := sc.Compile(testEnv(42))
			if err != nil {
				t.Fatalf("%s@%v: compile: %v", name, d, err)
			}
			if len(cp.Script) == 0 {
				t.Errorf("%s@%v: empty script", name, d)
			}
			if cp.FirstDisrupt <= 0 || cp.FirstDisrupt >= d {
				t.Errorf("%s@%v: first disrupt %v outside the run", name, d, cp.FirstDisrupt)
			}
		}
	}
	if _, err := Builtin("no-such", 0); err == nil {
		t.Error("unknown builtin accepted")
	}
}
