package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"stabl/internal/observer"
	"stabl/internal/simnet"
)

// Env is the deployment a scenario compiles against.
type Env struct {
	// Validators / Clients mirror core.Config: validators 0..Clients-1
	// serve clients, the rest form the fault-eligible pool for random and
	// rolling selectors.
	Validators int
	Clients    int
	// RNG returns the named deterministic random stream used to resolve
	// random(k) selectors. core.Run passes the scheduler's derivation, so
	// the same (seed, scenario) pair always picks the same nodes. The
	// derivation is pure: compiling a scenario never perturbs the
	// simulation's other streams.
	RNG func(name string) *rand.Rand
	// Neighbors, when set, returns a validator's gossip-overlay
	// neighborhood; eclipse actions partition each victim from exactly
	// these nodes. Nil (no overlay) falls back to full isolation, so
	// eclipse scenarios stay compilable on mesh deployments.
	Neighbors func(simnet.NodeID) []simnet.NodeID
}

// Phase annotates one compiled timeline step, for metrics timelines and
// human-readable run descriptions.
type Phase struct {
	At    time.Duration
	Label string
}

// Compiled is a scenario lowered onto a concrete deployment: the observer
// script that core.Run hands to the fault-injection primary, plus the
// phase annotations and summary instants the harness reports.
type Compiled struct {
	// Script is the primary's action timeline, sorted by instant.
	Script []observer.Action
	// Phases annotate every step, in script order.
	Phases []Phase
	// Affected is the sorted union of every targeted node.
	Affected []simnet.NodeID
	// FirstDisrupt is the first disruptive instant (the inject marker).
	FirstDisrupt time.Duration
	// LastRevert is the last instant a disruption is reverted — restart,
	// heal, flap window end, degradation rule removal — or zero when the
	// scenario never reverts anything. Recovery is measured from here.
	LastRevert time.Duration
}

// step is one primitive op at one instant, the unit the compiler emits
// before lowering to observer actions.
type step struct {
	at     time.Duration
	op     Op
	nodes  []simnet.NodeID
	rate   float64
	delay  time.Duration
	jitter time.Duration
	revert bool // this step undoes a disruption
}

// Compile lowers the scenario onto a deployment. It expands rolling sets
// into staggered groups, flaps into partition/heal trains and auto-reverts
// into explicit steps, resolves random selectors from env.RNG, and sorts
// the result by (instant, emission order).
func (s *Scenario) Compile(env Env) (*Compiled, error) {
	if env.Validators <= 0 {
		return nil, fmt.Errorf("scenario %q: compile needs a positive validator count", s.Name)
	}
	if env.Clients < 0 || env.Clients > env.Validators {
		return nil, fmt.Errorf("scenario %q: %d clients out of range for %d validators", s.Name, env.Clients, env.Validators)
	}
	if env.RNG == nil {
		return nil, fmt.Errorf("scenario %q: compile needs an RNG derivation", s.Name)
	}

	var steps []step
	for i, act := range s.Actions {
		idx := i
		groups, err := act.Nodes.resolve(env, func() *rand.Rand {
			return env.RNG(fmt.Sprintf("%d/random", idx))
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: action %d (%s): %w", s.Name, i, act.Op, err)
		}
		expanded, err := expandAction(act, groups)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: action %d (%s): %w", s.Name, i, act.Op, err)
		}
		steps = append(steps, expanded...)
	}

	sort.SliceStable(steps, func(i, j int) bool { return steps[i].at < steps[j].at })

	out := &Compiled{}
	affected := make(map[simnet.NodeID]bool)
	first := time.Duration(-1)
	for _, st := range steps {
		out.Script = append(out.Script, st.lower(env))
		out.Phases = append(out.Phases, Phase{At: st.at, Label: st.label()})
		for _, id := range st.nodes {
			affected[id] = true
		}
		if st.revert {
			if st.at > out.LastRevert {
				out.LastRevert = st.at
			}
		} else if first < 0 || st.at < first {
			first = st.at
		}
	}
	if first > 0 {
		out.FirstDisrupt = first
	}
	for id := range affected {
		out.Affected = append(out.Affected, id)
	}
	sort.Slice(out.Affected, func(i, j int) bool { return out.Affected[i] < out.Affected[j] })
	return out, nil
}

// expandAction turns one validated action and its resolved groups into
// primitive steps. Rolling sets stagger the groups by the set's interval;
// each group's auto-revert happens untilSec-atSec after its own start (or
// one stagger interval later, when untilSec is unset).
func expandAction(act Action, groups [][]simnet.NodeID) ([]step, error) {
	if act.Op == OpFlap {
		return expandFlap(act, groups[0]), nil
	}

	stagger := time.Duration(0)
	outage := act.Until - act.At
	if act.Nodes.Rolling() {
		stagger = act.Nodes.every
		if outage <= 0 {
			outage = stagger
		}
	}
	var steps []step
	for g, nodes := range groups {
		at := act.At + time.Duration(g)*stagger
		if act.Op == OpEclipse {
			// Each victim is cut from its own overlay neighborhood, so
			// the lowering needs one partition rule — one step — per
			// victim. A single heal closes the whole group.
			for _, v := range nodes {
				steps = append(steps, step{at: at, op: OpEclipse, nodes: []simnet.NodeID{v}})
			}
			if outage > 0 {
				steps = append(steps, revertStep(act.Op, at+outage, nodes))
			}
			continue
		}
		apply := step{at: at, op: act.Op, nodes: nodes,
			rate: act.Rate, delay: act.Delay, jitter: act.Jitter}
		switch act.Op {
		case OpRestart, OpHeal:
			apply.revert = true
			steps = append(steps, apply)
			continue
		}
		steps = append(steps, apply)
		if outage > 0 {
			steps = append(steps, revertStep(act.Op, at+outage, nodes))
		}
	}
	return steps, nil
}

// revertStep builds the step that undoes op for the nodes.
func revertStep(op Op, at time.Duration, nodes []simnet.NodeID) step {
	st := step{at: at, nodes: nodes, revert: true}
	switch op {
	case OpCrash:
		st.op = OpRestart
	case OpPartition, OpEclipse:
		st.op = OpHeal
	case OpSlow:
		st.op = OpSlow // delay zero clears the rule
	case OpLoss:
		st.op = OpLoss
	case OpJitter:
		st.op = OpJitter
	}
	return st
}

// expandFlap emits the partition/heal train of a flapping link: down for
// On, up for Off, repeating inside [At, Until). A final heal at Until (or
// at the natural end of the last down phase, if earlier) always closes the
// window.
func expandFlap(act Action, nodes []simnet.NodeID) []step {
	var steps []step
	for t := act.At; t < act.Until; t += act.On + act.Off {
		steps = append(steps, step{at: t, op: OpPartition, nodes: nodes})
		up := t + act.On
		if up > act.Until {
			up = act.Until
		}
		steps = append(steps, step{at: up, op: OpHeal, nodes: nodes, revert: true})
	}
	return steps
}

// lower translates one step into the observer primary's action form.
func (st step) lower(env Env) observer.Action {
	act := observer.Action{At: st.at}
	switch st.op {
	case OpCrash:
		act.Kill = st.nodes
	case OpRestart:
		act.Reboot = st.nodes
	case OpPartition:
		act.PartitionA = st.nodes
		act.PartitionB = others(env, st.nodes)
	case OpEclipse:
		act.PartitionA = st.nodes // exactly one victim, see expandAction
		if env.Neighbors != nil {
			act.PartitionB = env.Neighbors(st.nodes[0])
		} else {
			act.PartitionB = others(env, st.nodes)
		}
	case OpHeal:
		act.Heal = st.nodes
	case OpSlow:
		act.Slow = st.nodes
		act.SlowBy = st.delay
	case OpLoss:
		act.Loss = st.nodes
		act.LossRate = st.rate
	case OpJitter:
		act.Jitter = st.nodes
		act.JitterBy = st.jitter
	}
	return act
}

// others returns every validator not in nodes, the far side of a partition.
func others(env Env, nodes []simnet.NodeID) []simnet.NodeID {
	in := make(map[simnet.NodeID]bool, len(nodes))
	for _, id := range nodes {
		in[id] = true
	}
	out := make([]simnet.NodeID, 0, env.Validators-len(nodes))
	for i := 0; i < env.Validators; i++ {
		if !in[simnet.NodeID(i)] {
			out = append(out, simnet.NodeID(i))
		}
	}
	return out
}

// label renders the step for phase annotations: "crash n8,n9",
// "loss p=0.05 n5..n9", "heal n3" …
func (st step) label() string {
	var b strings.Builder
	b.WriteString(string(st.op))
	if st.revert {
		switch st.op {
		case OpSlow, OpLoss, OpJitter:
			b.WriteString(" clear")
		}
	}
	switch {
	case st.op == OpSlow && !st.revert:
		fmt.Fprintf(&b, " +%gs", st.delay.Seconds())
	case st.op == OpLoss && !st.revert:
		fmt.Fprintf(&b, " p=%g", st.rate)
	case st.op == OpJitter && !st.revert:
		fmt.Fprintf(&b, " ±%gs", st.jitter.Seconds())
	}
	b.WriteString(" ")
	b.WriteString(nodeList(st.nodes))
	return b.String()
}

// nodeList renders node ids compactly, collapsing runs ("n5..n9").
func nodeList(nodes []simnet.NodeID) string {
	if len(nodes) == 0 {
		return "-"
	}
	var b strings.Builder
	for i := 0; i < len(nodes); {
		j := i
		for j+1 < len(nodes) && nodes[j+1] == nodes[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteString(",")
		}
		if j > i+1 {
			fmt.Fprintf(&b, "%v..%v", nodes[i], nodes[j])
		} else if j == i+1 {
			fmt.Fprintf(&b, "%v,%v", nodes[i], nodes[j])
		} else {
			fmt.Fprintf(&b, "%v", nodes[i])
		}
		i = j + 1
	}
	return b.String()
}
