package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"stabl/internal/simnet"
)

// NodeSet selects the validators an action targets. The JSON grammar is a
// compact string:
//
//	"3"              one explicit validator id
//	"7,8,9"          an explicit id list
//	"all"            every validator
//	"random(k)"      k distinct validators drawn (deterministically, from
//	                 the run seed) out of the non-client pool
//	"rolling(k,30s)" the non-client pool chunked into groups of k, each
//	                 group acted on 30 s after the previous one
//
// random and rolling draw only from the validators that serve no clients,
// matching the paper's deployment rule that faulty nodes never receive
// transactions they would otherwise lose.
type NodeSet struct {
	kind  setKind
	ids   []int         // explicit
	k     int           // random / rolling group size
	every time.Duration // rolling stagger
}

type setKind int

const (
	setExplicit setKind = iota
	setAll
	setRandom
	setRolling
)

// ParseNodeSet parses the selector grammar above.
func ParseNodeSet(s string) (NodeSet, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return NodeSet{}, fmt.Errorf("scenario: empty node set")
	case s == "all":
		return NodeSet{kind: setAll}, nil
	case strings.HasPrefix(s, "random(") && strings.HasSuffix(s, ")"):
		k, err := strconv.Atoi(strings.TrimSpace(s[len("random(") : len(s)-1]))
		if err != nil || k < 1 {
			return NodeSet{}, fmt.Errorf("scenario: bad node set %q: random(k) needs a positive integer k", s)
		}
		return NodeSet{kind: setRandom, k: k}, nil
	case strings.HasPrefix(s, "rolling(") && strings.HasSuffix(s, ")"):
		body := s[len("rolling(") : len(s)-1]
		parts := strings.Split(body, ",")
		if len(parts) != 2 {
			return NodeSet{}, fmt.Errorf("scenario: bad node set %q: want rolling(k, everySec)", s)
		}
		k, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || k < 1 {
			return NodeSet{}, fmt.Errorf("scenario: bad node set %q: rolling group size must be a positive integer", s)
		}
		every, err := parseSeconds(strings.TrimSpace(parts[1]))
		if err != nil || every <= 0 {
			return NodeSet{}, fmt.Errorf("scenario: bad node set %q: rolling stagger must be a positive duration in seconds", s)
		}
		return NodeSet{kind: setRolling, k: k, every: every}, nil
	default:
		fields := strings.Split(s, ",")
		ids := make([]int, 0, len(fields))
		seen := make(map[int]bool, len(fields))
		for _, f := range fields {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || id < 0 {
				return NodeSet{}, fmt.Errorf("scenario: bad node set %q: want ids, all, random(k) or rolling(k, everySec)", s)
			}
			if seen[id] {
				return NodeSet{}, fmt.Errorf("scenario: bad node set %q: duplicate id %d", s, id)
			}
			seen[id] = true
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return NodeSet{kind: setExplicit, ids: ids}, nil
	}
}

// parseSeconds accepts both a bare number of seconds ("30", "2.5") and a Go
// duration string ("30s", "150ms").
func parseSeconds(s string) (time.Duration, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(v * float64(time.Second)), nil
	}
	return time.ParseDuration(s)
}

// String renders the selector back into its grammar.
func (ns NodeSet) String() string {
	switch ns.kind {
	case setAll:
		return "all"
	case setRandom:
		return fmt.Sprintf("random(%d)", ns.k)
	case setRolling:
		return fmt.Sprintf("rolling(%d, %g)", ns.k, ns.every.Seconds())
	default:
		parts := make([]string, len(ns.ids))
		for i, id := range ns.ids {
			parts[i] = strconv.Itoa(id)
		}
		return strings.Join(parts, ",")
	}
}

// Rolling reports whether the set expands into a staggered group sequence.
func (ns NodeSet) Rolling() bool { return ns.kind == setRolling }

// resolve materializes the selector against a deployment. For rolling sets
// it returns one group per slice, in stagger order; every other kind
// resolves to a single group.
func (ns NodeSet) resolve(env Env, rng func() *rand.Rand) ([][]simnet.NodeID, error) {
	pool := make([]simnet.NodeID, 0, env.Validators-env.Clients)
	for i := env.Clients; i < env.Validators; i++ {
		pool = append(pool, simnet.NodeID(i))
	}
	switch ns.kind {
	case setAll:
		all := make([]simnet.NodeID, env.Validators)
		for i := range all {
			all[i] = simnet.NodeID(i)
		}
		return [][]simnet.NodeID{all}, nil
	case setExplicit:
		out := make([]simnet.NodeID, 0, len(ns.ids))
		for _, id := range ns.ids {
			if id >= env.Validators {
				return nil, fmt.Errorf("scenario: node %d out of range (validators: %d)", id, env.Validators)
			}
			out = append(out, simnet.NodeID(id))
		}
		return [][]simnet.NodeID{out}, nil
	case setRandom:
		if ns.k > len(pool) {
			return nil, fmt.Errorf("scenario: random(%d) exceeds the %d client-free validators", ns.k, len(pool))
		}
		perm := rng().Perm(len(pool))
		picked := make([]simnet.NodeID, ns.k)
		for i := 0; i < ns.k; i++ {
			picked[i] = pool[perm[i]]
		}
		sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
		return [][]simnet.NodeID{picked}, nil
	case setRolling:
		if len(pool) == 0 {
			return nil, fmt.Errorf("scenario: rolling set needs at least one client-free validator")
		}
		var groups [][]simnet.NodeID
		for start := 0; start < len(pool); start += ns.k {
			end := start + ns.k
			if end > len(pool) {
				end = len(pool)
			}
			groups = append(groups, pool[start:end])
		}
		return groups, nil
	default:
		return nil, fmt.Errorf("scenario: unresolved node set")
	}
}
