// Package scenario is STABL's composable fault-scenario engine. Where a
// core.FaultPlan expresses exactly one fault kind with one inject/recover
// window (the paper's four environments), a Scenario composes an ordered
// timeline of typed actions — crash, restart, partition, heal, slow, loss,
// jitter, flap — over named node sets, and compiles into the same
// virtual-time observer script that FaultPlan experiments feed into
// core.Run. That makes composite, time-varying perturbations (cascading
// crashes, flapping links, lossy/jittery WANs, rolling restarts)
// first-class experiments: deterministic, JSON-serializable, scored with
// the same sensitivity metric, and sweepable by the campaign engine.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Op is one action verb of the scenario grammar.
type Op string

// The scenario action verbs.
const (
	// OpCrash kills the nodes (auto-restarting them at untilSec, if set).
	OpCrash Op = "crash"
	// OpRestart reboots previously crashed nodes.
	OpRestart Op = "restart"
	// OpPartition isolates the nodes from every other validator
	// (auto-healing at untilSec, if set).
	OpPartition Op = "partition"
	// OpHeal removes the nodes' partition rules.
	OpHeal Op = "heal"
	// OpSlow installs a fixed netem delay on the nodes' interfaces
	// (auto-removed at untilSec, if set).
	OpSlow Op = "slow"
	// OpLoss installs probabilistic packet loss on the nodes' interfaces
	// (auto-removed at untilSec, if set).
	OpLoss Op = "loss"
	// OpJitter installs bounded latency jitter on the nodes' interfaces
	// (auto-removed at untilSec, if set).
	OpJitter Op = "jitter"
	// OpFlap toggles a partition of the nodes on and off between atSec
	// and untilSec, modelling a flapping link.
	OpFlap Op = "flap"
	// OpEclipse cuts each targeted node off from its gossip-overlay
	// neighbors only (auto-healing at untilSec, if set): the victim stays
	// nominally connected but every overlay path it relays on is severed —
	// the eclipse attack surface of structured overlays. Without an
	// overlay it degrades to a full isolation of each victim.
	OpEclipse Op = "eclipse"
)

// Ops lists every action verb, in grammar order.
func Ops() []Op {
	return []Op{OpCrash, OpRestart, OpPartition, OpHeal, OpSlow, OpLoss, OpJitter, OpFlap, OpEclipse}
}

// Spec is the JSON form of a scenario:
//
//	{
//	  "name": "cascade",
//	  "actions": [
//	    {"op": "crash", "atSec": 100, "nodes": "7"},
//	    {"op": "crash", "atSec": 120, "nodes": "8,9", "untilSec": 240},
//	    {"op": "loss", "atSec": 150, "nodes": "all", "rate": 0.05, "untilSec": 300}
//	  ]
//	}
type Spec struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Actions     []ActionSpec `json:"actions,omitempty"`
}

// ActionSpec is the JSON form of one timeline action. Which parameters are
// required depends on the op; Build validates the combination.
type ActionSpec struct {
	// Op is the action verb: crash, restart, partition, heal, slow,
	// loss, jitter or flap.
	Op string `json:"op"`
	// AtSec is when the action starts.
	AtSec float64 `json:"atSec"`
	// Nodes selects the targets (see NodeSet for the grammar).
	Nodes string `json:"nodes"`
	// UntilSec, when set, auto-reverts the action at that instant
	// (restart after crash, heal after partition, rule removal for
	// slow/loss/jitter, end of the flapping window). For rolling node
	// sets, untilSec-atSec is the per-group outage instead.
	UntilSec float64 `json:"untilSec,omitempty"`
	// Rate is the loss probability in (0, 1] (op loss).
	Rate float64 `json:"rate,omitempty"`
	// DelaySec is the injected fixed delay (op slow).
	DelaySec float64 `json:"delaySec,omitempty"`
	// JitterSec is the jitter bound (op jitter).
	JitterSec float64 `json:"jitterSec,omitempty"`
	// PeriodSec is the flap cycle length; the link is down for the first
	// half and up for the second (op flap, unless onSec/offSec are set).
	PeriodSec float64 `json:"periodSec,omitempty"`
	// OnSec/OffSec override the flap duty cycle: down for onSec, up for
	// offSec, repeated until untilSec.
	OnSec  float64 `json:"onSec,omitempty"`
	OffSec float64 `json:"offSec,omitempty"`
}

// ParseSpec decodes a scenario spec from JSON, rejecting unknown fields so
// typo'd keys fail loudly instead of silently running a different scenario.
func ParseSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	return spec, nil
}

// Parse decodes and validates a scenario in one step.
func Parse(r io.Reader) (*Scenario, error) {
	spec, err := ParseSpec(r)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// WriteJSON encodes the spec as indented JSON.
func (s Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Scaled returns a copy with every degradation magnitude (loss rate, slow
// delay, jitter bound) multiplied by intensity — the campaign engine's knob
// for sweeping a scenario's severity without re-authoring its timeline.
// Rates are capped at 1.
func (s Spec) Scaled(intensity float64) Spec {
	out := s
	out.Actions = make([]ActionSpec, len(s.Actions))
	copy(out.Actions, s.Actions)
	for i := range out.Actions {
		a := &out.Actions[i]
		if a.Rate > 0 {
			a.Rate *= intensity
			if a.Rate > 1 {
				a.Rate = 1
			}
		}
		a.DelaySec *= intensity
		a.JitterSec *= intensity
	}
	return out
}

// Scenario is a validated scenario, ready to compile against a deployment.
type Scenario struct {
	Name        string
	Description string
	Actions     []Action
}

// Action is one validated timeline action.
type Action struct {
	Op     Op
	At     time.Duration
	Nodes  NodeSet
	Until  time.Duration // zero = no auto-revert
	Rate   float64
	Delay  time.Duration
	Jitter time.Duration
	On     time.Duration // flap down-phase length
	Off    time.Duration // flap up-phase length
}

func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

// Build validates the spec into a Scenario. Validation is deployment-free:
// node ranges and pool sizes are only checkable at compile time.
func (s Spec) Build() (*Scenario, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Actions) == 0 {
		return nil, fmt.Errorf("scenario %q: needs at least one action", s.Name)
	}
	sc := &Scenario{Name: s.Name, Description: s.Description}
	for i, as := range s.Actions {
		act, err := as.build()
		if err != nil {
			return nil, fmt.Errorf("scenario %q: action %d: %w", s.Name, i, err)
		}
		sc.Actions = append(sc.Actions, act)
	}
	return sc, nil
}

func (as ActionSpec) build() (Action, error) {
	op := Op(as.Op)
	known := false
	for _, o := range Ops() {
		if o == op {
			known = true
			break
		}
	}
	if !known {
		return Action{}, fmt.Errorf("unknown op %q (valid: %s)", as.Op, opNames())
	}
	if as.AtSec < 0 {
		return Action{}, fmt.Errorf("%s: atSec must be non-negative, got %g", op, as.AtSec)
	}
	nodes, err := ParseNodeSet(as.Nodes)
	if err != nil {
		return Action{}, fmt.Errorf("%s: %w", op, err)
	}
	act := Action{
		Op:     op,
		At:     secs(as.AtSec),
		Nodes:  nodes,
		Until:  secs(as.UntilSec),
		Rate:   as.Rate,
		Delay:  secs(as.DelaySec),
		Jitter: secs(as.JitterSec),
		On:     secs(as.OnSec),
		Off:    secs(as.OffSec),
	}
	if as.UntilSec != 0 && act.Until <= act.At {
		return Action{}, fmt.Errorf("%s: untilSec (%g) must exceed atSec (%g)", op, as.UntilSec, as.AtSec)
	}

	// Per-op parameter rules. Magnitudes belong to exactly one op so a
	// spec cannot smuggle a misunderstood knob past validation.
	if as.Rate != 0 && op != OpLoss {
		return Action{}, fmt.Errorf("%s: rate only applies to op loss", op)
	}
	if as.DelaySec != 0 && op != OpSlow {
		return Action{}, fmt.Errorf("%s: delaySec only applies to op slow", op)
	}
	if as.JitterSec != 0 && op != OpJitter {
		return Action{}, fmt.Errorf("%s: jitterSec only applies to op jitter", op)
	}
	if (as.PeriodSec != 0 || as.OnSec != 0 || as.OffSec != 0) && op != OpFlap {
		return Action{}, fmt.Errorf("%s: periodSec/onSec/offSec only apply to op flap", op)
	}

	switch op {
	case OpRestart, OpHeal:
		if act.Until != 0 {
			return Action{}, fmt.Errorf("%s: untilSec does not apply", op)
		}
		if nodes.Rolling() {
			return Action{}, fmt.Errorf("%s: rolling node sets do not apply", op)
		}
	case OpSlow:
		if act.Delay <= 0 {
			return Action{}, fmt.Errorf("slow: needs a positive delaySec")
		}
	case OpLoss:
		if as.Rate <= 0 || as.Rate > 1 {
			return Action{}, fmt.Errorf("loss: rate must be in (0, 1], got %g", as.Rate)
		}
	case OpJitter:
		if act.Jitter <= 0 {
			return Action{}, fmt.Errorf("jitter: needs a positive jitterSec")
		}
	case OpFlap:
		if nodes.Rolling() {
			return Action{}, fmt.Errorf("flap: rolling node sets do not apply")
		}
		if act.Until == 0 {
			return Action{}, fmt.Errorf("flap: needs untilSec to bound the flapping window")
		}
		switch {
		case as.OnSec > 0 && as.OffSec > 0:
			// explicit duty cycle
		case as.PeriodSec > 0 && as.OnSec == 0 && as.OffSec == 0:
			act.On = secs(as.PeriodSec / 2)
			act.Off = act.On
		default:
			return Action{}, fmt.Errorf("flap: needs periodSec, or both onSec and offSec")
		}
	}
	return act, nil
}

func opNames() string {
	names := make([]string, 0, len(Ops()))
	for _, op := range Ops() {
		names = append(names, string(op))
	}
	return strings.Join(names, "|")
}

// End returns the last instant the scenario's timeline touches (including
// auto-reverts and rolling staggering is resolved at compile time; End is
// the static upper bound over At and Until).
func (s *Scenario) End() time.Duration {
	var end time.Duration
	for _, act := range s.Actions {
		if act.At > end {
			end = act.At
		}
		if act.Until > end {
			end = act.Until
		}
	}
	return end
}
