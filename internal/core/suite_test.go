package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"stabl/internal/chain"
)

func TestRunSuiteAggregates(t *testing.T) {
	res, err := RunSuite(SuiteConfig{
		Base: Config{
			Duration: 60 * time.Second,
			Fault:    FaultPlan{InjectAt: 15 * time.Second, RecoverAt: 25 * time.Second},
		},
		Systems: []chain.System{
			&stubSystem{name: "Solid"},
			&stubSystem{name: "Fragile", fragile: true},
		},
		Faults: []FaultKind{FaultCrash, FaultTransient},
		Seeds:  []int64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}

	// The fragile stub halts for good under a crash: every seed loses
	// liveness.
	fragileCrash := res.Cell("Fragile", FaultCrash)
	if fragileCrash == nil {
		t.Fatal("missing Fragile/crash cell")
	}
	if fragileCrash.InfiniteRuns != 2 || !fragileCrash.Stable() {
		t.Fatalf("Fragile/crash = %+v", fragileCrash)
	}
	if !strings.Contains(fragileCrash.String(), "inf") {
		t.Fatalf("String = %q", fragileCrash.String())
	}

	// It recovers from transient failures on every seed.
	fragileTransient := res.Cell("Fragile", FaultTransient)
	if fragileTransient.InfiniteRuns != 0 {
		t.Fatalf("Fragile/transient = %+v", fragileTransient)
	}
	if fragileTransient.RecoveredRuns != 2 {
		t.Fatalf("recovered runs = %d", fragileTransient.RecoveredRuns)
	}
	if len(fragileTransient.Scores) != 2 || fragileTransient.MeanScore <= 0 {
		t.Fatalf("scores = %+v", fragileTransient)
	}

	// The solid stub barely notices crashes of non-sealer nodes.
	solidCrash := res.Cell("Solid", FaultCrash)
	if solidCrash.InfiniteRuns != 0 {
		t.Fatalf("Solid/crash = %+v", solidCrash)
	}
	if solidCrash.MeanScore >= fragileTransient.MeanScore {
		t.Fatalf("solid crash score %.2f >= fragile transient %.2f",
			solidCrash.MeanScore, fragileTransient.MeanScore)
	}
}

func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	suite := func(workers int) []byte {
		t.Helper()
		res, err := RunSuite(SuiteConfig{
			Base: Config{
				Duration: 60 * time.Second,
				Fault:    FaultPlan{InjectAt: 15 * time.Second, RecoverAt: 25 * time.Second},
			},
			Systems: []chain.System{
				&stubSystem{name: "Solid"},
				&stubSystem{name: "Fragile", fragile: true},
			},
			Faults:  []FaultKind{FaultCrash, FaultTransient},
			Seeds:   []int64{1, 2},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := suite(1)
	parallel := suite(4)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("workers=4 output diverged from workers=1:\n%s\nvs\n%s", parallel, sequential)
	}
}

func TestRunSuiteRejectsEmptySystems(t *testing.T) {
	if _, err := RunSuite(SuiteConfig{}); err == nil {
		t.Fatal("empty suite accepted")
	}
}

func TestSuiteResultJSONRoundTrip(t *testing.T) {
	res, err := RunSuite(SuiteConfig{
		Base:    Config{Duration: 45 * time.Second, Fault: FaultPlan{InjectAt: 8 * time.Second, RecoverAt: 12 * time.Second}},
		Systems: []chain.System{&stubSystem{}},
		Faults:  []FaultKind{FaultCrash},
		Seeds:   []int64{7},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded SuiteResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Cells) != 1 || decoded.Cells[0].System != "Stub" {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestReportDigestsComparison(t *testing.T) {
	cmp, err := Compare(Config{
		System:   &stubSystem{fragile: true},
		Seed:     1,
		Duration: 60 * time.Second,
		Fault:    FaultPlan{Kind: FaultTransient, InjectAt: 20 * time.Second, RecoverAt: 35 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(cmp)
	if rep.System != "Stub" || rep.Fault != "transient" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Baseline.Latency.Count == 0 || rep.Altered.Latency.Count == 0 {
		t.Fatal("latency summaries empty")
	}
	if rep.KSDistance <= 0 || rep.KSDistance > 1 {
		t.Fatalf("KS = %v", rep.KSDistance)
	}
	if !rep.Recovered {
		t.Fatal("recovery flag lost")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ksDistance"`) {
		t.Fatalf("json = %s", buf.String())
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Score != rep.Score {
		t.Fatal("score did not round-trip")
	}
}
