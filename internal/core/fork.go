package core

import (
	"fmt"
	"time"

	"stabl/internal/snapshot"
)

// ForkPoint is a whole-experiment checkpoint taken at a virtual instant.
// Rewinding it restores the live experiment to that instant, so independent
// continuations run sequentially on the same object graph: fork, run
// continuation A to the end, rewind, run continuation B. Each continuation is
// byte-identical to a from-scratch replay of the same schedule (the fork
// goldens enforce this).
type ForkPoint struct {
	exp   *Experiment
	at    time.Duration
	state snapshot.State
}

// Fork captures the experiment at its current virtual instant. It fails when
// the deployed system's validators do not implement snapshot.Forkable.
func Fork(e *Experiment) (*ForkPoint, error) {
	set, err := e.forkSet()
	if err != nil {
		return nil, err
	}
	return &ForkPoint{exp: e, at: e.sched.Now(), state: set.Snapshot()}, nil
}

// Fork captures the experiment at its current virtual instant; see the
// package-level Fork.
func (e *Experiment) Fork() (*ForkPoint, error) { return Fork(e) }

// At returns the virtual instant the checkpoint was taken at.
func (f *ForkPoint) At() time.Duration { return f.at }

// Rewind restores the experiment to the checkpoint instant. The experiment's
// clock, event queue, network, chain nodes, clients and recorders all return
// to their checkpoint-time state; the caller resumes with RunUntil.
func (f *ForkPoint) Rewind() {
	set, err := f.exp.forkSet()
	if err != nil {
		// forkSet succeeded when the checkpoint was taken and the part
		// list never changes afterwards.
		panic(fmt.Sprintf("core: fork set vanished: %v", err))
	}
	set.Restore(f.state)
}

// forkSet assembles (once) the snapshot.Set covering every stateful component
// of the experiment. The scheduler comes first: its restore rewinds the
// registered RNG streams and tickers that every other component's closures
// draw from.
func (e *Experiment) forkSet() (*snapshot.Set, error) {
	if e.forkable != nil {
		return e.forkable, nil
	}
	// Checkpoints snapshot the sequential layout (one event queue, one
	// delivery pool), so a parallel experiment deterministically falls back
	// to the sequential kernel before its first fork — output is identical
	// either way, only wall-clock time differs. Once a parallel run has
	// started its queues hold partition events and the fallback is closed.
	if e.sched.Parallel() {
		if e.started {
			return nil, fmt.Errorf("core: cannot fork a running parallel simulation; fork before Start or set SimWorkers=0")
		}
		e.monitor.DisableParallel()
		e.net.DisableParallel()
		e.sched.DisableParallel()
	}
	set := &snapshot.Set{}
	set.Add(e.sched, e.net, e.monitor)
	for i, v := range e.validators {
		forkable, ok := v.(snapshot.Forkable)
		if !ok {
			return nil, fmt.Errorf("core: system %s does not support forking: validator %d (%T) is not snapshot.Forkable",
				e.cfg.System.Name(), i, v)
		}
		set.Add(forkable)
	}
	for _, cl := range e.clients {
		set.Add(cl)
	}
	for _, g := range e.gens {
		set.Add(g)
	}
	for _, fl := range e.flows {
		set.Add(fl)
	}
	for _, fg := range e.flowGens {
		set.Add(fg)
	}
	for _, r := range e.readers {
		set.Add(r)
	}
	for _, o := range e.observers {
		set.Add(o)
	}
	set.Add(e.primary)
	if e.rec != nil {
		set.Add(e.rec)
	}
	e.forkable = set
	return set, nil
}

// CheckpointLead is how far before the first disruptive action an adaptive
// checkpoint is taken: the scheduler stops one nanosecond short so the
// action's own event stays queued inside the checkpoint.
const CheckpointLead = time.Nanosecond

// RunToCheckpoint starts the experiment, advances it to just before its
// first disruptive action and forks there. It returns nil (and leaves the
// experiment un-started) when the run injects nothing or the system is not
// forkable — callers fall back to a plain replay.
func RunToCheckpoint(e *Experiment) (*ForkPoint, error) {
	at := e.FirstDisrupt()
	if at <= 0 || at > e.cfg.Duration {
		return nil, nil
	}
	if _, err := e.forkSet(); err != nil {
		return nil, nil
	}
	e.Start()
	e.RunUntil(at - CheckpointLead)
	return Fork(e)
}
