package core

import (
	"strings"
	"testing"
	"time"

	"stabl/internal/chain"
	"stabl/internal/simnet"
)

// stubSystem is a minimal chain for exercising the harness: node 0 seals its
// pool into a block twice per second and broadcasts it; every node forwards
// client transactions to node 0. With FragileQuorum set, sealing stops as
// soon as any validator is unreachable — a maximally fragile chain.
type stubSystem struct {
	fragile bool
	name    string
}

func (s *stubSystem) Name() string {
	if s.name != "" {
		return s.name
	}
	return "Stub"
}
func (s *stubSystem) Tolerance(n int) int           { return chain.ToleranceThird(n) }
func (s *stubSystem) ConnParams() simnet.ConnParams { return simnet.ConnParams{} }

func (s *stubSystem) NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *chain.Monitor, genesis []chain.GenesisAccount) simnet.Handler {
	v := &stubValidator{
		base:    chain.NewBaseNode(id, peers, mon, chain.BaseConfig{}),
		fragile: s.fragile,
	}
	for _, g := range genesis {
		v.base.Ledger.Mint(g.Addr, g.Balance)
	}
	return v
}

type stubValidator struct {
	base    *chain.BaseNode
	fragile bool
	ticker  interface{ Stop() }
	alive   map[simnet.NodeID]bool
}

type stubForward struct{ Tx chain.Tx }
type stubBlock struct{ Block chain.Block }
type stubPing struct{}
type stubPong struct{ From simnet.NodeID }

func (v *stubValidator) Start(ctx *simnet.Context) {
	v.base.Reset(ctx)
	v.base.OnLocalSubmit = func(tx chain.Tx) {
		if v.base.ID != v.base.Peers[0] {
			ctx.Send(v.base.Peers[0], stubForward{Tx: tx})
			v.base.Subscribe(tx.ID, v.base.ID)
		}
	}
	if v.base.ID == v.base.Peers[0] {
		alive := make(map[simnet.NodeID]bool)
		v.ticker = ctx.Every(500*time.Millisecond, func() {
			if v.fragile {
				// Probe everyone; seal only if all answered last time.
				ok := true
				for _, p := range v.base.Peers[1:] {
					if !alive[p] {
						ok = false
					}
					alive[p] = false
				}
				ctx.Broadcast(v.base.Peers, stubPing{})
				if !ok && ctx.Now() > time.Second {
					return
				}
			}
			txs := v.base.Pool.Pop(0)
			b := chain.Block{
				Height:    v.base.ChainTip(),
				Parent:    v.base.TipHash(),
				Txs:       txs,
				DecidedAt: ctx.Now(),
			}
			v.base.SubmitBlock(b)
			ctx.Broadcast(v.base.Peers, stubBlock{Block: b})
		})
		v.alive = alive
	} else if v.base.Ledger.Height() > 0 {
		v.base.StartCatchUp()
	}
}

func (v *stubValidator) Stop() {
	if v.ticker != nil {
		v.ticker.Stop()
	}
}

func (v *stubValidator) Deliver(from simnet.NodeID, payload any) {
	if v.base.HandleClient(from, payload) || v.base.HandleSync(from, payload) {
		return
	}
	switch msg := payload.(type) {
	case stubForward:
		v.base.Pool.Add(msg.Tx)
	case stubBlock:
		v.base.SubmitBlock(msg.Block)
	case stubPing:
		v.base.Ctx().Send(from, stubPong{From: v.base.ID})
	case stubPong:
		if v.alive != nil {
			v.alive[msg.From] = true
		}
	}
}

func TestRunDefaultsAndBaseline(t *testing.T) {
	res, err := Run(Config{System: &stubSystem{}, Seed: 1, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// 5 clients x 40 tx/s x 30 s = ~6000.
	if res.Submitted < 5900 || res.Submitted > 6005 {
		t.Fatalf("submitted = %d", res.Submitted)
	}
	if res.UniqueCommits < res.Submitted*95/100 {
		t.Fatalf("commits = %d of %d", res.UniqueCommits, res.Submitted)
	}
	if res.LivenessLost {
		t.Fatal("stub baseline lost liveness")
	}
	if len(res.FaultyNodes) != 0 {
		t.Fatalf("baseline has faulty nodes: %v", res.FaultyNodes)
	}
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := Run(Config{System: &stubSystem{}, Clients: 11, Validators: 10}); err == nil {
		t.Fatal("more clients than validators accepted")
	}
	if _, err := Run(Config{System: &stubSystem{}, Fanout: 6}); err == nil {
		t.Fatal("fanout beyond client-facing validators accepted")
	}
	if _, err := Run(Config{
		System: &stubSystem{},
		Fault:  FaultPlan{Kind: FaultCrash, Count: 6},
	}); err == nil {
		t.Fatal("fault count overlapping client-facing validators accepted")
	}
}

func TestFaultyNodesAvoidClientFacingValidators(t *testing.T) {
	cfg := Config{System: &stubSystem{}, Fault: FaultPlan{Kind: FaultTransient}}.withDefaults()
	faulty := cfg.faultyNodes()
	// t = 3 for the stub => f = t+1 = 4, drawn from the top ids.
	if len(faulty) != 4 {
		t.Fatalf("faulty = %v, want 4 nodes", faulty)
	}
	for _, id := range faulty {
		if int(id) < cfg.Clients {
			t.Fatalf("faulty node %v serves a client", id)
		}
	}
}

func TestClientEndpointsFanOutOverClientFacingNodes(t *testing.T) {
	cfg := Config{System: &stubSystem{}, Fanout: 4}.withDefaults()
	eps := cfg.clientEndpoints(3)
	want := []simnet.NodeID{3, 4, 0, 1}
	if len(eps) != len(want) {
		t.Fatalf("endpoints = %v", eps)
	}
	for i := range want {
		if eps[i] != want[i] {
			t.Fatalf("endpoints = %v, want %v", eps, want)
		}
	}
}

func TestCrashOnFragileChainLosesLiveness(t *testing.T) {
	res, err := Run(Config{
		System:   &stubSystem{fragile: true},
		Seed:     1,
		Duration: 60 * time.Second,
		Fault:    FaultPlan{Kind: FaultCrash, InjectAt: 20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LivenessLost {
		t.Fatalf("fragile chain survived crash; last commit %v", res.LastCommitAt)
	}
	if res.LastCommitAt > 25*time.Second {
		t.Fatalf("commits continued past the crash: %v", res.LastCommitAt)
	}
}

func TestTransientOnStubRecovers(t *testing.T) {
	res, err := Run(Config{
		System:   &stubSystem{fragile: true},
		Seed:     1,
		Duration: 90 * time.Second,
		Fault:    FaultPlan{Kind: FaultTransient, InjectAt: 20 * time.Second, RecoverAt: 40 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LivenessLost {
		t.Fatalf("stub did not recover; last commit %v", res.LastCommitAt)
	}
	during := res.Throughput.MeanRate(25*time.Second, 40*time.Second)
	if during > 10 {
		t.Fatalf("fragile stub committed %v/s during outage", during)
	}
}

func TestCompareComputesScoreAndRecovery(t *testing.T) {
	cmp, err := Compare(Config{
		System:   &stubSystem{fragile: true},
		Seed:     1,
		Duration: 90 * time.Second,
		Fault:    FaultPlan{Kind: FaultTransient, InjectAt: 20 * time.Second, RecoverAt: 40 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Score.Infinite {
		t.Fatal("recovering stub scored infinite")
	}
	if cmp.Score.Value <= 0 {
		t.Fatal("outage left no trace in the score")
	}
	if !cmp.Recovered {
		t.Fatal("recovery not detected")
	}
	if cmp.RecoveryTime > 20*time.Second {
		t.Fatalf("recovery time = %v", cmp.RecoveryTime)
	}
	if !strings.Contains(cmp.String(), "transient") {
		t.Fatalf("String() = %q", cmp.String())
	}
}

func TestCompareInfiniteOnLivenessLoss(t *testing.T) {
	cmp, err := Compare(Config{
		System:   &stubSystem{fragile: true},
		Seed:     1,
		Duration: 60 * time.Second,
		Fault:    FaultPlan{Kind: FaultCrash, InjectAt: 20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Score.Infinite {
		t.Fatal("liveness loss not reflected as infinite score")
	}
	if cmp.Score.String() != "inf" {
		t.Fatalf("score string = %q", cmp.Score.String())
	}
}

func TestSecureClientFanoutAppliedInAlteredRun(t *testing.T) {
	cmp, err := Compare(Config{
		System:   &stubSystem{},
		Seed:     1,
		Duration: 30 * time.Second,
		Fault:    FaultPlan{Kind: FaultSecureClient},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stub tolerance is 3 -> fanout 4: the altered run must complete all
	// transactions through 4 endpoints (completion needs all of them).
	if cmp.Altered.Submitted == 0 || cmp.Altered.Pending > cmp.Altered.Submitted/10 {
		t.Fatalf("secure run: %d submitted, %d pending", cmp.Altered.Submitted, cmp.Altered.Pending)
	}
}

func TestFaultKindString(t *testing.T) {
	cases := map[FaultKind]string{
		FaultNone:         "none",
		FaultCrash:        "crash",
		FaultTransient:    "transient",
		FaultPartition:    "partition",
		FaultSecureClient: "secure-client",
		FaultKind(42):     "FaultKind(42)",
	}
	for kind, want := range cases {
		if kind.String() != want {
			t.Fatalf("String(%d) = %q", int(kind), kind.String())
		}
		// Every named kind round-trips through ParseFaultKind.
		if kind == FaultKind(42) {
			continue
		}
		back, err := ParseFaultKind(want)
		if err != nil || back != kind {
			t.Fatalf("ParseFaultKind(%q) = %v, %v; want %v", want, back, err, kind)
		}
	}
	// FaultSlow is spelled "slow" and round-trips too.
	if FaultSlow.String() != "slow" {
		t.Fatalf("FaultSlow = %q", FaultSlow)
	}
	if back, err := ParseFaultKind("slow"); err != nil || back != FaultSlow {
		t.Fatalf("ParseFaultKind(slow) = %v, %v", back, err)
	}
	// An unknown kind's error lists the valid names and points composite
	// faults at scenario specs.
	_, err := ParseFaultKind("cascade")
	if err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	for _, part := range []string{"crash", "scenario spec"} {
		if !strings.Contains(err.Error(), part) {
			t.Fatalf("error %q does not mention %q", err, part)
		}
	}
}

func TestPartitionScriptSeparatesGroups(t *testing.T) {
	cfg := Config{System: &stubSystem{}, Fault: FaultPlan{Kind: FaultPartition}}.withDefaults()
	faulty := cfg.faultyNodes()
	script := cfg.faultScript(faulty)
	if len(script) != 2 {
		t.Fatalf("script = %d actions", len(script))
	}
	if len(script[0].PartitionA) != len(faulty) {
		t.Fatal("partition A mismatch")
	}
	if len(script[0].PartitionB) != cfg.Validators-len(faulty) {
		t.Fatal("partition B mismatch")
	}
	if len(script[1].Heal) != len(faulty) {
		t.Fatal("heal action mismatch")
	}
}
