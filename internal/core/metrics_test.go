package core

import (
	"bytes"
	"testing"
	"time"

	"stabl/internal/metrics"
)

// TestMetricsRecorderIsPureObservation verifies the central contract of the
// instrumentation layer: attaching a recorder must not change what a run
// measures, and the recorder must agree with the run result it observed.
func TestMetricsRecorderIsPureObservation(t *testing.T) {
	config := func(rec *metrics.Recorder) Config {
		return Config{
			System:   &stubSystem{fragile: true},
			Seed:     1,
			Duration: 90 * time.Second,
			Fault:    FaultPlan{Kind: FaultTransient, InjectAt: 20 * time.Second, RecoverAt: 40 * time.Second},
			Metrics:  rec,
		}
	}
	plain, err := Compare(config(nil))
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(5 * time.Second)
	instrumented, err := Compare(config(rec))
	if err != nil {
		t.Fatal(err)
	}

	if plain.Score != instrumented.Score {
		t.Fatalf("score changed: %v vs %v", instrumented.Score, plain.Score)
	}
	if plain.Altered.UniqueCommits != instrumented.Altered.UniqueCommits ||
		plain.Baseline.UniqueCommits != instrumented.Baseline.UniqueCommits {
		t.Fatalf("commits changed: %d/%d vs %d/%d",
			instrumented.Altered.UniqueCommits, instrumented.Baseline.UniqueCommits,
			plain.Altered.UniqueCommits, plain.Baseline.UniqueCommits)
	}
	if plain.RecoveryTime != instrumented.RecoveryTime {
		t.Fatalf("recovery changed: %v vs %v", instrumented.RecoveryTime, plain.RecoveryTime)
	}

	// Compare attaches the recorder to the altered run only; its commit
	// counter must agree exactly with the run result it observed.
	if got := int(rec.CounterTotal("tx_committed")); got != instrumented.Altered.UniqueCommits {
		t.Fatalf("recorder counted %d commits, run measured %d", got, instrumented.Altered.UniqueCommits)
	}
	info := rec.Run()
	if info.System != "Stub" || info.Fault != "transient" || info.Duration != 90*time.Second {
		t.Fatalf("run info = %+v", info)
	}
	var inject, recover bool
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case metrics.EventFaultInject:
			inject = ev.At == 20*time.Second
		case metrics.EventFaultRecover:
			recover = ev.At == 40*time.Second
		}
	}
	if !inject || !recover {
		t.Fatalf("fault annotations missing or mistimed (inject=%v recover=%v)", inject, recover)
	}
	// The transient fault halts and restarts nodes; the tee'd tracer must
	// have captured that lifecycle without a TraceWriter being configured.
	if len(rec.Trace()) == 0 {
		t.Fatal("network trace not captured")
	}
	if len(rec.GaugeNames()) == 0 {
		t.Fatal("no periodic gauges sampled")
	}
}

// TestMetricsExportByteIdenticalAcrossRuns re-runs the same seed and demands
// byte-identical JSONL — the reproducibility claim of the metrics layer.
func TestMetricsExportByteIdenticalAcrossRuns(t *testing.T) {
	dump := func() []byte {
		t.Helper()
		rec := metrics.NewRecorder(5 * time.Second)
		_, err := Compare(Config{
			System:   &stubSystem{fragile: true},
			Seed:     7,
			Duration: 60 * time.Second,
			Fault:    FaultPlan{Kind: FaultTransient, InjectAt: 20 * time.Second, RecoverAt: 35 * time.Second},
			Metrics:  rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := dump()
	second := dump()
	if !bytes.Equal(first, second) {
		t.Fatal("metrics JSONL diverged between identical runs")
	}
}
