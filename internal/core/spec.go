package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"stabl/internal/chain"
	"stabl/internal/overlay"
	"stabl/internal/scenario"
	"stabl/internal/workload"
)

// Spec is the JSON-serializable description of one experiment, the
// counterpart of DIABLO's benchmark specification files. A spec plus a
// system resolver yields a Config:
//
//	{
//	  "system": "Redbelly",
//	  "seed": 42,
//	  "durationSec": 400,
//	  "fault": {"kind": "transient", "injectSec": 133, "recoverSec": 266},
//	  "profile": {"kind": "burst", "periodSec": 60, "burstSec": 10, "factor": 2}
//	}
type Spec struct {
	System            string  `json:"system"`
	Seed              int64   `json:"seed,omitempty"`
	Validators        int     `json:"validators,omitempty"`
	Clients           int     `json:"clients,omitempty"`
	RatePerClient     float64 `json:"ratePerClient,omitempty"`
	AccountsPerClient int     `json:"accountsPerClient,omitempty"`
	DurationSec       float64 `json:"durationSec,omitempty"`
	Fanout            int     `json:"fanout,omitempty"`
	ReadRate          float64 `json:"readRate,omitempty"`
	RetryAfterSec     float64 `json:"retryAfterSec,omitempty"`
	// Flows switches the workload to aggregated flow generators: Clients
	// then counts modeled clients and may exceed Validators. See
	// Config.Flows / Config.FlowAccounts.
	Flows        int `json:"flows,omitempty"`
	FlowAccounts int `json:"flowAccounts,omitempty"`
	// CommitteeSize enables sortition committees of this size on systems
	// that support them (Algorand). See Config.CommitteeSize.
	CommitteeSize int `json:"committeeSize,omitempty"`
	// DisableConnLayer skips the O(n^2) managed connection layer; used by
	// 10k-node scale runs. See Config.DisableConnLayer.
	DisableConnLayer bool `json:"disableConnLayer,omitempty"`
	// SimWorkers runs the simulation on the parallel kernel with this many
	// partition queues; results are byte-identical to sequential. See
	// Config.SimWorkers.
	SimWorkers int `json:"simWorkers,omitempty"`
	// Overlay routes validator gossip over a structured broadcast overlay
	// (kadcast, regular, ring) instead of the legacy full mesh. The zero
	// value keeps the mesh. See Config.Overlay.
	Overlay overlay.Config `json:"overlay,omitempty"`
	Fault   FaultSpec      `json:"fault,omitempty"`
	// Scenario composes a multi-phase fault timeline instead of the single
	// fault plan above; mutually exclusive with a non-empty fault kind.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	Profile  *ProfileSpec   `json:"profile,omitempty"`
}

// FaultSpec is the JSON form of a FaultPlan.
type FaultSpec struct {
	Kind       string  `json:"kind,omitempty"`
	Count      int     `json:"count,omitempty"`
	InjectSec  float64 `json:"injectSec,omitempty"`
	RecoverSec float64 `json:"recoverSec,omitempty"`
	SlowBySec  float64 `json:"slowBySec,omitempty"`
}

// ProfileSpec is the JSON form of a workload rate profile.
type ProfileSpec struct {
	Kind      string  `json:"kind"` // constant|burst|ramp|sine
	PeriodSec float64 `json:"periodSec,omitempty"`
	BurstSec  float64 `json:"burstSec,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	From      float64 `json:"from,omitempty"`
	To        float64 `json:"to,omitempty"`
	RampSec   float64 `json:"rampSec,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
}

// ParseSpec decodes a spec from JSON.
func ParseSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("core: parse spec: %w", err)
	}
	return spec, nil
}

// WriteJSON encodes the spec.
func (s Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func secs(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

// Config materializes the spec. resolve maps a system name to its model
// (keeping this package free of chain-model imports).
func (s Spec) Config(resolve func(string) (chain.System, error)) (Config, error) {
	sys, err := resolve(s.System)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		System:            sys,
		Seed:              s.Seed,
		Validators:        s.Validators,
		Clients:           s.Clients,
		RatePerClient:     s.RatePerClient,
		AccountsPerClient: s.AccountsPerClient,
		Duration:          secs(s.DurationSec),
		Fanout:            s.Fanout,
		ReadRate:          s.ReadRate,
		RetryAfter:        secs(s.RetryAfterSec),
		Flows:             s.Flows,
		FlowAccounts:      s.FlowAccounts,
		CommitteeSize:     s.CommitteeSize,
		DisableConnLayer:  s.DisableConnLayer,
		SimWorkers:        s.SimWorkers,
		Overlay:           s.Overlay,
	}
	cfg.Fault = FaultPlan{
		Count:     s.Fault.Count,
		InjectAt:  secs(s.Fault.InjectSec),
		RecoverAt: secs(s.Fault.RecoverSec),
		SlowBy:    secs(s.Fault.SlowBySec),
	}
	if s.Fault.Kind != "" {
		kind, err := ParseFaultKind(s.Fault.Kind)
		if err != nil {
			return Config{}, err
		}
		cfg.Fault.Kind = kind
	}
	if s.Scenario != nil {
		sc, err := s.Scenario.Build()
		if err != nil {
			return Config{}, err
		}
		cfg.Scenario = sc
	}
	if s.Profile != nil {
		profile, err := s.Profile.build()
		if err != nil {
			return Config{}, err
		}
		cfg.Profile = profile
	}
	return cfg, nil
}

// FaultKinds lists every fault kind, in declaration order.
func FaultKinds() []FaultKind {
	return []FaultKind{
		FaultNone, FaultCrash, FaultTransient, FaultPartition,
		FaultSecureClient, FaultSlow,
	}
}

// ParseFaultKind is the inverse of FaultKind.String: every kind round-trips
// through its canonical name (ParseFaultKind(k.String()) == k). It is the
// one canonical name mapping, shared by JSON specs, the CLI and campaign
// specs. Composite or time-varying perturbations (crash waves, flapping
// links, loss/jitter) have no FaultKind — express those as a scenario spec
// instead (see internal/scenario and the spec's "scenario" block).
func ParseFaultKind(name string) (FaultKind, error) {
	for _, kind := range FaultKinds() {
		if kind.String() == name {
			return kind, nil
		}
	}
	return FaultNone, fmt.Errorf("core: unknown fault kind %q (valid: %s; for composite faults use a scenario spec)",
		name, faultKindNames())
}

// faultKindNames renders every valid fault kind as a "a|b|c" list.
func faultKindNames() string {
	names := ""
	for i, kind := range FaultKinds() {
		if i > 0 {
			names += "|"
		}
		names += kind.String()
	}
	return names
}

func (p ProfileSpec) build() (workload.Profile, error) {
	switch p.Kind {
	case "", "constant":
		return workload.Constant(), nil
	case "burst":
		return workload.Burst(secs(p.PeriodSec), secs(p.BurstSec), p.Factor), nil
	case "ramp":
		return workload.Ramp(p.From, p.To, secs(p.RampSec)), nil
	case "sine":
		return workload.Sine(p.Amplitude, secs(p.PeriodSec)), nil
	default:
		return nil, fmt.Errorf("core: unknown profile kind %q", p.Kind)
	}
}
