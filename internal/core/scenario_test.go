package core

import (
	"strings"
	"testing"
	"time"

	"stabl/internal/metrics"
	"stabl/internal/scenario"
)

func buildScenario(t *testing.T, spec scenario.Spec) *scenario.Scenario {
	t.Helper()
	sc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestScenarioAndFaultMutuallyExclusive(t *testing.T) {
	sc := buildScenario(t, scenario.Spec{Name: "x", Actions: []scenario.ActionSpec{
		{Op: "crash", AtSec: 10, Nodes: "7", UntilSec: 20},
	}})
	_, err := Run(Config{
		System:   &stubSystem{},
		Duration: 30 * time.Second,
		Fault:    FaultPlan{Kind: FaultCrash},
		Scenario: sc,
	})
	if err == nil {
		t.Fatal("config with both Fault and Scenario accepted")
	}
	if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("error %q does not explain the exclusion", err)
	}
}

func TestScenarioCompileErrorsSurfaceInValidate(t *testing.T) {
	sc := buildScenario(t, scenario.Spec{Name: "oob", Actions: []scenario.ActionSpec{
		{Op: "crash", AtSec: 10, Nodes: "99"},
	}})
	_, err := Run(Config{System: &stubSystem{}, Duration: 30 * time.Second, Scenario: sc})
	if err == nil {
		t.Fatal("out-of-range scenario node accepted")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error %q does not mention the range violation", err)
	}
}

// TestScenarioRunDeterministicAndAnnotated runs a composed scenario twice and
// requires identical results, faulty-node sets resolved from the scenario's
// random selector, and phase annotations in the metrics event stream.
func TestScenarioRunDeterministicAndAnnotated(t *testing.T) {
	spec := scenario.Spec{Name: "mix", Actions: []scenario.ActionSpec{
		{Op: "crash", AtSec: 10, Nodes: "random(1)", UntilSec: 20},
		{Op: "loss", AtSec: 15, Nodes: "all", Rate: 0.05, UntilSec: 25},
	}}
	run := func(rec *metrics.Recorder) (*RunResult, error) {
		return Run(Config{
			System:   &stubSystem{},
			Seed:     3,
			Duration: 40 * time.Second,
			Scenario: buildScenario(t, spec),
			Metrics:  rec,
		})
	}
	a, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.UniqueCommits != b.UniqueCommits || a.Events != b.Events || a.Submitted != b.Submitted {
		t.Fatalf("scenario run not deterministic: %d/%d/%d vs %d/%d/%d",
			a.UniqueCommits, a.Events, a.Submitted, b.UniqueCommits, b.Events, b.Submitted)
	}
	// FaultyNodes is the union of every targeted node; the loss action
	// covers "all", so the whole deployment is marked affected.
	if len(a.FaultyNodes) != 10 {
		t.Fatalf("faulty nodes = %v, want all 10 (loss targets every interface)", a.FaultyNodes)
	}

	rec := metrics.NewRecorder(5 * time.Second)
	if _, err := run(rec); err != nil {
		t.Fatal(err)
	}
	info := rec.Run()
	if info.Fault != "scenario:mix" {
		t.Fatalf("run info fault = %q, want scenario:mix", info.Fault)
	}
	var phases []string
	var inject, recovered bool
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case metrics.EventPhase:
			phases = append(phases, ev.Detail)
		case metrics.EventFaultInject:
			inject = ev.At == 10*time.Second
		case metrics.EventFaultRecover:
			recovered = ev.At == 25*time.Second
		}
	}
	// 2 actions with auto-reverts = 4 phase marks: crash, loss, restart,
	// loss clear.
	if len(phases) != 4 {
		t.Fatalf("phase events = %v, want 4", phases)
	}
	if !strings.HasPrefix(phases[0], "crash ") || !strings.HasPrefix(phases[1], "loss p=0.05") {
		t.Fatalf("phase labels = %v", phases)
	}
	if !inject || !recovered {
		t.Fatalf("inject/recover annotations missing (inject=%v recover=%v): %v", inject, recovered, phases)
	}
}

// TestCompareScenarioMeasuresRecovery checks that Compare against a reverting
// scenario reports the scenario name, strips it from the baseline, and
// measures recovery from the last revert instant.
func TestCompareScenarioMeasuresRecovery(t *testing.T) {
	spec := scenario.Spec{Name: "blip", Actions: []scenario.ActionSpec{
		{Op: "crash", AtSec: 20, Nodes: "random(2)", UntilSec: 40},
	}}
	cmp, err := Compare(Config{
		System:   &stubSystem{},
		Seed:     5,
		Duration: 90 * time.Second,
		Scenario: buildScenario(t, spec),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Scenario != "blip" {
		t.Fatalf("comparison scenario = %q", cmp.Scenario)
	}
	if cmp.Fault.Kind != FaultNone {
		t.Fatalf("comparison fault kind = %v, want none", cmp.Fault.Kind)
	}
	if len(cmp.Baseline.FaultyNodes) != 0 {
		t.Fatalf("baseline has faulty nodes: %v", cmp.Baseline.FaultyNodes)
	}
	if !cmp.RecoveryMeasured {
		t.Fatal("recovery not measured for a reverting scenario")
	}
	if !strings.Contains(cmp.String(), "scenario:blip") {
		t.Fatalf("String() missing scenario tag:\n%s", cmp.String())
	}
}
