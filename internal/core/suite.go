package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"stabl/internal/chain"
	"stabl/internal/pool"
)

// SuiteConfig describes a full sensitivity sweep: every (system, fault)
// cell, repeated over several seeds. This is the paper's "pluggable in
// continuous integration pipelines" mode: scores come back aggregated with
// their run-to-run spread so a regression gate can distinguish drift from
// noise.
type SuiteConfig struct {
	// Base is the deployment template; its System, Seed and Fault.Kind
	// fields are overridden per cell.
	Base Config
	// Systems under test.
	Systems []chain.System
	// Faults to inject; defaults to the paper's four.
	Faults []FaultKind
	// Seeds to repeat each cell with; defaults to {1, 2, 3}.
	Seeds []int64
	// Workers bounds how many (system, fault, seed) runs execute
	// concurrently; GOMAXPROCS when zero. Every run is an independent
	// deterministic simulation, so the aggregated output is identical at
	// any worker count.
	Workers int
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if len(c.Faults) == 0 {
		c.Faults = []FaultKind{FaultCrash, FaultTransient, FaultPartition, FaultSecureClient}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	return c
}

// Cell aggregates one (system, fault) pair over all seeds.
type Cell struct {
	System string    `json:"system"`
	Fault  string    `json:"fault"`
	Runs   int       `json:"runs"`
	Scores []float64 `json:"scores"`
	// MeanScore and ScoreStddev aggregate the finite scores.
	MeanScore   float64 `json:"meanScore"`
	ScoreStddev float64 `json:"scoreStddev"`
	// InfiniteRuns counts liveness losses; BenefitRuns counts runs where
	// the altered environment outperformed the baseline.
	InfiniteRuns int `json:"infiniteRuns"`
	BenefitRuns  int `json:"benefitRuns"`
	// RecoveredRuns and MeanRecoverySec aggregate recovery behaviour
	// (transient and partition faults only).
	RecoveredRuns   int     `json:"recoveredRuns,omitempty"`
	MeanRecoverySec float64 `json:"meanRecoverySec,omitempty"`
}

// Stable reports whether every repetition agreed on liveness: either all
// runs kept liveness or none did. A mixed cell sits on a failure boundary
// and needs investigation before being used as a CI gate.
func (c *Cell) Stable() bool {
	return c.InfiniteRuns == 0 || c.InfiniteRuns == c.Runs
}

// String renders one row of a suite summary.
func (c *Cell) String() string {
	if c.InfiniteRuns == c.Runs {
		return fmt.Sprintf("%-10s %-13s inf (all %d runs lost liveness)", c.System, c.Fault, c.Runs)
	}
	return fmt.Sprintf("%-10s %-13s score=%.2f±%.2f (inf %d/%d, benefit %d/%d)",
		c.System, c.Fault, c.MeanScore, c.ScoreStddev,
		c.InfiniteRuns, c.Runs, c.BenefitRuns, c.Runs)
}

// SuiteResult is the complete sweep outcome.
type SuiteResult struct {
	Cells []*Cell `json:"cells"`
}

// Cell returns the aggregation for a (system, fault) pair, or nil.
func (r *SuiteResult) Cell(system string, fault FaultKind) *Cell {
	for _, c := range r.Cells {
		if c.System == system && c.Fault == fault.String() {
			return c
		}
	}
	return nil
}

// WriteJSON writes the suite result as indented JSON.
func (r *SuiteResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunSuite executes the sweep. Cells are ordered by system, then fault;
// seeds vary fastest. Any run error aborts the suite.
//
// The (system, fault, seed) runs execute concurrently on the campaign
// worker pool (cfg.Workers goroutines); aggregation happens afterwards in
// the fixed cell order, so the output is deterministic regardless of the
// worker count.
func RunSuite(cfg SuiteConfig) (*SuiteResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Systems) == 0 {
		return nil, fmt.Errorf("core: suite needs at least one system")
	}

	type job struct {
		sys   chain.System
		fault FaultKind
		seed  int64
	}
	var jobs []job
	for _, sys := range cfg.Systems {
		for _, fault := range cfg.Faults {
			for _, seed := range cfg.Seeds {
				jobs = append(jobs, job{sys, fault, seed})
			}
		}
	}

	// Fan the independent runs out; the first failure cancels the rest.
	cmps := make([]*Comparison, len(jobs))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := pool.ForEach(ctx, len(jobs), cfg.Workers, func(i int) error {
		j := jobs[i]
		runCfg := cfg.Base
		runCfg.System = j.sys
		runCfg.Seed = j.seed
		runCfg.Fault.Kind = j.fault
		cmp, err := Compare(runCfg)
		if err != nil {
			cancel()
			return fmt.Errorf("suite %s/%v seed %d: %w", j.sys.Name(), j.fault, j.seed, err)
		}
		cmps[i] = cmp
		return nil
	})
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}

	result := &SuiteResult{}
	next := 0
	for _, sys := range cfg.Systems {
		for _, fault := range cfg.Faults {
			cell := &Cell{System: sys.Name(), Fault: fault.String()}
			var recoverySum time.Duration
			for range cfg.Seeds {
				cmp := cmps[next]
				next++
				cell.Runs++
				if cmp.Score.Infinite {
					cell.InfiniteRuns++
				} else {
					cell.Scores = append(cell.Scores, cmp.Score.Value)
				}
				if cmp.Score.Benefit {
					cell.BenefitRuns++
				}
				if cmp.Recovered {
					cell.RecoveredRuns++
					recoverySum += cmp.RecoveryTime
				}
			}
			if len(cell.Scores) > 0 {
				var sum float64
				for _, s := range cell.Scores {
					sum += s
				}
				cell.MeanScore = sum / float64(len(cell.Scores))
				var varsum float64
				for _, s := range cell.Scores {
					varsum += (s - cell.MeanScore) * (s - cell.MeanScore)
				}
				cell.ScoreStddev = math.Sqrt(varsum / float64(len(cell.Scores)))
			}
			if cell.RecoveredRuns > 0 {
				cell.MeanRecoverySec = recoverySum.Seconds() / float64(cell.RecoveredRuns)
			}
			result.Cells = append(result.Cells, cell)
		}
	}
	return result, nil
}
