// Package core implements STABL itself: it deploys a blockchain model on the
// simulated network, drives the DIABLO-style constant workload against it,
// injects faults through observer processes, and computes the sensitivity
// score between a baseline and an altered run (STABL §3).
package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"stabl/internal/chain"
	"stabl/internal/client"
	"stabl/internal/metrics"
	"stabl/internal/observer"
	"stabl/internal/overlay"
	"stabl/internal/parsim"
	"stabl/internal/scenario"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
	"stabl/internal/stats"
	"stabl/internal/workload"
)

// FaultKind selects the adversarial environment of an experiment.
type FaultKind int

// Fault kinds, mirroring the paper's four dependability attributes. The zero
// value is the fault-free baseline.
const (
	// FaultNone runs the fault-free baseline.
	FaultNone FaultKind = iota
	// FaultCrash permanently kills Count nodes at InjectAt (§4).
	FaultCrash
	// FaultTransient kills Count nodes at InjectAt and reboots them at
	// RecoverAt (§5).
	FaultTransient
	// FaultPartition isolates Count nodes from the rest between InjectAt
	// and RecoverAt (§6).
	FaultPartition
	// FaultSecureClient injects no failures but makes every client
	// submit to t+1 validators and wait for all their answers (§7).
	FaultSecureClient
	// FaultSlow injects transient communication delays: between InjectAt
	// and RecoverAt every message to or from the Count affected nodes is
	// delayed by SlowBy (tc-netem style). The paper observed that such
	// delays crash all Solana nodes (§2) and that Avalanche "stops
	// working when some messages arrive 2 minutes late" (§5).
	FaultSlow
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultTransient:
		return "transient"
	case FaultPartition:
		return "partition"
	case FaultSecureClient:
		return "secure-client"
	case FaultSlow:
		return "slow"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultPlan describes the altered environment.
type FaultPlan struct {
	Kind FaultKind
	// Count is f, the number of affected nodes; ignored for
	// FaultSecureClient. Zero means "chain tolerance + delta", see
	// Config.
	Count int
	// InjectAt is when the failure starts.
	InjectAt time.Duration
	// RecoverAt is when transient failures recover / partitions heal.
	RecoverAt time.Duration
	// SlowBy is the injected per-interface delay for FaultSlow; defaults
	// to 30 seconds.
	SlowBy time.Duration
}

// Config describes one run. The defaults mirror the paper's settings: 10
// validator nodes, 5 clients at 40 tx/s each (200 TPS total), 400 virtual
// seconds, faults injected at 133 s on the 5 nodes without clients and
// recovered at 266 s.
type Config struct {
	System            chain.System
	Seed              int64
	Validators        int
	Clients           int
	RatePerClient     float64
	AccountsPerClient int
	Duration          time.Duration
	// Flows, when positive, replaces the Clients individual load clients
	// with this many aggregated flow generators (see workload.Flow):
	// Clients then counts *modeled* clients — it may exceed Validators
	// and reach into the millions — while the deployment carries one
	// network endpoint and one event loop per flow. Zero keeps the
	// classic one-endpoint-per-client deployment.
	Flows int
	// FlowAccounts caps each flow's folded sender-account set. Zero
	// disables folding (every modeled client owns AccountsPerClient
	// distinct accounts, the exact classic layout); a positive cap folds
	// the modeled clients onto at most this many accounts per flow, so
	// ledger and genesis state stay bounded at any client count. Only
	// meaningful with Flows > 0.
	FlowAccounts int
	// CommitteeSize, when positive, runs consensus on stake-weighted
	// sortition committees of this size (internal/committee) instead of
	// the full validator set, making per-round protocol work O(committee)
	// rather than O(n). Requires a System that supports committees
	// (currently Algorand). Zero keeps full-membership consensus.
	CommitteeSize int
	// Overlay, when enabled (non-empty Topology), routes every validator
	// broadcast over a structured gossip overlay (internal/overlay) instead
	// of the legacy full mesh: kadcast broadcast trees, ring-with-shortcuts
	// or random regular graphs, with duplicate suppression and stall
	// detection. All validator-to-validator traffic — relays, replies, pull
	// gossip, Snowball samples — stays on overlay edges, so per-tx
	// dissemination costs O(fanout·log n) origin sends instead of O(n). The
	// zero value keeps the legacy mesh, byte-identical to builds that never
	// construct an overlay.
	Overlay overlay.Config
	// DisableConnLayer skips the managed TCP-like connection layer, whose
	// per-pair state and heartbeats cost O(Validators^2) — prohibitive at
	// 10k nodes. Without it, links are always up: partition/crash faults
	// still apply (they gate sends directly), but reconnect dynamics
	// disappear. ROADMAP item 2 (sparse overlays) is the structural fix.
	DisableConnLayer bool
	// Fanout is how many validators each client submits to (1 = the
	// default SDK; Tolerance+1 = the secure client).
	Fanout int
	// Profile shapes every client's send rate over time (nil =
	// constant, the paper's workload).
	Profile    workload.Profile
	RetryAfter time.Duration
	MaxRetries int
	Latency    simnet.LatencyModel
	Fault      FaultPlan
	// Scenario, when set, replaces the single-fault plan with a composed
	// multi-phase fault timeline (crash/partition/slow/loss/jitter/flap
	// actions over node sets, see internal/scenario). Mutually exclusive
	// with a non-none Fault.Kind: a config may describe its adversarial
	// environment as one paper-style fault or as a scenario, never both.
	Scenario *scenario.Scenario
	// ReadRate, when positive, deploys one credence.js-style verified
	// reader per client: each issues ReadRate account reads per second
	// to Tolerance+1 validators and accepts a value only on unanimity
	// (§9 future work).
	ReadRate float64
	// TraceWriter, when set, receives one line per network lifecycle
	// event (crashes, reboots, partitions, connection churn) — the
	// transitions that decide an experiment's outcome.
	TraceWriter io.Writer
	// Metrics, when set, records the run's virtual-time instrumentation:
	// commit counters and latencies, periodic mempool/backlog gauges,
	// consensus events from the chain model and the network trace. One
	// recorder instruments exactly one run — Compare attaches it to the
	// altered run only, and BaselineConfig clears it. Recording draws no
	// randomness, so it never changes what the run measures.
	Metrics *metrics.Recorder
	// LivenessGrace: if the altered run's last commit is older than this
	// at the end of the experiment, liveness was lost and the
	// sensitivity is infinite.
	LivenessGrace time.Duration
	// Bucket is the throughput series granularity.
	Bucket time.Duration
	// SimWorkers, when positive, runs the simulation on the conservative
	// parallel kernel with this many partition queues (internal/sim's
	// EnableParallel): validators, clients and readers are spread over the
	// queues (internal/parsim) and advanced concurrently in lookahead
	// windows bounded by the latency model's static lower bound. Every
	// measured output is byte-identical to the sequential kernel at every
	// worker count — the parallel goldens enforce this — so the knob only
	// trades wall-clock time, never results. Zero (the default) keeps the
	// sequential kernel. Runs whose latency model has no positive lower
	// bound (no DelayLowerBound) fall back to sequential, as do forked
	// continuations (checkpoints snapshot the sequential layout).
	SimWorkers int
}

func (c Config) withDefaults() Config {
	if c.Validators == 0 {
		c.Validators = 10
	}
	if c.Clients == 0 {
		c.Clients = 5
	}
	if c.RatePerClient == 0 {
		c.RatePerClient = 40
	}
	if c.AccountsPerClient == 0 {
		c.AccountsPerClient = 8
	}
	if c.Duration == 0 {
		c.Duration = 400 * time.Second
	}
	if c.Fanout == 0 {
		c.Fanout = 1
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 30 * time.Second
	}
	if c.LivenessGrace == 0 {
		c.LivenessGrace = 30 * time.Second
	}
	if c.Bucket == 0 {
		c.Bucket = time.Second
	}
	if c.Fault.InjectAt == 0 {
		c.Fault.InjectAt = 133 * time.Second
	}
	if c.Fault.RecoverAt == 0 {
		c.Fault.RecoverAt = 266 * time.Second
	}
	if c.Fault.SlowBy == 0 {
		c.Fault.SlowBy = 30 * time.Second
	}
	return c
}

// Validate reports whether the materialized config (with defaults applied)
// describes a runnable experiment, without running it. The CLI's
// `stabl spec -validate` uses it to lint spec files.
func (c Config) Validate() error {
	c = c.withDefaults()
	return c.validate()
}

func (c Config) validate() error {
	if c.System == nil {
		return fmt.Errorf("core: config needs a System")
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("core: negative sim worker count %d", c.SimWorkers)
	}
	if c.Flows < 0 {
		return fmt.Errorf("core: negative flow count %d", c.Flows)
	}
	if c.Flows > c.Clients {
		return fmt.Errorf("core: %d flows cannot model only %d clients", c.Flows, c.Clients)
	}
	if c.FlowAccounts < 0 {
		return fmt.Errorf("core: negative flow account cap %d", c.FlowAccounts)
	}
	if c.FlowAccounts > 0 && c.Flows == 0 {
		return fmt.Errorf("core: flowAccounts needs flows > 0")
	}
	if c.CommitteeSize < 0 {
		return fmt.Errorf("core: negative committee size %d", c.CommitteeSize)
	}
	if err := c.Overlay.Validate(); err != nil {
		return err
	}
	if c.Overlay.Enabled() && c.Validators < 2 {
		return fmt.Errorf("core: overlay needs at least 2 validators, got %d", c.Validators)
	}
	if c.CommitteeSize > 0 {
		if _, ok := c.System.(committeeSystem); !ok {
			return fmt.Errorf("core: system %s does not support sortition committees", c.System.Name())
		}
	}
	if c.Flows == 0 && c.Clients > c.Validators {
		return fmt.Errorf("core: %d clients need at most %d validators", c.Clients, c.Validators)
	}
	if c.Scenario != nil {
		if c.Fault.Kind != FaultNone {
			return fmt.Errorf("core: config sets both Fault (%s) and Scenario (%s); they are mutually exclusive",
				c.Fault.Kind, c.Scenario.Name)
		}
		// Compiling validates node ranges and pool sizes against this
		// deployment; the result is discarded (Run compiles again).
		if _, err := c.compileScenario(); err != nil {
			return err
		}
	}
	f := c.faultCount()
	if f > c.Validators-c.clientFacing() && c.Fault.Kind.NeedsNodes() {
		return fmt.Errorf("core: %d faulty nodes but only %d validators have no client attached",
			f, c.Validators-c.clientFacing())
	}
	if c.Fanout > c.clientFacing() {
		return fmt.Errorf("core: fanout %d exceeds the %d client-facing validators", c.Fanout, c.clientFacing())
	}
	return nil
}

// committeeSystem is implemented by systems whose consensus can run on
// sortition committees (internal/committee).
type committeeSystem interface {
	SetCommitteeSize(size int)
}

// clientFacing is how many validators serve client traffic. Classically it
// is Clients (client i submits to validator i); in flow mode modeled
// clients outnumber validators, so flows spread their members across every
// validator the worst-case default fault plan (f = tolerance+1) never
// touches — keeping the pool independent of the swept fault so baseline
// and altered runs deploy identically.
func (c Config) clientFacing() int {
	if c.Flows == 0 {
		return c.Clients
	}
	p := c.Validators - (c.System.Tolerance(c.Validators) + 1)
	if p < 1 {
		p = 1
	}
	if c.Clients < p {
		p = c.Clients
	}
	return p
}

// NeedsNodes reports whether the kind affects a set of validator nodes (as
// opposed to altering only the client side, like FaultSecureClient).
func (k FaultKind) NeedsNodes() bool {
	switch k {
	case FaultCrash, FaultTransient, FaultPartition, FaultSlow:
		return true
	default:
		return false
	}
}

// Recovers reports whether the kind heals at FaultPlan.RecoverAt, making
// recovery and stabilization times meaningful.
func (k FaultKind) Recovers() bool {
	switch k {
	case FaultTransient, FaultPartition, FaultSlow:
		return true
	default:
		return false
	}
}

// faultCount resolves f for the plan: an explicit count wins; otherwise the
// paper's choice of f = t for crashes and f = t+1 for transient failures and
// partitions.
func (c Config) faultCount() int {
	if c.Fault.Count > 0 {
		return c.Fault.Count
	}
	t := c.System.Tolerance(c.Validators)
	switch c.Fault.Kind {
	case FaultCrash:
		return t
	case FaultTransient, FaultPartition, FaultSlow:
		return t + 1
	default:
		return 0
	}
}

// Network id layout. The legacy bases are used whenever they fit — the
// seed-42 goldens pin the node ids they induce — and larger deployments
// (10k validators, many flows) switch to computed collision-free bases.
const (
	clientIDBase   = 100
	readerIDBase   = 500
	observerIDBase = 1000
	primaryID      = 2000
)

// idLayout resolves the network id bases for one deployment.
type idLayout struct {
	clientBase   int
	readerBase   int
	observerBase int
	primary      int
}

// clientNodes is how many client endpoints sit on the network: individual
// clients classically, flow aggregates in flow mode.
func (c Config) clientNodes() int {
	if c.Flows > 0 {
		return c.Flows
	}
	return c.Clients
}

// layout picks the id bases: legacy constants when the deployment fits
// under them (validators below the client base, client endpoints and
// readers inside their legacy windows), else bases packed directly above
// the validator range.
func (c Config) layout() idLayout {
	n := c.clientNodes()
	if c.Validators <= clientIDBase && n <= readerIDBase-clientIDBase && c.Validators <= primaryID-observerIDBase {
		return idLayout{clientBase: clientIDBase, readerBase: readerIDBase, observerBase: observerIDBase, primary: primaryID}
	}
	cb := c.Validators
	rb := cb + n
	ob := rb + n
	return idLayout{clientBase: cb, readerBase: rb, observerBase: ob, primary: ob + c.Validators}
}

// flowSpan is one flow's slice of the modeled-client and account spaces.
type flowSpan struct {
	start    int // global index of the flow's first modeled client
	clients  int // modeled clients in this flow
	acctBase int // first folded account address owned by the flow
	accts    int // folded account count
}

// flowSpans partitions the modeled clients into contiguous per-flow ranges
// and lays their (possibly folded) account sets out contiguously from
// address zero.
func (c Config) flowSpans() []flowSpan {
	spans := make([]flowSpan, c.Flows)
	base, rem := c.Clients/c.Flows, c.Clients%c.Flows
	cs, as := 0, 0
	for i := range spans {
		k := base
		if i < rem {
			k++
		}
		a := k * c.AccountsPerClient
		if c.FlowAccounts > 0 && a > c.FlowAccounts {
			a = c.FlowAccounts
		}
		spans[i] = flowSpan{start: cs, clients: k, acctBase: as, accts: a}
		cs += k
		as += a
	}
	return spans
}

// RunResult is everything measured in one run.
type RunResult struct {
	// Latencies are client-observed commit latencies in seconds.
	Latencies []float64
	// Throughput is the chain-side unique-commit series.
	Throughput stats.TimeSeries
	// UniqueCommits is the chain-side count of distinct committed txs.
	UniqueCommits int
	// Submitted is the number of distinct transactions clients issued.
	Submitted int
	// Pending is how many never completed client-side.
	Pending int
	// LastCommitAt is the chain-side time of the final commit.
	LastCommitAt time.Duration
	// MaxHeight is the highest block applied anywhere.
	MaxHeight int
	// LivenessLost reports that commits stopped well before the end.
	LivenessLost bool
	// FaultyNodes lists the injected-fault targets.
	FaultyNodes []simnet.NodeID
	// Events counts scheduler events, a cost measure for benchmarks.
	Events uint64
	// NetStats snapshots network counters.
	NetStats simnet.Stats
	// Verified-read measurements (only when Config.ReadRate > 0).
	ReadLatencies   []float64
	Reads           int
	ReadMismatches  int
	ReadDivergences int
	// IntegrityErrors lists hash-chain violations the monitor observed
	// across the committed block sequence; always empty for a correct
	// deployment.
	IntegrityErrors []string
	// Overlay aggregates every validator router's counters; all zero when
	// the run used the legacy full mesh.
	Overlay overlay.Stats
	// Parallel-kernel measurements (zero when the run was sequential).
	// SimWindows counts lookahead windows; SimBusyWall sums every queue's
	// wall-clock execution time and SimCriticalWall each window's slowest
	// queue plus all root-event time — BusyWall/CriticalWall is the
	// speedup the partition plan would reach with enough cores.
	SimWorkers      int
	SimWindows      uint64
	SimBusyWall     time.Duration
	SimCriticalWall time.Duration
}

// Experiment is a built but not-yet-finished run: the deployed network, the
// chain nodes, the workload and the fault script, exposed in phases so a run
// can be checkpointed mid-flight and forked (see fork.go). Run composes the
// phases — Build, Start, RunUntil, Collect — exactly as a plain run does.
type Experiment struct {
	cfg        Config
	sched      *sim.Scheduler
	net        *simnet.Network
	monitor    *chain.Monitor
	rec        *metrics.Recorder
	validators []simnet.Handler
	bases      []*chain.BaseNode
	clients    []*client.Client
	gens       []*workload.Generator
	flows      []*client.FlowClient
	flowGens   []*workload.Flow
	readers    []*client.VerifiedReader
	observers  []*observer.Observer
	primary    *observer.Primary
	faulty     []simnet.NodeID
	compiled   *scenario.Compiled
	started    bool
	forkable   *snapshot.Set
}

// Run executes a single experiment run and collects its measurements.
func Run(cfg Config) (*RunResult, error) {
	e, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	e.Start()
	e.RunUntil(e.cfg.Duration)
	return e.Collect(), nil
}

// Build materializes the experiment — scheduler, network, validators,
// observers, primary, clients, readers — without scheduling the workload or
// running anything. The construction order is fixed: it determines the
// scheduler's RNG/ticker registration order, which forked continuations rely
// on.
func Build(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lay := cfg.layout()
	// Committee mode is a System-level switch: validators read it at
	// construction time, so it must be set before NewValidator runs.
	// Setting it unconditionally clears any size a previous run left on a
	// reused System value.
	if cs, ok := cfg.System.(committeeSystem); ok {
		cs.SetCommitteeSize(cfg.CommitteeSize)
	}

	sched := sim.New(cfg.Seed)
	net := simnet.New(sched, simnet.Config{Latency: cfg.Latency})
	rec := cfg.Metrics
	var tracers []simnet.Tracer
	if cfg.TraceWriter != nil {
		tracers = append(tracers, simnet.WriterTracer(cfg.TraceWriter))
	}
	if rec != nil {
		tracers = append(tracers, rec.Tracer())
	}
	switch len(tracers) {
	case 0:
	case 1:
		net.SetTracer(tracers[0])
	default:
		net.SetTracer(simnet.MultiTracer(tracers...))
	}
	monitor := chain.NewMonitor()
	if rec != nil {
		monitor.SetMetrics(rec)
	}

	// Validators.
	peers := make([]simnet.NodeID, cfg.Validators)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	genesis := genesisAccounts(cfg)
	var validators []simnet.Handler
	var bases []*chain.BaseNode
	for _, id := range peers {
		h := cfg.System.NewValidator(id, peers, monitor, genesis)
		if b, ok := h.(interface{ Base() *chain.BaseNode }); ok {
			bases = append(bases, b.Base())
		}
		validators = append(validators, h)
		net.AddNode(id, h)
	}
	if !cfg.DisableConnLayer {
		net.ManageConns(peers, cfg.System.ConnParams())
	}

	// Structured gossip overlay: one immutable topology shared read-only by
	// every validator's Router. Attached before StartAll so the routers are
	// in place when the chains' Start hooks run; the routers survive node
	// restarts (only their volatile caches clear in Reset).
	var topo *overlay.Topology
	if cfg.Overlay.Enabled() {
		if len(bases) != len(validators) {
			return nil, fmt.Errorf("core: system %s does not expose its BaseNode; overlay routing unavailable", cfg.System.Name())
		}
		var err error
		topo, err = overlay.New(cfg.Overlay, cfg.Seed, peers)
		if err != nil {
			return nil, err
		}
		for _, b := range bases {
			b.SetRelay(overlay.NewRouter(topo, b.ID))
		}
	}

	// Observers and primary (Fig 2).
	mapping := make(map[simnet.NodeID]simnet.NodeID, cfg.Validators)
	observers := make([]*observer.Observer, 0, cfg.Validators)
	for i, id := range peers {
		obsID := simnet.NodeID(lay.observerBase + i)
		obs := observer.New(id, net)
		observers = append(observers, obs)
		net.AddNode(obsID, obs)
		mapping[id] = obsID
	}
	faulty, script, compiled, err := cfg.FaultOutline()
	if err != nil {
		return nil, err
	}
	primary := observer.NewPrimary(script, mapping)
	net.AddNode(simnet.NodeID(lay.primary), primary)

	// Clients: one endpoint per individual client classically, one per
	// aggregated flow in flow mode. Workload RNG streams are registered in
	// deployment order either way.
	var clients []*client.Client
	var gens []*workload.Generator
	var flows []*client.FlowClient
	var flowGens []*workload.Flow
	var all []chain.Address
	if cfg.Flows == 0 {
		clients = make([]*client.Client, cfg.Clients)
		gens = make([]*workload.Generator, cfg.Clients)
		accountSets := workload.Accounts(cfg.Clients, cfg.AccountsPerClient)
		all = workload.AllAccounts(accountSets)
		for i := range clients {
			gen := workload.NewGenerator(uint32(i), accountSets[i], all,
				sched.RNG(fmt.Sprintf("workload/%d", i)))
			gens[i] = gen
			clients[i] = client.New(client.Config{
				Index:      uint32(i),
				Endpoints:  cfg.clientEndpoints(i),
				Rate:       cfg.RatePerClient,
				Profile:    cfg.Profile,
				Stop:       cfg.Duration,
				RetryAfter: cfg.RetryAfter,
				MaxRetries: cfg.MaxRetries,
			}, gen)
			net.AddNode(simnet.NodeID(lay.clientBase+i), clients[i])
		}
	} else {
		spans := cfg.flowSpans()
		totalAccts := 0
		for _, sp := range spans {
			totalAccts += sp.accts
		}
		all = make([]chain.Address, totalAccts)
		for i := range all {
			all[i] = chain.Address(i)
		}
		pool := make([]simnet.NodeID, cfg.clientFacing())
		for i := range pool {
			pool[i] = simnet.NodeID(i)
		}
		flows = make([]*client.FlowClient, cfg.Flows)
		flowGens = make([]*workload.Flow, cfg.Flows)
		for i, sp := range spans {
			fl, err := workload.NewFlow(uint32(sp.start), sp.clients, cfg.AccountsPerClient,
				chain.Address(sp.acctBase), sp.accts, totalAccts,
				sched.RNG(fmt.Sprintf("workload/flow/%d", i)))
			if err != nil {
				return nil, err
			}
			flowGens[i] = fl
			flows[i] = client.NewFlow(client.FlowConfig{
				Endpoints:  pool,
				Start:      sp.start,
				Fanout:     cfg.Fanout,
				Rate:       cfg.RatePerClient,
				Stop:       cfg.Duration,
				Profile:    cfg.Profile,
				RetryAfter: cfg.RetryAfter,
				MaxRetries: cfg.MaxRetries,
				// Member m's draws replay the streams of the node id the
				// classic layout would give client sp.start+m.
				VirtualBase: simnet.NodeID(lay.clientBase + sp.start),
			}, fl)
			net.AddNode(simnet.NodeID(lay.clientBase+i), flows[i])
		}
	}

	// Optional credence.js-style verified readers (§9): one per client
	// endpoint (per client classically, per flow in flow mode).
	var readers []*client.VerifiedReader
	if cfg.ReadRate > 0 {
		facing := cfg.clientFacing()
		fanout := cfg.System.Tolerance(cfg.Validators) + 1
		if fanout > facing {
			fanout = facing
		}
		for i := 0; i < cfg.clientNodes(); i++ {
			eps := make([]simnet.NodeID, fanout)
			for j := range eps {
				eps[j] = simnet.NodeID((i + j) % facing)
			}
			r := client.NewVerifiedReader(client.ReaderConfig{
				Endpoints: eps,
				Accounts:  all,
				Rate:      cfg.ReadRate,
				Stop:      cfg.Duration,
			})
			readers = append(readers, r)
			net.AddNode(simnet.NodeID(lay.readerBase+i), r)
		}
	}

	// Parallel kernel: partition the deployment and switch the scheduler,
	// network and monitor over together. Enabled last so every endpoint is
	// registered; runs whose latency model states no positive lower bound
	// stay sequential (the conservative kernel needs a lookahead).
	if cfg.SimWorkers > 0 {
		if topo != nil {
			if d := cfg.overlayLookahead(net, topo, lay, len(readers)); d > 0 {
				net.SetLookahead(d)
			}
		}
		if la := net.Lookahead(); la > 0 {
			plan := parsim.New(cfg.SimWorkers)
			vals := make([]int, cfg.Validators)
			for i := range vals {
				vals[i] = i
			}
			plan.Spread(vals)
			cls := make([]int, cfg.clientNodes())
			for i := range cls {
				cls[i] = lay.clientBase + i
			}
			plan.Spread(cls)
			if len(readers) > 0 {
				rds := make([]int, len(readers))
				for i := range rds {
					rds[i] = lay.readerBase + i
				}
				plan.Spread(rds)
			}
			// Observers and the primary go on the root queue: they reach
			// across the whole deployment and must only run at window
			// barriers. Pinning them explicitly also sizes the lane table
			// to cover every deployed id (the primary's is the largest).
			obs := make([]int, 0, cfg.Validators+1)
			for i := 0; i < cfg.Validators; i++ {
				obs = append(obs, lay.observerBase+i)
			}
			obs = append(obs, lay.primary)
			plan.Root(obs)
			table := plan.Table()
			sched.EnableParallel(table, cfg.SimWorkers, la)
			net.EnableParallel(table, cfg.SimWorkers)
			monitor.EnableParallel(sched, table, cfg.SimWorkers)
		}
	}

	return &Experiment{
		cfg:        cfg,
		sched:      sched,
		net:        net,
		monitor:    monitor,
		rec:        rec,
		validators: validators,
		bases:      bases,
		clients:    clients,
		gens:       gens,
		flows:      flows,
		flowGens:   flowGens,
		readers:    readers,
		observers:  observers,
		primary:    primary,
		faulty:     faulty,
		compiled:   compiled,
	}, nil
}

// Start annotates the recorder, schedules the periodic gauge sampler and
// starts every network handler. It must be called exactly once, before the
// first RunUntil.
func (e *Experiment) Start() {
	if e.started {
		panic("core: Experiment.Start called twice")
	}
	e.started = true
	if rec := e.rec; rec != nil {
		e.cfg.describeRun(rec, e.faulty, e.compiled)
		// Periodic gauge sampling: chain-side backlog (mempool depth),
		// client-side backlog (in-flight submissions) and chain height.
		// The sampler only reads state — no messages, no RNG — so the
		// simulation unfolds identically with or without it.
		for t := time.Duration(0); t < e.cfg.Duration; t += rec.Interval() {
			e.sched.At(t, func() {
				now := e.sched.Now()
				depth := 0
				for _, b := range e.bases {
					depth += b.Pool.Len()
				}
				pending := 0
				for _, cl := range e.clients {
					pending += cl.PendingCount()
				}
				for _, fl := range e.flows {
					pending += fl.PendingCount()
				}
				rec.Gauge(now, "mempool_depth", float64(depth))
				rec.Gauge(now, "client_pending", float64(pending))
				rec.Gauge(now, "chain_height", float64(e.monitor.MaxHeight()))
				if e.cfg.Overlay.Enabled() {
					var ost overlay.Stats
					for _, b := range e.bases {
						if r := b.Relay(); r != nil {
							ost.Add(r.Stats())
						}
					}
					rec.Gauge(now, "overlay_relayed", float64(ost.Relayed))
					rec.Gauge(now, "overlay_duplicates", float64(ost.Duplicates))
					rec.Gauge(now, "overlay_stall_skips", float64(ost.StallSkips))
				}
			})
		}
	}
	e.net.StartAll()
}

// RunUntil advances the simulation to the given virtual instant. It may be
// called repeatedly with increasing deadlines; a forked continuation resumes
// from the checkpoint instant with another RunUntil.
func (e *Experiment) RunUntil(deadline time.Duration) {
	e.sched.RunUntil(deadline)
}

// Now returns the current virtual time.
func (e *Experiment) Now() time.Duration { return e.sched.Now() }

// Config returns the experiment's materialized (default-applied) config.
func (e *Experiment) Config() Config { return e.cfg }

// Primary returns the fault-script coordinator; forked continuations steer
// onto sibling schedules through its SetScript.
func (e *Experiment) Primary() *observer.Primary { return e.primary }

// Recorder returns the metrics recorder attached to the run, nil when the
// config had none.
func (e *Experiment) Recorder() *metrics.Recorder { return e.rec }

// Compiled returns the compiled scenario timeline, nil for single-fault and
// fault-free runs.
func (e *Experiment) Compiled() *scenario.Compiled { return e.compiled }

// SetFaultTargets overrides the fault-target list reported by Collect. A
// forked continuation steered onto a sibling script (whose node sets differ)
// records the sibling's targets, exactly as a from-scratch run of that script
// would.
func (e *Experiment) SetFaultTargets(faulty []simnet.NodeID) { e.faulty = faulty }

// FirstDisrupt returns the virtual instant the first disruptive action
// fires: the compiled scenario's first phase, the fault plan's InjectAt, or
// zero when the run injects nothing (then there is nothing to fork around).
func (e *Experiment) FirstDisrupt() time.Duration {
	if e.compiled != nil {
		return e.compiled.FirstDisrupt
	}
	if e.cfg.Fault.Kind.NeedsNodes() {
		return e.cfg.Fault.InjectAt
	}
	return 0
}

// Collect assembles the run's measurements. It only reads state, so it can
// be called after every forked continuation.
func (e *Experiment) Collect() *RunResult {
	cfg := e.cfg
	res := &RunResult{
		IntegrityErrors: e.monitor.IntegrityErrors(),
		UniqueCommits:   e.monitor.UniqueCommits(),
		LastCommitAt:    e.monitor.LastCommitAt(),
		MaxHeight:       e.monitor.MaxHeight(),
		FaultyNodes:     e.faulty,
		Events:          e.sched.Fired(),
		NetStats:        e.net.Stats(),
	}
	if e.sched.Parallel() {
		ps := e.sched.ParallelStats()
		res.SimWorkers = e.sched.Workers()
		res.SimWindows = ps.Windows
		res.SimBusyWall = ps.BusyWall
		res.SimCriticalWall = ps.CriticalWall
	}
	times := make([]time.Duration, 0, e.monitor.UniqueCommits())
	for _, ev := range e.monitor.Commits() {
		times = append(times, ev.Committed)
	}
	res.Throughput = stats.Throughput(times, cfg.Bucket, cfg.Duration)
	for _, cl := range e.clients {
		res.Latencies = append(res.Latencies, cl.Latencies()...)
		res.Submitted += cl.Submitted()
		res.Pending += cl.PendingCount()
	}
	for _, fl := range e.flows {
		res.Latencies = append(res.Latencies, fl.Latencies()...)
		res.Submitted += fl.Submitted()
		res.Pending += fl.PendingCount()
	}
	for _, r := range e.readers {
		res.ReadLatencies = append(res.ReadLatencies, r.Latencies()...)
		res.Reads += r.Reads()
		res.ReadMismatches += r.Mismatches()
		res.ReadDivergences += r.Divergences()
	}
	for _, b := range e.bases {
		if r := b.Relay(); r != nil {
			res.Overlay.Add(r.Stats())
		}
	}
	res.LivenessLost = res.LastCommitAt < cfg.Duration-cfg.LivenessGrace
	return res
}

// overlayLookahead derives the tightest safe parallel horizon for an
// overlay-confined deployment: the minimum of the latency model's per-pair
// lower bounds over exactly the directed links that can carry a message —
// overlay edges between validators, client/flow and reader traffic to and
// from the validators (flow members send under virtual ids in the modeled
// clients' range, which this covers), and the control links between the
// primary and its observers. Returns 0 when the model states no positive
// per-pair bounds, leaving the model-wide Lookahead in force.
func (c Config) overlayLookahead(net *simnet.Network, topo *overlay.Topology, lay idLayout, readers int) time.Duration {
	best := time.Duration(0)
	usable := true
	consider := func(a, b simnet.NodeID) {
		if !usable {
			return
		}
		d, ok := net.PairLowerBound(a, b)
		if !ok || d <= 0 {
			usable = false
			return
		}
		if best == 0 || d < best {
			best = d
		}
	}
	pair := func(a, b simnet.NodeID) { consider(a, b); consider(b, a) }
	topo.Edges(pair)
	for i := 0; i < c.Clients && usable; i++ {
		for v := 0; v < c.Validators; v++ {
			pair(simnet.NodeID(lay.clientBase+i), simnet.NodeID(v))
		}
	}
	for i := 0; i < readers && usable; i++ {
		for v := 0; v < c.Validators; v++ {
			pair(simnet.NodeID(lay.readerBase+i), simnet.NodeID(v))
		}
	}
	for i := 0; i < c.Validators; i++ {
		pair(simnet.NodeID(lay.primary), simnet.NodeID(lay.observerBase+i))
	}
	if !usable {
		return 0
	}
	return best
}

// FaultOutline lowers the config's adversarial environment onto the
// deployment: the affected nodes and the primary's action script, plus the
// compiled timeline for scenario runs. Build uses it, and adaptive campaigns
// call it directly to compute the sibling script a forked continuation is
// steered onto.
func (c Config) FaultOutline() (faulty []simnet.NodeID, script []observer.Action, compiled *scenario.Compiled, err error) {
	c = c.withDefaults()
	faulty = c.faultyNodes()
	script = c.faultScript(faulty)
	if c.Scenario != nil {
		compiled, err = c.compileScenario()
		if err != nil {
			return nil, nil, nil, err
		}
		faulty = compiled.Affected
		script = compiled.Script
	}
	return faulty, script, compiled, nil
}

// compileScenario lowers cfg.Scenario onto this deployment. Random node
// selectors draw from a stream derived purely from (cfg.Seed, action index),
// so compiling here, in validate and in CompareWithBaseline always resolves
// the same nodes, and compiling never perturbs the simulation's own streams.
func (c Config) compileScenario() (*scenario.Compiled, error) {
	sched := sim.New(c.Seed)
	env := scenario.Env{
		Validators: c.Validators,
		Clients:    c.clientFacing(),
		RNG: func(name string) *rand.Rand {
			return sched.RNG("scenario/" + name)
		},
	}
	if c.Overlay.Enabled() {
		// Eclipse actions target each victim's overlay neighborhood. The
		// topology is a pure function of (overlay config, seed, ids), so
		// rebuilding it here resolves the same adjacency Build wires into
		// the routers.
		peers := make([]simnet.NodeID, c.Validators)
		for i := range peers {
			peers[i] = simnet.NodeID(i)
		}
		topo, err := overlay.New(c.Overlay, c.Seed, peers)
		if err != nil {
			return nil, err
		}
		env.Neighbors = topo.Neighbors
	}
	return c.Scenario.Compile(env)
}

// describeRun stamps the recorder with the run's identity and annotates the
// timeline with the fault plan's inject/recover instants — or, for scenario
// runs, with one phase annotation per compiled timeline step.
func (c Config) describeRun(rec *metrics.Recorder, faulty []simnet.NodeID, compiled *scenario.Compiled) {
	info, evs := c.runAnnotations(faulty, compiled)
	rec.SetRun(info)
	for _, ev := range evs {
		rec.AddEvent(ev)
	}
}

// runAnnotations derives the recorder's run identity and head annotation
// events for this config. The derivation is pure, so a cloned recorder can
// be re-stamped for a sibling config (see RestampRun).
func (c Config) runAnnotations(faulty []simnet.NodeID, compiled *scenario.Compiled) (metrics.RunInfo, []metrics.Event) {
	info := metrics.RunInfo{
		System:     c.System.Name(),
		Seed:       c.Seed,
		Fault:      c.Fault.Kind.String(),
		Validators: c.Validators,
		Clients:    c.Clients,
		Duration:   c.Duration,
	}
	var evs []metrics.Event
	if compiled != nil {
		info.Fault = "scenario:" + c.Scenario.Name
		info.InjectAt = compiled.FirstDisrupt
		info.RecoverAt = compiled.LastRevert
		for _, ph := range compiled.Phases {
			evs = append(evs, metrics.Event{
				At: ph.At, Kind: metrics.EventPhase,
				Node: -1, Round: -1, Leader: -1, Detail: ph.Label,
			})
		}
		if compiled.FirstDisrupt > 0 {
			evs = append(evs, metrics.Event{
				At: compiled.FirstDisrupt, Kind: metrics.EventFaultInject,
				Node: -1, Round: -1, Leader: -1,
				Detail: fmt.Sprintf("scenario %s f=%d", c.Scenario.Name, len(faulty)),
			})
		}
		if compiled.LastRevert > 0 {
			evs = append(evs, metrics.Event{
				At: compiled.LastRevert, Kind: metrics.EventFaultRecover,
				Node: -1, Round: -1, Leader: -1,
				Detail: fmt.Sprintf("scenario %s last revert", c.Scenario.Name),
			})
		}
		return info, evs
	}
	if c.Fault.Kind.NeedsNodes() {
		info.InjectAt = c.Fault.InjectAt
	}
	if c.Fault.Kind.Recovers() {
		info.RecoverAt = c.Fault.RecoverAt
	}
	if c.Fault.Kind.NeedsNodes() {
		detail := fmt.Sprintf("%s f=%d", c.Fault.Kind, len(faulty))
		evs = append(evs, metrics.Event{
			At: c.Fault.InjectAt, Kind: metrics.EventFaultInject,
			Node: -1, Round: -1, Leader: -1, Detail: detail,
		})
		if c.Fault.Kind.Recovers() {
			evs = append(evs, metrics.Event{
				At: c.Fault.RecoverAt, Kind: metrics.EventFaultRecover,
				Node: -1, Round: -1, Leader: -1, Detail: detail,
			})
		}
	}
	return info, evs
}

// RestampRun rewrites the run-identity annotations a family representative's
// describeRun left on a cloned recorder with the steered member's own, so an
// adaptive campaign's per-cell metrics dump is byte-identical to a
// from-scratch run of that member. The representative and the member share
// the annotation shape (same fault kind or scenario, same instants), so the
// replacement is positional.
func RestampRun(rec *metrics.Recorder, cfg Config, faulty []simnet.NodeID, compiled *scenario.Compiled) {
	cfg = cfg.withDefaults()
	info, evs := cfg.runAnnotations(faulty, compiled)
	rec.SetRun(info)
	rec.ReplaceHeadEvents(len(evs), evs)
}

// genesisAccounts funds every workload account generously so transfers never
// fail for lack of balance.
func genesisAccounts(cfg Config) []chain.GenesisAccount {
	total := cfg.Clients * cfg.AccountsPerClient
	if cfg.Flows > 0 {
		// Flow mode funds the folded account layout, so genesis (and every
		// validator's ledger) stays bounded regardless of modeled clients.
		total = 0
		for _, sp := range cfg.flowSpans() {
			total += sp.accts
		}
	}
	out := make([]chain.GenesisAccount, total)
	for i := range out {
		out[i] = chain.GenesisAccount{Addr: chain.Address(i), Balance: 1 << 40}
	}
	return out
}

// faultyNodes picks the f fault targets from the validators that serve no
// clients, exactly as the paper deploys ("faulty nodes never receive
// transactions they would otherwise lose").
func (c Config) faultyNodes() []simnet.NodeID {
	f := c.faultCount()
	if !c.Fault.Kind.NeedsNodes() || f == 0 {
		return nil
	}
	out := make([]simnet.NodeID, 0, f)
	for i := c.Validators - 1; i >= 0 && len(out) < f; i-- {
		out = append(out, simnet.NodeID(i))
	}
	return out
}

// clientEndpoints maps client i to its Fanout validators among the
// client-facing ones.
func (c Config) clientEndpoints(i int) []simnet.NodeID {
	eps := make([]simnet.NodeID, c.Fanout)
	for j := range eps {
		eps[j] = simnet.NodeID((i + j) % c.Clients)
	}
	return eps
}

// faultScript translates the plan into primary actions.
func (c Config) faultScript(faulty []simnet.NodeID) []observer.Action {
	switch c.Fault.Kind {
	case FaultCrash:
		return []observer.Action{{At: c.Fault.InjectAt, Kill: faulty}}
	case FaultTransient:
		return []observer.Action{
			{At: c.Fault.InjectAt, Kill: faulty},
			{At: c.Fault.RecoverAt, Reboot: faulty},
		}
	case FaultPartition:
		others := make([]simnet.NodeID, 0, c.Validators-len(faulty))
		isFaulty := make(map[simnet.NodeID]bool, len(faulty))
		for _, id := range faulty {
			isFaulty[id] = true
		}
		for i := 0; i < c.Validators; i++ {
			if !isFaulty[simnet.NodeID(i)] {
				others = append(others, simnet.NodeID(i))
			}
		}
		return []observer.Action{
			{At: c.Fault.InjectAt, PartitionA: faulty, PartitionB: others},
			{At: c.Fault.RecoverAt, Heal: faulty},
		}
	case FaultSlow:
		return []observer.Action{
			{At: c.Fault.InjectAt, Slow: faulty, SlowBy: c.Fault.SlowBy},
			{At: c.Fault.RecoverAt, Fast: faulty},
		}
	default:
		return nil
	}
}
