package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stabl/internal/chain"
)

func stubResolver(name string) (chain.System, error) {
	return &stubSystem{name: name}, nil
}

func TestParseSpecFullRoundTrip(t *testing.T) {
	in := `{
		"system": "Redbelly",
		"seed": 7,
		"validators": 12,
		"clients": 6,
		"ratePerClient": 25,
		"durationSec": 120,
		"fanout": 2,
		"readRate": 1.5,
		"fault": {"kind": "transient", "injectSec": 40, "recoverSec": 80},
		"profile": {"kind": "burst", "periodSec": 30, "burstSec": 5, "factor": 3}
	}`
	spec, err := ParseSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config(stubResolver)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.System.Name() != "Redbelly" || cfg.Seed != 7 || cfg.Validators != 12 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Duration != 120*time.Second || cfg.Fault.Kind != FaultTransient {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Fault.InjectAt != 40*time.Second || cfg.Fault.RecoverAt != 80*time.Second {
		t.Fatalf("fault = %+v", cfg.Fault)
	}
	if cfg.Profile == nil {
		t.Fatal("profile not built")
	}
	if got := cfg.Profile(2 * time.Second); got != 3 {
		t.Fatalf("profile(2s) = %v, want burst factor", got)
	}
	if got := cfg.Profile(20 * time.Second); got != 1 {
		t.Fatalf("profile(20s) = %v", got)
	}
	// And the config actually runs.
	cfg.Duration = 20 * time.Second
	cfg.Fault = FaultPlan{}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader(`{"system": "X", "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestSpecRejectsUnknownFaultAndProfile(t *testing.T) {
	spec := Spec{System: "X", Fault: FaultSpec{Kind: "meteor"}}
	if _, err := spec.Config(stubResolver); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	spec = Spec{System: "X", Profile: &ProfileSpec{Kind: "square"}}
	if _, err := spec.Config(stubResolver); err == nil {
		t.Fatal("unknown profile kind accepted")
	}
}

func TestSpecProfileKinds(t *testing.T) {
	for _, kind := range []string{"", "constant", "ramp", "sine"} {
		p := ProfileSpec{Kind: kind, From: 1, To: 2, RampSec: 10, Amplitude: 0.5, PeriodSec: 60}
		profile, err := p.build()
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		if profile(0) < 0 {
			t.Fatalf("%q: negative multiplier", kind)
		}
	}
}

func TestSpecWriteJSONRoundTrip(t *testing.T) {
	spec := Spec{System: "Aptos", Seed: 3, DurationSec: 60, Fault: FaultSpec{Kind: "crash", InjectSec: 20}}
	var buf bytes.Buffer
	if err := spec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Fatalf("round trip: %+v vs %+v", back, spec)
	}
}
