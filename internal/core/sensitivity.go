package core

import (
	"fmt"
	"time"

	"stabl/internal/chain"
	"stabl/internal/stats"
)

// ResourceScaler is implemented by systems whose validators can be deployed
// on larger machines. STABL's Byzantine-node-tolerance experiment runs every
// chain on VMs with twice the resources (8 vCPU / 16 GB) to absorb the
// redundant load of the secure client (§3, §7).
type ResourceScaler interface {
	WithResources(scale float64) chain.System
}

// SecureResourceScale is the paper's resource bump for the secure-client
// experiment.
const SecureResourceScale = 2.0

// Comparison is the outcome of a baseline-vs-altered sensitivity
// measurement.
type Comparison struct {
	System string
	Fault  FaultPlan
	// Scenario names the composed fault timeline when the altered run was
	// a scenario experiment instead of a single-fault plan.
	Scenario string
	Baseline *RunResult
	Altered  *RunResult
	// Score is the sensitivity score of §3; Infinite when the altered
	// run lost liveness.
	Score stats.Score
	// Recovered / RecoveryTime report how quickly throughput returned to
	// a sustained fraction of the baseline after RecoverAt (only
	// meaningful for recovering faults, and for scenarios that revert at
	// least one disruption — RecoveryMeasured tells the latter apart from
	// scenarios that never heal).
	Recovered        bool
	RecoveryTime     time.Duration
	RecoveryMeasured bool
}

// SensitivityGridStep is the eCDF grid step in seconds used for the score.
// 100 ms resolves the sub-second latency shifts of the secure-client
// experiment while keeping the score scale readable.
const SensitivityGridStep = 0.1

// Recovery detection parameters: a window of RecoveryWindow buckets must
// sustain RecoveryFraction of the baseline steady rate. The campaign engine
// reuses them so its stabilization metric agrees with Compare's recovery
// metric.
const (
	RecoveryWindow   = 5
	RecoveryFraction = 0.7
)

// BaselineConfig returns the fault-free counterpart of cfg: the same
// deployment, no injected failure and the default single-endpoint client.
// The baseline is independent of cfg.Fault, so campaigns compute it once per
// (system, seed) and share it across every fault cell via
// CompareWithBaseline.
func BaselineConfig(cfg Config) Config {
	cfg = cfg.withDefaults()
	cfg.Fault = FaultPlan{Kind: FaultNone}
	cfg.Scenario = nil
	cfg.Fanout = 1
	// A recorder instruments one run; the altered run keeps it, the
	// baseline must not write into the same one.
	cfg.Metrics = nil
	return cfg
}

// SteadyStateRate is the baseline reference rate used for recovery and
// stabilization detection: the mean rate over the second half of the
// pre-fault phase, skipping at most the first 60 s of warm-up.
func SteadyStateRate(baseline *RunResult, injectAt time.Duration) float64 {
	warmup := injectAt / 2
	if warmup > 60*time.Second {
		warmup = 60 * time.Second
	}
	return baseline.Throughput.MeanRate(warmup, injectAt)
}

// Compare runs the baseline and the altered environment described by
// cfg.Fault (or cfg.Scenario) and computes the sensitivity score.
func Compare(cfg Config) (*Comparison, error) {
	cfg = cfg.withDefaults()
	if cfg.System == nil {
		return nil, fmt.Errorf("core: config needs a System")
	}
	baseline, err := Run(BaselineConfig(cfg))
	if err != nil {
		return nil, fmt.Errorf("baseline run: %w", err)
	}
	return CompareWithBaseline(cfg, baseline)
}

// CompareWithBaseline runs only the altered environment described by
// cfg.Fault or cfg.Scenario and scores it against a precomputed baseline
// run, which must come from BaselineConfig(cfg) (same deployment, same
// seed).
func CompareWithBaseline(cfg Config, baseline *RunResult) (*Comparison, error) {
	cfg = cfg.withDefaults()
	if cfg.System == nil {
		return nil, fmt.Errorf("core: config needs a System")
	}

	// The secure client submits to t+1 validators; the paper also doubles
	// VM resources for this experiment on every chain.
	altered, err := Run(AlteredConfig(cfg))
	if err != nil {
		return nil, fmt.Errorf("altered run: %w", err)
	}
	return ScoreWithBaseline(cfg, baseline, altered)
}

// AlteredConfig returns the config of the altered run Compare would execute
// for cfg: identical except for the secure-client experiment, whose clients
// fan out to t+1 validators on doubled resources. Adaptive campaigns build
// the altered experiment themselves and need the same derivation.
func AlteredConfig(cfg Config) Config {
	cfg = cfg.withDefaults()
	if cfg.Fault.Kind == FaultSecureClient {
		cfg.Fanout = cfg.System.Tolerance(cfg.Validators) + 1
		if facing := cfg.clientFacing(); cfg.Fanout > facing {
			cfg.Fanout = facing
		}
		if scaler, ok := cfg.System.(ResourceScaler); ok {
			cfg.System = scaler.WithResources(SecureResourceScale)
		}
	}
	return cfg
}

// ScoreWithBaseline computes the sensitivity comparison from an
// already-collected altered run. CompareWithBaseline is Run + this; adaptive
// campaigns call it directly with results collected from forked
// continuations.
func ScoreWithBaseline(cfg Config, baseline, altered *RunResult) (*Comparison, error) {
	cfg = cfg.withDefaults()
	cmp := &Comparison{
		System:   cfg.System.Name(),
		Fault:    cfg.Fault,
		Baseline: baseline,
		Altered:  altered,
	}
	if cfg.Scenario != nil {
		cmp.Scenario = cfg.Scenario.Name
	}
	cmp.Score = stats.Sensitivity(baseline.Latencies, altered.Latencies, SensitivityGridStep)
	if altered.LivenessLost {
		cmp.Score.Infinite = true
	}
	switch {
	case cfg.Scenario != nil:
		// Recovery for scenarios is measured from the last instant any
		// disruption is reverted, against the steady rate before the first
		// one hit. Compiling here replays the exact node selection of the
		// altered run: the derivation is pure, keyed only on (seed, action).
		compiled, err := cfg.compileScenario()
		if err != nil {
			return nil, err
		}
		if compiled.LastRevert > 0 {
			ref := SteadyStateRate(baseline, compiled.FirstDisrupt)
			cmp.RecoveryTime, cmp.Recovered = altered.Throughput.RecoveryTime(
				compiled.LastRevert, ref, RecoveryFraction, RecoveryWindow)
			cmp.RecoveryMeasured = true
		}
	case cfg.Fault.Kind.Recovers():
		ref := SteadyStateRate(baseline, cfg.Fault.InjectAt)
		cmp.RecoveryTime, cmp.Recovered = altered.Throughput.RecoveryTime(
			cfg.Fault.RecoverAt, ref, RecoveryFraction, RecoveryWindow)
		cmp.RecoveryMeasured = true
	}
	return cmp, nil
}

// String renders a comparison as one row of Fig 3.
func (c *Comparison) String() string {
	rec := ""
	if c.Fault.Kind.Recovers() || c.RecoveryMeasured {
		if c.Recovered {
			rec = fmt.Sprintf(" recovery=%.0fs", c.RecoveryTime.Seconds())
		} else {
			rec = " recovery=never"
		}
	}
	env := c.Fault.Kind.String()
	if c.Scenario != "" {
		env = "scenario:" + c.Scenario
	}
	return fmt.Sprintf("%-10s %-13s score=%s%s", c.System, env, c.Score, rec)
}
