package core

import (
	"encoding/json"
	"io"
	"time"

	"stabl/internal/stats"
)

// RunReport is the JSON-friendly digest of one run: summaries instead of
// raw samples, so reports stay small enough for CI artifacts.
type RunReport struct {
	Latency        stats.Summary `json:"latency"`
	ThroughputMean float64       `json:"throughputMeanTps"`
	UniqueCommits  int           `json:"uniqueCommits"`
	Submitted      int           `json:"submitted"`
	Pending        int           `json:"pending"`
	LastCommitSec  float64       `json:"lastCommitSec"`
	LivenessLost   bool          `json:"livenessLost"`
	MaxHeight      int           `json:"maxHeight"`
}

// NewRunReport digests a RunResult.
func NewRunReport(res *RunResult) RunReport {
	total := time.Duration(len(res.Throughput.Counts)) * res.Throughput.Bucket
	return RunReport{
		Latency:        stats.Summarize(res.Latencies),
		ThroughputMean: res.Throughput.MeanRate(0, total),
		UniqueCommits:  res.UniqueCommits,
		Submitted:      res.Submitted,
		Pending:        res.Pending,
		LastCommitSec:  res.LastCommitAt.Seconds(),
		LivenessLost:   res.LivenessLost,
		MaxHeight:      res.MaxHeight,
	}
}

// Report is the JSON-friendly digest of a sensitivity comparison, the unit
// STABL emits into a CI pipeline.
type Report struct {
	System string `json:"system"`
	Fault  string `json:"fault"`
	// Scenario names the composed fault timeline for scenario runs (Fault
	// is "none" then).
	Scenario    string    `json:"scenario,omitempty"`
	Score       float64   `json:"score"`
	Infinite    bool      `json:"infinite"`
	Benefit     bool      `json:"benefit"`
	KSDistance  float64   `json:"ksDistance"`
	Recovered   bool      `json:"recovered,omitempty"`
	RecoverySec float64   `json:"recoverySec,omitempty"`
	Baseline    RunReport `json:"baseline"`
	Altered     RunReport `json:"altered"`
}

// NewReport digests a Comparison.
func NewReport(cmp *Comparison) Report {
	return Report{
		System:      cmp.System,
		Fault:       cmp.Fault.Kind.String(),
		Scenario:    cmp.Scenario,
		Score:       cmp.Score.Value,
		Infinite:    cmp.Score.Infinite,
		Benefit:     cmp.Score.Benefit,
		KSDistance:  stats.KolmogorovSmirnov(cmp.Baseline.Latencies, cmp.Altered.Latencies),
		Recovered:   cmp.Recovered,
		RecoverySec: cmp.RecoveryTime.Seconds(),
		Baseline:    NewRunReport(cmp.Baseline),
		Altered:     NewRunReport(cmp.Altered),
	}
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
