package parsim

import "testing"

// TestSpreadRoundRobin pins the assignment function: ids go 1,2,...,W,1,2,...
// in registration order, with the cursor shared across calls.
func TestSpreadRoundRobin(t *testing.T) {
	p := New(4)
	p.Spread([]int{0, 1, 2, 3, 4, 5})
	p.Spread([]int{10, 11})
	want := map[int]int32{0: 1, 1: 2, 2: 3, 3: 4, 4: 1, 5: 2, 10: 3, 11: 4}
	for id, q := range want {
		if got := p.QueueOf(id); got != q {
			t.Errorf("QueueOf(%d) = %d, want %d", id, got, q)
		}
	}
}

// TestRootAndUnassigned: explicit root pins and never-assigned ids both
// resolve to queue 0.
func TestRootAndUnassigned(t *testing.T) {
	p := New(2)
	p.Spread([]int{1, 2})
	p.Root([]int{3})
	for _, id := range []int{0, 3, 999} {
		if got := p.QueueOf(id); got != 0 {
			t.Errorf("QueueOf(%d) = %d, want root (0)", id, got)
		}
	}
	if got := p.QueueOf(-5); got != 0 {
		t.Errorf("QueueOf(-5) = %d, want root (0)", got)
	}
}

// TestDeterministicTable: two identically-built plans produce identical
// tables, and the table covers exactly the highest assigned id.
func TestDeterministicTable(t *testing.T) {
	build := func() *Plan {
		p := New(3)
		p.Spread([]int{5, 0, 7})
		p.Root([]int{2})
		return p
	}
	a, b := build().Table(), build().Table()
	if len(a) != len(b) {
		t.Fatalf("table lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tables differ at id %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) < 8 {
		t.Fatalf("table of length %d does not cover id 7", len(a))
	}
}

// TestBalancedLoad: spreading n ids over w queues leaves every queue within
// one id of every other.
func TestBalancedLoad(t *testing.T) {
	p := New(8)
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = i
	}
	p.Spread(ids)
	counts := make(map[int32]int)
	for _, id := range ids {
		counts[p.QueueOf(id)]++
	}
	if len(counts) != 8 {
		t.Fatalf("ids landed on %d queues, want 8", len(counts))
	}
	lo, hi := 1<<30, 0
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("imbalanced plan: queue loads range %d..%d", lo, hi)
	}
}
