// Package parsim plans the partitioning of a simulated deployment onto the
// parallel event kernel's queues (see internal/sim's EnableParallel).
//
// A plan maps every node id (a scheduler lane) to one of `workers` partition
// queues, or to the root queue for cross-cutting actors. The assignment is a
// pure function of the ids and the order they are registered in, never of
// map iteration or timing, so the same deployment always yields the same
// plan — a precondition for the kernel's byte-identical-output guarantee,
// though not the mechanism (event keys are partition-independent; the plan
// only decides how much parallelism each window can exploit).
package parsim

// Plan maps node ids to partition queues.
type Plan struct {
	workers int
	queue   []int32 // id -> queue, grown on demand; 0 = root
	next    int     // round-robin cursor, shared across Spread calls
}

// New returns an empty plan over the given number of partition queues.
// workers must be at least 1.
func New(workers int) *Plan {
	if workers < 1 {
		panic("parsim: a plan needs at least one partition queue")
	}
	return &Plan{workers: workers}
}

// Workers returns the partition queue count.
func (p *Plan) Workers() int { return p.workers }

// Spread assigns ids round-robin across the partition queues 1..workers, in
// the order given. A single shared cursor runs across Spread calls, so
// successive role groups (validators, then clients, then readers) interleave
// instead of stacking the tail group onto the first queues.
func (p *Plan) Spread(ids []int) {
	for _, id := range ids {
		p.assign(id, int32(1+p.next%p.workers))
		p.next++
	}
}

// Root pins ids to the root queue: actors that touch arbitrary nodes
// (observers, fault injectors) and must only ever run at window barriers.
func (p *Plan) Root(ids []int) {
	for _, id := range ids {
		p.assign(id, 0)
	}
}

func (p *Plan) assign(id int, q int32) {
	if id < 0 {
		panic("parsim: negative node id")
	}
	if id >= len(p.queue) {
		grown := make([]int32, max(id+1, 2*len(p.queue)))
		copy(grown, p.queue)
		p.queue = grown
	}
	p.queue[id] = q
}

// QueueOf returns the queue planned for id (0 — the root queue — when the
// id was never assigned).
func (p *Plan) QueueOf(id int) int32 {
	if id < 0 || id >= len(p.queue) {
		return 0
	}
	return p.queue[id]
}

// Table returns the dense id->queue table in the form sim.EnableParallel
// and simnet.EnableParallel consume. The table is the plan's backing store;
// callers must not mutate it.
func (p *Plan) Table() []int32 { return p.queue }
