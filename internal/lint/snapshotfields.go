package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotFields verifies Snapshot/Restore completeness: for every struct
// type implementing the snapshot.Forkable shape (a Snapshot() method with
// one result and a Restore(state) method with one parameter), every mutable
// field must be referenced by both methods. A field is mutable when some
// function in the program assigns through it (x.f = v, x.f++, x.f[k] = v, a
// write through a promoted path, or &x.f escaping) after construction —
// writes inside test files, inside constructors (functions whose results
// include the type) and inside the type's own Snapshot*/Restore* methods do
// not count. "References" is deliberately weaker than "deep-copies":
// identity-preserved pointer fields (tickers, RNG streams, round-state
// pointers) are captured by storing the pointer, which still shows up as a
// field selection; what the analyzer catches is the silent killer — a field
// added to a Forkable struct, mutated by the protocol, and never seen by
// Snapshot at all, which breaks fork-vs-replay byte-identity without
// failing any golden until a scenario happens to exercise it.
//
// Deliberately-volatile fields (caches safe to lose across a fork, like the
// overlay dupemaps) opt out per field:
//
//	dupes map[string]bool //stabl:nodet snapshot-fields -- best-effort cache, rebuilt on demand
var SnapshotFields = &Analyzer{
	Name: "snapshot-fields",
	Doc:  "mutable field of a Forkable struct missed by its Snapshot or Restore method",
	Run:  runSnapshotFields,
}

func runSnapshotFields(p *Pass) {
	idx := p.Prog.Index()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				p.checkForkableType(idx, named)
			}
		}
	}
}

// checkForkableType verifies one candidate type: if it has the Forkable
// method shape and a struct underlying, every mutable field must be
// referenced by both Snapshot and Restore.
func (p *Pass) checkForkableType(idx *programIndex, named *types.Named) {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	snap := forkableMethod(named, "Snapshot", 0, 1)
	restore := forkableMethod(named, "Restore", 1, 0)
	if snap == nil || restore == nil {
		return
	}
	snapRefs := p.Prog.fieldRefs(snap, st)
	restoreRefs := p.Prog.fieldRefs(restore, st)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !p.fieldMutable(idx, named, field) {
			continue
		}
		missSnap := !snapRefs[field]
		missRestore := !restoreRefs[field]
		if !missSnap && !missRestore {
			continue
		}
		var miss string
		switch {
		case missSnap && missRestore:
			miss = "Snapshot or Restore"
		case missSnap:
			miss = "Snapshot"
		default:
			miss = "Restore"
		}
		p.Reportf(field.Pos(),
			"field %s of %s is mutated after construction but never referenced by (%s).%s; a fork silently loses its state — copy it in Snapshot and write it back in Restore, or justify with //stabl:nodet snapshot-fields",
			field.Name(), named.Obj().Name(), named.Obj().Name(), miss)
	}
}

// fieldMutable reports whether some function in the program writes through
// the field outside construction and checkpoint plumbing.
func (p *Pass) fieldMutable(idx *programIndex, named *types.Named, field *types.Var) bool {
	for _, fn := range idx.fieldWrites[field] {
		if isConstructorOf(fn, named) || p.Prog.createsType(fn, named) {
			continue
		}
		if recv := methodReceiverNamed(fn); recv == named &&
			(strings.HasPrefix(fn.Name(), "Snapshot") || strings.HasPrefix(fn.Name(), "Restore")) {
			continue
		}
		return true
	}
	return false
}

// forkableMethod returns the explicitly declared method of the given name
// and arity on named (value or pointer receiver), or nil.
func forkableMethod(named *types.Named, name string, params, results int) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != name {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if ok && sig.Params().Len() == params && sig.Results().Len() == results {
			return m
		}
	}
	return nil
}

// methodReceiverNamed returns the named receiver type of fn, nil for
// package-level functions.
func methodReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isConstructorOf reports whether fn's results include named or *named —
// the New*/build* functions whose field writes are initialization, not
// post-checkpoint mutation. Constructors that return the value behind an
// interface (NewValidator returning simnet.Handler) are caught by
// Program.createsType instead.
func isConstructorOf(fn *types.Func, named *types.Named) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if t == named.Obj().Type() {
			return true
		}
	}
	return false
}

// fieldRefs collects the fields of st referenced anywhere in the body of
// method — or of any same-package function it transitively calls (helpers
// like restoreState and copySeries). A reference through a promoted path
// credits the first-hop field, mirroring the write index.
func (prog *Program) fieldRefs(method *types.Func, st *types.Struct) map[*types.Var]bool {
	idx := prog.Index()
	refs := make(map[*types.Var]bool)
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		fd, ok := idx.decls[fn]
		if !ok {
			return
		}
		owner := idx.owner[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := owner.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if fv := firstHopField(sel); fv != nil {
						refs[fv] = true
					}
				}
			case *ast.Ident:
				if callee, ok := owner.Info.Uses[n].(*types.Func); ok && callee.Pkg() == fn.Pkg() {
					if _, declared := idx.decls[callee]; declared {
						walk(callee)
					}
				}
			}
			return true
		})
	}
	walk(method)
	// Keep only fields of st: helpers touch other structs too.
	for fv := range refs {
		found := false
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fv {
				found = true
				break
			}
		}
		if !found {
			delete(refs, fv)
		}
	}
	return refs
}
