package lint

import (
	"go/ast"
	"go/types"
)

// Wallclock flags wall-clock time access inside simulated packages. The
// simulation kernel owns time: a 400-second experiment runs in
// milliseconds, and every instant a node observes must come from the
// virtual clock (sim.Scheduler.Now, simnet.Context.Now) or the run is
// neither reproducible nor meaningfully "400 seconds" long. A package is
// simulated when it is — or directly imports — the kernel (internal/sim),
// the network (internal/simnet) or the chain layer (internal/chain); that
// closure covers the five protocols, core, scenario, client and workload
// without maintaining a package list by hand. Test files are exempt:
// harnesses may time themselves with the real clock.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock time (time.Now, Sleep, timers) inside simulated packages",
	Run:  runWallclock,
}

// wallclockFns are the time package functions that read or wait on the
// real clock. time.Duration arithmetic and constants are fine.
var wallclockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// simCorePkgs are the roots of the simulated world.
var simCorePkgs = map[string]bool{
	"stabl/internal/sim":    true,
	"stabl/internal/simnet": true,
	"stabl/internal/chain":  true,
}

func runWallclock(p *Pass) {
	if !simulatedPackage(p.Pkg) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := p.Info.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if !wallclockFns[fn.Name()] || receiverTypeName(fn) != "" {
					return true
				}
				if p.IsTestFile(n.Pos()) {
					return true
				}
				p.Reportf(n.Pos(),
					"time.%s reads the wall clock in a simulated package; use virtual time (sim.Scheduler.Now/After, simnet.Context.Now/After/Every)",
					fn.Name())
			case *ast.CompositeLit:
				// A zero time.Timer/Ticker literal is a broken timer that
				// bypasses the scheduler entirely.
				tv, ok := p.Info.Types[n]
				if !ok {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "time" {
					return true
				}
				name := named.Obj().Name()
				if (name == "Timer" || name == "Ticker") && !p.IsTestFile(n.Pos()) {
					p.Reportf(n.Pos(),
						"time.%s constructed directly in a simulated package; schedule through sim.Scheduler / simnet.Context instead",
						name)
				}
			}
			return true
		})
	}
}

// simulatedPackage reports whether pkg is part of the simulated world.
func simulatedPackage(pkg *types.Package) bool {
	if simCorePkgs[pkg.Path()] {
		return true
	}
	for _, imp := range pkg.Imports() {
		if simCorePkgs[imp.Path()] {
			return true
		}
	}
	return false
}
