package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the whole-program indexes the cross-package analyzers
// share: a call graph keyed by *types.Object (every function and method
// declaration in every local package), interface dispatch resolved over the
// set of concrete implementers in the module, a memoized taint engine over
// the order-sensitive sinks in sinks.go, reachability sets (handler-path
// code, Snapshot/Restore-path code) and a field-write index. Everything is
// derived deterministically: packages and files are walked in sorted order,
// memoization is order-independent, and descriptions pick the first match
// in source order, so diagnostics are byte-identical across runs.

type programIndex struct {
	// decls maps every function and method declared in a local package to
	// its body; owner is the package whose types.Info covers that body.
	decls map[*types.Func]*ast.FuncDecl
	owner map[*types.Func]*Package

	// named lists every named type declared in a local package, in
	// (package path, type name) order — the deterministic universe
	// interface dispatch resolves over.
	named []*types.Named

	// impl memoizes interface method → concrete implementing methods that
	// have bodies in the program, in named order.
	impl map[*types.Func][]*types.Func

	// taint memoizes sink reachability: "" = proven clean, otherwise a
	// human-readable description of the first sink reached.
	taint    map[*types.Func]string
	taintRun map[*types.Func]bool // in-progress guard for recursion cycles

	// handler marks functions reachable from a handler-shaped method (a
	// method on a type with Start/Deliver/Stop — node endpoints), i.e. code
	// that runs inside the simulation's message-delivery path.
	handler map[*types.Func]bool

	// snapPath marks functions reachable from a Snapshot*/Restore* method
	// or function — the checkpoint serialization path.
	snapPath map[*types.Func]bool

	// fieldWrites records, per struct field (keyed by the first-hop field
	// object of the written selector chain), every function that assigns
	// through it outside test files.
	fieldWrites map[*types.Var][]*types.Func

	// creates memoizes, per declared function, the set of named types it
	// instantiates via composite literal — the construction sites whose
	// follow-up field writes are initialization even when the function's
	// signature hides the concrete type behind an interface.
	creates map[*types.Func]map[*types.Named]bool
}

// Index builds (once) and returns the program's cross-package indexes.
func (prog *Program) Index() *programIndex {
	prog.indexOnce.Do(func() {
		idx := &programIndex{
			decls:       make(map[*types.Func]*ast.FuncDecl),
			owner:       make(map[*types.Func]*Package),
			impl:        make(map[*types.Func][]*types.Func),
			taint:       make(map[*types.Func]string),
			taintRun:    make(map[*types.Func]bool),
			fieldWrites: make(map[*types.Var][]*types.Func),
			creates:     make(map[*types.Func]map[*types.Named]bool),
		}
		locals := prog.Local()
		for _, pkg := range locals {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						idx.decls[obj] = fd
						idx.owner[obj] = pkg
					}
				}
			}
		}
		for _, pkg := range locals {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() { // Names() is sorted
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				if named, ok := tn.Type().(*types.Named); ok {
					idx.named = append(idx.named, named)
				}
			}
		}
		prog.index = idx
		idx.buildFieldWrites(prog, locals)
		idx.handler = prog.reachableFrom(func(fn *types.Func, fd *ast.FuncDecl) bool {
			sig, ok := fn.Type().(*types.Signature)
			return ok && sig.Recv() != nil && handlerShaped(sig.Recv().Type())
		})
		idx.snapPath = prog.reachableFrom(func(fn *types.Func, fd *ast.FuncDecl) bool {
			return strings.HasPrefix(fn.Name(), "Snapshot") || strings.HasPrefix(fn.Name(), "Restore")
		})
	})
	return prog.index
}

// implementers resolves an interface method to the concrete methods in the
// program that can stand behind it at a dynamic call site: for every named
// non-interface type implementing the interface, the method of the same
// name, when its body is in a local package.
func (prog *Program) implementers(m *types.Func) []*types.Func {
	idx := prog.index
	if impls, ok := idx.impl[m]; ok {
		return impls
	}
	impls := []*types.Func{}
	sig, ok := m.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			for _, named := range idx.named {
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					continue
				}
				ptr := types.NewPointer(named)
				if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
					continue
				}
				ms := types.NewMethodSet(ptr)
				for i := 0; i < ms.Len(); i++ {
					fn, ok := ms.At(i).Obj().(*types.Func)
					if ok && fn.Name() == m.Name() && idx.decls[fn] != nil {
						impls = append(impls, fn)
					}
				}
			}
		}
	}
	idx.impl[m] = impls
	return impls
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// taintDesc reports whether fn transitively reaches an order-sensitive sink
// (see sinks.go), either directly, through calls and method values across
// any local package, or through interface dispatch over the module's
// concrete implementers. "" means proven clean. Functions in a recursion
// cycle report through the first entry point that completes, matching the
// per-package engine this generalizes.
func (prog *Program) taintDesc(fn *types.Func) string {
	idx := prog.Index()
	if desc, ok := idx.taint[fn]; ok {
		return desc
	}
	if idx.taintRun[fn] {
		return ""
	}
	fd, ok := idx.decls[fn]
	if !ok {
		return ""
	}
	idx.taintRun[fn] = true
	desc := prog.scanForSink(fd.Body, idx.owner[fn], fn)
	delete(idx.taintRun, fn)
	idx.taint[fn] = desc
	return desc
}

// scanForSink walks body (whose identifiers resolve through owner's type
// info) in source order and returns a description of the first
// order-sensitive sink it reaches: a direct sink call, a call to (or
// reference of) a tainted function in any local package, or a dynamic call
// through an interface with a tainted implementer. self, when non-nil, is
// skipped so recursive functions do not report through themselves.
func (prog *Program) scanForSink(body ast.Node, owner *Package, self *types.Func) string {
	idx := prog.Index()
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := owner.Info.Uses[id].(*types.Func)
		if !ok || fn == self {
			return true
		}
		if desc, ok := sinkFunc(fn); ok {
			found = desc
			return false
		}
		if _, declared := idx.decls[fn]; declared {
			if desc := prog.taintDesc(fn); desc != "" {
				found = "calls " + calleeLabel(fn, owner) + ", which " + desc
				return false
			}
			return true
		}
		if isInterfaceMethod(fn) {
			for _, impl := range prog.implementers(fn) {
				if impl == self {
					continue
				}
				if desc := prog.taintDesc(impl); desc != "" {
					found = "calls " + calleeLabel(impl, owner) + " (via " +
						receiverTypeName(fn) + "." + fn.Name() + "), which " + desc
					return false
				}
			}
		}
		return true
	})
	return found
}

// calleeLabel names fn the way the source at the call site would: bare for
// package-local callees, package-qualified (and receiver-qualified for
// methods) across package boundaries.
func calleeLabel(fn *types.Func, from *Package) string {
	if fn.Pkg() == from.Types {
		return fn.Name()
	}
	if recv := receiverTypeName(fn); recv != "" {
		return fn.Pkg().Name() + "." + recv + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// reachableFrom computes the set of declared functions reachable from the
// declarations matching seed, following calls, method values and interface
// dispatch across all local packages. Marking is idempotent, so walk order
// cannot affect the resulting set.
func (prog *Program) reachableFrom(seed func(*types.Func, *ast.FuncDecl) bool) map[*types.Func]bool {
	idx := prog.index
	marked := make(map[*types.Func]bool)
	var mark func(fn *types.Func)
	mark = func(fn *types.Func) {
		if marked[fn] {
			return
		}
		marked[fn] = true
		fd, ok := idx.decls[fn]
		if !ok {
			return
		}
		owner := idx.owner[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := owner.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, declared := idx.decls[callee]; declared {
				mark(callee)
			} else if isInterfaceMethod(callee) {
				for _, impl := range prog.implementers(callee) {
					mark(impl)
				}
			}
			return true
		})
	}
	for _, pkg := range prog.Local() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && seed(fn, fd) {
					mark(fn)
				}
			}
		}
	}
	return marked
}

// buildFieldWrites scans every local package for assignments through struct
// fields (x.f = v, x.f += v, x.f++, x.f[k] = v, x.f.g = v — every field
// selection on the left-hand side's access chain counts) and records which
// function performs each write. Test-file writes are skipped: test rigs
// poke state by design.
func (idx *programIndex) buildFieldWrites(prog *Program, locals []*Package) {
	for _, pkg := range locals {
		for _, f := range pkg.Files {
			if strings.HasSuffix(prog.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						if n.Tok == token.DEFINE {
							return true
						}
						for _, lhs := range n.Lhs {
							idx.recordFieldWrites(pkg, fn, lhs)
						}
					case *ast.IncDecStmt:
						idx.recordFieldWrites(pkg, fn, n.X)
					case *ast.UnaryExpr:
						// &x.f escapes the field for arbitrary later writes.
						if n.Op == token.AND {
							idx.recordFieldWrites(pkg, fn, n.X)
						}
					}
					return true
				})
			}
		}
	}
}

// recordFieldWrites walks the written expression's access chain and records
// a write against every field selection on it, attributed to the first-hop
// field of its receiver struct (so a write through an embedded or promoted
// field counts against the outer field too).
func (idx *programIndex) recordFieldWrites(pkg *Package, fn *types.Func, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if fv := firstHopField(sel); fv != nil {
					idx.fieldWrites[fv] = append(idx.fieldWrites[fv], fn)
				}
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.TypeAssertExpr:
			lhs = e.X
		default:
			return
		}
	}
}

// createsType reports whether fn instantiates named via a composite literal
// anywhere in its body. Such a function is a constructor of named even when
// its declared results hide the concrete type behind an interface
// (NewValidator returning simnet.Handler): the writes that follow the
// literal are initialization, not post-checkpoint mutation.
func (prog *Program) createsType(fn *types.Func, named *types.Named) bool {
	idx := prog.Index()
	set, ok := idx.creates[fn]
	if !ok {
		set = make(map[*types.Named]bool)
		if fd, declared := idx.decls[fn]; declared {
			owner := idx.owner[fn]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if tv, ok := owner.Info.Types[lit]; ok {
					t := tv.Type
					if ptr, isPtr := t.(*types.Pointer); isPtr {
						t = ptr.Elem()
					}
					if nt, isNamed := t.(*types.Named); isNamed {
						set[nt] = true
					}
				}
				return true
			})
		}
		idx.creates[fn] = set
	}
	return set[named]
}

// firstHopField returns the field of the selection's receiver struct the
// access enters through: for a direct selection that is the selected field
// itself, for a promoted selection it is the embedded field.
func firstHopField(sel *types.Selection) *types.Var {
	t := sel.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	index := sel.Index()
	if len(index) == 0 || index[0] >= st.NumFields() {
		return nil
	}
	return st.Field(index[0])
}
