package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("stabl/internal/redbelly")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	imports []string // import paths of direct dependencies
}

// Program is the whole-module view one lint run analyzes: the target
// packages selected by the load patterns plus every module-local dependency,
// all parsed and type-checked through one shared FileSet and importer, so a
// *types.Func reached from two different packages is one object. That shared
// identity is what lets the cross-package indexes in callgraph.go (call
// graph, taint memo, handler-path set) span package boundaries.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // analysis targets, sorted by import path

	all map[string]*Package // every local (non-stdlib) package, by import path

	indexOnce sync.Once
	index     *programIndex
}

// Local returns every local (module or fixture) package in the program —
// targets and dependencies alike — sorted by import path.
func (prog *Program) Local() []*Package {
	paths := make([]string, 0, len(prog.all))
	for path := range prog.all {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, len(paths))
	for i, path := range paths {
		pkgs[i] = prog.all[path]
	}
	return pkgs
}

// listedPackage is the subset of `go list -deps -json` output the loader
// needs. Imports drives the local-closure walk; Standard separates stdlib
// dependencies (type-checked, but never analyzed or indexed) from module
// packages.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// loader is the process-wide load cache. `go list` is the only subprocess
// the lint engine runs, and resolving import paths through it is the slow
// step of a tree-wide pass; caching the listing (and the type-checked
// packages built from it) across Load and LoadDir calls means one `go list
// -deps -json` invocation covers an entire `stabl lint ./...` run — and the
// fixture tests, which load dozens of small programs, stop re-shelling and
// re-checking the same stdlib dependency chains per fixture. The cache is
// content-blind (it assumes sources do not change mid-process), which holds
// for every caller: lint runs are one-shot processes and test binaries
// analyze a frozen tree.
var loader struct {
	mu       sync.Mutex
	fset     *token.FileSet
	cwd      string
	listed   map[string]*listedPackage // import path → listing, deps expanded
	patterns map[string][]string       // pattern-set key → target import paths
	checked  map[string]*checkedEntry  // import path → type-check result
}

type checkedEntry struct {
	types *types.Package
	pkg   *Package // nil for stdlib packages (no ASTs retained)
	err   error
}

// resetLoaderCache drops every process-wide cache. Tests use it to compare
// cold-cache and warm-cache runs; production callers never need it.
func resetLoaderCache() {
	loader.mu.Lock()
	defer loader.mu.Unlock()
	loader.fset = nil
	loader.listed = nil
	loader.patterns = nil
	loader.checked = nil
}

func loaderInitLocked() error {
	if loader.fset == nil {
		loader.fset = token.NewFileSet()
		loader.listed = make(map[string]*listedPackage)
		loader.patterns = make(map[string][]string)
		loader.checked = make(map[string]*checkedEntry)
		cwd, err := os.Getwd()
		if err != nil {
			return err
		}
		loader.cwd = cwd
	}
	return nil
}

// Load expands the package patterns with `go list` and returns a Program
// whose targets are the matched packages. Only non-test Go files are
// analyzed: test harnesses may use wall clocks and fixed seeds without
// perturbing experiment reproducibility.
//
// The loader is stdlib-only and shells out exactly once per uncached pattern
// set: a single `go list -deps -json` resolves the targets and every
// transitive dependency (standard library included), and the loader
// type-checks them itself in dependency order. Module-local dependencies
// keep their ASTs so analyzers can follow calls across package boundaries.
func Load(patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader.mu.Lock()
	defer loader.mu.Unlock()
	if err := loaderInitLocked(); err != nil {
		return nil, err
	}
	key := strings.Join(patterns, "\x00")
	targets, ok := loader.patterns[key]
	if !ok {
		listed, err := goListDeps(patterns)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if _, dup := loader.listed[lp.ImportPath]; !dup {
				loader.listed[lp.ImportPath] = lp
			}
		}
		for _, lp := range listed {
			if !lp.DepOnly && !lp.Standard {
				targets = append(targets, lp.ImportPath)
			}
		}
		sort.Strings(targets)
		loader.patterns[key] = targets
	}
	prog := &Program{Fset: loader.fset, all: make(map[string]*Package)}
	for _, path := range targets {
		pkg, err := checkLocked(path, nil)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no Go files (e.g. a directory of subpackages only)
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	for _, pkg := range prog.Pkgs {
		prog.addLocalClosure(pkg)
	}
	return prog, nil
}

// addLocalClosure records pkg and every local package reachable from it in
// prog.all.
func (prog *Program) addLocalClosure(pkg *Package) {
	if prog.all[pkg.Path] != nil {
		return
	}
	prog.all[pkg.Path] = pkg
	for _, imp := range pkg.imports {
		if dep, ok := loader.checked[imp]; ok && dep.pkg != nil {
			prog.addLocalClosure(dep.pkg)
		}
	}
}

// LoadDir parses and type-checks every .go file in dir (including _test.go
// files) as a single package with the given import path, and returns a
// Program targeting it. It backs the fixture tests: testdata packages are
// invisible to `go list`, so they are loaded straight from their directory.
// Subdirectories of dir become importable fixture packages under
// importPath/<subdir>, which is how cross-package fixtures (a root package
// calling helpers in a sibling fixture package) are expressed.
func LoadDir(dir, importPath string) (*Program, error) {
	loader.mu.Lock()
	defer loader.mu.Unlock()
	if err := loaderInitLocked(); err != nil {
		return nil, err
	}
	// Map fixture import paths to directories: the root plus every subdir
	// with Go files.
	fixtures := map[string]string{importPath: dir}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() || path == dir {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		fixtures[importPath+"/"+filepath.ToSlash(rel)] = path
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkg, err := checkLocked(importPath, fixtures)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	prog := &Program{Fset: loader.fset, Pkgs: []*Package{pkg}, all: make(map[string]*Package)}
	prog.addLocalClosure(pkg)
	return prog, nil
}

// checkLocked type-checks the package at path (resolving and checking its
// dependencies first) and returns its local Package, or nil for standard
// library packages and file-less directories. fixtures maps fixture import
// paths to directories and is threaded through dependency resolution so
// fixture packages can import sibling fixture packages.
func checkLocked(path string, fixtures map[string]string) (*Package, error) {
	if entry, ok := loader.checked[path]; ok {
		return entry.pkg, entry.err
	}
	lp, err := resolveLocked(path, fixtures)
	if err != nil {
		return nil, err
	}
	if len(lp.GoFiles) == 0 {
		loader.checked[path] = &checkedEntry{}
		return nil, nil
	}
	local := !lp.Standard
	var files []*ast.File
	mode := parser.SkipObjectResolution
	if local {
		// Comments carry //stabl:nodet suppressions and fixture `want`
		// expectations; stdlib comments are dead weight.
		mode |= parser.ParseComments
	}
	for _, name := range lp.GoFiles {
		fpath := filepath.Join(lp.Dir, name)
		if local && loader.cwd != "" && filepath.IsAbs(fpath) {
			// Diagnostics print stable, machine-independent paths.
			if rel, err := filepath.Rel(loader.cwd, fpath); err == nil && !strings.HasPrefix(rel, "..") {
				fpath = rel
			}
		}
		f, err := parser.ParseFile(loader.fset, fpath, nil, mode)
		if err != nil {
			err = fmt.Errorf("lint: %w", err)
			loader.checked[path] = &checkedEntry{err: err}
			return nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if local {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{
		Importer:         importerFunc(func(ipath string) (*types.Package, error) { return importLocked(ipath, fixtures) }),
		FakeImportC:      true,
		IgnoreFuncBodies: !local,
	}
	tpkg, err := conf.Check(path, loader.fset, files, info)
	if err != nil {
		err = fmt.Errorf("lint: typecheck %s: %w", path, err)
		loader.checked[path] = &checkedEntry{err: err}
		return nil, err
	}
	entry := &checkedEntry{types: tpkg}
	if local {
		entry.pkg = &Package{
			Path:    path,
			Dir:     lp.Dir,
			Fset:    loader.fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			imports: lp.Imports,
		}
	}
	loader.checked[path] = entry
	return entry.pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importLocked resolves one import for the type-checker.
func importLocked(path string, fixtures map[string]string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := checkLocked(path, fixtures); err != nil {
		return nil, err
	}
	entry := loader.checked[path]
	if entry.types == nil {
		return nil, fmt.Errorf("lint: import %q has no Go files", path)
	}
	return entry.types, nil
}

// resolveLocked returns the listing for one import path, consulting the
// fixture table first, then the cached `go list` results, and only shelling
// out for paths nothing has resolved yet.
func resolveLocked(path string, fixtures map[string]string) (*listedPackage, error) {
	if dir, ok := fixtures[path]; ok {
		return listFixtureDir(path, dir)
	}
	if lp, ok := loader.listed[path]; ok {
		return lp, nil
	}
	listed, err := goListDeps([]string{path})
	if err != nil {
		return nil, err
	}
	for _, lp := range listed {
		if _, dup := loader.listed[lp.ImportPath]; !dup {
			loader.listed[lp.ImportPath] = lp
		}
	}
	lp, ok := loader.listed[path]
	if !ok {
		return nil, fmt.Errorf("lint: go list did not resolve %q", path)
	}
	return lp, nil
}

// listFixtureDir builds a listing for a fixture directory: every .go file,
// test files included, with imports scanned from the sources. Fixture
// listings are cached like go-listed ones.
func listFixtureDir(path, dir string) (*listedPackage, error) {
	if lp, ok := loader.listed[path]; ok {
		return lp, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	importSet := make(map[string]bool)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		files = append(files, e.Name())
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	sort.Strings(files)
	imports := make([]string, 0, len(importSet))
	for imp := range importSet {
		imports = append(imports, imp)
	}
	sort.Strings(imports)
	lp := &listedPackage{ImportPath: path, Dir: dir, GoFiles: files, Imports: imports}
	loader.listed[path] = lp
	return lp, nil
}

// goListDeps resolves patterns to concrete packages plus their full
// transitive dependency closure, sorted by import path for deterministic
// analysis order. CGO is disabled so the listed file sets are the pure-Go
// variants the self-hosted type-checker can handle; the module itself is
// cgo-free, so only standard-library fallbacks are affected.
func goListDeps(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	dec := json.NewDecoder(&stdout)
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	return listed, nil
}
