package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("stabl/internal/redbelly")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load expands the package patterns with `go list` and returns each matched
// package parsed and type-checked. Only non-test Go files are analyzed:
// test harnesses may use wall clocks and fixed seeds without perturbing
// experiment reproducibility, and the analyzers that do care about test
// files (none today) can see the suffix themselves.
//
// The loader is stdlib-only: `go list` resolves patterns and directories,
// go/parser parses, and go/types checks with the source importer, which
// type-checks dependencies (module-local and standard library alike)
// straight from source. That requires running inside the module — which is
// where `stabl lint` and `make verify` always run.
func Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One shared source importer: its internal cache keeps type identities
	// consistent across all target packages (a *sim.Scheduler mentioned by
	// chain and by simnet must be the same types.Object).
	imp := importer.ForCompiler(fset, "source", nil)
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp, cwd)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file in dir (including _test.go
// files) as a single package with the given import path. It backs the
// fixture tests: testdata packages are invisible to `go list`, so they are
// loaded straight from their directory.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, listedPackage{ImportPath: importPath, Dir: dir, GoFiles: files}, "")
}

// check parses and type-checks one listed package. File paths are recorded
// relative to relTo (when non-empty) so diagnostics print stable,
// machine-independent paths.
func check(fset *token.FileSet, imp types.Importer, lp listedPackage, relTo string) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		if relTo != "" {
			if rel, err := filepath.Rel(relTo, path); err == nil && !strings.HasPrefix(rel, "..") {
				path = rel
			}
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// goList resolves the patterns to concrete packages, sorted by import path
// for deterministic analysis order.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	dec := json.NewDecoder(&stdout)
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	return listed, nil
}
