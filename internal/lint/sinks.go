package lint

import (
	"go/types"
)

// This file classifies "order-sensitive sinks": functions whose invocation
// order is observable in a run's event stream, so calling them from an
// iteration whose order Go randomizes (a map range) desyncs otherwise
// identical executions. Three families matter:
//
//   - RNG draws: every (*rand.Rand) method advances a stream shared with
//     later draws, so draw order is value order.
//   - simnet sends: each send samples the latency (and loss/jitter) RNG
//     streams and allocates an event sequence number.
//   - event scheduling: sequence numbers are handed out in call order and
//     break ties between events at the same virtual instant.
//
// Deriving a stream (Scheduler.RNG / Context.RNG) is deliberately NOT a
// sink: the derivation depends only on the (seed, name) pair, so derivation
// order is unobservable — it is drawing from the returned stream that
// counts, and those draws are caught as (*rand.Rand) method sinks.

// sinkFunc reports whether fn is an order-sensitive sink and, if so,
// describes what calling it does.
func sinkFunc(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	path, name := pkg.Path(), fn.Name()
	recv := receiverTypeName(fn)

	switch path {
	case "math/rand", "math/rand/v2":
		if recv == "Rand" {
			return "draws from an RNG stream via (*rand.Rand)." + name, true
		}
		if recv == "" && globalRandFns[name] {
			return "draws from the global math/rand source via rand." + name, true
		}
	case "stabl/internal/sim":
		switch {
		case recv == "Scheduler" && (name == "At" || name == "After"):
			return "schedules a simulation event via (*sim.Scheduler)." + name, true
		case recv == "" && name == "NewTicker":
			return "schedules simulation events via sim.NewTicker", true
		}
	case "stabl/internal/simnet":
		switch recv {
		case "Context":
			switch name {
			case "Send", "Broadcast":
				return "sends on the simnet via (*simnet.Context)." + name, true
			case "After", "Every":
				return "schedules node events via (*simnet.Context)." + name, true
			}
		case "Network":
			switch name {
			case "send":
				return "sends on the simnet via (*simnet.Network).send", true
			case "StartNode", "StartAll", "Restart":
				return "schedules node startup via (*simnet.Network)." + name, true
			case "Halt", "Partition", "Heal", "SetExtraDelay", "SetLoss", "SetJitter":
				return "perturbs simnet delivery state via (*simnet.Network)." + name, true
			}
		}
	case "stabl/internal/chain":
		if recv == "BaseNode" {
			switch name {
			case "HandleClient", "HandleSync", "SubmitBlock", "StartCatchUp":
				return "sends on the simnet via (*chain.BaseNode)." + name, true
			}
		}
	}
	return "", false
}

// globalRandFns is every math/rand (and v2) top-level function that draws
// from the process-global source. rand.New, NewSource, NewZipf take an
// explicit source and are fine.
var globalRandFns = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

// receiverTypeName returns the named type of fn's receiver ("" for
// package-level functions), with any pointer indirection stripped.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
