package lint

import (
	"go/ast"
	"go/types"
)

// EffortBound flags statically-unbounded control flow in handler-path code:
// work a node performs in response to network input must terminate within
// the handler's virtual instant, because the simulation kernel only
// advances time between events — an unbounded loop or unconditional
// recursion inside a handler hangs the whole experiment (and, worse, hangs
// it only on the inputs that trigger it, which an adversarial scenario can
// craft). Two shapes are flagged:
//
//   - a condition-less `for` with no break or return anywhere in its body:
//     nothing bounds the iteration, so the handler never yields back to the
//     event loop;
//   - an unconditional self-call: a handler-path function invoking itself
//     outside any if/switch/select guard recurses until the stack dies.
//
// Loops over concrete collections (range, condition-guarded for) are
// bounded by their operand and stay silent; a deliberate spin that bounds
// itself some other way can justify with //stabl:nodet effort-bound.
var EffortBound = &Analyzer{
	Name: "effort-bound",
	Doc:  "unbounded loop or unconditional recursion in handler-path code",
	Run:  runEffortBound,
}

func runEffortBound(p *Pass) {
	idx := p.Prog.Index()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !idx.handler[fn] || p.IsTestFile(fd.Pos()) {
				continue
			}
			p.checkEffortBound(fd, fn)
		}
	}
}

func (p *Pass) checkEffortBound(fd *ast.FuncDecl, fn *types.Func) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if loop, ok := n.(*ast.ForStmt); ok && loop.Cond == nil {
			if !hasEscape(loop.Body) {
				p.Reportf(loop.For,
					"condition-less for loop with no break or return in handler-path code never yields back to the event loop; bound the iteration or exit explicitly")
			}
		}
		return true
	})
	p.checkUnguardedRecursion(fd.Body, fn, false)
}

// hasEscape reports whether body contains a break or return that can
// terminate the enclosing loop. Breaks inside nested loops or switch/select
// statements bind to the inner statement and do not count; a labeled break
// is conservatively assumed to escape.
func hasEscape(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, breakBinds bool)
	walk = func(n ast.Node, breakBinds bool) {
		if found || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			switch n.Tok.String() {
			case "break":
				if breakBinds || n.Label != nil {
					found = true
				}
			case "goto":
				// A goto can jump out of the loop; assume it does.
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt:
			ast.Inspect(n, func(inner ast.Node) bool {
				if ret, ok := inner.(*ast.ReturnStmt); ok && ret != nil {
					found = true
				}
				if br, ok := inner.(*ast.BranchStmt); ok && br.Label != nil {
					found = true
				}
				return !found
			})
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break binds to the switch; only returns/labeled breaks escape.
			ast.Inspect(n, func(inner ast.Node) bool {
				switch inner := inner.(type) {
				case *ast.ReturnStmt:
					found = true
				case *ast.BranchStmt:
					if inner.Label != nil || inner.Tok.String() == "goto" {
						found = true
					}
				case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
					return false
				}
				return !found
			})
		case *ast.FuncLit:
			// Returns inside a closure do not exit the loop.
		case *ast.BlockStmt:
			for _, stmt := range n.List {
				walk(stmt, breakBinds)
			}
		case *ast.IfStmt:
			walk(n.Body, breakBinds)
			walk(n.Else, breakBinds)
		case *ast.LabeledStmt:
			walk(n.Stmt, breakBinds)
		default:
			ast.Inspect(n, func(inner ast.Node) bool {
				switch inner.(type) {
				case *ast.ReturnStmt:
					found = true
				case *ast.BranchStmt:
					found = true // conservative inside unmodeled statements
				case *ast.FuncLit:
					return false
				}
				return !found
			})
		}
	}
	walk(body, true)
	return found
}

// checkUnguardedRecursion reports calls of fn to itself that no conditional
// statement guards: recursion without a branch deciding termination cannot
// terminate. guarded tracks whether the walk has entered an if, switch,
// select or condition-bearing loop.
func (p *Pass) checkUnguardedRecursion(n ast.Node, fn *types.Func, guarded bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		guarded = true
	case *ast.ForStmt:
		if n.Cond != nil {
			guarded = true
		}
	case *ast.RangeStmt:
		guarded = true
	case *ast.FuncLit:
		// Closures are separate call frames; a self-call inside one is
		// only reached when the closure runs, which the scheduler guards.
		return
	case *ast.CallExpr:
		if id := calleeIdent(n.Fun); id != nil && !guarded {
			if callee, ok := p.Info.Uses[id].(*types.Func); ok && callee == fn {
				p.Reportf(n.Pos(),
					"%s calls itself unconditionally; the recursion has no terminating branch and overflows the stack on any triggering input — guard the self-call or iterate",
					fn.Name())
			}
		}
	}
	for _, child := range childNodes(n) {
		p.checkUnguardedRecursion(child, fn, guarded)
	}
}

// calleeIdent extracts the identifier a call resolves through: a bare name
// or the selector of a method/package call.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.ParenExpr:
		return calleeIdent(fun.X)
	}
	return nil
}

// childNodes returns n's direct children, in source order.
func childNodes(n ast.Node) []ast.Node {
	var children []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			children = append(children, c)
		}
		return false
	})
	return children
}
