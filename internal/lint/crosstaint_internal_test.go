package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrossTaintInvisibleToPackageLocalEngine is the passing-before /
// failing-after proof for the whole-program taint engine: the crosstaint
// fixture contains no identifier that resolves to an order-sensitive sink
// within its own package, so the PR 5 engine — which resolved calls within
// one package only and treated everything else as opaque — analyzed this
// exact code and reported nothing. The whole-program engine must report
// both seeded loops.
func TestCrossTaintInvisibleToPackageLocalEngine(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "src", "crosstaint"), "stabl/internal/lint/testdata/crosstaint")
	if err != nil {
		t.Fatal(err)
	}
	root := prog.Pkgs[0]

	// The "before" half: walking every identifier of the fixture's root
	// package, no use may resolve to a sink. A package-local engine's taint
	// universe is exactly these uses plus same-package declarations, so an
	// empty intersection with the sink table means it had nothing to find.
	for _, f := range root.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := root.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if desc, isSink := sinkFunc(fn); isSink {
				pos := prog.Fset.Position(id.Pos())
				t.Errorf("fixture leaks a package-local sink at %s: %s (%s) — rewrite it to reach the sink through the helper package, or the fixture no longer proves the cross-package hole",
					pos, fn.FullName(), desc)
			}
			return true
		})
	}

	// The "after" half: the whole-program engine reports both seeded loops
	// (direct helper call and interface dispatch).
	diags := Run(prog, []*Analyzer{MapRangeRNG})
	if len(diags) != 2 {
		t.Fatalf("whole-program engine found %d findings in crosstaint, want 2: %v", len(diags), diags)
	}
	var sawDirect, sawDispatch bool
	for _, d := range diags {
		if strings.Contains(d.Message, "calls helper.Pick") {
			sawDirect = true
		}
		if strings.Contains(d.Message, "via Chooser.Choose") {
			sawDispatch = true
		}
	}
	if !sawDirect || !sawDispatch {
		t.Errorf("missing cross-package call chains in diagnostics (direct=%v dispatch=%v): %v",
			sawDirect, sawDispatch, diags)
	}
}

// TestLoaderCacheIdentity compares a cold-cache run against a warm-cache
// run of the same analysis and requires byte-identical diagnostics: the
// process-wide `go list` and type-check caches must be invisible to the
// output, cached or not.
func TestLoaderCacheIdentity(t *testing.T) {
	render := func() string {
		prog, err := LoadDir(filepath.Join("testdata", "src", "crosstaint"), "stabl/internal/lint/testdata/crosstaint")
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range Run(prog, All()) {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	resetLoaderCache()
	cold := render()
	warm := render()
	if cold == "" {
		t.Fatal("crosstaint produced no diagnostics; identity check is vacuous")
	}
	if cold != warm {
		t.Fatalf("diagnostics differ between cold and warm loader caches:\n--- cold\n%s--- warm\n%s", cold, warm)
	}
}
