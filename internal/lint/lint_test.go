package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"stabl/internal/lint"
)

// fixtureAnalyzers maps each testdata/src package to the analyzers it
// seeds. Every analyzer has at least one true-positive and one clean
// fixture; the suppress package exercises the //stabl:nodet escape hatch
// and wallclockfree the wallclock applicability gate.
var fixtureAnalyzers = map[string]string{
	"maprange":       "maprange-rng",
	"wallclock":      "wallclock",
	"wallclockfree":  "wallclock",
	"globalrand":     "globalrand",
	"unsorted":       "unsorted-broadcast",
	"suppress":       "globalrand",
	"snapshotorder":  "snapshot-maporder",
	"crosspartition": "cross-partition-state",
}

func fixtureDirs() []string {
	dirs := make([]string, 0, len(fixtureAnalyzers))
	for dir := range fixtureAnalyzers {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs
}

func loadFixture(t *testing.T, dir string) *lint.Package {
	t.Helper()
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", dir), "stabl/internal/lint/testdata/"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

func runFixture(t *testing.T, dir string) []lint.Diagnostic {
	t.Helper()
	analyzers, err := lint.Select(fixtureAnalyzers[dir])
	if err != nil {
		t.Fatalf("selecting analyzers for %s: %v", dir, err)
	}
	return lint.Run([]*lint.Package{loadFixture(t, dir)}, analyzers)
}

// wantRe extracts `want "substring"` expectations from fixture comments.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type expectation struct {
	key  string // file:line
	text string
	met  bool
}

func fixtureWants(pkg *lint.Package) []*expectation {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{
						key:  fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
						text: m[1],
					})
				}
			}
		}
	}
	return wants
}

// TestFixtures checks every analyzer against its seeded violations: each
// `want` comment must be matched by a diagnostic on its line, and no
// diagnostic may fire without a matching want — so the clean idioms
// (sorted keys, threaded seeds, virtual time) prove the analyzers stay
// silent where they should.
func TestFixtures(t *testing.T) {
	for _, dir := range fixtureDirs() {
		t.Run(dir, func(t *testing.T) {
			pkg := loadFixture(t, dir)
			analyzers, err := lint.Select(fixtureAnalyzers[dir])
			if err != nil {
				t.Fatal(err)
			}
			diags := lint.Run([]*lint.Package{pkg}, analyzers)
			wants := fixtureWants(pkg)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				matched := false
				for _, w := range wants {
					if !w.met && w.key == key && strings.Contains(d.Message, w.text) {
						w.met = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.met {
					t.Errorf("no diagnostic matching %q at %s", w.text, w.key)
				}
			}
		})
	}
}

// TestDeterministicOutput loads and analyzes every fixture twice from
// scratch (fresh FileSets, fresh type-checkers, fresh analyzer state) and
// requires the rendered diagnostics to be byte-identical — the same
// property `make verify` relies on for the full tree.
func TestDeterministicOutput(t *testing.T) {
	render := func() string {
		var b strings.Builder
		for _, dir := range fixtureDirs() {
			for _, d := range runFixture(t, dir) {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("diagnostics differ between two identical runs:\n--- first\n%s--- second\n%s", first, second)
	}
	if first == "" {
		t.Fatal("fixtures produced no diagnostics at all; determinism check is vacuous")
	}
}

// TestSelect covers the analyzer registry: default-all, subsets, and the
// ParseFaultKind-style error that enumerates valid names on a typo.
func TestSelect(t *testing.T) {
	all, err := lint.Select("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("Select(\"\") returned %d analyzers, want 6", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("analyzers not sorted by name: %q before %q", all[i-1].Name, all[i].Name)
		}
	}

	subset, err := lint.Select("wallclock,globalrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 {
		t.Fatalf("Select(subset) returned %d analyzers, want 2", len(subset))
	}

	_, err = lint.Select("bogus")
	if err == nil {
		t.Fatal("Select(\"bogus\") succeeded, want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown analyzer "bogus"`) {
		t.Errorf("error %q does not name the unknown analyzer", msg)
	}
	for _, a := range all {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error %q does not enumerate valid analyzer %q", msg, a.Name)
		}
	}
}

// TestTreeClean runs the full pass over the entire module, the same gate
// `make verify` applies: the committed tree must be free of unsuppressed
// diagnostics.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree typecheck is slow; covered by make verify")
	}
	pkgs, err := lint.Load([]string{"stabl/..."})
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Run(pkgs, lint.All()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
