package lint_test

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"stabl/internal/lint"
)

// fixtureAnalyzers maps each testdata/src package to the analyzers it
// seeds. Every analyzer has at least one true-positive and one clean
// fixture; the suppress package exercises the //stabl:nodet escape hatch,
// wallclockfree the wallclock applicability gate, and crosstaint the
// cross-package taint resolution the PR 5 package-local engine lacked.
var fixtureAnalyzers = map[string]string{
	"maprange":       "maprange-rng",
	"wallclock":      "wallclock",
	"wallclockfree":  "wallclock",
	"globalrand":     "globalrand",
	"unsorted":       "unsorted-broadcast",
	"suppress":       "globalrand",
	"snapshotorder":  "snapshot-maporder",
	"crosspartition": "cross-partition-state",
	"crosstaint":     "maprange-rng",
	"snapshotfields": "snapshot-fields",
	"goroutine":      "goroutine-purity",
	"effortbound":    "effort-bound",
}

func fixtureDirs() []string {
	dirs := make([]string, 0, len(fixtureAnalyzers))
	for dir := range fixtureAnalyzers {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs
}

func loadFixture(t *testing.T, dir string) *lint.Program {
	t.Helper()
	prog, err := lint.LoadDir(filepath.Join("testdata", "src", dir), "stabl/internal/lint/testdata/"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return prog
}

func runFixture(t *testing.T, dir string) []lint.Diagnostic {
	t.Helper()
	analyzers, err := lint.Select(fixtureAnalyzers[dir])
	if err != nil {
		t.Fatalf("selecting analyzers for %s: %v", dir, err)
	}
	return lint.Run(loadFixture(t, dir), analyzers)
}

// wantRe extracts `want "substring"` expectations from fixture comments.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type expectation struct {
	key  string // file:line
	text string
	met  bool
}

func fixtureWants(prog *lint.Program) []*expectation {
	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &expectation{
							key:  fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
							text: m[1],
						})
					}
				}
			}
		}
	}
	return wants
}

// TestFixtures checks every analyzer against its seeded violations: each
// `want` comment must be matched by a diagnostic on its line, and no
// diagnostic may fire without a matching want — so the clean idioms
// (sorted keys, threaded seeds, virtual time, guarded recursion) prove the
// analyzers stay silent where they should.
func TestFixtures(t *testing.T) {
	for _, dir := range fixtureDirs() {
		t.Run(dir, func(t *testing.T) {
			prog := loadFixture(t, dir)
			analyzers, err := lint.Select(fixtureAnalyzers[dir])
			if err != nil {
				t.Fatal(err)
			}
			diags := lint.Run(prog, analyzers)
			wants := fixtureWants(prog)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				matched := false
				for _, w := range wants {
					if !w.met && w.key == key && strings.Contains(d.Message, w.text) {
						w.met = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.met {
					t.Errorf("no diagnostic matching %q at %s", w.text, w.key)
				}
			}
		})
	}
}

// TestCrossPackageTaint pins the property the whole-program engine exists
// for: every finding in the crosstaint fixture is reached through another
// package, so the diagnostic text must name the cross-package call chain —
// a package-local engine would have had nothing to resolve the call to.
// (The structural half of the proof — no sink is lexically visible in the
// fixture's own package — lives in the internal test next to the sink
// table.)
func TestCrossPackageTaint(t *testing.T) {
	diags := runFixture(t, "crosstaint")
	if len(diags) == 0 {
		t.Fatal("crosstaint fixture produced no diagnostics")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "helper.") {
			t.Errorf("diagnostic does not cross the package boundary: %s", d)
		}
	}
}

// TestSuppressionScoping covers the //stabl:nodet escape hatch on the new
// analyzers: a directive naming the analyzer silences the finding (but
// RunAll still surfaces it, flagged, for -json audits), and a directive
// naming a different analyzer suppresses nothing.
func TestSuppressionScoping(t *testing.T) {
	cases := []struct {
		dir, analyzer, field string
	}{
		{"snapshotfields", "snapshot-fields", "cache"},
		{"goroutine", "goroutine-purity", "quiet"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			prog := loadFixture(t, tc.dir)
			analyzers, err := lint.Select(tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			var suppressed []lint.Diagnostic
			for _, d := range lint.RunAll(prog, analyzers) {
				if d.Suppressed {
					suppressed = append(suppressed, d)
				}
			}
			if len(suppressed) != 1 {
				t.Fatalf("RunAll surfaced %d suppressed findings, want exactly 1 (the %s field): %v",
					len(suppressed), tc.field, suppressed)
			}
			for _, d := range lint.Run(prog, analyzers) {
				if d.Suppressed {
					t.Errorf("Run returned a suppressed diagnostic: %s", d)
				}
			}
		})
	}
	// The wrongScope field in snapshotfields carries a directive naming the
	// wallclock analyzer; TestFixtures already requires the snapshot-fields
	// diagnostic to fire there, which proves mismatched scopes do not leak.
}

// TestDeterministicOutput loads and analyzes every fixture twice and
// requires the rendered diagnostics to be byte-identical — the same
// property `make verify` relies on for the full tree. The first render in
// the process pays the cold load; later renders hit the process-wide
// loader cache, so this doubles as the cached-path identity check (the
// internal cache test covers cold-vs-warm explicitly).
func TestDeterministicOutput(t *testing.T) {
	render := func() string {
		var b strings.Builder
		for _, dir := range fixtureDirs() {
			for _, d := range runFixture(t, dir) {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("diagnostics differ between two identical runs:\n--- first\n%s--- second\n%s", first, second)
	}
	if first == "" {
		t.Fatal("fixtures produced no diagnostics at all; determinism check is vacuous")
	}
}

// TestWriteJSON pins the machine-readable format: stable field order,
// one object per finding, suppressed findings present and flagged.
func TestWriteJSON(t *testing.T) {
	prog := loadFixture(t, "snapshotfields")
	analyzers, err := lint.Select("snapshot-fields")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := lint.WriteJSON(&b, lint.RunAll(prog, analyzers)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(decoded) == 0 {
		t.Fatal("JSON output is empty")
	}
	keyOrder := regexp.MustCompile(`(?s)"analyzer".*"file".*"line".*"col".*"message".*"suppressed"`)
	if !keyOrder.MatchString(out) {
		t.Errorf("JSON fields are not in the documented order:\n%s", out)
	}
	sawSuppressed := false
	for _, obj := range decoded {
		for _, key := range []string{"analyzer", "file", "line", "col", "message", "suppressed"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("finding is missing %q: %v", key, obj)
			}
		}
		if obj["suppressed"] == true {
			sawSuppressed = true
		}
	}
	if !sawSuppressed {
		t.Error("no suppressed finding in the JSON output; the cache field should be there, flagged")
	}
}

// TestSelect covers the analyzer registry: default-all, subsets, the
// "all" keyword mixed with explicit names, and the ParseFaultKind-style
// error that enumerates valid names on a typo.
func TestSelect(t *testing.T) {
	all, err := lint.Select("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("Select(\"\") returned %d analyzers, want 9", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("analyzers not sorted by name: %q before %q", all[i-1].Name, all[i].Name)
		}
	}

	subset, err := lint.Select("wallclock,globalrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 {
		t.Fatalf("Select(subset) returned %d analyzers, want 2", len(subset))
	}

	// "all" anywhere in the list selects everything rather than erroring
	// as an unknown analyzer named "all".
	for _, list := range []string{"all", "all,wallclock", "wallclock,all"} {
		got, err := lint.Select(list)
		if err != nil {
			t.Fatalf("Select(%q): %v", list, err)
		}
		if len(got) != len(all) {
			t.Fatalf("Select(%q) returned %d analyzers, want %d", list, len(got), len(all))
		}
	}

	// ...but the names riding along with "all" are still validated.
	if _, err := lint.Select("all,bogus"); err == nil {
		t.Fatal("Select(\"all,bogus\") succeeded, want error")
	}

	_, err = lint.Select("bogus")
	if err == nil {
		t.Fatal("Select(\"bogus\") succeeded, want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown analyzer "bogus"`) {
		t.Errorf("error %q does not name the unknown analyzer", msg)
	}
	for _, a := range all {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error %q does not enumerate valid analyzer %q", msg, a.Name)
		}
	}
}

// TestTreeClean runs the full pass over the entire module, the same gate
// `make verify` applies: the committed tree must be free of unsuppressed
// diagnostics.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree typecheck is slow; covered by make verify")
	}
	prog, err := lint.Load([]string{"stabl/..."})
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Run(prog, lint.All()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
