package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotMapOrder guards the run-forking subsystem: inside a Snapshot/
// Restore path (methods named Snapshot*, Restore* and every package-local
// function they transitively call), a `range` over a map must not serialize
// its contents into a slice that is never sorted. A snapshot built that way
// embeds Go's randomized map iteration order, so a continuation rewound from
// it can replay commits, deliveries or round state in a different order than
// the from-scratch run the fork goldens compare against — the forking
// equivalent of the map-order bug class maprange-rng catches on the send
// path. Map-to-map copies and appends to a slice created fresh in the loop
// body (`append([]T(nil), v...)`) are order-insensitive and stay silent, as
// does the sorted-keys idiom (collect, sort, then use).
var SnapshotMapOrder = &Analyzer{
	Name: "snapshot-maporder",
	Doc:  "Snapshot/Restore path serializes a map range into an unsorted slice",
	Run:  runSnapshotMapOrder,
}

func runSnapshotMapOrder(p *Pass) {
	// The snapshot path: Snapshot*/Restore* declarations plus every
	// function they reach — across package boundaries, so a chain's
	// Snapshot delegating serialization to a helper package keeps the
	// helper under scrutiny. The reachability set is computed once per
	// program (callgraph.go); this pass checks the members declared in the
	// current package.
	inPath := p.Prog.Index().snapPath

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil || !inPath[obj] {
				continue
			}
			p.checkSnapshotFunc(fd)
		}
	}
}

// checkSnapshotFunc flags map ranges in fd whose body accumulates into a
// pre-existing slice, unless that slice later flows into a sort/slices call
// in the same function (the sorted-keys idiom).
func (p *Pass) checkSnapshotFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			target := accumulatorExpr(call.Args[0])
			if target == nil {
				return true // appends to a per-iteration fresh slice
			}
			name := types.ExprString(target)
			if sortedInFunc(fd.Body, name) {
				return true
			}
			p.Reportf(rng.For,
				"snapshot path serializes map %s into slice %s without sorting, so the captured state follows Go's randomized map order and a forked continuation can diverge from replay; iterate sorted keys or sort the result",
				types.ExprString(rng.X), name)
			return true
		})
		return true
	})
}

// accumulatorExpr returns the storage expression an append grows, or nil
// when the first argument is created fresh at the call site (a conversion
// like []T(nil), make(...), or a composite literal), which no iteration
// order can reorder.
func accumulatorExpr(e ast.Expr) ast.Expr {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return accumulatorExpr(v.X)
	case *ast.SliceExpr:
		return accumulatorExpr(v.X)
	case *ast.CallExpr, *ast.CompositeLit:
		return nil
	default:
		return e
	}
}

// sortedInFunc reports whether body contains a call into the sort or slices
// package whose arguments mention name — the collect-sort-use idiom, which
// erases map order before anything observes it.
func sortedInFunc(body ast.Node, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(types.ExprString(arg), name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
