package lint

import (
	"fmt"
	"sort"
	"strings"
)

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	all := []*Analyzer{
		MapRangeRNG,
		Wallclock,
		GlobalRand,
		UnsortedBroadcast,
		SnapshotMapOrder,
		CrossPartitionState,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// analyzerNames renders the valid names for error messages, mirroring
// core.faultKindNames so `stabl lint -analyzers bogus` and
// `stabl run -fault bogus` fail with the same UX.
func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// Select resolves a comma-separated list of analyzer names. An empty list
// (or "all") selects every analyzer; an unknown name is an error that
// enumerates the valid ones.
func Select(list string) ([]*Analyzer, error) {
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (valid analyzers: %s)", name, analyzerNames())
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected (valid analyzers: %s)", analyzerNames())
	}
	return out, nil
}
