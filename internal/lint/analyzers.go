package lint

import (
	"fmt"
	"sort"
	"strings"
)

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	all := []*Analyzer{
		MapRangeRNG,
		Wallclock,
		GlobalRand,
		UnsortedBroadcast,
		SnapshotMapOrder,
		CrossPartitionState,
		SnapshotFields,
		GoroutinePurity,
		EffortBound,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// analyzerNames renders the valid names for error messages, mirroring
// core.faultKindNames so `stabl lint -analyzers bogus` and
// `stabl run -fault bogus` fail with the same UX.
func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// Select resolves a comma-separated list of analyzer names. An empty list
// selects every analyzer, as does any list containing "all" — so
// `-analyzers all,wallclock` means "everything" rather than erroring on a
// literal analyzer named "all"; an unknown name is an error that enumerates
// the valid ones.
func Select(list string) ([]*Analyzer, error) {
	list = strings.TrimSpace(list)
	if list == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	sawAll := false
	seen := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			// "all" anywhere in the list wins: the named analyzers are a
			// subset of it by definition. They are still validated, so
			// `all,bogus` errors instead of silently passing.
			sawAll = true
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (valid analyzers: %s)", name, analyzerNames())
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, a)
		}
	}
	if sawAll {
		return All(), nil
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected (valid analyzers: %s)", analyzerNames())
	}
	return out, nil
}
