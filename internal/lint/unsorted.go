package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnsortedBroadcast flags the two-step variant of the map-order bug: map
// keys are collected into a slice (the first half of the sorted-keys
// idiom) but the slice is then iterated or passed onward without the sort
// in between. The collection loop itself is order-insensitive — append
// into a slice draws nothing — so maprange-rng stays silent, yet the
// slice inherits Go's randomized map order and every downstream send or
// draw replays it. Within one function body this is detected by statement
// order: collect, then any use (range, for-loop, call argument) before a
// sort of the same slice.
var UnsortedBroadcast = &Analyzer{
	Name: "unsorted-broadcast",
	Doc:  "map keys collected into a slice that is iterated or sent without a sort",
	Run:  runUnsortedBroadcast,
}

func runUnsortedBroadcast(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				p.checkStmtList(n.List)
			case *ast.CaseClause:
				p.checkStmtList(n.Body)
			case *ast.CommClause:
				p.checkStmtList(n.Body)
			}
			return true
		})
	}
}

// collected tracks one slice holding freshly collected map keys.
type collected struct {
	obj     types.Object
	mapExpr string
}

func (p *Pass) checkStmtList(list []ast.Stmt) {
	var active []*collected
	for _, stmt := range list {
		if c := p.keyCollection(stmt); c != nil {
			active = append(active, c)
			continue
		}
		kept := active[:0]
		for _, c := range active {
			switch {
			case p.sortsVar(stmt, c.obj):
				// sorted — the idiom is complete, stop tracking
			case p.reassigns(stmt, c.obj):
				// overwritten — whatever it holds now is not map order
			default:
				if pos, use := p.findUse(stmt, c.obj); use != "" {
					p.Reportf(pos,
						"%s holds the keys of map %s and is %s before any sort; that order is Go's randomized map order — sort the slice first",
						c.obj.Name(), c.mapExpr, use)
					break // one report per collection
				}
				kept = append(kept, c)
			}
		}
		active = kept
	}
}

// keyCollection matches `for k := range m { s = append(s, ...k...) }` where
// m is a map, and returns the tracked slice variable.
func (p *Pass) keyCollection(stmt ast.Stmt) *collected {
	rng, ok := stmt.(*ast.RangeStmt)
	if !ok {
		return nil
	}
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" {
		return nil
	}
	keyObj := p.Info.Defs[keyIdent]
	if keyObj == nil {
		keyObj = p.Info.Uses[keyIdent]
	}
	if keyObj == nil {
		return nil
	}
	var out *collected
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
			return true
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != lhs.Name {
			return true
		}
		// The appended values must derive from the key for the slice to
		// inherit map order.
		usesKey := false
		for _, arg := range call.Args[1:] {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.Uses[id] == keyObj {
					usesKey = true
				}
				return !usesKey
			})
		}
		if !usesKey {
			return true
		}
		obj := p.Info.Uses[lhs]
		if obj == nil {
			obj = p.Info.Defs[lhs]
		}
		if obj == nil {
			return true
		}
		out = &collected{obj: obj, mapExpr: types.ExprString(rng.X)}
		return false
	})
	return out
}

// sortsVar reports whether stmt contains a sort of obj: a call into the
// sort or slices packages with obj as an argument, or any call whose name
// contains "sort" (covering local sortX helpers).
func (p *Pass) sortsVar(stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !p.argsContain(call, obj) {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if x, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := p.Info.Uses[x].(*types.PkgName); ok {
					path := pn.Imported().Path()
					if path == "sort" || path == "slices" {
						found = true
						return false
					}
				}
			}
			if strings.Contains(strings.ToLower(fun.Sel.Name), "sort") {
				found = true
				return false
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(fun.Name), "sort") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// reassigns reports whether stmt assigns obj a new value.
func (p *Pass) reassigns(stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if p.Info.Uses[id] == obj || p.Info.Defs[id] == obj {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// findUse returns the first order-sensitive use of obj inside stmt: a
// range over it, a classic for loop reading it, or passing it to a
// non-builtin call.
func (p *Pass) findUse(stmt ast.Stmt, obj types.Object) (pos token.Pos, use string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if use != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if id, ok := n.X.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				pos, use = n.For, "iterated"
				return false
			}
		case *ast.ForStmt:
			if n.Cond != nil && identUsed(p.Info, n.Cond, obj) {
				pos, use = n.For, "iterated"
				return false
			}
		case *ast.CallExpr:
			if !p.argsContain(n, obj) {
				return true
			}
			if p.builtinOrConversion(n) {
				return true
			}
			pos, use = n.Pos(), "passed to "+types.ExprString(n.Fun)
			return false
		}
		return true
	})
	return pos, use
}

// argsContain reports whether obj appears as (or inside) an argument of
// call.
func (p *Pass) argsContain(call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if identUsed(p.Info, arg, obj) {
			return true
		}
	}
	return false
}

func identUsed(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// builtinOrConversion reports whether call is a builtin (append, len, ...)
// or a type conversion — order-insensitive consumers of the slice.
func (p *Pass) builtinOrConversion(call *ast.CallExpr) bool {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "append", "len", "cap", "copy", "delete", "make", "new":
		return true
	}
	return false
}
