package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags randomness that bypasses the per-stream seed derivation
// (sim.Scheduler.RNGSeed and its Context.RNG wrapper). Two shapes:
//
//   - math/rand top-level functions (rand.Intn, rand.Shuffle, ...), which
//     draw from the process-global source: seeded from entropy, shared
//     across goroutines, and invisible to the experiment seed.
//   - rand.NewSource (or rand.New(rand.NewSource(...))) with a constant
//     seed, which silently couples two call sites into the same stream and
//     makes adding a consumer perturb every existing one — the exact
//     failure mode named stream derivation exists to prevent.
//
// Test files are exempt: a fixed seed in a test is the point of the test.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "math/rand global source or constant rand.NewSource seeds outside tests",
	Run:  runGlobalRand,
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := p.Info.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if receiverTypeName(fn) != "" || !globalRandFns[fn.Name()] {
					return true
				}
				if p.IsTestFile(n.Pos()) {
					return true
				}
				p.Reportf(n.Pos(),
					"rand.%s draws from the process-global math/rand source; derive a named stream instead (sim.Scheduler.RNG / simnet.Context.RNG)",
					fn.Name())
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if (path != "math/rand" && path != "math/rand/v2") || fn.Name() != "NewSource" {
					return true
				}
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := p.Info.Types[n.Args[0]]
				if !ok || tv.Value == nil { // seed is not a compile-time constant
					return true
				}
				if p.IsTestFile(n.Pos()) {
					return true
				}
				p.Reportf(n.Pos(),
					"rand.NewSource(%s) pins a constant seed outside the per-stream derivation; thread sim.Scheduler.RNGSeed (or a spec-provided seed) through instead",
					tv.Value.String())
			}
			return true
		})
	}
}
