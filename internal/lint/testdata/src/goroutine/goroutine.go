// Package goroutine seeds the goroutine-purity analyzer: process-level
// concurrency inside handler-path code. The node type is handler-shaped
// (Start/Deliver/Stop), so every method on it — and everything those
// methods reach — runs inside the virtual-time kernel, where goroutines,
// channels and locks couple event order to the Go scheduler. The same
// constructs in harness code outside the handler path stay silent.
package goroutine

import (
	"sync"

	"stabl/internal/sim"
)

// The import makes this a simulated package (see simCorePkgs), which is
// what arms the sync-field declaration check.
var _ = sim.New

type node struct {
	height  int
	results chan int
	mu      sync.Mutex // want "sync.Mutex field in a simulated package"
	//stabl:nodet goroutine-purity -- guards cross-run memoization only, never cross-node state
	quiet sync.Mutex
}

func (n *node) Start(ctx any) {
	go n.pump() // want "go statement in handler-path code"
}

func (n *node) Deliver(from int, payload any) {
	n.mu.Lock()         // want "sync.Lock in handler-path code"
	defer n.mu.Unlock() // want "sync.Unlock in handler-path code"
	n.results <- n.height // want "channel send in handler-path code"
}

func (n *node) Stop() {
	v := <-n.results // want "channel receive in handler-path code"
	n.height = v
	select { // want "select in handler-path code"
	case w := <-n.results: // want "channel receive in handler-path code"
		n.height = w
	default:
	}
}

// pump is handler-path by reachability: Start references it.
func (n *node) pump() {
	for v := range n.results { // want "range over a channel in handler-path code"
		n.height += v
	}
}

// drive is harness orchestration — no handler-shaped receiver reaches it —
// so its goroutine and channel use is the harness's own business.
func drive(n *node) {
	done := make(chan struct{})
	go func() {
		n.height++
		close(done)
	}()
	<-done
}
