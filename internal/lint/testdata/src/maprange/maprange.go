// Package maprange seeds the maprange-rng analyzer with reconstructions of
// the shipped bug shapes (redbelly resendRound, avalanche closeRound: a map
// range whose body sends or draws) and with the fixed sorted-keys idiom,
// which must stay silent.
package maprange

import (
	"math/rand"
	"sort"

	"stabl/internal/simnet"
)

type msg struct {
	Sub int
	Est []byte
}

type node struct {
	ctx   *simnet.Context
	peers []simnet.NodeID
	votes map[int][]byte
	rng   *rand.Rand
}

// resendBuggy is the PR 4 redbelly resendRound bug shape: each Broadcast
// samples the shared latency RNG streams, so map order leaks into the run.
func (n *node) resendBuggy() {
	for sub, est := range n.votes { // want "sends on the simnet via (*simnet.Context).Broadcast"
		n.ctx.Broadcast(n.peers, msg{Sub: sub, Est: est})
	}
}

// resendFixed is the shipped fix: collect, sort, then range the slice.
func (n *node) resendFixed() {
	subs := make([]int, 0, len(n.votes))
	for sub := range n.votes {
		subs = append(subs, sub)
	}
	sort.Ints(subs)
	for _, sub := range subs {
		n.ctx.Broadcast(n.peers, msg{Sub: sub, Est: n.votes[sub]})
	}
}

// drawDirect draws from an RNG stream inside the loop body.
func (n *node) drawDirect(weights map[int]float64) float64 {
	total := 0.0
	for k := range weights { // want "draws from an RNG stream via (*rand.Rand).Float64"
		total += n.rng.Float64() * weights[k]
	}
	return total
}

// jitterOne is a package-local helper that draws; callers through it are
// just as order-sensitive as direct draws.
func (n *node) jitterOne(id simnet.NodeID) {
	d := n.rng.Intn(10)
	n.ctx.Send(id, d)
}

// drawTransitive reaches the RNG through jitterOne, one call deep.
func (n *node) drawTransitive(pending map[simnet.NodeID]bool) {
	for id := range pending { // want "calls jitterOne, which draws from an RNG stream"
		n.jitterOne(id)
	}
}

// scheduleBuggy schedules events in map order: sequence numbers break
// same-instant ties, so this desyncs runs even though nothing draws.
func (n *node) scheduleBuggy(deadlines map[int]bool) {
	for round := range deadlines { // want "schedules node events via (*simnet.Context).After"
		r := round
		n.ctx.After(1, func() { n.ctx.Broadcast(n.peers, msg{Sub: r}) })
	}
}

// tallyClean is an order-insensitive map range: pure accumulation draws
// nothing and sends nothing, and must stay unflagged.
func (n *node) tallyClean(counts map[string]int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
