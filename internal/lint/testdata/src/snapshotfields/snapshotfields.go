// Package snapshotfields seeds the snapshot-fields analyzer: a Forkable
// struct whose mutable fields must all be seen by Snapshot and Restore.
// Fields covered by both methods, fields only written during construction
// (including construction behind an interface-returning constructor), and
// types without the Forkable shape all stay silent; a field the protocol
// mutates but checkpointing never touches is the bug the analyzer exists
// for.
package snapshotfields

// Forkable mirrors the snapshot.Forkable shape without importing it.
type Forkable interface {
	Snapshot() any
	Restore(any)
}

type boxState struct {
	covered   int
	noSnap    int
	noRestore int
}

type box struct {
	covered   int // copied by Snapshot, written back by Restore: silent
	noSnap    int // want "never referenced by (box).Snapshot;"
	noRestore int // want "never referenced by (box).Restore;"
	ghost     int // want "never referenced by (box).Snapshot or Restore;"
	immutable int // written only during construction: silent
	//stabl:nodet snapshot-fields -- volatile cache, rebuilt on demand; a fork may lose it
	cache map[int]int
	//stabl:nodet wallclock -- names the wrong analyzer, so snapshot-fields still reports
	wrongScope int // want "never referenced by (box).Snapshot or Restore;"
}

// NewBox is a signature-visible constructor: its writes are initialization.
func NewBox() *box {
	b := &box{covered: 1}
	b.immutable = 7
	b.cache = make(map[int]int)
	return b
}

// NewHidden returns the concrete type behind an interface. The analyzer
// still treats its writes as construction: the composite literal marks it
// as a creator of box.
func NewHidden() Forkable {
	b := &box{}
	b.covered = 1
	b.immutable = 2
	b.cache = make(map[int]int)
	return b
}

// advance is the protocol: it mutates state after construction.
func (b *box) advance() {
	b.covered++
	b.noSnap++
	b.noRestore++
	b.ghost++
	b.wrongScope++
	b.cache[b.covered] = b.noSnap
}

// Snapshot copies covered and noRestore — noSnap, ghost and wrongScope are
// the seeded gaps.
func (b *box) Snapshot() any {
	return &boxState{covered: b.covered, noRestore: b.noRestore}
}

// Restore delegates to a helper: references through transitive same-package
// callees count.
func (b *box) Restore(st any) {
	b.restoreFrom(st.(*boxState))
}

func (b *box) restoreFrom(s *boxState) {
	b.covered = s.covered
	b.noSnap = s.noSnap
}

// scratch has no Restore method, so it is not Forkable-shaped and its
// mutated, uncopied field is nobody's business.
type scratch struct{ n int }

// Snapshot alone does not make a type Forkable.
func (s *scratch) Snapshot() any { return s.n }

func (s *scratch) bump() { s.n++ }
