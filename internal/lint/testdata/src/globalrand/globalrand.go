// Package globalrand seeds the globalrand analyzer: global math/rand
// draws and constant seeds outside the per-stream derivation, next to the
// threaded-seed idiom that must stay silent.
package globalrand

import "math/rand"

// shuffleBuggy draws from the process-global source: seeded from entropy,
// shared across every caller, invisible to the experiment seed.
func shuffleBuggy(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "rand.Shuffle draws from the process-global math/rand source"
		xs[i], xs[j] = xs[j], xs[i]
	})
	_ = rand.Intn(10) // want "rand.Intn draws from the process-global math/rand source"
}

// pinnedBuggy pins a constant seed, coupling every caller into one stream.
func pinnedBuggy() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "rand.NewSource(42) pins a constant seed"
}

// threadedClean receives a derived seed (sim.Scheduler.RNGSeed upstream)
// and builds a private stream from it — the idiom the analyzer protects.
func threadedClean(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
