package globalrand

import "math/rand"

// Test files are exempt: a fixed seed in a test is the point of the test.
// No diagnostics expected anywhere in this file.
func fixtureStream() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func fixtureDraw() int {
	return rand.Intn(6)
}
