// Package crosspartition seeds the cross-partition-state analyzer: node
// state written through a peer table from outside the message-delivery
// path. The parallel kernel executes peers concurrently inside lookahead
// windows, so such writes race; even sequentially they bypass the keyed
// merge order that makes runs reproducible.
package crosspartition

// node is handler-shaped: it has the Start/Deliver/Stop method set of a
// network endpoint.
type node struct {
	height int
	votes  map[int]int
	peers  []*node
}

func (n *node) Start(ctx any)                 {}
func (n *node) Deliver(from int, payload any) {}
func (n *node) Stop()                         {}

// gauge is NOT handler-shaped (no Deliver); writes through gauge tables are
// ordinary single-owner state.
type gauge struct{ value int }

type cluster struct {
	nodes  []*node
	byID   map[int]*node
	gauges []gauge
}

// syncBuggy reaches into a peer fetched from a slice and overwrites its
// state directly — the shape the analyzer exists for.
func (c *cluster) syncBuggy(target, h int) {
	c.nodes[target].height = h // want "reaches another node's state through a peer table"
}

// tallyBuggy writes a nested structure inside a peer fetched from a map.
func (c *cluster) tallyBuggy(target, round int) {
	c.byID[target].votes[round]++ // want "reaches another node's state through a peer table"
}

// gossipBuggy mutates a peer reached from another node's own peer list.
func (n *node) gossipBuggy(i, h int) {
	n.peers[i].height = h // want "reaches another node's state through a peer table"
}

// rebindClean replaces a table entry wholesale: no field write through the
// index, so ownership never crosses — this is deployment wiring, not a
// cross-node mutation.
func (c *cluster) rebindClean(i int, fresh *node) {
	c.nodes[i] = fresh
}

// gaugeClean writes through an index of a non-handler type.
func (c *cluster) gaugeClean(i, v int) {
	c.gauges[i].value = v
}

// selfClean mutates the node's own state through its receiver — the normal
// delivery-path shape.
func (n *node) selfClean(h int) {
	n.height = h
}

// suppressed documents a deliberate exception: a single-owner registry that
// happens to hold handler-shaped values.
func (c *cluster) suppressed(i, h int) {
	//stabl:nodet cross-partition-state -- deployment-time wiring before the kernel starts
	c.nodes[i].height = h
}
