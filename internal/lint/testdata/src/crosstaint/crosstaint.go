// Package crosstaint seeds the cross-package half of maprange-rng: every
// sink here is reached through the helper subpackage or through interface
// dispatch onto a helper implementation — no RNG draw is lexically visible
// in this package. The PR 5 engine resolved calls within one package only,
// so this entire file passed it; the whole-program taint engine reports
// each loop with the cross-package call chain in the message.
package crosstaint

import (
	"math/rand"
	"sort"

	"stabl/internal/lint/testdata/crosstaint/helper"
)

type sampler struct {
	weights map[string]int
	rng     *rand.Rand
	choose  helper.Chooser
}

// pickBuggy draws through a cross-package helper inside a map range.
func (s *sampler) pickBuggy() int {
	total := 0
	for _, w := range s.weights { // want "calls helper.Pick, which draws"
		total += helper.Pick(s.rng, w+1)
	}
	return total
}

// dispatchBuggy draws through interface dispatch: the concrete
// implementation that advances the stream lives behind helper.Chooser.
func (s *sampler) dispatchBuggy() int {
	total := 0
	for _, w := range s.weights { // want "via Chooser.Choose"
		total += s.choose.Choose(w + 1)
	}
	return total
}

// weighClean calls a pure cross-package helper: no sink is reachable, so
// the loop may range the map directly.
func (s *sampler) weighClean() int {
	total := 0
	for _, w := range s.weights {
		total += helper.Weight(w)
	}
	return total
}

// pickSorted is the idiomatic fix: collect the keys, sort, then draw in
// slice order.
func (s *sampler) pickSorted() int {
	keys := make([]string, 0, len(s.weights))
	for k := range s.weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += helper.Pick(s.rng, s.weights[k]+1)
	}
	return total
}
