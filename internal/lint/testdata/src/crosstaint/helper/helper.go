// Package helper hides order-sensitive draws behind an exported API. A
// package-local taint engine analyzing the parent fixture sees only opaque
// calls into this package and stays silent; the whole-program call graph
// follows them here and finds the sinks.
package helper

import "math/rand"

// Pick draws from the stream: calling it inside a map range leaks Go's
// randomized iteration order into the draw sequence.
func Pick(rng *rand.Rand, n int) int { return rng.Intn(n) }

// Weight is pure: no draw, no send, no scheduling.
func Weight(n int) int { return n * 3 }

// Chooser is the dispatch seam: a caller holding the interface cannot see
// which implementation draws.
type Chooser interface{ Choose(n int) int }

// RandomChooser draws on every call.
type RandomChooser struct{ RNG *rand.Rand }

// Choose advances the stream.
func (c *RandomChooser) Choose(n int) int { return c.RNG.Intn(n) }

// FixedChooser is pure.
type FixedChooser struct{}

// Choose returns its input untouched.
func (FixedChooser) Choose(n int) int { return n }
