// Package wallclockfree proves the wallclock analyzer's applicability
// gate: this package never imports the simulation kernel, so its wall-clock
// reads are legitimate (it could be a CLI progress meter or a benchmark
// driver) and must produce no diagnostics.
package wallclockfree

import "time"

// Elapsed times a real-world operation with the real clock — fine outside
// the simulated world.
func Elapsed(op func()) time.Duration {
	begin := time.Now()
	op()
	return time.Since(begin)
}
