// Package wallclock seeds the wallclock analyzer: it imports the
// simulation kernel, so every wall-clock read here is a determinism bug —
// virtual time is the only clock a simulated package may consult.
package wallclock

import (
	"time"

	"stabl/internal/sim"
)

type worker struct {
	sched *sim.Scheduler
	start time.Duration
}

// deadlineBuggy stamps events with the wall clock instead of the virtual
// clock.
func (w *worker) deadlineBuggy() time.Time {
	return time.Now() // want "time.Now reads the wall clock in a simulated package"
}

// waitBuggy blocks the simulation goroutine for real seconds.
func (w *worker) waitBuggy() {
	time.Sleep(time.Second) // want "time.Sleep reads the wall clock"
}

// tickBuggy builds a real timer that fires on the OS clock, invisible to
// the scheduler.
func (w *worker) tickBuggy() *time.Timer {
	return time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
}

// zeroTickerBuggy constructs a ticker directly, bypassing any clock at all.
func (w *worker) zeroTickerBuggy() time.Ticker {
	return time.Ticker{} // want "time.Ticker constructed directly"
}

// virtualClean is the idiom: durations are plain values, instants come from
// the scheduler, and timers are scheduler events.
func (w *worker) virtualClean() time.Duration {
	const step = 250 * time.Millisecond
	w.sched.After(step, func() {})
	return w.sched.Now() - w.start
}
