package wallclock

import "time"

// Test files are exempt: a harness may time itself with the real clock
// without perturbing experiment reproducibility. No diagnostics expected
// anywhere in this file.
func harnessElapsed() time.Duration {
	begin := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(begin)
}
