// Package unsorted seeds the unsorted-broadcast analyzer: the two-step
// variant of the map-order bug, where keys are collected into a slice (so
// maprange-rng stays silent — the collection loop draws nothing) but the
// slice is used before the sort that completes the idiom.
package unsorted

import (
	"sort"

	"stabl/internal/simnet"
)

type hub struct {
	ctx   *simnet.Context
	conns map[simnet.NodeID]int
}

// pingAllBuggy is the PR 1 keep-alive bug shape: the peer slice inherits
// map order and every Send then samples latency streams in that order.
func (h *hub) pingAllBuggy() {
	peers := make([]simnet.NodeID, 0, len(h.conns))
	for id := range h.conns {
		peers = append(peers, id)
	}
	for _, id := range peers { // want "holds the keys of map h.conns and is iterated before any sort"
		h.ctx.Send(id, "ping")
	}
}

// broadcastBuggy hands the unsorted keys straight to a send.
func (h *hub) broadcastBuggy() {
	peers := make([]simnet.NodeID, 0, len(h.conns))
	for id := range h.conns {
		peers = append(peers, id)
	}
	h.ctx.Broadcast(peers, "hello") // want "passed to h.ctx.Broadcast before any sort"
}

// pingAllFixed completes the idiom: sort between collect and use.
func (h *hub) pingAllFixed() {
	peers := make([]simnet.NodeID, 0, len(h.conns))
	for id := range h.conns {
		peers = append(peers, id)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, id := range peers {
		h.ctx.Send(id, "ping")
	}
}

// countClean only measures the slice; no order-sensitive use.
func (h *hub) countClean() int {
	ids := make([]simnet.NodeID, 0, len(h.conns))
	for id := range h.conns {
		ids = append(ids, id)
	}
	return len(ids)
}
