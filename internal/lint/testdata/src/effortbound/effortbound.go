// Package effortbound seeds the effort-bound analyzer: statically-unbounded
// control flow in handler-path code. The node type is handler-shaped, so
// its methods run inside a handler's virtual instant and must terminate on
// every input. Loops that bound themselves (a condition, a range operand, a
// break or return) and recursion behind a guard stay silent, as does
// anything outside the handler path.
package effortbound

type node struct {
	pending []int
	depth   int
}

func (n *node) Start(ctx any)                 {}
func (n *node) Deliver(from int, payload any) { n.spin() }
func (n *node) Stop()                         {}

// spin never exits: nothing in the body breaks or returns.
func (n *node) spin() {
	for { // want "condition-less for loop with no break or return"
		n.depth++
	}
}

// walkBuggy recurses with no terminating branch.
func (n *node) walkBuggy(d int) {
	n.depth = d
	n.walkBuggy(d + 1) // want "walkBuggy calls itself unconditionally"
}

// drainClean bounds itself with a break.
func (n *node) drainClean() {
	for {
		if len(n.pending) == 0 {
			break
		}
		n.pending = n.pending[1:]
	}
}

// retryClean exits through a return.
func (n *node) retryClean() {
	for {
		if n.depth > 8 {
			return
		}
		n.depth++
	}
}

// countClean is bounded by its condition and range operands.
func (n *node) countClean() {
	for i := 0; i < len(n.pending); i++ {
		n.depth += n.pending[i]
	}
	for _, v := range n.pending {
		n.depth += v
	}
}

// walkClean guards the self-call: the branch decides termination.
func (n *node) walkClean(d int) {
	if d > 0 {
		n.walkClean(d - 1)
	}
}

// deferClean wraps the self-call in a closure: a separate call frame the
// scheduler decides to run or not.
func (n *node) deferClean() func() {
	return func() { n.deferClean() }
}

// harness is not handler-shaped; its busy loop is the harness's own
// business.
type harness struct{ ticks int }

func (h *harness) loop() {
	for {
		h.ticks++
	}
}
