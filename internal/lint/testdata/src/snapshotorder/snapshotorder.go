// Package snapshotorder seeds the snapshot-maporder analyzer: Snapshot and
// Restore paths that serialize a map range into a persistent slice must be
// flagged, while map-to-map copies, per-iteration fresh slices, the
// collect-sort idiom, and identical code outside the snapshot path all stay
// silent.
package snapshotorder

import "sort"

type validator struct {
	pending map[int]string
	tags    map[int][]string
	log     []int
}

type state struct {
	pending map[int]string
	tags    map[int][]string
	order   []int
}

// Snapshot serializes the pending map straight into the order slice: the
// captured bytes follow Go's randomized map order.
func (v *validator) Snapshot() any {
	st := &state{
		pending: make(map[int]string, len(v.pending)),
		tags:    make(map[int][]string, len(v.tags)),
	}
	for id, tx := range v.pending { // want "serializes map v.pending into slice st.order"
		st.pending[id] = tx
		st.order = append(st.order, id)
	}
	// Map-to-map copies with per-iteration fresh slices are
	// order-insensitive and must stay silent.
	for id, tags := range v.tags {
		st.tags[id] = append([]string(nil), tags...)
	}
	return st
}

// Restore reaches the hazard through a package-local helper: the path
// closure must follow calls out of Restore* declarations.
func (v *validator) Restore(st any) {
	s := st.(*state)
	v.pending = make(map[int]string, len(s.pending))
	for id, tx := range s.pending {
		v.pending[id] = tx
	}
	v.log = collectIDs(s.pending)
}

func collectIDs(m map[int]string) []int {
	var ids []int
	for id := range m { // want "serializes map m into slice ids"
		ids = append(ids, id)
	}
	return ids
}

// SnapshotSorted is the fix: collect, sort, then use. The sort call erases
// map order before anything observes it, so the analyzer stays silent.
func (v *validator) SnapshotSorted() any {
	st := &state{pending: make(map[int]string, len(v.pending))}
	keys := make([]int, 0, len(v.pending))
	for id := range v.pending {
		keys = append(keys, id)
	}
	sort.Ints(keys)
	for _, id := range keys {
		st.pending[id] = v.pending[id]
		st.order = append(st.order, id)
	}
	return st
}

// debugDump is byte-for-byte the collectIDs hazard, but it is not reachable
// from any Snapshot/Restore declaration, so the snapshot-scoped analyzer
// leaves it to code review (and to maprange-rng if it ever grows a sink).
func (v *validator) debugDump() []int {
	var ids []int
	for id := range v.pending {
		ids = append(ids, id)
	}
	return ids
}
