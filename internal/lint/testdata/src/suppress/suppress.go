// Package suppress exercises the //stabl:nodet escape hatch: same-line and
// line-above directives silence a finding, and a directive scoped to a
// different analyzer does not.
package suppress

import "math/rand"

// sameLine is silenced by a trailing directive.
func sameLine() int {
	return rand.Intn(10) //stabl:nodet globalrand -- fixture: demonstrates same-line suppression
}

// lineAbove is silenced by a directive on the preceding line.
func lineAbove() int {
	//stabl:nodet -- fixture: unscoped directive silences every analyzer on the next line
	return rand.Intn(10)
}

// wrongScope carries a directive for a different analyzer, so the
// globalrand finding survives.
func wrongScope() int {
	return rand.Intn(10) //stabl:nodet wallclock -- fixture: wrong scope, does not apply // want "rand.Intn draws from the process-global math/rand source"
}
