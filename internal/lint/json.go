package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the machine-readable rendering of one finding. The
// field order is fixed by this struct and the encoding is one object per
// line, so `stabl lint -json` output is byte-identical across runs exactly
// like the text form — CI diffing and tooling can treat it as canonical.
type jsonDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// WriteJSON renders diagnostics as a JSON array, one object per finding in
// the given (already sorted) order. Suppressed findings are included and
// flagged rather than dropped, so consumers can audit the //stabl:nodet
// escape hatches in force; callers deciding exit status should count only
// the unsuppressed ones (as Exitable does).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			Analyzer:   d.Analyzer,
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Exitable counts the diagnostics that should fail the run: everything not
// covered by a //stabl:nodet directive.
func Exitable(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed {
			n++
		}
	}
	return n
}
