package lint

import (
	"go/ast"
	"go/types"
)

// CrossPartitionState flags writes into another node's state: an assignment
// whose left-hand side reaches a field through an index into a table of
// handler-shaped values (types with Start/Deliver/Stop methods — network
// endpoints). Under the sequential kernel such a write is merely bad
// layering; under the parallel kernel (internal/sim's EnableParallel) the
// peer may belong to a different partition queue executing concurrently, so
// the write is a data race AND a determinism break — peer state may only
// change through the message-delivery path, whose merge order is fixed by
// event keys. The analyzer is structural: it cannot prove the indexed node
// is a *different* node, so self-writes through a table (rare; route them
// through a local variable or suppress with //stabl:nodet) are flagged too.
var CrossPartitionState = &Analyzer{
	Name: "cross-partition-state",
	Doc:  "peer node state mutated through a handler table instead of the message-delivery path",
	Run:  runCrossPartitionState,
}

func runCrossPartitionState(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					p.checkCrossWrite(lhs)
				}
			case *ast.IncDecStmt:
				p.checkCrossWrite(n.X)
			}
			return true
		})
	}
}

// checkCrossWrite walks the written expression's access chain outward-in; a
// field selection above an index whose element is handler-shaped means the
// write lands inside a peer fetched from a table.
func (p *Pass) checkCrossWrite(lhs ast.Expr) {
	if p.IsTestFile(lhs.Pos()) {
		// Test rigs poke node internals directly by design.
		return
	}
	sawField := false
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				sawField = true
			}
			lhs = e.X
		case *ast.IndexExpr:
			if tv, ok := p.Info.Types[e]; ok && sawField && handlerShaped(tv.Type) {
				p.Reportf(e.Pos(),
					"write into %s reaches another node's state through a peer table; peer state must only change via the message-delivery path (send a message instead)",
					types.ExprString(e))
				return
			}
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return
		}
	}
}

// handlerShaped reports whether t (possibly behind a pointer) has the
// network-endpoint method shape: Start, Deliver and Stop all present in its
// method set.
func handlerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		// Method sets of addressable struct values include pointer
		// receivers.
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	var start, deliver, stop bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Start":
			start = true
		case "Deliver":
			deliver = true
		case "Stop":
			stop = true
		}
	}
	return start && deliver && stop
}
