package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutinePurity flags process-level concurrency inside the simulation's
// handler paths: `go` statements, channel operations (send, receive,
// select, range) and sync/sync-atomic usage in code reachable
// from a node handler (a method on a Start/Deliver/Stop-shaped type) —
// i.e. the code the virtual-time kernel executes. Handlers run
// single-threaded under the sequential kernel and partition-parallel under
// the conservative PDES mode; either way, real goroutines and locks inside
// them couple the simulated event stream to the Go scheduler and the
// host's core count, which no experiment seed controls. The sanctioned
// barrier seam — internal/sim's parallel driver, internal/simnet's sharded
// state and internal/parsim — is exempt: that is exactly where
// cross-partition concurrency is allowed to live, behind the keyed merge
// that makes it byte-identical. Struct fields of sync types are flagged at
// the declaration so one suppression covers every lock site:
//
//	mu sync.Mutex //stabl:nodet goroutine-purity -- guards cross-run memoization only
var GoroutinePurity = &Analyzer{
	Name: "goroutine-purity",
	Doc:  "goroutines, channels or sync primitives in handler-path code outside the parsim seam",
	Run:  runGoroutinePurity,
}

// seamPkgs is the sanctioned concurrency seam: the parallel kernel and the
// layers that implement its barrier/merge machinery.
var seamPkgs = map[string]bool{
	"stabl/internal/sim":    true,
	"stabl/internal/simnet": true,
	"stabl/internal/parsim": true,
}

func runGoroutinePurity(p *Pass) {
	if seamPkgs[p.Pkg.Path()] {
		return
	}
	idx := p.Prog.Index()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !idx.handler[fn] || p.IsTestFile(fd.Pos()) {
				continue
			}
			p.checkHandlerConcurrency(fd.Body)
		}
	}
	// Sync-typed fields and variables are flagged at the declaration even
	// before any handler locks them: the field is the design decision.
	p.checkSyncDecls()
}

// checkHandlerConcurrency flags concurrency constructs inside one
// handler-path function body.
func (p *Pass) checkHandlerConcurrency(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.Reportf(n.Pos(),
				"go statement in handler-path code: handlers execute in virtual time under the kernel's partition plan; spawning goroutines hands event order to the Go scheduler — schedule through sim.Scheduler / simnet.Context instead")
		case *ast.SendStmt:
			p.Reportf(n.Pos(),
				"channel send in handler-path code: channel scheduling is invisible to the experiment seed — deliver through the simnet message path instead")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				p.Reportf(n.Pos(),
					"channel receive in handler-path code: channel scheduling is invisible to the experiment seed — deliver through the simnet message path instead")
			}
		case *ast.SelectStmt:
			p.Reportf(n.Pos(),
				"select in handler-path code: select picks ready cases pseudo-randomly, which no experiment seed controls")
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					p.Reportf(n.For,
						"range over a channel in handler-path code: channel scheduling is invisible to the experiment seed")
				}
			}
		case *ast.Ident:
			if fn, ok := p.Info.Uses[n].(*types.Func); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sync", "sync/atomic":
					p.Reportf(n.Pos(),
						"%s.%s in handler-path code: locks and atomics order racing accesses nondeterministically — handler state must be partition-local, mutated only through the message-delivery path",
						fn.Pkg().Name(), fn.Name())
				}
			}
		}
		return true
	})
}

// checkSyncDecls flags struct fields and package-level variables of sync /
// sync/atomic types in simulated packages that declare handler-path code.
// The declaration is reported (not each use) so one //stabl:nodet on the
// field line documents the justification once. Orchestration packages that
// import the chains but never run inside the kernel (campaign workers fan
// out whole experiments across OS threads) keep their mutexes.
func (p *Pass) checkSyncDecls() {
	if !simulatedPackage(p.Pkg) || !p.declaresHandlerCode() {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			field, ok := n.(*ast.Field)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[field.Type]
			if !ok || p.IsTestFile(field.Pos()) {
				return true
			}
			if pkg := namedTypePkg(tv.Type); pkg == "sync" || pkg == "sync/atomic" {
				p.Reportf(field.Pos(),
					"%s field in a simulated package: handler state must be partition-local and mutated only through the message-delivery path; if this guards cross-run (not cross-node) state, justify with //stabl:nodet goroutine-purity",
					types.ExprString(field.Type))
			}
			return true
		})
	}
}

// declaresHandlerCode reports whether the current package declares at least
// one handler-path function.
func (p *Pass) declaresHandlerCode() bool {
	idx := p.Prog.Index()
	for fn := range idx.handler {
		if idx.owner[fn] == p.Target {
			return true
		}
	}
	return false
}

// namedTypePkg returns the import path of the named type behind t (pointers
// stripped), or "".
func namedTypePkg(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}
