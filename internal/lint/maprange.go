package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeRNG flags `range` statements over maps whose body — transitively,
// through calls to functions in the same package — draws from an RNG
// stream, sends on the simulated network, or schedules events. Go
// randomizes map iteration order, so any such loop makes the run's event
// stream depend on per-process hash seeds instead of the experiment seed.
// This is exactly the bug class behind all four nondeterminism fixes
// shipped so far (client retry, conn keep-alive, redbelly resendRound,
// avalanche closeRound); the fix is the sorted-keys idiom those commits
// introduced: collect the keys into a slice, sort it, then range the slice.
var MapRangeRNG = &Analyzer{
	Name: "maprange-rng",
	Doc:  "range over a map whose body draws RNG, sends on the simnet, or schedules events",
	Run:  runMapRangeRNG,
}

func runMapRangeRNG(p *Pass) {
	// Package-local call graph: map each declared function to its body so
	// sinks reached through helpers in the same package are found too.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// nondet reports whether fn transitively reaches a sink, memoized.
	// visiting breaks recursion cycles; the first sink in source order wins
	// so messages are deterministic.
	memo := make(map[*types.Func]string) // "" = proven clean
	visiting := make(map[*types.Func]bool)
	var nondet func(fn *types.Func) string
	nondet = func(fn *types.Func) string {
		if desc, ok := memo[fn]; ok {
			return desc
		}
		if visiting[fn] {
			return ""
		}
		fd, ok := decls[fn]
		if !ok {
			return ""
		}
		visiting[fn] = true
		desc := p.scanForSink(fd.Body, nondet, fn)
		delete(visiting, fn)
		memo[fn] = desc
		return desc
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if desc := p.scanForSink(rng.Body, nondet, nil); desc != "" {
				p.Reportf(rng.For,
					"range over map %s: body %s, so the event stream follows Go's randomized map order; collect the keys, sort, then range the slice",
					types.ExprString(rng.X), desc)
			}
			return true
		})
	}
}

// scanForSink walks body in source order and returns a description of the
// first order-sensitive sink it reaches, either directly or through a call
// to (or reference of) a package-local function. self, when non-nil, is
// skipped so recursive functions do not report through themselves.
func (p *Pass) scanForSink(body ast.Node, nondet func(*types.Func) string, self *types.Func) string {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn == self {
			return true
		}
		if desc, ok := sinkFunc(fn); ok {
			found = desc
			return false
		}
		if fn.Pkg() == p.Pkg {
			if desc := nondet(fn); desc != "" {
				found = "calls " + fn.Name() + ", which " + desc
				return false
			}
		}
		return true
	})
	return found
}
