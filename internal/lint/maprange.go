package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeRNG flags `range` statements over maps whose body — transitively,
// through calls to functions in any package of the module, method values,
// and interface dispatch over the module's concrete implementers — draws
// from an RNG stream, sends on the simulated network, or schedules events.
// Go randomizes map iteration order, so any such loop makes the run's event
// stream depend on per-process hash seeds instead of the experiment seed.
// This is exactly the bug class behind all four nondeterminism fixes
// shipped so far (client retry, conn keep-alive, redbelly resendRound,
// avalanche closeRound); the fix is the sorted-keys idiom those commits
// introduced: collect the keys into a slice, sort it, then range the slice.
//
// The PR 5 engine resolved calls within one package only, so a loop that
// reached the RNG through a helper in a sibling internal package passed;
// the whole-program taint engine (callgraph.go) closes that hole.
var MapRangeRNG = &Analyzer{
	Name: "maprange-rng",
	Doc:  "range over a map whose body draws RNG, sends on the simnet, or schedules events (cross-package)",
	Run:  runMapRangeRNG,
}

func runMapRangeRNG(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if desc := p.Prog.scanForSink(rng.Body, p.Target, nil); desc != "" {
				p.Reportf(rng.For,
					"range over map %s: body %s, so the event stream follows Go's randomized map order; collect the keys, sort, then range the slice",
					types.ExprString(rng.X), desc)
			}
			return true
		})
	}
}
