// Package lint is a stdlib-only static-analysis engine that machine-checks
// the determinism invariants the STABL reproduction depends on.
//
// Every experiment result in this repo — and the paper's headline
// sensitivity metric in particular — is only trustworthy because runs are
// bit-for-bit reproducible from their seed. Four separate nondeterminism
// bugs have already shipped and been fixed by hand (the client retry and
// connection keep-alive loops, redbelly's resendRound, avalanche's
// closeRound), and every one of them was the same shape: a `range` over a
// Go map whose body drew from a shared RNG stream or sent on the simulated
// network, letting Go's randomized map order desync otherwise identical
// runs. Rather than rediscovering that bug class by bisecting golden-test
// failures, the invariants are encoded here as analyzers and enforced by
// `stabl lint` (wired into `make verify`).
//
// The engine analyzes whole programs, not single packages: Load type-checks
// the target packages plus every module-local dependency through one shared
// FileSet/importer, and callgraph.go layers a cross-package call graph and
// taint engine on top (interface dispatch resolved over the module's
// concrete implementers), so a map range whose body reaches the RNG through
// a helper in another package is flagged just like a direct draw. An
// Analyzer is a named function over one target package with program-wide
// indexes in reach; diagnostics are position-sorted so output is
// byte-identical across runs; and a `//stabl:nodet` comment suppresses a
// finding on its own line or the line below, optionally scoped to specific
// analyzers, with a justification after `--`:
//
//	//stabl:nodet globalrand -- validation-only context, values unused
//
// Packages are loaded and type-checked with go/parser + go/types only; one
// `go list -deps -json` invocation (cached across the run) resolves import
// paths, so the module needs no dependencies beyond the standard library.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named determinism rule. Run inspects a single
// type-checked package through the Pass and reports findings with
// Pass.Reportf. Analyzers must be pure functions of the package: no
// file-system access, no global state, and (ironically) no map-order
// dependence in their own output — the engine sorts diagnostics, but
// messages themselves must not embed nondeterministic content.
type Analyzer struct {
	// Name identifies the analyzer in output lines, -analyzers flags and
	// //stabl:nodet scopes. Lower-case, hyphenated.
	Name string
	// Doc is a one-line description shown by `stabl lint -list`.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer. Prog is the
// whole program the package was loaded into: analyzers that follow calls
// across package boundaries (taint, reachability, field writes) go through
// its indexes; package-local analyzers can ignore it.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Prog     *Program
	Target   *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file. Several analyzers
// exempt tests: test harnesses may legitimately consult wall clocks and
// fixed seeds without perturbing experiment reproducibility.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding. String renders the conventional
// path:line:col: [analyzer] message form shared by `stabl lint` and
// `stabllint`. Suppressed marks findings silenced by a //stabl:nodet
// directive: Run drops them, RunAll keeps them flagged so -json consumers
// can audit the escape hatches in use.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies the analyzers to the program's target packages and returns
// the surviving diagnostics: suppressed findings are dropped, the rest
// deduplicated and sorted so two runs over the same tree produce
// byte-identical output.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	all := RunAll(prog, analyzers)
	out := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunAll is Run without the suppression filter: every finding is returned,
// sorted by (file, line, column, analyzer, message), with the ones a
// //stabl:nodet directive covers marked Suppressed instead of dropped.
func RunAll(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		sup := suppressions(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				Target:   pkg,
				diags:    &pkgDiags,
			}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			d.Suppressed = sup.covers(d)
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Deduplicate: the same finding can surface twice when an analyzer
	// walks overlapping scopes (e.g. nested map ranges sharing a sink).
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// nodetDirective is the suppression comment prefix. The full grammar is
//
//	//stabl:nodet [analyzer[,analyzer...]] [-- justification]
//
// With no analyzer names the directive silences every analyzer. The
// directive applies to findings on its own line and on the line directly
// below it, so it works both as a trailing comment and as a standalone
// comment above the flagged statement.
const nodetDirective = "stabl:nodet"

// suppression is one parsed //stabl:nodet directive.
type suppression struct {
	file      string
	line      int
	analyzers map[string]bool // nil = all analyzers
}

type suppressionSet []suppression

// suppressions extracts every //stabl:nodet directive from the files.
func suppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	var set suppressionSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, nodetDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, nodetDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. stabl:nodetect — not ours
				}
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i] // everything after -- is justification
				}
				var names map[string]bool
				for _, field := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					if names == nil {
						names = make(map[string]bool)
					}
					names[field] = true
				}
				pos := fset.Position(c.Pos())
				set = append(set, suppression{file: pos.Filename, line: pos.Line, analyzers: names})
			}
		}
	}
	return set
}

// covers reports whether any directive in the set silences d.
func (s suppressionSet) covers(d Diagnostic) bool {
	for _, sup := range s {
		if sup.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line != sup.line && d.Pos.Line != sup.line+1 {
			continue
		}
		if sup.analyzers == nil || sup.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}
