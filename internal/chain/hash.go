package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Hash is a 32-byte content address.
type Hash [32]byte

// String renders the first 8 bytes in hex, enough for logs.
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// IsZero reports whether the hash is all zeroes (the genesis parent).
func (h Hash) IsZero() bool { return h == Hash{} }

// HashTx computes a transaction's content address. Note that Tx.ID is an
// experiment-level identifier chosen by the client; the hash binds the
// actual transfer contents, which is what validators cross-check.
func HashTx(tx Tx) Hash {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(tx.ID))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(tx.From))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(tx.To))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], tx.Amount)
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], tx.Nonce)
	_, _ = h.Write(buf[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// HashBlock computes a block's content address over its height, proposer,
// parent link and transaction hashes. The decision timestamp is explicitly
// excluded: every validator observes the decision at a slightly different
// instant, but all of them must agree on the block's identity.
func HashBlock(b Block) Hash {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(b.Height))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(b.Proposer))
	_, _ = h.Write(buf[:])
	_, _ = h.Write(b.Parent[:])
	for _, tx := range b.Txs {
		txh := HashTx(tx)
		_, _ = h.Write(txh[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}
