package chain

import (
	"testing"
	"time"

	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// testValidator is a minimal chain model: every leaderless "round" it seals
// whatever is in its pool into a block and applies it locally. It exists to
// exercise BaseNode in isolation.
type testValidator struct {
	base *BaseNode
}

func (v *testValidator) Start(ctx *simnet.Context) { v.base.Reset(ctx) }
func (v *testValidator) Stop()                     {}

func (v *testValidator) Deliver(from simnet.NodeID, payload any) {
	if v.base.HandleClient(from, payload) {
		return
	}
	if v.base.HandleSync(from, payload) {
		return
	}
}

func (v *testValidator) seal(now time.Duration) {
	txs := v.base.Pool.Pop(0)
	v.base.SubmitBlock(Block{
		Height:    v.base.ChainTip(),
		Parent:    v.base.TipHash(),
		Txs:       txs,
		DecidedAt: now,
	})
}

// clientRecorder records TxCommitted notifications.
type clientRecorder struct {
	ctx       *simnet.Context
	committed []TxID
}

func (c *clientRecorder) Start(ctx *simnet.Context) { c.ctx = ctx }
func (c *clientRecorder) Stop()                     {}
func (c *clientRecorder) Deliver(_ simnet.NodeID, payload any) {
	if msg, ok := payload.(TxCommitted); ok {
		c.committed = append(c.committed, msg.ID)
	}
}

func baseTestSetup(t *testing.T, cfg BaseConfig) (*sim.Scheduler, *simnet.Network, *testValidator, *testValidator, *clientRecorder, *Monitor) {
	t.Helper()
	sched := sim.New(5)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(5 * time.Millisecond)})
	mon := NewMonitor()
	peers := []simnet.NodeID{0, 1}
	v0 := &testValidator{base: NewBaseNode(0, peers, mon, cfg)}
	v1 := &testValidator{base: NewBaseNode(1, peers, mon, cfg)}
	cl := &clientRecorder{}
	net.AddNode(0, v0)
	net.AddNode(1, v1)
	net.AddNode(100, cl)
	net.StartAll()
	return sched, net, v0, v1, cl, mon
}

func TestBaseNodeCommitNotifiesSubscriber(t *testing.T) {
	sched, _, v0, _, cl, mon := baseTestSetup(t, BaseConfig{})
	tx := mkTx(0, 1, 1, 2, 0)
	cl.ctx.Send(0, SubmitTx{Tx: tx})
	sched.RunUntil(100 * time.Millisecond)
	if v0.base.Pool.Len() != 1 {
		t.Fatalf("pool len = %d", v0.base.Pool.Len())
	}
	v0.seal(sched.Now())
	sched.RunUntil(200 * time.Millisecond)
	if len(cl.committed) != 1 || cl.committed[0] != tx.ID {
		t.Fatalf("client notifications = %v", cl.committed)
	}
	if mon.UniqueCommits() != 1 {
		t.Fatalf("monitor commits = %d", mon.UniqueCommits())
	}
}

func TestBaseNodeDuplicateOfCommittedAcksImmediately(t *testing.T) {
	sched, _, v0, _, cl, _ := baseTestSetup(t, BaseConfig{})
	tx := mkTx(0, 1, 1, 2, 0)
	cl.ctx.Send(0, SubmitTx{Tx: tx})
	sched.RunUntil(50 * time.Millisecond)
	v0.seal(sched.Now())
	sched.RunUntil(100 * time.Millisecond)
	cl.ctx.Send(0, SubmitTx{Tx: tx}) // duplicate after commit
	sched.RunUntil(200 * time.Millisecond)
	if len(cl.committed) != 2 {
		t.Fatalf("duplicate not acked: %v", cl.committed)
	}
	if v0.base.Pool.Len() != 0 {
		t.Fatal("duplicate entered pool")
	}
}

func TestBaseNodeExecBudgetDelaysApply(t *testing.T) {
	// 100 tx/s budget; a 200-tx block takes ~2 s to execute.
	sched, _, v0, _, cl, mon := baseTestSetup(t, BaseConfig{ExecRate: 100, ExecBurst: 1})
	txs := make([]Tx, 200)
	for i := range txs {
		txs[i] = mkTx(0, uint32(i), 1, 2, 0)
		cl.ctx.Send(0, SubmitTx{Tx: txs[i]})
	}
	sched.RunUntil(50 * time.Millisecond)
	v0.seal(sched.Now())
	sched.RunUntil(time.Second)
	if mon.UniqueCommits() != 0 {
		t.Fatal("block applied before exec budget allowed")
	}
	sched.RunUntil(3 * time.Second)
	if mon.UniqueCommits() != 200 {
		t.Fatalf("commits = %d, want 200", mon.UniqueCommits())
	}
}

func TestBaseNodeOutOfOrderBlocksWait(t *testing.T) {
	sched, _, v0, _, _, mon := baseTestSetup(t, BaseConfig{})
	b0 := Block{Height: 0, Txs: []Tx{mkTx(0, 0, 1, 2, 0)}}
	b1 := Block{Height: 1, Parent: HashBlock(b0), Txs: []Tx{mkTx(0, 1, 1, 2, 0)}}
	v0.base.SubmitBlock(b1)
	sched.RunUntil(10 * time.Millisecond)
	if mon.UniqueCommits() != 0 {
		t.Fatal("future block applied early")
	}
	if v0.base.HeadPending() != 1 {
		t.Fatalf("HeadPending = %d, want 1", v0.base.HeadPending())
	}
	v0.base.SubmitBlock(b0)
	sched.RunUntil(20 * time.Millisecond)
	if mon.UniqueCommits() != 2 {
		t.Fatalf("commits = %d, want 2", mon.UniqueCommits())
	}
	if v0.base.Ledger.Height() != 2 {
		t.Fatalf("height = %d", v0.base.Ledger.Height())
	}
}

func TestBaseNodeCatchUpFetchesMissedBlocks(t *testing.T) {
	sched, net, v0, v1, _, _ := baseTestSetup(t, BaseConfig{SyncBatch: 3})
	net.Halt(1)
	// v0 advances 7 blocks while v1 is down.
	parent := Hash{}
	for i := 0; i < 7; i++ {
		b := Block{Height: i, Parent: parent, Txs: []Tx{mkTx(0, uint32(i), 1, 2, 0)}}
		parent = HashBlock(b)
		v0.base.SubmitBlock(b)
	}
	sched.RunUntil(time.Second)
	net.Restart(1)
	v1.base.StartCatchUp()
	sched.RunUntil(5 * time.Second)
	if v1.base.Ledger.Height() != 7 {
		t.Fatalf("v1 height after catch-up = %d, want 7", v1.base.Ledger.Height())
	}
	if v1.base.CatchingUp() {
		t.Fatal("catch-up still active after reaching head")
	}
}

func TestBaseNodeCatchUpRetriesOnSilence(t *testing.T) {
	sched, net, v0, v1, _, _ := baseTestSetup(t, BaseConfig{SyncBatch: 3, SyncRetry: time.Second})
	parent2 := Hash{}
	for i := 0; i < 2; i++ {
		b := Block{Height: i, Parent: parent2}
		parent2 = HashBlock(b)
		v0.base.SubmitBlock(b)
	}
	sched.RunUntil(100 * time.Millisecond)
	// Peer 0 goes down; v1's first sync request goes nowhere, but the
	// retry timer keeps the catch-up alive until 0 returns.
	net.Halt(0)
	v1.base.StartCatchUp()
	sched.RunUntil(3 * time.Second)
	net.Restart(0)
	sched.RunUntil(10 * time.Second)
	if v1.base.Ledger.Height() != 2 {
		t.Fatalf("v1 height = %d, want 2", v1.base.Ledger.Height())
	}
}

func TestBaseNodeRestartClearsPool(t *testing.T) {
	sched, net, v0, _, cl, _ := baseTestSetup(t, BaseConfig{})
	cl.ctx.Send(0, SubmitTx{Tx: mkTx(0, 1, 1, 2, 0)})
	sched.RunUntil(100 * time.Millisecond)
	if v0.base.Pool.Len() != 1 {
		t.Fatal("tx not pooled")
	}
	net.Halt(0)
	net.Restart(0)
	if v0.base.Pool.Len() != 0 {
		t.Fatal("pool survived restart; mempool must be volatile")
	}
}

func TestBaseNodeOnCommitHookAndOnLocalSubmit(t *testing.T) {
	sched, _, v0, _, cl, _ := baseTestSetup(t, BaseConfig{})
	var hookBlocks, localSubmits int
	v0.base.OnCommit = func(Block, []Tx) { hookBlocks++ }
	v0.base.OnLocalSubmit = func(Tx) { localSubmits++ }
	cl.ctx.Send(0, SubmitTx{Tx: mkTx(0, 1, 1, 2, 0)})
	sched.RunUntil(50 * time.Millisecond)
	v0.seal(sched.Now())
	sched.RunUntil(100 * time.Millisecond)
	if hookBlocks != 1 || localSubmits != 1 {
		t.Fatalf("hooks: commit=%d submit=%d", hookBlocks, localSubmits)
	}
}

func TestMonitorDeduplicatesAcrossNodes(t *testing.T) {
	mon := NewMonitor()
	b := Block{Height: 0, Txs: []Tx{mkTx(0, 0, 1, 2, 0)}}
	mon.RecordBlock(0, b, time.Second)
	mon.RecordBlock(1, b, 2*time.Second)
	if mon.UniqueCommits() != 1 {
		t.Fatalf("commits = %d, want 1", mon.UniqueCommits())
	}
	if mon.Commits()[0].Committed != time.Second {
		t.Fatal("first-commit time overwritten")
	}
	if mon.MaxHeight() != 0 {
		t.Fatalf("MaxHeight = %d", mon.MaxHeight())
	}
	if mon.LastCommitAt() != time.Second {
		t.Fatalf("LastCommitAt = %v", mon.LastCommitAt())
	}
}

func TestMonitorCommittedSince(t *testing.T) {
	mon := NewMonitor()
	for i := 0; i < 3; i++ {
		mon.RecordBlock(0, Block{Height: i, Txs: []Tx{mkTx(0, uint32(i), 1, 2, 0)}},
			time.Duration(i)*time.Second)
	}
	if got := mon.CommittedSince(time.Second); got != 2 {
		t.Fatalf("CommittedSince(1s) = %d, want 2", got)
	}
	if got := mon.CommittedSince(10 * time.Second); got != 0 {
		t.Fatalf("CommittedSince(10s) = %d, want 0", got)
	}
}
