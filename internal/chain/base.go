package chain

import (
	"math/rand"
	"time"

	"stabl/internal/metrics"
	"stabl/internal/overlay"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// BaseConfig parameterizes the chain-agnostic part of a validator.
type BaseConfig struct {
	// ExecRate is the node's transaction execution budget in tx/s; zero
	// means execution is instantaneous. A finite budget is what makes a
	// chain slow to drain the backlog accumulated during downtime
	// (Aptos, STABL §5).
	ExecRate float64
	// ExecBurst is the bucket burst in tx; defaults to one second of
	// ExecRate.
	ExecBurst float64
	// SyncBatch is the number of blocks fetched per catch-up round trip.
	SyncBatch int
	// SyncRetry is how long to wait for a catch-up response before
	// asking another peer.
	SyncRetry time.Duration
	// DuplicateExecCost is the execution-budget cost charged when a
	// client submits a transaction that is already committed. This
	// models Aptos' Block-STM speculative re-execution of redundant
	// transactions (SEQUENCE_NUMBER_TOO_OLD, STABL §7).
	DuplicateExecCost float64
}

func (c BaseConfig) withDefaults() BaseConfig {
	if c.SyncBatch <= 0 {
		c.SyncBatch = 200
	}
	if c.SyncRetry <= 0 {
		c.SyncRetry = 2 * time.Second
	}
	if c.ExecRate > 0 && c.ExecBurst <= 0 {
		c.ExecBurst = c.ExecRate
	}
	return c
}

// BaseNode implements the behaviour every validator model shares: accepting
// client submissions, maintaining a mempool, executing decided blocks in
// order under an execution budget, answering and issuing catch-up requests,
// and notifying subscribed clients when their transactions commit.
//
// Protocol models embed a *BaseNode by composition and drive it through
// SubmitBlock when their consensus decides.
type BaseNode struct {
	ID      simnet.NodeID
	Peers   []simnet.NodeID
	Ledger  *Ledger
	Pool    *Mempool
	Monitor *Monitor

	// OnCommit, if set, runs after a block is executed; chains use it to
	// prune their volatile structures.
	OnCommit func(b Block, executed []Tx)
	// OnCaughtUp, if set, runs when a catch-up round finds no more
	// blocks to fetch.
	OnCaughtUp func()
	// OnLocalSubmit, if set, runs when a client submission is accepted
	// into the pool; chains use it to trigger gossip or forwarding.
	OnLocalSubmit func(tx Tx)

	cfg       BaseConfig
	ctx       *simnet.Context
	exec      *simnet.TokenBucket
	rng       *rand.Rand
	extraExec float64
	// relay, when set, routes every validator broadcast over a structured
	// gossip overlay instead of the full mesh; nil preserves the legacy
	// byte-identical behaviour. Set once at deployment time (SetRelay),
	// it survives restarts — only its volatile caches clear in Reset.
	relay *overlay.Router

	// Volatile state, reset on every (re)start.
	subscribers   map[TxID][]simnet.NodeID
	pending       map[int]Block
	inPipeline    map[TxID]int // tx -> pending block height
	applying      bool
	applyingAt    int // height of the block being executed (-1 when idle)
	applyingBlock Block
	applyErrors   uint64
	syncTimer     sim.Timer
	syncActive    bool
}

// NewBaseNode constructs the shared validator core. The ledger persists
// across restarts; everything else is rebuilt in Reset.
func NewBaseNode(id simnet.NodeID, peers []simnet.NodeID, monitor *Monitor, cfg BaseConfig) *BaseNode {
	// Peers is shared, not copied: every validator reads the same
	// deployment-owned roster (nobody mutates it), and a per-node copy is
	// O(n^2) memory at 10k nodes.
	n := &BaseNode{
		ID:      id,
		Peers:   peers,
		Ledger:  NewLedger(),
		Monitor: monitor,
		cfg:     cfg.withDefaults(),
	}
	n.Ledger.VerifyParents = true
	n.Pool = NewMempool(func(id TxID) bool {
		_, ok := n.Ledger.Committed(id)
		return ok
	})
	return n
}

// Ctx returns the node's current simnet context (valid while running).
func (n *BaseNode) Ctx() *simnet.Context { return n.ctx }

// Consensus reports a protocol-level event (round start, commit, timeout,
// leader change) to the experiment's metrics recorder, stamped with the
// node's identity and the current virtual time. It is a no-op without an
// attached recorder, so instrumentation costs the chain models one call.
func (n *BaseNode) Consensus(kind metrics.EventKind, round int, leader simnet.NodeID, detail string) {
	if n.Monitor == nil || n.Monitor.Metrics() == nil || n.ctx == nil {
		return
	}
	n.Monitor.ConsensusEvent(metrics.Event{
		At:     n.ctx.Now(),
		Kind:   kind,
		Node:   n.ID,
		Round:  round,
		Leader: leader,
		Detail: detail,
	})
}

// Config returns the node's base configuration.
func (n *BaseNode) Config() BaseConfig { return n.cfg }

// SetRelay attaches a structured-gossip router (see internal/overlay). Must
// be called at deployment time, before the node first starts. With a relay
// attached, Broadcast travels the overlay, Unwrap filters relayed envelopes
// and Neighbors/randomPeer restrict to overlay neighbors, so every
// validator-to-validator message stays on overlay edges.
func (n *BaseNode) SetRelay(r *overlay.Router) { n.relay = r }

// Relay returns the attached overlay router (nil on the legacy full mesh).
func (n *BaseNode) Relay() *overlay.Router { return n.relay }

// Gossips reports whether this node disseminates over a structured overlay.
// Chain models branch on it where overlay routing needs different semantics
// (e.g. point-to-point vote sends that become broadcasts).
func (n *BaseNode) Gossips() bool { return n.relay != nil }

// Broadcast disseminates payload to every peer: over the overlay when a
// relay is attached, otherwise to the full sorted roster. This is the single
// seam all five chain models broadcast through.
func (n *BaseNode) Broadcast(payload any) {
	if n.relay != nil {
		n.relay.Broadcast(n.ctx, payload)
		return
	}
	n.ctx.Broadcast(n.Peers, payload)
}

// Unwrap filters one delivered payload through the overlay router: relayed
// envelopes are deduplicated and forwarded, direct traffic passes through.
// Chains call it first in Deliver and drop the payload when ok is false.
func (n *BaseNode) Unwrap(from simnet.NodeID, payload any) (inner any, ok bool) {
	if n.relay == nil {
		return payload, true
	}
	return n.relay.Unwrap(n.ctx, from, payload)
}

// Neighbors returns the peers this node may address directly: the overlay
// neighborhood when a relay is attached, else the full roster (self
// included — callers that need "others" must still filter, as with Peers).
func (n *BaseNode) Neighbors() []simnet.NodeID {
	if n.relay != nil {
		return n.relay.Neighbors()
	}
	return n.Peers
}

// Reset rebinds the node to a (re)started incarnation, dropping all volatile
// state. The mempool empties — in-flight transactions die with the process —
// while the ledger survives.
func (n *BaseNode) Reset(ctx *simnet.Context) {
	n.ctx = ctx
	n.rng = ctx.RNG("base.sync")
	n.Pool.Clear()
	n.subscribers = make(map[TxID][]simnet.NodeID)
	n.pending = make(map[int]Block)
	n.inPipeline = make(map[TxID]int)
	n.applying = false
	n.applyingAt = -1
	n.syncActive = false
	n.extraExec = 0
	if n.relay != nil {
		n.relay.Reset()
	}
	if n.cfg.ExecRate > 0 {
		n.exec = simnet.NewTokenBucket(n.cfg.ExecRate, n.cfg.ExecBurst)
	} else {
		n.exec = nil
	}
}

// HandleClient processes a client-facing message, returning true when the
// payload was consumed. Duplicate submissions of already-committed
// transactions are acknowledged immediately and, when configured, charged
// against the execution budget (speculative re-execution). Read requests
// answer from the local ledger — which is exactly why a client that trusts
// one validator trusts whatever that validator says.
func (n *BaseNode) HandleClient(from simnet.NodeID, payload any) bool {
	if req, ok := payload.(ReadReq); ok {
		n.ctx.Send(from, ReadResp{
			Seq:     req.Seq,
			Addr:    req.Addr,
			Balance: n.Ledger.Balance(req.Addr),
			Nonce:   n.Ledger.NextNonce(req.Addr),
			Height:  n.Ledger.Height(),
		})
		return true
	}
	sub, ok := payload.(SubmitTx)
	if !ok {
		return false
	}
	tx := sub.Tx
	if h, committed := n.Ledger.Committed(tx.ID); committed {
		if n.exec != nil && n.cfg.DuplicateExecCost > 0 {
			n.exec.Reserve(n.ctx.Now(), n.cfg.DuplicateExecCost)
		}
		n.ctx.Send(from, TxCommitted{ID: tx.ID, Height: h})
		return true
	}
	n.subscribers[tx.ID] = append(n.subscribers[tx.ID], from)
	if n.Pool.Add(tx) && n.OnLocalSubmit != nil {
		n.OnLocalSubmit(tx)
	}
	return true
}

// Subscribe registers an additional client to notify when tx commits; used
// by chains that forward transactions on behalf of clients.
func (n *BaseNode) Subscribe(id TxID, client simnet.NodeID) {
	n.subscribers[id] = append(n.subscribers[id], client)
}

// SubmitBlock hands a decided block to the execution pipeline. Blocks apply
// strictly in height order; duplicates and already-applied heights are
// ignored. Out-of-order blocks wait for their predecessors (which catch-up
// will fetch).
func (n *BaseNode) SubmitBlock(b Block) {
	if b.Height < n.Ledger.Height() {
		return
	}
	if _, dup := n.pending[b.Height]; dup {
		return
	}
	n.pending[b.Height] = b
	for _, tx := range b.Txs {
		n.inPipeline[tx.ID] = b.Height
	}
	n.pump()
}

// InPipeline reports whether tx sits in a decided-but-unexecuted block.
// Proposers consult it to avoid re-proposing transactions that are already
// on their way to the ledger.
func (n *BaseNode) InPipeline(id TxID) bool {
	_, ok := n.inPipeline[id]
	return ok
}

// TipHash returns the content address of the highest decided block —
// executed, executing, or queued — i.e. the parent the next proposal must
// link to.
func (n *BaseNode) TipHash() Hash {
	tip := n.Ledger.Height() - 1
	best := n.Ledger.TipHash()
	if n.applying && n.applyingAt > tip {
		tip = n.applyingAt
		best = HashBlock(n.applyingBlock)
	}
	for h, b := range n.pending {
		if h > tip {
			tip = h
			best = HashBlock(b)
		}
	}
	return best
}

// ChainTip returns the height the next proposal should use: one past the
// highest decided block, whether executed, executing, or still queued.
func (n *BaseNode) ChainTip() int {
	tip := n.Ledger.Height()
	if n.applying && n.applyingAt+1 > tip {
		tip = n.applyingAt + 1
	}
	for h := range n.pending {
		if h+1 > tip {
			tip = h + 1
		}
	}
	return tip
}

// ChargeExec consumes execution budget without scheduling work; it models
// speculative execution waste such as Block-STM re-executing an
// already-committed transaction.
func (n *BaseNode) ChargeExec(cost float64) {
	if n.exec != nil && cost > 0 {
		n.exec.Reserve(n.ctx.Now(), cost)
	}
}

// AddExecCost accumulates execution work that will be charged together with
// the next block application. Speculative re-execution of redundant
// transactions contends with block execution for the same CPU, so its cost
// lands on the critical path of commits.
func (n *BaseNode) AddExecCost(cost float64) {
	if cost > 0 {
		n.extraExec += cost
	}
}

// ProposalTxs returns up to max pool transactions that are neither executed
// nor already in the decided pipeline, in FIFO order.
func (n *BaseNode) ProposalTxs(max int) []Tx {
	out := make([]Tx, 0, max)
	for _, tx := range n.Pool.Peek(0) {
		if n.InPipeline(tx.ID) {
			continue
		}
		out = append(out, tx)
		if len(out) >= max {
			break
		}
	}
	return out
}

// ApplyErrors counts blocks rejected at apply time (duplicates or
// hash-chain violations).
func (n *BaseNode) ApplyErrors() uint64 { return n.applyErrors }

// HeadPending returns the lowest pending (decided but unexecuted) height, or
// -1 when the pipeline is empty.
func (n *BaseNode) HeadPending() int {
	if len(n.pending) == 0 {
		return -1
	}
	low := -1
	for h := range n.pending {
		if low == -1 || h < low {
			low = h
		}
	}
	return low
}

func (n *BaseNode) pump() {
	if n.applying {
		return
	}
	next := n.Ledger.Height()
	b, ok := n.pending[next]
	if !ok {
		return
	}
	delete(n.pending, next)
	n.applying = true
	n.applyingAt = next
	n.applyingBlock = b
	now := n.ctx.Now()
	readyAt := now
	if n.exec != nil {
		readyAt = n.exec.Reserve(now, float64(len(b.Txs))+n.extraExec)
		n.extraExec = 0
	}
	n.ctx.After(readyAt-now, func() {
		n.apply(b)
		n.applying = false
		n.pump()
	})
}

func (n *BaseNode) apply(b Block) {
	executed, err := n.Ledger.Append(b)
	if err != nil {
		// A duplicate height or a block that fails hash-chain
		// verification: drop it. Catch-up refetches the canonical
		// block from peers.
		n.applyErrors++
		return
	}
	now := n.ctx.Now()
	if n.Monitor != nil {
		n.Monitor.RecordBlock(n.ID, b, now)
	}
	drop := make(map[TxID]bool, len(b.Txs))
	for _, tx := range b.Txs {
		drop[tx.ID] = true
		delete(n.inPipeline, tx.ID)
		for _, client := range n.subscribers[tx.ID] {
			n.ctx.Send(client, TxCommitted{ID: tx.ID, Height: b.Height})
		}
		delete(n.subscribers, tx.ID)
	}
	n.Pool.Drop(drop)
	if n.OnCommit != nil {
		n.OnCommit(b, executed)
	}
}

// HandleSync processes catch-up traffic, returning true when the payload was
// consumed.
func (n *BaseNode) HandleSync(from simnet.NodeID, payload any) bool {
	switch msg := payload.(type) {
	case SyncReq:
		blocks := n.Ledger.BlocksFrom(msg.From, n.cfg.SyncBatch)
		n.ctx.Send(from, SyncResp{Blocks: blocks})
		return true
	case SyncResp:
		if !n.syncActive {
			return true
		}
		n.syncTimer.Stop()
		for _, b := range msg.Blocks {
			n.SubmitBlock(b)
		}
		if len(msg.Blocks) >= n.cfg.SyncBatch {
			n.requestSyncRound()
			return true
		}
		n.syncActive = false
		if n.OnCaughtUp != nil {
			n.OnCaughtUp()
		}
		return true
	default:
		return false
	}
}

// StartCatchUp begins fetching missed blocks from peers. It is idempotent
// while a catch-up is in progress.
func (n *BaseNode) StartCatchUp() {
	if n.syncActive {
		return
	}
	n.syncActive = true
	n.requestSyncRound()
}

// CatchingUp reports whether a catch-up round is in flight.
func (n *BaseNode) CatchingUp() bool { return n.syncActive }

func (n *BaseNode) requestSyncRound() {
	peer := n.randomPeer()
	if peer == n.ID {
		n.syncActive = false
		if n.OnCaughtUp != nil {
			n.OnCaughtUp()
		}
		return
	}
	from := n.nextNeededHeight()
	n.ctx.Send(peer, SyncReq{From: from})
	n.syncTimer.Stop()
	n.syncTimer = n.ctx.After(n.cfg.SyncRetry, func() {
		if n.syncActive {
			n.requestSyncRound()
		}
	})
}

func (n *BaseNode) nextNeededHeight() int {
	h := n.Ledger.Height()
	for {
		if _, ok := n.pending[h]; !ok {
			return h
		}
		h++
	}
}

func (n *BaseNode) randomPeer() simnet.NodeID {
	// Overlay mode pulls from direct neighbors only (the list excludes
	// self), so catch-up traffic stays on overlay edges. Either path costs
	// exactly one draw from the same stream.
	if n.relay != nil {
		ns := n.relay.Neighbors()
		if len(ns) == 0 {
			return n.ID
		}
		return ns[n.rng.Intn(len(ns))]
	}
	others := make([]simnet.NodeID, 0, len(n.Peers))
	for _, p := range n.Peers {
		if p != n.ID {
			others = append(others, p)
		}
	}
	if len(others) == 0 {
		return n.ID
	}
	return others[n.rng.Intn(len(others))]
}
