package chain

// Mempool is a FIFO transaction pool with deduplication against both its own
// contents and an external committed-check (usually the node's ledger).
// Mempool contents are volatile: they are lost on crash, which is why
// transient failures create client-visible backlogs.
type Mempool struct {
	queue     []Tx
	inPool    map[TxID]bool
	committed func(TxID) bool
	added     uint64
	rejected  uint64
}

// NewMempool creates a pool. committed may be nil, in which case only
// in-pool duplicates are rejected.
func NewMempool(committed func(TxID) bool) *Mempool {
	return &Mempool{
		inPool:    make(map[TxID]bool),
		committed: committed,
	}
}

// Add enqueues tx unless it is already pending or committed. It reports
// whether the transaction was accepted.
func (m *Mempool) Add(tx Tx) bool {
	if m.inPool[tx.ID] || (m.committed != nil && m.committed(tx.ID)) {
		m.rejected++
		return false
	}
	m.inPool[tx.ID] = true
	m.queue = append(m.queue, tx)
	m.added++
	return true
}

// Contains reports whether tx is currently pending.
func (m *Mempool) Contains(id TxID) bool { return m.inPool[id] }

// Len returns the number of pending transactions.
func (m *Mempool) Len() int { return len(m.queue) }

// Peek returns up to max pending transactions in FIFO order without
// removing them. With max <= 0 it returns all of them.
func (m *Mempool) Peek(max int) []Tx {
	n := len(m.queue)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Tx, n)
	copy(out, m.queue[:n])
	return out
}

// Pop removes and returns up to max pending transactions in FIFO order.
func (m *Mempool) Pop(max int) []Tx {
	out := m.Peek(max)
	m.queue = m.queue[len(out):]
	for _, tx := range out {
		delete(m.inPool, tx.ID)
	}
	return out
}

// Drop removes the given transactions (typically because they committed in a
// block proposed by another node).
func (m *Mempool) Drop(ids map[TxID]bool) {
	if len(ids) == 0 {
		return
	}
	kept := m.queue[:0]
	for _, tx := range m.queue {
		if ids[tx.ID] {
			delete(m.inPool, tx.ID)
			continue
		}
		kept = append(kept, tx)
	}
	m.queue = kept
}

// Clear empties the pool; used to model volatile state lost on crash.
func (m *Mempool) Clear() {
	m.queue = nil
	m.inPool = make(map[TxID]bool)
}

// Stats returns (accepted, rejected) counters.
func (m *Mempool) Stats() (uint64, uint64) { return m.added, m.rejected }
