package chain

import "stabl/internal/simnet"

// GenesisAccount funds an account at chain genesis on every validator.
type GenesisAccount struct {
	Addr    Address
	Balance uint64
}

// System abstracts one blockchain model so the STABL harness can deploy any
// of the five chains identically. Implementations live in
// internal/{algorand,aptos,avalanche,redbelly,solana}.
type System interface {
	// Name returns the blockchain's display name.
	Name() string
	// Tolerance returns t_B, the number of failures the chain claims to
	// tolerate in an n-validator network (STABL §2: ceil(n/5)-1 for
	// Algorand and Avalanche, ceil(n/3)-1 for Aptos, Redbelly, Solana).
	Tolerance(n int) int
	// ConnParams returns the chain's peer-connection timers, which govern
	// partition detection and reconnection (STABL §6).
	ConnParams() simnet.ConnParams
	// NewValidator constructs validator id of the given validator set.
	NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *Monitor, genesis []GenesisAccount) simnet.Handler
}

// ToleranceFifth is ceil(n/5) - 1 (Algorand, Avalanche).
func ToleranceFifth(n int) int {
	t := (n+4)/5 - 1
	if t < 0 {
		return 0
	}
	return t
}

// ToleranceThird is ceil(n/3) - 1 (Aptos, Redbelly, Solana).
func ToleranceThird(n int) int {
	t := (n+2)/3 - 1
	if t < 0 {
		return 0
	}
	return t
}
