package chain

import (
	"math/rand"
	"time"

	"stabl/internal/overlay"
	"stabl/internal/sim"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// This file implements checkpointing for the shared validator core (see
// package snapshot for the restore-in-place rules). Blocks and transactions
// are immutable values, so snapshot states share Tx slices and copy only the
// containers that mutate. The chain models embed BaseState in their own
// snapshot states via SnapshotBase/RestoreBase.

// ledgerState is a Ledger checkpoint.
type ledgerState struct {
	blocks    []Block
	hashes    []Hash
	committed map[TxID]int
	balances  map[Address]uint64
	nonces    map[Address]uint64
	applied   uint64
	skipped   uint64
}

func (l *Ledger) snapshotState() ledgerState {
	st := ledgerState{
		blocks:    append([]Block(nil), l.blocks...),
		hashes:    append([]Hash(nil), l.hashes...),
		committed: make(map[TxID]int, len(l.committed)),
		balances:  make(map[Address]uint64, len(l.balances)),
		nonces:    make(map[Address]uint64, len(l.nonces)),
		applied:   l.applied,
		skipped:   l.skipped,
	}
	for k, v := range l.committed {
		st.committed[k] = v
	}
	for k, v := range l.balances {
		st.balances[k] = v
	}
	for k, v := range l.nonces {
		st.nonces[k] = v
	}
	return st
}

func (l *Ledger) restoreState(st ledgerState) {
	l.blocks = append(l.blocks[:0], st.blocks...)
	l.hashes = append(l.hashes[:0], st.hashes...)
	clear(l.committed)
	for k, v := range st.committed {
		l.committed[k] = v
	}
	clear(l.balances)
	for k, v := range st.balances {
		l.balances[k] = v
	}
	clear(l.nonces)
	for k, v := range st.nonces {
		l.nonces[k] = v
	}
	l.applied = st.applied
	l.skipped = st.skipped
}

// poolState is a Mempool checkpoint.
type poolState struct {
	queue    []Tx
	inPool   map[TxID]bool
	added    uint64
	rejected uint64
}

func (m *Mempool) snapshotState() poolState {
	st := poolState{
		queue:    append([]Tx(nil), m.queue...),
		inPool:   make(map[TxID]bool, len(m.inPool)),
		added:    m.added,
		rejected: m.rejected,
	}
	for k := range m.inPool {
		st.inPool[k] = true
	}
	return st
}

func (m *Mempool) restoreState(st poolState) {
	m.queue = append(m.queue[:0], st.queue...)
	m.inPool = make(map[TxID]bool, len(st.inPool))
	for k := range st.inPool {
		m.inPool[k] = true
	}
	m.added = st.added
	m.rejected = st.rejected
}

// monitorState is the experiment-wide Monitor's checkpoint. The monitor is
// shared by every validator, so it is snapshotted once per experiment, not
// per node.
type monitorState struct {
	seen       map[TxID]bool
	commits    []CommitEvent
	maxHeight  int
	lastCommit time.Duration
	haveBlock  bool
	lastHash   Hash
	integrity  []string
}

// Snapshot captures the monitor's dedup set, commit log and chain-integrity
// trail. The attached metrics recorder snapshots separately.
func (m *Monitor) Snapshot() snapshot.State {
	st := &monitorState{
		seen:       make(map[TxID]bool, len(m.seen)),
		commits:    append([]CommitEvent(nil), m.commits...),
		maxHeight:  m.maxHeight,
		lastCommit: m.lastCommit,
		haveBlock:  m.haveBlock,
		lastHash:   m.lastHash,
		integrity:  append([]string(nil), m.integrity...),
	}
	for k := range m.seen {
		st.seen[k] = true
	}
	return st
}

// Restore rewinds the monitor to a state captured by Snapshot.
func (m *Monitor) Restore(state snapshot.State) {
	st, ok := state.(*monitorState)
	if !ok {
		panic("chain: Monitor.Restore on foreign state")
	}
	m.seen = make(map[TxID]bool, len(st.seen))
	for k := range st.seen {
		m.seen[k] = true
	}
	m.commits = append(m.commits[:0], st.commits...)
	m.maxHeight = st.maxHeight
	m.lastCommit = st.lastCommit
	m.haveBlock = st.haveBlock
	m.lastHash = st.lastHash
	m.integrity = append(m.integrity[:0], st.integrity...)
}

// BaseState is a BaseNode checkpoint; chain models embed it in their own
// snapshot states. Reset replaces the node's exec bucket and sync RNG on
// every restart, so the state records which objects were current at
// checkpoint time — no queued closure captures either directly (everything
// reaches them through the stable *BaseNode), so restoring the pointers is
// sufficient. The RNG stream position itself lives in the scheduler's
// registry.
type BaseState struct {
	ledger        ledgerState
	pool          poolState
	ctx           *simnet.Context
	exec          *simnet.TokenBucket
	execState     simnet.BucketState
	rng           *rand.Rand
	extraExec     float64
	subscribers   map[TxID][]simnet.NodeID
	pending       map[int]Block
	inPipeline    map[TxID]int
	applying      bool
	applyingAt    int
	applyingBlock Block
	applyErrors   uint64
	syncTimer     sim.Timer
	syncActive    bool
	relay         overlay.State
	hasRelay      bool
}

// SnapshotBase captures the shared validator core: ledger, mempool,
// execution pipeline, catch-up machinery and client subscriptions.
func (n *BaseNode) SnapshotBase() BaseState {
	st := BaseState{
		ledger:        n.Ledger.snapshotState(),
		pool:          n.Pool.snapshotState(),
		ctx:           n.ctx,
		exec:          n.exec,
		rng:           n.rng,
		extraExec:     n.extraExec,
		subscribers:   make(map[TxID][]simnet.NodeID, len(n.subscribers)),
		pending:       make(map[int]Block, len(n.pending)),
		inPipeline:    make(map[TxID]int, len(n.inPipeline)),
		applying:      n.applying,
		applyingAt:    n.applyingAt,
		applyingBlock: n.applyingBlock,
		applyErrors:   n.applyErrors,
		syncTimer:     n.syncTimer,
		syncActive:    n.syncActive,
	}
	if n.exec != nil {
		st.execState = n.exec.SnapshotState()
	}
	if n.relay != nil {
		st.relay = n.relay.Snapshot()
		st.hasRelay = true
	}
	for k, v := range n.subscribers {
		st.subscribers[k] = append([]simnet.NodeID(nil), v...)
	}
	for k, v := range n.pending {
		st.pending[k] = v
	}
	for k, v := range n.inPipeline {
		st.inPipeline[k] = v
	}
	return st
}

// RestoreBase rewinds the shared validator core to a captured state.
func (n *BaseNode) RestoreBase(st BaseState) {
	n.Ledger.restoreState(st.ledger)
	n.Pool.restoreState(st.pool)
	n.ctx = st.ctx
	n.exec = st.exec
	if n.exec != nil {
		n.exec.RestoreState(st.execState)
	}
	n.rng = st.rng
	n.extraExec = st.extraExec
	if st.hasRelay {
		n.relay.Restore(st.relay)
	}
	n.subscribers = make(map[TxID][]simnet.NodeID, len(st.subscribers))
	for k, v := range st.subscribers {
		n.subscribers[k] = append([]simnet.NodeID(nil), v...)
	}
	n.pending = make(map[int]Block, len(st.pending))
	for k, v := range st.pending {
		n.pending[k] = v
	}
	n.inPipeline = make(map[TxID]int, len(st.inPipeline))
	for k, v := range st.inPipeline {
		n.inPipeline[k] = v
	}
	n.applying = st.applying
	n.applyingAt = st.applyingAt
	n.applyingBlock = st.applyingBlock
	n.applyErrors = st.applyErrors
	n.syncTimer = st.syncTimer
	n.syncActive = st.syncActive
}
