package chain

import (
	"testing"
	"testing/quick"
)

func TestMempoolFIFO(t *testing.T) {
	m := NewMempool(nil)
	for i := uint32(0); i < 5; i++ {
		if !m.Add(mkTx(0, i, 1, 2, 1)) {
			t.Fatalf("Add(%d) rejected", i)
		}
	}
	got := m.Pop(3)
	if len(got) != 3 {
		t.Fatalf("Pop(3) = %d txs", len(got))
	}
	for i, tx := range got {
		if tx.ID.Seq() != uint32(i) {
			t.Fatalf("pop order broken: %v", got)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestMempoolRejectsDuplicates(t *testing.T) {
	m := NewMempool(nil)
	tx := mkTx(0, 1, 1, 2, 1)
	if !m.Add(tx) || m.Add(tx) {
		t.Fatal("duplicate handling broken")
	}
	_, rejected := m.Stats()
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
}

func TestMempoolRejectsCommitted(t *testing.T) {
	committed := map[TxID]bool{MakeTxID(0, 9): true}
	m := NewMempool(func(id TxID) bool { return committed[id] })
	if m.Add(mkTx(0, 9, 1, 2, 1)) {
		t.Fatal("committed tx accepted")
	}
	if !m.Add(mkTx(0, 10, 1, 2, 1)) {
		t.Fatal("fresh tx rejected")
	}
}

func TestMempoolReAddAfterPop(t *testing.T) {
	m := NewMempool(nil)
	tx := mkTx(0, 1, 1, 2, 1)
	m.Add(tx)
	m.Pop(1)
	if !m.Add(tx) {
		t.Fatal("re-add after pop rejected")
	}
}

func TestMempoolDrop(t *testing.T) {
	m := NewMempool(nil)
	for i := uint32(0); i < 4; i++ {
		m.Add(mkTx(0, i, 1, 2, 1))
	}
	m.Drop(map[TxID]bool{MakeTxID(0, 1): true, MakeTxID(0, 3): true})
	got := m.Pop(0)
	if len(got) != 2 || got[0].ID.Seq() != 0 || got[1].ID.Seq() != 2 {
		t.Fatalf("after Drop: %v", got)
	}
}

func TestMempoolPeekDoesNotRemove(t *testing.T) {
	m := NewMempool(nil)
	m.Add(mkTx(0, 0, 1, 2, 1))
	if len(m.Peek(5)) != 1 || m.Len() != 1 {
		t.Fatal("Peek removed elements")
	}
	if !m.Contains(MakeTxID(0, 0)) {
		t.Fatal("Contains false after Peek")
	}
}

func TestMempoolClear(t *testing.T) {
	m := NewMempool(nil)
	tx := mkTx(0, 0, 1, 2, 1)
	m.Add(tx)
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	if !m.Add(tx) {
		t.Fatal("re-add after Clear rejected")
	}
}

// Property: pool length always equals inserted minus popped/dropped, and
// never contains duplicates.
func TestPropertyMempoolNoDuplicates(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMempool(nil)
		live := make(map[TxID]bool)
		for _, op := range ops {
			id := uint32(op % 64)
			tx := mkTx(0, id, 1, 2, 1)
			switch (op / 64) % 3 {
			case 0, 1:
				added := m.Add(tx)
				if added == live[tx.ID] { // must add iff not live
					return false
				}
				live[tx.ID] = true
			case 2:
				for _, popped := range m.Pop(1) {
					delete(live, popped.ID)
				}
			}
			if m.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
