package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"time"
)

// Ledger is a validator's copy of the committed chain. It deterministically
// executes native transfers, tracks per-account balances and nonces, and
// deduplicates transactions so that a transaction redundantly submitted to
// several validators (the secure client of STABL §7) executes exactly once.
//
// The ledger is the node's persistent state: it survives crash/restart.
type Ledger struct {
	blocks    []Block
	hashes    []Hash
	committed map[TxID]int // tx -> block height
	balances  map[Address]uint64
	nonces    map[Address]uint64 // next expected nonce per account
	applied   uint64
	skipped   uint64
	// VerifyParents enables hash-chain verification on Append (the
	// harness enables it everywhere; tests may relax it).
	VerifyParents bool
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		committed: make(map[TxID]int),
		balances:  make(map[Address]uint64),
		nonces:    make(map[Address]uint64),
	}
}

// Mint credits an account out of thin air; used to fund workload accounts at
// genesis.
func (l *Ledger) Mint(addr Address, amount uint64) { l.balances[addr] += amount }

// Height returns the number of committed blocks.
func (l *Ledger) Height() int { return len(l.blocks) }

// Committed reports whether tx has been committed, and at which height.
func (l *Ledger) Committed(id TxID) (int, bool) {
	h, ok := l.committed[id]
	return h, ok
}

// Balance returns the current balance of an account.
func (l *Ledger) Balance(addr Address) uint64 { return l.balances[addr] }

// NextNonce returns the next expected nonce for an account.
func (l *Ledger) NextNonce(addr Address) uint64 { return l.nonces[addr] }

// AppliedTxs returns how many transactions executed successfully.
func (l *Ledger) AppliedTxs() uint64 { return l.applied }

// SkippedTxs returns how many transactions were skipped as duplicates or for
// insufficient funds.
func (l *Ledger) SkippedTxs() uint64 { return l.skipped }

// Block returns the committed block at the given height.
func (l *Ledger) Block(height int) (Block, error) {
	if height < 0 || height >= len(l.blocks) {
		return Block{}, fmt.Errorf("ledger: no block at height %d (height=%d)", height, len(l.blocks))
	}
	return l.blocks[height], nil
}

// BlocksFrom returns up to max committed blocks starting at height from.
func (l *Ledger) BlocksFrom(from, max int) []Block {
	if from < 0 {
		from = 0
	}
	if from >= len(l.blocks) {
		return nil
	}
	end := from + max
	if max <= 0 || end > len(l.blocks) {
		end = len(l.blocks)
	}
	out := make([]Block, end-from)
	copy(out, l.blocks[from:end])
	return out
}

// Append commits a block at the next height, executing its transactions.
// It returns the transactions that executed (i.e. were not duplicates).
// Appending a block whose height is not the current chain height, or (with
// VerifyParents) whose parent link does not match the chain tip, is a
// protocol error.
func (l *Ledger) Append(b Block) ([]Tx, error) {
	if b.Height != len(l.blocks) {
		return nil, fmt.Errorf("ledger: append height %d, want %d", b.Height, len(l.blocks))
	}
	if l.VerifyParents && b.Parent != l.TipHash() {
		return nil, fmt.Errorf("ledger: block %d parent %v does not extend tip %v",
			b.Height, b.Parent, l.TipHash())
	}
	executed := make([]Tx, 0, len(b.Txs))
	for _, tx := range b.Txs {
		if _, dup := l.committed[tx.ID]; dup {
			l.skipped++
			continue
		}
		l.committed[tx.ID] = b.Height
		if l.balances[tx.From] < tx.Amount {
			l.skipped++
			continue
		}
		l.balances[tx.From] -= tx.Amount
		l.balances[tx.To] += tx.Amount
		if tx.Nonce >= l.nonces[tx.From] {
			l.nonces[tx.From] = tx.Nonce + 1
		}
		l.applied++
		executed = append(executed, tx)
	}
	l.blocks = append(l.blocks, b)
	l.hashes = append(l.hashes, HashBlock(b))
	return executed, nil
}

// TipHash returns the content address of the latest block (zero at genesis).
func (l *Ledger) TipHash() Hash {
	if len(l.hashes) == 0 {
		return Hash{}
	}
	return l.hashes[len(l.hashes)-1]
}

// BlockHash returns the stored content address of the block at a height.
func (l *Ledger) BlockHash(height int) (Hash, error) {
	if height < 0 || height >= len(l.hashes) {
		return Hash{}, fmt.Errorf("ledger: no block hash at height %d", height)
	}
	return l.hashes[height], nil
}

// VerifyChain re-validates the whole hash chain: every stored hash matches
// its block's content and every parent link matches the previous hash.
func (l *Ledger) VerifyChain() error {
	prev := Hash{}
	for i, b := range l.blocks {
		if got := HashBlock(b); got != l.hashes[i] {
			return fmt.Errorf("ledger: block %d content hash mismatch", i)
		}
		if b.Parent != prev {
			return fmt.Errorf("ledger: block %d parent link broken", i)
		}
		prev = l.hashes[i]
	}
	return nil
}

// StateHash computes the accounts hash: a digest over every account's
// balance and nonce in address order. Solana's Epoch Accounts Hash is this
// computation at an epoch-defined snapshot point.
func (l *Ledger) StateHash() Hash {
	addrs := make([]Address, 0, len(l.balances))
	for a := range l.balances {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h := sha256.New()
	var buf [8]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint64(buf[:], uint64(a))
		_, _ = h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], l.balances[a])
		_, _ = h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], l.nonces[a])
		_, _ = h.Write(buf[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// LastDecidedAt returns the decision time of the latest block, or zero.
func (l *Ledger) LastDecidedAt() time.Duration {
	if len(l.blocks) == 0 {
		return 0
	}
	return l.blocks[len(l.blocks)-1].DecidedAt
}
