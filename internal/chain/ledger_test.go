package chain

import (
	"testing"
	"testing/quick"
	"time"
)

func mkTx(client, seq uint32, from, to Address, amount uint64) Tx {
	return Tx{
		ID:     MakeTxID(client, seq),
		From:   from,
		To:     to,
		Amount: amount,
		Nonce:  uint64(seq),
	}
}

func TestTxIDRoundTrip(t *testing.T) {
	id := MakeTxID(3, 77)
	if id.Client() != 3 || id.Seq() != 77 {
		t.Fatalf("round trip broken: %v -> (%d,%d)", id, id.Client(), id.Seq())
	}
}

func TestLedgerAppendExecutesTransfers(t *testing.T) {
	l := NewLedger()
	l.Mint(1, 100)
	tx := mkTx(0, 0, 1, 2, 30)
	executed, err := l.Append(Block{Height: 0, Txs: []Tx{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 1 {
		t.Fatalf("executed %d txs, want 1", len(executed))
	}
	if l.Balance(1) != 70 || l.Balance(2) != 30 {
		t.Fatalf("balances = %d,%d", l.Balance(1), l.Balance(2))
	}
	if h, ok := l.Committed(tx.ID); !ok || h != 0 {
		t.Fatalf("Committed = %d,%v", h, ok)
	}
	if l.NextNonce(1) != 1 {
		t.Fatalf("NextNonce = %d, want 1", l.NextNonce(1))
	}
}

func TestLedgerRejectsWrongHeight(t *testing.T) {
	l := NewLedger()
	if _, err := l.Append(Block{Height: 1}); err == nil {
		t.Fatal("append at wrong height succeeded")
	}
}

func TestLedgerDeduplicatesAcrossBlocks(t *testing.T) {
	l := NewLedger()
	l.Mint(1, 100)
	tx := mkTx(0, 0, 1, 2, 10)
	if _, err := l.Append(Block{Height: 0, Txs: []Tx{tx}}); err != nil {
		t.Fatal(err)
	}
	executed, err := l.Append(Block{Height: 1, Txs: []Tx{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 0 {
		t.Fatal("duplicate executed twice")
	}
	if l.Balance(2) != 10 {
		t.Fatalf("duplicate transferred twice: balance=%d", l.Balance(2))
	}
	if l.SkippedTxs() != 1 {
		t.Fatalf("SkippedTxs = %d, want 1", l.SkippedTxs())
	}
}

func TestLedgerInsufficientFundsSkipsButCommits(t *testing.T) {
	l := NewLedger()
	tx := mkTx(0, 0, 1, 2, 10) // account 1 unfunded
	executed, err := l.Append(Block{Height: 0, Txs: []Tx{tx}})
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 0 {
		t.Fatal("unfunded transfer executed")
	}
	if _, ok := l.Committed(tx.ID); !ok {
		t.Fatal("skipped tx should still be recorded as committed (it was included)")
	}
}

func TestLedgerBlocksFrom(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(Block{Height: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.BlocksFrom(2, 2)
	if len(got) != 2 || got[0].Height != 2 || got[1].Height != 3 {
		t.Fatalf("BlocksFrom(2,2) = %+v", got)
	}
	if got := l.BlocksFrom(10, 2); got != nil {
		t.Fatalf("BlocksFrom past head = %+v", got)
	}
	if got := l.BlocksFrom(3, 0); len(got) != 2 {
		t.Fatalf("BlocksFrom(3,0) = %+v, want rest of chain", got)
	}
	if got := l.BlocksFrom(-1, 1); len(got) != 1 || got[0].Height != 0 {
		t.Fatalf("BlocksFrom(-1,1) = %+v", got)
	}
}

func TestLedgerBlockAccessor(t *testing.T) {
	l := NewLedger()
	if _, err := l.Block(0); err == nil {
		t.Fatal("Block(0) on empty ledger succeeded")
	}
	if _, err := l.Append(Block{Height: 0, DecidedAt: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	b, err := l.Block(0)
	if err != nil || b.DecidedAt != 3*time.Second {
		t.Fatalf("Block(0) = %+v, %v", b, err)
	}
	if l.LastDecidedAt() != 3*time.Second {
		t.Fatalf("LastDecidedAt = %v", l.LastDecidedAt())
	}
}

// Property: total balance is conserved by any sequence of transfers between
// funded accounts.
func TestPropertyLedgerConservation(t *testing.T) {
	f := func(transfers []uint8) bool {
		l := NewLedger()
		const accounts = 4
		var total uint64
		for a := Address(0); a < accounts; a++ {
			l.Mint(a, 1000)
			total += 1000
		}
		txs := make([]Tx, 0, len(transfers))
		for i, raw := range transfers {
			from := Address(raw % accounts)
			to := Address((raw / accounts) % accounts)
			txs = append(txs, Tx{
				ID:     MakeTxID(0, uint32(i)),
				From:   from,
				To:     to,
				Amount: uint64(raw),
			})
		}
		if _, err := l.Append(Block{Height: 0, Txs: txs}); err != nil {
			return false
		}
		var sum uint64
		for a := Address(0); a < accounts; a++ {
			sum += l.Balance(a)
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: appending the same tx set twice never double-executes.
func TestPropertyLedgerIdempotentCommits(t *testing.T) {
	f := func(seqs []uint16) bool {
		l := NewLedger()
		l.Mint(1, 1<<40)
		txs := make([]Tx, 0, len(seqs))
		seen := make(map[TxID]bool)
		for _, s := range seqs {
			tx := mkTx(0, uint32(s), 1, 2, 1)
			if !seen[tx.ID] {
				seen[tx.ID] = true
				txs = append(txs, tx)
			}
		}
		if _, err := l.Append(Block{Height: 0, Txs: txs}); err != nil {
			return false
		}
		if _, err := l.Append(Block{Height: 1, Txs: txs}); err != nil {
			return false
		}
		return l.Balance(2) == uint64(len(txs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
