package chain

import (
	"testing"
	"time"

	"stabl/internal/simnet"
)

func TestBaseNodeReadRequestAnswersFromLedger(t *testing.T) {
	sched, net, v0, _, _, _ := baseTestSetup(t, BaseConfig{})
	v0.base.Ledger.Mint(7, 500)
	probe := &readProbe{}
	net.AddNode(200, probe)
	net.StartNode(200)
	probe.ctx.Send(0, ReadReq{Seq: 10, Addr: 7})
	sched.RunUntil(200 * time.Millisecond)
	if len(probe.resps) != 1 {
		t.Fatalf("responses = %d", len(probe.resps))
	}
	resp := probe.resps[0]
	if resp.Seq != 10 || resp.Addr != 7 || resp.Balance != 500 {
		t.Fatalf("resp = %+v", resp)
	}
}

// readProbe records ReadResp messages.
type readProbe struct {
	ctx   *simnet.Context
	resps []ReadResp
}

func (p *readProbe) Start(ctx *simnet.Context) { p.ctx = ctx }
func (p *readProbe) Stop()                     {}
func (p *readProbe) Deliver(_ simnet.NodeID, payload any) {
	if r, ok := payload.(ReadResp); ok {
		p.resps = append(p.resps, r)
	}
}

func TestBaseNodeInPipelineAndChainTip(t *testing.T) {
	sched, _, v0, _, _, _ := baseTestSetup(t, BaseConfig{ExecRate: 10, ExecBurst: 1})
	tx := mkTx(0, 1, 1, 2, 0)
	if v0.base.ChainTip() != 0 {
		t.Fatalf("tip = %d", v0.base.ChainTip())
	}
	// A 5-tx block takes ~0.5s to execute at rate 10.
	v0.base.SubmitBlock(Block{Height: 0, Txs: []Tx{tx, mkTx(0, 2, 1, 2, 0), mkTx(0, 3, 1, 2, 0), mkTx(0, 4, 1, 2, 0), mkTx(0, 5, 1, 2, 0)}})
	if !v0.base.InPipeline(tx.ID) {
		t.Fatal("tx not in pipeline right after SubmitBlock")
	}
	if v0.base.ChainTip() != 1 {
		t.Fatalf("tip = %d while block pending", v0.base.ChainTip())
	}
	sched.RunUntil(2 * time.Second)
	if v0.base.InPipeline(tx.ID) {
		t.Fatal("tx still in pipeline after apply")
	}
	if v0.base.Ledger.Height() != 1 {
		t.Fatalf("height = %d", v0.base.Ledger.Height())
	}
}

func TestBaseNodeProposalTxsSkipsPipeline(t *testing.T) {
	sched, _, v0, _, cl, _ := baseTestSetup(t, BaseConfig{ExecRate: 1, ExecBurst: 1})
	a := mkTx(0, 1, 1, 2, 0)
	b := mkTx(0, 2, 1, 2, 0)
	cl.ctx.Send(0, SubmitTx{Tx: a})
	cl.ctx.Send(0, SubmitTx{Tx: b})
	sched.RunUntil(100 * time.Millisecond)
	// Decide a block containing only a; it executes slowly, so a stays in
	// both the pool and the pipeline for a while.
	v0.base.SubmitBlock(Block{Height: 0, Txs: []Tx{a}})
	got := v0.base.ProposalTxs(10)
	if len(got) != 1 || got[0].ID != b.ID {
		t.Fatalf("ProposalTxs = %v, want only b", got)
	}
}

func TestBaseNodeAddExecCostDelaysNextBlock(t *testing.T) {
	sched, _, v0, _, _, mon := baseTestSetup(t, BaseConfig{ExecRate: 100, ExecBurst: 1})
	// 300 units of speculative waste: the next (1-tx) block needs ~3s.
	v0.base.AddExecCost(300)
	v0.base.SubmitBlock(Block{Height: 0, Txs: []Tx{mkTx(0, 1, 1, 2, 0)}})
	sched.RunUntil(2 * time.Second)
	if mon.UniqueCommits() != 0 {
		t.Fatal("block applied before the extra exec cost was paid")
	}
	sched.RunUntil(4 * time.Second)
	if mon.UniqueCommits() != 1 {
		t.Fatalf("commits = %d", mon.UniqueCommits())
	}
}

func TestBaseNodeChargeExecWithoutBudgetIsNoop(t *testing.T) {
	_, _, v0, _, _, _ := baseTestSetup(t, BaseConfig{})
	v0.base.ChargeExec(1e9) // no exec bucket configured: must not panic
	v0.base.AddExecCost(1e9)
	v0.base.SubmitBlock(Block{Height: 0, Txs: []Tx{mkTx(0, 1, 1, 2, 0)}})
}
