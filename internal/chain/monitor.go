package chain

import (
	"fmt"
	"sort"
	"time"

	"stabl/internal/metrics"
	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// CommitEvent is one unique transaction commit observed chain-side.
type CommitEvent struct {
	ID        TxID
	Submitted time.Duration
	Committed time.Duration
}

// Monitor is the experiment-wide observer of chain progress. Every
// validator reports the blocks it applies; the monitor deduplicates so each
// transaction and block is counted once, yielding the throughput-over-time
// series of Figures 4-6 and the liveness signal behind the infinite
// sensitivity score.
type Monitor struct {
	seen       map[TxID]bool
	commits    []CommitEvent
	maxHeight  int
	lastCommit time.Duration
	haveBlock  bool
	lastHash   Hash
	integrity  []string
	rec        *metrics.Recorder //stabl:nodet snapshot-fields -- identity-preserved attachment; the Recorder checkpoints through its own Forkable state
	// Parallel-mode buffering (nil sched = sequential, the default). The
	// monitor is cross-cutting state every validator writes, so in parallel
	// mode reports made inside a lookahead window are buffered per queue,
	// stamped with the reporting event's key, and merged at the next
	// barrier in global key order — the exact order the sequential kernel
	// would have applied them in.
	sched   *sim.Scheduler //stabl:nodet snapshot-fields -- parallel-mode only; core.Fork calls DisableParallel before any snapshot
	queueOf []int32        //stabl:nodet snapshot-fields -- parallel-mode only; cleared by DisableParallel before any snapshot
	buf     [][]monEntry   //stabl:nodet snapshot-fields -- drained at every barrier, nil outside parallel mode; empty whenever a snapshot can be taken
	scratch []monEntry     //stabl:nodet snapshot-fields -- merge scratch space, logically empty between flushes
}

// monEntry is one buffered report: either a block application or a
// consensus event, keyed by the partition event that made it.
type monEntry struct {
	key   sim.EventKey
	block bool
	b     Block
	now   time.Duration
	ev    metrics.Event
}

// NewMonitor creates an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{seen: make(map[TxID]bool), maxHeight: -1}
}

// SetMetrics attaches a metrics recorder: unique commits become counters
// and latency observations, and consensus events flow through
// ConsensusEvent. A nil recorder (the default) makes both no-ops.
func (m *Monitor) SetMetrics(rec *metrics.Recorder) { m.rec = rec }

// Metrics returns the attached recorder, if any.
func (m *Monitor) Metrics() *metrics.Recorder { return m.rec }

// EnableParallel switches the monitor to buffered mode for the parallel
// kernel: queueOf maps node ids to partition queues (see internal/parsim)
// and the flush merge registers as a barrier hook. Must be paired with the
// scheduler's and network's EnableParallel.
func (m *Monitor) EnableParallel(sched *sim.Scheduler, queueOf []int32, workers int) {
	if m.sched != nil {
		panic("chain: Monitor.EnableParallel called twice")
	}
	m.sched = sched
	m.queueOf = append([]int32(nil), queueOf...)
	m.buf = make([][]monEntry, workers+1)
	sched.OnBarrier(m.flush)
}

// DisableParallel reverts to direct application, the sequential fallback the
// forking API takes. Buffers must be empty (they always are at a barrier).
func (m *Monitor) DisableParallel() {
	for _, b := range m.buf {
		if len(b) != 0 {
			panic("chain: Monitor.DisableParallel with buffered reports")
		}
	}
	m.sched = nil
	m.queueOf = nil
	m.buf = nil
}

// queueIdx resolves the reporting node's partition queue — the queue whose
// execution context is making the call, so each buffer has one writer.
func (m *Monitor) queueIdx(id simnet.NodeID) int32 {
	if id >= 0 && int(id) < len(m.queueOf) {
		return m.queueOf[id]
	}
	return 0
}

// flush merges all buffered reports in global event-key order and applies
// them. Runs as a barrier hook with every partition quiesced; keys are
// unique across queues (each is an executing event's key), and the stable
// sort keeps same-key reports — multiple calls from one event — in call
// order.
func (m *Monitor) flush() {
	merged := m.scratch[:0]
	for _, b := range m.buf {
		merged = append(merged, b...)
	}
	if len(merged) == 0 {
		return
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].key.Less(merged[j].key) })
	for i := range merged {
		e := &merged[i]
		if e.block {
			m.applyBlock(e.b, e.now)
		} else {
			m.applyEvent(e.ev)
		}
		*e = monEntry{}
	}
	m.scratch = merged[:0]
	for i := range m.buf {
		m.buf[i] = m.buf[i][:0]
	}
}

// ConsensusEvent forwards a protocol event from a validator to the attached
// recorder; it is the single funnel every chain model emits through.
func (m *Monitor) ConsensusEvent(ev metrics.Event) {
	if m.sched != nil && m.sched.InWindow() {
		qi := m.queueIdx(ev.Node)
		m.buf[qi] = append(m.buf[qi], monEntry{key: m.sched.ExecKey(int32(ev.Node)), ev: ev})
		return
	}
	m.applyEvent(ev)
}

func (m *Monitor) applyEvent(ev metrics.Event) {
	if m.rec != nil {
		m.rec.AddEvent(ev)
	}
}

// RecordBlock registers a block applied by a validator. Blocks already seen
// (applied by another validator first) only update nothing.
func (m *Monitor) RecordBlock(id simnet.NodeID, b Block, now time.Duration) {
	if m.sched != nil && m.sched.InWindow() {
		qi := m.queueIdx(id)
		m.buf[qi] = append(m.buf[qi], monEntry{key: m.sched.ExecKey(int32(id)), block: true, b: b, now: now})
		return
	}
	m.applyBlock(b, now)
}

func (m *Monitor) applyBlock(b Block, now time.Duration) {
	if b.Height <= m.maxHeight {
		return
	}
	// Integrity: consecutive heights must link up; gaps (filled later by
	// sync on individual nodes) cannot be linkage-checked here.
	if b.Height == m.maxHeight+1 && m.haveBlock && b.Parent != m.lastHash {
		m.integrity = append(m.integrity,
			fmt.Sprintf("block %d parent %v does not extend %v", b.Height, b.Parent, m.lastHash))
	}
	m.lastHash = HashBlock(b)
	m.maxHeight = b.Height
	m.haveBlock = true
	if m.rec != nil {
		m.rec.Count(now, "blocks_committed", 1)
	}
	for _, tx := range b.Txs {
		if m.seen[tx.ID] {
			continue
		}
		m.seen[tx.ID] = true
		m.commits = append(m.commits, CommitEvent{ID: tx.ID, Submitted: tx.Submitted, Committed: now})
		m.lastCommit = now
		if m.rec != nil {
			m.rec.Count(now, "tx_committed", 1)
			m.rec.Observe(now, "commit_latency", (now - tx.Submitted).Seconds())
		}
	}
}

// Commits returns the unique commit events in commit order. The returned
// slice is shared; callers must not modify it.
func (m *Monitor) Commits() []CommitEvent { return m.commits }

// UniqueCommits returns the number of unique committed transactions.
func (m *Monitor) UniqueCommits() int { return len(m.commits) }

// MaxHeight returns the highest applied block height, or -1.
func (m *Monitor) MaxHeight() int { return m.maxHeight }

// LastCommitAt returns the time of the most recent unique commit.
func (m *Monitor) LastCommitAt() time.Duration { return m.lastCommit }

// IntegrityErrors lists hash-chain violations observed across the recorded
// block sequence; a correct deployment reports none.
func (m *Monitor) IntegrityErrors() []string {
	return append([]string(nil), m.integrity...)
}

// CommittedSince counts unique commits at or after t.
func (m *Monitor) CommittedSince(t time.Duration) int {
	n := 0
	for i := len(m.commits) - 1; i >= 0; i-- {
		if m.commits[i].Committed < t {
			break
		}
		n++
	}
	return n
}
