package chain

import (
	"fmt"
	"time"

	"stabl/internal/metrics"
	"stabl/internal/simnet"
)

// CommitEvent is one unique transaction commit observed chain-side.
type CommitEvent struct {
	ID        TxID
	Submitted time.Duration
	Committed time.Duration
}

// Monitor is the experiment-wide observer of chain progress. Every
// validator reports the blocks it applies; the monitor deduplicates so each
// transaction and block is counted once, yielding the throughput-over-time
// series of Figures 4-6 and the liveness signal behind the infinite
// sensitivity score.
type Monitor struct {
	seen       map[TxID]bool
	commits    []CommitEvent
	maxHeight  int
	lastCommit time.Duration
	haveBlock  bool
	lastHash   Hash
	integrity  []string
	rec        *metrics.Recorder
}

// NewMonitor creates an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{seen: make(map[TxID]bool), maxHeight: -1}
}

// SetMetrics attaches a metrics recorder: unique commits become counters
// and latency observations, and consensus events flow through
// ConsensusEvent. A nil recorder (the default) makes both no-ops.
func (m *Monitor) SetMetrics(rec *metrics.Recorder) { m.rec = rec }

// Metrics returns the attached recorder, if any.
func (m *Monitor) Metrics() *metrics.Recorder { return m.rec }

// ConsensusEvent forwards a protocol event from a validator to the attached
// recorder; it is the single funnel every chain model emits through.
func (m *Monitor) ConsensusEvent(ev metrics.Event) {
	if m.rec != nil {
		m.rec.AddEvent(ev)
	}
}

// RecordBlock registers a block applied by a validator. Blocks already seen
// (applied by another validator first) only update nothing.
func (m *Monitor) RecordBlock(_ simnet.NodeID, b Block, now time.Duration) {
	if b.Height <= m.maxHeight {
		return
	}
	// Integrity: consecutive heights must link up; gaps (filled later by
	// sync on individual nodes) cannot be linkage-checked here.
	if b.Height == m.maxHeight+1 && m.haveBlock && b.Parent != m.lastHash {
		m.integrity = append(m.integrity,
			fmt.Sprintf("block %d parent %v does not extend %v", b.Height, b.Parent, m.lastHash))
	}
	m.lastHash = HashBlock(b)
	m.maxHeight = b.Height
	m.haveBlock = true
	if m.rec != nil {
		m.rec.Count(now, "blocks_committed", 1)
	}
	for _, tx := range b.Txs {
		if m.seen[tx.ID] {
			continue
		}
		m.seen[tx.ID] = true
		m.commits = append(m.commits, CommitEvent{ID: tx.ID, Submitted: tx.Submitted, Committed: now})
		m.lastCommit = now
		if m.rec != nil {
			m.rec.Count(now, "tx_committed", 1)
			m.rec.Observe(now, "commit_latency", (now - tx.Submitted).Seconds())
		}
	}
}

// Commits returns the unique commit events in commit order. The returned
// slice is shared; callers must not modify it.
func (m *Monitor) Commits() []CommitEvent { return m.commits }

// UniqueCommits returns the number of unique committed transactions.
func (m *Monitor) UniqueCommits() int { return len(m.commits) }

// MaxHeight returns the highest applied block height, or -1.
func (m *Monitor) MaxHeight() int { return m.maxHeight }

// LastCommitAt returns the time of the most recent unique commit.
func (m *Monitor) LastCommitAt() time.Duration { return m.lastCommit }

// IntegrityErrors lists hash-chain violations observed across the recorded
// block sequence; a correct deployment reports none.
func (m *Monitor) IntegrityErrors() []string {
	return append([]string(nil), m.integrity...)
}

// CommittedSince counts unique commits at or after t.
func (m *Monitor) CommittedSince(t time.Duration) int {
	n := 0
	for i := len(m.commits) - 1; i >= 0; i-- {
		if m.commits[i].Committed < t {
			break
		}
		n++
	}
	return n
}
