// Package chain provides the common blockchain building blocks shared by
// the five protocol models: accounts, native-transfer transactions, blocks,
// per-node ledgers with deterministic execution, FIFO mempools with
// deduplication, and a BaseNode that implements the client-facing and
// catch-up behaviour every validator needs.
package chain

import (
	"fmt"
	"time"

	"stabl/internal/simnet"
)

// Address identifies an account.
type Address uint32

// TxID uniquely identifies a transaction across the whole experiment.
// It packs the issuing client and a per-client sequence number so that
// deduplication is trivial and IDs are stable across redundant submissions.
type TxID uint64

// MakeTxID builds a TxID from a client index and per-client sequence.
func MakeTxID(client uint32, seq uint32) TxID {
	return TxID(uint64(client)<<32 | uint64(seq))
}

// Client extracts the issuing client index.
func (id TxID) Client() uint32 { return uint32(id >> 32) }

// Seq extracts the per-client sequence number.
func (id TxID) Seq() uint32 { return uint32(id) }

// String implements fmt.Stringer.
func (id TxID) String() string { return fmt.Sprintf("tx%d.%d", id.Client(), id.Seq()) }

// Tx is a native transfer, the workload used by all STABL experiments.
type Tx struct {
	ID        TxID
	From      Address
	To        Address
	Amount    uint64
	Nonce     uint64
	Submitted time.Duration // client-side submission instant
}

// Block is a decided batch of transactions. Parent is the content address
// of the previous block, making the committed history a hash chain that
// every validator verifies on apply.
type Block struct {
	Height    int
	Proposer  simnet.NodeID
	Parent    Hash
	Txs       []Tx
	DecidedAt time.Duration
}

// Client-facing wire messages. Every chain model understands these; the
// client SDKs in internal/client speak them.
type (
	// SubmitTx asks a validator to get Tx committed.
	SubmitTx struct {
		Tx Tx
	}
	// TxCommitted tells a client its transaction reached the ledger of
	// the responding validator.
	TxCommitted struct {
		ID     TxID
		Height int
	}
	// ReadReq asks a validator for an account's current state. Seq lets
	// clients match responses to requests.
	ReadReq struct {
		Seq  uint64
		Addr Address
	}
	// ReadResp answers a ReadReq with the validator's view of the
	// account. A credence.js-style client compares the responses of t+1
	// validators before trusting any of them.
	ReadResp struct {
		Seq     uint64
		Addr    Address
		Balance uint64
		Nonce   uint64
		Height  int
	}
)

// Catch-up wire messages used by BaseNode.
type (
	// SyncReq asks a peer for blocks from height From (inclusive).
	SyncReq struct {
		From int
	}
	// SyncResp carries a contiguous run of blocks.
	SyncResp struct {
		Blocks []Block
	}
)
