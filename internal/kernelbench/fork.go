package kernelbench

import (
	"fmt"
	"testing"
	"time"

	"stabl"
	"stabl/internal/core"
)

// forkFamilyCounts are the swept fault counts of the benchmark family: four
// transient-fault cells that differ only in how many nodes they kill, the
// exact shape an adaptive campaign groups under one checkpoint.
var forkFamilyCounts = []int{2, 3, 4, 5}

// forkFamilyConfig is one member of the benchmark family: Redbelly under a
// transient fault killing count nodes. The instants keep the paper's 1/3 and
// 2/3 proportions at any duration, so short smoke runs still checkpoint.
func forkFamilyConfig(count int, duration time.Duration) core.Config {
	return core.Config{
		System:   stabl.NewRedbelly(),
		Seed:     42,
		Duration: duration,
		Fault: core.FaultPlan{
			Kind:      core.FaultTransient,
			Count:     count,
			InjectAt:  duration / 3,
			RecoverAt: 2 * duration / 3,
		},
	}
}

// RunFork measures checkpoint-at-inject forking against from-scratch
// replays: the same four-member fault family executed once as independent
// full runs and once as one shared prefix plus forked continuations. The
// report (BENCH_fork.json via `stabl bench`) quantifies what an adaptive
// campaign saves per family; the fork goldens separately prove the two
// executions are byte-identical.
func RunFork(opts Options) (*Report, error) {
	duration := opts.Duration
	if duration == 0 {
		duration = 400 * time.Second
	}
	rep := newReportHeader(duration)

	if opts.Progress != nil {
		opts.Progress("ReplayFamily")
	}
	var events uint64
	var runErr error
	resReplay := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		events = 0
		for i := 0; i < b.N; i++ {
			for _, count := range forkFamilyCounts {
				res, err := core.Run(core.AlteredConfig(forkFamilyConfig(count, duration)))
				if err != nil {
					runErr = err
					b.FailNow()
				}
				events += res.Events
			}
		}
	})
	if runErr != nil {
		return nil, fmt.Errorf("kernelbench: ReplayFamily: %w", runErr)
	}
	replay := newEntry("ReplayFamily", "fork", resReplay)
	if sec := resReplay.T.Seconds(); sec > 0 {
		replay.EventsPerSec = float64(events) / sec
	}
	rep.Entries = append(rep.Entries, replay)

	if opts.Progress != nil {
		opts.Progress("ForkFamily")
	}
	resFork := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		events = 0
		for i := 0; i < b.N; i++ {
			n, err := runForkedFamily(duration)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			events += n
		}
	})
	if runErr != nil {
		return nil, fmt.Errorf("kernelbench: ForkFamily: %w", runErr)
	}
	forked := newEntry("ForkFamily", "fork", resFork)
	if sec := resFork.T.Seconds(); sec > 0 {
		forked.EventsPerSec = float64(events) / sec
	}
	if forked.NsPerOp > 0 {
		forked.Speedup = replay.NsPerOp / forked.NsPerOp
	}
	rep.Entries = append(rep.Entries, forked)
	return rep, nil
}

// runForkedFamily executes the family the adaptive way: build the first
// member, run to the checkpoint just before injection, finish it, then serve
// every sibling by rewinding and steering onto its script. Returns the total
// scheduler events fired across the member runs (each counts its full
// prefix+suffix, as a from-scratch run would).
func runForkedFamily(duration time.Duration) (uint64, error) {
	exp, err := core.Build(core.AlteredConfig(forkFamilyConfig(forkFamilyCounts[0], duration)))
	if err != nil {
		return 0, err
	}
	fp, err := core.RunToCheckpoint(exp)
	if err != nil {
		return 0, err
	}
	if fp == nil {
		return 0, fmt.Errorf("family has no checkpoint instant")
	}
	exp.RunUntil(duration)
	events := exp.Collect().Events
	for _, count := range forkFamilyCounts[1:] {
		cfg := forkFamilyConfig(count, duration)
		faulty, script, _, err := cfg.FaultOutline()
		if err != nil {
			return 0, err
		}
		fp.Rewind()
		exp.Primary().SetScript(script)
		exp.SetFaultTargets(faulty)
		exp.RunUntil(duration)
		events += exp.Collect().Events
	}
	return events, nil
}
