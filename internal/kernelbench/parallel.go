package kernelbench

import (
	"fmt"
	"runtime"
	"testing"

	"stabl"
)

// The parallel suite measures the conservative-PDES kernel against the
// sequential baseline on the scale suite's committee-mode Algorand cells:
// the same deployment runs once sequentially (SimWorkers=0) and once per
// worker count P in {1, 2, 4, 8}. Every parallel run must reproduce the
// sequential run's outputs exactly (event count, commits, height, every
// network counter) — the suite doubles as a determinism witness at scale —
// and each entry reports two speedups: wall-clock (honest about the host's
// CPU count; ~1x on a single core) and modeled, the kernel's own
// busy-time/critical-path ratio, which is the speedup a machine with P free
// cores would realize. Reports are committed as BENCH_parallel.json via
// `stabl bench -parallel-out` (`make bench-parallel`).

// parWorkers is the swept worker-count axis. P=1 runs the full partition
// machinery (windows, outboxes, keyed merge) on one queue, isolating the
// coordination overhead from actual parallelism.
var parWorkers = []int{1, 2, 4, 8}

// parCells reuses the scale grid's k=1024 node-count sweep: committee-mode
// Algorand (c=64) at 512, 2048 and 10240 validators with the shared flow
// workload. short caps the sweep at 512 validators for smoke runs.
func parCells(short bool) []scaleCell {
	var cells []scaleCell
	for _, n := range []int{512, 2048, 10240} {
		if short && n > 512 {
			continue
		}
		cells = append(cells, scaleCell{
			name:       fmt.Sprintf("Parallel/n%d/c64/k1024", n),
			validators: n, committee: 64, clients: 1024,
		})
	}
	return cells
}

// parMismatch renders the first diverging output between a parallel run and
// its sequential reference, or "" when they agree byte-for-byte on every
// compared counter.
func parMismatch(seq, par *stabl.RunResult) string {
	switch {
	case par.Events != seq.Events:
		return fmt.Sprintf("events %d != %d", par.Events, seq.Events)
	case par.UniqueCommits != seq.UniqueCommits:
		return fmt.Sprintf("commits %d != %d", par.UniqueCommits, seq.UniqueCommits)
	case par.MaxHeight != seq.MaxHeight:
		return fmt.Sprintf("height %d != %d", par.MaxHeight, seq.MaxHeight)
	case par.NetStats != seq.NetStats:
		return fmt.Sprintf("net stats %+v != %+v", par.NetStats, seq.NetStats)
	}
	return ""
}

// RunParallel executes the parallel suite. Each cell-by-workers point is one
// deterministic fault-free run; the sequential run of each cell is the
// reference both for the speedup ratios and for the byte-identity check.
func RunParallel(opts Options) (*Report, error) {
	rep := newReportHeader(scaleDuration)
	rep.NumCPU = runtime.NumCPU()
	for _, cell := range parCells(opts.Short) {
		var seq *stabl.RunResult
		var seqNsPerOp float64
		for _, workers := range append([]int{0}, parWorkers...) {
			name := fmt.Sprintf("%s/seq", cell.name)
			if workers > 0 {
				name = fmt.Sprintf("%s/p%d", cell.name, workers)
			}
			if opts.Progress != nil {
				opts.Progress(name)
			}
			var (
				last   *stabl.RunResult
				runErr error
			)
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := scaleConfig(cell)
					cfg.SimWorkers = workers
					r, err := stabl.Run(cfg)
					if err != nil {
						runErr = err
						b.FailNow()
					}
					last = r
				}
			})
			if runErr != nil {
				return nil, fmt.Errorf("kernelbench: %s: %w", name, runErr)
			}
			e := newEntry(name, "parallel", res)
			e.Validators = cell.validators
			e.Committee = cell.committee
			e.Flows = scaleFlows
			e.ModeledClients = cell.clients
			e.SimEvents = last.Events
			e.Commits = last.UniqueCommits
			e.Rounds = last.MaxHeight
			if sec := res.T.Seconds(); sec > 0 {
				e.EventsPerSec = float64(last.Events) * float64(res.N) / sec
			}
			if workers == 0 {
				seq, seqNsPerOp = last, e.NsPerOp
			} else {
				if last.SimWorkers != workers {
					return nil, fmt.Errorf("kernelbench: %s: parallel kernel did not engage (SimWorkers=%d)", name, last.SimWorkers)
				}
				if diff := parMismatch(seq, last); diff != "" {
					return nil, fmt.Errorf("kernelbench: %s: parallel run diverged from sequential: %s", name, diff)
				}
				e.Workers = workers
				e.Windows = last.SimWindows
				if e.NsPerOp > 0 {
					e.WallSpeedup = seqNsPerOp / e.NsPerOp
				}
				if last.SimCriticalWall > 0 {
					e.ModeledSpeedup = float64(last.SimBusyWall) / float64(last.SimCriticalWall)
				}
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, nil
}
