// Package kernelbench is the measurement layer for the simulation kernel:
// it reruns the paper's figure workloads and a set of scheduler/network
// microbenchmarks under testing.Benchmark and reports events per second,
// allocations per operation and wall time per figure as a machine-readable
// report (BENCH_kernel.json via `stabl bench`). Committing before/after
// reports is how the repo tracks its kernel performance trajectory.
package kernelbench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"stabl"
)

// Entry is one benchmark's measured result.
type Entry struct {
	// Name identifies the workload (FigN… for figure replays, the
	// benchmark name for kernel microbenchmarks).
	Name string `json:"name"`
	// Kind is "figure" or "micro".
	Kind string `json:"kind"`
	// Iterations is how many times the body ran (testing.Benchmark's N).
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per iteration; for figures, per full figure.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EventsPerSec is simulated events (figures) or queue operations
	// (micro) executed per wall-clock second; the kernel's headline
	// throughput number.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// MsgsPerSec is set for network microbenchmarks.
	MsgsPerSec float64 `json:"msgs_per_sec,omitempty"`
	// Speedup is set on fork-suite entries: this entry's ns/op relative
	// to its from-scratch-replay counterpart (>1 means forking wins).
	Speedup float64 `json:"speedup,omitempty"`
	// WallSeconds is the total measured wall time of all iterations.
	WallSeconds float64 `json:"wall_seconds"`
	// Scale-suite deployment coordinates and measurements (BENCH_scale):
	// the cell's deployment, its simulated event and commit counts, and
	// the per-round per-node message cost whose flatness across validator
	// counts is the committee scale claim.
	Validators          int     `json:"validators,omitempty"`
	Committee           int     `json:"committee,omitempty"`
	Flows               int     `json:"flows,omitempty"`
	ModeledClients      int     `json:"modeled_clients,omitempty"`
	Rounds              int     `json:"rounds,omitempty"`
	SimEvents           uint64  `json:"sim_events,omitempty"`
	Commits             int     `json:"commits,omitempty"`
	MsgsPerRoundPerNode float64 `json:"msgs_per_round_per_node,omitempty"`
	// Gossip-suite measurements (BENCH_gossip): the routing mode and its
	// per-origin broadcast cost. The mesh pays validators-1 sends per
	// origin; kadcast must stay near O(fanout * log n) as the node count
	// grows — the structured-overlay scale claim.
	Overlay           string  `json:"overlay,omitempty"`
	SendsPerBroadcast float64 `json:"sends_per_broadcast,omitempty"`
	OverlayOrigins    uint64  `json:"overlay_origins,omitempty"`
	OverlayRelayed    uint64  `json:"overlay_relayed,omitempty"`
	OverlayDuplicates uint64  `json:"overlay_duplicates,omitempty"`
	// Parallel-suite measurements (BENCH_parallel): the partition worker
	// count, the lookahead-window count, and this run's speedup over the
	// same cell's sequential run — measured wall clock (bounded by the
	// host's cores) and modeled, the kernel's busy-time/critical-path
	// ratio, which is what P free cores would realize.
	Workers        int     `json:"workers,omitempty"`
	Windows        uint64  `json:"windows,omitempty"`
	WallSpeedup    float64 `json:"wall_speedup,omitempty"`
	ModeledSpeedup float64 `json:"modeled_speedup,omitempty"`
}

// Report is the full benchmark run written to BENCH_kernel.json.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// VirtualDuration is the per-run virtual time of the figure replays.
	VirtualDuration string `json:"virtual_duration"`
	// NumCPU records the host's core count on suites whose headline number
	// depends on it (the parallel suite's wall-clock speedups).
	NumCPU  int     `json:"num_cpu,omitempty"`
	Entries []Entry `json:"entries"`
}

// Options configures a benchmark run.
type Options struct {
	// Duration is the virtual duration of each figure run (0 = the
	// paper's 400 s). Shorter durations keep smoke runs fast; committed
	// reports should use the default.
	Duration time.Duration
	// Full additionally replays the Fig 7 matrix (40 runs; slow).
	Full bool
	// SkipFigures / SkipMicro restrict the suite (used by smoke tests).
	SkipFigures bool
	SkipMicro   bool
	// Short caps the scale suite's node counts at 512 validators, the
	// smoke-run analogue of `go test -short`.
	Short bool
	// Progress, when set, is called with each benchmark's name before it
	// runs (for live CLI feedback on stderr).
	Progress func(name string)
}

// figureRunner replays one figure and returns the total number of simulated
// events its runs fired, so the report can state events/sec per figure.
type figureRunner struct {
	name string
	run  func(stabl.Config) (uint64, error)
}

func sumEvents(cmps []*stabl.Comparison) uint64 {
	var n uint64
	for _, cmp := range cmps {
		n += cmp.Baseline.Events + cmp.Altered.Events
	}
	return n
}

func wrapFig(f func(stabl.Config) ([]*stabl.Comparison, error)) func(stabl.Config) (uint64, error) {
	return func(cfg stabl.Config) (uint64, error) {
		cmps, err := f(cfg)
		if err != nil {
			return 0, err
		}
		return sumEvents(cmps), nil
	}
}

// wrapScenario replays one builtin scenario (laid out over the run
// duration) against a fresh system instance and reports the event count.
func wrapScenario(name string, newSystem func() stabl.System) func(stabl.Config) (uint64, error) {
	return func(cfg stabl.Config) (uint64, error) {
		spec, err := stabl.BuiltinScenario(name, cfg.Duration)
		if err != nil {
			return 0, err
		}
		sc, err := spec.Build()
		if err != nil {
			return 0, err
		}
		cfg.System = newSystem()
		cfg.Scenario = sc
		cmp, err := stabl.Compare(cfg)
		if err != nil {
			return 0, err
		}
		return sumEvents([]*stabl.Comparison{cmp}), nil
	}
}

func figureSuite(full bool) []figureRunner {
	figs := []figureRunner{
		// Fig 1 is the Aptos crash comparison; replaying it through
		// Compare (rather than Fig1) exposes the event count while
		// exercising the identical kernel workload.
		{"Fig1AptosECDF", func(cfg stabl.Config) (uint64, error) {
			cfg.System = stabl.NewAptos()
			cfg.Fault.Kind = stabl.FaultCrash
			cmp, err := stabl.Compare(cfg)
			if err != nil {
				return 0, err
			}
			return sumEvents([]*stabl.Comparison{cmp}), nil
		}},
		{"Fig3aCrash", wrapFig(stabl.Fig3a)},
		{"Fig3bTransient", wrapFig(stabl.Fig3b)},
		{"Fig3cPartition", wrapFig(stabl.Fig3c)},
		{"Fig3dSecureClient", wrapFig(stabl.Fig3d)},
		{"Fig4CrashThroughput", wrapFig(stabl.Fig4)},
		{"Fig5TransientThroughput", wrapFig(stabl.Fig5)},
		{"Fig6PartitionThroughput", wrapFig(stabl.Fig6)},
		// Scenario replays: the lossy-WAN one exercises the loss/jitter
		// hot path for half the run, the cascade one the crash machinery;
		// both pay the degradation gate checks on every other message, so
		// regressions in the fast-path gating show up here first.
		{"ScenarioLossyWAN", wrapScenario("lossy-wan", stabl.NewRedbelly)},
		{"ScenarioCascade", wrapScenario("cascade", stabl.NewRedbelly)},
	}
	if full {
		figs = append(figs, figureRunner{"Fig7Radar", func(cfg stabl.Config) (uint64, error) {
			radar, err := stabl.Fig7(cfg)
			if err != nil {
				return 0, err
			}
			var n uint64
			for _, row := range radar.Cells {
				for _, cmp := range row {
					n += cmp.Baseline.Events + cmp.Altered.Events
				}
			}
			return n, nil
		}})
	}
	return figs
}

// microSuite lists the kernel microbenchmarks; the same bodies back the
// `go test -bench` wrappers in internal/sim and internal/simnet.
func microSuite() []struct {
	name string
	fn   func(*testing.B)
} {
	return []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SchedulerPushPop", BenchSchedulerPushPop},
		{"SchedulerTimerChurn", BenchSchedulerTimerChurn},
		{"SchedulerMixed", BenchSchedulerMixed},
		{"SchedulerRNG", BenchSchedulerRNG},
		{"SendDeliver", BenchSendDeliver},
		{"SendDegraded", BenchSendDegraded},
		{"SendPartitionHeavy", BenchSendPartitionHeavy},
		{"SendChurnHeavy", BenchSendChurnHeavy},
		{"ContextRNG", BenchContextRNG},
		{"StartAll", BenchStartAll},
	}
}

// Run executes the suite and collects the report.
func Run(opts Options) (*Report, error) {
	duration := opts.Duration
	if duration == 0 {
		duration = 400 * time.Second
	}
	rep := newReportHeader(duration)
	if !opts.SkipFigures {
		for _, fig := range figureSuite(opts.Full) {
			if opts.Progress != nil {
				opts.Progress(fig.name)
			}
			var events uint64
			var runErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				events = 0
				for i := 0; i < b.N; i++ {
					cfg := stabl.Config{Seed: 42, Duration: duration}
					n, err := fig.run(cfg)
					if err != nil {
						runErr = err
						b.FailNow()
					}
					events += n
				}
			})
			if runErr != nil {
				return nil, fmt.Errorf("kernelbench: %s: %w", fig.name, runErr)
			}
			e := newEntry(fig.name, "figure", res)
			if sec := res.T.Seconds(); sec > 0 {
				e.EventsPerSec = float64(events) / sec
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	if !opts.SkipMicro {
		for _, m := range microSuite() {
			if opts.Progress != nil {
				opts.Progress(m.name)
			}
			res := testing.Benchmark(m.fn)
			e := newEntry(m.name, "micro", res)
			e.EventsPerSec = res.Extra["events/s"]
			e.MsgsPerSec = res.Extra["msgs/s"]
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep, nil
}

func newReportHeader(duration time.Duration) *Report {
	return &Report{
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		VirtualDuration: duration.String(),
	}
}

func newEntry(name, kind string, res testing.BenchmarkResult) Entry {
	return Entry{
		Name:        name,
		Kind:        kind,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		WallSeconds: res.T.Seconds(),
	}
}

// WriteJSON writes the report as indented JSON (the BENCH_kernel.json
// format).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as an aligned human-readable table.
func (r *Report) WriteText(w io.Writer) error {
	cpus := ""
	if r.NumCPU > 0 {
		cpus = fmt.Sprintf(", %d cpu", r.NumCPU)
	}
	if _, err := fmt.Fprintf(w, "kernel benchmark (%s %s/%s, figures at %s virtual%s)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.VirtualDuration, cpus); err != nil {
		return err
	}
	for _, e := range r.Entries {
		rate := ""
		switch {
		case e.EventsPerSec > 0:
			rate = fmt.Sprintf("%12.0f events/s", e.EventsPerSec)
		case e.MsgsPerSec > 0:
			rate = fmt.Sprintf("%12.0f msgs/s", e.MsgsPerSec)
		}
		speedup := ""
		if e.Speedup > 0 {
			speedup = fmt.Sprintf("  %.2fx vs replay", e.Speedup)
		}
		scale := ""
		if e.MsgsPerRoundPerNode > 0 {
			scale = fmt.Sprintf("  %6.1f msgs/round/node %6d rounds %8d commits",
				e.MsgsPerRoundPerNode, e.Rounds, e.Commits)
		}
		if e.Workers > 0 {
			scale = fmt.Sprintf("  %5.2fx wall %5.2fx modeled %8d windows",
				e.WallSpeedup, e.ModeledSpeedup, e.Windows)
		}
		if e.Overlay != "" {
			scale = fmt.Sprintf("  %-8s %8.1f sends/origin %6d rounds %8d commits",
				e.Overlay, e.SendsPerBroadcast, e.Rounds, e.Commits)
		}
		if _, err := fmt.Fprintf(w, "  %-26s %12.0f ns/op %8d allocs/op %10d B/op%s%s%s\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, rate, speedup, scale); err != nil {
			return err
		}
	}
	return nil
}
