package kernelbench

import (
	"testing"
	"time"

	"stabl/internal/sim"
	"stabl/internal/simnet"
)

// The kernel microbenchmarks isolate the two hot paths every STABL run
// multiplies by millions: the scheduler's event queue and simnet's
// send/deliver pipeline. They are exported as testing.B bodies so that
// `go test -bench` (via the wrappers in internal/sim and internal/simnet)
// and `stabl bench` (via testing.Benchmark) measure exactly the same code.

// BenchSchedulerPushPop schedules a batch of events at staggered times and
// drains them: the pure queue cost with a trivial callback. This is the
// acceptance gate for kernel work — events/s must not regress and the
// optimized queue must hold zero allocs/op in steady state.
func BenchSchedulerPushPop(b *testing.B) {
	const batch = 1024
	s := sim.New(1)
	var fired int
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := s.Now()
		for j := 0; j < batch; j++ {
			// Staggered times exercise real heap movement; the modulus
			// keeps several events per instant to cover FIFO ties.
			s.At(base+time.Duration(j%37)*time.Millisecond, fn)
		}
		for s.Step() {
		}
	}
	b.StopTimer()
	if fired != b.N*batch {
		b.Fatalf("fired %d, want %d", fired, b.N*batch)
	}
	reportRate(b, uint64(b.N)*batch, "events/s")
}

// BenchSchedulerTimerChurn schedules and immediately cancels timers, the
// pattern of per-round consensus timeouts that almost never fire.
func BenchSchedulerTimerChurn(b *testing.B) {
	const batch = 1024
	s := sim.New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			t := s.After(time.Duration(j%11+1)*time.Second, fn)
			t.Stop()
		}
		for s.Step() { // drain the cancelled entries
		}
	}
	reportRate(b, uint64(b.N)*batch, "events/s")
}

// BenchSchedulerMixed interleaves scheduling from inside callbacks with
// cancellations, approximating a live consensus round: each fired event
// schedules a successor and arms-then-cancels a timeout.
func BenchSchedulerMixed(b *testing.B) {
	s := sim.New(1)
	var pendingStop sim.Timer
	var tick func()
	tick = func() {
		pendingStop.Stop()
		pendingStop = s.After(5*time.Second, func() {})
		s.After(time.Millisecond, tick)
	}
	s.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	reportRate(b, uint64(b.N), "events/s")
}

// BenchSchedulerRNG measures deriving a named random stream, which chain
// models do on every (re)start and the workload generator does per client.
func BenchSchedulerRNG(b *testing.B) {
	s := sim.New(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.RNG("bench.stream")
	}
}

// sinkHandler counts deliveries and does nothing else, so the network
// benchmarks measure simnet, not the application.
type sinkHandler struct {
	ctx       *simnet.Context
	delivered int
}

func (h *sinkHandler) Start(ctx *simnet.Context)      { h.ctx = ctx }
func (h *sinkHandler) Deliver(_ simnet.NodeID, _ any) { h.delivered++ }
func (h *sinkHandler) Stop()                          {}

func benchNet(nodes int) (*sim.Scheduler, *simnet.Network, []*sinkHandler) {
	sched := sim.New(42)
	net := simnet.New(sched, simnet.Config{
		Latency: simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond},
	})
	hs := make([]*sinkHandler, nodes)
	for i := range hs {
		hs[i] = &sinkHandler{}
		net.AddNode(simnet.NodeID(i), hs[i])
	}
	net.StartAll()
	return sched, net, hs
}

// BenchSendDeliver measures the full send→deliver path between two live
// nodes: every message passes all checks, samples latency, and fires a
// delivery event. This is the dominant per-message cost of every experiment;
// the optimized kernel must cut its allocs/op versus the seed kernel's
// closure-per-message scheme.
func BenchSendDeliver(b *testing.B) {
	const batch = 512
	sched, _, hs := benchNet(2)
	payload := struct{ X int }{7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			hs[0].ctx.Send(1, payload)
		}
		for sched.Step() {
		}
	}
	b.StopTimer()
	if hs[1].delivered != b.N*batch {
		b.Fatalf("delivered %d, want %d", hs[1].delivered, b.N*batch)
	}
	reportRate(b, uint64(b.N)*batch, "msgs/s")
}

// BenchSendDegraded measures the send→deliver path with loss and jitter
// rules installed on both endpoints — the regime of lossy-WAN scenarios.
// Compared against BenchSendDeliver (identical workload, no rules), the
// difference is the degradation cost; the no-rule path itself must stay
// within noise of the pre-degradation kernel, because its only overhead is
// two integer gate checks.
func BenchSendDegraded(b *testing.B) {
	const batch = 512
	sched, net, hs := benchNet(2)
	net.SetLoss(0, 0.05)
	net.SetJitter(1, 2*time.Millisecond)
	payload := struct{ X int }{7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			hs[0].ctx.Send(1, payload)
		}
		for sched.Step() {
		}
	}
	b.StopTimer()
	total := hs[1].delivered + int(net.Stats().DroppedLoss)
	if total != b.N*batch {
		b.Fatalf("delivered %d + lost %d, want %d", hs[1].delivered, net.Stats().DroppedLoss, b.N*batch)
	}
	reportRate(b, uint64(b.N)*batch, "msgs/s")
}

// BenchSendPartitionHeavy measures sends while many partition rules are
// installed — the regime of campaign partition sweeps, where the seed kernel
// scanned every rule per message.
func BenchSendPartitionHeavy(b *testing.B) {
	const batch = 512
	sched, net, hs := benchNet(16)
	// Install 12 single-node rules that never match the 0->1 traffic, plus
	// one that does match half the sends (node 2 is cut from node 3).
	for i := 4; i < 16; i++ {
		net.Partition([]simnet.NodeID{simnet.NodeID(i)}, []simnet.NodeID{simnet.NodeID((i + 1) % 16)})
	}
	net.Partition([]simnet.NodeID{2}, []simnet.NodeID{3})
	payload := "p"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			hs[0].ctx.Send(1, payload) // passes all rules
			hs[2].ctx.Send(3, payload) // dropped by the matching rule
		}
		for sched.Step() {
		}
	}
	b.StopTimer()
	if net.Stats().DroppedPartition != uint64(b.N)*batch {
		b.Fatalf("DroppedPartition = %d, want %d", net.Stats().DroppedPartition, b.N*batch)
	}
	reportRate(b, 2*uint64(b.N)*batch, "msgs/s")
}

// BenchSendChurnHeavy measures the network under connection-managed
// crash/restart churn: heartbeats, idle teardown, reconnect handshakes and
// application traffic all flow through the same send path.
func BenchSendChurnHeavy(b *testing.B) {
	sched := sim.New(42)
	net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(5 * time.Millisecond)})
	const nodes = 8
	peers := make([]simnet.NodeID, nodes)
	hs := make([]*sinkHandler, nodes)
	for i := range hs {
		hs[i] = &sinkHandler{}
		peers[i] = simnet.NodeID(i)
		net.AddNode(simnet.NodeID(i), hs[i])
	}
	net.ManageConns(peers, simnet.ConnParams{
		HeartbeatInterval: 50 * time.Millisecond,
		IdleTimeout:       200 * time.Millisecond,
		ReconnectBase:     100 * time.Millisecond,
	})
	net.StartAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One churn round: traffic, a crash, more traffic, a restart.
		for j := 1; j < nodes; j++ {
			hs[0].ctx.Send(simnet.NodeID(j), i)
		}
		net.Halt(simnet.NodeID(1 + i%(nodes-1)))
		sched.RunUntil(sched.Now() + 300*time.Millisecond)
		net.Restart(simnet.NodeID(1 + i%(nodes-1)))
		for j := 1; j < nodes; j++ {
			hs[0].ctx.Send(simnet.NodeID(j), i)
		}
		sched.RunUntil(sched.Now() + 300*time.Millisecond)
	}
	b.StopTimer()
	reportRate(b, net.Stats().Sent, "msgs/s")
}

// BenchContextRNG measures deriving a node-scoped random stream, done by
// every chain model on every (re)start.
func BenchContextRNG(b *testing.B) {
	_, _, hs := benchNet(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hs[0].ctx.RNG("bench")
	}
}

// BenchStartAll measures booting a large deployment, dominated in the seed
// kernel by the O(n²) insertion sort over node ids.
func BenchStartAll(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sched := sim.New(1)
		net := simnet.New(sched, simnet.Config{Latency: simnet.FixedLatency(time.Millisecond)})
		for j := 0; j < 512; j++ {
			net.AddNode(simnet.NodeID(j), &sinkHandler{})
		}
		b.StartTimer()
		net.StartAll()
	}
}

func reportRate(b *testing.B, n uint64, unit string) {
	b.Helper()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)/sec, unit)
	}
}
