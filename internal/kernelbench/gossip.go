package kernelbench

import (
	"fmt"
	"testing"
	"time"

	"stabl"
)

// The gossip suite measures the overlay axis end to end: Algorand
// committee-mode deployments at 512, 2048 and 10240 validators, once over
// the legacy full mesh and once over the kadcast broadcast overlay. The
// headline metric is sends per broadcast origin: the mesh pays n-1 sends for
// every originated broadcast, while kadcast pays O(fanout * log n) — the
// number must stay near-flat as the validator count grows twentyfold.
// Reports are committed as BENCH_gossip.json via `stabl bench -gossip-out`
// (`make bench-gossip`).

// gossipCell is one deployment point of the gossip grid.
type gossipCell struct {
	name       string
	validators int
	overlay    string // "" = legacy full mesh
}

// Fixed workload shape shared by every cell, matching the scale suite so
// mesh-vs-kadcast differences are attributable to the routing alone.
const (
	gossipFlows     = 8
	gossipAccounts  = 256
	gossipRate      = 0.05
	gossipClients   = 1024
	gossipCommittee = 64
	gossipDuration  = 30 * time.Second
)

// gossipCells lays out the grid: mesh and kadcast at each node count. short
// caps the validator count at 512, keeping smoke runs to sub-second cells.
// The 10240-node mesh cell is skipped even in full runs: its O(n) per-tx
// gossip is exactly the cost the overlay removes, and paying it for one
// analytically-known data point (sends/origin = n-1) dominates the whole
// suite's wall clock.
func gossipCells(short bool) []gossipCell {
	var cells []gossipCell
	for _, n := range []int{512, 2048, 10240} {
		if short && n > 512 {
			continue
		}
		for _, ov := range []string{"", "kadcast"} {
			if ov == "" && n > 2048 {
				continue
			}
			label := "mesh"
			if ov != "" {
				label = ov
			}
			cells = append(cells, gossipCell{
				name:       fmt.Sprintf("Gossip/n%d/%s", n, label),
				validators: n, overlay: ov,
			})
		}
	}
	return cells
}

// gossipConfig materializes one cell: committee-mode Algorand, flow
// workload, managed connection layer off, overlay per the cell.
func gossipConfig(c gossipCell) stabl.Config {
	return stabl.Config{
		System:           stabl.NewAlgorand(),
		Seed:             42,
		Validators:       c.validators,
		Clients:          gossipClients,
		Flows:            gossipFlows,
		FlowAccounts:     gossipAccounts,
		RatePerClient:    gossipRate,
		CommitteeSize:    gossipCommittee,
		Duration:         gossipDuration,
		DisableConnLayer: true,
		Overlay:          stabl.OverlayConfig{Topology: c.overlay},
	}
}

// RunGossip executes the gossip suite. Every cell is one deterministic
// fault-free run; when testing.Benchmark re-enters a fast cell, each
// iteration must reproduce the first one's event count exactly, so the
// suite doubles as an overlay determinism witness at scale.
func RunGossip(opts Options) (*Report, error) {
	rep := newReportHeader(gossipDuration)
	for _, cell := range gossipCells(opts.Short) {
		if opts.Progress != nil {
			opts.Progress(cell.name)
		}
		var (
			last   *stabl.RunResult
			runErr error
			drift  bool
		)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := stabl.Run(gossipConfig(cell))
				if err != nil {
					runErr = err
					b.FailNow()
				}
				if last != nil && r.Events != last.Events {
					drift = true
				}
				last = r
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("kernelbench: %s: %w", cell.name, runErr)
		}
		if drift {
			return nil, fmt.Errorf("kernelbench: %s: event count drifted between identical runs", cell.name)
		}
		e := newEntry(cell.name, "gossip", res)
		e.Validators = cell.validators
		e.Committee = gossipCommittee
		e.Flows = gossipFlows
		e.ModeledClients = gossipClients
		e.SimEvents = last.Events
		e.Commits = last.UniqueCommits
		e.Rounds = last.MaxHeight
		if cell.overlay == "" {
			// The mesh has no router counters; its per-origin cost is the
			// full peer set by construction.
			e.Overlay = "mesh"
			e.SendsPerBroadcast = float64(cell.validators - 1)
		} else {
			e.Overlay = cell.overlay
			e.SendsPerBroadcast = last.Overlay.SendsPerBroadcast()
			e.OverlayOrigins = last.Overlay.Origins
			e.OverlayRelayed = last.Overlay.Relayed
			e.OverlayDuplicates = last.Overlay.Duplicates
		}
		if sec := res.T.Seconds(); sec > 0 {
			e.EventsPerSec = float64(last.Events) * float64(res.N) / sec
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}
