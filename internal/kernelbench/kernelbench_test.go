package kernelbench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestFigureReportShape runs the figure suite at a tiny virtual duration and
// checks the report carries the fields the perf-trajectory tooling reads.
func TestFigureReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("kernelbench figure smoke skipped in -short mode")
	}
	var names []string
	rep, err := Run(Options{
		Duration:  2 * time.Second,
		SkipMicro: true,
		Progress:  func(name string) { names = append(names, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 10 {
		t.Fatalf("entries = %d, want 8 figure replays plus 2 scenario replays", len(rep.Entries))
	}
	if len(names) != len(rep.Entries) {
		t.Fatalf("progress calls = %d, entries = %d", len(names), len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.Kind != "figure" {
			t.Errorf("%s: kind = %q, want figure", e.Name, e.Kind)
		}
		if e.EventsPerSec <= 0 {
			t.Errorf("%s: events/sec not measured", e.Name)
		}
		if e.WallSeconds <= 0 || e.NsPerOp <= 0 {
			t.Errorf("%s: wall time not measured", e.Name)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Entries) != len(rep.Entries) || back.GoVersion == "" {
		t.Fatal("round-tripped report lost fields")
	}

	buf.Reset()
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig3aCrash") {
		t.Fatalf("text table missing entries:\n%s", buf.String())
	}
}

// TestForkReportShape runs the fork-vs-replay suite at a tiny virtual
// duration and checks both entries measure throughput and the fork entry
// carries a speedup ratio.
func TestForkReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("kernelbench fork smoke skipped in -short mode")
	}
	var names []string
	rep, err := RunFork(Options{
		Duration: 30 * time.Second,
		Progress: func(name string) { names = append(names, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("entries = %d, want ReplayFamily and ForkFamily", len(rep.Entries))
	}
	if len(names) != 2 || names[0] != "ReplayFamily" || names[1] != "ForkFamily" {
		t.Fatalf("progress calls = %v", names)
	}
	for _, e := range rep.Entries {
		if e.Kind != "fork" {
			t.Errorf("%s: kind = %q, want fork", e.Name, e.Kind)
		}
		if e.EventsPerSec <= 0 || e.NsPerOp <= 0 {
			t.Errorf("%s: throughput not measured", e.Name)
		}
	}
	if rep.Entries[0].Speedup != 0 {
		t.Errorf("replay entry carries a speedup ratio: %v", rep.Entries[0].Speedup)
	}
	if rep.Entries[1].Speedup <= 0 {
		t.Errorf("fork entry speedup = %v, want positive", rep.Entries[1].Speedup)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vs replay") {
		t.Fatalf("text table does not render the speedup:\n%s", buf.String())
	}
}

// TestMicroSuiteRunsOne exercises one microbenchmark end to end through
// testing.Benchmark so the CLI path is covered without paying for the whole
// suite.
func TestMicroSuiteRunsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("kernelbench micro smoke skipped in -short mode")
	}
	res := testing.Benchmark(BenchSchedulerPushPop)
	if res.N == 0 {
		t.Fatal("benchmark did not run")
	}
	if res.Extra["events/s"] <= 0 {
		t.Fatal("events/s metric missing")
	}
}
