package kernelbench

import (
	"fmt"
	"testing"
	"time"

	"stabl"
)

// The scale suite measures the scale axis end to end: committee-mode
// Algorand deployments at 512, 2048 and 10240 validators driven by
// flow-aggregated workloads, plus a committee-size sensitivity sweep at
// fixed deployment size. The headline metric is messages per round per
// node: with sortition committees it must track the committee size and stay
// flat as the validator count grows twentyfold, while full-membership
// voting would grow it linearly with n. Reports are committed as
// BENCH_scale.json via `stabl bench -scale-out` (`make bench-scale`).

// scaleCell is one deployment point of the scale grid.
type scaleCell struct {
	name       string
	validators int
	committee  int
	clients    int // modeled clients, spread over scaleFlows generators
}

// Fixed workload shape shared by every cell, so differences between cells
// are attributable to the swept dimension alone. The per-client rate and
// virtual duration put exactly one flow burst (at t=20s) inside the
// horizon: enough traffic to commit blocks at every size without the
// O(n)-per-tx mempool gossip dominating the 10k-node cells.
const (
	scaleFlows    = 8
	scaleAccounts = 256
	scaleRate     = 0.05
	scaleDuration = 30 * time.Second
)

// scaleCells lays out the grid: a committee-size sweep at fixed n, then
// node-count sweeps at two flow sizes. short caps the validator count at
// 512, keeping smoke runs to the sub-second cells.
func scaleCells(short bool) []scaleCell {
	var cells []scaleCell
	for _, committee := range []int{16, 32, 64, 128} {
		cells = append(cells, scaleCell{
			name:       fmt.Sprintf("Scale/n512/c%d/k1024", committee),
			validators: 512, committee: committee, clients: 1024,
		})
	}
	for _, n := range []int{512, 2048, 10240} {
		if short && n > 512 {
			continue
		}
		for _, clients := range []int{1024, 4096} {
			cells = append(cells, scaleCell{
				name:       fmt.Sprintf("Scale/n%d/c64/k%d", n, clients),
				validators: n, committee: 64, clients: clients,
			})
		}
	}
	return cells
}

// scaleConfig materializes one cell: committee-mode Algorand, flow
// workload, managed connection layer off (it is O(n^2) state the protocol
// never reads — see core.Config.DisableConnLayer).
func scaleConfig(c scaleCell) stabl.Config {
	return stabl.Config{
		System:           stabl.NewAlgorand(),
		Seed:             42,
		Validators:       c.validators,
		Clients:          c.clients,
		Flows:            scaleFlows,
		FlowAccounts:     scaleAccounts,
		RatePerClient:    scaleRate,
		CommitteeSize:    c.committee,
		Duration:         scaleDuration,
		DisableConnLayer: true,
	}
}

// RunScale executes the scale suite. Every cell is one deterministic
// fault-free run; when testing.Benchmark re-enters a fast cell, each
// iteration must reproduce the first one's event count exactly — the
// suite doubles as a determinism witness at scale.
func RunScale(opts Options) (*Report, error) {
	rep := newReportHeader(scaleDuration)
	for _, cell := range scaleCells(opts.Short) {
		if opts.Progress != nil {
			opts.Progress(cell.name)
		}
		var (
			last   *stabl.RunResult
			runErr error
			drift  bool
		)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := stabl.Run(scaleConfig(cell))
				if err != nil {
					runErr = err
					b.FailNow()
				}
				if last != nil && r.Events != last.Events {
					drift = true
				}
				last = r
			}
		})
		if runErr != nil {
			return nil, fmt.Errorf("kernelbench: %s: %w", cell.name, runErr)
		}
		if drift {
			return nil, fmt.Errorf("kernelbench: %s: event count drifted between identical runs", cell.name)
		}
		e := newEntry(cell.name, "scale", res)
		e.Validators = cell.validators
		e.Committee = cell.committee
		e.Flows = scaleFlows
		e.ModeledClients = cell.clients
		e.SimEvents = last.Events
		e.Commits = last.UniqueCommits
		e.Rounds = last.MaxHeight
		if last.MaxHeight > 0 {
			e.MsgsPerRoundPerNode = float64(last.NetStats.Sent) /
				float64(last.MaxHeight) / float64(cell.validators)
		}
		if sec := res.T.Seconds(); sec > 0 {
			e.EventsPerSec = float64(last.Events) * float64(res.N) / sec
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}
