package simnet

import (
	"testing"
	"time"

	"stabl/internal/sim"
)

// The degradation tests cover the loss/jitter primitives the scenario engine
// drives: rate clamping, drop accounting, jitter bounds, determinism across
// identically-seeded runs, and — most importantly — that a network which sets
// every knob to zero behaves bit-for-bit like one that never touched them
// (the zero-overhead contract the send fast path promises).

func TestSetLossClampsAndCounts(t *testing.T) {
	_, net, _ := newTestNet(t, 2, FixedLatency(time.Millisecond))
	net.SetLoss(0, -0.5)
	if got := net.Loss(0); got != 0 {
		t.Fatalf("negative rate clamped to %g, want 0", got)
	}
	net.SetLoss(0, 1.7)
	if got := net.Loss(0); got != 1 {
		t.Fatalf("oversized rate clamped to %g, want 1", got)
	}
	if net.lossyIfaces != 1 {
		t.Fatalf("lossyIfaces = %d after one install, want 1", net.lossyIfaces)
	}
	net.SetLoss(0, 0)
	if net.lossyIfaces != 0 {
		t.Fatalf("lossyIfaces = %d after clear, want 0", net.lossyIfaces)
	}
	// Clearing an already-clear interface must not underflow the gate.
	net.SetLoss(0, 0)
	if net.lossyIfaces != 0 {
		t.Fatalf("lossyIfaces = %d after double clear, want 0", net.lossyIfaces)
	}
}

func TestLossOneDropsEverything(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(time.Millisecond))
	net.StartAll()
	net.SetLoss(1, 1)
	const msgs = 50
	for i := 0; i < msgs; i++ {
		hs[0].ctx.Send(1, i)
	}
	sched.RunUntil(time.Second)
	if len(hs[1].received) != 0 {
		t.Fatalf("delivered %d messages through a p=1 interface", len(hs[1].received))
	}
	if got := net.Stats().DroppedLoss; got != msgs {
		t.Fatalf("DroppedLoss = %d, want %d", got, msgs)
	}
}

func TestLossRateRoughlyHolds(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(time.Millisecond))
	net.StartAll()
	// 0.2 on each endpoint combines to 1 - 0.8² = 0.36.
	net.SetLoss(0, 0.2)
	net.SetLoss(1, 0.2)
	const msgs = 5000
	for i := 0; i < msgs; i++ {
		hs[0].ctx.Send(1, i)
	}
	sched.RunUntil(time.Minute)
	dropped := float64(net.Stats().DroppedLoss) / msgs
	if dropped < 0.30 || dropped > 0.42 {
		t.Fatalf("combined drop rate = %.3f, want ≈0.36", dropped)
	}
	if len(hs[1].received)+int(net.Stats().DroppedLoss) != msgs {
		t.Fatalf("delivered %d + dropped %d ≠ sent %d",
			len(hs[1].received), net.Stats().DroppedLoss, msgs)
	}
}

func TestJitterBoundedAndAdditive(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(10*time.Millisecond))
	net.StartAll()
	net.SetJitter(0, 5*time.Millisecond)
	net.SetJitter(1, 15*time.Millisecond)
	// Endpoint bounds add: delivery lands in [base, base+20ms].
	const msgs = 200
	for i := 0; i < msgs; i++ {
		at := time.Duration(i) * time.Second
		sched.At(at, func() { hs[0].ctx.Send(1, i) })
	}
	prev := 0
	for i := 0; i < msgs; i++ {
		at := time.Duration(i) * time.Second
		sched.RunUntil(at + 10*time.Millisecond - 1)
		if len(hs[1].received) != prev {
			t.Fatalf("msg %d arrived before the base latency", i)
		}
		sched.RunUntil(at + 30*time.Millisecond)
		if len(hs[1].received) != prev+1 {
			t.Fatalf("msg %d not delivered within base+jitter bound", i)
		}
		prev++
	}
	if net.Jitter(0) != 5*time.Millisecond || net.Jitter(1) != 15*time.Millisecond {
		t.Fatalf("jitter accessors = %v/%v", net.Jitter(0), net.Jitter(1))
	}
}

// TestDegradedReplayDeterministic runs the same lossy, jittery workload twice
// from the same seed and requires identical delivery traces — the property
// the scenario golden pins depend on.
func TestDegradedReplayDeterministic(t *testing.T) {
	run := func() ([]any, uint64, time.Duration) {
		sched := sim.New(99)
		net := New(sched, Config{Latency: UniformLatency{Min: time.Millisecond, Max: 5 * time.Millisecond}})
		hs := make([]*echoHandler, 3)
		for i := range hs {
			hs[i] = &echoHandler{}
			net.AddNode(NodeID(i), hs[i])
		}
		net.StartAll()
		net.SetLoss(1, 0.3)
		net.SetJitter(2, 4*time.Millisecond)
		for i := 0; i < 500; i++ {
			hs[0].ctx.Send(1, i)
			hs[0].ctx.Send(2, 1000+i)
			hs[1].ctx.Send(2, 2000+i)
		}
		sched.RunUntil(time.Second)
		var all []any
		all = append(all, hs[1].received...)
		all = append(all, hs[2].received...)
		return all, net.Stats().DroppedLoss, sched.Now()
	}
	a, aDrops, aNow := run()
	b, bDrops, bNow := run()
	if aDrops != bDrops || aNow != bNow || len(a) != len(b) {
		t.Fatalf("replay diverged: drops %d/%d, now %v/%v, delivered %d/%d",
			aDrops, bDrops, aNow, bNow, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestZeroDegradationIsInert proves the zero-overhead contract behaviourally:
// a run that installs and clears zero-valued rules must replay, event for
// event, a run on a network that never heard of loss or jitter. The dedicated
// RNG streams mean neither variant consumes from the latency stream.
func TestZeroDegradationIsInert(t *testing.T) {
	run := func(touch bool) ([]any, uint64, time.Duration) {
		sched := sim.New(1234)
		net := New(sched, Config{Latency: UniformLatency{Min: time.Millisecond, Max: 20 * time.Millisecond}})
		hs := make([]*echoHandler, 2)
		for i := range hs {
			hs[i] = &echoHandler{}
			net.AddNode(NodeID(i), hs[i])
		}
		net.StartAll()
		if touch {
			net.SetLoss(0, 0)
			net.SetJitter(1, 0)
			net.SetLoss(1, 0.5) // install...
			net.SetLoss(1, 0)   // ...and clear before any traffic
		}
		for i := 0; i < 300; i++ {
			hs[0].ctx.Send(1, i)
		}
		sched.RunUntil(time.Second)
		return hs[1].received, net.Stats().Delivered, sched.Now()
	}
	aRecv, aDel, aNow := run(false)
	bRecv, bDel, bNow := run(true)
	if aDel != bDel || aNow != bNow || len(aRecv) != len(bRecv) {
		t.Fatalf("zero-valued rules changed the run: delivered %d vs %d, clock %v vs %v",
			aDel, bDel, aNow, bNow)
	}
	for i := range aRecv {
		if aRecv[i] != bRecv[i] {
			t.Fatalf("delivery order diverged at %d: %v vs %v", i, aRecv[i], bRecv[i])
		}
	}
}
