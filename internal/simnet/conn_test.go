package simnet

import (
	"testing"
	"time"

	"stabl/internal/sim"
)

func connTestNet(t *testing.T, n int, params ConnParams) (*sim.Scheduler, *Network, []*echoHandler) {
	t.Helper()
	sched, net, hs := newTestNet(t, n, FixedLatency(5*time.Millisecond))
	peers := make([]NodeID, n)
	for i := range peers {
		peers[i] = NodeID(i)
	}
	net.ManageConns(peers, params)
	net.StartAll()
	return sched, net, hs
}

func defaultConnParams() ConnParams {
	return ConnParams{
		HeartbeatInterval: time.Second,
		IdleTimeout:       10 * time.Second,
		ReconnectBase:     2 * time.Second,
		ReconnectCap:      30 * time.Second,
		Multiplier:        2,
		HandshakeTimeout:  time.Second,
	}
}

func TestConnsStartEstablished(t *testing.T) {
	sched, net, hs := connTestNet(t, 2, defaultConnParams())
	hs[0].ctx.Send(1, "x")
	sched.RunUntil(time.Second)
	if len(hs[1].received) != 1 {
		t.Fatal("message over initially-established conn lost")
	}
	if !net.ConnEstablished(0, 1) {
		t.Fatal("conn not established at boot")
	}
}

func TestHeartbeatsKeepIdleConnAlive(t *testing.T) {
	sched, net, hs := connTestNet(t, 2, defaultConnParams())
	// No application traffic for far longer than IdleTimeout.
	sched.RunUntil(60 * time.Second)
	if !net.ConnEstablished(0, 1) {
		t.Fatal("idle conn with heartbeats was torn down")
	}
	hs[0].ctx.Send(1, "still-works")
	sched.RunUntil(61 * time.Second)
	if len(hs[1].received) != 1 {
		t.Fatal("message lost on healthy conn")
	}
}

func TestCrashTearsDownAfterIdleTimeout(t *testing.T) {
	sched, net, _ := connTestNet(t, 2, defaultConnParams())
	sched.RunUntil(5 * time.Second)
	net.Halt(1)
	sched.RunUntil(5*time.Second + 9*time.Second)
	if !net.ConnEstablished(0, 1) {
		t.Fatal("torn down before idle timeout")
	}
	sched.RunUntil(5*time.Second + 13*time.Second)
	if net.ConnEstablished(0, 1) {
		t.Fatal("conn to crashed peer not torn down after idle timeout")
	}
}

func TestRestartActivelyReconnectsFast(t *testing.T) {
	sched, net, hs := connTestNet(t, 2, defaultConnParams())
	sched.RunUntil(5 * time.Second)
	net.Halt(1)
	sched.RunUntil(40 * time.Second) // long outage, conn torn down
	net.Restart(1)
	// Active recovery: reconnect attempt fires immediately, one RTT for
	// CONNECT/ACK (~10ms).
	sched.RunUntil(40*time.Second + 500*time.Millisecond)
	if !net.ConnEstablished(0, 1) {
		t.Fatal("restarted node did not actively reconnect promptly")
	}
	hs[0].ctx.Send(1, "hello-again")
	sched.RunUntil(41 * time.Second)
	if len(hs[1].received) != 1 {
		t.Fatal("message after reconnect lost")
	}
}

func TestPartitionRecoveryBoundedByBackoff(t *testing.T) {
	params := defaultConnParams()
	sched, net, hs := connTestNet(t, 2, params)
	rule := net.Partition([]NodeID{0}, []NodeID{1})
	partAt := sched.Now()
	// Idle timeout (10 s) tears the conn down; reconnect attempts fail
	// under the partition with exponential backoff.
	sched.RunUntil(partAt + 133*time.Second)
	if net.ConnEstablished(0, 1) {
		t.Fatal("conn survived a 133s partition")
	}
	net.Heal(rule)
	healedAt := sched.Now()
	// The conn must come back eventually, within the backoff cap plus
	// handshake slack.
	deadline := healedAt + params.ReconnectCap + 5*time.Second
	for sched.Now() < deadline && !net.ConnEstablished(0, 1) {
		sched.RunUntil(sched.Now() + time.Second)
	}
	if !net.ConnEstablished(0, 1) {
		t.Fatal("conn did not recover within backoff cap after heal")
	}
	recovery := sched.Now() - healedAt
	if recovery <= 0 {
		t.Fatal("recovery instantaneous; expected timer-bound delay")
	}
	hs[0].ctx.Send(1, "post-partition")
	sched.RunUntil(sched.Now() + time.Second)
	if len(hs[1].received) != 1 {
		t.Fatal("message after partition recovery lost")
	}
}

func TestUnmanagedEndpointsUnaffected(t *testing.T) {
	sched := sim.New(7)
	net := New(sched, Config{Latency: FixedLatency(time.Millisecond)})
	a, b, c := &echoHandler{}, &echoHandler{}, &echoHandler{}
	net.AddNode(0, a)
	net.AddNode(1, b)
	net.AddNode(100, c) // client, not in managed peer set
	net.ManageConns([]NodeID{0, 1}, defaultConnParams())
	net.StartAll()
	rule := net.Partition([]NodeID{0}, []NodeID{1})
	_ = rule
	sched.RunUntil(60 * time.Second) // managed conn 0-1 torn down
	c.ctx.Send(0, "client-call")
	sched.RunUntil(61 * time.Second)
	if len(a.received) != 1 {
		t.Fatal("client to node traffic blocked by conn manager")
	}
}

func TestConnStatsCount(t *testing.T) {
	sched, net, _ := connTestNet(t, 2, defaultConnParams())
	net.Halt(1)
	sched.RunUntil(30 * time.Second)
	downs, _ := net.ConnStats()
	if downs == 0 {
		t.Fatal("no teardown counted")
	}
	net.Restart(1)
	sched.RunUntil(40 * time.Second)
	_, reconns := net.ConnStats()
	if reconns == 0 {
		t.Fatal("no re-establishment counted")
	}
}

func TestManageConnsTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on second ManageConns")
		}
	}()
	_, net, _ := newTestNet(t, 2, nil)
	net.ManageConns([]NodeID{0, 1}, ConnParams{})
	net.ManageConns([]NodeID{0, 1}, ConnParams{})
}

func TestTokenBucketImmediateWhenTokensAvailable(t *testing.T) {
	b := NewTokenBucket(100, 10)
	ready := b.Reserve(0, 5)
	if ready != 0 {
		t.Fatalf("ready = %v, want 0", ready)
	}
}

func TestTokenBucketQueuesWhenExhausted(t *testing.T) {
	b := NewTokenBucket(10, 10) // 10 units/s
	b.Reserve(0, 10)            // drain burst
	ready := b.Reserve(0, 5)    // deficit 5 => 0.5 s
	if ready != 500*time.Millisecond {
		t.Fatalf("ready = %v, want 500ms", ready)
	}
	// FIFO: next reservation queues behind.
	ready2 := b.Reserve(0, 5)
	if ready2 != time.Second {
		t.Fatalf("ready2 = %v, want 1s", ready2)
	}
}

func TestTokenBucketRefills(t *testing.T) {
	b := NewTokenBucket(10, 10)
	b.Reserve(0, 10)
	if got := b.Available(time.Second); got < 9.99 || got > 10.01 {
		t.Fatalf("available after 1s = %v, want ~10", got)
	}
	if b.Backlog(time.Second) != 0 {
		t.Fatal("backlog after refill should be zero")
	}
}

func TestTokenBucketBacklogGrowsUnderOverload(t *testing.T) {
	b := NewTokenBucket(10, 10)
	var last time.Duration
	for i := 0; i < 100; i++ {
		last = b.Reserve(0, 10)
	}
	if last < 90*time.Second {
		t.Fatalf("100x overload ready time = %v, want >= 90s", last)
	}
	if b.Backlog(0) <= 0 {
		t.Fatal("backlog should be positive under overload")
	}
}

func TestTokenBucketPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero rate")
		}
	}()
	NewTokenBucket(0, 1)
}
