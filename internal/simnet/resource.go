package simnet

import "time"

// TokenBucket models a rate-limited resource (CPU quota, bandwidth) in
// virtual time. Work units are reserved in FIFO order: Reserve returns the
// instant at which the reserved work may execute, which is what a quota
// throttler exposes to its message queue.
//
// The bucket refills continuously at Rate units per second up to Burst
// units. Reservations may drive the bucket balance negative, which pushes
// the ready time of subsequent reservations further into the future —
// exactly the queueing behaviour of Avalanche's cpuThrottler.
type TokenBucket struct {
	rate     float64 // units per virtual second
	burst    float64
	balance  float64
	lastFill time.Duration
}

// NewTokenBucket creates a bucket that starts full.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		panic("simnet: token bucket rate must be positive")
	}
	if burst <= 0 {
		burst = rate
	}
	return &TokenBucket{rate: rate, burst: burst, balance: burst}
}

// Rate returns the refill rate in units per second.
func (b *TokenBucket) Rate() float64 { return b.rate }

func (b *TokenBucket) refill(now time.Duration) {
	if now <= b.lastFill {
		return
	}
	b.balance += b.rate * (now - b.lastFill).Seconds()
	if b.balance > b.burst {
		b.balance = b.burst
	}
	b.lastFill = now
}

// Reserve consumes cost units and returns the virtual instant at which the
// work may run. If tokens are available the work runs at now; otherwise the
// ready time is delayed by the deficit divided by the refill rate.
func (b *TokenBucket) Reserve(now time.Duration, cost float64) time.Duration {
	b.refill(now)
	b.balance -= cost
	if b.balance >= 0 {
		return now
	}
	deficit := -b.balance
	wait := time.Duration(deficit / b.rate * float64(time.Second))
	return now + wait
}

// Backlog returns how far behind the bucket currently is, i.e. the delay a
// zero-cost reservation made at now would experience.
func (b *TokenBucket) Backlog(now time.Duration) time.Duration {
	b.refill(now)
	if b.balance >= 0 {
		return 0
	}
	return time.Duration(-b.balance / b.rate * float64(time.Second))
}

// Available reports the current token balance (possibly negative).
func (b *TokenBucket) Available(now time.Duration) float64 {
	b.refill(now)
	return b.balance
}

// BucketState is a TokenBucket checkpoint (see package snapshot); owners
// embed it in their own snapshot states.
type BucketState struct {
	balance  float64
	lastFill time.Duration
}

// SnapshotState captures the bucket's mutable state.
func (b *TokenBucket) SnapshotState() BucketState {
	return BucketState{balance: b.balance, lastFill: b.lastFill}
}

// RestoreState rewinds the bucket to a captured state.
func (b *TokenBucket) RestoreState(st BucketState) {
	b.balance = st.balance
	b.lastFill = st.lastFill
}
