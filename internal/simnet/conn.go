package simnet

import (
	"time"

	"stabl/internal/sim"
)

// ConnParams configures the TCP-like connection layer between blockchain
// peers. Real blockchain nodes talk over long-lived connections that are
// torn down when idle and re-established by timer-driven retries; those
// timers, not packet-level reachability, dominate how fast a system recovers
// from a network partition (STABL §6). Each blockchain model supplies its
// own parameters.
type ConnParams struct {
	// HeartbeatInterval is the keep-alive ping cadence on established
	// connections (also the idle-check cadence).
	HeartbeatInterval time.Duration
	// IdleTimeout tears a connection down when no traffic has been
	// received from the peer for this long (Redbelly's MaxIdleTime).
	IdleTimeout time.Duration
	// ReconnectBase is the delay before the first reconnection attempt
	// after a teardown or a failed attempt.
	ReconnectBase time.Duration
	// ReconnectCap bounds the exponential backoff.
	ReconnectCap time.Duration
	// Multiplier is the backoff growth factor (values below 1 mean no
	// growth).
	Multiplier float64
	// HandshakeTimeout bounds one CONNECT/ACK exchange.
	HandshakeTimeout time.Duration
}

func (p ConnParams) normalized() ConnParams {
	if p.HeartbeatInterval <= 0 {
		p.HeartbeatInterval = time.Second
	}
	if p.IdleTimeout <= 0 {
		p.IdleTimeout = 10 * time.Second
	}
	if p.ReconnectBase <= 0 {
		p.ReconnectBase = 2 * time.Second
	}
	if p.ReconnectCap < p.ReconnectBase {
		p.ReconnectCap = p.ReconnectBase
	}
	if p.Multiplier < 1 {
		p.Multiplier = 1
	}
	if p.HandshakeTimeout <= 0 {
		p.HandshakeTimeout = 2 * time.Second
	}
	return p
}

// Control payloads exchanged by the connection layer. They travel over the
// same simulated links as application traffic (subject to partitions and
// node liveness) but bypass the "connection established" gate, exactly like
// TCP SYN/keep-alive segments.
type (
	connPing struct{}
	connReq  struct{ epoch uint64 }
	connAck  struct{ epoch uint64 }
)

type pairKey struct{ a, b NodeID }

func makePair(x, y NodeID) pairKey {
	if x < y {
		return pairKey{x, y}
	}
	return pairKey{y, x}
}

type pairState struct {
	key         pairKey
	established bool
	lastRecvA   time.Duration // last time key.a received traffic from key.b
	lastRecvB   time.Duration
	attempt     int
	epoch       uint64
	retryTimer  sim.Timer
	ackTimer    sim.Timer
}

type connManager struct {
	net     *Network
	params  ConnParams
	peers   map[NodeID]bool
	pairs   map[pairKey]*pairState
	order   []pairKey // deterministic iteration order; pings sample the shared RNG, so map order would desync runs
	ticker  *sim.Ticker
	downs   uint64 // teardown count, for tests
	reconns uint64 // successful re-establishments, for tests
}

// ManageConns activates the connection layer between the given peers.
// All pairs start established. Endpoints outside the peer set (clients,
// observers) are unaffected. Must be called once, before StartAll.
func (n *Network) ManageConns(peers []NodeID, params ConnParams) {
	if n.conns != nil {
		panic("simnet: ManageConns called twice")
	}
	cm := &connManager{
		net:    n,
		params: params.normalized(),
		peers:  toSet(peers),
		pairs:  make(map[pairKey]*pairState),
	}
	now := n.sched.Now()
	for _, id := range peers {
		n.mustNode(id).connPeer = true
	}
	for i, a := range peers {
		for _, b := range peers[i+1:] {
			k := makePair(a, b)
			cm.pairs[k] = &pairState{key: k, established: true, lastRecvA: now, lastRecvB: now}
			cm.order = append(cm.order, k)
		}
	}
	cm.ticker = sim.NewTicker(n.sched, cm.params.HeartbeatInterval, cm.tick)
	n.conns = cm
}

// ConnEstablished reports whether the connection between two managed peers
// is currently up; it returns true for unmanaged pairs.
func (n *Network) ConnEstablished(a, b NodeID) bool {
	if n.conns == nil {
		return true
	}
	return n.conns.allows(a, b)
}

// ConnStats returns (teardowns, re-establishments) observed so far.
func (n *Network) ConnStats() (uint64, uint64) {
	if n.conns == nil {
		return 0, 0
	}
	return n.conns.downs, n.conns.reconns
}

func (cm *connManager) allows(from, to NodeID) bool {
	return cm.allowsEp(cm.net.mustNode(from), cm.net.mustNode(to))
}

// allowsEp is the send-path gate: the connPeer flags replace two map lookups
// for traffic that does not involve managed peers (clients, observers).
func (cm *connManager) allowsEp(src, dst *endpoint) bool {
	if !src.connPeer || !dst.connPeer {
		return true
	}
	st := cm.pairs[makePair(src.id, dst.id)]
	return st != nil && st.established
}

// observeTraffic records that `to` heard from `from` at the given execution
// time. Callers pass their own queue's clock: the two lastRecv fields of a
// pair are written by the two endpoints' partitions respectively, and read
// only at barriers (tick runs on the root queue), so the connection layer
// needs no locks in parallel mode.
func (cm *connManager) observeTraffic(from, to NodeID, now time.Duration) {
	if !cm.net.nodes[from].connPeer || !cm.net.nodes[to].connPeer {
		return
	}
	st := cm.pairs[makePair(from, to)]
	if st == nil {
		return
	}
	if to == st.key.a {
		st.lastRecvA = now
	} else {
		st.lastRecvB = now
	}
}

// tick sends keep-alives and performs idle detection.
func (cm *connManager) tick() {
	now := cm.net.sched.Now()
	for _, k := range cm.order {
		st := cm.pairs[k]
		if !st.established {
			continue
		}
		aUp := cm.net.IsUp(st.key.a)
		bUp := cm.net.IsUp(st.key.b)
		// Keep-alive pings from each live side.
		if aUp {
			cm.sendControl(st.key.a, st.key.b, connPing{})
		}
		if bUp {
			cm.sendControl(st.key.b, st.key.a, connPing{})
		}
		// Idle detection: only a live side can notice the silence.
		idleA := aUp && now-st.lastRecvA > cm.params.IdleTimeout
		idleB := bUp && now-st.lastRecvB > cm.params.IdleTimeout
		if idleA || idleB {
			cm.teardown(st)
		}
	}
}

func (cm *connManager) teardown(st *pairState) {
	if !st.established {
		return
	}
	st.established = false
	st.attempt = 0
	st.epoch++
	cm.downs++
	cm.net.trace(TraceEvent{Kind: TraceConnDown, Node: st.key.a, Peer: st.key.b, Detail: "idle timeout"})
	cm.scheduleRetry(st, cm.params.ReconnectBase)
}

func (cm *connManager) scheduleRetry(st *pairState, delay time.Duration) {
	st.retryTimer.Stop()
	epoch := st.epoch
	st.retryTimer = cm.net.sched.After(delay, func() {
		if st.established || st.epoch != epoch {
			return
		}
		cm.attemptConnect(st)
	})
}

func (cm *connManager) attemptConnect(st *pairState) {
	st.attempt++
	// The lower-id live endpoint initiates; if neither is up the attempt
	// is a no-op and the retry timer keeps running.
	initiator, acceptor := st.key.a, st.key.b
	if !cm.net.IsUp(initiator) {
		initiator, acceptor = st.key.b, st.key.a
	}
	if cm.net.IsUp(initiator) {
		cm.sendControl(initiator, acceptor, connReq{epoch: st.epoch})
	}
	epoch := st.epoch
	st.ackTimer.Stop()
	st.ackTimer = cm.net.sched.After(cm.params.HandshakeTimeout, func() {
		if st.established || st.epoch != epoch {
			return
		}
		cm.scheduleRetry(st, cm.backoff(st.attempt))
	})
}

func (cm *connManager) backoff(attempt int) time.Duration {
	d := cm.params.ReconnectBase
	for i := 1; i < attempt; i++ {
		d = time.Duration(float64(d) * cm.params.Multiplier)
		if d >= cm.params.ReconnectCap {
			return cm.params.ReconnectCap
		}
	}
	if d > cm.params.ReconnectCap {
		d = cm.params.ReconnectCap
	}
	return d
}

// handleControl processes a delivered connection-layer payload. It reports
// whether the payload was a control message (and therefore must not reach
// the application handler).
func (cm *connManager) handleControl(from, to NodeID, payload any) bool {
	switch msg := payload.(type) {
	case connPing:
		return true
	case connReq:
		st := cm.pairs[makePair(from, to)]
		if st != nil && !st.established && msg.epoch == st.epoch {
			cm.sendControl(to, from, connAck{epoch: msg.epoch})
		}
		return true
	case connAck:
		st := cm.pairs[makePair(from, to)]
		if st != nil && !st.established && msg.epoch == st.epoch {
			cm.establish(st)
		}
		return true
	default:
		return false
	}
}

func (cm *connManager) establish(st *pairState) {
	st.established = true
	st.attempt = 0
	st.epoch++
	cm.reconns++
	cm.net.trace(TraceEvent{Kind: TraceConnUp, Node: st.key.a, Peer: st.key.b, Detail: "handshake"})
	now := cm.net.sched.Now()
	st.lastRecvA = now
	st.lastRecvB = now
	st.retryTimer.Stop()
	st.ackTimer.Stop()
}

// nodeRestarted implements active recovery: a freshly restarted node tears
// down whatever connections it nominally had (the old sockets died with the
// process) and immediately dials every peer.
func (cm *connManager) nodeRestarted(id NodeID) {
	if !cm.peers[id] {
		return
	}
	for _, k := range cm.order {
		st := cm.pairs[k]
		if st.key.a != id && st.key.b != id {
			continue
		}
		if st.established {
			st.established = false
			st.epoch++
			cm.downs++
			cm.net.trace(TraceEvent{Kind: TraceConnDown, Node: st.key.a, Peer: st.key.b, Detail: "peer restarted"})
		}
		st.attempt = 0
		cm.scheduleRetry(st, 0)
	}
}

// sendControl bypasses the established-connection gate (control traffic is
// how connections come up) but still honours partitions and liveness. Like
// application sends it rides a pooled delivery event.
func (cm *connManager) sendControl(from, to NodeID, payload any) {
	n := cm.net
	src := n.mustNode(from)
	dst := n.mustNode(to)
	if !src.up || n.Blocked(from, to) || !dst.up {
		return
	}
	// Injected loss hits control traffic too (a netem rule cannot tell a
	// heartbeat from a block): lossy links therefore also churn the
	// connection layer, like in a real deployment.
	if n.lossyIfaces > 0 && n.lost(src, to, src.loss) {
		return
	}
	// Control deliveries mutate shared pair state, so they execute on the
	// root queue (lane -1) regardless of the receiver's partition — but
	// they are keyed by the sender's lane so the total event order is the
	// same one the sequential kernel produces. sendControl only runs from
	// root contexts (the heartbeat ticker, retry timers, control handlers),
	// so the root clock and pool 0 are the right ones.
	d := n.newDelivery(0)
	d.dst = dst
	d.from = from
	d.payload = payload
	d.inc = dst.incarnation
	d.control = true
	n.sched.ScheduleKeyed(-1, int32(from), n.sched.TakeLaneSeq(int32(from)),
		n.sched.Now()+n.delay(src, to, src.lat, src.jit), d.run)
}
