package simnet

import (
	"strings"
	"testing"
	"time"

	"stabl/internal/sim"
)

func TestTracerReceivesLifecycleEvents(t *testing.T) {
	sched := sim.New(9)
	net := New(sched, Config{Latency: FixedLatency(time.Millisecond)})
	var events []TraceEvent
	net.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	net.AddNode(0, &echoHandler{})
	net.AddNode(1, &echoHandler{})
	net.StartAll()
	net.Halt(1)
	net.Restart(1)
	rule := net.Partition([]NodeID{0}, []NodeID{1})
	net.Heal(rule)
	net.SetExtraDelay(0, time.Second)
	net.SetExtraDelay(0, 0)

	kinds := make(map[TraceKind]int)
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[TraceNodeStart] != 3 { // 2 boots + 1 reboot
		t.Fatalf("starts = %d", kinds[TraceNodeStart])
	}
	if kinds[TraceNodeHalt] != 1 {
		t.Fatalf("halts = %d", kinds[TraceNodeHalt])
	}
	if kinds[TracePartition] != 1 || kinds[TraceHeal] != 1 {
		t.Fatalf("partition/heal = %d/%d", kinds[TracePartition], kinds[TraceHeal])
	}
	if kinds[TraceDelay] != 2 {
		t.Fatalf("delay events = %d", kinds[TraceDelay])
	}
	// Reboot detail is distinguishable from boot.
	var reboot bool
	for _, ev := range events {
		if ev.Kind == TraceNodeStart && ev.Detail == "reboot" {
			reboot = true
		}
	}
	if !reboot {
		t.Fatal("no reboot event")
	}
}

func TestTracerConnEvents(t *testing.T) {
	sched := sim.New(9)
	net := New(sched, Config{Latency: FixedLatency(5 * time.Millisecond)})
	var events []TraceEvent
	net.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	net.AddNode(0, &echoHandler{})
	net.AddNode(1, &echoHandler{})
	net.ManageConns([]NodeID{0, 1}, defaultConnParams())
	net.StartAll()
	net.Halt(1)
	sched.RunUntil(40 * time.Second)
	net.Restart(1)
	sched.RunUntil(60 * time.Second)

	var downs, ups int
	for _, ev := range events {
		switch ev.Kind {
		case TraceConnDown:
			downs++
		case TraceConnUp:
			ups++
		}
	}
	if downs == 0 || ups == 0 {
		t.Fatalf("conn events: downs=%d ups=%d", downs, ups)
	}
}

func TestWriterTracerFormatsLines(t *testing.T) {
	var buf strings.Builder
	tr := WriterTracer(&buf)
	tr(TraceEvent{At: 3 * time.Second, Kind: TraceNodeHalt, Node: 7, Peer: 7})
	tr(TraceEvent{At: 4 * time.Second, Kind: TraceConnUp, Node: 1, Peer: 2, Detail: "handshake"})
	out := buf.String()
	if !strings.Contains(out, "node-halt") || !strings.Contains(out, "n7") {
		t.Fatalf("out = %q", out)
	}
	if !strings.Contains(out, "n1<->n2") {
		t.Fatalf("out = %q", out)
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceNodeStart.String() != "node-start" || TraceKind(99).String() != "TraceKind(99)" {
		t.Fatal("TraceKind.String broken")
	}
}
