package simnet

import (
	"testing"
	"time"

	"stabl/internal/sim"
)

// echoHandler records everything it receives and can reply.
type echoHandler struct {
	ctx      *Context
	starts   int
	stops    int
	received []any
	froms    []NodeID
	onStart  func(*Context)
}

func (h *echoHandler) Start(ctx *Context) {
	h.ctx = ctx
	h.starts++
	if h.onStart != nil {
		h.onStart(ctx)
	}
}

func (h *echoHandler) Deliver(from NodeID, payload any) {
	h.received = append(h.received, payload)
	h.froms = append(h.froms, from)
}

func (h *echoHandler) Stop() { h.stops++ }

func newTestNet(t *testing.T, n int, lat LatencyModel) (*sim.Scheduler, *Network, []*echoHandler) {
	t.Helper()
	sched := sim.New(7)
	net := New(sched, Config{Latency: lat})
	hs := make([]*echoHandler, n)
	for i := 0; i < n; i++ {
		hs[i] = &echoHandler{}
		net.AddNode(NodeID(i), hs[i])
	}
	return sched, net, hs
}

func TestSendDeliversWithLatency(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(10*time.Millisecond))
	net.StartAll()
	hs[0].ctx.Send(1, "hello")
	sched.RunUntil(9 * time.Millisecond)
	if len(hs[1].received) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	sched.RunUntil(10 * time.Millisecond)
	if len(hs[1].received) != 1 || hs[1].received[0] != "hello" {
		t.Fatalf("received = %v", hs[1].received)
	}
	if hs[1].froms[0] != 0 {
		t.Fatalf("from = %v, want 0", hs[1].froms[0])
	}
}

func TestBroadcastExcludesSelf(t *testing.T) {
	sched, net, hs := newTestNet(t, 3, FixedLatency(time.Millisecond))
	net.StartAll()
	peers := []NodeID{0, 1, 2}
	hs[0].ctx.Broadcast(peers, "x")
	sched.RunUntil(time.Second)
	if len(hs[0].received) != 0 {
		t.Fatal("broadcast delivered to self")
	}
	if len(hs[1].received) != 1 || len(hs[2].received) != 1 {
		t.Fatal("broadcast missed a peer")
	}
}

func TestHaltDropsDeliveryAndTimers(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(10*time.Millisecond))
	net.StartAll()
	timerFired := false
	hs[1].ctx.After(20*time.Millisecond, func() { timerFired = true })
	hs[0].ctx.Send(1, "in-flight")
	sched.RunUntil(5 * time.Millisecond)
	net.Halt(1)
	if hs[1].stops != 1 {
		t.Fatalf("stops = %d, want 1", hs[1].stops)
	}
	sched.RunUntil(time.Second)
	if len(hs[1].received) != 0 {
		t.Fatal("halted node received in-flight message")
	}
	if timerFired {
		t.Fatal("halted node's timer fired")
	}
	if net.Stats().DroppedInFlight != 1 {
		t.Fatalf("DroppedInFlight = %d, want 1", net.Stats().DroppedInFlight)
	}
}

func TestSendToDownNodeDropped(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(time.Millisecond))
	net.StartAll()
	net.Halt(1)
	hs[0].ctx.Send(1, "x")
	sched.RunUntil(time.Second)
	if len(hs[1].received) != 0 {
		t.Fatal("down node received message")
	}
	if net.Stats().DroppedNodeDown != 1 {
		t.Fatalf("DroppedNodeDown = %d", net.Stats().DroppedNodeDown)
	}
}

func TestRestartReinvokesStartKeepingHandler(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(time.Millisecond))
	net.StartAll()
	net.Halt(1)
	net.Restart(1)
	if hs[1].starts != 2 {
		t.Fatalf("starts = %d, want 2", hs[1].starts)
	}
	hs[0].ctx.Send(1, "after-restart")
	sched.RunUntil(time.Second)
	if len(hs[1].received) != 1 {
		t.Fatal("restarted node did not receive")
	}
}

func TestTimersSurviveOnlyCurrentIncarnation(t *testing.T) {
	sched, net, hs := newTestNet(t, 1, FixedLatency(time.Millisecond))
	net.StartAll()
	old := 0
	hs[0].ctx.After(10*time.Millisecond, func() { old++ })
	net.Halt(0)
	net.Restart(0)
	fresh := 0
	hs[0].ctx.After(10*time.Millisecond, func() { fresh++ })
	sched.RunUntil(time.Second)
	if old != 0 {
		t.Fatal("pre-restart timer fired after restart")
	}
	if fresh != 1 {
		t.Fatal("post-restart timer did not fire")
	}
}

func TestPartitionBlocksBothDirectionsAtSendTime(t *testing.T) {
	sched, net, hs := newTestNet(t, 4, FixedLatency(10*time.Millisecond))
	net.StartAll()
	rule := net.Partition([]NodeID{0, 1}, []NodeID{2, 3})
	hs[0].ctx.Send(2, "a-to-b")
	hs[3].ctx.Send(1, "b-to-a")
	hs[0].ctx.Send(1, "same-side")
	// Heal before the messages would have arrived: send-time evaluation
	// means the cross-partition ones are still lost.
	sched.RunUntil(time.Millisecond)
	net.Heal(rule)
	sched.RunUntil(time.Second)
	if len(hs[2].received) != 0 || len(hs[1].received) != 1 {
		t.Fatalf("partition drops wrong: hs2=%v hs1=%v", hs[2].received, hs[1].received)
	}
	if net.Stats().DroppedPartition != 2 {
		t.Fatalf("DroppedPartition = %d, want 2", net.Stats().DroppedPartition)
	}
	// After heal new messages flow.
	hs[0].ctx.Send(2, "after-heal")
	sched.RunUntil(2 * time.Second)
	if len(hs[2].received) != 1 {
		t.Fatal("post-heal message lost")
	}
}

func TestBlockedReflectsRules(t *testing.T) {
	_, net, _ := newTestNet(t, 3, FixedLatency(time.Millisecond))
	rule := net.Partition([]NodeID{0}, []NodeID{1})
	if !net.Blocked(0, 1) || !net.Blocked(1, 0) {
		t.Fatal("rule not symmetric")
	}
	if net.Blocked(0, 2) {
		t.Fatal("unrelated pair blocked")
	}
	net.Heal(rule)
	if net.Blocked(0, 1) {
		t.Fatal("healed rule still blocks")
	}
}

func TestEveryStopsOnCrash(t *testing.T) {
	sched, net, hs := newTestNet(t, 1, FixedLatency(time.Millisecond))
	net.StartAll()
	ticks := 0
	hs[0].ctx.Every(10*time.Millisecond, func() { ticks++ })
	sched.RunUntil(35 * time.Millisecond)
	net.Halt(0)
	sched.RunUntil(200 * time.Millisecond)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate AddNode")
		}
	}()
	_, net, _ := newTestNet(t, 1, nil)
	net.AddNode(0, &echoHandler{})
}

func TestUniformLatencyWithinBounds(t *testing.T) {
	sched := sim.New(3)
	rng := sched.RNG("t")
	u := UniformLatency{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Sample(0, 1, rng)
		if d < u.Min || d >= u.Max {
			t.Fatalf("sample %v outside [%v,%v)", d, u.Min, u.Max)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []any {
		sched := sim.New(99)
		net := New(sched, Config{})
		a := &echoHandler{}
		b := &echoHandler{}
		net.AddNode(0, a)
		net.AddNode(1, b)
		net.StartAll()
		for i := 0; i < 50; i++ {
			i := i
			sched.At(time.Duration(i)*time.Millisecond, func() { a.ctx.Send(1, i) })
		}
		sched.RunUntil(time.Second)
		return b.received
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
}
