package simnet

import (
	"fmt"
	"io"
	"time"
)

// TraceKind classifies a network lifecycle event.
type TraceKind int

// Trace event kinds.
const (
	// TraceNodeStart is a node boot or reboot.
	TraceNodeStart TraceKind = iota + 1
	// TraceNodeHalt is a node crash.
	TraceNodeHalt
	// TracePartition is a packet-drop rule installation.
	TracePartition
	// TraceHeal is a rule removal.
	TraceHeal
	// TraceDelay is a netem delay change.
	TraceDelay
	// TraceConnDown is a connection teardown.
	TraceConnDown
	// TraceConnUp is a connection (re-)establishment.
	TraceConnUp
	// TraceLoss is a netem loss-rate change.
	TraceLoss
	// TraceJitter is a netem jitter-bound change.
	TraceJitter
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceNodeStart:
		return "node-start"
	case TraceNodeHalt:
		return "node-halt"
	case TracePartition:
		return "partition"
	case TraceHeal:
		return "heal"
	case TraceDelay:
		return "delay"
	case TraceConnDown:
		return "conn-down"
	case TraceConnUp:
		return "conn-up"
	case TraceLoss:
		return "loss"
	case TraceJitter:
		return "jitter"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one lifecycle transition: exactly the class of events that
// decides STABL experiments (who died when, which links were cut, when the
// reconnection timers fired).
type TraceEvent struct {
	At     time.Duration
	Kind   TraceKind
	Node   NodeID
	Peer   NodeID // conn events; Node otherwise
	Detail string
}

// String renders the event as one log line.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceConnDown, TraceConnUp:
		return fmt.Sprintf("%8.1fs %-10s %v<->%v %s", e.At.Seconds(), e.Kind, e.Node, e.Peer, e.Detail)
	default:
		return fmt.Sprintf("%8.1fs %-10s %v %s", e.At.Seconds(), e.Kind, e.Node, e.Detail)
	}
}

// Tracer receives lifecycle events as they happen.
type Tracer func(TraceEvent)

// SetTracer installs a lifecycle tracer (nil disables tracing).
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// WriterTracer returns a tracer that writes one line per event.
func WriterTracer(w io.Writer) Tracer {
	return func(ev TraceEvent) {
		fmt.Fprintln(w, ev.String())
	}
}

// MultiTracer fans every event out to all given tracers in order, skipping
// nil entries; it lets a log writer and a metrics recorder share the
// network's single tracer slot.
func MultiTracer(tracers ...Tracer) Tracer {
	return func(ev TraceEvent) {
		for _, t := range tracers {
			if t != nil {
				t(ev)
			}
		}
	}
}

func (n *Network) trace(ev TraceEvent) {
	if n.tracer != nil {
		ev.At = n.sched.Now()
		n.tracer(ev)
	}
}
