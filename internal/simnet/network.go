// Package simnet provides the simulated network substrate STABL experiments
// run on: named endpoints exchanging opaque payloads over links with
// configurable latency, send-time partition rules, node crash/restart with
// incarnation fencing, and an optional TCP-like connection layer whose
// heartbeat/reconnect timers reproduce the partition-recovery behaviour of
// real blockchain deployments.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"stabl/internal/sim"
)

// NodeID identifies an endpoint on the network. Blockchain validators,
// clients, observers and the experiment primary are all endpoints.
type NodeID int

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("n%d", int(id)) }

// Handler is the application logic attached to an endpoint.
//
// Start is invoked once when the network boots and again after every
// Restart; implementations must re-arm their volatile state (timers, vote
// tables) there while keeping persistent state (the ledger) across restarts.
// Stop is invoked when the node is halted.
type Handler interface {
	Start(ctx *Context)
	Deliver(from NodeID, payload any)
	Stop()
}

// LatencyModel samples a one-way message delay for a (from, to) pair.
type LatencyModel interface {
	Sample(from, to NodeID, rng *rand.Rand) time.Duration
}

// UniformLatency samples uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

var _ LatencyModel = UniformLatency{}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(_, _ NodeID, rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// FixedLatency returns the same delay for every message; useful in tests.
type FixedLatency time.Duration

var _ LatencyModel = FixedLatency(0)

// Sample implements LatencyModel.
func (f FixedLatency) Sample(_, _ NodeID, _ *rand.Rand) time.Duration {
	return time.Duration(f)
}

// Stats counts network-level activity; useful for tests and ablations.
type Stats struct {
	Sent              uint64
	Delivered         uint64
	DroppedPartition  uint64
	DroppedConnDown   uint64
	DroppedNodeDown   uint64
	DroppedInFlight   uint64
	DroppedSenderDown uint64
}

// Config parameterizes a Network.
type Config struct {
	// Latency models one-way delays; defaults to a 5-25 ms uniform link.
	Latency LatencyModel
}

// Network connects endpoints over the simulation scheduler.
type Network struct {
	sched   *sim.Scheduler
	latency LatencyModel
	rng     *rand.Rand
	nodes   map[NodeID]*endpoint
	rules   map[int]partitionRule
	ruleSeq int
	conns   *connManager
	stats   Stats
	tracer  Tracer
	// extraDelay models netem-style per-interface latency injection:
	// every message entering or leaving the node is delayed.
	extraDelay map[NodeID]time.Duration
}

type endpoint struct {
	id          NodeID
	handler     Handler
	up          bool
	incarnation uint64
	ctx         *Context
}

type partitionRule struct {
	a, b map[NodeID]bool
}

// New creates a network on the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Network {
	lat := cfg.Latency
	if lat == nil {
		lat = UniformLatency{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond}
	}
	return &Network{
		sched:      sched,
		latency:    lat,
		rng:        sched.RNG("simnet.latency"),
		nodes:      make(map[NodeID]*endpoint),
		rules:      make(map[int]partitionRule),
		extraDelay: make(map[NodeID]time.Duration),
	}
}

// Scheduler returns the underlying scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats { return n.stats }

// AddNode registers a handler under id. Nodes start in the down state until
// StartAll or StartNode is called. Adding a duplicate id is a programming
// error and panics.
func (n *Network) AddNode(id NodeID, h Handler) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %v", id))
	}
	ep := &endpoint{id: id, handler: h}
	ep.ctx = &Context{net: n, ep: ep}
	n.nodes[id] = ep
}

// Node reports whether id is registered.
func (n *Network) Node(id NodeID) bool {
	_, ok := n.nodes[id]
	return ok
}

// StartAll boots every registered node that is not already up.
func (n *Network) StartAll() {
	ids := n.sortedIDs()
	for _, id := range ids {
		if !n.nodes[id].up {
			n.StartNode(id)
		}
	}
}

// StartNode boots a single node, invoking its handler's Start.
func (n *Network) StartNode(id NodeID) {
	ep := n.mustNode(id)
	if ep.up {
		return
	}
	restart := ep.incarnation > 0
	ep.up = true
	ep.incarnation++
	detail := "boot"
	if restart {
		detail = "reboot"
	}
	n.trace(TraceEvent{Kind: TraceNodeStart, Node: id, Peer: id, Detail: detail})
	if restart && n.conns != nil {
		n.conns.nodeRestarted(id)
	}
	ep.handler.Start(ep.ctx)
}

// Halt crashes a node: its handler is stopped, its pending timers are fenced
// off, and in-flight messages addressed to it are dropped on arrival.
func (n *Network) Halt(id NodeID) {
	ep := n.mustNode(id)
	if !ep.up {
		return
	}
	ep.up = false
	ep.incarnation++
	n.trace(TraceEvent{Kind: TraceNodeHalt, Node: id, Peer: id})
	ep.handler.Stop()
}

// Restart boots a previously halted node with the same identity. The
// handler's persistent state survives; Start is called again.
func (n *Network) Restart(id NodeID) { n.StartNode(id) }

// IsUp reports whether the node is currently running.
func (n *Network) IsUp(id NodeID) bool { return n.mustNode(id).up }

// Partition installs a bidirectional drop rule between groups a and b,
// returning a rule id for Heal. Rules are evaluated at send time, matching
// STABL's netfilter-based injection: messages sent while the rule is active
// are lost even if the rule is healed before they would have arrived.
func (n *Network) Partition(a, b []NodeID) int {
	rule := partitionRule{a: toSet(a), b: toSet(b)}
	n.ruleSeq++
	n.rules[n.ruleSeq] = rule
	if len(a) > 0 {
		n.trace(TraceEvent{Kind: TracePartition, Node: a[0], Peer: a[0],
			Detail: fmt.Sprintf("rule %d: %d vs %d nodes", n.ruleSeq, len(a), len(b))})
	}
	return n.ruleSeq
}

// Heal removes a partition rule installed by Partition.
func (n *Network) Heal(rule int) {
	if _, ok := n.rules[rule]; ok {
		n.trace(TraceEvent{Kind: TraceHeal, Detail: fmt.Sprintf("rule %d", rule)})
	}
	delete(n.rules, rule)
}

// SetExtraDelay injects (or clears, with 0) additional latency on every
// message to or from a node, modelling tc-netem delay rules on the node's
// interface.
func (n *Network) SetExtraDelay(id NodeID, d time.Duration) {
	n.mustNode(id)
	n.trace(TraceEvent{Kind: TraceDelay, Node: id, Peer: id, Detail: d.String()})
	if d <= 0 {
		delete(n.extraDelay, id)
		return
	}
	n.extraDelay[id] = d
}

// ExtraDelay returns the injected latency on a node's interface.
func (n *Network) ExtraDelay(id NodeID) time.Duration { return n.extraDelay[id] }

// Blocked reports whether a (from, to) pair is currently separated by a
// partition rule.
func (n *Network) Blocked(from, to NodeID) bool {
	for _, r := range n.rules {
		if (r.a[from] && r.b[to]) || (r.b[from] && r.a[to]) {
			return true
		}
	}
	return false
}

// send is the single message path; all drops are accounted in stats.
func (n *Network) send(from, to NodeID, payload any) {
	src := n.mustNode(from)
	dst := n.mustNode(to)
	n.stats.Sent++
	if !src.up {
		n.stats.DroppedSenderDown++
		return
	}
	if n.Blocked(from, to) {
		n.stats.DroppedPartition++
		return
	}
	if n.conns != nil && !n.conns.allows(from, to) {
		n.stats.DroppedConnDown++
		return
	}
	if !dst.up {
		n.stats.DroppedNodeDown++
		return
	}
	inc := dst.incarnation
	delay := n.latency.Sample(from, to, n.rng) + n.extraDelay[from] + n.extraDelay[to]
	n.sched.After(delay, func() {
		if !dst.up || dst.incarnation != inc {
			n.stats.DroppedInFlight++
			return
		}
		n.stats.Delivered++
		if n.conns != nil {
			n.conns.observeTraffic(from, to)
		}
		dst.handler.Deliver(from, payload)
	})
}

func (n *Network) mustNode(id NodeID) *endpoint {
	ep, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("simnet: unknown node %v", id))
	}
	return ep
}

func (n *Network) sortedIDs() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func toSet(ids []NodeID) map[NodeID]bool {
	s := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Context is the capability surface handed to a node's handler. All methods
// are only valid while the node is up; timers armed through the context are
// automatically fenced when the node crashes.
type Context struct {
	net *Network
	ep  *endpoint
}

// ID returns the node's identity.
func (c *Context) ID() NodeID { return c.ep.id }

// Now returns the current virtual time.
func (c *Context) Now() time.Duration { return c.net.sched.Now() }

// Send transmits payload to the named peer, subject to partitions,
// connection state and peer liveness.
func (c *Context) Send(to NodeID, payload any) {
	if !c.ep.up {
		return
	}
	c.net.send(c.ep.id, to, payload)
}

// Broadcast sends payload to every id in peers except the sender itself.
func (c *Context) Broadcast(peers []NodeID, payload any) {
	for _, id := range peers {
		if id == c.ep.id {
			continue
		}
		c.Send(id, payload)
	}
}

// After schedules fn on the node's behalf. The callback is suppressed if the
// node crashes (or restarts) before it fires.
func (c *Context) After(d time.Duration, fn func()) *sim.Timer {
	inc := c.ep.incarnation
	return c.net.sched.After(d, func() {
		if c.ep.up && c.ep.incarnation == inc {
			fn()
		}
	})
}

// Every schedules fn at a fixed interval until the returned ticker is
// stopped or the node crashes.
func (c *Context) Every(interval time.Duration, fn func()) *sim.Ticker {
	inc := c.ep.incarnation
	return sim.NewTicker(c.net.sched, interval, func() {
		if c.ep.up && c.ep.incarnation == inc {
			fn()
		}
	})
}

// RNG derives a deterministic random stream namespaced to this node.
func (c *Context) RNG(name string) *rand.Rand {
	return c.net.sched.RNG(fmt.Sprintf("node/%d/%s", int(c.ep.id), name))
}

// Connected reports whether the connection layer currently allows traffic
// from this node to peer (always true when connections are unmanaged).
func (c *Context) Connected(peer NodeID) bool {
	if c.net.conns == nil {
		return true
	}
	return c.net.conns.allows(c.ep.id, peer)
}
