// Package simnet provides the simulated network substrate STABL experiments
// run on: named endpoints exchanging opaque payloads over links with
// configurable latency, send-time partition rules, node crash/restart with
// incarnation fencing, and an optional TCP-like connection layer whose
// heartbeat/reconnect timers reproduce the partition-recovery behaviour of
// real blockchain deployments.
//
// The send path is the hottest code in every experiment, so it is built for
// constant-time checks: endpoints live in a dense slice keyed by NodeID,
// partitions maintain a blocked-pair count map updated on Partition/Heal
// (Blocked is O(1) per message instead of scanning every rule), netem-style
// extra delays use a dense slice with a non-zero counter, and delivery
// events are pooled value-typed closures rather than a fresh closure per
// message.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"stabl/internal/sim"
)

// NodeID identifies an endpoint on the network. Blockchain validators,
// clients, observers and the experiment primary are all endpoints. IDs must
// be small non-negative integers: they index dense per-node tables.
type NodeID int

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("n%d", int(id)) }

// Handler is the application logic attached to an endpoint.
//
// Start is invoked once when the network boots and again after every
// Restart; implementations must re-arm their volatile state (timers, vote
// tables) there while keeping persistent state (the ledger) across restarts.
// Stop is invoked when the node is halted.
type Handler interface {
	Start(ctx *Context)
	Deliver(from NodeID, payload any)
	Stop()
}

// LatencyModel samples a one-way message delay for a (from, to) pair.
type LatencyModel interface {
	Sample(from, to NodeID, rng *rand.Rand) time.Duration
}

// UniformLatency samples uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

var _ LatencyModel = UniformLatency{}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(_, _ NodeID, rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// FixedLatency returns the same delay for every message; useful in tests.
type FixedLatency time.Duration

var _ LatencyModel = FixedLatency(0)

// Sample implements LatencyModel.
func (f FixedLatency) Sample(_, _ NodeID, _ *rand.Rand) time.Duration {
	return time.Duration(f)
}

// Stats counts network-level activity; useful for tests and ablations.
type Stats struct {
	Sent              uint64
	Delivered         uint64
	DroppedPartition  uint64
	DroppedConnDown   uint64
	DroppedNodeDown   uint64
	DroppedInFlight   uint64
	DroppedSenderDown uint64
	DroppedLoss       uint64
}

// Config parameterizes a Network.
type Config struct {
	// Latency models one-way delays; defaults to a 5-25 ms uniform link.
	Latency LatencyModel
}

// Network connects endpoints over the simulation scheduler.
type Network struct {
	sched   *sim.Scheduler
	latency LatencyModel
	rng     *rand.Rand
	// nodes is a dense table keyed by NodeID (nil = unregistered); ids
	// lists registered ids, kept sorted lazily for StartAll.
	nodes     []*endpoint
	ids       []NodeID
	idsSorted bool
	rules     map[int]partitionRule
	ruleSeq   int
	// blockedPairs counts, per unordered node pair, how many active rules
	// separate the pair; maintained by Partition/Heal so the per-message
	// Blocked check is a single map probe (skipped entirely when empty).
	blockedPairs map[pairKey]int
	conns        *connManager
	stats        Stats
	tracer       Tracer
	// extraDelay models netem-style per-interface latency injection:
	// every message entering or leaving the node is delayed. Dense by
	// NodeID; extraDelayed counts non-zero entries so the common case
	// costs one comparison.
	extraDelay   []time.Duration
	extraDelayed int
	// lossRate / jitterBound model netem-style per-interface degradation:
	// a message crossing a lossy interface is dropped with the interface's
	// probability (both endpoints combine independently), and a jittery
	// interface adds a uniform extra delay in [0, bound]. Dense by NodeID
	// with non-zero counters, mirroring extraDelay: when no interface is
	// degraded the send fast path pays exactly one integer comparison per
	// feature and draws nothing from the degradation RNG streams, so
	// loss=0/jitter=0 runs are bit-for-bit identical to a kernel without
	// the feature.
	lossRate     []float64
	lossyIfaces  int
	jitterBound  []time.Duration
	jitterIfaces int
	lossRNG      *rand.Rand
	jitterRNG    *rand.Rand
	// freeDeliveries pools delivery events so a message in steady state
	// schedules no new closure.
	freeDeliveries *delivery
	// deliveries registers every pooled delivery ever allocated, in
	// creation order, so Snapshot/Restore can rewind in-flight messages
	// and rebuild the free list (see snapshot.go).
	deliveries []*delivery
}

type endpoint struct {
	id          NodeID
	handler     Handler
	up          bool
	connPeer    bool // participates in the managed connection layer
	incarnation uint64
	ctx         *Context
}

// partitionRule remembers the cross pairs it contributed to blockedPairs so
// Heal can retract exactly those counts.
type partitionRule struct {
	pairs []pairKey
}

// New creates a network on the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Network {
	lat := cfg.Latency
	if lat == nil {
		lat = UniformLatency{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond}
	}
	return &Network{
		sched:   sched,
		latency: lat,
		rng:     sched.RNG("simnet.latency"),
		// Dedicated degradation streams: enabling loss or jitter must not
		// shift the latency stream (and vice versa), so that a run with
		// the primitives unused replays the undegraded run bit-for-bit.
		lossRNG:      sched.RNG("simnet.loss"),
		jitterRNG:    sched.RNG("simnet.jitter"),
		rules:        make(map[int]partitionRule),
		blockedPairs: make(map[pairKey]int),
	}
}

// Scheduler returns the underlying scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats { return n.stats }

// AddNode registers a handler under id. Nodes start in the down state until
// StartAll or StartNode is called. Adding a duplicate id is a programming
// error and panics, as is a negative id (ids key dense tables).
func (n *Network) AddNode(id NodeID, h Handler) {
	if id < 0 {
		panic(fmt.Sprintf("simnet: negative node id %v", id))
	}
	if int(id) >= len(n.nodes) {
		grown := make([]*endpoint, id+1)
		copy(grown, n.nodes)
		n.nodes = grown
		delays := make([]time.Duration, id+1)
		copy(delays, n.extraDelay)
		n.extraDelay = delays
		losses := make([]float64, id+1)
		copy(losses, n.lossRate)
		n.lossRate = losses
		jitters := make([]time.Duration, id+1)
		copy(jitters, n.jitterBound)
		n.jitterBound = jitters
	}
	if n.nodes[id] != nil {
		panic(fmt.Sprintf("simnet: duplicate node %v", id))
	}
	ep := &endpoint{id: id, handler: h}
	ep.ctx = &Context{net: n, ep: ep}
	n.nodes[id] = ep
	n.ids = append(n.ids, id)
	n.idsSorted = len(n.ids) == 1 || (n.idsSorted && id > n.ids[len(n.ids)-2])
}

// Node reports whether id is registered.
func (n *Network) Node(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes) && n.nodes[id] != nil
}

// StartAll boots every registered node that is not already up.
func (n *Network) StartAll() {
	for _, id := range n.sortedIDs() {
		if !n.nodes[id].up {
			n.StartNode(id)
		}
	}
}

// StartNode boots a single node, invoking its handler's Start.
func (n *Network) StartNode(id NodeID) {
	ep := n.mustNode(id)
	if ep.up {
		return
	}
	restart := ep.incarnation > 0
	ep.up = true
	ep.incarnation++
	detail := "boot"
	if restart {
		detail = "reboot"
	}
	n.trace(TraceEvent{Kind: TraceNodeStart, Node: id, Peer: id, Detail: detail})
	if restart && n.conns != nil {
		n.conns.nodeRestarted(id)
	}
	ep.handler.Start(ep.ctx)
}

// Halt crashes a node: its handler is stopped, its pending timers are fenced
// off, and in-flight messages addressed to it are dropped on arrival.
func (n *Network) Halt(id NodeID) {
	ep := n.mustNode(id)
	if !ep.up {
		return
	}
	ep.up = false
	ep.incarnation++
	n.trace(TraceEvent{Kind: TraceNodeHalt, Node: id, Peer: id})
	ep.handler.Stop()
}

// Restart boots a previously halted node with the same identity. The
// handler's persistent state survives; Start is called again.
func (n *Network) Restart(id NodeID) { n.StartNode(id) }

// IsUp reports whether the node is currently running.
func (n *Network) IsUp(id NodeID) bool { return n.mustNode(id).up }

// Partition installs a bidirectional drop rule between groups a and b,
// returning a rule id for Heal. Rules are evaluated at send time, matching
// STABL's netfilter-based injection: messages sent while the rule is active
// are lost even if the rule is healed before they would have arrived.
func (n *Network) Partition(a, b []NodeID) int {
	rule := partitionRule{pairs: make([]pairKey, 0, len(a)*len(b))}
	for _, x := range a {
		for _, y := range b {
			k := makePair(x, y)
			rule.pairs = append(rule.pairs, k)
			n.blockedPairs[k]++
		}
	}
	n.ruleSeq++
	n.rules[n.ruleSeq] = rule
	if len(a) > 0 {
		n.trace(TraceEvent{Kind: TracePartition, Node: a[0], Peer: a[0],
			Detail: fmt.Sprintf("rule %d: %d vs %d nodes", n.ruleSeq, len(a), len(b))})
	}
	return n.ruleSeq
}

// Heal removes a partition rule installed by Partition.
func (n *Network) Heal(rule int) {
	r, ok := n.rules[rule]
	if !ok {
		return
	}
	n.trace(TraceEvent{Kind: TraceHeal, Detail: fmt.Sprintf("rule %d", rule)})
	for _, k := range r.pairs {
		if c := n.blockedPairs[k]; c <= 1 {
			delete(n.blockedPairs, k)
		} else {
			n.blockedPairs[k] = c - 1
		}
	}
	delete(n.rules, rule)
}

// SetExtraDelay injects (or clears, with 0) additional latency on every
// message to or from a node, modelling tc-netem delay rules on the node's
// interface.
func (n *Network) SetExtraDelay(id NodeID, d time.Duration) {
	n.mustNode(id)
	n.trace(TraceEvent{Kind: TraceDelay, Node: id, Peer: id, Detail: d.String()})
	if d < 0 {
		d = 0
	}
	old := n.extraDelay[id]
	switch {
	case old == 0 && d > 0:
		n.extraDelayed++
	case old > 0 && d == 0:
		n.extraDelayed--
	}
	n.extraDelay[id] = d
}

// ExtraDelay returns the injected latency on a node's interface.
func (n *Network) ExtraDelay(id NodeID) time.Duration {
	if int(id) >= len(n.extraDelay) {
		return 0
	}
	return n.extraDelay[id]
}

// SetLoss injects (or clears, with 0) probabilistic packet loss on a node's
// interface, modelling a tc-netem loss rule: every message entering or
// leaving the node is dropped independently with probability p. Values are
// clamped into [0, 1]. Losses are drawn from a dedicated RNG stream, so a
// network with every rate at zero replays identically to one that never
// touched the primitive.
func (n *Network) SetLoss(id NodeID, p float64) {
	n.mustNode(id)
	switch {
	case p < 0:
		p = 0
	case p > 1:
		p = 1
	}
	n.trace(TraceEvent{Kind: TraceLoss, Node: id, Peer: id, Detail: fmt.Sprintf("p=%g", p)})
	old := n.lossRate[id]
	switch {
	case old == 0 && p > 0:
		n.lossyIfaces++
	case old > 0 && p == 0:
		n.lossyIfaces--
	}
	n.lossRate[id] = p
}

// Loss returns the injected loss probability on a node's interface.
func (n *Network) Loss(id NodeID) float64 {
	if int(id) >= len(n.lossRate) {
		return 0
	}
	return n.lossRate[id]
}

// SetJitter injects (or clears, with 0) bounded latency jitter on a node's
// interface: every message entering or leaving the node is delayed by an
// extra uniform draw from [0, bound], modelling a tc-netem delay-variation
// rule. Jitter draws come from a dedicated RNG stream, so bound-zero
// networks replay identically to pre-jitter kernels.
func (n *Network) SetJitter(id NodeID, bound time.Duration) {
	n.mustNode(id)
	if bound < 0 {
		bound = 0
	}
	n.trace(TraceEvent{Kind: TraceJitter, Node: id, Peer: id, Detail: bound.String()})
	old := n.jitterBound[id]
	switch {
	case old == 0 && bound > 0:
		n.jitterIfaces++
	case old > 0 && bound == 0:
		n.jitterIfaces--
	}
	n.jitterBound[id] = bound
}

// Jitter returns the injected jitter bound on a node's interface.
func (n *Network) Jitter(id NodeID) time.Duration {
	if int(id) >= len(n.jitterBound) {
		return 0
	}
	return n.jitterBound[id]
}

// lost decides whether a message on the (from, to) link is dropped by
// injected loss. Callers must gate on n.lossyIfaces so the undegraded path
// never reaches the RNG. The two interface rates combine independently,
// like two netem qdiscs in series.
func (n *Network) lost(from, to NodeID) bool {
	pf, pt := n.lossRate[from], n.lossRate[to]
	if pf == 0 && pt == 0 {
		return false
	}
	p := pf + pt - pf*pt
	return n.lossRNG.Float64() < p
}

// Blocked reports whether a (from, to) pair is currently separated by a
// partition rule. The check is O(1): Partition/Heal maintain the pair
// counts.
func (n *Network) Blocked(from, to NodeID) bool {
	if len(n.blockedPairs) == 0 {
		return false
	}
	return n.blockedPairs[makePair(from, to)] > 0
}

// delivery is a pooled in-flight message event. Its run closure is bound
// once when the delivery is first allocated; afterwards sending a message
// reuses a free delivery and schedules the existing closure, so the steady
// state send path allocates nothing.
type delivery struct {
	n       *Network
	dst     *endpoint
	from    NodeID
	payload any
	inc     uint64
	control bool // connection-layer traffic (bypasses the app handler)
	run     func()
	next    *delivery // pool free list
}

func (n *Network) newDelivery() *delivery {
	d := n.freeDeliveries
	if d == nil {
		d = &delivery{n: n}
		d.run = d.fire
		n.deliveries = append(n.deliveries, d)
	} else {
		n.freeDeliveries = d.next
		d.next = nil
	}
	return d
}

// fire executes the arrival. The delivery returns to the pool before the
// handler runs: all state is copied to locals first, so reentrant sends from
// inside Deliver can safely reuse it.
func (d *delivery) fire() {
	n, dst, from, payload, inc, control := d.n, d.dst, d.from, d.payload, d.inc, d.control
	d.dst = nil
	d.payload = nil
	d.next = n.freeDeliveries
	n.freeDeliveries = d
	if !dst.up || dst.incarnation != inc {
		if !control {
			n.stats.DroppedInFlight++
		}
		return
	}
	if control {
		n.conns.observeTraffic(from, dst.id)
		n.conns.handleControl(from, dst.id, payload)
		return
	}
	n.stats.Delivered++
	if n.conns != nil {
		n.conns.observeTraffic(from, dst.id)
	}
	dst.handler.Deliver(from, payload)
}

// send is the single application message path; all drops are accounted in
// stats.
func (n *Network) send(from, to NodeID, payload any) {
	src := n.mustNode(from)
	dst := n.mustNode(to)
	n.stats.Sent++
	if !src.up {
		n.stats.DroppedSenderDown++
		return
	}
	if n.Blocked(from, to) {
		n.stats.DroppedPartition++
		return
	}
	if n.conns != nil && !n.conns.allowsEp(src, dst) {
		n.stats.DroppedConnDown++
		return
	}
	if !dst.up {
		n.stats.DroppedNodeDown++
		return
	}
	if n.lossyIfaces > 0 && n.lost(from, to) {
		n.stats.DroppedLoss++
		return
	}
	d := n.newDelivery()
	d.dst = dst
	d.from = from
	d.payload = payload
	d.inc = dst.incarnation
	d.control = false
	n.sched.After(n.delay(from, to), d.run)
}

// delay samples the one-way latency for a message, including any injected
// interface delays and jitter.
func (n *Network) delay(from, to NodeID) time.Duration {
	d := n.latency.Sample(from, to, n.rng)
	if n.extraDelayed > 0 {
		d += n.extraDelay[from] + n.extraDelay[to]
	}
	if n.jitterIfaces > 0 {
		if bound := n.jitterBound[from] + n.jitterBound[to]; bound > 0 {
			d += time.Duration(n.jitterRNG.Int63n(int64(bound) + 1))
		}
	}
	return d
}

func (n *Network) mustNode(id NodeID) *endpoint {
	if id >= 0 && int(id) < len(n.nodes) {
		if ep := n.nodes[id]; ep != nil {
			return ep
		}
	}
	panic(fmt.Sprintf("simnet: unknown node %v", id))
}

// sortedIDs returns all registered ids in ascending order. The sorted slice
// is cached and only re-sorted after an out-of-order AddNode.
func (n *Network) sortedIDs() []NodeID {
	if !n.idsSorted {
		sort.Slice(n.ids, func(i, j int) bool { return n.ids[i] < n.ids[j] })
		n.idsSorted = true
	}
	return n.ids
}

func toSet(ids []NodeID) map[NodeID]bool {
	s := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Context is the capability surface handed to a node's handler. All methods
// are only valid while the node is up; timers armed through the context are
// automatically fenced when the node crashes.
type Context struct {
	net *Network
	ep  *endpoint
	// rngSeeds memoizes the derived seed per stream name so repeated
	// derivations (every restart) skip the name formatting and hashing.
	rngSeeds map[string]int64
}

// ID returns the node's identity.
func (c *Context) ID() NodeID { return c.ep.id }

// Now returns the current virtual time.
func (c *Context) Now() time.Duration { return c.net.sched.Now() }

// Send transmits payload to the named peer, subject to partitions,
// connection state and peer liveness.
func (c *Context) Send(to NodeID, payload any) {
	if !c.ep.up {
		return
	}
	c.net.send(c.ep.id, to, payload)
}

// Broadcast sends payload to every id in peers except the sender itself.
func (c *Context) Broadcast(peers []NodeID, payload any) {
	for _, id := range peers {
		if id == c.ep.id {
			continue
		}
		c.Send(id, payload)
	}
}

// After schedules fn on the node's behalf. The callback is suppressed if the
// node crashes (or restarts) before it fires.
func (c *Context) After(d time.Duration, fn func()) sim.Timer {
	inc := c.ep.incarnation
	return c.net.sched.After(d, func() {
		if c.ep.up && c.ep.incarnation == inc {
			fn()
		}
	})
}

// Every schedules fn at a fixed interval until the returned ticker is
// stopped or the node crashes.
func (c *Context) Every(interval time.Duration, fn func()) *sim.Ticker {
	inc := c.ep.incarnation
	return sim.NewTicker(c.net.sched, interval, func() {
		if c.ep.up && c.ep.incarnation == inc {
			fn()
		}
	})
}

// RNG derives a deterministic random stream namespaced to this node. Like
// sim.Scheduler.RNG, every call returns a fresh stream positioned at its
// start; the derivation is memoized per name.
func (c *Context) RNG(name string) *rand.Rand {
	d, ok := c.rngSeeds[name]
	if !ok {
		d = c.net.sched.RNGSeed(fmt.Sprintf("node/%d/%s", int(c.ep.id), name))
		if c.rngSeeds == nil {
			c.rngSeeds = make(map[string]int64)
		}
		c.rngSeeds[name] = d
	}
	// Issue through the scheduler so the stream registers for
	// Snapshot/Restore; the contents are identical to rand.NewSource(d).
	return c.net.sched.RNGFromSeed(d)
}

// Connected reports whether the connection layer currently allows traffic
// from this node to peer (always true when connections are unmanaged).
func (c *Context) Connected(peer NodeID) bool {
	if c.net.conns == nil {
		return true
	}
	return c.net.conns.allows(c.ep.id, peer)
}
