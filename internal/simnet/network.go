// Package simnet provides the simulated network substrate STABL experiments
// run on: named endpoints exchanging opaque payloads over links with
// configurable latency, send-time partition rules, node crash/restart with
// incarnation fencing, and an optional TCP-like connection layer whose
// heartbeat/reconnect timers reproduce the partition-recovery behaviour of
// real blockchain deployments.
//
// The send path is the hottest code in every experiment, so it is built for
// constant-time checks: endpoints live in a dense slice keyed by NodeID,
// partitions maintain a blocked-pair count map updated on Partition/Heal
// (Blocked is O(1) per message instead of scanning every rule), netem-style
// extra delays use a dense slice with a non-zero counter, and delivery
// events are pooled value-typed closures rather than a fresh closure per
// message.
//
// The network is also where the parallel kernel's ownership discipline
// lives (see sim's parallel mode): every delay/loss/jitter draw comes from
// the *sender's* private RNG streams, a message's ordering key is assigned
// at send time from the sender's lane counter, and cross-partition sends
// inside a lookahead window are buffered per queue and injected at the next
// barrier. Node lifecycle and degradation mutators are barrier-only.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"stabl/internal/sim"
)

// NodeID identifies an endpoint on the network. Blockchain validators,
// clients, observers and the experiment primary are all endpoints. IDs must
// be small non-negative integers: they index dense per-node tables.
type NodeID int

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("n%d", int(id)) }

// Handler is the application logic attached to an endpoint.
//
// Start is invoked once when the network boots and again after every
// Restart; implementations must re-arm their volatile state (timers, vote
// tables) there while keeping persistent state (the ledger) across restarts.
// Stop is invoked when the node is halted.
type Handler interface {
	Start(ctx *Context)
	Deliver(from NodeID, payload any)
	Stop()
}

// LatencyModel samples a one-way message delay for a (from, to) pair.
type LatencyModel interface {
	Sample(from, to NodeID, rng *rand.Rand) time.Duration
}

// DelayLowerBound is implemented by latency models that can state a static,
// positive lower bound on every delay they will ever sample. The parallel
// kernel derives its lookahead from it; models without the method (or with
// a zero bound) force the sequential kernel.
type DelayLowerBound interface {
	LowerBound() time.Duration
}

// PairDelayLowerBound is implemented by latency models whose bound depends on
// the link: LowerBoundBetween states a static lower bound for one directed
// (from, to) pair. Callers that know which pairs actually exchange messages
// (e.g. an overlay-confined deployment) can minimize over just those pairs
// and hand the tighter horizon to SetLookahead.
type PairDelayLowerBound interface {
	LowerBoundBetween(from, to NodeID) time.Duration
}

// UniformLatency samples uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

var _ LatencyModel = UniformLatency{}

// Sample implements LatencyModel.
func (u UniformLatency) Sample(_, _ NodeID, rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// LowerBound implements DelayLowerBound.
func (u UniformLatency) LowerBound() time.Duration { return u.Min }

// LowerBoundBetween implements PairDelayLowerBound; the bound is pair-uniform.
func (u UniformLatency) LowerBoundBetween(_, _ NodeID) time.Duration { return u.Min }

// FixedLatency returns the same delay for every message; useful in tests.
type FixedLatency time.Duration

var _ LatencyModel = FixedLatency(0)

// Sample implements LatencyModel.
func (f FixedLatency) Sample(_, _ NodeID, _ *rand.Rand) time.Duration {
	return time.Duration(f)
}

// LowerBound implements DelayLowerBound.
func (f FixedLatency) LowerBound() time.Duration { return time.Duration(f) }

// LowerBoundBetween implements PairDelayLowerBound; the bound is pair-uniform.
func (f FixedLatency) LowerBoundBetween(_, _ NodeID) time.Duration { return time.Duration(f) }

// Stats counts network-level activity; useful for tests and ablations.
type Stats struct {
	Sent              uint64
	Delivered         uint64
	DroppedPartition  uint64
	DroppedConnDown   uint64
	DroppedNodeDown   uint64
	DroppedInFlight   uint64
	DroppedSenderDown uint64
	DroppedLoss       uint64
}

// add accumulates b into a; all counters are commutative sums, so shard
// order never shows in the total.
func (a *Stats) add(b Stats) {
	a.Sent += b.Sent
	a.Delivered += b.Delivered
	a.DroppedPartition += b.DroppedPartition
	a.DroppedConnDown += b.DroppedConnDown
	a.DroppedNodeDown += b.DroppedNodeDown
	a.DroppedInFlight += b.DroppedInFlight
	a.DroppedSenderDown += b.DroppedSenderDown
	a.DroppedLoss += b.DroppedLoss
}

// Config parameterizes a Network.
type Config struct {
	// Latency models one-way delays; defaults to a 5-25 ms uniform link.
	Latency LatencyModel
}

// Network connects endpoints over the simulation scheduler.
type Network struct {
	sched   *sim.Scheduler
	latency LatencyModel
	// nodes is a dense table keyed by NodeID (nil = unregistered); ids
	// lists registered ids, kept sorted lazily for StartAll.
	nodes []*endpoint
	//stabl:nodet snapshot-fields -- topology is fixed before Start; every fork shares the registration set
	ids []NodeID
	//stabl:nodet snapshot-fields -- derived from ids; re-established lazily by StartAll
	idsSorted bool
	rules     map[int]partitionRule
	ruleSeq   int
	// blockedPairs counts, per unordered node pair, how many active rules
	// separate the pair; maintained by Partition/Heal so the per-message
	// Blocked check is a single map probe (skipped entirely when empty).
	blockedPairs map[pairKey]int
	conns        *connManager
	// statsh shards the counters by executing queue so concurrent
	// partitions never write the same word; Stats() sums the shards.
	// Sequential mode holds exactly one shard.
	statsh []Stats
	//stabl:nodet snapshot-fields -- identity-preserved attachment set before Start, not simulated state
	tracer Tracer
	// extraDelay models netem-style per-interface latency injection:
	// every message entering or leaving the node is delayed. Dense by
	// NodeID; extraDelayed counts non-zero entries so the common case
	// costs one comparison.
	extraDelay   []time.Duration
	extraDelayed int
	// lossRate / jitterBound model netem-style per-interface degradation:
	// a message crossing a lossy interface is dropped with the interface's
	// probability (both endpoints combine independently), and a jittery
	// interface adds a uniform extra delay in [0, bound]. Dense by NodeID
	// with non-zero counters, mirroring extraDelay: when no interface is
	// degraded the send fast path pays exactly one integer comparison per
	// feature and draws nothing from the degradation RNG streams, so
	// loss=0/jitter=0 runs are bit-for-bit identical to a kernel without
	// the feature.
	lossRate     []float64
	lossyIfaces  int
	jitterBound  []time.Duration
	jitterIfaces int
	// lookahead, when positive, overrides the latency model's global lower
	// bound (see SetLookahead). It must never exceed the true minimum delay
	// of any pair that can actually exchange a message.
	//stabl:nodet snapshot-fields -- configuration set before Start; core.Fork disables parallel mode anyway
	lookahead time.Duration
	// pools[qi] pools delivery events per queue so a message in steady
	// state schedules no new closure, and so concurrent partitions never
	// share a free list. Sequential mode uses pools[0] only.
	pools []dpool
	// outbox[qi] buffers cross-partition sends made by queue qi inside a
	// lookahead window; a barrier hook injects them (keys were already
	// assigned at send time, so injection order is irrelevant).
	//stabl:nodet snapshot-fields -- parallel-mode only; drained at every barrier and cleared by DisableParallel before any fork
	outbox [][]outMsg
	// virt lazily holds degradation streams for virtual sender ids (see
	// Context.SendAs): a flow node submitting on behalf of the classic
	// client it aggregates draws latency/loss/jitter from the member's own
	// streams — the same names the per-client layout registers — so the
	// aggregated trajectory is byte-identical to the individual one.
	// Created on first use: a million modeled clients that never tick cost
	// nothing. virtMu guards the map (flow nodes in different partitions may
	// fault streams in concurrently); each virtual id is consumed by exactly
	// one flow node, so the streams themselves stay single-threaded.
	virt   map[NodeID]*virtStreams
	virtMu sync.RWMutex
}

// virtStreams are the sender-side degradation streams of a virtual node id.
type virtStreams struct {
	lat, loss, jit *rand.Rand
}

// dpool is one queue's delivery pool: a free list plus the registry of every
// delivery ever allocated (creation order), which Snapshot/Restore rewinds.
type dpool struct {
	free *delivery
	all  []*delivery
}

// outMsg is one buffered cross-partition send. The ordering key (at, sender
// lane, seq) was fixed when the send happened; the barrier only moves the
// event into the receiver's queue.
type outMsg struct {
	at      time.Duration
	seq     uint64
	from    NodeID
	dst     *endpoint
	payload any
	inc     uint64
}

type endpoint struct {
	id          NodeID
	handler     Handler
	up          bool
	connPeer    bool  // participates in the managed connection layer
	qi          int32 // owning partition queue (0 = root; see EnableParallel)
	incarnation uint64
	ctx         *Context
	// Sender-owned degradation streams: every delay, loss and jitter draw
	// for a message is made by its sender, from streams only the sender's
	// execution context touches. Derived per node so draw order — and with
	// it the whole trajectory — is identical for any worker count.
	lat  *rand.Rand
	loss *rand.Rand
	jit  *rand.Rand
}

// partitionRule remembers the cross pairs it contributed to blockedPairs so
// Heal can retract exactly those counts.
type partitionRule struct {
	pairs []pairKey
}

// New creates a network on the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Network {
	lat := cfg.Latency
	if lat == nil {
		lat = UniformLatency{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond}
	}
	return &Network{
		sched:        sched,
		latency:      lat,
		rules:        make(map[int]partitionRule),
		blockedPairs: make(map[pairKey]int),
		statsh:       make([]Stats, 1),
		pools:        make([]dpool, 1),
	}
}

// Scheduler returns the underlying scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Stats returns a snapshot of network counters, summed over all shards.
func (n *Network) Stats() Stats {
	s := n.statsh[0]
	for _, sh := range n.statsh[1:] {
		s.add(sh)
	}
	return s
}

// Lookahead returns the static lower bound of the configured latency model,
// or 0 when the model cannot state one. A positive lookahead is what makes
// the conservative parallel kernel applicable: injected extra delay and
// jitter only ever add to a sampled delay, and loss only drops messages, so
// the bound survives every degradation primitive. A SetLookahead override,
// when present, takes precedence.
func (n *Network) Lookahead() time.Duration {
	if n.lookahead > 0 {
		return n.lookahead
	}
	if lb, ok := n.latency.(DelayLowerBound); ok {
		if d := lb.LowerBound(); d > 0 {
			return d
		}
	}
	return 0
}

// SetLookahead overrides the horizon Lookahead reports. Callers with
// topology knowledge compute it as the minimum of the latency model's
// per-pair bounds (PairDelayLowerBound) over exactly the pairs that can
// exchange messages — a superset assumption is safe, a subset is not. Zero
// restores the model-wide bound. Must be set before EnableParallel's horizon
// is first consumed; the lookahead is part of the simulation contract, so it
// never changes mid-run.
func (n *Network) SetLookahead(d time.Duration) { n.lookahead = d }

// PairLowerBound returns the latency model's static lower bound for one
// directed link, when the model can state per-pair bounds.
func (n *Network) PairLowerBound(from, to NodeID) (time.Duration, bool) {
	if pb, ok := n.latency.(PairDelayLowerBound); ok {
		return pb.LowerBoundBetween(from, to), true
	}
	return 0, false
}

// EnableParallel adopts a partition plan (see internal/parsim): queueOf maps
// every node id to the sim queue that owns it. Must be called after all
// AddNode calls and together with the scheduler's EnableParallel, before
// StartAll. Registers the cross-partition outbox flush as a barrier hook.
func (n *Network) EnableParallel(queueOf []int32, workers int) {
	if len(n.pools) > 1 {
		panic("simnet: EnableParallel called twice")
	}
	for _, ep := range n.nodes {
		if ep == nil {
			continue
		}
		if int(ep.id) < len(queueOf) {
			ep.qi = queueOf[ep.id]
		}
	}
	for i := 0; i < workers; i++ {
		n.statsh = append(n.statsh, Stats{})
		n.pools = append(n.pools, dpool{})
	}
	n.outbox = make([][]outMsg, workers+1)
	n.sched.OnBarrier(n.flushOutboxes)
}

// DisableParallel reverts to the single-queue layout, the sequential
// fallback the forking API takes before snapshotting. Outboxes must be
// empty (they always are outside a window).
func (n *Network) DisableParallel() {
	if len(n.pools) == 1 {
		return
	}
	for _, box := range n.outbox {
		if len(box) != 0 {
			panic("simnet: DisableParallel with buffered cross-partition sends")
		}
	}
	for i := 1; i < len(n.statsh); i++ {
		n.statsh[0].add(n.statsh[i])
	}
	n.statsh = n.statsh[:1]
	// Deliveries allocated by partition pools stay owned by them; merging
	// free lists would break the per-pool registries. Pre-start (the only
	// place the fallback runs) no partition pool has allocated anything.
	for _, p := range n.pools[1:] {
		if len(p.all) != 0 {
			panic("simnet: DisableParallel after partition deliveries were pooled")
		}
	}
	n.pools = n.pools[:1]
	n.outbox = nil
	for _, ep := range n.nodes {
		if ep != nil {
			ep.qi = 0
		}
	}
}

// barrierOnly guards the mutators that touch state every partition reads
// (liveness, partitions, degradation): they may only run from the root
// execution context — observers, scenario scripts, setup — never from a
// partition event inside a window.
func (n *Network) barrierOnly(op string) {
	if n.sched.InWindow() {
		panic("simnet: " + op + " from a partition event")
	}
}

// AddNode registers a handler under id. Nodes start in the down state until
// StartAll or StartNode is called. Adding a duplicate id is a programming
// error and panics, as is a negative id (ids key dense tables).
func (n *Network) AddNode(id NodeID, h Handler) {
	if id < 0 {
		panic(fmt.Sprintf("simnet: negative node id %v", id))
	}
	if int(id) >= len(n.nodes) {
		grown := make([]*endpoint, id+1)
		copy(grown, n.nodes)
		n.nodes = grown
		delays := make([]time.Duration, id+1)
		copy(delays, n.extraDelay)
		n.extraDelay = delays
		losses := make([]float64, id+1)
		copy(losses, n.lossRate)
		n.lossRate = losses
		jitters := make([]time.Duration, id+1)
		copy(jitters, n.jitterBound)
		n.jitterBound = jitters
	}
	if n.nodes[id] != nil {
		panic(fmt.Sprintf("simnet: duplicate node %v", id))
	}
	ep := &endpoint{id: id, handler: h}
	ep.ctx = &Context{net: n, ep: ep}
	// The degradation streams are tiny (SplitMix64 state), so deriving all
	// three eagerly per node is cheaper than branching on every send.
	ep.lat = n.sched.RNG(fmt.Sprintf("simnet.latency/n%d", int(id)))
	ep.loss = n.sched.RNG(fmt.Sprintf("simnet.loss/n%d", int(id)))
	ep.jit = n.sched.RNG(fmt.Sprintf("simnet.jitter/n%d", int(id)))
	n.nodes[id] = ep
	n.ids = append(n.ids, id)
	n.idsSorted = len(n.ids) == 1 || (n.idsSorted && id > n.ids[len(n.ids)-2])
}

// Node reports whether id is registered.
func (n *Network) Node(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes) && n.nodes[id] != nil
}

// StartAll boots every registered node that is not already up.
func (n *Network) StartAll() {
	for _, id := range n.sortedIDs() {
		if !n.nodes[id].up {
			n.StartNode(id)
		}
	}
}

// StartNode boots a single node, invoking its handler's Start.
func (n *Network) StartNode(id NodeID) {
	n.barrierOnly("StartNode")
	ep := n.mustNode(id)
	if ep.up {
		return
	}
	restart := ep.incarnation > 0
	ep.up = true
	ep.incarnation++
	detail := "boot"
	if restart {
		detail = "reboot"
	}
	n.trace(TraceEvent{Kind: TraceNodeStart, Node: id, Peer: id, Detail: detail})
	if restart && n.conns != nil {
		n.conns.nodeRestarted(id)
	}
	ep.handler.Start(ep.ctx)
}

// Halt crashes a node: its handler is stopped, its pending timers are fenced
// off, and in-flight messages addressed to it are dropped on arrival.
func (n *Network) Halt(id NodeID) {
	n.barrierOnly("Halt")
	ep := n.mustNode(id)
	if !ep.up {
		return
	}
	ep.up = false
	ep.incarnation++
	n.trace(TraceEvent{Kind: TraceNodeHalt, Node: id, Peer: id})
	ep.handler.Stop()
}

// Restart boots a previously halted node with the same identity. The
// handler's persistent state survives; Start is called again.
func (n *Network) Restart(id NodeID) { n.StartNode(id) }

// IsUp reports whether the node is currently running.
func (n *Network) IsUp(id NodeID) bool { return n.mustNode(id).up }

// Partition installs a bidirectional drop rule between groups a and b,
// returning a rule id for Heal. Rules are evaluated at send time, matching
// STABL's netfilter-based injection: messages sent while the rule is active
// are lost even if the rule is healed before they would have arrived.
func (n *Network) Partition(a, b []NodeID) int {
	n.barrierOnly("Partition")
	rule := partitionRule{pairs: make([]pairKey, 0, len(a)*len(b))}
	for _, x := range a {
		for _, y := range b {
			k := makePair(x, y)
			rule.pairs = append(rule.pairs, k)
			n.blockedPairs[k]++
		}
	}
	n.ruleSeq++
	n.rules[n.ruleSeq] = rule
	if len(a) > 0 {
		n.trace(TraceEvent{Kind: TracePartition, Node: a[0], Peer: a[0],
			Detail: fmt.Sprintf("rule %d: %d vs %d nodes", n.ruleSeq, len(a), len(b))})
	}
	return n.ruleSeq
}

// Heal removes a partition rule installed by Partition.
func (n *Network) Heal(rule int) {
	n.barrierOnly("Heal")
	r, ok := n.rules[rule]
	if !ok {
		return
	}
	n.trace(TraceEvent{Kind: TraceHeal, Detail: fmt.Sprintf("rule %d", rule)})
	for _, k := range r.pairs {
		if c := n.blockedPairs[k]; c <= 1 {
			delete(n.blockedPairs, k)
		} else {
			n.blockedPairs[k] = c - 1
		}
	}
	delete(n.rules, rule)
}

// SetExtraDelay injects (or clears, with 0) additional latency on every
// message to or from a node, modelling tc-netem delay rules on the node's
// interface.
func (n *Network) SetExtraDelay(id NodeID, d time.Duration) {
	n.barrierOnly("SetExtraDelay")
	n.mustNode(id)
	n.trace(TraceEvent{Kind: TraceDelay, Node: id, Peer: id, Detail: d.String()})
	if d < 0 {
		d = 0
	}
	old := n.extraDelay[id]
	switch {
	case old == 0 && d > 0:
		n.extraDelayed++
	case old > 0 && d == 0:
		n.extraDelayed--
	}
	n.extraDelay[id] = d
}

// ExtraDelay returns the injected latency on a node's interface.
func (n *Network) ExtraDelay(id NodeID) time.Duration {
	if int(id) >= len(n.extraDelay) {
		return 0
	}
	return n.extraDelay[id]
}

// SetLoss injects (or clears, with 0) probabilistic packet loss on a node's
// interface, modelling a tc-netem loss rule: every message entering or
// leaving the node is dropped independently with probability p. Values are
// clamped into [0, 1]. Losses are drawn from dedicated RNG streams, so a
// network with every rate at zero replays identically to one that never
// touched the primitive.
func (n *Network) SetLoss(id NodeID, p float64) {
	n.barrierOnly("SetLoss")
	n.mustNode(id)
	switch {
	case p < 0:
		p = 0
	case p > 1:
		p = 1
	}
	n.trace(TraceEvent{Kind: TraceLoss, Node: id, Peer: id, Detail: fmt.Sprintf("p=%g", p)})
	old := n.lossRate[id]
	switch {
	case old == 0 && p > 0:
		n.lossyIfaces++
	case old > 0 && p == 0:
		n.lossyIfaces--
	}
	n.lossRate[id] = p
}

// Loss returns the injected loss probability on a node's interface.
func (n *Network) Loss(id NodeID) float64 {
	if int(id) >= len(n.lossRate) {
		return 0
	}
	return n.lossRate[id]
}

// SetJitter injects (or clears, with 0) bounded latency jitter on a node's
// interface: every message entering or leaving the node is delayed by an
// extra uniform draw from [0, bound], modelling a tc-netem delay-variation
// rule. Jitter draws come from dedicated RNG streams, so bound-zero
// networks replay identically to pre-jitter kernels.
func (n *Network) SetJitter(id NodeID, bound time.Duration) {
	n.barrierOnly("SetJitter")
	n.mustNode(id)
	if bound < 0 {
		bound = 0
	}
	n.trace(TraceEvent{Kind: TraceJitter, Node: id, Peer: id, Detail: bound.String()})
	old := n.jitterBound[id]
	switch {
	case old == 0 && bound > 0:
		n.jitterIfaces++
	case old > 0 && bound == 0:
		n.jitterIfaces--
	}
	n.jitterBound[id] = bound
}

// Jitter returns the injected jitter bound on a node's interface.
func (n *Network) Jitter(id NodeID) time.Duration {
	if int(id) >= len(n.jitterBound) {
		return 0
	}
	return n.jitterBound[id]
}

// lost decides whether a message on the (src, to) link is dropped by
// injected loss, drawing from the given sender-owned stream (the physical
// endpoint's, or a virtual member's for SendAs — the rates stay indexed by
// the physical interfaces either way). Callers must gate on n.lossyIfaces so
// the undegraded path never reaches the RNG. The two interface rates combine
// independently, like two netem qdiscs in series.
func (n *Network) lost(src *endpoint, to NodeID, loss *rand.Rand) bool {
	pf, pt := n.lossRate[src.id], n.lossRate[to]
	if pf == 0 && pt == 0 {
		return false
	}
	p := pf + pt - pf*pt
	return loss.Float64() < p
}

// Blocked reports whether a (from, to) pair is currently separated by a
// partition rule. The check is O(1): Partition/Heal maintain the pair
// counts.
func (n *Network) Blocked(from, to NodeID) bool {
	if len(n.blockedPairs) == 0 {
		return false
	}
	return n.blockedPairs[makePair(from, to)] > 0
}

// delivery is a pooled in-flight message event. Its run closure is bound
// once when the delivery is first allocated; afterwards sending a message
// reuses a free delivery and schedules the existing closure, so the steady
// state send path allocates nothing. Each delivery belongs to the pool of
// the queue it executes on.
type delivery struct {
	n       *Network
	dst     *endpoint
	from    NodeID
	payload any
	inc     uint64
	control bool  // connection-layer traffic (bypasses the app handler)
	qi      int32 // owning pool == executing queue
	run     func()
	next    *delivery // pool free list
}

func (n *Network) newDelivery(qi int32) *delivery {
	p := &n.pools[qi]
	d := p.free
	if d == nil {
		d = &delivery{n: n, qi: qi}
		d.run = d.fire
		p.all = append(p.all, d)
	} else {
		p.free = d.next
		d.next = nil
	}
	return d
}

// fire executes the arrival. The delivery returns to the pool before the
// handler runs: all state is copied to locals first, so reentrant sends from
// inside Deliver can safely reuse it.
func (d *delivery) fire() {
	n, dst, from, payload, inc, control, qi := d.n, d.dst, d.from, d.payload, d.inc, d.control, d.qi
	d.dst = nil
	d.payload = nil
	p := &n.pools[qi]
	d.next = p.free
	p.free = d
	sh := &n.statsh[qi]
	if !dst.up || dst.incarnation != inc {
		if !control {
			sh.DroppedInFlight++
		}
		return
	}
	if control {
		// Control traffic always executes on the root queue (see
		// sendControl), so the root clock is the execution clock.
		n.conns.observeTraffic(from, dst.id, n.sched.Now())
		n.conns.handleControl(from, dst.id, payload)
		return
	}
	sh.Delivered++
	if n.conns != nil {
		n.conns.observeTraffic(from, dst.id, n.sched.LaneNow(int32(dst.id)))
	}
	dst.handler.Deliver(from, payload)
}

// virtual returns the degradation streams of a virtual sender id, creating
// them on first use. The stream names match the ones AddNode registers for a
// physical node of the same id, and stream content depends only on
// (scheduler seed, name), so a flow node replaying a classic client's sends
// through these streams draws the exact values the client's own endpoint
// streams would have produced.
func (n *Network) virtual(id NodeID) *virtStreams {
	n.virtMu.RLock()
	vs := n.virt[id]
	n.virtMu.RUnlock()
	if vs != nil {
		return vs
	}
	n.virtMu.Lock()
	defer n.virtMu.Unlock()
	if vs = n.virt[id]; vs != nil {
		return vs
	}
	vs = &virtStreams{
		lat:  n.sched.RNG(fmt.Sprintf("simnet.latency/n%d", int(id))),
		loss: n.sched.RNG(fmt.Sprintf("simnet.loss/n%d", int(id))),
		jit:  n.sched.RNG(fmt.Sprintf("simnet.jitter/n%d", int(id))),
	}
	if n.virt == nil {
		n.virt = make(map[NodeID]*virtStreams)
	}
	n.virt[id] = vs
	return vs
}

// send is the single application message path; all drops are accounted in
// stats. The delay is drawn from the sender's streams (or, for SendAs, the
// virtual sender's) and the ordering key from the physical sender's lane
// counter at send time, so the resulting delivery is identical no matter
// which kernel — or which partition interleaving — executes it.
// Cross-partition sends inside a window go to the outbox.
func (n *Network) send(from, to NodeID, payload any, vs *virtStreams) {
	src := n.mustNode(from)
	dst := n.mustNode(to)
	sh := &n.statsh[src.qi]
	sh.Sent++
	if !src.up {
		sh.DroppedSenderDown++
		return
	}
	if n.Blocked(from, to) {
		sh.DroppedPartition++
		return
	}
	if n.conns != nil && !n.conns.allowsEp(src, dst) {
		sh.DroppedConnDown++
		return
	}
	if !dst.up {
		sh.DroppedNodeDown++
		return
	}
	lat, loss, jit := src.lat, src.loss, src.jit
	if vs != nil {
		lat, loss, jit = vs.lat, vs.loss, vs.jit
	}
	if n.lossyIfaces > 0 && n.lost(src, to, loss) {
		sh.DroppedLoss++
		return
	}
	at := n.sched.ContextNow(int32(from)) + n.delay(src, to, lat, jit)
	seq := n.sched.TakeLaneSeq(int32(from))
	if dst.qi != src.qi && n.sched.InWindow() {
		n.outbox[src.qi] = append(n.outbox[src.qi], outMsg{
			at: at, seq: seq, from: from, dst: dst, payload: payload, inc: dst.incarnation,
		})
		return
	}
	d := n.newDelivery(dst.qi)
	d.dst = dst
	d.from = from
	d.payload = payload
	d.inc = dst.incarnation
	d.control = false
	n.sched.ScheduleKeyed(int32(to), int32(from), seq, at, d.run)
}

// flushOutboxes injects every buffered cross-partition send into its
// receiver's queue. Runs as a barrier hook with all partitions quiesced;
// because keys were assigned at send time, the per-queue append order the
// boxes happen to hold carries no meaning.
func (n *Network) flushOutboxes() {
	for qi := range n.outbox {
		box := n.outbox[qi]
		if len(box) == 0 {
			continue
		}
		for i := range box {
			m := &box[i]
			d := n.newDelivery(m.dst.qi)
			d.dst = m.dst
			d.from = m.from
			d.payload = m.payload
			d.inc = m.inc
			d.control = false
			n.sched.ScheduleKeyed(int32(m.dst.id), int32(m.from), m.seq, m.at, d.run)
			m.dst = nil
			m.payload = nil
		}
		n.outbox[qi] = box[:0]
	}
}

// delay samples the one-way latency for a message from the given
// sender-owned streams, including any injected interface delays and jitter
// (both indexed by the physical interfaces).
func (n *Network) delay(src *endpoint, to NodeID, lat, jit *rand.Rand) time.Duration {
	d := n.latency.Sample(src.id, to, lat)
	if n.extraDelayed > 0 {
		d += n.extraDelay[src.id] + n.extraDelay[to]
	}
	if n.jitterIfaces > 0 {
		if bound := n.jitterBound[src.id] + n.jitterBound[to]; bound > 0 {
			d += time.Duration(jit.Int63n(int64(bound) + 1))
		}
	}
	return d
}

func (n *Network) mustNode(id NodeID) *endpoint {
	if id >= 0 && int(id) < len(n.nodes) {
		if ep := n.nodes[id]; ep != nil {
			return ep
		}
	}
	panic(fmt.Sprintf("simnet: unknown node %v", id))
}

// sortedIDs returns all registered ids in ascending order. The sorted slice
// is cached and only re-sorted after an out-of-order AddNode.
func (n *Network) sortedIDs() []NodeID {
	if !n.idsSorted {
		sort.Slice(n.ids, func(i, j int) bool { return n.ids[i] < n.ids[j] })
		n.idsSorted = true
	}
	return n.ids
}

func toSet(ids []NodeID) map[NodeID]bool {
	s := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Context is the capability surface handed to a node's handler. All methods
// are only valid while the node is up; timers armed through the context are
// automatically fenced when the node crashes. Context methods are lane-
// aware: time, timers and tickers all live on the node's own queue, so a
// handler written against Context is parallel-safe by construction.
type Context struct {
	net *Network
	ep  *endpoint
	// rngSeeds memoizes the derived seed per stream name so repeated
	// derivations (every restart) skip the name formatting and hashing.
	rngSeeds map[string]int64
}

// ID returns the node's identity.
func (c *Context) ID() NodeID { return c.ep.id }

// Now returns the current virtual time of the node's execution context.
func (c *Context) Now() time.Duration {
	return c.net.sched.ContextNow(int32(c.ep.id))
}

// Send transmits payload to the named peer, subject to partitions,
// connection state and peer liveness.
func (c *Context) Send(to NodeID, payload any) {
	if !c.ep.up {
		return
	}
	c.net.send(c.ep.id, to, payload, nil)
}

// SendAs transmits payload to the named peer on behalf of a virtual sender
// id: every physical property of the message — ordering lane and sequence,
// stats shard, liveness and partition checks, the from field the receiver
// sees — comes from the real node, but the latency/loss/jitter draws come
// from the virtual id's streams. Flow workloads use it so one aggregated
// node replays the exact per-member stream consumption of the classic
// per-client layout (see client.FlowConfig.VirtualBase).
func (c *Context) SendAs(virtual, to NodeID, payload any) {
	if !c.ep.up {
		return
	}
	c.net.send(c.ep.id, to, payload, c.net.virtual(virtual))
}

// Broadcast sends payload to every id in peers except the sender itself.
func (c *Context) Broadcast(peers []NodeID, payload any) {
	for _, id := range peers {
		if id == c.ep.id {
			continue
		}
		c.Send(id, payload)
	}
}

// After schedules fn on the node's behalf, on the node's own lane. The
// callback is suppressed if the node crashes (or restarts) before it fires.
func (c *Context) After(d time.Duration, fn func()) sim.Timer {
	inc := c.ep.incarnation
	return c.net.sched.AfterLane(int32(c.ep.id), d, func() {
		if c.ep.up && c.ep.incarnation == inc {
			fn()
		}
	})
}

// Every schedules fn at a fixed interval on the node's own lane until the
// returned ticker is stopped or the node crashes.
func (c *Context) Every(interval time.Duration, fn func()) *sim.Ticker {
	inc := c.ep.incarnation
	return sim.NewLaneTicker(c.net.sched, int32(c.ep.id), interval, func() {
		if c.ep.up && c.ep.incarnation == inc {
			fn()
		}
	})
}

// RNG derives a deterministic random stream namespaced to this node. Like
// sim.Scheduler.RNG, every call returns a fresh stream positioned at its
// start; the derivation is memoized per name.
func (c *Context) RNG(name string) *rand.Rand {
	d, ok := c.rngSeeds[name]
	if !ok {
		d = c.net.sched.RNGSeed(fmt.Sprintf("node/%d/%s", int(c.ep.id), name))
		if c.rngSeeds == nil {
			c.rngSeeds = make(map[string]int64)
		}
		c.rngSeeds[name] = d
	}
	// Issue through the scheduler so the stream registers for
	// Snapshot/Restore.
	return c.net.sched.RNGFromSeed(d)
}

// Connected reports whether the connection layer currently allows traffic
// from this node to peer (always true when connections are unmanaged).
func (c *Context) Connected(peer NodeID) bool {
	if c.net.conns == nil {
		return true
	}
	return c.net.conns.allows(c.ep.id, peer)
}
