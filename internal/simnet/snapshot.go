package simnet

import (
	"sort"
	"time"

	"stabl/internal/sim"
	"stabl/internal/snapshot"
)

// epState is one endpoint's mutable state. The endpoint object (and its
// Context) is identity-preserved: queued delivery and timer closures hold
// the pointer, so Restore writes through it.
type epState struct {
	up          bool
	connPeer    bool
	incarnation uint64
}

// deliveryState rewinds one pooled delivery. dst and next are pointers into
// the identity-preserved endpoint table and delivery registry.
type deliveryState struct {
	dst     *endpoint
	from    NodeID
	payload any
	inc     uint64
	control bool
	next    *delivery
}

// pairConnState is one managed connection pair's state; the pairState object
// is identity-preserved (retry/ack closures capture it).
type pairConnState struct {
	established bool
	lastRecvA   time.Duration
	lastRecvB   time.Duration
	attempt     int
	epoch       uint64
	retryTimer  sim.Timer
	ackTimer    sim.Timer
}

type netState struct {
	stats        Stats
	rules        map[int]partitionRule
	ruleSeq      int
	blockedPairs map[pairKey]int
	eps          []epState
	extraDelay   []time.Duration
	extraDelayed int
	lossRate     []float64
	lossyIfaces  int
	jitterBound  []time.Duration
	jitterIfaces int
	deliveries   []deliveryState
	freeHead     *delivery
	// virtIDs records which virtual sender streams existed at the
	// checkpoint (sorted). Streams created after it are truncated out of
	// the scheduler's registry by its Restore, so the network must drop its
	// map entries for them too — re-execution re-derives them fresh.
	virtIDs []NodeID
	// Connection layer (nil when unmanaged).
	pairs   []pairConnState // in cm.order order
	downs   uint64
	reconns uint64
}

// Snapshot captures the network: endpoint liveness and incarnations,
// partition rules and blocked-pair counts, per-interface degradation tables,
// every pooled delivery (in-flight or free) and the connection layer's pair
// states. The node table, contexts, handlers and registries are
// identity-preserved; the scheduler owns the RNG streams (simnet's per-node
// latency, loss and jitter streams register there). Checkpoints capture the
// sequential layout only; the forking API falls back before snapshotting.
func (n *Network) Snapshot() snapshot.State {
	if len(n.pools) > 1 {
		panic("simnet: Snapshot requires the sequential network (see DisableParallel)")
	}
	st := &netState{
		stats:        n.statsh[0],
		rules:        make(map[int]partitionRule, len(n.rules)),
		ruleSeq:      n.ruleSeq,
		blockedPairs: make(map[pairKey]int, len(n.blockedPairs)),
		eps:          make([]epState, len(n.nodes)),
		extraDelay:   append([]time.Duration(nil), n.extraDelay...),
		extraDelayed: n.extraDelayed,
		lossRate:     append([]float64(nil), n.lossRate...),
		lossyIfaces:  n.lossyIfaces,
		jitterBound:  append([]time.Duration(nil), n.jitterBound...),
		jitterIfaces: n.jitterIfaces,
		deliveries:   make([]deliveryState, len(n.pools[0].all)),
		freeHead:     n.pools[0].free,
	}
	for id, r := range n.rules {
		st.rules[id] = r // rule pair lists are immutable after Partition
	}
	for k, c := range n.blockedPairs {
		st.blockedPairs[k] = c
	}
	for i, ep := range n.nodes {
		if ep != nil {
			st.eps[i] = epState{up: ep.up, connPeer: ep.connPeer, incarnation: ep.incarnation}
		}
	}
	for i, d := range n.pools[0].all {
		st.deliveries[i] = deliveryState{
			dst: d.dst, from: d.from, payload: d.payload,
			inc: d.inc, control: d.control, next: d.next,
		}
	}
	for id := range n.virt {
		st.virtIDs = append(st.virtIDs, id)
	}
	sort.Slice(st.virtIDs, func(i, j int) bool { return st.virtIDs[i] < st.virtIDs[j] })
	if cm := n.conns; cm != nil {
		st.downs = cm.downs
		st.reconns = cm.reconns
		st.pairs = make([]pairConnState, len(cm.order))
		for i, k := range cm.order {
			p := cm.pairs[k]
			st.pairs[i] = pairConnState{
				established: p.established,
				lastRecvA:   p.lastRecvA, lastRecvB: p.lastRecvB,
				attempt: p.attempt, epoch: p.epoch,
				retryTimer: p.retryTimer, ackTimer: p.ackTimer,
			}
		}
	}
	return st
}

// Restore rewinds the network to a state captured by Snapshot. Deliveries
// allocated since the checkpoint drop out of the registry: only closures
// restored with the scheduler heap can reference them, and those predate the
// checkpoint too.
func (n *Network) Restore(state snapshot.State) {
	st, ok := state.(*netState)
	if !ok {
		panic("simnet: Network.Restore on foreign state")
	}
	if len(n.pools) > 1 {
		panic("simnet: Restore requires the sequential network")
	}
	n.statsh[0] = st.stats
	n.ruleSeq = st.ruleSeq
	clear(n.rules)
	for id, r := range st.rules {
		n.rules[id] = r
	}
	clear(n.blockedPairs)
	for k, c := range st.blockedPairs {
		n.blockedPairs[k] = c
	}
	if len(st.eps) != len(n.nodes) {
		panic("simnet: Network.Restore state from a different deployment")
	}
	for i, ep := range n.nodes {
		if ep != nil {
			ep.up = st.eps[i].up
			ep.connPeer = st.eps[i].connPeer
			ep.incarnation = st.eps[i].incarnation
		}
	}
	n.extraDelay = append(n.extraDelay[:0], st.extraDelay...)
	n.extraDelayed = st.extraDelayed
	n.lossRate = append(n.lossRate[:0], st.lossRate...)
	n.lossyIfaces = st.lossyIfaces
	n.jitterBound = append(n.jitterBound[:0], st.jitterBound...)
	n.jitterIfaces = st.jitterIfaces
	p := &n.pools[0]
	if len(st.deliveries) > len(p.all) {
		panic("simnet: Network.Restore state from a different network history")
	}
	p.all = p.all[:len(st.deliveries)]
	for i, d := range p.all {
		ds := st.deliveries[i]
		d.dst = ds.dst
		d.from = ds.from
		d.payload = ds.payload
		d.inc = ds.inc
		d.control = ds.control
		d.next = ds.next
	}
	p.free = st.freeHead
	if len(n.virt) > len(st.virtIDs) {
		// Virtual streams created since the checkpoint: the scheduler's
		// Restore already truncated their sources out of its registry, so
		// the cached rand.Rand objects are orphaned. Drop them; replayed
		// sends re-derive identical fresh streams on first use.
		keep := make(map[NodeID]bool, len(st.virtIDs))
		for _, id := range st.virtIDs {
			keep[id] = true
		}
		for id := range n.virt {
			if !keep[id] {
				delete(n.virt, id)
			}
		}
	}
	if cm := n.conns; cm != nil {
		cm.downs = st.downs
		cm.reconns = st.reconns
		for i, k := range cm.order {
			p := cm.pairs[k]
			p.established = st.pairs[i].established
			p.lastRecvA = st.pairs[i].lastRecvA
			p.lastRecvB = st.pairs[i].lastRecvB
			p.attempt = st.pairs[i].attempt
			p.epoch = st.pairs[i].epoch
			p.retryTimer = st.pairs[i].retryTimer
			p.ackTimer = st.pairs[i].ackTimer
		}
	}
}
