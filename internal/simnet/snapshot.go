package simnet

import (
	"time"

	"stabl/internal/sim"
	"stabl/internal/snapshot"
)

// epState is one endpoint's mutable state. The endpoint object (and its
// Context) is identity-preserved: queued delivery and timer closures hold
// the pointer, so Restore writes through it.
type epState struct {
	up          bool
	connPeer    bool
	incarnation uint64
}

// deliveryState rewinds one pooled delivery. dst and next are pointers into
// the identity-preserved endpoint table and delivery registry.
type deliveryState struct {
	dst     *endpoint
	from    NodeID
	payload any
	inc     uint64
	control bool
	next    *delivery
}

// pairConnState is one managed connection pair's state; the pairState object
// is identity-preserved (retry/ack closures capture it).
type pairConnState struct {
	established bool
	lastRecvA   time.Duration
	lastRecvB   time.Duration
	attempt     int
	epoch       uint64
	retryTimer  sim.Timer
	ackTimer    sim.Timer
}

type netState struct {
	stats        Stats
	rules        map[int]partitionRule
	ruleSeq      int
	blockedPairs map[pairKey]int
	eps          []epState
	extraDelay   []time.Duration
	extraDelayed int
	lossRate     []float64
	lossyIfaces  int
	jitterBound  []time.Duration
	jitterIfaces int
	deliveries   []deliveryState
	freeHead     *delivery
	// Connection layer (nil when unmanaged).
	pairs   []pairConnState // in cm.order order
	downs   uint64
	reconns uint64
}

// Snapshot captures the network: endpoint liveness and incarnations,
// partition rules and blocked-pair counts, per-interface degradation tables,
// every pooled delivery (in-flight or free) and the connection layer's pair
// states. The node table, contexts, handlers and registries are
// identity-preserved; the scheduler owns the RNG streams (simnet's latency,
// loss and jitter streams register there).
func (n *Network) Snapshot() snapshot.State {
	st := &netState{
		stats:        n.stats,
		rules:        make(map[int]partitionRule, len(n.rules)),
		ruleSeq:      n.ruleSeq,
		blockedPairs: make(map[pairKey]int, len(n.blockedPairs)),
		eps:          make([]epState, len(n.nodes)),
		extraDelay:   append([]time.Duration(nil), n.extraDelay...),
		extraDelayed: n.extraDelayed,
		lossRate:     append([]float64(nil), n.lossRate...),
		lossyIfaces:  n.lossyIfaces,
		jitterBound:  append([]time.Duration(nil), n.jitterBound...),
		jitterIfaces: n.jitterIfaces,
		deliveries:   make([]deliveryState, len(n.deliveries)),
		freeHead:     n.freeDeliveries,
	}
	for id, r := range n.rules {
		st.rules[id] = r // rule pair lists are immutable after Partition
	}
	for k, c := range n.blockedPairs {
		st.blockedPairs[k] = c
	}
	for i, ep := range n.nodes {
		if ep != nil {
			st.eps[i] = epState{up: ep.up, connPeer: ep.connPeer, incarnation: ep.incarnation}
		}
	}
	for i, d := range n.deliveries {
		st.deliveries[i] = deliveryState{
			dst: d.dst, from: d.from, payload: d.payload,
			inc: d.inc, control: d.control, next: d.next,
		}
	}
	if cm := n.conns; cm != nil {
		st.downs = cm.downs
		st.reconns = cm.reconns
		st.pairs = make([]pairConnState, len(cm.order))
		for i, k := range cm.order {
			p := cm.pairs[k]
			st.pairs[i] = pairConnState{
				established: p.established,
				lastRecvA:   p.lastRecvA, lastRecvB: p.lastRecvB,
				attempt: p.attempt, epoch: p.epoch,
				retryTimer: p.retryTimer, ackTimer: p.ackTimer,
			}
		}
	}
	return st
}

// Restore rewinds the network to a state captured by Snapshot. Deliveries
// allocated since the checkpoint drop out of the registry: only closures
// restored with the scheduler heap can reference them, and those predate the
// checkpoint too.
func (n *Network) Restore(state snapshot.State) {
	st, ok := state.(*netState)
	if !ok {
		panic("simnet: Network.Restore on foreign state")
	}
	n.stats = st.stats
	n.ruleSeq = st.ruleSeq
	clear(n.rules)
	for id, r := range st.rules {
		n.rules[id] = r
	}
	clear(n.blockedPairs)
	for k, c := range st.blockedPairs {
		n.blockedPairs[k] = c
	}
	if len(st.eps) != len(n.nodes) {
		panic("simnet: Network.Restore state from a different deployment")
	}
	for i, ep := range n.nodes {
		if ep != nil {
			ep.up = st.eps[i].up
			ep.connPeer = st.eps[i].connPeer
			ep.incarnation = st.eps[i].incarnation
		}
	}
	n.extraDelay = append(n.extraDelay[:0], st.extraDelay...)
	n.extraDelayed = st.extraDelayed
	n.lossRate = append(n.lossRate[:0], st.lossRate...)
	n.lossyIfaces = st.lossyIfaces
	n.jitterBound = append(n.jitterBound[:0], st.jitterBound...)
	n.jitterIfaces = st.jitterIfaces
	if len(st.deliveries) > len(n.deliveries) {
		panic("simnet: Network.Restore state from a different network history")
	}
	n.deliveries = n.deliveries[:len(st.deliveries)]
	for i, d := range n.deliveries {
		ds := st.deliveries[i]
		d.dst = ds.dst
		d.from = ds.from
		d.payload = ds.payload
		d.inc = ds.inc
		d.control = ds.control
		d.next = ds.next
	}
	n.freeDeliveries = st.freeHead
	if cm := n.conns; cm != nil {
		cm.downs = st.downs
		cm.reconns = st.reconns
		for i, k := range cm.order {
			p := cm.pairs[k]
			p.established = st.pairs[i].established
			p.lastRecvA = st.pairs[i].lastRecvA
			p.lastRecvB = st.pairs[i].lastRecvB
			p.attempt = st.pairs[i].attempt
			p.epoch = st.pairs[i].epoch
			p.retryTimer = st.pairs[i].retryTimer
			p.ackTimer = st.pairs[i].ackTimer
		}
	}
}
