package simnet

import (
	"math/rand"
	"testing"
	"time"

	"stabl/internal/sim"
)

// pairLatency is a synthetic per-pair latency model: the base delay plus one
// extra millisecond per unit of |from-to| distance, so every directed link
// has a distinct static lower bound.
type pairLatency struct {
	base time.Duration
}

func (p pairLatency) Sample(from, to NodeID, rng *rand.Rand) time.Duration {
	return p.LowerBoundBetween(from, to) + time.Duration(rng.Int63n(int64(time.Millisecond)))
}

func (p pairLatency) LowerBound() time.Duration { return p.base }

func (p pairLatency) LowerBoundBetween(from, to NodeID) time.Duration {
	d := int64(from - to)
	if d < 0 {
		d = -d
	}
	return p.base + time.Duration(d)*time.Millisecond
}

func TestPairLowerBound(t *testing.T) {
	sched := sim.New(1)
	net := New(sched, Config{Latency: pairLatency{base: 5 * time.Millisecond}})
	d, ok := net.PairLowerBound(2, 7)
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("PairLowerBound(2,7) = %v, %t; want 10ms, true", d, ok)
	}
	if d, ok := net.PairLowerBound(3, 3); !ok || d != 5*time.Millisecond {
		t.Fatalf("PairLowerBound(3,3) = %v, %t; want 5ms, true", d, ok)
	}

	// A model without per-pair bounds reports ok=false.
	flat := New(sim.New(1), Config{Latency: fixedNoPair(7 * time.Millisecond)})
	if _, ok := flat.PairLowerBound(0, 1); ok {
		t.Fatal("PairLowerBound reported a bound for a model without one")
	}
}

// fixedNoPair is a fixed-latency model that deliberately does NOT implement
// PairDelayLowerBound, to exercise the ok=false path.
type fixedNoPair time.Duration

func (f fixedNoPair) Sample(_, _ NodeID, _ *rand.Rand) time.Duration { return time.Duration(f) }

func TestSetLookaheadOverridesModelBound(t *testing.T) {
	sched := sim.New(1)
	net := New(sched, Config{Latency: pairLatency{base: 5 * time.Millisecond}})
	if got := net.Lookahead(); got != 5*time.Millisecond {
		t.Fatalf("model-wide Lookahead = %v, want 5ms", got)
	}
	// An overlay-confined deployment that only ever uses links at distance
	// >= 3 may raise the horizon to the minimum over its pairs.
	net.SetLookahead(8 * time.Millisecond)
	if got := net.Lookahead(); got != 8*time.Millisecond {
		t.Fatalf("overridden Lookahead = %v, want 8ms", got)
	}
	// Zero restores the model-wide bound.
	net.SetLookahead(0)
	if got := net.Lookahead(); got != 5*time.Millisecond {
		t.Fatalf("restored Lookahead = %v, want 5ms", got)
	}
}
