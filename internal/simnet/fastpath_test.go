package simnet

// Tests for the constant-time send-path structures: the blocked-pair set
// maintained by Partition/Heal, the Context.RNG seed memoization, and the
// pooled delivery events.

import (
	"testing"
	"time"

	"stabl/internal/sim"
)

// TestBlockedPairSetTracksRules checks overlapping rules count correctly:
// a pair stays blocked until every rule separating it is healed.
func TestBlockedPairSetTracksRules(t *testing.T) {
	_, net, _ := newTestNet(t, 4, FixedLatency(time.Millisecond))
	r1 := net.Partition([]NodeID{0, 1}, []NodeID{2, 3})
	r2 := net.Partition([]NodeID{0}, []NodeID{2})
	if !net.Blocked(0, 2) || !net.Blocked(2, 0) {
		t.Fatal("0<->2 should be blocked by both rules")
	}
	net.Heal(r1)
	if !net.Blocked(0, 2) {
		t.Fatal("0<->2 still separated by rule 2")
	}
	if net.Blocked(1, 3) {
		t.Fatal("1<->3 should be healed with rule 1")
	}
	net.Heal(r2)
	if net.Blocked(0, 2) {
		t.Fatal("all rules healed, pair still blocked")
	}
	if len(net.blockedPairs) != 0 {
		t.Fatalf("blockedPairs leaked %d entries after full heal", len(net.blockedPairs))
	}
}

// TestHealUnknownRuleIsNoop guards the Heal bookkeeping against double-heal.
func TestHealUnknownRuleIsNoop(t *testing.T) {
	_, net, _ := newTestNet(t, 2, FixedLatency(time.Millisecond))
	r := net.Partition([]NodeID{0}, []NodeID{1})
	net.Heal(r)
	net.Heal(r)
	net.Heal(999)
	if net.Blocked(0, 1) {
		t.Fatal("pair blocked after heal")
	}
}

// TestContextRNGMemoizationStable is the satellite requirement: memoizing
// the derived seed must not change stream contents, and every call —
// including after a restart, when handlers re-derive their streams — must
// return the same fresh stream a cold derivation would.
func TestContextRNGMemoizationStable(t *testing.T) {
	sched, net, hs := newTestNet(t, 2, FixedLatency(time.Millisecond))
	_ = sched
	net.StartAll()
	ctx := hs[0].ctx

	cold := sim.New(net.Scheduler().Seed()).RNG("node/0/vote")
	want := make([]int64, 16)
	for i := range want {
		want[i] = cold.Int63()
	}

	check := func(label string) {
		t.Helper()
		r := ctx.RNG("vote")
		for i, w := range want {
			if got := r.Int63(); got != w {
				t.Fatalf("%s: stream[%d] = %d, cold derivation says %d", label, i, got, w)
			}
		}
	}
	check("first derivation")
	check("memoized derivation")
	net.Halt(0)
	net.Restart(0)
	check("post-restart derivation")
}

// replyHandler echoes every message back to its sender from inside Deliver,
// exercising the pool's reentrancy.
type replyHandler struct {
	ctx *Context
	got int
}

func (h *replyHandler) Start(ctx *Context) { h.ctx = ctx }
func (h *replyHandler) Deliver(from NodeID, payload any) {
	h.got++
	h.ctx.Send(from, payload)
}
func (h *replyHandler) Stop() {}

// TestDeliveryPoolReuse checks steady-state traffic recycles delivery
// events rather than growing the pool, and that reentrant sends from inside
// Deliver are safe.
func TestDeliveryPoolReuse(t *testing.T) {
	sched := sim.New(1)
	net := New(sched, Config{Latency: FixedLatency(time.Millisecond)})
	a := &echoHandler{}
	b := &replyHandler{} // replies from inside Deliver: reentrant send
	net.AddNode(0, a)
	net.AddNode(1, b)
	net.StartAll()
	for i := 0; i < 100; i++ {
		a.ctx.Send(1, i)
		sched.RunUntil(sched.Now() + 10*time.Millisecond)
	}
	if b.got != 100 || len(a.received) != 100 {
		t.Fatalf("delivered %d/%d messages, want 100/100", b.got, len(a.received))
	}
	pooled := 0
	for d := net.pools[0].free; d != nil; d = d.next {
		pooled++
		if pooled > 10 {
			t.Fatalf("delivery pool grew past %d entries under serial traffic", pooled)
		}
	}
}

// TestDenseNodeTableSparseIDs checks the dense table copes with the id gap
// between validators and the experiment primary (id 2000 in core).
func TestDenseNodeTableSparseIDs(t *testing.T) {
	sched := sim.New(1)
	net := New(sched, Config{Latency: FixedLatency(time.Millisecond)})
	h0, h1 := &echoHandler{}, &echoHandler{}
	net.AddNode(2000, h1)
	net.AddNode(0, h0)
	net.StartAll()
	if !net.Node(2000) || !net.Node(0) || net.Node(1) || net.Node(-1) || net.Node(5000) {
		t.Fatal("Node membership wrong on sparse table")
	}
	h0.ctx.Send(2000, "ping")
	sched.RunUntil(time.Second)
	if len(h1.received) != 1 {
		t.Fatalf("sparse-id delivery failed: got %d messages", len(h1.received))
	}
	ids := net.sortedIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2000 {
		t.Fatalf("sortedIDs = %v, want [0 2000]", ids)
	}
}

// TestNegativeNodeIDPanics pins the dense-table precondition.
func TestNegativeNodeIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative node id")
		}
	}()
	net := New(sim.New(1), Config{})
	net.AddNode(-1, &echoHandler{})
}

// TestSetExtraDelayCounter checks the non-zero counter that gates the
// extra-delay addition on the send path.
func TestSetExtraDelayCounter(t *testing.T) {
	_, net, _ := newTestNet(t, 3, FixedLatency(time.Millisecond))
	net.SetExtraDelay(0, time.Second)
	net.SetExtraDelay(1, time.Second)
	if net.extraDelayed != 2 {
		t.Fatalf("extraDelayed = %d, want 2", net.extraDelayed)
	}
	net.SetExtraDelay(0, 0)
	net.SetExtraDelay(0, 0) // clearing twice must not underflow
	if net.extraDelayed != 1 {
		t.Fatalf("extraDelayed = %d after clears, want 1", net.extraDelayed)
	}
	if net.ExtraDelay(1) != time.Second || net.ExtraDelay(0) != 0 {
		t.Fatal("ExtraDelay values wrong")
	}
}
