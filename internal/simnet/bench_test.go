package simnet_test

import (
	"testing"

	"stabl/internal/kernelbench"
)

// The simnet microbenchmarks live in internal/kernelbench so that
// `go test -bench` and the `stabl bench` report measure identical bodies.
// They cover the three regimes STABL campaigns stress: a clean network
// (SendDeliver), a partition-rule-heavy network, and crash/restart churn.
// Run with:
//
//	go test -bench=. -benchmem ./internal/simnet

func BenchmarkSendDeliver(b *testing.B)        { kernelbench.BenchSendDeliver(b) }
func BenchmarkSendDegraded(b *testing.B)       { kernelbench.BenchSendDegraded(b) }
func BenchmarkSendPartitionHeavy(b *testing.B) { kernelbench.BenchSendPartitionHeavy(b) }
func BenchmarkSendChurnHeavy(b *testing.B)     { kernelbench.BenchSendChurnHeavy(b) }
func BenchmarkContextRNG(b *testing.B)         { kernelbench.BenchContextRNG(b) }
func BenchmarkStartAll(b *testing.B)           { kernelbench.BenchStartAll(b) }
