package sim

import "time"

// Ticker repeatedly invokes a function at a fixed virtual-time interval
// until stopped. Unlike time.Ticker there is no channel: the callback runs
// inline in the event loop.
type Ticker struct {
	sched    *Scheduler
	interval time.Duration
	fn       func()
	fire     func() // bound once so re-arming allocates no new closure
	timer    Timer
	stopped  bool
}

// NewTicker schedules fn every interval, with the first invocation one
// interval from now. It panics on a non-positive interval, which would
// otherwise wedge the event loop at a single instant.
func NewTicker(sched *Scheduler, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{sched: sched, interval: interval, fn: fn}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	// Register for Snapshot/Restore: a ticker stopped or re-armed by one
	// forked continuation must rewind for the next (see snapshot.go).
	sched.tickers = append(sched.tickers, t)
	return t
}

func (t *Ticker) arm() {
	t.timer = t.sched.After(t.interval, t.fire)
}

// Stop cancels future ticks. It is idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Reset changes the tick interval; the next tick fires one new interval from
// the current instant. Resetting a stopped ticker restarts it.
func (t *Ticker) Reset(interval time.Duration) {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t.timer.Stop()
	t.interval = interval
	t.stopped = false
	t.arm()
}
