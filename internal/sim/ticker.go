package sim

import "time"

// Ticker repeatedly invokes a function at a fixed virtual-time interval
// until stopped. Unlike time.Ticker there is no channel: the callback runs
// inline in the event loop.
type Ticker struct {
	sched    *Scheduler
	lane     int32
	interval time.Duration
	fn       func()
	fire     func() // bound once so re-arming allocates no new closure
	timer    Timer
	stopped  bool
}

// NewTicker schedules fn every interval on the root lane, with the first
// invocation one interval from now. It panics on a non-positive interval,
// which would otherwise wedge the event loop at a single instant.
func NewTicker(sched *Scheduler, interval time.Duration, fn func()) *Ticker {
	return NewLaneTicker(sched, -1, interval, fn)
}

// NewLaneTicker is NewTicker on behalf of lane: ticks carry the lane in
// their ordering key and execute on the lane's queue, so a node's periodic
// work stays inside its own partition in parallel mode.
func NewLaneTicker(sched *Scheduler, lane int32, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{sched: sched, lane: lane, interval: interval, fn: fn}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	// Register for Snapshot/Restore: a ticker stopped or re-armed by one
	// forked continuation must rewind for the next (see snapshot.go).
	sched.regMu.Lock()
	sched.tickers = append(sched.tickers, t)
	sched.regMu.Unlock()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.sched.AfterLane(t.lane, t.interval, t.fire)
}

// Stop cancels future ticks. It is idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Reset changes the tick interval; the next tick fires one new interval from
// the current instant. Resetting a stopped ticker restarts it.
func (t *Ticker) Reset(interval time.Duration) {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t.timer.Stop()
	t.interval = interval
	t.stopped = false
	t.arm()
}
