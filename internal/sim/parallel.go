package sim

import (
	"fmt"
	"math"
	"runtime/debug"
	"time"
)

// Conservative parallel mode (PDES).
//
// EnableParallel splits the event queue into one root queue plus `workers`
// partition queues, with a lane->queue plan supplied by the caller (see
// internal/parsim). RunUntil then advances in lookahead windows:
//
//  1. Barrier. Run the registered hooks (the network flushes buffered
//     cross-partition deliveries, the monitor merges buffered records), then
//     find the globally minimal pending event key.
//  2. If that key belongs to the root queue, execute that one event alone —
//     root events (observers injecting faults, connection management, gauge
//     samplers) may touch any node, so they run with every partition
//     quiesced, exactly at their position in the total order.
//  3. Otherwise open a window: every partition queue may safely execute all
//     events with key < bound, where bound is the minimum of
//       - minKey.at + lookahead (no cross-partition message sent at or
//         after minKey.at can arrive before this horizon),
//       - the root queue's next event key, and
//       - the RunUntil deadline horizon.
//     Each busy partition drains on its own goroutine; single-partition
//     windows inline on the coordinator.
//
// The lookahead is the static lower bound of the network's link latency.
// Degradation primitives only add delay (extra delay, jitter) or drop
// messages (loss), so the bound stays conservative under every fault the
// scenario engine can express.
//
// Determinism: every event's key is assigned at scheduling time from state
// owned by a single execution context (the sender's lane counter, or the
// executing queue's sub-sequence), so keys — and therefore the merged
// execution order — are identical for any worker count, including the
// sequential kernel. The parallel goldens in the root package hold the
// kernel to that bit-for-bit.

// EventKey is the total-order position of a scheduled event: virtual time,
// scheduling lane, per-lane sequence and same-instant sub-sequence. The
// chain monitor stamps buffered records with it to merge them into
// sequential order at barriers.
type EventKey struct {
	At   time.Duration
	Lane int32
	Seq  uint64
	Sub  uint32
}

// Less orders keys like the event queue orders events.
func (k EventKey) Less(o EventKey) bool {
	if k.At != o.At {
		return k.At < o.At
	}
	if k.Lane != o.Lane {
		return k.Lane < o.Lane
	}
	if k.Seq != o.Seq {
		return k.Seq < o.Seq
	}
	return k.Sub < o.Sub
}

// ExecKey returns the key of the event currently executing on lane's queue.
// Only valid from that queue's execution context.
func (s *Scheduler) ExecKey(lane int32) EventKey {
	q, _ := s.queueFor(lane)
	return EventKey{At: q.now, Lane: q.curLane, Seq: q.curSeq, Sub: q.curSub}
}

// ParallelStats measures a parallel run's windowed execution. BusyWall is
// the summed wall-clock execution time of all queues; CriticalWall sums each
// window's slowest queue (plus all root-event time), i.e. the modeled
// wall-clock floor with enough cores. BusyWall/CriticalWall is the
// load-balance parallelism the partition plan exposes.
type ParallelStats struct {
	Windows      uint64
	BusyWall     time.Duration
	CriticalWall time.Duration
}

// parRun is the parallel-mode state hanging off a Scheduler.
type parRun struct {
	workers   int
	lookahead time.Duration
	inWindow  bool // written by the coordinator between windows, read by workers inside
	hooks     []func()
	stats     ParallelStats

	cmds    []chan heapEntry // per worker: next window bound
	results chan parResult
	active  []int // scratch: busy workers of the current window
}

// parResult is one worker's window report.
type parResult struct {
	w     int
	busy  time.Duration
	pan   any
	stack []byte
}

// EnableParallel switches the scheduler into conservative parallel mode:
// lanes are routed to partition queues by laneQueue (values 0..workers,
// 0 = root queue), and RunUntil advances all queues concurrently in windows
// of the given lookahead — the static minimum cross-partition message
// latency. Must be called before any non-root lane has scheduled events;
// output stays byte-identical to the sequential kernel for any worker count.
func (s *Scheduler) EnableParallel(laneQueue []int32, workers int, lookahead time.Duration) {
	if s.par != nil {
		panic("sim: EnableParallel called twice")
	}
	if workers < 1 {
		panic("sim: EnableParallel needs at least one worker")
	}
	if lookahead <= 0 {
		panic("sim: EnableParallel needs a positive lookahead")
	}
	for lane, qi := range laneQueue {
		if qi < 0 || int(qi) > workers {
			panic(fmt.Sprintf("sim: lane %d routed to queue %d, outside [0,%d]", lane, qi, workers))
		}
	}
	s.laneQueue = append([]int32(nil), laneQueue...)
	root := s.qs[0]
	for i := 0; i < workers; i++ {
		s.qs = append(s.qs, &queue{free: -1, now: root.now})
	}
	if need := len(laneQueue) + 1; need > len(s.laneSeq) {
		grown := make([]uint64, need)
		copy(grown, s.laneSeq)
		s.laneSeq = grown
	}
	p := &parRun{
		workers:   workers,
		lookahead: lookahead,
		cmds:      make([]chan heapEntry, workers),
		results:   make(chan parResult, workers),
		active:    make([]int, 0, workers),
	}
	for i := range p.cmds {
		p.cmds[i] = make(chan heapEntry, 1)
	}
	s.par = p
}

// DisableParallel reverts an un-started scheduler to the sequential kernel,
// the deterministic fallback the forking API uses (checkpoints snapshot a
// single queue). It panics if any partition queue already holds events.
func (s *Scheduler) DisableParallel() {
	if s.par == nil {
		return
	}
	for _, q := range s.qs[1:] {
		if len(q.heap) != 0 {
			panic("sim: DisableParallel with pending partition events")
		}
	}
	s.qs = s.qs[:1]
	s.laneQueue = nil
	s.par = nil
}

// Parallel reports whether the scheduler is in parallel mode.
func (s *Scheduler) Parallel() bool { return s.par != nil }

// Workers returns the partition worker count (0 in sequential mode).
func (s *Scheduler) Workers() int {
	if s.par == nil {
		return 0
	}
	return s.par.workers
}

// InWindow reports whether a parallel lookahead window is currently open —
// i.e. whether the caller may be a partition event running concurrently
// with other partitions.
func (s *Scheduler) InWindow() bool { return s.par != nil && s.par.inWindow }

// OnBarrier registers a hook that runs at every window barrier (and before
// root events), with all partitions quiesced. The network and the chain
// monitor use it to inject buffered cross-partition work in key order.
func (s *Scheduler) OnBarrier(hook func()) {
	if s.par == nil {
		panic("sim: OnBarrier without EnableParallel")
	}
	s.par.hooks = append(s.par.hooks, hook)
}

// ParallelStats returns the accumulated window measurements (zero value in
// sequential mode).
func (s *Scheduler) ParallelStats() ParallelStats {
	if s.par == nil {
		return ParallelStats{}
	}
	return s.par.stats
}

// horizonBound is the exclusive drain bound for a deadline: every event at
// or before the deadline sorts below it, nothing after does.
func horizonBound(deadline time.Duration) heapEntry {
	return heapEntry{at: deadline + 1, lane: math.MinInt32}
}

// runParallel is RunUntil in parallel mode. Workers are spawned per call
// and torn down on return, so idle schedulers hold no goroutines.
func (s *Scheduler) runParallel(deadline time.Duration) {
	p := s.par
	for w := 1; w <= p.workers; w++ {
		go worker(s, s.qs[w], w, p.cmds[w-1], p.results)
	}
	defer func() {
		for _, c := range p.cmds {
			close(c)
		}
	}()

	end := horizonBound(deadline)
	for !s.halted {
		s.runBarrierHooks()
		qi := s.minQueue()
		if qi < 0 {
			break
		}
		head := s.qs[qi].heap[0]
		if !head.less(end) {
			break
		}
		if qi == 0 {
			// Root event: execute solo at its exact position in the
			// total order, every partition quiesced.
			t0 := wallStart()
			s.qs[0].step(s)
			d := wallSince(t0)
			p.stats.BusyWall += d
			p.stats.CriticalWall += d
			continue
		}
		bound := end
		if h := (heapEntry{at: head.at + p.lookahead, lane: math.MinInt32}); h.less(bound) {
			bound = h
		}
		if root := s.qs[0]; len(root.heap) > 0 && root.heap[0].less(bound) {
			bound = root.heap[0]
		}
		s.window(bound)
	}
	s.runBarrierHooks()
	if !s.halted {
		for _, q := range s.qs {
			if q.now < deadline {
				q.now = deadline
			}
		}
	}
}

// window drains every partition queue with work below bound, concurrently.
func (s *Scheduler) window(bound heapEntry) {
	p := s.par
	active := p.active[:0]
	for w := 1; w <= p.workers; w++ {
		q := s.qs[w]
		if q.settleHead() && q.heap[0].less(bound) {
			active = append(active, w)
		}
	}
	p.active = active
	p.stats.Windows++
	if len(active) == 1 {
		// One busy partition: drain inline, skipping the goroutine
		// round-trip. inWindow still opens so execution-context rules
		// (self-lane clamps, outboxed sends) apply identically.
		p.inWindow = true
		t0 := wallStart()
		s.qs[active[0]].drain(s, bound)
		d := wallSince(t0)
		p.inWindow = false
		p.stats.BusyWall += d
		p.stats.CriticalWall += d
		return
	}
	p.inWindow = true
	for _, w := range active {
		p.cmds[w-1] <- bound
	}
	var maxBusy time.Duration
	first := parResult{w: p.workers + 1}
	for range active {
		r := <-p.results
		p.stats.BusyWall += r.busy
		if r.busy > maxBusy {
			maxBusy = r.busy
		}
		// Panics surface after the window closes; the lowest worker
		// index wins so the failure is deterministic.
		if r.pan != nil && r.w < first.w {
			first = r
		}
	}
	p.inWindow = false
	p.stats.CriticalWall += maxBusy
	if first.pan != nil {
		panic(fmt.Sprintf("sim: partition %d event panicked: %v\n%s", first.w, first.pan, first.stack))
	}
}

// worker drains its queue to each window bound the coordinator sends.
func worker(s *Scheduler, q *queue, w int, cmd <-chan heapEntry, results chan<- parResult) {
	for bound := range cmd {
		r := parResult{w: w}
		t0 := wallStart()
		func() {
			defer func() {
				if v := recover(); v != nil {
					r.pan = v
					r.stack = debug.Stack()
				}
			}()
			q.drain(s, bound)
		}()
		r.busy = wallSince(t0)
		results <- r
	}
}

// minQueue settles every queue's head and returns the index of the queue
// holding the globally minimal live event, or -1 when all queues are empty.
func (s *Scheduler) minQueue() int {
	best := -1
	var bestHead heapEntry
	for i, q := range s.qs {
		if !q.settleHead() {
			continue
		}
		if best < 0 || q.heap[0].less(bestHead) {
			best = i
			bestHead = q.heap[0]
		}
	}
	return best
}

// runBarrierHooks runs the registered barrier hooks in registration order.
func (s *Scheduler) runBarrierHooks() {
	for _, h := range s.par.hooks {
		h()
	}
}

// Wall-clock reads live only in these two helpers: they feed the busy-time
// accounting of ParallelStats, which no simulated state ever observes.

//stabl:nodet wallclock -- host-side busy-time measurement; no simulated state reads it
func wallStart() time.Time { return time.Now() }

//stabl:nodet wallclock -- host-side busy-time measurement; no simulated state reads it
func wallSince(t0 time.Time) time.Duration { return time.Since(t0) }
