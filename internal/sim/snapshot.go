package sim

import (
	"math/rand"
	"time"

	"stabl/internal/snapshot"
)

// countingSource wraps the stdlib math/rand source with a draw counter. Its
// output is bit-identical to rand.NewSource(seed) — it delegates every draw —
// but the position counter makes the stream checkpointable: rngSource.Int63
// is one Uint64 state step, so the (seed, draws) pair fully determines the
// generator state and rewind() reproduces it by fast-forwarding a fresh
// source. This keeps every committed golden valid: no RNG algorithm changed,
// only the bookkeeping around it.
type countingSource struct {
	seed  int64
	inner rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{seed: seed, inner: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.inner.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.inner.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.seed = seed
	c.draws = 0
	c.inner.Seed(seed)
}

// rewind repositions the stream at exactly `draws` draws from its seed.
func (c *countingSource) rewind(draws uint64) {
	if draws == c.draws {
		return
	}
	src := rand.NewSource(c.seed).(rand.Source64)
	for i := uint64(0); i < draws; i++ {
		src.Uint64()
	}
	c.inner = src
	c.draws = draws
}

// tickerState is one registered ticker's mutable state. The Ticker object
// itself is identity-preserved: its bound fire closure sits in snapshotted
// event slots, so Restore writes these fields back through the original
// pointer instead of replacing it.
type tickerState struct {
	interval time.Duration
	timer    Timer
	stopped  bool
}

// schedState is the Scheduler's checkpoint. Everything is copied by value;
// the fn pointers inside the copied slots are the closures queued at
// checkpoint time, which restore-in-place keeps valid (see package
// snapshot).
type schedState struct {
	now    time.Duration
	heap   []heapEntry
	slots  []eventSlot
	free   int32
	seq    uint64
	fired  uint64
	halted bool
	// Registry prefixes: lengths at checkpoint time plus per-entry state.
	// Entries created after the checkpoint belong to objects the restore
	// abandons, so truncation is exact.
	sources []uint64
	tickers []tickerState
}

// Snapshot captures the scheduler: clock, event queue, slot arena, sequence
// counters and the RNG/ticker registries. The heap and arena are copied
// entry-by-entry (value types), so a checkpoint of a steady-state experiment
// costs two slice copies plus two small registry walks.
func (s *Scheduler) Snapshot() snapshot.State {
	st := &schedState{
		now:     s.now,
		heap:    append([]heapEntry(nil), s.heap...),
		slots:   append([]eventSlot(nil), s.slots...),
		free:    s.free,
		seq:     s.seq,
		fired:   s.fired,
		halted:  s.halted,
		sources: make([]uint64, len(s.sources)),
		tickers: make([]tickerState, len(s.tickers)),
	}
	for i, src := range s.sources {
		st.sources[i] = src.draws
	}
	for i, t := range s.tickers {
		st.tickers[i] = tickerState{interval: t.interval, timer: t.timer, stopped: t.stopped}
	}
	return st
}

// Restore rewinds the scheduler to a state captured by Snapshot. Queue and
// arena contents are written back in place (slots allocated since the
// checkpoint are dropped), every registered RNG stream is repositioned at
// its checkpoint draw count, and tickers recover their checkpoint timers.
func (s *Scheduler) Restore(state snapshot.State) {
	st, ok := state.(*schedState)
	if !ok {
		panic("sim: Scheduler.Restore on foreign state")
	}
	s.now = st.now
	s.heap = append(s.heap[:0], st.heap...)
	s.slots = append(s.slots[:0], st.slots...)
	s.free = st.free
	s.seq = st.seq
	s.fired = st.fired
	s.halted = st.halted
	if len(st.sources) > len(s.sources) || len(st.tickers) > len(s.tickers) {
		panic("sim: Scheduler.Restore state from a different scheduler history")
	}
	s.sources = s.sources[:len(st.sources)]
	for i, src := range s.sources {
		src.rewind(st.sources[i])
	}
	s.tickers = s.tickers[:len(st.tickers)]
	for i, t := range s.tickers {
		t.interval = st.tickers[i].interval
		t.timer = st.tickers[i].timer
		t.stopped = st.tickers[i].stopped
	}
}
