package sim

import (
	"time"

	"stabl/internal/snapshot"
)

// countingSource is a SplitMix64 PRNG (Steele, Lea & Flood, OOPSLA 2014)
// with a draw counter. Its whole state is one 64-bit word advanced by a
// fixed odd gamma per draw, so the (seed, draws) pair fully determines the
// generator and rewind() is O(1): state = seed + draws*gamma. That matters
// twice — checkpoints reposition thousands of streams per Restore, and
// large deployments derive three degradation streams per node (a stdlib
// lagged-Fibonacci source would cost ~5 KB each, ~150 MB at 10,240 nodes).
type countingSource struct {
	seed  int64
	state uint64
	draws uint64
}

// splitmixGamma is the Weyl-sequence increment (the golden ratio in 64 bits,
// forced odd), the constant the SplitMix64 reference uses.
const splitmixGamma = 0x9E3779B97F4A7C15

func newCountingSource(seed int64) *countingSource {
	return &countingSource{seed: seed, state: uint64(seed)}
}

func (c *countingSource) Uint64() uint64 {
	c.state += splitmixGamma
	c.draws++
	z := c.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (c *countingSource) Int63() int64 {
	return int64(c.Uint64() >> 1)
}

func (c *countingSource) Seed(seed int64) {
	c.seed = seed
	c.state = uint64(seed)
	c.draws = 0
}

// rewind repositions the stream at exactly `draws` draws from its seed.
func (c *countingSource) rewind(draws uint64) {
	c.state = uint64(c.seed) + splitmixGamma*draws
	c.draws = draws
}

// tickerState is one registered ticker's mutable state. The Ticker object
// itself is identity-preserved: its bound fire closure sits in snapshotted
// event slots, so Restore writes these fields back through the original
// pointer instead of replacing it.
type tickerState struct {
	interval time.Duration
	timer    Timer
	stopped  bool
}

// schedState is the Scheduler's checkpoint. Everything is copied by value;
// the fn pointers inside the copied slots are the closures queued at
// checkpoint time, which restore-in-place keeps valid (see package
// snapshot). Checkpoints capture the sequential kernel only (one queue);
// the forking API falls back to sequential mode before snapshotting.
type schedState struct {
	now     time.Duration
	heap    []heapEntry
	slots   []eventSlot
	free    int32
	fired   uint64
	subSeq  uint32
	laneSeq []uint64
	halted  bool
	// Registry prefixes: lengths at checkpoint time plus per-entry state.
	// Entries created after the checkpoint belong to objects the restore
	// abandons, so truncation is exact.
	sources []uint64
	tickers []tickerState
}

// Snapshot captures the scheduler: clock, event queue, slot arena, key
// counters and the RNG/ticker registries. The heap and arena are copied
// entry-by-entry (value types), so a checkpoint of a steady-state experiment
// costs a few slice copies plus two small registry walks.
func (s *Scheduler) Snapshot() snapshot.State {
	if s.par != nil {
		panic("sim: Snapshot requires the sequential kernel (see DisableParallel)")
	}
	q := s.qs[0]
	st := &schedState{
		now:     q.now,
		heap:    append([]heapEntry(nil), q.heap...),
		slots:   append([]eventSlot(nil), q.slots...),
		free:    q.free,
		fired:   q.fired,
		subSeq:  q.subSeq,
		laneSeq: append([]uint64(nil), s.laneSeq...),
		halted:  s.halted,
		sources: make([]uint64, len(s.sources)),
		tickers: make([]tickerState, len(s.tickers)),
	}
	for i, src := range s.sources {
		st.sources[i] = src.draws
	}
	for i, t := range s.tickers {
		st.tickers[i] = tickerState{interval: t.interval, timer: t.timer, stopped: t.stopped}
	}
	return st
}

// Restore rewinds the scheduler to a state captured by Snapshot. Queue and
// arena contents are written back in place (slots allocated since the
// checkpoint are dropped), every registered RNG stream is repositioned at
// its checkpoint draw count, and tickers recover their checkpoint timers.
func (s *Scheduler) Restore(state snapshot.State) {
	st, ok := state.(*schedState)
	if !ok {
		panic("sim: Scheduler.Restore on foreign state")
	}
	if s.par != nil {
		panic("sim: Restore requires the sequential kernel")
	}
	q := s.qs[0]
	q.now = st.now
	q.heap = append(q.heap[:0], st.heap...)
	q.slots = append(q.slots[:0], st.slots...)
	q.free = st.free
	q.fired = st.fired
	q.subSeq = st.subSeq
	s.laneSeq = append(s.laneSeq[:0], st.laneSeq...)
	s.halted = st.halted
	if len(st.sources) > len(s.sources) || len(st.tickers) > len(s.tickers) {
		panic("sim: Scheduler.Restore state from a different scheduler history")
	}
	s.sources = s.sources[:len(st.sources)]
	for i, src := range s.sources {
		src.rewind(st.sources[i])
	}
	s.tickers = s.tickers[:len(st.tickers)]
	for i, t := range s.tickers {
		t.interval = st.tickers[i].interval
		t.timer = st.tickers[i].timer
		t.stopped = st.tickers[i].stopped
	}
}
