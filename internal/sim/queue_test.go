package sim

// Edge-case and property tests for the inlined 4-ary heap / slot-arena event
// queue. These live in the sim package (not sim_test) so they can drive the
// heap against a reference container/heap implementation and poke at slot
// recycling directly.

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// TestStopOnRecycledSlotIsInert is the generation-fence contract: once a
// timer's slot has been recycled by a later event, the stale handle must
// neither cancel the new occupant nor report success.
func TestStopOnRecycledSlotIsInert(t *testing.T) {
	s := New(1)
	stale := s.After(time.Second, func() { t.Fatal("stopped event fired") })
	if !stale.Stop() {
		t.Fatal("first Stop should succeed")
	}
	// The freed slot is recycled by the next schedule.
	fired := false
	fresh := s.After(2*time.Second, func() { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("expected slot reuse, got %d then %d", stale.slot, fresh.slot)
	}
	if stale.Stop() {
		t.Fatal("stale Stop on recycled slot reported success")
	}
	if !stale.Stopped() {
		t.Fatal("stale handle should report stopped")
	}
	s.RunUntil(3 * time.Second)
	if !fired {
		t.Fatal("stale Stop cancelled the slot's new occupant")
	}
}

// TestStopAcrossManyRecycles hammers one slot through many generations and
// checks an ancient handle stays inert.
func TestStopAcrossManyRecycles(t *testing.T) {
	s := New(1)
	ancient := s.After(time.Second, func() {})
	ancient.Stop()
	for i := 0; i < 100; i++ {
		tm := s.After(time.Second, func() {})
		tm.Stop()
	}
	live := s.After(time.Second, func() {})
	if ancient.Stop() {
		t.Fatal("ancient handle cancelled someone else's event")
	}
	if live.Stopped() {
		t.Fatal("live timer reported stopped")
	}
}

// TestRunUntilExactDeadline checks the boundary contract: events scheduled
// at precisely the deadline execute, and the clock lands exactly on the
// deadline afterwards even when the last event fires earlier.
func TestRunUntilExactDeadline(t *testing.T) {
	s := New(1)
	var at, after bool
	s.At(10*time.Second, func() { at = true })
	s.At(10*time.Second+1, func() { after = true })
	s.RunUntil(10 * time.Second)
	if !at {
		t.Fatal("event at the exact deadline did not run")
	}
	if after {
		t.Fatal("event one tick past the deadline ran")
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("clock at %s, want exactly 10s", s.Now())
	}
	// A second RunUntil picks the remaining event up.
	s.RunUntil(11 * time.Second)
	if !after {
		t.Fatal("remaining event did not run on the next window")
	}
	if s.Now() != 11*time.Second {
		t.Fatalf("clock at %s, want 11s", s.Now())
	}
}

// TestRunUntilDeadlineWithNoEvents advances the clock even on an empty queue.
func TestRunUntilDeadlineWithNoEvents(t *testing.T) {
	s := New(1)
	s.RunUntil(5 * time.Second)
	if s.Now() != 5*time.Second {
		t.Fatalf("clock at %s, want 5s", s.Now())
	}
}

// refQueue is a reference priority queue built on container/heap — the shape
// of the kernel before the inlined 4-ary rewrite — used as the oracle for
// the pop-order property test.
type refEntry struct {
	at  time.Duration
	seq uint64
}

type refQueue []refEntry

func (q refQueue) Len() int      { return len(q) }
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q *refQueue) Push(x any) { *q = append(*q, x.(refEntry)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old) - 1
	e := old[n]
	*q = old[:n]
	return e
}

// TestPropertyHeapMatchesReference drives the 4-ary heap and a container/heap
// oracle with the same randomized interleaving of pushes and pops and demands
// identical (time, seq) pop order throughout.
func TestPropertyHeapMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := New(seed).qs[0]
		ref := &refQueue{}
		var seq uint64
		for op := 0; op < 2000; op++ {
			if ref.Len() == 0 || rng.Intn(3) != 0 { // bias toward pushes
				at := time.Duration(rng.Intn(1000)) * time.Millisecond
				if at < q.now {
					at = q.now
				}
				slot := q.acquireSlot(func() {})
				q.push(heapEntry{at: at, seq: seq, slot: slot, gen: q.slots[slot].gen})
				heap.Push(ref, refEntry{at: at, seq: seq})
				seq++
			} else {
				got := q.pop()
				q.releaseSlot(got.slot)
				want := heap.Pop(ref).(refEntry)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("seed %d op %d: popped (%s, %d), reference says (%s, %d)",
						seed, op, got.at, got.seq, want.at, want.seq)
				}
				q.now = got.at
			}
		}
		for ref.Len() > 0 {
			got := q.pop()
			q.releaseSlot(got.slot)
			want := heap.Pop(ref).(refEntry)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d drain: popped (%s, %d), reference says (%s, %d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
		}
		if len(q.heap) != 0 {
			t.Fatalf("seed %d: %d entries left after draining the reference", seed, len(q.heap))
		}
	}
}

// TestPropertyCancelledEntriesStayQueued pins the lazy-cancellation
// semantics the golden runs depend on: Stop leaves the heap entry in place
// (Pending counts it) and Step skips it without firing.
func TestPropertyCancelledEntriesStayQueued(t *testing.T) {
	s := New(7)
	var fired int
	timers := make([]Timer, 0, 100)
	for i := 0; i < 100; i++ {
		timers = append(timers, s.After(time.Duration(i+1)*time.Millisecond, func() { fired++ }))
	}
	for i := 0; i < 100; i += 2 {
		timers[i].Stop()
	}
	if s.Pending() != 100 {
		t.Fatalf("Pending = %d after lazy cancellation, want 100", s.Pending())
	}
	for s.Step() {
	}
	if fired != 50 {
		t.Fatalf("fired %d events, want the 50 uncancelled ones", fired)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", s.Pending())
	}
}

// TestSlotArenaReusesMemory checks steady-state churn does not grow the
// arena: repeated schedule/fire cycles should settle on a bounded slot count.
func TestSlotArenaReusesMemory(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		s.After(time.Millisecond, func() {})
		s.Step()
	}
	if len(s.qs[0].slots) > 2 {
		t.Fatalf("slot arena grew to %d slots under serial churn, want <= 2", len(s.qs[0].slots))
	}
}
