package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsEventsInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.At(10*time.Millisecond, func() {
		s.At(time.Millisecond, func() { at = s.Now() })
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("past-scheduled event ran at %v, want 10ms", at)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Second, func() {})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(time.Second, func() { fired++ })
	s.At(3*time.Second, func() { fired++ })
	s.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	s.RunUntil(3 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (deadline-inclusive)", fired)
	}
}

func TestRunMaxEvents(t *testing.T) {
	s := New(1)
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(0, loop)
	if err := s.Run(100); err == nil {
		t.Fatal("Run with runaway loop returned nil error")
	}
}

func TestHaltStopsExecution(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(time.Second, func() { fired++; s.Halt() })
	s.At(2*time.Second, func() { fired++ })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after Halt, want 1", fired)
	}
	if !s.Halted() {
		t.Fatal("Halted() = false")
	}
}

func TestNegativeAfterClampedToZero(t *testing.T) {
	s := New(1)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Step()
	if !ran || s.Now() != 0 {
		t.Fatalf("negative After: ran=%v now=%v", ran, s.Now())
	}
}

func TestRNGDeterministicPerName(t *testing.T) {
	a := New(42).RNG("gossip")
	b := New(42).RNG("gossip")
	c := New(42).RNG("sortition")
	for i := 0; i < 100; i++ {
		av, bv := a.Int63(), b.Int63()
		if av != bv {
			t.Fatalf("same (seed,name) diverged at draw %d", i)
		}
		if av == c.Int63() && i == 0 {
			t.Log("note: different names drew equal first value (unlikely)")
		}
	}
}

func TestRNGDiffersAcrossSeeds(t *testing.T) {
	a := New(1).RNG("x")
	b := New(2).RNG("x")
	same := true
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("streams for different seeds are identical")
	}
}

func TestFiredAndPendingCounters(t *testing.T) {
	s := New(1)
	s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Fired() != 1 || s.Pending() != 1 {
		t.Fatalf("Fired=%d Pending=%d, want 1,1", s.Fired(), s.Pending())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never goes backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16, seed int64) bool {
		if len(delays) > 256 {
			delays = delays[:256]
		}
		s := New(seed)
		var times []time.Duration
		for _, d := range delays {
			s.At(time.Duration(d)*time.Millisecond, func() {
				times = append(times, s.Now())
			})
		}
		if err := s.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved scheduling from inside events preserves the global
// (time, seq) order; an event never observes a clock earlier than the
// instant it was scheduled for.
func TestPropertyNestedScheduling(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		rng := rand.New(rand.NewSource(seed))
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 4 {
				return
			}
			delay := time.Duration(rng.Intn(50)) * time.Millisecond
			target := s.Now() + delay
			s.After(delay, func() {
				if s.Now() != target {
					ok = false
				}
				spawn(depth + 1)
			})
		}
		spawn(0)
		spawn(0)
		if err := s.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	s := New(1)
	var times []time.Duration
	tk := NewTicker(s, 10*time.Millisecond, func() { times = append(times, s.Now()) })
	s.RunUntil(35 * time.Millisecond)
	tk.Stop()
	s.RunUntil(100 * time.Millisecond)
	if len(times) != 3 {
		t.Fatalf("ticks = %d, want 3 (got %v)", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerReset(t *testing.T) {
	s := New(1)
	var times []time.Duration
	tk := NewTicker(s, 10*time.Millisecond, func() { times = append(times, s.Now()) })
	s.RunUntil(10 * time.Millisecond)
	tk.Reset(20 * time.Millisecond)
	s.RunUntil(50 * time.Millisecond)
	tk.Stop()
	// ticks: 10ms, then 30ms, 50ms
	if len(times) != 3 || times[1] != 30*time.Millisecond {
		t.Fatalf("ticks after reset = %v", times)
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	s := New(1)
	tk := NewTicker(s, time.Millisecond, func() {})
	tk.Stop()
	tk.Stop()
	if s.Step() {
		n := 0
		for s.Step() {
			n++
		}
		if n > 0 {
			t.Fatal("stopped ticker kept firing")
		}
	}
}

func TestTickerPanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero interval")
		}
	}()
	NewTicker(New(1), 0, func() {})
}
