package sim

import "testing"

// The RNGSeed memoization must be invisible: streams drawn through the cache
// are byte-identical to streams derived from scratch, and every RNG call
// still returns a fresh stream positioned at its start.

func TestRNGSeedMemoizationDoesNotChangeStreams(t *testing.T) {
	fresh := New(42)  // derives each name once
	cached := New(42) // derives repeatedly, hitting the cache
	names := []string{"node/0/timeout", "node/1/timeout", "workload/0", "simnet.latency"}
	want := make(map[string][]int64)
	for _, name := range names {
		r := fresh.RNG(name)
		vals := make([]int64, 16)
		for i := range vals {
			vals[i] = r.Int63()
		}
		want[name] = vals
	}
	for round := 0; round < 3; round++ {
		for _, name := range names {
			r := cached.RNG(name) // first round misses, later rounds hit the memo
			for i, w := range want[name] {
				if got := r.Int63(); got != w {
					t.Fatalf("round %d, %q[%d]: memoized stream %d, fresh %d", round, name, i, got, w)
				}
			}
		}
	}
}

func TestRNGSeedMatchesRNG(t *testing.T) {
	a := New(7)
	b := New(7)
	seed := a.RNGSeed("x")
	if got := b.RNG("x").Int63(); got != a.RNG("x").Int63() {
		t.Fatal("RNG not reproducible across schedulers")
	}
	if again := b.RNGSeed("x"); again != seed {
		t.Fatalf("RNGSeed unstable: %d then %d", seed, again)
	}
}

func TestRNGFreshStreamEachCall(t *testing.T) {
	s := New(3)
	first := s.RNG("stream").Int63()
	second := s.RNG("stream").Int63()
	if first != second {
		t.Fatalf("second RNG call resumed mid-stream: %d vs %d", first, second)
	}
}
