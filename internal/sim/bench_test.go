package sim_test

import (
	"testing"

	"stabl/internal/kernelbench"
)

// The scheduler microbenchmarks live in internal/kernelbench so that
// `go test -bench` and the `stabl bench` report measure identical bodies.
// Run with:
//
//	go test -bench=. -benchmem ./internal/sim
//
// BenchmarkSchedulerPushPop is the acceptance gate for kernel work: its
// events/s must not regress, and the optimized kernel must hold 0 allocs/op
// in steady state.

func BenchmarkSchedulerPushPop(b *testing.B)    { kernelbench.BenchSchedulerPushPop(b) }
func BenchmarkSchedulerTimerChurn(b *testing.B) { kernelbench.BenchSchedulerTimerChurn(b) }
func BenchmarkSchedulerMixed(b *testing.B)      { kernelbench.BenchSchedulerMixed(b) }
func BenchmarkSchedulerRNG(b *testing.B)        { kernelbench.BenchSchedulerRNG(b) }
