// Package sim provides a deterministic discrete-event simulation kernel.
//
// All STABL experiments run in virtual time: events are functions scheduled
// at a virtual instant and executed in a deterministic total order. A
// 400-second blockchain experiment therefore completes in milliseconds of
// wall-clock time and is reproducible bit-for-bit from its seed.
//
// Events are ordered by a four-part key (at, lane, seq, sub): the virtual
// instant, the lane (node) that scheduled the event, a per-lane sequence
// number, and a sub-sequence used for same-instant re-schedules from inside
// a running event. The key is assigned at scheduling time and never depends
// on global interleaving, which is what lets the conservative parallel mode
// (see parallel.go) execute partitions of the node set concurrently and
// still merge their event streams into exactly the sequential order.
//
// The event queue is built for throughput: an inlined 4-ary min-heap over
// value-typed entries, with callbacks parked in a free-listed slot arena so
// that At/After/Step allocate nothing in steady state. Timer handles refer
// to (queue, slot, generation) triples, which keeps stale handles safe after
// a slot is recycled. Cancellation is lazy — a stopped event's heap entry
// stays queued until it surfaces.
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Scheduler is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; construct one with New. A sequential
// Scheduler is not safe for concurrent use. In parallel mode (EnableParallel)
// the scheduler itself orchestrates the only permitted concurrency: each
// partition queue is touched by exactly one goroutine per lookahead window.
type Scheduler struct {
	// qs[0] is the root queue: the sequential event loop, and in parallel
	// mode the global lane for cross-cutting actors (observers, the
	// connection manager, gauge samplers). qs[1..workers] are partition
	// queues owned by one worker each during a window.
	qs []*queue
	//stabl:nodet snapshot-fields -- parallel-mode only; cleared by DisableParallel before any fork
	laneQueue []int32  // lane -> queue index; nil (sequential) routes all lanes to qs[0]
	laneSeq   []uint64 // per-lane key counters, indexed lane+1 (lane -1 is the root lane)

	seed   int64
	halted bool

	// regMu guards the stream/ticker registries and the seed-derivation
	// cache, the only scheduler state that partition events may touch
	// concurrently (a restarted node re-deriving its RNG streams).
	regMu sync.Mutex
	//stabl:nodet snapshot-fields -- pure memo: name -> seed is a deterministic derivation, identical across fork and replay
	rngSeeds map[string]int64 // memoized RNG stream derivations

	// Checkpoint registries (see Snapshot): every RNG stream and ticker
	// ever issued, in creation order. Creation is deterministic, so a
	// forked continuation and the from-scratch run it mirrors build
	// identical registries.
	sources []*countingSource
	tickers []*Ticker

	par *parRun // nil in sequential mode
}

// queue is one event sub-queue: a 4-ary min-heap plus its slot arena and
// clock. Sequential mode uses exactly one; parallel mode adds one per
// worker. Each queue also records the key of the event it is currently
// executing, which keys same-instant re-schedules and monitor records.
type queue struct {
	now   time.Duration
	heap  []heapEntry // 4-ary min-heap ordered by (at, lane, seq, sub)
	slots []eventSlot // callback arena referenced by heap entries and Timers
	free  int32       // head of the slot free list (-1 when empty)
	fired uint64

	// Execution context: set while an event runs, consumed by the
	// same-instant re-schedule rule in schedule() and by ExecKey.
	executing bool
	curLane   int32
	curSeq    uint64
	curSub    uint32
	// subSeq is the queue's sub-key counter. It never resets, so a
	// re-scheduled event's key always sorts after every key this queue has
	// already executed — the property that keeps execution order equal to
	// key order in both kernels.
	subSeq uint32
}

// heapEntry is a queued occurrence: the (at, lane, seq, sub) ordering key
// plus a generation-checked reference into the slot arena. Entries are moved
// by value during sifts; the slot never moves, so Timers stay valid.
type heapEntry struct {
	at   time.Duration
	seq  uint64
	lane int32
	sub  uint32
	slot int32
	gen  uint32
}

// eventSlot parks a callback between scheduling and execution. gen increments
// every time the slot is released (fired or cancelled), invalidating any
// outstanding heap entry or Timer that still references the old occupancy.
type eventSlot struct {
	fn   func()
	next int32 // free-list link; -1 while occupied
	gen  uint32
}

// New returns a Scheduler whose clock starts at zero. The seed parameterizes
// every random stream derived with RNG, so two schedulers built from the
// same seed replay identical executions.
func New(seed int64) *Scheduler {
	return &Scheduler{
		qs:       []*queue{{free: -1}},
		seed:     seed,
		rngSeeds: make(map[string]int64),
	}
}

// Now returns the current virtual time of the root queue — the global clock
// in sequential mode and at parallel barriers. Partition events must use
// ContextNow/LaneNow instead: their queue's clock may lead the root clock
// inside a window.
func (s *Scheduler) Now() time.Duration { return s.qs[0].now }

// LaneNow returns the clock of the queue that owns lane. For a partition
// event running in a window this is the instant of the executing event.
func (s *Scheduler) LaneNow(lane int32) time.Duration {
	q, _ := s.queueFor(lane)
	return q.now
}

// ContextNow returns the clock of the current execution context for code
// running on behalf of lane: the lane's queue inside a parallel window, the
// root queue otherwise (sequential execution, parallel barriers, setup).
// Relative delays (After, tickers, timeouts) are measured from it.
func (s *Scheduler) ContextNow(lane int32) time.Duration {
	if s.par != nil && s.par.inWindow {
		q, _ := s.queueFor(lane)
		return q.now
	}
	return s.qs[0].now
}

// Seed returns the seed the scheduler was created with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Fired reports how many events have been executed so far, summed over all
// queues.
func (s *Scheduler) Fired() uint64 {
	var n uint64
	for _, q := range s.qs {
		n += q.fired
	}
	return n
}

// Pending reports how many events are currently queued, including cancelled
// events whose entries have not yet surfaced.
func (s *Scheduler) Pending() int {
	n := 0
	for _, q := range s.qs {
		n += len(q.heap)
	}
	return n
}

// Timer is a handle to a scheduled event. Stop cancels the event if it has
// not fired yet. Timer is a small value — copying it is cheap and the zero
// value is an inert, already-stopped handle — so scheduling allocates
// nothing.
type Timer struct {
	s    *Scheduler
	at   time.Duration
	slot int32
	qi   int32 // queue the event was pushed into
	gen  uint32
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// event from firing (false when the event already fired or was stopped).
// A timer may only be stopped from the execution context of the queue it
// was scheduled into (in parallel mode: the owning partition's worker, or
// a barrier).
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	q := t.s.qs[t.qi]
	if q.slots[t.slot].gen != t.gen {
		return false
	}
	q.releaseSlot(t.slot)
	return true
}

// Stopped reports whether the timer was cancelled or already fired.
func (t Timer) Stopped() bool {
	return t.s == nil || t.s.qs[t.qi].slots[t.slot].gen != t.gen
}

// When returns the virtual instant the timer is (or was) scheduled for.
func (t Timer) When() time.Duration { return t.at }

// At schedules fn on the root lane at virtual time at. Scheduling in the
// past (or at the present instant) runs the event at the current time but
// strictly after the event currently executing, preserving causal order.
func (s *Scheduler) At(at time.Duration, fn func()) Timer {
	return s.schedule(-1, at, fn)
}

// After schedules fn on the root lane d after the current virtual time.
// Negative durations are treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(-1, s.qs[0].now+d, fn)
}

// AtLane schedules fn at virtual time at on behalf of lane: the event
// carries lane in its ordering key and executes on the queue that owns the
// lane. Nodes must only schedule onto their own lane; cross-node effects go
// through the network.
func (s *Scheduler) AtLane(lane int32, at time.Duration, fn func()) Timer {
	return s.schedule(lane, at, fn)
}

// AfterLane schedules fn d after lane's current context time (see
// ContextNow). Negative durations are treated as zero.
func (s *Scheduler) AfterLane(lane int32, d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(lane, s.ContextNow(lane)+d, fn)
}

// schedule assigns fn its ordering key and pushes it onto lane's queue.
//
// The key has two forms. The common case is a fresh key (at, lane, seq)
// drawn from the lane's own counter. The delicate case is a same-instant
// re-schedule — an event scheduling work at or before the context clock,
// e.g. After(0) from a commit handler. Such an event adopts the key of the
// event currently executing plus a queue-local sub-sequence, which slots it
// immediately after its parent in the total order regardless of how lanes
// interleave. Both kernels apply the same rule, so the order is identical.
func (s *Scheduler) schedule(lane int32, at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	dq, qi := s.queueFor(lane)
	cq := dq // execution context: the destination queue inside a window ...
	if s.par == nil || !s.par.inWindow {
		cq = s.qs[0] // ... the root queue everywhere else
	}
	var e heapEntry
	if cq.executing && at <= cq.now {
		cq.subSeq++
		e = heapEntry{at: cq.now, lane: cq.curLane, seq: cq.curSeq, sub: cq.subSeq}
	} else {
		if at < cq.now {
			at = cq.now
		}
		e = heapEntry{at: at, lane: lane, seq: s.takeLaneSeq(lane)}
	}
	e.slot = dq.acquireSlot(fn)
	e.gen = dq.slots[e.slot].gen
	dq.push(e)
	return Timer{s: s, at: e.at, slot: e.slot, qi: qi, gen: e.gen}
}

// ScheduleKeyed pushes fn with a fully specified key (at, keyLane, seq)
// onto the queue owning routeLane. The network's delivery path uses it: a
// message's key belongs to its sender (assigned at send time via
// TakeLaneSeq) while the event executes on the receiver's queue.
func (s *Scheduler) ScheduleKeyed(routeLane, keyLane int32, seq uint64, at time.Duration, fn func()) {
	dq, _ := s.queueFor(routeLane)
	slot := dq.acquireSlot(fn)
	dq.push(heapEntry{at: at, lane: keyLane, seq: seq, slot: slot, gen: dq.slots[slot].gen})
}

// TakeLaneSeq draws the next sequence number of lane's key counter. The
// counter is consumed in the lane's deterministic execution order in both
// kernels, which is what makes sender-assigned message keys mode-invariant.
func (s *Scheduler) TakeLaneSeq(lane int32) uint64 {
	return s.takeLaneSeq(lane)
}

func (s *Scheduler) takeLaneSeq(lane int32) uint64 {
	i := int(lane) + 1
	if i >= len(s.laneSeq) {
		if s.par != nil {
			panic(fmt.Sprintf("sim: lane %d outside the partition plan", lane))
		}
		grown := make([]uint64, max(i+1, 2*len(s.laneSeq)))
		copy(grown, s.laneSeq)
		s.laneSeq = grown
	}
	v := s.laneSeq[i]
	s.laneSeq[i] = v + 1
	return v
}

// queueFor maps a lane to its queue. Unplanned lanes (including the root
// lane -1) route to the root queue.
func (s *Scheduler) queueFor(lane int32) (*queue, int32) {
	if lq := s.laneQueue; lq != nil {
		if i := int(lane); uint(i) < uint(len(lq)) {
			qi := lq[i]
			return s.qs[qi], qi
		}
	}
	return s.qs[0], 0
}

// Step executes the earliest pending event. It reports whether an event was
// executed (false when the queue is empty or the scheduler was halted).
// Step requires the sequential kernel.
func (s *Scheduler) Step() bool {
	if s.par != nil {
		panic("sim: Step requires the sequential kernel")
	}
	return s.qs[0].step(s)
}

// step pops entries until a live one surfaces and executes it.
func (q *queue) step(s *Scheduler) bool {
	for len(q.heap) > 0 && !s.halted {
		e := q.pop()
		sl := &q.slots[e.slot]
		if sl.gen != e.gen { // cancelled; slot already recycled
			continue
		}
		q.exec(e, sl.fn)
		return true
	}
	return false
}

// drain executes every live event with key < bound, in key order. Both
// kernels run on it: sequential RunUntil drains the root queue to the
// deadline horizon, parallel windows drain each partition queue to the
// window bound.
func (q *queue) drain(s *Scheduler, bound heapEntry) {
	for len(q.heap) > 0 && !s.halted && q.heap[0].less(bound) {
		e := q.pop()
		sl := &q.slots[e.slot]
		if sl.gen != e.gen {
			continue
		}
		q.exec(e, sl.fn)
	}
}

// exec runs one event: slot release, clock advance, execution context.
func (q *queue) exec(e heapEntry, fn func()) {
	q.releaseSlot(e.slot)
	q.now = e.at
	q.fired++
	q.executing = true
	q.curLane, q.curSeq, q.curSub = e.lane, e.seq, e.sub
	fn()
	q.executing = false
}

// settleHead pops cancelled entries off the heap until a live event (true)
// or emptiness (false) surfaces, so callers can trust heap[0].
func (q *queue) settleHead() bool {
	for len(q.heap) > 0 {
		e := q.heap[0]
		if q.slots[e.slot].gen == e.gen {
			return true
		}
		q.pop()
	}
	return false
}

// RunUntil executes events in key order until the virtual clock would pass
// deadline, then advances the clock to exactly deadline. Events scheduled at
// the deadline itself are executed.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	if s.par != nil {
		s.runParallel(deadline)
		return
	}
	q := s.qs[0]
	q.drain(s, horizonBound(deadline))
	if !s.halted && q.now < deadline {
		q.now = deadline
	}
}

// Run executes events until the queue drains or the scheduler is halted.
// maxEvents bounds the number of executed events to guard against runaway
// event loops; it returns an error when the bound is hit. Run requires the
// sequential kernel.
func (s *Scheduler) Run(maxEvents uint64) error {
	var n uint64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return fmt.Errorf("sim: run exceeded %d events at t=%s", maxEvents, s.qs[0].now)
		}
	}
	return nil
}

// Halt stops the scheduler: Step, Run and RunUntil return without executing
// further events. Pending events remain queued. Halt must be called from the
// root execution context; partition events cannot halt the world mid-window.
func (s *Scheduler) Halt() {
	if s.par != nil && s.par.inWindow {
		panic("sim: Halt from a partition event")
	}
	s.halted = true
}

// Halted reports whether Halt was called.
func (s *Scheduler) Halted() bool { return s.halted }

// RNG derives a deterministic random stream from the scheduler seed and a
// name. Streams with distinct names are statistically independent, and the
// same (seed, name) pair always yields the same stream, so adding a new
// consumer does not perturb existing ones. Every call returns a fresh stream
// positioned at its start — restarted nodes re-deriving a stream replay it
// from the beginning, which the determinism of restarts depends on.
//
// The stream is registered with the scheduler so Snapshot/Restore can rewind
// it. A stream must only be drawn from one lane's execution context; the
// per-name derivation makes that free (each node derives its own names).
func (s *Scheduler) RNG(name string) *rand.Rand {
	return s.RNGFromSeed(s.RNGSeed(name))
}

// RNGFromSeed returns a fresh registered stream for an already-derived seed
// (see RNGSeed). Callers that memoize derivations (simnet.Context) use it so
// their streams still participate in Snapshot/Restore.
func (s *Scheduler) RNGFromSeed(seed int64) *rand.Rand {
	src := newCountingSource(seed)
	s.regMu.Lock()
	s.sources = append(s.sources, src)
	s.regMu.Unlock()
	return rand.New(src)
}

// RNGSeed returns the derived seed behind RNG(name). The derivation (an FNV
// hash of the name mixed with the scheduler seed) is memoized per name, so
// hot callers can skip the hashing; the stream contents are identical with
// or without the cache.
func (s *Scheduler) RNGSeed(name string) int64 {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if d, ok := s.rngSeeds[name]; ok {
		return d
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	d := int64(h.Sum64()^uint64(s.seed)*0x9E3779B97F4A7C15) ^ s.seed
	s.rngSeeds[name] = d
	return d
}

// acquireSlot parks fn in a free slot and returns its index.
func (q *queue) acquireSlot(fn func()) int32 {
	if q.free >= 0 {
		slot := q.free
		sl := &q.slots[slot]
		q.free = sl.next
		sl.fn = fn
		sl.next = -1
		return slot
	}
	q.slots = append(q.slots, eventSlot{fn: fn, next: -1})
	return int32(len(q.slots) - 1)
}

// releaseSlot retires a slot's current occupancy: the generation bump
// invalidates outstanding Timers and heap entries, and the slot joins the
// free list for reuse.
func (q *queue) releaseSlot(slot int32) {
	sl := &q.slots[slot]
	sl.fn = nil
	sl.gen++
	sl.next = q.free
	q.free = slot
}

// less orders entries by the total event key (at, lane, seq, sub): time
// first, then the scheduling lane (the root lane -1 sorts before all node
// lanes), then the lane's sequence counter, then the same-instant
// sub-sequence.
func (e heapEntry) less(o heapEntry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.lane != o.lane {
		return e.lane < o.lane
	}
	if e.seq != o.seq {
		return e.seq < o.seq
	}
	return e.sub < o.sub
}

// push inserts an entry into the 4-ary min-heap.
func (q *queue) push(e heapEntry) {
	h := append(q.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	q.heap = h
}

// pop removes and returns the minimum entry.
func (q *queue) pop() heapEntry {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	q.heap = h[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places e starting from the root, shifting smaller children up.
// A 4-ary layout halves the tree depth versus a binary heap and keeps the
// four children in one cache line, which is what buys the queue its
// throughput on the deep queues real experiments build.
func (q *queue) siftDown(e heapEntry) {
	h := q.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c // index of the smallest child
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].less(h[m]) {
				m = j
			}
		}
		if !h[m].less(e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}
