// Package sim provides a deterministic discrete-event simulation kernel.
//
// All STABL experiments run in virtual time: events are functions scheduled
// at a virtual instant and executed in (time, sequence) order by a single
// goroutine. A 400-second blockchain experiment therefore completes in
// milliseconds of wall-clock time and is reproducible bit-for-bit from its
// seed.
//
// The event queue is built for throughput: an inlined 4-ary min-heap over
// value-typed entries, with callbacks parked in a free-listed slot arena so
// that At/After/Step allocate nothing in steady state. Timer handles refer
// to (slot, generation) pairs, which keeps stale handles safe after a slot
// is recycled. Cancellation is lazy — a stopped event's heap entry stays
// queued until it surfaces — exactly matching the previous container/heap
// kernel, so executions are bit-for-bit identical.
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Scheduler is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; construct one with New. Scheduler is not
// safe for concurrent use: the simulation is single-threaded by design,
// which is what makes runs deterministic.
type Scheduler struct {
	now      time.Duration
	heap     []heapEntry // 4-ary min-heap ordered by (at, seq)
	slots    []eventSlot // callback arena referenced by heap entries and Timers
	free     int32       // head of the slot free list (-1 when empty)
	seq      uint64
	seed     int64
	fired    uint64
	halted   bool
	rngSeeds map[string]int64 // memoized RNG stream derivations

	// Checkpoint registries (see Snapshot): every RNG stream and ticker
	// ever issued, in creation order. Creation is deterministic, so a
	// forked continuation and the from-scratch run it mirrors build
	// identical registries.
	sources []*countingSource
	tickers []*Ticker
}

// heapEntry is a queued occurrence: the (at, seq) ordering key plus a
// generation-checked reference into the slot arena. Entries are moved by
// value during sifts; the slot never moves, so Timers stay valid.
type heapEntry struct {
	at   time.Duration
	seq  uint64
	slot int32
	gen  uint32
}

// eventSlot parks a callback between scheduling and execution. gen increments
// every time the slot is released (fired or cancelled), invalidating any
// outstanding heap entry or Timer that still references the old occupancy.
type eventSlot struct {
	fn   func()
	next int32 // free-list link; -1 while occupied
	gen  uint32
}

// New returns a Scheduler whose clock starts at zero. The seed parameterizes
// every random stream derived with RNG, so two schedulers built from the
// same seed replay identical executions.
func New(seed int64) *Scheduler {
	return &Scheduler{seed: seed, free: -1, rngSeeds: make(map[string]int64)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Seed returns the seed the scheduler was created with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Fired reports how many events have been executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are currently queued, including cancelled
// events whose entries have not yet surfaced.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Timer is a handle to a scheduled event. Stop cancels the event if it has
// not fired yet. Timer is a small value — copying it is cheap and the zero
// value is an inert, already-stopped handle — so scheduling allocates
// nothing.
type Timer struct {
	s    *Scheduler
	at   time.Duration
	slot int32
	gen  uint32
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// event from firing (false when the event already fired or was stopped).
func (t Timer) Stop() bool {
	if t.s == nil || t.s.slots[t.slot].gen != t.gen {
		return false
	}
	t.s.releaseSlot(t.slot)
	return true
}

// Stopped reports whether the timer was cancelled or already fired.
func (t Timer) Stopped() bool {
	return t.s == nil || t.s.slots[t.slot].gen != t.gen
}

// When returns the virtual instant the timer is (or was) scheduled for.
func (t Timer) When() time.Duration { return t.at }

// At schedules fn to run at virtual time at. Scheduling in the past (or at
// the present instant) runs the event at the current time but strictly after
// all events already queued for that time, preserving causal order.
func (s *Scheduler) At(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if at < s.now {
		at = s.now
	}
	slot := s.acquireSlot(fn)
	gen := s.slots[slot].gen
	s.push(heapEntry{at: at, seq: s.seq, slot: slot, gen: gen})
	s.seq++
	return Timer{s: s, at: at, slot: slot, gen: gen}
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the earliest pending event. It reports whether an event was
// executed (false when the queue is empty or the scheduler was halted).
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 && !s.halted {
		e := s.pop()
		sl := &s.slots[e.slot]
		if sl.gen != e.gen { // cancelled; slot already recycled
			continue
		}
		fn := sl.fn
		s.releaseSlot(e.slot)
		s.now = e.at
		s.fired++
		fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the virtual clock would pass
// deadline, then advances the clock to exactly deadline. Events scheduled at
// the deadline itself are executed.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for !s.halted && len(s.heap) > 0 && s.heap[0].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// Run executes events until the queue drains or the scheduler is halted.
// maxEvents bounds the number of executed events to guard against runaway
// event loops; it returns an error when the bound is hit.
func (s *Scheduler) Run(maxEvents uint64) error {
	var n uint64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return fmt.Errorf("sim: run exceeded %d events at t=%s", maxEvents, s.now)
		}
	}
	return nil
}

// Halt stops the scheduler: Step, Run and RunUntil return without executing
// further events. Pending events remain queued.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt was called.
func (s *Scheduler) Halted() bool { return s.halted }

// RNG derives a deterministic random stream from the scheduler seed and a
// name. Streams with distinct names are statistically independent, and the
// same (seed, name) pair always yields the same stream, so adding a new
// consumer does not perturb existing ones. Every call returns a fresh stream
// positioned at its start — restarted nodes re-deriving a stream replay it
// from the beginning, which the determinism of restarts depends on.
//
// The stream is registered with the scheduler so Snapshot/Restore can rewind
// it: the returned *rand.Rand draws from a position-counting wrapper whose
// output is bit-identical to rand.New(rand.NewSource(seed)).
func (s *Scheduler) RNG(name string) *rand.Rand {
	return s.RNGFromSeed(s.RNGSeed(name))
}

// RNGFromSeed returns a fresh registered stream for an already-derived seed
// (see RNGSeed). Callers that memoize derivations (simnet.Context) use it so
// their streams still participate in Snapshot/Restore.
func (s *Scheduler) RNGFromSeed(seed int64) *rand.Rand {
	src := newCountingSource(seed)
	s.sources = append(s.sources, src)
	return rand.New(src)
}

// RNGSeed returns the derived seed behind RNG(name). The derivation (an FNV
// hash of the name mixed with the scheduler seed) is memoized per name, so
// hot callers can skip the hashing; the stream contents are identical with
// or without the cache.
func (s *Scheduler) RNGSeed(name string) int64 {
	if d, ok := s.rngSeeds[name]; ok {
		return d
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	d := int64(h.Sum64()^uint64(s.seed)*0x9E3779B97F4A7C15) ^ s.seed
	s.rngSeeds[name] = d
	return d
}

// acquireSlot parks fn in a free slot and returns its index.
func (s *Scheduler) acquireSlot(fn func()) int32 {
	if s.free >= 0 {
		slot := s.free
		sl := &s.slots[slot]
		s.free = sl.next
		sl.fn = fn
		sl.next = -1
		return slot
	}
	s.slots = append(s.slots, eventSlot{fn: fn, next: -1})
	return int32(len(s.slots) - 1)
}

// releaseSlot retires a slot's current occupancy: the generation bump
// invalidates outstanding Timers and heap entries, and the slot joins the
// free list for reuse.
func (s *Scheduler) releaseSlot(slot int32) {
	sl := &s.slots[slot]
	sl.fn = nil
	sl.gen++
	sl.next = s.free
	s.free = slot
}

// less orders entries by (at, seq): time first, FIFO within an instant.
func (e heapEntry) less(o heapEntry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// push inserts an entry into the 4-ary min-heap.
func (s *Scheduler) push(e heapEntry) {
	q := append(s.heap, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	s.heap = q
}

// pop removes and returns the minimum entry.
func (s *Scheduler) pop() heapEntry {
	q := s.heap
	top := q[0]
	n := len(q) - 1
	last := q[n]
	s.heap = q[:n]
	if n > 0 {
		s.siftDown(last)
	}
	return top
}

// siftDown places e starting from the root, shifting smaller children up.
// A 4-ary layout halves the tree depth versus a binary heap and keeps the
// four children in one cache line, which is what buys the queue its
// throughput on the deep queues real experiments build.
func (s *Scheduler) siftDown(e heapEntry) {
	q := s.heap
	n := len(q)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c // index of the smallest child
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q[j].less(q[m]) {
				m = j
			}
		}
		if !q[m].less(e) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = e
}
