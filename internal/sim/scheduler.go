// Package sim provides a deterministic discrete-event simulation kernel.
//
// All STABL experiments run in virtual time: events are functions scheduled
// at a virtual instant and executed in (time, sequence) order by a single
// goroutine. A 400-second blockchain experiment therefore completes in
// milliseconds of wall-clock time and is reproducible bit-for-bit from its
// seed.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Scheduler is a discrete-event scheduler with a virtual clock.
//
// The zero value is not usable; construct one with New. Scheduler is not
// safe for concurrent use: the simulation is single-threaded by design,
// which is what makes runs deterministic.
type Scheduler struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	seed   int64
	fired  uint64
	halted bool
}

// New returns a Scheduler whose clock starts at zero. The seed parameterizes
// every random stream derived with RNG, so two schedulers built from the
// same seed replay identical executions.
func New(seed int64) *Scheduler {
	return &Scheduler{seed: seed}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Seed returns the seed the scheduler was created with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Fired reports how many events have been executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are currently queued.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Timer is a handle to a scheduled event. Stop cancels the event if it has
// not fired yet.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the cancellation prevented the
// event from firing (false when the event already fired or was stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Stopped reports whether the timer was cancelled or already fired.
func (t *Timer) Stopped() bool { return t == nil || t.ev == nil || t.ev.fn == nil }

// When returns the virtual instant the timer is (or was) scheduled for.
func (t *Timer) When() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// At schedules fn to run at virtual time at. Scheduling in the past (or at
// the present instant) runs the event at the current time but strictly after
// all events already queued for that time, preserving causal order.
func (s *Scheduler) At(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if at < s.now {
		at = s.now
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the earliest pending event. It reports whether an event was
// executed (false when the queue is empty or the scheduler was halted).
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 && !s.halted {
		ev, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			panic("sim: event queue corrupted")
		}
		if ev.fn == nil { // cancelled
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the virtual clock would pass
// deadline, then advances the clock to exactly deadline. Events scheduled at
// the deadline itself are executed.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for !s.halted && s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// Run executes events until the queue drains or the scheduler is halted.
// maxEvents bounds the number of executed events to guard against runaway
// event loops; it returns an error when the bound is hit.
func (s *Scheduler) Run(maxEvents uint64) error {
	var n uint64
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return fmt.Errorf("sim: run exceeded %d events at t=%s", maxEvents, s.now)
		}
	}
	return nil
}

// Halt stops the scheduler: Step, Run and RunUntil return without executing
// further events. Pending events remain queued.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt was called.
func (s *Scheduler) Halted() bool { return s.halted }

// RNG derives a deterministic random stream from the scheduler seed and a
// name. Streams with distinct names are statistically independent, and the
// same (seed, name) pair always yields the same stream, so adding a new
// consumer does not perturb existing ones.
func (s *Scheduler) RNG(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	derived := int64(h.Sum64()^uint64(s.seed)*0x9E3779B97F4A7C15) ^ s.seed
	return rand.New(rand.NewSource(derived))
}

// event is a single queue entry ordered by (at, seq).
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	idx int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: pushed non-event")
	}
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
