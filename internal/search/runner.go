package search

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"stabl/internal/core"
	"stabl/internal/scenario"
)

// Known axis names for Options.Axis.
const (
	// AxisCount sweeps the fault count f of a single-fault plan.
	AxisCount = "count"
	// AxisSlowBy sweeps the injected delay (seconds) of a slow fault.
	AxisSlowBy = "slowby"
	// AxisIntensity sweeps a scenario's degradation magnitudes (loss
	// rate, slow delay, jitter bound) via scenario.Spec.Scaled.
	AxisIntensity = "intensity"
)

// Options configure a tolerance-boundary search over one system.
type Options struct {
	// Base is the experiment template: system, seed, deployment and — for
	// the count/slowby axes — the fault plan. Its Scenario field must be
	// nil; scenario searches pass the spec separately so it can be scaled
	// and shrunk.
	Base core.Config
	// Scenario is the composed fault timeline for the intensity axis.
	Scenario *scenario.Spec
	// Axis is the swept scalar; Lo/Hi/Resolution come from the axis.
	Axis Axis
	// Threshold: a finite sensitivity score at or above it also counts as
	// failure. Zero means only liveness loss fails.
	Threshold float64
	// Shrink additionally minimizes the failing scenario found at the
	// boundary (intensity axis only).
	Shrink bool
	// Progress, when set, is called after every probe run.
	Progress func(x float64, fail bool, cmp *core.Comparison)
}

// ProbeReport is one probe of the search with its measured score.
type ProbeReport struct {
	X        float64 `json:"x"`
	Fail     bool    `json:"fail"`
	Score    float64 `json:"score"`
	Infinite bool    `json:"infinite"`
}

// Result is the outcome of a boundary search.
type Result struct {
	System    string  `json:"system"`
	Seed      int64   `json:"seed"`
	Axis      string  `json:"axis"`
	Scenario  string  `json:"scenario,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Boundary bracket, as in Boundary.
	HavePass  bool    `json:"havePass"`
	HaveFail  bool    `json:"haveFail"`
	LastPass  float64 `json:"lastPass"`
	FirstFail float64 `json:"firstFail"`
	// Probes lists every boundary probe in evaluation order.
	Probes []ProbeReport `json:"probes"`
	// Shrunk is the minimal failing scenario at the FirstFail intensity
	// (only with Options.Shrink on a bracketed intensity search).
	Shrunk *ShrinkResult `json:"shrunk,omitempty"`
	// Runs counts every simulation executed, baseline included.
	Runs int `json:"runs"`
}

// Run executes the boundary search: one shared baseline run, then a
// bisection of the axis, each probe scored against the baseline exactly as a
// campaign cell is, then (optionally) the scenario shrink at the boundary.
func Run(opts Options) (*Result, error) {
	base := opts.Base
	if base.System == nil {
		return nil, fmt.Errorf("search: options need a System")
	}
	if base.Scenario != nil {
		return nil, fmt.Errorf("search: set Options.Scenario (the spec), not Base.Scenario")
	}
	switch opts.Axis.Name {
	case AxisCount:
		opts.Axis.Integer = true
		if !base.Fault.Kind.NeedsNodes() {
			return nil, fmt.Errorf("search: axis count needs a node-affecting fault, got %s", base.Fault.Kind)
		}
	case AxisSlowBy:
		if base.Fault.Kind != core.FaultSlow {
			return nil, fmt.Errorf("search: axis slowby needs fault slow, got %s", base.Fault.Kind)
		}
	case AxisIntensity:
		if opts.Scenario == nil {
			return nil, fmt.Errorf("search: axis intensity needs a scenario")
		}
		if base.Fault.Kind != core.FaultNone {
			return nil, fmt.Errorf("search: axis intensity is exclusive with a fault plan, got %s", base.Fault.Kind)
		}
	default:
		return nil, fmt.Errorf("search: unknown axis %q (valid: %s|%s|%s)",
			opts.Axis.Name, AxisCount, AxisSlowBy, AxisIntensity)
	}

	res := &Result{
		System:    base.System.Name(),
		Seed:      base.Seed,
		Axis:      opts.Axis.Name,
		Threshold: opts.Threshold,
	}
	if opts.Scenario != nil {
		res.Scenario = opts.Scenario.Name
	}

	baseline, err := core.Run(core.BaselineConfig(base))
	if err != nil {
		return nil, fmt.Errorf("search: baseline: %w", err)
	}
	res.Runs++

	score := func(cfg core.Config) (bool, *core.Comparison, error) {
		cmp, err := core.CompareWithBaseline(cfg, baseline)
		if err != nil {
			return false, nil, err
		}
		res.Runs++
		fail := cmp.Score.Infinite ||
			(opts.Threshold > 0 && cmp.Score.Value >= opts.Threshold)
		return fail, cmp, nil
	}
	probe := func(x float64) (bool, error) {
		cfg, err := applyAxis(base, opts.Scenario, opts.Axis.Name, x)
		if err != nil {
			return false, err
		}
		fail, cmp, err := score(cfg)
		if err != nil {
			return false, err
		}
		res.Probes = append(res.Probes, ProbeReport{
			X: x, Fail: fail, Score: cmp.Score.Value, Infinite: cmp.Score.Infinite,
		})
		if opts.Progress != nil {
			opts.Progress(x, fail, cmp)
		}
		return fail, nil
	}

	b, err := Bisect(opts.Axis, probe)
	if err != nil {
		return nil, err
	}
	res.HavePass, res.HaveFail = b.HavePass, b.HaveFail
	res.LastPass, res.FirstFail = b.LastPass, b.FirstFail

	if opts.Shrink && opts.Axis.Name == AxisIntensity && b.HaveFail {
		failing := opts.Scenario.Scaled(b.FirstFail)
		pool := withDefaultsPool(base)
		shrunk, err := Shrink(failing, pool, func(spec scenario.Spec) (bool, error) {
			cfg := base
			sc, err := spec.Build()
			if err != nil {
				return false, err
			}
			cfg.Scenario = sc
			fail, _, err := score(cfg)
			return fail, err
		})
		if err != nil {
			return nil, err
		}
		res.Shrunk = shrunk
	}
	return res, nil
}

// applyAxis materializes the config for one probe value.
func applyAxis(base core.Config, spec *scenario.Spec, axis string, x float64) (core.Config, error) {
	cfg := base
	switch axis {
	case AxisCount:
		cfg.Fault.Count = int(math.Round(x))
	case AxisSlowBy:
		cfg.Fault.SlowBy = time.Duration(x * float64(time.Second))
	case AxisIntensity:
		scaled := spec.Scaled(x)
		sc, err := scaled.Build()
		if err != nil {
			return cfg, err
		}
		cfg.Scenario = sc
	}
	return cfg, nil
}

// withDefaultsPool resolves the fault-eligible pool size (validators that
// serve no clients) with the config's defaults applied.
func withDefaultsPool(cfg core.Config) int {
	validators, clients := cfg.Validators, cfg.Clients
	if validators == 0 {
		validators = 10
	}
	if clients == 0 {
		clients = 5
	}
	return validators - clients
}

// WriteJSON encodes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the result as a human-readable report.
func (r *Result) WriteText(w io.Writer) error {
	env := r.Axis
	if r.Scenario != "" {
		env = fmt.Sprintf("scenario %s, axis %s", r.Scenario, r.Axis)
	}
	fmt.Fprintf(w, "search: %s seed=%d (%s)\n", r.System, r.Seed, env)
	for _, p := range r.Probes {
		verdict := "pass"
		if p.Fail {
			verdict = "FAIL"
		}
		scoreStr := fmt.Sprintf("%.4f", p.Score)
		if p.Infinite {
			scoreStr = "inf"
		}
		fmt.Fprintf(w, "  probe %s=%-8g score=%-8s %s\n", r.Axis, p.X, scoreStr, verdict)
	}
	switch {
	case r.HavePass && r.HaveFail:
		fmt.Fprintf(w, "boundary: last pass %s=%g, first fail %s=%g (%d runs)\n",
			r.Axis, r.LastPass, r.Axis, r.FirstFail, r.Runs)
	case r.HaveFail:
		fmt.Fprintf(w, "boundary: fails already at %s=%g, below the searched range (%d runs)\n",
			r.Axis, r.FirstFail, r.Runs)
	default:
		fmt.Fprintf(w, "boundary: no failure up to %s=%g (%d runs)\n", r.Axis, r.LastPass, r.Runs)
	}
	if r.Shrunk != nil {
		fmt.Fprintf(w, "shrunk: %d action(s) dropped, %d node(s) removed, %.0fs of windows cut (%d probes)\n",
			r.Shrunk.DroppedActions, r.Shrunk.ShrunkNodes, r.Shrunk.ShortenedSec, r.Shrunk.Probes)
		fmt.Fprintf(w, "minimal failing scenario:\n")
		enc := json.NewEncoder(w)
		enc.SetIndent("  ", "  ")
		fmt.Fprint(w, "  ")
		if err := enc.Encode(r.Shrunk.Spec); err != nil {
			return err
		}
	}
	return nil
}
