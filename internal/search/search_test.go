package search

import (
	"testing"

	"stabl/internal/scenario"
)

func TestBisectBracketsIntegerBoundary(t *testing.T) {
	probes := 0
	b, err := Bisect(Axis{Name: "count", Lo: 1, Hi: 8, Integer: true}, func(x float64) (bool, error) {
		probes++
		return x >= 5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Bracketed() || b.LastPass != 4 || b.FirstFail != 5 {
		t.Fatalf("boundary = %+v, want lastPass=4 firstFail=5", b)
	}
	if probes != len(b.Probes) {
		t.Fatalf("probe log has %d entries, ran %d", len(b.Probes), probes)
	}
	if probes > 5 {
		t.Fatalf("bisection used %d probes over range 8, want ≤ 5", probes)
	}
}

func TestBisectFloatResolution(t *testing.T) {
	b, err := Bisect(Axis{Name: "intensity", Lo: 0, Hi: 4, Resolution: 0.25}, func(x float64) (bool, error) {
		return x >= 1.3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Bracketed() {
		t.Fatalf("boundary = %+v, want bracketed", b)
	}
	if b.FirstFail-b.LastPass > 0.25 {
		t.Fatalf("bracket [%g, %g] wider than resolution", b.LastPass, b.FirstFail)
	}
	if b.LastPass >= 1.3 || b.FirstFail < 1.3 {
		t.Fatalf("bracket [%g, %g] does not contain 1.3", b.LastPass, b.FirstFail)
	}
}

func TestBisectOneSided(t *testing.T) {
	allFail, err := Bisect(Axis{Name: "count", Lo: 1, Hi: 8, Integer: true}, func(float64) (bool, error) {
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allFail.HavePass || !allFail.HaveFail || allFail.FirstFail != 1 {
		t.Fatalf("all-fail boundary = %+v", allFail)
	}
	if len(allFail.Probes) != 1 {
		t.Fatalf("all-fail used %d probes, want 1", len(allFail.Probes))
	}

	nonePass, err := Bisect(Axis{Name: "count", Lo: 1, Hi: 8, Integer: true}, func(float64) (bool, error) {
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !nonePass.HavePass || nonePass.HaveFail || nonePass.LastPass != 8 {
		t.Fatalf("none-fail boundary = %+v", nonePass)
	}
}

func TestBisectRejectsEmptyRange(t *testing.T) {
	if _, err := Bisect(Axis{Name: "x", Lo: 3, Hi: 3}, func(float64) (bool, error) {
		return false, nil
	}); err == nil {
		t.Fatal("want error for hi <= lo")
	}
}

// shrinkFixture: a three-action scenario where only the loss action with at
// least 2 nodes and at least 20 s of window causes the (synthetic) failure.
func shrinkFixture() scenario.Spec {
	return scenario.Spec{
		Name: "fixture",
		Actions: []scenario.ActionSpec{
			{Op: "jitter", AtSec: 10, Nodes: "all", JitterSec: 1, UntilSec: 90},
			{Op: "loss", AtSec: 10, Nodes: "all", Rate: 0.05, UntilSec: 90},
			{Op: "slow", AtSec: 20, Nodes: "random(2)", DelaySec: 5, UntilSec: 60},
		},
	}
}

func fixtureFails(spec scenario.Spec) (bool, error) {
	for _, a := range spec.Actions {
		if a.Op != "loss" {
			continue
		}
		size, ok := nodeSetSize(a.Nodes, 5)
		if !ok {
			continue
		}
		if size >= 2 && a.UntilSec-a.AtSec >= 20 {
			return true, nil
		}
	}
	return false, nil
}

func TestShrinkFindsMinimalScenario(t *testing.T) {
	res, err := Shrink(shrinkFixture(), 5, fixtureFails)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spec.Actions) != 1 {
		t.Fatalf("shrunk to %d actions, want 1: %+v", len(res.Spec.Actions), res.Spec.Actions)
	}
	a := res.Spec.Actions[0]
	if a.Op != "loss" {
		t.Fatalf("kept op %s, want loss", a.Op)
	}
	if a.Nodes != "random(2)" {
		t.Fatalf("kept nodes %q, want random(2)", a.Nodes)
	}
	if got := a.UntilSec - a.AtSec; got != 20 {
		t.Fatalf("kept window %gs, want 20", got)
	}
	if res.DroppedActions != 2 {
		t.Fatalf("dropped %d actions, want 2", res.DroppedActions)
	}
	if res.ShrunkNodes != 3 {
		t.Fatalf("shrunk %d nodes, want 3 (all=5 → 2)", res.ShrunkNodes)
	}
	if res.ShortenedSec != 60 {
		t.Fatalf("shortened %gs, want 60 (80 → 20)", res.ShortenedSec)
	}
	// The witnessed minimum still fails and still builds.
	if fail, _ := fixtureFails(res.Spec); !fail {
		t.Fatal("shrunk spec no longer fails")
	}
	if _, err := res.Spec.Build(); err != nil {
		t.Fatalf("shrunk spec no longer builds: %v", err)
	}
}

func TestShrinkRejectsPassingScenario(t *testing.T) {
	spec := shrinkFixture()
	if _, err := Shrink(spec, 5, func(scenario.Spec) (bool, error) {
		return false, nil
	}); err == nil {
		t.Fatal("want error when the input scenario does not fail")
	}
}

func TestNodeSetHelpers(t *testing.T) {
	cases := []struct {
		sel  string
		pool int
		size int
		ok   bool
	}{
		{"all", 5, 5, true},
		{"random(3)", 5, 3, true},
		{"7,8,9", 5, 3, true},
		{"rolling(2, 30)", 5, 0, false},
	}
	for _, c := range cases {
		size, ok := nodeSetSize(c.sel, c.pool)
		if size != c.size || ok != c.ok {
			t.Errorf("nodeSetSize(%q) = (%d, %v), want (%d, %v)", c.sel, size, ok, c.size, c.ok)
		}
	}
	if got := shrunkNodes("all", 2); got != "random(2)" {
		t.Errorf("shrunkNodes(all, 2) = %q", got)
	}
	if got := shrunkNodes("7,8,9", 2); got != "7,8" {
		t.Errorf("shrunkNodes(7,8,9, 2) = %q", got)
	}
	if got := shrunkNodes("rolling(2, 30)", 1); got != "" {
		t.Errorf("shrunkNodes(rolling) = %q, want empty", got)
	}
}
