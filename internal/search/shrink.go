package search

import (
	"fmt"
	"math"
	"strings"

	"stabl/internal/scenario"
)

// FailFunc reports whether a candidate scenario spec still fails. Shrink
// only keeps mutations whose candidate fails, so the returned spec is always
// a witnessed failure.
type FailFunc func(spec scenario.Spec) (bool, error)

// ShrinkResult is the outcome of a scenario minimization.
type ShrinkResult struct {
	// Spec is the minimal failing spec found.
	Spec scenario.Spec `json:"spec"`
	// Probes counts the candidate runs evaluated (including the initial
	// failure check).
	Probes int `json:"probes"`
	// DroppedActions is how many timeline actions the minimization
	// removed; ShortenedSec how much total action-window time it cut;
	// ShrunkNodes how many node-set members it removed.
	DroppedActions int     `json:"droppedActions"`
	ShortenedSec   float64 `json:"shortenedSec"`
	ShrunkNodes    int     `json:"shrunkNodes"`
}

// Shrink minimizes a failing scenario, delta-debugging style: it drops whole
// actions, shrinks node sets and shortens action windows, keeping each
// mutation only when the smaller spec still fails. pool is the size of the
// fault-eligible node pool (validators minus clients) that "all" and
// "random(k)" draw from. The result is a locally minimal failing spec: no
// single remaining action can be dropped, and each surviving action's node
// count and window are at their bisection-resolved minimum.
func Shrink(spec scenario.Spec, pool int, fails FailFunc) (*ShrinkResult, error) {
	res := &ShrinkResult{}
	eval := func(s scenario.Spec) (bool, error) {
		if _, err := s.Build(); err != nil {
			// An invalid mutation is simply not a candidate.
			return false, nil
		}
		res.Probes++
		return fails(s)
	}

	ok, err := eval(spec)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("search: scenario %q does not fail, nothing to shrink", spec.Name)
	}

	// Phase 1: drop whole actions to a fixpoint. First-to-last order keeps
	// the result deterministic.
	cur := cloneSpec(spec)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Actions); i++ {
			cand := cloneSpec(cur)
			cand.Actions = append(cand.Actions[:i], cand.Actions[i+1:]...)
			fail, err := eval(cand)
			if err != nil {
				return nil, err
			}
			if fail {
				cur = cand
				res.DroppedActions++
				changed = true
				i--
			}
		}
	}

	// Phase 2: shrink each action's node set. "all" and "random(k)" shrink
	// to the minimal failing random(j); explicit lists drop members from
	// the tail. Monotonicity (more nodes ≥ more severe) makes this a
	// bisection.
	for i := range cur.Actions {
		size, ok := nodeSetSize(cur.Actions[i].Nodes, pool)
		if !ok || size <= 1 {
			continue
		}
		minFail, probed, err := minimalNodes(cur, i, size, eval)
		if err != nil {
			return nil, err
		}
		if probed && minFail < size {
			cur.Actions[i].Nodes = shrunkNodes(cur.Actions[i].Nodes, minFail)
			res.ShrunkNodes += size - minFail
		}
	}

	// Phase 3: shorten each action's window by bisecting the minimal
	// failing duration, at whole-second resolution.
	for i := range cur.Actions {
		a := cur.Actions[i]
		if a.UntilSec <= a.AtSec {
			continue
		}
		full := a.UntilSec - a.AtSec
		lo, hi := 0.0, full // invariant: hi fails (witnessed), lo untested/passing
		for hi-lo > 1 {
			mid := math.Floor(lo + (hi-lo)/2)
			if mid <= lo || mid >= hi {
				break
			}
			cand := cloneSpec(cur)
			cand.Actions[i].UntilSec = a.AtSec + mid
			fail, err := eval(cand)
			if err != nil {
				return nil, err
			}
			if fail {
				hi = mid
			} else {
				lo = mid
			}
		}
		if hi < full {
			cur.Actions[i].UntilSec = a.AtSec + hi
			res.ShortenedSec += full - hi
		}
	}

	res.Spec = cur
	return res, nil
}

// minimalNodes bisects the smallest failing node count for action i,
// assuming counts ≥ the original are failing. probed is false when the
// selector grammar cannot express a shrunken set.
func minimalNodes(spec scenario.Spec, i, size int, eval func(scenario.Spec) (bool, error)) (int, bool, error) {
	if shrunkNodes(spec.Actions[i].Nodes, 1) == "" {
		return size, false, nil
	}
	lo, hi := 0, size // invariant: hi fails (the current spec), lo passes/untested
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		cand := cloneSpec(spec)
		cand.Actions[i].Nodes = shrunkNodes(cand.Actions[i].Nodes, mid)
		fail, err := eval(cand)
		if err != nil {
			return 0, false, err
		}
		if fail {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// nodeSetSize resolves how many nodes the selector targets, given the
// fault-eligible pool size. Rolling sets are not shrunk (their size is a
// group size, not a severity).
func nodeSetSize(sel string, pool int) (int, bool) {
	ns, err := scenario.ParseNodeSet(sel)
	if err != nil || ns.Rolling() {
		return 0, false
	}
	s := strings.TrimSpace(sel)
	switch {
	case s == "all":
		if pool < 1 {
			return 0, false
		}
		return pool, true
	case strings.HasPrefix(s, "random("):
		var k int
		fmt.Sscanf(s, "random(%d)", &k)
		return k, k > 0
	default:
		return len(strings.Split(s, ",")), true
	}
}

// shrunkNodes rewrites the selector to target k nodes: random sets (and
// "all") become random(k), explicit lists keep their first k ids. Returns ""
// when the selector cannot shrink.
func shrunkNodes(sel string, k int) string {
	s := strings.TrimSpace(sel)
	switch {
	case s == "all" || strings.HasPrefix(s, "random("):
		return fmt.Sprintf("random(%d)", k)
	case strings.HasPrefix(s, "rolling("):
		return ""
	default:
		ids := strings.Split(s, ",")
		if k >= len(ids) {
			return s
		}
		return strings.Join(ids[:k], ",")
	}
}

func cloneSpec(s scenario.Spec) scenario.Spec {
	out := s
	out.Actions = append([]scenario.ActionSpec(nil), s.Actions...)
	return out
}
