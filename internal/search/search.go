// Package search locates a system's tolerance boundary: the smallest fault
// magnitude along one scalar axis — fault count, slow delay, scenario
// intensity — at which the system stops passing (loses liveness, or exceeds
// a sensitivity-score threshold). The paper measures sensitivity at
// hand-picked fault points; Bisect turns every such point into the endpoint
// of an adaptive probe sequence that converges on the pass/fail frontier
// with O(log range) experiment runs. The companion shrinker (see shrink.go)
// then reduces a failing composite scenario to a minimal failing spec,
// delta-debugging style.
package search

import (
	"fmt"
	"math"
)

// Probe evaluates the experiment at one axis value and reports whether it
// fails. Probes are assumed monotone over the axis: once the magnitude is
// large enough to fail, every larger magnitude fails too. Bisect still
// terminates on a non-monotone probe, but then only brackets *a* boundary,
// not the first one.
type Probe func(x float64) (fail bool, err error)

// Axis describes the swept scalar.
type Axis struct {
	// Name labels the axis in results ("count", "slowby", "intensity").
	Name string
	// Lo and Hi bracket the sweep; Lo is expected to pass and Hi to fail.
	Lo, Hi float64
	// Integer snaps every probe to a whole number (fault counts).
	Integer bool
	// Resolution is the bracket width at which bisection stops; 1 for
	// integer axes, (Hi-Lo)/64 otherwise when zero.
	Resolution float64
}

func (ax Axis) withDefaults() (Axis, error) {
	if ax.Hi <= ax.Lo {
		return ax, fmt.Errorf("search: axis %s: hi (%g) must exceed lo (%g)", ax.Name, ax.Hi, ax.Lo)
	}
	if ax.Integer {
		ax.Lo = math.Round(ax.Lo)
		ax.Hi = math.Round(ax.Hi)
		if ax.Resolution < 1 {
			ax.Resolution = 1
		}
	} else if ax.Resolution <= 0 {
		ax.Resolution = (ax.Hi - ax.Lo) / 64
	}
	return ax, nil
}

// ProbeResult is one evaluated point of the search.
type ProbeResult struct {
	X    float64 `json:"x"`
	Fail bool    `json:"fail"`
}

// Boundary is the bracketed pass/fail frontier.
type Boundary struct {
	Axis string `json:"axis"`
	// HavePass and HaveFail report which sides of the frontier were
	// observed inside [Lo, Hi]: both true means LastPass < FirstFail
	// bracket the boundary; HavePass alone means nothing failed up to Hi;
	// HaveFail alone means even Lo fails.
	HavePass bool `json:"havePass"`
	HaveFail bool `json:"haveFail"`
	// LastPass is the largest magnitude observed to pass, FirstFail the
	// smallest observed to fail.
	LastPass  float64 `json:"lastPass"`
	FirstFail float64 `json:"firstFail"`
	// Probes lists every evaluated point in evaluation order.
	Probes []ProbeResult `json:"probes"`
}

// Bracketed reports whether both sides of the frontier were observed.
func (b *Boundary) Bracketed() bool { return b.HavePass && b.HaveFail }

// Bisect locates the pass/fail boundary of probe over ax. It first evaluates
// the endpoints: when even Lo fails (or nothing up to Hi does) it returns the
// one-sided result instead of probing further. Each probe value is evaluated
// at most once.
func Bisect(ax Axis, probe Probe) (*Boundary, error) {
	ax, err := ax.withDefaults()
	if err != nil {
		return nil, err
	}
	b := &Boundary{Axis: ax.Name}
	seen := make(map[float64]bool)
	eval := func(x float64) (bool, error) {
		if ax.Integer {
			x = math.Round(x)
		}
		if fail, ok := seen[x]; ok {
			return fail, nil
		}
		fail, err := probe(x)
		if err != nil {
			return false, fmt.Errorf("search: probe %s=%g: %w", ax.Name, x, err)
		}
		seen[x] = fail
		b.Probes = append(b.Probes, ProbeResult{X: x, Fail: fail})
		return fail, nil
	}

	loFails, err := eval(ax.Lo)
	if err != nil {
		return nil, err
	}
	if loFails {
		b.HaveFail = true
		b.FirstFail = ax.Lo
		return b, nil
	}
	hiFails, err := eval(ax.Hi)
	if err != nil {
		return nil, err
	}
	if !hiFails {
		b.HavePass = true
		b.LastPass = ax.Hi
		return b, nil
	}

	lo, hi := ax.Lo, ax.Hi // invariant: lo passes, hi fails
	for hi-lo > ax.Resolution {
		mid := lo + (hi-lo)/2
		if ax.Integer {
			mid = math.Floor(mid)
			if mid <= lo || mid >= hi {
				break
			}
		}
		fail, err := eval(mid)
		if err != nil {
			return nil, err
		}
		if fail {
			hi = mid
		} else {
			lo = mid
		}
	}
	b.HavePass, b.HaveFail = true, true
	b.LastPass, b.FirstFail = lo, hi
	return b, nil
}
