package campaign

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"stabl/internal/metrics"
)

// mixedSpec sweeps both classic faults and scenarios, so adaptive mode
// exercises both family shapes: fault families varying the count, scenario
// families varying the intensity.
func mixedSpec() Spec {
	spec := fastSpec()
	spec.Scenarios = scenarioSpec().Scenarios
	spec.Intensities = []float64{1, 2}
	return spec
}

// encodeResult renders the result JSON with the checkpoint stats stripped:
// grid mode has none, and byte-identity claims cover the measurements.
func encodeResult(t *testing.T, res *Result) []byte {
	t.Helper()
	cp := res.Checkpoint
	res.Checkpoint = nil
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	res.Checkpoint = cp
	return buf.Bytes()
}

// TestAdaptiveMatchesGridByteIdentical is the tentpole determinism check:
// mode "adaptive" must produce byte-identical results to mode "grid", at any
// worker count, while serving sibling cells from forked checkpoints instead
// of full replays.
func TestAdaptiveMatchesGridByteIdentical(t *testing.T) {
	run := func(mode string, workers int) *Result {
		t.Helper()
		spec := mixedSpec()
		spec.Mode = mode
		res, err := Run(context.Background(), spec, Options{Workers: workers, Resolve: resolveStubs})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	grid := encodeResult(t, run(ModeGrid, 4))
	adaptiveSeq := run(ModeAdaptive, 1)
	adaptivePar := run(ModeAdaptive, 8)

	if got := encodeResult(t, adaptiveSeq); !bytes.Equal(got, grid) {
		t.Fatalf("adaptive workers=1 diverged from grid:\n%s\nvs\n%s", got, grid)
	}
	if got := encodeResult(t, adaptivePar); !bytes.Equal(got, grid) {
		t.Fatalf("adaptive workers=8 diverged from grid:\n%s\nvs\n%s", got, grid)
	}

	// 8 fault cells: {crash, transient} x 2 counts x 2 seeds -> 4 families
	// of 2 members. 8 scenario cells: {blip, drizzle} x 2 intensities x
	// 2 seeds -> 4 families of 2. Each family pays one full prefix+suffix
	// run (the representative) and forks the sibling.
	for _, res := range []*Result{adaptiveSeq, adaptivePar} {
		cp := res.Checkpoint
		if cp == nil {
			t.Fatal("adaptive result carries no checkpoint stats")
		}
		if cp.Families != 8 || cp.ForkServed != 8 || cp.FullReplays != 8 {
			t.Fatalf("checkpoint stats = %+v, want 8 families / 8 forkServed / 8 fullReplays", cp)
		}
		if cp.WallSaved <= 0 {
			t.Fatalf("wall saved = %v, want positive", cp.WallSaved)
		}
	}
	if run(ModeGrid, 4).Checkpoint != nil {
		t.Fatal("grid result carries checkpoint stats")
	}
}

// TestAdaptiveMetricsIdenticalToGrid extends the byte-identity claim to the
// observability layer: the cloned-and-restamped recorder a forked member
// hands out must match the from-scratch recorder of the same cell.
func TestAdaptiveMetricsIdenticalToGrid(t *testing.T) {
	collect := func(mode string, workers int) map[string][]byte {
		t.Helper()
		spec := mixedSpec()
		spec.Mode = mode
		dumps := make(map[string][]byte)
		var mu sync.Mutex
		res, err := Run(context.Background(), spec, Options{
			Workers: workers,
			Resolve: resolveStubs,
			Metrics: func(cell Cell, rec *metrics.Recorder) {
				var buf bytes.Buffer
				if err := rec.WriteJSONL(&buf); err != nil {
					t.Error(err)
					return
				}
				if err := rec.WriteCSV(&buf); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				dumps[cell.Slug()] = buf.Bytes()
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedCells != 0 {
			t.Fatalf("failed cells = %d", res.FailedCells)
		}
		return dumps
	}

	grid := collect(ModeGrid, 4)
	adaptive := collect(ModeAdaptive, 8)
	if len(grid) != 16 || len(adaptive) != 16 {
		t.Fatalf("dumps = %d grid / %d adaptive, want 16 each", len(grid), len(adaptive))
	}
	for slug, want := range grid {
		got, ok := adaptive[slug]
		if !ok {
			t.Errorf("cell %s missing from adaptive dumps", slug)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cell %s metrics diverged between grid and adaptive", slug)
		}
	}
}

// TestAdaptivePanicFallsBackToReplay: a model panic inside a forked
// continuation corrupts the live object graph, so the surviving family
// members must fall back to full replays — and every cell must still report
// exactly what grid mode reports.
func TestAdaptivePanicFallsBackToReplay(t *testing.T) {
	base := fastSpec()
	base.Systems = []string{"Panicky"}
	base.Faults = []string{"crash"}
	base.Seeds = []int64{1}

	run := func(mode string) *Result {
		t.Helper()
		spec := base
		spec.Mode = mode
		res, err := Run(context.Background(), spec, Options{Workers: 2, Resolve: resolveStubs})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	grid := run(ModeGrid)
	adaptive := run(ModeAdaptive)
	if !bytes.Equal(encodeResult(t, adaptive), encodeResult(t, grid)) {
		t.Fatal("adaptive diverged from grid on a panicking family")
	}
	if adaptive.FailedCells != 2 {
		t.Fatalf("failed cells = %d, want 2", adaptive.FailedCells)
	}
	for _, c := range adaptive.Cells {
		if !strings.Contains(c.Error, "accounts hash mismatch") {
			t.Fatalf("cell error = %q", c.Error)
		}
	}
	// The stub panics when the crash halts it, right after the checkpoint:
	// the representative's continuation fails, and the one sibling replays
	// from scratch instead of reusing the corrupted graph.
	cp := adaptive.Checkpoint
	if cp == nil || cp.Families != 1 || cp.ForkServed != 0 || cp.FullReplays != 2 {
		t.Fatalf("checkpoint stats = %+v, want 1 family / 0 forkServed / 2 fullReplays", cp)
	}
}

// TestGroupFamilies pins the family grouping rules: eligible cells group by
// (system, seed, fault kind or scenario, inject, outage); secure-client
// cells and foreign coordinates stay singletons; grid order is preserved.
func TestGroupFamilies(t *testing.T) {
	cells := []Cell{
		{System: "A", Fault: "crash", Count: 3, InjectSec: 15, Seed: 1},
		{System: "A", Fault: "secure-client", Seed: 1},
		{System: "A", Fault: "crash", Count: 4, InjectSec: 15, Seed: 1},
		{System: "A", Fault: "crash", Count: 3, InjectSec: 20, Seed: 1},
		{System: "A", Scenario: "blip", Intensity: 1, Seed: 1},
		{System: "A", Fault: "crash", Count: 3, InjectSec: 15, Seed: 2},
		{System: "A", Scenario: "blip", Intensity: 2, Seed: 1},
		{System: "B", Fault: "crash", Count: 3, InjectSec: 15, Seed: 1},
	}
	units := groupFamilies(cells)
	want := [][]int{{0, 2}, {1}, {3}, {4, 6}, {5}, {7}}
	if len(units) != len(want) {
		t.Fatalf("units = %v, want %v", units, want)
	}
	for u := range units {
		if len(units[u]) != len(want[u]) {
			t.Fatalf("unit %d = %v, want %v", u, units[u], want[u])
		}
		for j := range units[u] {
			if units[u][j] != want[u][j] {
				t.Fatalf("unit %d = %v, want %v", u, units[u], want[u])
			}
		}
	}
}
