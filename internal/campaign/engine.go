package campaign

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"stabl/internal/chain"
	"stabl/internal/core"
	"stabl/internal/metrics"
	"stabl/internal/pool"
	"stabl/internal/scenario"
)

// Options configure a campaign run. They are deliberately not part of the
// JSON Spec: worker count and progress reporting change how fast a campaign
// runs, never what it measures.
type Options struct {
	// Workers bounds how many cells execute concurrently; GOMAXPROCS
	// when zero or negative.
	Workers int
	// Resolve maps a system name to a fresh model instance; required.
	// It must be safe for concurrent use (stabl.SystemByName is).
	Resolve func(string) (chain.System, error)
	// Progress, when set, is called after every cell completes, from
	// worker goroutines but never concurrently. done counts completed
	// cells, total is the campaign size.
	Progress func(done, total int, res *CellResult)
	// Metrics, when set, attaches a fresh metrics.Recorder to every
	// cell's altered run and hands it over once the cell completes
	// without error. Called from worker goroutines, possibly
	// concurrently — the callback must be safe for concurrent use
	// (writing one file per Cell.Slug is). Each cell gets its own
	// recorder, so per-cell output stays byte-identical at any worker
	// count.
	Metrics func(cell Cell, rec *metrics.Recorder)
	// MetricsInterval is the recorders' aggregation interval;
	// metrics.DefaultInterval when zero.
	MetricsInterval time.Duration
}

// Run expands the spec and executes every cell on the worker pool. A cell
// whose model run panics (e.g. Solana's EAH panic path) or whose config is
// invalid is reported as a failed cell; only a nil Resolve, an invalid
// spec or an unknown system/fault name fail the campaign itself. Cancelling
// ctx stops scheduling new cells; already-started cells finish and the
// partial result is still aggregated and returned.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	if opts.Resolve == nil {
		return nil, fmt.Errorf("campaign: Options.Resolve is required")
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	cells, err := expand(spec, opts.Resolve)
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("campaign: spec expands to zero cells")
	}

	baselines := newBaselineCache()
	results := make([]*CellResult, len(cells))
	progress := &progressTracker{total: len(cells), fn: opts.Progress}

	var checkpoint *CheckpointStats
	if spec.Mode == ModeAdaptive {
		checkpoint = runAdaptive(ctx, spec, cells, opts, baselines, results, progress)
	} else {
		errs := pool.ForEach(ctx, len(cells), opts.Workers, func(i int) error {
			res := runCell(spec, cells[i], opts, baselines)
			results[i] = res
			progress.report(res)
			return nil
		})
		// runCell captures its own panics, so pool errors are cancellation
		// (skipped cells) or a panic in the bookkeeping above; either way
		// the cell failed without a measurement.
		for i, err := range errs {
			if err != nil {
				results[i] = &CellResult{Cell: cells[i], Error: err.Error()}
			}
		}
	}
	res := aggregate(spec, results)
	res.Checkpoint = checkpoint
	return res, nil
}

// progressTracker serializes per-cell progress callbacks across workers.
type progressTracker struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int, res *CellResult)
}

func (p *progressTracker) report(res *CellResult) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(p.done, p.total, res)
	p.mu.Unlock()
}

// Validate applies defaults, validates the spec and expands its grid
// without executing anything, returning how many cells it would run. Every
// scenario is additionally compiled against the spec's deployment, so node
// sets that exceed the fault-eligible pool fail at lint time, not per cell.
func Validate(spec Spec, resolve func(string) (chain.System, error)) (int, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return 0, err
	}
	validators := spec.Base.Validators
	if validators == 0 {
		validators = 10
	}
	clients := spec.Base.Clients
	if clients == 0 {
		clients = 5
	}
	for _, sc := range spec.Scenarios {
		built, err := sc.Build()
		if err != nil {
			return 0, err
		}
		// Range checks do not depend on the drawn values, any source works.
		_, err = built.Compile(scenario.Env{
			Validators: validators,
			Clients:    clients,
			//stabl:nodet globalrand -- validation-only compile: drawn values are discarded, no run consumes this stream
			RNG: func(string) *rand.Rand { return rand.New(rand.NewSource(1)) },
		})
		if err != nil {
			return 0, err
		}
	}
	cells, err := expand(spec, resolve)
	if err != nil {
		return 0, err
	}
	if len(cells) == 0 {
		return 0, fmt.Errorf("campaign: spec expands to zero cells")
	}
	return len(cells), nil
}

// cellConfig materializes one cell's core config from the spec's deployment
// template and the cell coordinate.
func cellConfig(spec Spec, cell Cell, resolve func(string) (chain.System, error)) (core.Config, error) {
	cellSpec := spec.Base
	cellSpec.System = cell.System
	cellSpec.Seed = cell.Seed
	cellSpec.CommitteeSize = cell.CommitteeSize
	// The cell sweeps the topology name only; the template's overlay tuning
	// (fanout, bucket size, …) applies to every swept topology alike.
	cellSpec.Overlay.Topology = cell.Overlay
	if cell.Scenario != "" {
		sc, ok := spec.scenarioByName(cell.Scenario)
		if !ok {
			return core.Config{}, fmt.Errorf("campaign: unknown scenario %q", cell.Scenario)
		}
		scaled := sc.Scaled(cell.Intensity)
		cellSpec.Scenario = &scaled
		cellSpec.Fault = core.FaultSpec{}
	} else {
		cellSpec.Scenario = nil
		cellSpec.Fault = core.FaultSpec{
			Kind:       cell.Fault,
			Count:      cell.Count,
			InjectSec:  cell.InjectSec,
			RecoverSec: cell.InjectSec + cell.OutageSec,
			SlowBySec:  cell.SlowBySec,
		}
	}
	return cellSpec.Config(resolve)
}

// scoreCell digests a comparison into the cell's measurement fields.
func scoreCell(res *CellResult, cell Cell, cmp *core.Comparison) {
	res.Score = cmp.Score.Value
	res.Infinite = cmp.Score.Infinite
	res.Benefit = cmp.Score.Benefit
	res.Recovered = cmp.Recovered
	res.RecoverySec = cmp.RecoveryTime.Seconds()
	if cell.InjectSec > 0 {
		// Stabilization: how long after injection the altered run
		// sustained the baseline steady-state rate again, the
		// flip side of Compare's recovery (measured from healing).
		inject := time.Duration(cell.InjectSec * float64(time.Second))
		ref := core.SteadyStateRate(cmp.Baseline, inject)
		stab, ok := cmp.Altered.Throughput.RecoveryTime(
			inject, ref, core.RecoveryFraction, core.RecoveryWindow)
		res.Stabilized = ok
		res.StabilizationSec = stab.Seconds()
	}
}

// runCell executes one cell: materialize its config, fetch (or compute) the
// shared baseline, run the altered environment and digest the comparison.
// Any panic inside the model run fails only this cell.
func runCell(spec Spec, cell Cell, opts Options, baselines *baselineCache) (res *CellResult) {
	res = &CellResult{Cell: cell}
	defer func() {
		if v := recover(); v != nil {
			res.Error = fmt.Sprintf("panic: %v", v)
		}
	}()

	cfg, err := cellConfig(spec, cell, opts.Resolve)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var rec *metrics.Recorder
	if opts.Metrics != nil {
		rec = metrics.NewRecorder(opts.MetricsInterval)
		cfg.Metrics = rec
	}

	baseline, err := baselines.get(cell.System, cell.Seed, cfg)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	cmp, err := core.CompareWithBaseline(cfg, baseline)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	scoreCell(res, cell, cmp)
	if rec != nil {
		opts.Metrics(cell, rec)
	}
	return res
}

// baselineCache shares fault-free baseline runs across cells. Within one
// campaign every cell uses the same deployment template, so the baseline is
// fully determined by (system, seed, committee size, overlay): a grid of
// dozens of fault cells pays for each baseline once instead of once per cell.
// Committee size and overlay topology join the key because they change the
// fault-free run itself, unlike the swept fault dimensions.
type baselineCache struct {
	mu sync.Mutex
	m  map[baselineKey]*baselineEntry
}

type baselineKey struct {
	system    string
	seed      int64
	committee int
	overlay   string
}

type baselineEntry struct {
	once sync.Once
	res  *core.RunResult
	err  error
}

func newBaselineCache() *baselineCache {
	return &baselineCache{m: make(map[baselineKey]*baselineEntry)}
}

func (c *baselineCache) get(system string, seed int64, cfg core.Config) (*core.RunResult, error) {
	key := baselineKey{system: system, seed: seed, committee: cfg.CommitteeSize, overlay: cfg.Overlay.Topology}
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &baselineEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// A panicking baseline must fail every cell that shares it,
		// not the campaign.
		defer func() {
			if v := recover(); v != nil {
				e.err = fmt.Errorf("panic: %v", v)
			}
		}()
		e.res, e.err = core.Run(core.BaselineConfig(cfg))
	})
	if e.err != nil {
		return nil, fmt.Errorf("baseline %s seed %d: %w", system, seed, e.err)
	}
	return e.res, nil
}
