package campaign

import (
	"context"
	"fmt"
	"testing"

	"stabl/internal/core"
)

// BenchmarkCampaignWorkers measures the wall-clock effect of the worker
// pool on a 16-cell campaign. On a multi-core machine workers=4 should cut
// the campaign time by >=2x over workers=1: every cell is an independent
// simulation with no shared state beyond the memoized baselines.
func BenchmarkCampaignWorkers(b *testing.B) {
	spec := Spec{
		Systems:     []string{"Stub"},
		Faults:      []string{"crash", "transient"},
		CountDeltas: []int{0, 1},
		InjectSecs:  []float64{30, 60},
		OutageSecs:  []float64{20},
		Seeds:       []int64{1, 2},
		Base:        core.Spec{DurationSec: 120},
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), spec, Options{Workers: workers, Resolve: resolveStubs})
				if err != nil {
					b.Fatal(err)
				}
				if res.FailedCells != 0 {
					b.Fatalf("failed cells = %d", res.FailedCells)
				}
			}
		})
	}
}
