package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// CellResult is the outcome of one executed cell.
type CellResult struct {
	Cell
	// Error is set when the cell failed to execute — an invalid config
	// for this coordinate or a panicking model run. All measurement
	// fields are zero then.
	Error string `json:"error,omitempty"`
	// Score is the sensitivity score against the shared baseline;
	// Infinite when the altered run lost liveness.
	Score    float64 `json:"score"`
	Infinite bool    `json:"infinite,omitempty"`
	// Benefit marks cells where the altered environment outperformed the
	// baseline.
	Benefit bool `json:"benefit,omitempty"`
	// Recovered / RecoverySec: throughput returned to the baseline
	// steady rate after healing (recovering faults only).
	Recovered   bool    `json:"recovered,omitempty"`
	RecoverySec float64 `json:"recoverySec,omitempty"`
	// Stabilized / StabilizationSec: like recovery but measured from the
	// injection instant, so it also grades faults that never heal.
	Stabilized       bool    `json:"stabilized,omitempty"`
	StabilizationSec float64 `json:"stabilizationSec,omitempty"`
}

// String renders one cell outcome as a summary line.
func (r *CellResult) String() string {
	switch {
	case r.Error != "":
		return fmt.Sprintf("%-44s FAILED (%s)", r.Cell, r.Error)
	case r.Infinite:
		return fmt.Sprintf("%-44s score=inf (liveness lost)", r.Cell)
	default:
		return fmt.Sprintf("%-44s score=%.2f", r.Cell, r.Score)
	}
}

// Point aggregates one fault-space coordinate across its seeds.
type Point struct {
	System    string  `json:"system"`
	Fault     string  `json:"fault,omitempty"`
	Count     int     `json:"count,omitempty"`
	InjectSec float64 `json:"injectSec,omitempty"`
	OutageSec float64 `json:"outageSec,omitempty"`
	SlowBySec float64 `json:"slowBySec,omitempty"`
	Scenario  string  `json:"scenario,omitempty"`
	Intensity float64 `json:"intensity,omitempty"`
	// CommitteeSize and Overlay carry the scale and overlay axes; without
	// them the point's coordinate is ambiguous whenever either axis is
	// active, and the seed-grouping lookup would collapse distinct cells.
	CommitteeSize int    `json:"committeeSize,omitempty"`
	Overlay       string `json:"overlay,omitempty"`

	Runs         int `json:"runs"`
	FailedRuns   int `json:"failedRuns,omitempty"`
	InfiniteRuns int `json:"infiniteRuns,omitempty"`
	BenefitRuns  int `json:"benefitRuns,omitempty"`
	// Min/Median/MaxScore summarize the finite scores across seeds.
	MinScore    float64 `json:"minScore"`
	MedianScore float64 `json:"medianScore"`
	MaxScore    float64 `json:"maxScore"`
	// MeanRecoverySec averages the seeds that recovered;
	// MeanStabilizationSec the seeds that stabilized after injection.
	MeanRecoverySec      float64 `json:"meanRecoverySec,omitempty"`
	MeanStabilizationSec float64 `json:"meanStabilizationSec,omitempty"`
}

// severity orders points from least to most resilient: cells whose runs
// panicked or lost liveness dominate, then the finite scores decide.
func (p *Point) severity() float64 {
	if p.Runs == 0 {
		return 0
	}
	lost := float64(p.FailedRuns+p.InfiniteRuns) / float64(p.Runs)
	return lost*1e9 + p.MedianScore
}

// cellKey reconstructs the full cell coordinate the point aggregates. It
// must round-trip every Cell field except the seed: aggregatePoints keys its
// seed groups by Cell.Key(), so a field missing here silently merges cells
// that differ only in that field.
func (p *Point) cellKey() string {
	return Cell{System: p.System, Fault: p.Fault, Count: p.Count,
		InjectSec: p.InjectSec, OutageSec: p.OutageSec, SlowBySec: p.SlowBySec,
		Scenario: p.Scenario, Intensity: p.Intensity,
		CommitteeSize: p.CommitteeSize, Overlay: p.Overlay}.Key()
}

// String renders one aggregated coordinate.
func (p *Point) String() string {
	key := p.cellKey()
	if p.FailedRuns+p.InfiniteRuns > 0 {
		return fmt.Sprintf("%-44s inf/failed %d of %d runs", key, p.FailedRuns+p.InfiniteRuns, p.Runs)
	}
	return fmt.Sprintf("%-44s score min/med/max %.2f/%.2f/%.2f", key, p.MinScore, p.MedianScore, p.MaxScore)
}

// SurfacePoint is one slice of a sensitivity surface: every run sharing one
// value of one dimension, collapsed.
type SurfacePoint struct {
	Label        string  `json:"label"`
	Runs         int     `json:"runs"`
	FailedRuns   int     `json:"failedRuns,omitempty"`
	InfiniteRuns int     `json:"infiniteRuns,omitempty"`
	MeanScore    float64 `json:"meanScore"`
	MaxScore     float64 `json:"maxScore"`
}

// Surface is one system's sensitivity marginal along one spec dimension.
type Surface struct {
	// Dimension is "fault", "scenario", "intensity", "count",
	// "injectSec", "outageSec", "slowBySec" or "committeeSize".
	Dimension string         `json:"dimension"`
	Points    []SurfacePoint `json:"points"`
}

// SystemSummary aggregates one system across the whole campaign.
type SystemSummary struct {
	System       string `json:"system"`
	Runs         int    `json:"runs"`
	FailedRuns   int    `json:"failedRuns,omitempty"`
	InfiniteRuns int    `json:"infiniteRuns,omitempty"`
	BenefitRuns  int    `json:"benefitRuns,omitempty"`
	// MeanScore averages the finite scores over every run.
	MeanScore float64 `json:"meanScore"`
	// Surfaces are the per-dimension sensitivity marginals.
	Surfaces []Surface `json:"surfaces"`
	// MostSensitive ranks the system's fault-space coordinates from
	// least to most resilient (worst first, at most five).
	MostSensitive []*Point `json:"mostSensitive"`
}

// Result is the complete campaign outcome. Everything in it is derived
// deterministically from the cell results in grid order, so two runs of the
// same spec produce byte-identical JSON at any worker count.
type Result struct {
	TotalCells    int `json:"totalCells"`
	FailedCells   int `json:"failedCells"`
	InfiniteCells int `json:"infiniteCells"`
	BenefitCells  int `json:"benefitCells"`
	// Systems are the per-system aggregations, in spec order.
	Systems []*SystemSummary `json:"systems"`
	// Points aggregate each coordinate across seeds, in grid order.
	Points []*Point `json:"points"`
	// Cells are the raw per-cell outcomes, in grid order.
	Cells []*CellResult `json:"cells"`
	// Checkpoint reports the adaptive mode's fork reuse; nil in grid mode.
	Checkpoint *CheckpointStats `json:"checkpoint,omitempty"`
}

// CheckpointStats summarizes checkpoint reuse in an adaptive campaign. The
// counts are deterministic (a function of the spec alone, not of timing or
// worker count) and therefore part of the JSON artifact; the measured
// wall-clock saving is not, and stays out of the JSON.
type CheckpointStats struct {
	// Families is how many checkpointable prefix groups the grid held.
	Families int `json:"families"`
	// ForkServed counts cells served by rewinding a family checkpoint.
	ForkServed int `json:"forkServed"`
	// FullReplays counts cells executed from scratch: one representative
	// per family, plus every cell that was ineligible (secure-client,
	// singleton families) or fell back after a sibling's panic.
	FullReplays int `json:"fullReplays"`
	// WallSaved estimates the wall-clock time forking avoided: the sum,
	// over every fork-served cell, of its family's measured prefix time.
	// Timing is nondeterministic, so it is excluded from the JSON.
	WallSaved time.Duration `json:"-"`
}

// WriteJSON writes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// System returns the summary for the named system, or nil.
func (r *Result) System(name string) *SystemSummary {
	for _, s := range r.Systems {
		if s.System == name {
			return s
		}
	}
	return nil
}

// WriteText renders the human-readable campaign summary: totals, then each
// system's ranking and surfaces.
func (r *Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "campaign: %d cells (%d failed, %d lost liveness, %d benefited)\n",
		r.TotalCells, r.FailedCells, r.InfiniteCells, r.BenefitCells); err != nil {
		return err
	}
	if cp := r.Checkpoint; cp != nil {
		fmt.Fprintf(w, "checkpoint reuse: %d of %d cells served from %d family fork(s), %d full replay(s)\n",
			cp.ForkServed, r.TotalCells, cp.Families, cp.FullReplays)
	}
	for _, sys := range r.Systems {
		fmt.Fprintf(w, "\n%s: mean score %.2f over %d runs (inf %d, failed %d)\n",
			sys.System, sys.MeanScore, sys.Runs, sys.InfiniteRuns, sys.FailedRuns)
		fmt.Fprintln(w, "  most sensitive:")
		for _, p := range sys.MostSensitive {
			fmt.Fprintf(w, "    %s\n", p)
		}
		for _, surf := range sys.Surfaces {
			if len(surf.Points) < 2 {
				continue
			}
			var b strings.Builder
			for i, sp := range surf.Points {
				if i > 0 {
					b.WriteString(", ")
				}
				if sp.FailedRuns+sp.InfiniteRuns > 0 {
					fmt.Fprintf(&b, "%s: inf %d/%d", sp.Label, sp.FailedRuns+sp.InfiniteRuns, sp.Runs)
				} else {
					fmt.Fprintf(&b, "%s: %.2f", sp.Label, sp.MeanScore)
				}
			}
			fmt.Fprintf(w, "  by %s: %s\n", surf.Dimension, b.String())
		}
	}
	return nil
}

// rankedLimit bounds each system's MostSensitive list.
const rankedLimit = 5

// aggregate folds the per-cell outcomes into points, surfaces and system
// summaries. It iterates the cells in their deterministic grid order and
// uses only order-stable containers, keeping the JSON byte-identical across
// worker counts.
func aggregate(spec Spec, cells []*CellResult) *Result {
	res := &Result{TotalCells: len(cells), Cells: cells}
	for _, c := range cells {
		switch {
		case c.Error != "":
			res.FailedCells++
		case c.Infinite:
			res.InfiniteCells++
		}
		if c.Benefit {
			res.BenefitCells++
		}
	}
	res.Points = aggregatePoints(cells)
	for _, name := range spec.Systems {
		res.Systems = append(res.Systems, summarizeSystem(name, cells, res.Points))
	}
	return res
}

// aggregatePoints groups the cells by coordinate (seeds collapsed),
// preserving grid order.
func aggregatePoints(cells []*CellResult) []*Point {
	index := make(map[string]*Point)
	var points []*Point
	grouped := make(map[string][]*CellResult)
	for _, c := range cells {
		key := c.Key()
		p := index[key]
		if p == nil {
			p = &Point{System: c.System, Fault: c.Fault, Count: c.Count,
				InjectSec: c.InjectSec, OutageSec: c.OutageSec, SlowBySec: c.SlowBySec,
				Scenario: c.Scenario, Intensity: c.Intensity,
				CommitteeSize: c.CommitteeSize, Overlay: c.Overlay}
			index[key] = p
			points = append(points, p)
		}
		grouped[key] = append(grouped[key], c)
	}
	for _, p := range points {
		fill(p, grouped[p.cellKey()])
	}
	return points
}

// fill computes one point's cross-seed statistics.
func fill(p *Point, runs []*CellResult) {
	var scores []float64
	var recoverySum, stabilizationSum float64
	recovered, stabilized := 0, 0
	for _, c := range runs {
		p.Runs++
		switch {
		case c.Error != "":
			p.FailedRuns++
		case c.Infinite:
			p.InfiniteRuns++
		default:
			scores = append(scores, c.Score)
		}
		if c.Benefit {
			p.BenefitRuns++
		}
		if c.Recovered {
			recovered++
			recoverySum += c.RecoverySec
		}
		if c.Stabilized {
			stabilized++
			stabilizationSum += c.StabilizationSec
		}
	}
	if len(scores) > 0 {
		sort.Float64s(scores)
		p.MinScore = scores[0]
		p.MaxScore = scores[len(scores)-1]
		p.MedianScore = median(scores)
	}
	if recovered > 0 {
		p.MeanRecoverySec = recoverySum / float64(recovered)
	}
	if stabilized > 0 {
		p.MeanStabilizationSec = stabilizationSum / float64(stabilized)
	}
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// summarizeSystem folds one system's cells into totals, surfaces and the
// most-sensitive ranking.
func summarizeSystem(name string, cells []*CellResult, points []*Point) *SystemSummary {
	sum := &SystemSummary{System: name}
	var scoreSum float64
	finite := 0
	var own []*CellResult
	for _, c := range cells {
		if c.System != name {
			continue
		}
		own = append(own, c)
		sum.Runs++
		switch {
		case c.Error != "":
			sum.FailedRuns++
		case c.Infinite:
			sum.InfiniteRuns++
		default:
			scoreSum += c.Score
			finite++
		}
		if c.Benefit {
			sum.BenefitRuns++
		}
	}
	if finite > 0 {
		sum.MeanScore = scoreSum / float64(finite)
	}

	sum.Surfaces = []Surface{
		surface("fault", own, func(c *CellResult) (string, bool) { return c.Fault, c.Fault != "" }),
		surface("scenario", own, func(c *CellResult) (string, bool) {
			return c.Scenario, c.Scenario != ""
		}),
		surface("intensity", own, func(c *CellResult) (string, bool) {
			return fmt.Sprintf("x%g", c.Intensity), c.Scenario != ""
		}),
		surface("count", own, func(c *CellResult) (string, bool) {
			return fmt.Sprintf("f=%d", c.Count), c.Count > 0
		}),
		surface("injectSec", own, func(c *CellResult) (string, bool) {
			return fmt.Sprintf("inject=%gs", c.InjectSec), c.InjectSec > 0
		}),
		surface("outageSec", own, func(c *CellResult) (string, bool) {
			return fmt.Sprintf("outage=%gs", c.OutageSec), c.OutageSec > 0
		}),
		surface("slowBySec", own, func(c *CellResult) (string, bool) {
			return fmt.Sprintf("slow=%gs", c.SlowBySec), c.SlowBySec > 0
		}),
		surface("committeeSize", own, func(c *CellResult) (string, bool) {
			return fmt.Sprintf("committee=%d", c.CommitteeSize), c.CommitteeSize > 0
		}),
		surface("overlay", own, func(c *CellResult) (string, bool) {
			return fmt.Sprintf("overlay=%s", c.Overlay), c.Overlay != ""
		}),
	}

	var ranked []*Point
	for _, p := range points {
		if p.System == name {
			ranked = append(ranked, p)
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].severity() > ranked[j].severity() })
	if len(ranked) > rankedLimit {
		ranked = ranked[:rankedLimit]
	}
	sum.MostSensitive = ranked
	return sum
}

// surface computes one marginal: cells grouped by the label that dim
// extracts, in first-seen (grid) order. Cells for which the dimension is
// inapplicable report ok=false and are left out.
func surface(dimension string, cells []*CellResult, dim func(*CellResult) (string, bool)) Surface {
	surf := Surface{Dimension: dimension}
	index := make(map[string]int)
	counts := make(map[string]int)
	sums := make(map[string]float64)
	for _, c := range cells {
		label, ok := dim(c)
		if !ok {
			continue
		}
		i, seen := index[label]
		if !seen {
			i = len(surf.Points)
			index[label] = i
			surf.Points = append(surf.Points, SurfacePoint{Label: label})
		}
		sp := &surf.Points[i]
		sp.Runs++
		switch {
		case c.Error != "":
			sp.FailedRuns++
		case c.Infinite:
			sp.InfiniteRuns++
		default:
			sums[label] += c.Score
			counts[label]++
			if c.Score > sp.MaxScore {
				sp.MaxScore = c.Score
			}
		}
	}
	for i := range surf.Points {
		label := surf.Points[i].Label
		if counts[label] > 0 {
			surf.Points[i].MeanScore = sums[label] / float64(counts[label])
		}
	}
	return surf
}

// HeatmapGrid projects one system's outcomes onto the (fault kind ×
// inject time) plane for rendering: rows are fault kinds, columns inject
// times, both in grid order. A value is the mean finite score of every run
// at that coordinate, +Inf when any of them lost liveness or failed, NaN
// when the coordinate was never explored (e.g. sampled out).
func (r *Result) HeatmapGrid(system string) (faults []string, injectSecs []float64, values [][]float64) {
	rowIdx := make(map[string]int)
	colIdx := make(map[float64]int)
	for _, c := range r.Cells {
		if c.System != system || c.InjectSec <= 0 {
			continue
		}
		if _, ok := rowIdx[c.Fault]; !ok {
			rowIdx[c.Fault] = len(faults)
			faults = append(faults, c.Fault)
		}
		if _, ok := colIdx[c.InjectSec]; !ok {
			colIdx[c.InjectSec] = len(injectSecs)
			injectSecs = append(injectSecs, c.InjectSec)
		}
	}
	sums := make([][]float64, len(faults))
	counts := make([][]int, len(faults))
	values = make([][]float64, len(faults))
	for i := range values {
		sums[i] = make([]float64, len(injectSecs))
		counts[i] = make([]int, len(injectSecs))
		values[i] = make([]float64, len(injectSecs))
		for j := range values[i] {
			values[i][j] = math.NaN()
		}
	}
	for _, c := range r.Cells {
		if c.System != system || c.InjectSec <= 0 {
			continue
		}
		i, j := rowIdx[c.Fault], colIdx[c.InjectSec]
		if c.Error != "" || c.Infinite {
			values[i][j] = math.Inf(1)
			continue
		}
		sums[i][j] += c.Score
		counts[i][j]++
	}
	for i := range values {
		for j := range values[i] {
			if !math.IsInf(values[i][j], 1) && counts[i][j] > 0 {
				values[i][j] = sums[i][j] / float64(counts[i][j])
			}
		}
	}
	return faults, injectSecs, values
}
