package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"stabl/internal/core"
	"stabl/internal/scenario"
)

// scenarioSpec is a small scenario sweep over the stub chain:
// 2 scenarios x 2 intensities x 2 seeds = 8 cells.
func scenarioSpec() Spec {
	return Spec{
		Systems: []string{"Stub"},
		Faults:  []string{},
		Scenarios: []scenario.Spec{
			{Name: "blip", Actions: []scenario.ActionSpec{
				{Op: "crash", AtSec: 15, Nodes: "random(1)", UntilSec: 25},
			}},
			{Name: "drizzle", Actions: []scenario.ActionSpec{
				{Op: "loss", AtSec: 10, Nodes: "all", Rate: 0.02, UntilSec: 30},
			}},
		},
		Intensities: []float64{1, 2},
		Seeds:       []int64{1, 2},
		Base:        core.Spec{DurationSec: 45},
	}
}

func TestScenarioCampaignDeterministicAcrossWorkers(t *testing.T) {
	encode := func(workers int) []byte {
		t.Helper()
		res, err := Run(context.Background(), scenarioSpec(), Options{Workers: workers, Resolve: resolveStubs})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := encode(1)
	parallel := encode(8)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("workers=8 JSON diverged from workers=1:\n%s\nvs\n%s", parallel, sequential)
	}
	if !bytes.Contains(sequential, []byte(`"scenario"`)) {
		t.Fatal("cells carry no scenario axis")
	}
}

func TestScenarioCampaignExpandsAndAggregates(t *testing.T) {
	res, err := Run(context.Background(), scenarioSpec(), Options{Workers: 4, Resolve: resolveStubs})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCells != 8 || res.FailedCells != 0 {
		t.Fatalf("cells = %d (failed %d), want 8 clean", res.TotalCells, res.FailedCells)
	}
	scen := map[string]int{}
	for _, c := range res.Cells {
		if c.Fault != "" {
			t.Fatalf("scenario cell carries a fault: %+v", c.Cell)
		}
		scen[c.Scenario]++
		if c.Intensity != 1 && c.Intensity != 2 {
			t.Fatalf("cell intensity = %g", c.Intensity)
		}
		if !strings.Contains(c.Cell.Key(), "scenario:"+c.Scenario) {
			t.Fatalf("cell key %q missing scenario", c.Cell.Key())
		}
		if !strings.Contains(c.Cell.Slug(), "scenario-"+c.Scenario) {
			t.Fatalf("cell slug %q missing scenario", c.Cell.Slug())
		}
	}
	if scen["blip"] != 4 || scen["drizzle"] != 4 {
		t.Fatalf("per-scenario cells = %v", scen)
	}
	// 2 scenarios x 2 intensities = 4 coordinates, each over 2 seeds.
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Scenario == "" || p.Runs != 2 {
			t.Fatalf("point = %+v", p)
		}
	}
	var surfaces []string
	for _, surf := range res.System("Stub").Surfaces {
		surfaces = append(surfaces, surf.Dimension)
	}
	joined := strings.Join(surfaces, ",")
	if !strings.Contains(joined, "scenario") || !strings.Contains(joined, "intensity") {
		t.Fatalf("surfaces = %v, want scenario and intensity dimensions", surfaces)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scenario") {
		t.Fatalf("text summary never mentions scenarios:\n%s", buf.String())
	}
}

func TestScenarioCampaignValidation(t *testing.T) {
	bad := scenarioSpec()
	bad.Scenarios[1].Name = "blip" // duplicate
	if _, err := Run(context.Background(), bad, Options{Resolve: resolveStubs}); err == nil {
		t.Fatal("duplicate scenario names accepted")
	}
	neg := scenarioSpec()
	neg.Intensities = []float64{-1}
	if _, err := Run(context.Background(), neg, Options{Resolve: resolveStubs}); err == nil {
		t.Fatal("negative intensity accepted")
	}
	invalid := scenarioSpec()
	invalid.Scenarios[0].Actions[0].Op = "melt"
	if _, err := Run(context.Background(), invalid, Options{Resolve: resolveStubs}); err == nil {
		t.Fatal("invalid scenario action accepted")
	}
	// Validate (the CLI's spec linter) accepts the good spec and counts cells.
	n, err := Validate(scenarioSpec(), resolveStubs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("Validate counted %d cells, want 8", n)
	}
	// A scenario whose nodes exceed the base deployment must fail Validate,
	// not the runtime.
	oob := scenarioSpec()
	oob.Scenarios[0].Actions[0].Nodes = "42"
	if _, err := Validate(oob, resolveStubs); err == nil {
		t.Fatal("out-of-range scenario node passed Validate")
	}
}

// TestScenarioCampaignMixesWithFaults checks a spec sweeping both classic
// faults and scenarios produces the union of both grids.
func TestScenarioCampaignMixesWithFaults(t *testing.T) {
	spec := scenarioSpec()
	spec.Faults = []string{"crash"}
	spec.InjectSecs = []float64{15}
	spec.OutageSecs = []float64{10}
	spec.CountDeltas = []int{0}
	res, err := Run(context.Background(), spec, Options{Workers: 4, Resolve: resolveStubs})
	if err != nil {
		t.Fatal(err)
	}
	// crash: 1 count x 1 inject x 2 seeds = 2; scenarios: 2 x 2 x 2 = 8.
	if res.TotalCells != 10 {
		t.Fatalf("cells = %d, want 10", res.TotalCells)
	}
	var faultCells, scenCells int
	for _, c := range res.Cells {
		switch {
		case c.Fault != "" && c.Scenario == "":
			faultCells++
		case c.Scenario != "" && c.Fault == "":
			scenCells++
		default:
			t.Fatalf("cell is neither fault nor scenario: %+v", c.Cell)
		}
	}
	if faultCells != 2 || scenCells != 8 {
		t.Fatalf("fault/scenario cells = %d/%d, want 2/8", faultCells, scenCells)
	}
}
