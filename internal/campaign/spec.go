// Package campaign implements STABL's chaos-campaign engine: systematic
// exploration of the fault space instead of the paper's hand-picked fault
// points. A declarative Spec expands into a grid (or a seeded-random sample)
// of experiment cells across {system, fault kind, fault count, inject time,
// outage duration, slow-by, seed}; the engine executes the cells on a
// bounded worker pool with per-cell panic isolation and aggregates the
// outcomes into per-dimension sensitivity surfaces and per-system rankings
// of the least-resilient cells. Every cell is an independent deterministic
// simulation, so results are byte-identical at any worker count.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"

	"stabl/internal/core"
	"stabl/internal/overlay"
	"stabl/internal/scenario"
)

// Spec is the JSON-serializable description of a campaign, the counterpart
// of core.Spec for a whole fault-space sweep:
//
//	{
//	  "systems": ["Redbelly", "Algorand"],
//	  "faults": ["crash", "transient"],
//	  "countDeltas": [-1, 0, 1, 2],
//	  "injectSecs": [40, 80],
//	  "outageSecs": [30, 60],
//	  "seeds": [1, 2],
//	  "base": {"validators": 10, "durationSec": 160}
//	}
type Spec struct {
	// Systems under test, by registry name. Required.
	Systems []string `json:"systems"`
	// Faults are the fault kinds to inject; defaults to the four
	// node-affecting kinds: crash, transient, partition, slow.
	Faults []string `json:"faults,omitempty"`
	// CountDeltas are fault counts relative to each system's claimed
	// tolerance t: delta d explores f = t+d. Defaults to {0} (the paper's
	// f = t). Non-positive resolved counts are skipped; {-1, 0, 1, 2}
	// explores f = t-1 … t+2 around the tolerance boundary.
	CountDeltas []int `json:"countDeltas,omitempty"`
	// InjectSecs are fault injection times; defaults to {133}.
	InjectSecs []float64 `json:"injectSecs,omitempty"`
	// OutageSecs are outage durations for recovering faults (transient,
	// partition, slow): the fault heals at inject+outage. Defaults to
	// {133}.
	OutageSecs []float64 `json:"outageSecs,omitempty"`
	// SlowBySecs are per-interface delays for the slow fault; defaults to
	// {30}.
	SlowBySecs []float64 `json:"slowBySecs,omitempty"`
	// Scenarios are composed multi-phase fault timelines (see
	// internal/scenario) swept alongside — or, when Faults is empty,
	// instead of — the single-fault kinds. Each scenario expands into one
	// cell per intensity per seed.
	Scenarios []scenario.Spec `json:"scenarios,omitempty"`
	// Intensities scale every scenario's degradation magnitudes (loss
	// rate, slow delay, jitter bound) via scenario.Spec.Scaled; defaults
	// to {1}. Ignored when Scenarios is empty.
	Intensities []float64 `json:"intensities,omitempty"`
	// CommitteeSizes sweeps the sortition committee size (the scale axis):
	// size 0 runs full membership, positive sizes require every swept
	// system to support committees (see core.Config.CommitteeSize).
	// Defaults to {Base.CommitteeSize}, keeping the axis inert unless
	// declared.
	CommitteeSizes []int `json:"committeeSizes,omitempty"`
	// Overlays sweeps the gossip-overlay topology: "" runs the legacy full
	// mesh, any overlay.Kinds() name routes validator gossip over that
	// structured overlay (see core.Config.Overlay). Defaults to
	// {Base.Overlay.Topology}, keeping the axis inert unless declared.
	Overlays []string `json:"overlays,omitempty"`
	// Seeds repeat every coordinate; defaults to {1, 2, 3}.
	Seeds []int64 `json:"seeds,omitempty"`
	// Sample, when positive and smaller than the full grid, runs only a
	// seeded-random sample of Sample cells (drawn without replacement
	// with SampleSeed), trading coverage for wall-clock time on huge
	// grids.
	Sample int `json:"sample,omitempty"`
	// SampleSeed seeds the sample draw; the same spec always selects the
	// same cells.
	SampleSeed int64 `json:"sampleSeed,omitempty"`
	// Mode selects the execution strategy: "grid" (or empty) runs every
	// cell as an independent from-scratch simulation; "adaptive" groups
	// cells that share their pre-fault prefix (same system, seed, fault
	// kind or scenario, inject and outage instants — differing only in
	// swept magnitudes), runs each family's prefix once, checkpoints it at
	// the first disruptive action and serves the remaining members by
	// rewinding the checkpoint. Results are byte-identical between the
	// modes and across worker counts; only wall-clock time changes.
	Mode string `json:"mode,omitempty"`
	// Base is the deployment template shared by every cell (validators,
	// clients, rate, duration, profile, …). Its system, seed, fault and
	// scenario fields are ignored: the campaign dimensions override them.
	Base core.Spec `json:"base,omitempty"`
}

// Execution modes for Spec.Mode.
const (
	// ModeGrid runs every cell from scratch (the default).
	ModeGrid = "grid"
	// ModeAdaptive forks shared checkpoints at the fault-injection
	// instant.
	ModeAdaptive = "adaptive"
)

// ParseSpec decodes a campaign spec from JSON, rejecting unknown fields.
func ParseSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	return spec, nil
}

// WriteJSON encodes the spec as indented JSON.
func (s Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func (s Spec) withDefaults() Spec {
	// A spec that sweeps only scenarios gets no implicit single-fault
	// cells; the classic fault default applies to everything else.
	if len(s.Faults) == 0 && len(s.Scenarios) == 0 {
		s.Faults = []string{
			core.FaultCrash.String(), core.FaultTransient.String(),
			core.FaultPartition.String(), core.FaultSlow.String(),
		}
	}
	if len(s.Intensities) == 0 {
		s.Intensities = []float64{1}
	}
	if len(s.CountDeltas) == 0 {
		s.CountDeltas = []int{0}
	}
	if len(s.InjectSecs) == 0 {
		s.InjectSecs = []float64{133}
	}
	if len(s.OutageSecs) == 0 {
		s.OutageSecs = []float64{133}
	}
	if len(s.SlowBySecs) == 0 {
		s.SlowBySecs = []float64{30}
	}
	if len(s.CommitteeSizes) == 0 {
		s.CommitteeSizes = []int{s.Base.CommitteeSize}
	}
	if len(s.Overlays) == 0 {
		s.Overlays = []string{s.Base.Overlay.Topology}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1, 2, 3}
	}
	return s
}

func (s Spec) validate() error {
	if len(s.Systems) == 0 {
		return fmt.Errorf("campaign: spec needs at least one system")
	}
	for _, name := range s.Faults {
		if _, err := core.ParseFaultKind(name); err != nil {
			return err
		}
	}
	for _, v := range s.InjectSecs {
		if v <= 0 {
			return fmt.Errorf("campaign: injectSecs must be positive, got %v", v)
		}
	}
	for _, v := range s.OutageSecs {
		if v <= 0 {
			return fmt.Errorf("campaign: outageSecs must be positive, got %v", v)
		}
	}
	for _, v := range s.SlowBySecs {
		if v <= 0 {
			return fmt.Errorf("campaign: slowBySecs must be positive, got %v", v)
		}
	}
	if s.Sample < 0 {
		return fmt.Errorf("campaign: sample must be non-negative, got %d", s.Sample)
	}
	for _, v := range s.CommitteeSizes {
		if v < 0 {
			return fmt.Errorf("campaign: committeeSizes must be non-negative, got %d", v)
		}
	}
	for _, name := range s.Overlays {
		if name == "" {
			continue // legacy mesh
		}
		if _, err := overlay.ParseKind(name); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	switch s.Mode {
	case "", ModeGrid, ModeAdaptive:
	default:
		return fmt.Errorf("campaign: unknown mode %q (valid: %s|%s)", s.Mode, ModeGrid, ModeAdaptive)
	}
	seen := make(map[string]bool, len(s.Scenarios))
	for _, sc := range s.Scenarios {
		if _, err := sc.Build(); err != nil {
			return err
		}
		if seen[sc.Name] {
			return fmt.Errorf("campaign: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	for _, v := range s.Intensities {
		if v <= 0 {
			return fmt.Errorf("campaign: intensities must be positive, got %v", v)
		}
	}
	return nil
}

// scenarioByName finds the named scenario spec, the lookup runCell uses to
// materialize a scenario cell.
func (s Spec) scenarioByName(name string) (scenario.Spec, bool) {
	for _, sc := range s.Scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return scenario.Spec{}, false
}
