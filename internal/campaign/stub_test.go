package campaign

import (
	"fmt"
	"time"

	"stabl/internal/chain"
	"stabl/internal/simnet"
	"stabl/internal/snapshot"
)

// stubSystem is a minimal chain for exercising the engine: node 0 seals its
// pool into a block twice per second and broadcasts it; every other node
// forwards client transactions to node 0. With panicOnStop set, a validator
// panics when the network halts it — the shape of Solana's EAH panic, where
// a fault turns into a process crash inside the model run.
type stubSystem struct {
	name        string
	panicOnStop bool
}

func (s *stubSystem) Name() string                  { return s.name }
func (s *stubSystem) Tolerance(n int) int           { return chain.ToleranceThird(n) }
func (s *stubSystem) ConnParams() simnet.ConnParams { return simnet.ConnParams{} }

func (s *stubSystem) NewValidator(id simnet.NodeID, peers []simnet.NodeID, mon *chain.Monitor, genesis []chain.GenesisAccount) simnet.Handler {
	v := &stubValidator{
		base:        chain.NewBaseNode(id, peers, mon, chain.BaseConfig{}),
		panicOnStop: s.panicOnStop,
	}
	for _, g := range genesis {
		v.base.Ledger.Mint(g.Addr, g.Balance)
	}
	return v
}

type stubValidator struct {
	base        *chain.BaseNode
	ctx         *simnet.Context
	panicOnStop bool
	ticker      interface{ Stop() }
}

type stubForward struct{ Tx chain.Tx }
type stubBlock struct{ Block chain.Block }

func (v *stubValidator) Start(ctx *simnet.Context) {
	v.base.Reset(ctx)
	v.ctx = ctx
	v.base.OnLocalSubmit = func(tx chain.Tx) {
		if v.base.ID != v.base.Peers[0] {
			v.ctx.Send(v.base.Peers[0], stubForward{Tx: tx})
			v.base.Subscribe(tx.ID, v.base.ID)
		}
	}
	if v.base.ID == v.base.Peers[0] {
		v.ticker = ctx.Every(500*time.Millisecond, func() {
			b := chain.Block{
				Height:    v.base.ChainTip(),
				Parent:    v.base.TipHash(),
				Txs:       v.base.Pool.Pop(0),
				DecidedAt: ctx.Now(),
			}
			v.base.SubmitBlock(b)
			ctx.Broadcast(v.base.Peers, stubBlock{Block: b})
		})
	} else if v.base.Ledger.Height() > 0 {
		v.base.StartCatchUp()
	}
}

func (v *stubValidator) Stop() {
	if v.panicOnStop {
		panic(fmt.Sprintf("node %d: accounts hash mismatch", v.base.ID))
	}
	if v.ticker != nil {
		v.ticker.Stop()
	}
}

func (v *stubValidator) Deliver(from simnet.NodeID, payload any) {
	if v.base.HandleClient(from, payload) || v.base.HandleSync(from, payload) {
		return
	}
	switch msg := payload.(type) {
	case stubForward:
		v.base.Pool.Add(msg.Tx)
	case stubBlock:
		v.base.SubmitBlock(msg.Block)
	}
}

// stubState makes the stub Forkable so adaptive-mode tests exercise real
// checkpoint serving. All mutable consensus state lives in the BaseNode;
// the ticker and context follow the restore-through-pointers rule.
type stubState struct {
	base   chain.BaseState
	ctx    *simnet.Context
	ticker interface{ Stop() }
}

var _ snapshot.Forkable = (*stubValidator)(nil)

func (v *stubValidator) Snapshot() snapshot.State {
	return &stubState{base: v.base.SnapshotBase(), ctx: v.ctx, ticker: v.ticker}
}

func (v *stubValidator) Restore(state snapshot.State) {
	st, ok := state.(*stubState)
	if !ok {
		panic("campaign: stubValidator.Restore on foreign state")
	}
	v.base.RestoreBase(st.base)
	v.ctx = st.ctx
	v.ticker = st.ticker
}

// resolveStubs maps "Stub" to the healthy stub chain and "Panicky" to the
// panic-on-halt variant.
func resolveStubs(name string) (chain.System, error) {
	switch name {
	case "Stub":
		return &stubSystem{name: "Stub"}, nil
	case "Panicky":
		return &stubSystem{name: "Panicky", panicOnStop: true}, nil
	default:
		return nil, fmt.Errorf("unknown stub system %q", name)
	}
}
