package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"stabl/internal/core"
)

// fastSpec is a small but multi-dimensional campaign over the stub chain:
// 2 faults x 2 counts x 1 inject x (1|1) outage x 2 seeds = 8 cells.
func fastSpec() Spec {
	return Spec{
		Systems:     []string{"Stub"},
		Faults:      []string{"crash", "transient"},
		CountDeltas: []int{0, 1},
		InjectSecs:  []float64{15},
		OutageSecs:  []float64{10},
		Seeds:       []int64{1, 2},
		Base:        core.Spec{DurationSec: 45},
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	encode := func(workers int) []byte {
		t.Helper()
		res, err := Run(context.Background(), fastSpec(), Options{Workers: workers, Resolve: resolveStubs})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := encode(1)
	parallel := encode(8)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("workers=8 JSON diverged from workers=1:\n%s\nvs\n%s", parallel, sequential)
	}

	var res Result
	if err := json.Unmarshal(sequential, &res); err != nil {
		t.Fatal(err)
	}
	if res.TotalCells != 8 || len(res.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", res.TotalCells)
	}
	if res.FailedCells != 0 {
		t.Fatalf("failed cells = %d:\n%s", res.FailedCells, sequential)
	}
	sys := res.System("Stub")
	if sys == nil || sys.Runs != 8 {
		t.Fatalf("system summary = %+v", sys)
	}
	if len(sys.MostSensitive) == 0 || len(sys.Surfaces) == 0 {
		t.Fatalf("missing ranking or surfaces: %+v", sys)
	}
	// The stub forwards everything to node 0 and the fault targets the
	// highest ids, so every cell stays finite.
	for _, c := range res.Cells {
		if c.Infinite {
			t.Fatalf("unexpected liveness loss: %+v", c)
		}
	}
}

func TestCampaignProgressAndAggregates(t *testing.T) {
	var calls int
	var last int
	res, err := Run(context.Background(), fastSpec(), Options{
		Workers: 4,
		Resolve: resolveStubs,
		Progress: func(done, total int, cell *CellResult) {
			calls++
			last = done
			if total != 8 || cell == nil {
				t.Errorf("progress(done=%d, total=%d, cell=%v)", done, total, cell)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 || last != 8 {
		t.Fatalf("progress calls = %d, last done = %d", calls, last)
	}
	// 4 coordinates, each over 2 seeds.
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Runs != 2 {
			t.Fatalf("point runs = %+v", p)
		}
		if p.MinScore > p.MedianScore || p.MedianScore > p.MaxScore {
			t.Fatalf("score order violated: %+v", p)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "most sensitive:") || !strings.Contains(buf.String(), "by count:") {
		t.Fatalf("text summary = %q", buf.String())
	}
}

func TestCampaignIsolatesPanickingCells(t *testing.T) {
	spec := Spec{
		Systems:    []string{"Stub", "Panicky"},
		Faults:     []string{"crash"},
		InjectSecs: []float64{15},
		Seeds:      []int64{1},
		Base:       core.Spec{DurationSec: 45},
	}
	res, err := Run(context.Background(), spec, Options{Workers: 4, Resolve: resolveStubs})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCells != 2 || res.FailedCells != 1 {
		t.Fatalf("result = %+v", res)
	}
	for _, c := range res.Cells {
		switch c.System {
		case "Panicky":
			if !strings.Contains(c.Error, "panic") || !strings.Contains(c.Error, "accounts hash mismatch") {
				t.Fatalf("panicky cell error = %q", c.Error)
			}
			if !strings.Contains(c.String(), "FAILED") {
				t.Fatalf("String = %q", c.String())
			}
		case "Stub":
			if c.Error != "" || c.Score <= 0 {
				t.Fatalf("healthy cell = %+v", c)
			}
		}
	}
	panicky := res.System("Panicky")
	if panicky.FailedRuns != 1 {
		t.Fatalf("panicky summary = %+v", panicky)
	}
	// The panicking coordinate must top the ranking.
	if len(panicky.MostSensitive) == 0 || panicky.MostSensitive[0].FailedRuns != 1 {
		t.Fatalf("ranking = %+v", panicky.MostSensitive)
	}
}

func TestCampaignSamplingIsDeterministic(t *testing.T) {
	spec := fastSpec()
	spec.Sample = 3
	spec.SampleSeed = 7
	first, err := Run(context.Background(), spec, Options{Workers: 2, Resolve: resolveStubs})
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalCells != 3 {
		t.Fatalf("sampled cells = %d, want 3", first.TotalCells)
	}
	second, err := Run(context.Background(), spec, Options{Workers: 2, Resolve: resolveStubs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Cells {
		if first.Cells[i].Cell != second.Cells[i].Cell {
			t.Fatalf("sample diverged: %v vs %v", first.Cells[i].Cell, second.Cells[i].Cell)
		}
	}
}

func TestCampaignCancellationReturnsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, fastSpec(), Options{Workers: 2, Resolve: resolveStubs})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedCells != res.TotalCells {
		t.Fatalf("failed = %d of %d, want all", res.FailedCells, res.TotalCells)
	}
	for _, c := range res.Cells {
		if !strings.Contains(c.Error, "context canceled") {
			t.Fatalf("cell error = %q", c.Error)
		}
	}
}

func TestExpandCollapsesInapplicableDimensions(t *testing.T) {
	spec := Spec{
		Systems:     []string{"Stub"},
		Faults:      []string{"crash", "transient", "slow", "secure-client"},
		CountDeltas: []int{-5, -1, 0, 0, 1}, // t=3: dedupes to f=2,3,4; -5 dropped
		InjectSecs:  []float64{20, 40},
		OutageSecs:  []float64{10, 30},
		SlowBySecs:  []float64{5},
		Seeds:       []int64{1},
	}.withDefaults()
	cells, err := expand(spec, resolveStubs)
	if err != nil {
		t.Fatal(err)
	}
	count := func(fault string) int {
		n := 0
		for _, c := range cells {
			if c.Fault == fault {
				n++
			}
		}
		return n
	}
	// crash: 3 counts x 2 injects, outage and slow collapsed.
	if got := count("crash"); got != 6 {
		t.Fatalf("crash cells = %d, want 6", got)
	}
	// transient: 3 x 2 x 2 outages.
	if got := count("transient"); got != 12 {
		t.Fatalf("transient cells = %d, want 12", got)
	}
	// slow: same as transient, single slow-by.
	if got := count("slow"); got != 12 {
		t.Fatalf("slow cells = %d, want 12", got)
	}
	// secure-client: every node dimension collapses to one cell.
	if got := count("secure-client"); got != 1 {
		t.Fatalf("secure-client cells = %d, want 1", got)
	}
	for _, c := range cells {
		if c.Fault == "crash" && (c.OutageSec != 0 || c.SlowBySec != 0) {
			t.Fatalf("crash cell carries healing dims: %+v", c)
		}
		if c.Fault == "secure-client" && (c.Count != 0 || c.InjectSec != 0) {
			t.Fatalf("secure-client cell carries node dims: %+v", c)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}, Options{Resolve: resolveStubs}); err == nil {
		t.Fatal("empty spec accepted")
	}
	bad := Spec{Systems: []string{"Stub"}, Faults: []string{"meteor-strike"}}
	if _, err := Run(context.Background(), bad, Options{Resolve: resolveStubs}); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	if _, err := Run(context.Background(), fastSpec(), Options{}); err == nil {
		t.Fatal("nil Resolve accepted")
	}
	unknownSys := fastSpec()
	unknownSys.Systems = []string{"Atlantis"}
	if _, err := Run(context.Background(), unknownSys, Options{Resolve: resolveStubs}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := fastSpec()
	var buf bytes.Buffer
	if err := spec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Systems[0] != "Stub" || len(parsed.Faults) != 2 || parsed.Base.DurationSec != 45 {
		t.Fatalf("round trip = %+v", parsed)
	}
	if _, err := ParseSpec(strings.NewReader(`{"systems": ["Stub"], "warp": 9}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestHeatmapGridMarksInfiniteAndMissing(t *testing.T) {
	res := &Result{Cells: []*CellResult{
		{Cell: Cell{System: "X", Fault: "crash", InjectSec: 10, Seed: 1}, Score: 2},
		{Cell: Cell{System: "X", Fault: "crash", InjectSec: 10, Seed: 2}, Score: 4},
		{Cell: Cell{System: "X", Fault: "slow", InjectSec: 10, Seed: 1}, Infinite: true},
		{Cell: Cell{System: "X", Fault: "slow", InjectSec: 20, Seed: 1}, Error: "panic: boom"},
		{Cell: Cell{System: "Y", Fault: "crash", InjectSec: 10, Seed: 1}, Score: 9},
	}}
	faults, injects, values := res.HeatmapGrid("X")
	if len(faults) != 2 || len(injects) != 2 {
		t.Fatalf("grid = %v x %v", faults, injects)
	}
	if values[0][0] != 3 {
		t.Fatalf("crash@10 = %v, want mean 3", values[0][0])
	}
	if !math.IsNaN(values[0][1]) {
		t.Fatalf("crash@20 = %v, want NaN", values[0][1])
	}
	if !math.IsInf(values[1][0], 1) || !math.IsInf(values[1][1], 1) {
		t.Fatalf("slow row = %v, want inf", values[1])
	}
}

// TestExpandCommitteeAxis checks the scale axis: committeeSizes multiplies
// the grid, lands on every cell, distinguishes keys and slugs, and splits
// checkpoint families — a committee-mode run shares no prefix with a
// full-membership one.
func TestExpandCommitteeAxis(t *testing.T) {
	spec := fastSpec()
	spec.CommitteeSizes = []int{0, 16}
	cells, err := expand(spec.withDefaults(), resolveStubs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := expand(fastSpec().withDefaults(), resolveStubs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(base) {
		t.Fatalf("committee axis expanded to %d cells, want %d", len(cells), 2*len(base))
	}
	full, comm := cells[0], cells[len(base)]
	if full.CommitteeSize != 0 || comm.CommitteeSize != 16 {
		t.Fatalf("committee dimension not laid out per size block: %+v / %+v", full, comm)
	}
	if full.Key() == comm.Key() || full.Slug() == comm.Slug() {
		t.Fatalf("committee size missing from key or slug: %q / %q", full.Key(), full.Slug())
	}
	fk, ok1 := full.family()
	ck, ok2 := comm.family()
	if !ok1 || !ok2 || fk == ck {
		t.Fatalf("committee size must split checkpoint families: %+v vs %+v", fk, ck)
	}
	// Size 0 must keep the classic coordinates byte-stable.
	if full.Key() != base[0].Key() || full.Slug() != base[0].Slug() {
		t.Fatalf("size-0 cell renamed classic coordinate: %q vs %q", full.Key(), base[0].Key())
	}
}

// TestAggregatePointsKeepsAxisCoordinates is the regression guard for the
// seed-grouping lookup: cells that differ only in an axis field (overlay,
// committee size) must aggregate into distinct points carrying their own
// scores — not all be served the statistics of the axis-less variant.
func TestAggregatePointsKeepsAxisCoordinates(t *testing.T) {
	mk := func(overlay string, committee int, score float64) *CellResult {
		return &CellResult{
			Cell: Cell{System: "Stub", Fault: "crash", Count: 1, InjectSec: 15,
				Overlay: overlay, CommitteeSize: committee, Seed: 1},
			Score: score,
		}
	}
	cells := []*CellResult{
		mk("", 0, 1.0),
		mk("kadcast", 0, 2.0),
		mk("ring", 0, 3.0),
		mk("", 16, 4.0),
	}
	points := aggregatePoints(cells)
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4 (one per axis coordinate)", len(points))
	}
	labels := make(map[string]bool)
	for i, p := range points {
		if p.Runs != 1 {
			t.Errorf("point %d (%s): filled with %d runs, want exactly its own cell", i, p, p.Runs)
		}
		if p.MedianScore != cells[i].Score {
			t.Errorf("point %d (overlay=%q committee=%d): score %v, want %v",
				i, p.Overlay, p.CommitteeSize, p.MedianScore, cells[i].Score)
		}
		labels[p.String()] = true
	}
	if len(labels) != 4 {
		t.Fatalf("rendered labels collapsed: %v", labels)
	}
}
