package campaign

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"stabl/internal/metrics"
)

// TestCampaignMetricsIdenticalAcrossWorkers is the golden determinism check
// of the observability layer: every cell's metrics dump must be
// byte-identical whether the campaign ran on one worker or eight.
func TestCampaignMetricsIdenticalAcrossWorkers(t *testing.T) {
	collect := func(workers int) map[string][]byte {
		t.Helper()
		dumps := make(map[string][]byte)
		var mu sync.Mutex
		res, err := Run(context.Background(), fastSpec(), Options{
			Workers: workers,
			Resolve: resolveStubs,
			Metrics: func(cell Cell, rec *metrics.Recorder) {
				var buf bytes.Buffer
				if err := rec.WriteJSONL(&buf); err != nil {
					t.Error(err)
					return
				}
				if err := rec.WriteCSV(&buf); err != nil {
					t.Error(err)
					return
				}
				buf.WriteString(metrics.TimelineSVG(rec, cell.Slug()))
				mu.Lock()
				dumps[cell.Slug()] = buf.Bytes()
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FailedCells != 0 {
			t.Fatalf("failed cells = %d", res.FailedCells)
		}
		return dumps
	}

	sequential := collect(1)
	parallel := collect(8)
	if len(sequential) != 8 {
		t.Fatalf("dumps = %d, want one per cell (8)", len(sequential))
	}
	if len(parallel) != len(sequential) {
		t.Fatalf("workers=8 produced %d dumps, workers=1 produced %d", len(parallel), len(sequential))
	}
	for slug, seq := range sequential {
		par, ok := parallel[slug]
		if !ok {
			t.Errorf("cell %s missing from workers=8 dumps", slug)
			continue
		}
		if !bytes.Equal(seq, par) {
			t.Errorf("cell %s metrics diverged between workers=1 and workers=8", slug)
		}
	}
}

// TestCampaignMetricsDoNotChangeScores verifies that attaching recorders is
// pure observation: the campaign result itself must stay byte-identical.
func TestCampaignMetricsDoNotChangeScores(t *testing.T) {
	encode := func(opts Options) []byte {
		t.Helper()
		opts.Workers = 4
		opts.Resolve = resolveStubs
		res, err := Run(context.Background(), fastSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := encode(Options{})
	instrumented := encode(Options{Metrics: func(Cell, *metrics.Recorder) {}})
	if !bytes.Equal(plain, instrumented) {
		t.Fatalf("attaching metrics recorders changed the campaign result:\n%s\nvs\n%s", instrumented, plain)
	}
}

func TestCellSlug(t *testing.T) {
	c := Cell{System: "Redbelly", Fault: "transient", Count: 4,
		InjectSec: 133, OutageSec: 10.5, Seed: 42}
	want := "redbelly-transient-f4-i133s-o10.5s-d0s-seed42"
	if got := c.Slug(); got != want {
		t.Fatalf("slug = %q, want %q", got, want)
	}
}
