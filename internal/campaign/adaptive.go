package campaign

import (
	"context"
	"fmt"
	"time"

	"stabl/internal/core"
	"stabl/internal/metrics"
	"stabl/internal/pool"
	"stabl/internal/scenario"
	"stabl/internal/simnet"
)

// familyKey identifies a checkpoint family: cells that share their entire
// pre-fault prefix. Two cells are siblings when they deploy the same system
// with the same seed and their adversarial environments first diverge at the
// injection instant — same fault kind (the action script's shape), same
// inject and outage instants, differing only in swept magnitudes (fault
// count, slow-by delay, scenario intensity). The prefix of such runs is
// byte-identical, so one checkpoint serves the whole family.
type familyKey struct {
	system    string
	seed      int64
	fault     string
	scenario  string
	injectSec float64
	outageSec float64
	// committee and overlay join the key because they change the whole run
	// from the first round, not just the post-fault suffix: prefixes with
	// different committee sizes or gossip topologies are never
	// byte-identical.
	committee int
	overlay   string
}

// family returns the cell's checkpoint family, or ok=false when the cell
// cannot share a prefix: secure-client cells change the deployment itself
// (client fanout, doubled resources), so their runs diverge from the first
// event, not at the injection instant.
func (c Cell) family() (familyKey, bool) {
	if c.Scenario != "" {
		// Intensity scales magnitudes only (loss rate, delay, jitter);
		// the compiled timeline's instants and action count are fixed.
		return familyKey{system: c.System, seed: c.Seed, scenario: c.Scenario,
			committee: c.CommitteeSize, overlay: c.Overlay}, true
	}
	kind, err := core.ParseFaultKind(c.Fault)
	if err != nil || !kind.NeedsNodes() {
		return familyKey{}, false
	}
	return familyKey{
		system: c.System, seed: c.Seed, fault: c.Fault,
		injectSec: c.InjectSec, outageSec: c.OutageSec,
		committee: c.CommitteeSize, overlay: c.Overlay,
	}, true
}

// groupFamilies partitions the cell indices into execution units, preserving
// grid order: each checkpoint family becomes one unit (members in grid
// order), and every ineligible cell is its own singleton unit. Units are
// ordered by their first member, so progress output walks the grid in the
// same order as ModeGrid.
func groupFamilies(cells []Cell) [][]int {
	var units [][]int
	byKey := make(map[familyKey]int)
	for i, cell := range cells {
		key, ok := cell.family()
		if !ok {
			units = append(units, []int{i})
			continue
		}
		if u, seen := byKey[key]; seen {
			units[u] = append(units[u], i)
			continue
		}
		byKey[key] = len(units)
		units = append(units, []int{i})
	}
	return units
}

// unitStat accumulates one unit's contribution to the campaign's checkpoint
// statistics. Units aggregate into index-addressed slots, so the totals are
// deterministic at any worker count.
type unitStat struct {
	families    int
	forkServed  int
	fullReplays int
	wallSaved   time.Duration
}

// runAdaptive executes the cells family-by-family: each family's shared
// prefix runs once, is checkpointed just before the first disruptive action,
// and the members run as forked continuations of that checkpoint. Families
// execute in parallel on the worker pool; members within a family are
// inherently sequential (they rewind the same live object graph). Results
// are byte-identical to ModeGrid — every fallback path degrades to runCell,
// the grid-mode executor.
func runAdaptive(ctx context.Context, spec Spec, cells []Cell, opts Options,
	baselines *baselineCache, results []*CellResult, progress *progressTracker) *CheckpointStats {

	units := groupFamilies(cells)
	stats := make([]unitStat, len(units))
	errs := pool.ForEach(ctx, len(units), opts.Workers, func(u int) error {
		stats[u] = runFamily(ctx, spec, units[u], cells, opts, baselines, results, progress)
		return nil
	})
	for u, err := range errs {
		if err == nil {
			continue
		}
		// Cancellation (or a panic in the family bookkeeping itself):
		// every member without a measurement failed.
		for _, i := range units[u] {
			if results[i] == nil {
				results[i] = &CellResult{Cell: cells[i], Error: err.Error()}
			}
		}
	}
	total := &CheckpointStats{}
	for _, st := range stats {
		total.Families += st.families
		total.ForkServed += st.forkServed
		total.FullReplays += st.fullReplays
		total.WallSaved += st.wallSaved
	}
	return total
}

// runFamily executes one unit. Singletons and every fallback path run
// through runCell, so any cell the checkpoint machinery cannot serve is
// measured exactly as ModeGrid would measure it.
func runFamily(ctx context.Context, spec Spec, idxs []int, cells []Cell, opts Options,
	baselines *baselineCache, results []*CellResult, progress *progressTracker) (st unitStat) {

	replay := func(i int) {
		res := runCell(spec, cells[i], opts, baselines)
		results[i] = res
		st.fullReplays++
		progress.report(res)
	}

	if len(idxs) == 1 {
		replay(idxs[0])
		return st
	}

	// Materialize every member's config first: a member whose coordinate is
	// invalid (e.g. a count delta exceeding the fault-eligible pool) fails
	// alone, without costing the family its checkpoint.
	cfgs := make([]core.Config, len(idxs))
	live := idxs[:0:0]
	for _, i := range idxs {
		cfg, err := cellConfig(spec, cells[i], opts.Resolve)
		if err != nil {
			res := &CellResult{Cell: cells[i], Error: err.Error()}
			results[i] = res
			progress.report(res)
			continue
		}
		cfgs[len(live)] = cfg
		live = append(live, i)
	}
	if len(live) == 0 {
		return st
	}
	cfgs = cfgs[:len(live)]

	fail := func(pos int, msg string) {
		res := &CellResult{Cell: cells[live[pos]], Error: msg}
		results[live[pos]] = res
		progress.report(res)
	}

	baseline, err := baselines.get(cells[live[0]].System, cells[live[0]].Seed, cfgs[0])
	if err != nil {
		// The cache memoizes the failure; every grid-mode member would
		// report the same message.
		for pos := range live {
			fail(pos, err.Error())
		}
		return st
	}

	// One recorder instruments the whole family: it is part of the fork
	// set, so rewinding returns it to its checkpoint state and each
	// continuation's clone holds exactly that member's timeline.
	repCfg := cfgs[0]
	var rec *metrics.Recorder
	if opts.Metrics != nil {
		rec = metrics.NewRecorder(opts.MetricsInterval)
		repCfg.Metrics = rec
	}

	fp, exp, prefixWall := checkpointPrefix(repCfg)
	if fp == nil {
		// No disruptive action, an unforkable system, or a prefix panic:
		// nothing to share, run every member from scratch (a panicking
		// prefix panics identically in each member's own run).
		for _, i := range live {
			if ctx.Err() != nil {
				return st
			}
			replay(i)
		}
		return st
	}
	st.families++

	// continuation runs one member from the checkpoint to the end and
	// scores it. A panic corrupts the live object graph, so the survivors
	// fall back to full replays; the panicking member itself reports the
	// same message a from-scratch run of its schedule would.
	corrupted := false
	continuation := func(pos int, faulty []simnet.NodeID, compiled *scenario.Compiled) {
		cell := cells[live[pos]]
		res := &CellResult{Cell: cell}
		func() {
			defer func() {
				if v := recover(); v != nil {
					res.Error = fmt.Sprintf("panic: %v", v)
					corrupted = true
				}
			}()
			exp.RunUntil(exp.Config().Duration)
			altered := exp.Collect()
			cmp, err := core.ScoreWithBaseline(cfgs[pos], baseline, altered)
			if err != nil {
				res.Error = err.Error()
				return
			}
			scoreCell(res, cell, cmp)
			if rec != nil {
				clone := rec.Clone()
				core.RestampRun(clone, cfgs[pos], faulty, compiled)
				opts.Metrics(cell, clone)
			}
		}()
		results[live[pos]] = res
		progress.report(res)
	}

	for pos := 0; pos < len(live); pos++ {
		if ctx.Err() != nil {
			return st
		}
		if corrupted {
			replay(live[pos])
			continue
		}
		faulty, script, compiled, err := cfgs[pos].FaultOutline()
		if err != nil {
			fail(pos, err.Error())
			continue
		}
		if pos == 0 {
			// The representative's outline is already loaded; it resumes
			// straight from the checkpoint it just produced.
			continuation(pos, faulty, compiled)
			st.fullReplays++ // it ran prefix + suffix itself
			continue
		}
		fp.Rewind()
		exp.Primary().SetScript(script)
		exp.SetFaultTargets(faulty)
		continuation(pos, faulty, compiled)
		st.forkServed++
		st.wallSaved += prefixWall
	}
	return st
}

// checkpointPrefix builds the family's altered experiment and runs it to the
// checkpoint, converting a prefix panic into a nil fork point (the fallback
// path replays members from scratch, reproducing the panic per cell). The
// returned duration is the wall-clock cost of the shared prefix — what every
// forked continuation avoids paying again.
func checkpointPrefix(cfg core.Config) (fp *core.ForkPoint, exp *core.Experiment, wall time.Duration) {
	defer func() {
		if v := recover(); v != nil {
			fp, exp = nil, nil
		}
	}()
	exp, err := core.Build(core.AlteredConfig(cfg))
	if err != nil {
		return nil, nil, 0
	}
	begin := time.Now() //stabl:nodet wallclock -- wall-clock speedup accounting only; the simulation never reads it
	fp, err = core.RunToCheckpoint(exp)
	wall = time.Since(begin) //stabl:nodet wallclock -- wall-clock speedup accounting only; the simulation never reads it
	if err != nil || fp == nil {
		return nil, nil, 0
	}
	return fp, exp, wall
}
