package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"stabl/internal/chain"
	"stabl/internal/core"
)

// Cell identifies one point of the fault space. Dimensions that do not
// apply to the cell's fault kind are zero: OutageSec for faults that never
// heal, SlowBySec for everything but the slow fault, Count and InjectSec for
// faults that touch no validator (secure-client).
type Cell struct {
	System    string  `json:"system"`
	Fault     string  `json:"fault,omitempty"`
	Count     int     `json:"count,omitempty"`
	InjectSec float64 `json:"injectSec,omitempty"`
	OutageSec float64 `json:"outageSec,omitempty"`
	SlowBySec float64 `json:"slowBySec,omitempty"`
	// Scenario / Intensity identify a scenario cell (Fault and the fault
	// dimensions are empty then): the named spec scaled by Intensity.
	Scenario  string  `json:"scenario,omitempty"`
	Intensity float64 `json:"intensity,omitempty"`
	// CommitteeSize is the sortition committee size the cell deploys with
	// (0 = full membership); the campaign's scale axis.
	CommitteeSize int `json:"committeeSize,omitempty"`
	// Overlay is the gossip-overlay topology the cell deploys with
	// ("" = legacy full mesh); the campaign's overlay axis.
	Overlay string `json:"overlay,omitempty"`
	Seed    int64  `json:"seed"`
}

// Key renders the cell's coordinate without the seed, the grouping unit for
// cross-seed aggregation.
func (c Cell) Key() string {
	// The committee suffix appears only when the axis is active, keeping
	// classic campaign keys (and downstream labels) byte-stable.
	comm := ""
	if c.CommitteeSize > 0 {
		comm = fmt.Sprintf(" committee=%d", c.CommitteeSize)
	}
	if c.Overlay != "" {
		comm += fmt.Sprintf(" overlay=%s", c.Overlay)
	}
	if c.Scenario != "" {
		return fmt.Sprintf("%s/scenario:%s x%g%s", c.System, c.Scenario, c.Intensity, comm)
	}
	return fmt.Sprintf("%s/%s f=%d inject=%gs outage=%gs slow=%gs%s",
		c.System, c.Fault, c.Count, c.InjectSec, c.OutageSec, c.SlowBySec, comm)
}

// String renders the full cell coordinate.
func (c Cell) String() string { return fmt.Sprintf("%s seed=%d", c.Key(), c.Seed) }

// Slug renders the full cell coordinate as a filesystem-safe unique name,
// used for per-cell metrics dumps.
func (c Cell) Slug() string {
	comm := ""
	if c.CommitteeSize > 0 {
		comm = fmt.Sprintf("-c%d", c.CommitteeSize)
	}
	if c.Overlay != "" {
		comm += fmt.Sprintf("-ov-%s", c.Overlay)
	}
	if c.Scenario != "" {
		return fmt.Sprintf("%s-scenario-%s-x%g%s-seed%d",
			strings.ToLower(c.System), c.Scenario, c.Intensity, comm, c.Seed)
	}
	return fmt.Sprintf("%s-%s-f%d-i%gs-o%gs-d%gs%s-seed%d",
		strings.ToLower(c.System), c.Fault, c.Count,
		c.InjectSec, c.OutageSec, c.SlowBySec, comm, c.Seed)
}

// expand materializes the spec's grid: systems × committee sizes × overlays ×
// faults × counts × inject times × outages × slow-bys × seeds, with
// inapplicable dimensions collapsed per fault kind so the grid holds no
// duplicate coordinates. The order is deterministic: dimensions nest in the
// order above, seeds vary fastest.
func expand(spec Spec, resolve func(string) (chain.System, error)) ([]Cell, error) {
	validators := spec.Base.Validators
	if validators == 0 {
		validators = 10
	}

	var cells []Cell
	for _, sysName := range spec.Systems {
		sys, err := resolve(sysName)
		if err != nil {
			return nil, err
		}
		tolerance := sys.Tolerance(validators)
		for _, committee := range spec.CommitteeSizes {
			for _, ov := range spec.Overlays {
				for _, faultName := range spec.Faults {
					kind, err := core.ParseFaultKind(faultName)
					if err != nil {
						return nil, err
					}

					counts := []int{0}
					injects := []float64{0}
					if kind.NeedsNodes() {
						counts = resolveCounts(tolerance, spec.CountDeltas)
						injects = spec.InjectSecs
					}
					outages := []float64{0}
					if kind.Recovers() {
						outages = spec.OutageSecs
					}
					slows := []float64{0}
					if kind == core.FaultSlow {
						slows = spec.SlowBySecs
					}

					for _, count := range counts {
						for _, inject := range injects {
							for _, outage := range outages {
								for _, slow := range slows {
									for _, seed := range spec.Seeds {
										cells = append(cells, Cell{
											System:        sysName,
											Fault:         faultName,
											Count:         count,
											InjectSec:     inject,
											OutageSec:     outage,
											SlowBySec:     slow,
											CommitteeSize: committee,
											Overlay:       ov,
											Seed:          seed,
										})
									}
								}
							}
						}
					}
				}
				for _, sc := range spec.Scenarios {
					for _, intensity := range spec.Intensities {
						for _, seed := range spec.Seeds {
							cells = append(cells, Cell{
								System:        sysName,
								Scenario:      sc.Name,
								Intensity:     intensity,
								CommitteeSize: committee,
								Overlay:       ov,
								Seed:          seed,
							})
						}
					}
				}
			}
		}
	}
	return sample(spec, cells), nil
}

// resolveCounts maps tolerance deltas to distinct positive fault counts,
// ascending. Deltas below f=1 are dropped: killing zero nodes is the
// baseline, not a fault.
func resolveCounts(tolerance int, deltas []int) []int {
	seen := make(map[int]bool, len(deltas))
	var counts []int
	for _, d := range deltas {
		f := tolerance + d
		if f < 1 || seen[f] {
			continue
		}
		seen[f] = true
		counts = append(counts, f)
	}
	sort.Ints(counts)
	return counts
}

// sample draws spec.Sample cells without replacement (seeded by
// spec.SampleSeed), preserving the grid order, so huge grids can be probed
// deterministically.
func sample(spec Spec, cells []Cell) []Cell {
	if spec.Sample <= 0 || spec.Sample >= len(cells) {
		return cells
	}
	rng := rand.New(rand.NewSource(spec.SampleSeed))
	picks := rng.Perm(len(cells))[:spec.Sample]
	sort.Ints(picks)
	out := make([]Cell, 0, len(picks))
	for _, i := range picks {
		out = append(out, cells[i])
	}
	return out
}
