package workload

import (
	"stabl/internal/chain"
	"stabl/internal/snapshot"
)

// genState is a Generator checkpoint. The RNG stream position lives in the
// scheduler (the *rand.Rand handed to NewGenerator is registered there), so
// only the nonce chains and the sequence counter are captured here.
type genState struct {
	nonces map[chain.Address]uint64
	seq    uint32
}

var _ snapshot.Forkable = (*Generator)(nil)

// Snapshot captures the generator's nonce chains and sequence counter.
func (g *Generator) Snapshot() snapshot.State {
	st := &genState{
		nonces: make(map[chain.Address]uint64, len(g.nonces)),
		seq:    g.seq,
	}
	for a, n := range g.nonces {
		st.nonces[a] = n
	}
	return st
}

// Restore rewinds the generator to a state captured by Snapshot.
func (g *Generator) Restore(state snapshot.State) {
	st, ok := state.(*genState)
	if !ok {
		panic("workload: Generator.Restore on foreign state")
	}
	g.nonces = make(map[chain.Address]uint64, len(st.nonces))
	for a, n := range st.nonces {
		g.nonces[a] = n
	}
	g.seq = st.seq
}
