package workload

import (
	"stabl/internal/chain"
	"stabl/internal/snapshot"
)

// genState is a Generator checkpoint. The RNG stream position lives in the
// scheduler (the *rand.Rand handed to NewGenerator is registered there), so
// only the nonce chains and the sequence counter are captured here.
type genState struct {
	nonces map[chain.Address]uint64
	seq    uint32
}

var _ snapshot.Forkable = (*Generator)(nil)

// Snapshot captures the generator's nonce chains and sequence counter.
func (g *Generator) Snapshot() snapshot.State {
	st := &genState{
		nonces: make(map[chain.Address]uint64, len(g.nonces)),
		seq:    g.seq,
	}
	for a, n := range g.nonces {
		st.nonces[a] = n
	}
	return st
}

// Restore rewinds the generator to a state captured by Snapshot.
func (g *Generator) Restore(state snapshot.State) {
	st, ok := state.(*genState)
	if !ok {
		panic("workload: Generator.Restore on foreign state")
	}
	g.nonces = make(map[chain.Address]uint64, len(st.nonces))
	for a, n := range st.nonces {
		g.nonces[a] = n
	}
	g.seq = st.seq
}

// flowState is a Flow checkpoint: the folded nonce slice and the sequence
// counter. As with Generator, the RNG stream position lives in the
// scheduler, not here.
type flowState struct {
	nonces []uint64
	seq    uint64
}

var _ snapshot.Forkable = (*Flow)(nil)

// Snapshot captures the flow's nonce slice and sequence counter.
func (f *Flow) Snapshot() snapshot.State {
	return &flowState{
		nonces: append([]uint64(nil), f.nonces...),
		seq:    f.seq,
	}
}

// Restore rewinds the flow to a state captured by Snapshot.
func (f *Flow) Restore(state snapshot.State) {
	st, ok := state.(*flowState)
	if !ok {
		panic("workload: Flow.Restore on foreign state")
	}
	f.nonces = append(f.nonces[:0], st.nonces...)
	f.seq = st.seq
}
