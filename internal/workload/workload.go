// Package workload generates the native-transfer workload STABL uses: each
// client issues transfers at a constant rate from a small set of accounts it
// owns, with strictly increasing per-account nonces (the ordering constraint
// that matters for Avalanche's gossip behaviour, STABL §7).
package workload

import (
	"math/rand"
	"time"

	"stabl/internal/chain"
)

// Generator produces a deterministic stream of transfer transactions for one
// client.
type Generator struct {
	client     uint32
	accounts   []chain.Address
	recipients []chain.Address
	nonces     map[chain.Address]uint64
	seq        uint32
	rng        *rand.Rand
}

// NewGenerator creates a generator for the given client index. accounts are
// the sender accounts owned by this client (round-robin source selection
// keeps nonce chains uniform); recipients is the universe of destination
// accounts.
func NewGenerator(client uint32, accounts, recipients []chain.Address, rng *rand.Rand) *Generator {
	if len(accounts) == 0 {
		panic("workload: generator needs at least one account")
	}
	if len(recipients) == 0 {
		recipients = accounts
	}
	return &Generator{
		client:     client,
		accounts:   append([]chain.Address(nil), accounts...),
		recipients: append([]chain.Address(nil), recipients...),
		nonces:     make(map[chain.Address]uint64, len(accounts)),
		rng:        rng,
	}
}

// Next produces the next transaction, stamped with the submission time.
func (g *Generator) Next(now time.Duration) chain.Tx {
	from := g.accounts[int(g.seq)%len(g.accounts)]
	to := g.recipients[g.rng.Intn(len(g.recipients))]
	for to == from && len(g.recipients) > 1 {
		to = g.recipients[g.rng.Intn(len(g.recipients))]
	}
	nonce := g.nonces[from]
	g.nonces[from] = nonce + 1
	tx := chain.Tx{
		ID:        chain.MakeTxID(g.client, g.seq),
		From:      from,
		To:        to,
		Amount:    1,
		Nonce:     nonce,
		Submitted: now,
	}
	g.seq++
	return tx
}

// Issued returns how many transactions have been generated.
func (g *Generator) Issued() uint32 { return g.seq }

// Accounts enumerates addr ranges for an experiment: client i owns accounts
// [i*perClient, (i+1)*perClient).
func Accounts(clients, perClient int) [][]chain.Address {
	out := make([][]chain.Address, clients)
	next := chain.Address(0)
	for i := range out {
		accts := make([]chain.Address, perClient)
		for j := range accts {
			accts[j] = next
			next++
		}
		out[i] = accts
	}
	return out
}

// AllAccounts flattens the per-client account sets.
func AllAccounts(sets [][]chain.Address) []chain.Address {
	var out []chain.Address
	for _, s := range sets {
		out = append(out, s...)
	}
	return out
}
